// Regenerates Fig. 6: (a) candidate legal IP pairs and (b) candidate root
// causes eliminated as more traced messages are investigated, for each case
// study. Every investigated message should contribute to the elimination.

#include <iostream>

#include "bench_util.hpp"
#include "debug/case_study.hpp"

int main() {
  using namespace tracesel;
  bench::banner("Fig. 6", "traced messages investigated vs candidate IP "
                          "pairs / root causes eliminated");

  soc::T2Design design;
  for (const auto& cs : soc::standard_case_studies()) {
    debug::CaseStudyOptions opt;
    opt.sessions = 6;
    const auto r = debug::run_case_study(design, cs, opt);

    std::cout << "Case study " << cs.id << " (scenario " << cs.scenario_id
              << ", " << r.report.legal_pairs << " legal pairs, "
              << r.report.catalog_size << " potential causes):\n";
    util::Table table({"Step", "Investigated message", "Status found",
                       "Records examined", "Candidate IP pairs",
                       "Plausible causes"});
    int step = 1;
    for (const auto& st : r.report.steps) {
      table.add_row({std::to_string(step++),
                     design.catalog().get(st.investigated).name,
                     debug::to_string(st.found),
                     std::to_string(st.records_examined),
                     std::to_string(st.candidate_pairs),
                     std::to_string(st.plausible_causes)});
    }
    std::cout << table << "\n";
  }
  bench::note("reproduced claim: both candidate series decrease (weakly) "
              "monotonically - every traced message investigated "
              "contributes to the debug process");
  return 0;
}
