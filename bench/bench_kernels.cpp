// Compiled per-spec DP kernels (DESIGN.md §14): Step-2 scoring speedup
// and bit-identity gate.
//
// Two workloads, both gated:
//
//   t2 @ 3        the full T2 uncore at scenario/instances 3 — the same
//                 workload `tracesel submit t2 --instances 3` denotes
//                 (interleaving every t2.flow flow at 3 indexed instances
//                 each exceeds 100M product states and is not buildable);
//   t2.flow @ 2   the full data/t2.flow catalog, every flow at 2 indexed
//                 instances — the largest shipped spec workload.
//
// For each, the bench pre-enumerates the fitting combinations of the
// Step 1 space (up to a cap), then times the Step 2 gain-scoring loop
// under the generic engine (per-message hash-map lookups) and the
// compiled kernel (dense per-spec contribution table + O(1) incremental
// GainCursor). The bench is a gate, not just a report: it exits nonzero
// unless (a) every compiled gain is bit-identical to the generic one and
// (b) the compiled scoring loop is at least 2x faster. Informational rows
// cover the kernel compile itself and the full select() pipeline.

#include <chrono>
#include <cstdint>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "flow/kernel.hpp"
#include "tracesel/tracesel.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace tracesel;

constexpr std::uint32_t kBufferWidth = 32;
constexpr std::size_t kMaxCombos = 200'000;
/// Target scoring operations per timed pass, so small Step 1 spaces still
/// produce ms-scale (noise-free) wall times.
constexpr std::size_t kTargetOps = 2'000'000;

double best_of_ms(int repeats, const auto& fn) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

/// The Step 1 combination space, flattened: combo i is
/// messages[offsets[i] .. offsets[i+1]). Flat storage so the scoring loops
/// measure scoring, not vector-of-vector pointer chasing.
struct ComboSet {
  std::vector<flow::MessageId> messages;
  std::vector<std::size_t> offsets{0};
  std::size_t size() const { return offsets.size() - 1; }
  std::span<const flow::MessageId> operator[](std::size_t i) const {
    return {messages.data() + offsets[i], offsets[i + 1] - offsets[i]};
  }
};

/// Enumerates fitting combinations exactly like the Step 1 DFS (ascending
/// candidate order, width-capped), up to `cap` of them.
ComboSet enumerate_fitting(const flow::MessageCatalog& catalog,
                           const std::vector<flow::MessageId>& candidates,
                           std::uint32_t budget, std::size_t cap) {
  ComboSet set;
  std::vector<flow::MessageId> current;
  auto dfs = [&](auto&& self, std::size_t start,
                 std::uint32_t width) -> bool {
    for (std::size_t i = start; i < candidates.size(); ++i) {
      const std::uint32_t w = catalog.get(candidates[i]).trace_width();
      if (width + w > budget) continue;
      current.push_back(candidates[i]);
      set.messages.insert(set.messages.end(), current.begin(), current.end());
      set.offsets.push_back(set.messages.size());
      if (set.size() >= cap) return false;
      if (!self(self, i + 1, width + w)) return false;
      current.pop_back();
    }
    return true;
  };
  dfs(dfs, 0, 0);
  return set;
}

bool identical(const selection::SelectionResult& a,
               const selection::SelectionResult& b) {
  return a.combination.messages == b.combination.messages &&
         a.combination.width == b.combination.width && a.packed == b.packed &&
         a.gain == b.gain && a.gain_unpacked == b.gain_unpacked &&
         a.coverage == b.coverage &&
         a.coverage_unpacked == b.coverage_unpacked &&
         a.used_width == b.used_width && a.buffer_width == b.buffer_width;
}

/// Runs the gate over one prepared session. Appends JSON rows; returns the
/// number of gate failures (speedup < 2x or any non-bit-identical result).
int run_workload(const std::string& name, Session& session,
                 util::Json& workloads) {
  int failures = 0;
  const flow::InterleavedFlow& u = session.interleaving();
  const flow::kernel::CompileStats& cs = u.program().stats();
  std::cout << "Workload " << name << ": " << cs.nodes << " nodes, "
            << cs.edges << " edges, " << cs.labels
            << " distinct labels; kernel compile "
            << util::fixed(cs.compile_ms, 2) << " ms, "
            << cs.table_bytes / 1024 << " KiB of tables\n";

  const selection::MessageSelector selector(session.catalog(), u);
  const selection::InfoGainEngine& engine = selector.engine();
  const ComboSet combos = enumerate_fitting(
      session.catalog(), selector.candidates(), kBufferWidth, kMaxCombos);
  const std::size_t reps = std::max<std::size_t>(
      1, kTargetOps / std::max<std::size_t>(1, combos.size()));
  std::cout << "Step 1 space: " << combos.size() << " fitting combinations ("
            << selector.candidates().size() << " candidate messages, buffer "
            << kBufferWidth << "), timed x" << reps << "\n\n";

  // --- gate: the Step 2 scoring loop ---
  std::vector<double> gains_generic(combos.size());
  std::vector<double> gains_compiled(combos.size());
  const double generic_ms = best_of_ms(5, [&] {
    for (std::size_t r = 0; r < reps; ++r)
      for (std::size_t i = 0; i < combos.size(); ++i)
        gains_generic[i] =
            engine.info_gain(combos[i], flow::KernelMode::kGeneric);
  });
  const double compiled_ms = best_of_ms(5, [&] {
    for (std::size_t r = 0; r < reps; ++r)
      for (std::size_t i = 0; i < combos.size(); ++i)
        gains_compiled[i] =
            engine.info_gain(combos[i], flow::KernelMode::kCompiled);
  });
  bool bit_identical = true;
  for (std::size_t i = 0; i < combos.size(); ++i)
    if (gains_generic[i] != gains_compiled[i]) bit_identical = false;
  const double speedup = generic_ms / compiled_ms;

  // The enumeration-walk variant: GainCursor scores each combination by
  // pushing its messages and reading the prefix-sum top — the access
  // pattern of the sharded Step 2 search.
  double cursor_checksum = 0.0;
  const double cursor_ms = best_of_ms(5, [&] {
    selection::GainCursor cursor(engine);
    double acc = 0.0;
    for (std::size_t r = 0; r < reps; ++r)
      for (std::size_t i = 0; i < combos.size(); ++i) {
        for (flow::MessageId m : combos[i]) cursor.push(m);
        acc += cursor.gain();
        for (std::size_t k = combos[i].size(); k > 0; --k) cursor.pop();
      }
    cursor_checksum = acc;
  });
  (void)cursor_checksum;

  // --- informational: the full pipeline under both modes ---
  session.config().kernel = flow::KernelMode::kGeneric;
  auto ref = session.select();
  const double select_generic_ms =
      best_of_ms(3, [&] { ref = session.select(); });
  session.config().kernel = flow::KernelMode::kCompiled;
  auto got = session.select();
  const double select_compiled_ms =
      best_of_ms(3, [&] { got = session.select(); });
  const bool select_identical = identical(ref, got);

  util::Table table({"Path", "Wall ms", "Speedup", "Identical"});
  table.add_row({"Step 2 scoring, generic", util::fixed(generic_ms, 2),
                 "1.00", "ref"});
  table.add_row({"Step 2 scoring, compiled", util::fixed(compiled_ms, 2),
                 util::fixed(speedup, 2), bit_identical ? "yes" : "NO"});
  table.add_row({"Step 2 scoring, GainCursor", util::fixed(cursor_ms, 2),
                 util::fixed(generic_ms / cursor_ms, 2), "-"});
  table.add_row({"select() end-to-end, generic",
                 util::fixed(select_generic_ms, 2), "1.00", "ref"});
  table.add_row({"select() end-to-end, compiled",
                 util::fixed(select_compiled_ms, 2),
                 util::fixed(select_generic_ms / select_compiled_ms, 2),
                 select_identical ? "yes" : "NO"});
  std::cout << table << '\n';

  if (!bit_identical || !select_identical) {
    std::cerr << "GATE FAILED (" << name
              << "): compiled results differ from generic\n";
    ++failures;
  }
  if (speedup < 2.0) {
    std::cerr << "GATE FAILED (" << name << "): Step 2 scoring speedup "
              << speedup << "x < 2x\n";
    ++failures;
  }

  util::Json jw = util::Json::object();
  jw.set("workload", util::Json::string(name));
  jw.set("combinations", util::Json::number(std::uint64_t{combos.size()}));
  jw.set("repeats", util::Json::number(std::uint64_t{reps}));
  util::Json kernel = util::Json::object();
  kernel.set("compile_ms", util::Json::number(cs.compile_ms));
  kernel.set("table_bytes", util::Json::number(std::uint64_t{cs.table_bytes}));
  kernel.set("nodes", util::Json::number(std::uint64_t{cs.nodes}));
  kernel.set("edges", util::Json::number(std::uint64_t{cs.edges}));
  kernel.set("labels", util::Json::number(std::uint64_t{cs.labels}));
  jw.set("kernel", std::move(kernel));
  util::Json rows = util::Json::array();
  auto record = [&](const char* path, double ms, double sp, bool ok) {
    util::Json jr = util::Json::object();
    jr.set("path", util::Json::string(path));
    jr.set("wall_ms", util::Json::number(ms));
    jr.set("speedup", util::Json::number(sp));
    jr.set("identical", util::Json::boolean(ok));
    rows.push_back(std::move(jr));
  };
  record("step2_generic", generic_ms, 1.0, true);
  record("step2_compiled", compiled_ms, speedup, bit_identical);
  record("step2_cursor", cursor_ms, generic_ms / cursor_ms, true);
  record("select_generic", select_generic_ms, 1.0, true);
  record("select_compiled", select_compiled_ms,
         select_generic_ms / select_compiled_ms, select_identical);
  jw.set("rows", std::move(rows));
  jw.set("speedup", util::Json::number(speedup));
  jw.set("bit_identical",
         util::Json::boolean(bit_identical && select_identical));
  workloads.push_back(std::move(jw));
  return failures;
}

}  // namespace

int main() {
  bench::banner("Kernels",
                "compiled per-spec DP kernels vs the generic engine");
  bench::note("the end-to-end select() rows are informational: they include "
              "Step 1 enumeration and Step 3 packing, which the kernel does "
              "not accelerate");
  std::cout << '\n';

  int failures = 0;
  util::Json workloads = util::Json::array();
  {
    auto session = Session::t2();
    session.config().buffer_width = kBufferWidth;
    session.scenario(3);
    failures += run_workload("t2 @ instances 3", session, workloads);
  }
  {
    auto session = Session::from_spec_file(TRACESEL_DATA_DIR "/t2.flow");
    session.config().buffer_width = kBufferWidth;
    flow::InterleaveOptions iopt;
    iopt.max_nodes = 60'000'000;
    session.interleave_options(iopt);
    session.interleave(2);
    failures += run_workload("t2.flow @ 2 instances", session, workloads);
  }

  util::Json out = util::Json::object();
  out.set("buffer_width", util::Json::number(std::uint64_t{kBufferWidth}));
  out.set("workloads", std::move(workloads));
  out.set("gate_passed", util::Json::boolean(failures == 0));
  bench::write_json("BENCH_kernels.json", std::move(out));

  if (failures) return 1;
  std::cout << "Gate passed: >=2x Step 2 scoring speedup on every workload, "
               "bit-identical.\n";
  return 0;
}
