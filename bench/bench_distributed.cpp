// Distributed sharded search: process-level speedup, identity check, and
// the cost of surviving a hostile fault schedule.
//
// Drives the full data/t2.flow spec through three engines at equal core
// counts — the serial reference, the in-process sharded engine (--jobs N)
// and the coordinator/worker engine (--workers N, real child processes of
// the tracesel CLI in --worker mode) — plus the distributed engine again
// under a 25% seeded worker-kill schedule. Identity against the serial
// reference is a hard gate (the bench exits nonzero on any difference,
// so CI can run it as a check); the timing columns quantify what the
// process boundary and the fault recovery cost on top of threads.
//
// Emits BENCH_distributed.json with one row per engine configuration:
// {engine, workers, wall_ms, speedup, identical, units_retried,
//  units_salvaged, faults_injected}.

#include <chrono>
#include <cstdint>
#include <iostream>
#include <thread>

#include "bench_util.hpp"
#include "tracesel/tracesel.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace tracesel;

double best_of_ms(int repeats, const auto& fn) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

bool identical(const selection::SelectionResult& a,
               const selection::SelectionResult& b) {
  return a.combination.messages == b.combination.messages &&
         a.combination.width == b.combination.width && a.packed == b.packed &&
         a.gain == b.gain && a.gain_unpacked == b.gain_unpacked &&
         a.coverage == b.coverage &&
         a.coverage_unpacked == b.coverage_unpacked &&
         a.used_width == b.used_width && a.buffer_width == b.buffer_width;
}

Session make_session() {
  auto session = Session::from_spec_file(TRACESEL_DATA_DIR "/t2.flow");
  session.config().buffer_width = 48;
  session.config().mode = selection::SearchMode::kExhaustive;
  session.config().max_combinations = std::uint64_t{1} << 26;
  session.interleave(1);
  return session;
}

selection::DistConfig dist_config(std::size_t workers, double kill_rate) {
  selection::DistConfig dist;
  dist.workers = workers;
  dist.worker_argv = {TRACESEL_WORKER_BIN, "--worker"};
  dist.faults.kill_rate = kill_rate;
  dist.faults.seed = 7;
  dist.backoff.initial_ms = 5;
  dist.backoff.cap_ms = 50;
  return dist;
}

}  // namespace

int main() {
  bench::banner("Distributed selection",
                "coordinator/worker processes vs in-process threads");
  std::cout << "Hardware threads: " << std::thread::hardware_concurrency()
            << " (process-level speedup needs >1 core; the identity gate "
               "does not)\n\n";

  int failures = 0;
  util::Json jrows = util::Json::array();
  util::Table table({"Engine", "Workers", "Wall ms", "Speedup", "Identical",
                     "Retried", "Salvaged", "Faults"});
  auto record = [&](const char* engine, std::size_t workers, double wall_ms,
                    double speedup, bool ok,
                    const selection::DistStats& stats) {
    util::Json jr = util::Json::object();
    jr.set("engine", util::Json::string(engine));
    jr.set("workers", util::Json::number(std::uint64_t{workers}));
    jr.set("wall_ms", util::Json::number(wall_ms));
    jr.set("speedup", util::Json::number(speedup));
    jr.set("identical", util::Json::boolean(ok));
    jr.set("units_retried", util::Json::number(stats.units_retried));
    jr.set("units_salvaged", util::Json::number(stats.units_salvaged));
    jr.set("faults_injected", util::Json::number(stats.faults_injected));
    jrows.push_back(std::move(jr));
    table.add_row({engine, std::to_string(workers), util::fixed(wall_ms, 2),
                   util::fixed(speedup, 2), ok ? "yes" : "NO",
                   std::to_string(stats.units_retried),
                   std::to_string(stats.units_salvaged),
                   std::to_string(stats.faults_injected)});
  };

  // Serial reference.
  auto session = make_session();
  session.jobs(1);
  auto reference = session.select();  // warm caches, then time
  const double serial_ms = best_of_ms(3, [&] { reference = session.select(); });
  record("serial", 1, serial_ms, 1.0, true, {});

  for (const std::size_t n : {std::size_t{2}, std::size_t{4}}) {
    // In-process threads at n cores.
    session.jobs(n);
    auto got = session.select();
    const double jobs_ms = best_of_ms(3, [&] { got = session.select(); });
    bool ok = identical(reference, got);
    if (!ok) ++failures;
    record("jobs", n, jobs_ms, serial_ms / jobs_ms, ok, {});

    // Worker processes at the same core count, clean channel.
    auto dist_session = make_session();
    const auto dist = dist_config(n, 0.0);
    auto dr = dist_session.run_distributed(dist);
    const double dist_ms =
        best_of_ms(3, [&] { dr = dist_session.run_distributed(dist); });
    ok = identical(reference, dr);
    if (!ok) ++failures;
    record("workers", n, dist_ms, serial_ms / dist_ms, ok,
           dist_session.last_dist_stats());

    // Same worker count under a 25% seeded kill schedule: the overhead of
    // fault recovery (respawn + retry + possible salvage).
    const auto faulty = dist_config(n, 0.25);
    auto fr = dist_session.run_distributed(faulty);
    const double fault_ms =
        best_of_ms(3, [&] { fr = dist_session.run_distributed(faulty); });
    ok = identical(reference, fr);
    if (!ok) ++failures;
    record("workers+25%kill", n, fault_ms, serial_ms / fault_ms, ok,
           dist_session.last_dist_stats());
  }

  std::cout << table << '\n';
  if (failures > 0)
    std::cerr << failures
              << " configuration(s) broke bit-identity with the serial "
                 "reference\n";
  util::Json out = util::Json::object();
  out.set("bench", util::Json::string("distributed"));
  out.set("rows", std::move(jrows));
  if (!bench::write_json("BENCH_distributed.json", std::move(out))) return 2;
  return failures == 0 ? 0 : 1;
}
