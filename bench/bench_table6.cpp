// Regenerates Table 6: per case study the number of participating flows,
// legal IP pairs, legal IP pairs investigated, messages investigated, and
// the root-caused architecture-level function.

#include <iostream>

#include "bench_util.hpp"
#include "debug/case_study.hpp"

int main() {
  using namespace tracesel;
  bench::banner("Table 6",
                "diagnosed root causes and debugging statistics");

  soc::T2Design design;
  util::Table table({"Case Study", "No of Flows", "Legal IP Pairs",
                     "Legal IP pairs investigated", "Messages investigated",
                     "Root caused architecture level function"});

  double pair_fraction_sum = 0.0;
  const auto cases = soc::standard_case_studies();
  for (const auto& cs : cases) {
    debug::CaseStudyOptions opt;
    opt.sessions = 6;  // longer runs: more trace records to investigate
    const auto r = debug::run_case_study(design, cs, opt);

    // The diagnosed function: description(s) of the surviving cause(s).
    std::string diagnosed;
    for (const auto& c : r.report.final_causes) {
      if (!diagnosed.empty()) diagnosed += " / ";
      diagnosed += c.description;
    }

    table.add_row({std::to_string(cs.id),
                   std::to_string(r.scenario.flow_names.size()),
                   std::to_string(r.report.legal_pairs),
                   std::to_string(r.report.pairs_investigated),
                   std::to_string(r.report.messages_investigated),
                   diagnosed});
    pair_fraction_sum += static_cast<double>(r.report.pairs_investigated) /
                         static_cast<double>(r.report.legal_pairs);
  }
  std::cout << table << "\n";

  std::cout << "Average fraction of legal IP pairs investigated: "
            << util::pct(pair_fraction_sum /
                         static_cast<double>(cases.size()))
            << " (paper: 54.67%)\n";
  bench::note("paper investigates 25-199 messages per case over 6-12 legal "
              "pairs; the modeled design has 5-6 legal pairs per scenario "
              "and correspondingly scaled investigation counts - the claim "
              "is that selected messages confine debugging to a fraction "
              "of the legal pairs");
  return 0;
}
