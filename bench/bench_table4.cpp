// Regenerates Table 4: comparison of signals selected by SigSeT (SRR-based),
// PRNet (PageRank-based) and our information-gain method on the USB design,
// plus the flow-specification coverage each selection achieves.

#include <iostream>

#include "bench_util.hpp"
#include "baseline/prnet.hpp"
#include "baseline/sigset.hpp"
#include "netlist/usb_design.hpp"
#include "selection/coverage.hpp"
#include "selection/selector.hpp"

namespace {

std::string mark(tracesel::netlist::SignalCoverage c) {
  switch (c) {
    case tracesel::netlist::SignalCoverage::kFull: return "yes";
    case tracesel::netlist::SignalCoverage::kPartial: return "P";
    case tracesel::netlist::SignalCoverage::kNone: return "X";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace tracesel;
  bench::banner("Table 4",
                "signals selected by SigSeT / PRNet / InfoGain on the USB "
                "design (32-bit budget); P = partial");

  netlist::UsbDesign usb;

  // Gate-level baselines select 32 flip-flops each.
  const auto sigset = baseline::select_sigset(usb.netlist());
  const auto prnet = baseline::select_prnet(usb.netlist());

  // Our method selects messages on the two USB flows.
  const auto u = usb.interleaving(2);
  const selection::MessageSelector selector(usb.catalog(), u);
  selection::SelectorConfig cfg;
  cfg.buffer_width = 32;
  const auto infogain = selector.select(cfg);

  util::Table table(
      {"Signal Name", "USB Module", "SigSeT", "PRNet", "InfoGain"});
  std::vector<flow::MessageId> ss_obs, pr_obs;
  for (const auto& sg : usb.interface_signals()) {
    const auto ss = netlist::coverage_of(sg, sigset.selected);
    const auto pr = netlist::coverage_of(sg, prnet.selected);
    const auto id = usb.message_of(sg.name);
    const bool ig =
        std::find(infogain.combination.messages.begin(),
                  infogain.combination.messages.end(),
                  id) != infogain.combination.messages.end();
    table.add_row({sg.name, sg.module, mark(ss), mark(pr),
                   ig ? "yes" : "X"});
    if (ss == netlist::SignalCoverage::kFull) ss_obs.push_back(id);
    if (pr == netlist::SignalCoverage::kFull) pr_obs.push_back(id);
  }
  std::cout << table << "\n";

  util::Table cov({"Method", "Interface signals fully selected",
                   "Flow spec coverage", "Paper"});
  cov.add_row({"SigSeT", std::to_string(ss_obs.size()),
               util::pct(selection::flow_spec_coverage(u, ss_obs)), "9%"});
  cov.add_row({"PRNet", std::to_string(pr_obs.size()),
               util::pct(selection::flow_spec_coverage(u, pr_obs)),
               "23.80%"});
  cov.add_row({"InfoGain",
               std::to_string(infogain.combination.messages.size()),
               util::pct(infogain.coverage), "93.65%"});
  std::cout << cov << "\n";

  bench::note("reproduced claim: the application-level method selects all "
              "ten interface messages while the gate-level baselines trace "
              "mostly internal CRC/counter/FSM flops and miss most of the "
              "interface; coverage gap InfoGain >> SigSeT/PRNet holds");
  return 0;
}
