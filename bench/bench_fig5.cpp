// Regenerates Fig. 5: correlation between mutual information gain and flow
// specification coverage across message combinations, for each of the three
// usage scenarios. The paper's claim: coverage increases monotonically with
// information gain, validating the selection metric.

#include <iostream>

#include "bench_util.hpp"
#include "selection/combination.hpp"
#include "selection/coverage.hpp"
#include "selection/info_gain.hpp"
#include "soc/scenario.hpp"
#include "util/stats.hpp"

int main() {
  using namespace tracesel;
  bench::banner("Fig. 5", "mutual information gain vs flow specification "
                          "coverage per usage scenario");

  soc::T2Design design;
  for (const soc::Scenario& s : soc::all_scenarios()) {
    const auto u = soc::build_interleaving(design, s);
    const selection::InfoGainEngine engine(u);

    // All message combinations fitting the 32-bit buffer.
    std::vector<flow::MessageId> candidates;
    for (const auto* f : soc::scenario_flows(design, s)) {
      for (flow::MessageId m : f->messages()) {
        if (std::find(candidates.begin(), candidates.end(), m) ==
            candidates.end())
          candidates.push_back(m);
      }
    }
    const auto combos =
        selection::enumerate_combinations(design.catalog(), candidates, 32);

    std::vector<double> gains, coverages;
    gains.reserve(combos.size());
    for (const auto& c : combos) {
      gains.push_back(engine.info_gain(c.messages));
      coverages.push_back(selection::flow_spec_coverage(u, c.messages));
    }

    std::cout << s.name << ": " << combos.size()
              << " fitting combinations\n";
    // The printed series: mean coverage per gain decile — the Fig. 5
    // curve (scatter summarized into ten buckets along the gain axis).
    std::vector<std::size_t> order(combos.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return gains[a] < gains[b];
    });
    util::Table curve(
        {"Gain decile", "Mean info gain", "Mean FSP coverage"});
    const std::size_t bucket = std::max<std::size_t>(1, order.size() / 10);
    for (std::size_t start = 0; start < order.size(); start += bucket) {
      const std::size_t end = std::min(order.size(), start + bucket);
      double g = 0.0, c = 0.0;
      for (std::size_t i = start; i < end; ++i) {
        g += gains[order[i]];
        c += coverages[order[i]];
      }
      const double n_items = static_cast<double>(end - start);
      curve.add_row({std::to_string(start / bucket + 1),
                     util::fixed(g / n_items, 4),
                     util::pct(c / n_items)});
    }
    std::cout << curve;
    std::cout << "  Spearman(gain, coverage) = "
              << util::fixed(util::spearman(gains, coverages), 4)
              << ", Pearson = "
              << util::fixed(util::pearson(gains, coverages), 4)
              << ", monotone fraction = "
              << util::fixed(util::monotone_fraction(gains, coverages), 4)
              << "\n\n";
  }
  bench::note("paper claim: coverage increases monotonically with mutual "
              "information gain; reproduced when the rank correlation is "
              "strongly positive");
  return 0;
}
