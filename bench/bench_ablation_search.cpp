// Ablation: Step 2 search strategies. Exhaustive enumeration is the
// paper's formulation; maximal-only enumeration is lossless (gain is
// monotone); the knapsack DP is exact because the paper's estimator is
// additive; greedy is the scalable fallback. This bench verifies the
// equalities empirically and measures the cost of each.

#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "selection/selector.hpp"
#include "soc/scenario.hpp"

namespace {

template <typename F>
std::pair<double, double> timed(F&& fn) {
  const auto start = std::chrono::steady_clock::now();
  const double gain = fn();
  const auto stop = std::chrono::steady_clock::now();
  return {gain,
          std::chrono::duration<double, std::milli>(stop - start).count()};
}

}  // namespace

int main() {
  using namespace tracesel;
  bench::banner("Ablation: search mode",
                "exhaustive vs maximal vs knapsack vs greedy (32-bit "
                "buffer, no packing)");

  soc::T2Design design;
  util::Table table({"Scenario", "Mode", "Gain", "Time (ms)",
                     "Optimal?"});
  for (const soc::Scenario& s : soc::all_scenarios()) {
    const auto u = soc::build_interleaving(design, s);
    const selection::MessageSelector selector(design.catalog(), u);

    double reference = -1.0;
    for (const auto [mode, name] :
         {std::pair{selection::SearchMode::kExhaustive, "exhaustive"},
          std::pair{selection::SearchMode::kMaximal, "maximal"},
          std::pair{selection::SearchMode::kKnapsack, "knapsack"},
          std::pair{selection::SearchMode::kGreedy, "greedy"}}) {
      selection::SelectorConfig cfg;
      cfg.mode = mode;
      cfg.packing = false;
      const auto [gain, ms] =
          timed([&] { return selector.select(cfg).gain; });
      if (reference < 0.0) reference = gain;
      table.add_row({s.name, name, util::fixed(gain, 4),
                     util::fixed(ms, 3),
                     gain >= reference - 1e-9 ? "yes" : "NO"});
    }
  }
  std::cout << table << '\n';
  bench::note("maximal and knapsack must match exhaustive exactly; greedy "
              "may fall short on non-modular instances but rarely does on "
              "these flows");
  return 0;
}
