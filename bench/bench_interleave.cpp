// Symmetry-reduced interleaving engine: scaling sweep + exactness gates.
//
// Sweeps instances-per-flow over the PIOR ||| PIOW sub-spec of data/t2.flow
// and builds the product with both engines, reporting materialized nodes /
// edges, concrete product sizes, build wall-clock and process peak RSS per
// row; results land in BENCH_interleave.json for CI trend tracking.
//
// Beyond the numbers the bench is a check (bench_parallel contract): it
// exits nonzero unless
//   * at >= 3 instances/flow the reduced engine materializes >= 4x fewer
//     nodes and builds >= 2x faster than the unreduced product, and
//   * Step 2 selection and every per-message info-gain contribution are
//     bit-identical across engines, and
//   * count_paths() agrees exactly (counts well below 2^53 here).
// The unreduced 5-instance product would need ~6^5*3^5 states, so the
// sweep compares engines up to 4 and then lets the reduced engine continue
// alone — the rows that exist only because the reduction exists.

#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "flow/parser.hpp"
#include "selection/info_gain.hpp"
#include "selection/selector.hpp"
#include "util/json.hpp"
#include "util/obs.hpp"
#include "util/table.hpp"

namespace {

using namespace tracesel;

double best_of_ms(int repeats, const auto& fn) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

struct Row {
  std::uint32_t instances = 0;
  bool reduced = false;
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::uint64_t product_states = 0;
  std::uint64_t product_edges = 0;
  double build_ms = 0.0;
  long rss_kb = 0;
};

Row measure(const std::vector<flow::IndexedFlow>& instances,
            std::uint32_t n, bool reduced) {
  flow::InterleaveOptions opt;
  opt.symmetry_reduction = reduced;
  opt.max_nodes = 20'000'000;
  Row row;
  row.instances = n;
  row.reduced = reduced;
  row.build_ms = best_of_ms(3, [&] {
    const auto u = flow::InterleavedFlow::build(instances, opt);
    row.nodes = u.num_nodes();
    row.edges = u.num_edges();
    row.product_states = u.num_product_states();
    row.product_edges = u.num_product_edges();
  });
  row.rss_kb = obs::peak_rss_kb();
  return row;
}

/// Step 2 equality across engines: info-gain contributions, totals and the
/// final selections must match bit-for-bit. Returns the failure count.
int check_bit_identity(const flow::MessageCatalog& catalog,
                       const std::vector<flow::IndexedFlow>& instances) {
  int failures = 0;
  flow::InterleaveOptions full_opt;
  full_opt.symmetry_reduction = false;
  const auto red = flow::InterleavedFlow::build(instances);
  const auto full = flow::InterleavedFlow::build(instances, full_opt);

  if (red.num_product_states() != full.num_product_states() ||
      red.num_product_edges() != full.num_product_edges()) {
    std::cerr << "product size mismatch\n";
    ++failures;
  }
  if (red.count_paths() != full.count_paths()) {
    std::cerr << "count_paths mismatch: " << red.count_paths() << " vs "
              << full.count_paths() << "\n";
    ++failures;
  }

  const selection::InfoGainEngine er(red);
  const selection::InfoGainEngine ef(full);
  if (er.max_gain() != ef.max_gain()) {
    std::cerr << "max_gain mismatch\n";
    ++failures;
  }
  for (const auto& im : full.indexed_messages()) {
    if (er.contribution(im) != ef.contribution(im)) {
      std::cerr << "contribution mismatch for " << im.index << ":"
                << catalog.get(im.message).name << "\n";
      ++failures;
    }
  }

  const selection::MessageSelector sr(catalog, red);
  const selection::MessageSelector sf(catalog, full);
  for (const std::uint32_t budget : {16u, 32u}) {
    selection::SelectorConfig cfg;
    cfg.buffer_width = budget;
    const auto a = sr.select(cfg);
    const auto b = sf.select(cfg);
    const bool ok = a.combination.messages == b.combination.messages &&
                    a.gain == b.gain && a.coverage == b.coverage &&
                    a.used_width == b.used_width && a.packed == b.packed;
    if (!ok) {
      std::cerr << "selection mismatch at budget " << budget << "\n";
      ++failures;
    }
  }
  return failures;
}

}  // namespace

int main() {
  const auto spec =
      flow::parse_flow_spec_file(TRACESEL_DATA_DIR "/t2.flow");
  const flow::Flow& pior = spec.flow("PIOR");
  const flow::Flow& piow = spec.flow("PIOW");
  const std::vector<const flow::Flow*> flows{&pior, &piow};

  std::cout << "Interleaving engines on the t2.flow PIOR ||| PIOW sub-spec "
               "(n instances of each):\n";
  util::Table table({"n", "Engine", "Nodes", "Edges", "Product states",
                     "Product edges", "Build ms", "Peak RSS MB"});
  std::vector<Row> rows;

  constexpr std::uint32_t kMaxBoth = 4;     // unreduced beyond this: huge
  constexpr std::uint32_t kMaxReduced = 6;  // reduced-only continuation
  for (std::uint32_t n = 1; n <= kMaxReduced; ++n) {
    const auto instances = flow::make_instances(flows, n);
    // Reduced first so its RSS reading is not inflated by a previous,
    // strictly larger unreduced build at the same n.
    rows.push_back(measure(instances, n, /*reduced=*/true));
    if (n <= kMaxBoth) rows.push_back(measure(instances, n, false));
  }
  for (const Row& r : rows) {
    table.add_row({std::to_string(r.instances),
                   r.reduced ? "reduced" : "unreduced",
                   std::to_string(r.nodes), std::to_string(r.edges),
                   std::to_string(r.product_states),
                   std::to_string(r.product_edges),
                   util::fixed(r.build_ms, 3),
                   util::fixed(static_cast<double>(r.rss_kb) / 1024.0, 1)});
  }
  std::cout << table << '\n';

  int failures = 0;
  auto find_row = [&](std::uint32_t n, bool reduced) -> const Row& {
    for (const Row& r : rows)
      if (r.instances == n && r.reduced == reduced) return r;
    throw std::logic_error("missing row");
  };
  // Scaling gates at n >= 3 (acceptance: >= 4x fewer nodes, >= 2x faster).
  for (std::uint32_t n = 3; n <= kMaxBoth; ++n) {
    const Row& red = find_row(n, true);
    const Row& full = find_row(n, false);
    const double node_ratio = static_cast<double>(full.nodes) /
                              static_cast<double>(red.nodes);
    const double speedup = full.build_ms / red.build_ms;
    std::cout << "n=" << n << ": " << util::fixed(node_ratio, 2)
              << "x fewer materialized nodes, " << util::fixed(speedup, 2)
              << "x faster build\n";
    if (node_ratio < 4.0) {
      std::cerr << "GATE FAILED: node reduction < 4x at n=" << n << "\n";
      ++failures;
    }
    if (speedup < 2.0) {
      std::cerr << "GATE FAILED: build speedup < 2x at n=" << n << "\n";
      ++failures;
    }
  }

  std::cout << "\nBit-identity of Step 2 across engines (n=3)... ";
  const int id_failures =
      check_bit_identity(spec.catalog, flow::make_instances(flows, 3));
  failures += id_failures;
  if (id_failures == 0) std::cout << "identical.\n";

  util::Json out = util::Json::object();
  out.set("spec", util::Json::string("t2.flow:PIOR|||PIOW"));
  util::Json jrows = util::Json::array();
  for (const Row& r : rows) {
    util::Json jr = util::Json::object();
    jr.set("instances_per_flow",
           util::Json::number(std::uint64_t{r.instances}));
    jr.set("engine", util::Json::string(r.reduced ? "reduced" : "unreduced"));
    jr.set("nodes", util::Json::number(std::uint64_t{r.nodes}));
    jr.set("edges", util::Json::number(std::uint64_t{r.edges}));
    jr.set("product_states", util::Json::number(r.product_states));
    jr.set("product_edges", util::Json::number(r.product_edges));
    jr.set("build_ms", util::Json::number(r.build_ms));
    jr.set("peak_rss_kb",
           util::Json::number(static_cast<std::int64_t>(r.rss_kb)));
    jrows.push_back(std::move(jr));
  }
  out.set("rows", std::move(jrows));
  out.set("bit_identical", util::Json::boolean(id_failures == 0));
  out.set("gates_passed", util::Json::boolean(failures == 0));
  bench::write_json("BENCH_interleave.json", std::move(out));

  if (failures) {
    std::cerr << failures << " gate/identity failure(s)\n";
    return 1;
  }
  return 0;
}
