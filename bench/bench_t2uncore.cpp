// Gate-level baselines at T2-uncore structure: the Sec. 5.4 comparison
// repeated on a netlist shaped like the T2's NCU/DMU/SIU/CCX/MCU blocks
// (the paper could only run the baselines on the small USB design; this
// model lets us show the same blind spot on T2-like structure, and how
// the cost explodes with size).

#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "baseline/prnet.hpp"
#include "baseline/sigset.hpp"
#include "netlist/restoration.hpp"
#include "netlist/t2_uncore.hpp"
#include "selection/selector.hpp"
#include "soc/scenario.hpp"

namespace {

std::string mark(tracesel::netlist::SignalCoverage c) {
  switch (c) {
    case tracesel::netlist::SignalCoverage::kFull: return "yes";
    case tracesel::netlist::SignalCoverage::kPartial: return "P";
    case tracesel::netlist::SignalCoverage::kNone: return "X";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace tracesel;
  bench::banner("T2-uncore baseline study",
                "SigSeT / PRNet on a T2-shaped gate-level netlist vs "
                "flow-level InfoGain (32-bit budget)");

  netlist::T2Uncore uncore;
  std::cout << "T2-uncore netlist: " << uncore.netlist().num_nets()
            << " nets, " << uncore.netlist().flops().size()
            << " flip-flops\n\n";

  baseline::SigSeTOptions ss_opt;
  ss_opt.sim_cycles = 16;
  const auto t0 = std::chrono::steady_clock::now();
  const auto sigset = baseline::select_sigset(uncore.netlist(), ss_opt);
  const auto t1 = std::chrono::steady_clock::now();
  const auto prnet = baseline::select_prnet(uncore.netlist());
  const auto t2 = std::chrono::steady_clock::now();

  util::Table table({"Interface register", "Block", "SigSeT", "PRNet"});
  std::size_t ss_full = 0, pr_full = 0;
  for (const auto& sg : uncore.interface_signals()) {
    const auto ss = netlist::coverage_of(sg, sigset.selected);
    const auto pr = netlist::coverage_of(sg, prnet.selected);
    if (ss == netlist::SignalCoverage::kFull) ++ss_full;
    if (pr == netlist::SignalCoverage::kFull) ++pr_full;
    table.add_row({sg.name, sg.module, mark(ss), mark(pr)});
  }
  std::cout << table << '\n';

  std::cout << "SigSeT fully captures " << ss_full << '/'
            << uncore.interface_signals().size()
            << " interface registers (SRR " << util::fixed(sigset.srr, 2)
            << ", "
            << std::chrono::duration<double>(t1 - t0).count()
            << " s); PRNet " << pr_full << '/'
            << uncore.interface_signals().size() << " ("
            << std::chrono::duration<double>(t2 - t1).count() << " s)\n";

  // Flow-level selection, for contrast, runs on the Table 1 flows in
  // milliseconds and captures the messages those registers carry.
  soc::T2Design design;
  const auto u = soc::build_interleaving(design, soc::scenario1());
  const selection::MessageSelector selector(design.catalog(), u);
  const auto t3 = std::chrono::steady_clock::now();
  const auto r = selector.select({});
  const auto t4 = std::chrono::steady_clock::now();
  std::cout << "InfoGain on scenario 1 flows: "
            << r.combination.messages.size() << " messages + "
            << r.packed.size() << " packed subgroup(s), coverage "
            << util::pct(r.coverage) << ", in "
            << std::chrono::duration<double, std::milli>(t4 - t3).count()
            << " ms\n";

  // Restoration cost growth with uncore size (the scalability wall).
  util::Table growth({"cores", "data width", "flops", "restore time (ms)"});
  for (const auto& [cores, width] :
       {std::pair{4u, 8u}, std::pair{8u, 16u}, std::pair{16u, 32u},
        std::pair{32u, 32u}}) {
    netlist::T2UncoreConfig cfg;
    cfg.cores = cores;
    cfg.data_width = width;
    const netlist::T2Uncore scaled(cfg);
    const auto trace =
        baseline::golden_flop_trace(scaled.netlist(), 16, 7);
    const netlist::RestorationEngine engine(scaled.netlist());
    const auto start = std::chrono::steady_clock::now();
    const auto res =
        engine.restore({scaled.netlist().flops().front()}, trace);
    const auto stop = std::chrono::steady_clock::now();
    (void)res;
    growth.add_row(
        {std::to_string(cores), std::to_string(width),
         std::to_string(scaled.netlist().flops().size()),
         util::fixed(
             std::chrono::duration<double, std::milli>(stop - start).count(),
             2)});
  }
  std::cout << '\n' << growth;
  bench::note("a greedy SRR selection multiplies one restore() evaluation "
              "by (flops x budget); at real T2 size (hundreds of thousands "
              "of flops) that is computationally out of reach - the "
              "paper's scalability argument");
  return 0;
}
