// Regenerates Table 7: representative potential root causes for the Sec. 5.7
// case study (scenario 1), the selected messages available as evidence, and
// the debugging narrative that prunes 8 of 9 causes.

#include <iostream>

#include "bench_util.hpp"
#include "debug/case_study.hpp"

int main() {
  using namespace tracesel;
  bench::banner("Table 7",
                "potential root causes for the debugging case study "
                "(Sec. 5.7)");

  soc::T2Design design;
  const auto cs = soc::standard_case_studies()[0];  // the Sec. 5.7 case
  const auto r = debug::run_case_study(design, cs);

  std::cout << "Selected messages (32-bit buffer, with packing):\n  ";
  for (flow::MessageId m : r.selection.combination.messages)
    std::cout << design.catalog().get(m).name << ' ';
  for (const auto& pg : r.selection.packed)
    std::cout << design.catalog().get(pg.parent).name << '.'
              << pg.subgroup_name << ' ';
  std::cout << "\n\n";

  const auto catalog =
      debug::RootCauseCatalog::for_scenario(design, cs.scenario_id);
  util::Table table({"#", "Potential Cause", "Potential implication",
                     "Suspect IP", "Status after debug"});
  for (const auto& cause : catalog.causes()) {
    const bool surviving =
        std::any_of(r.report.final_causes.begin(),
                    r.report.final_causes.end(),
                    [&](const debug::RootCause& c) { return c.id == cause.id; });
    table.add_row({std::to_string(cause.id), cause.description,
                   cause.implication, cause.ip,
                   surviving ? "PLAUSIBLE (root cause)" : "pruned"});
  }
  std::cout << table << "\n";

  std::cout << "Symptom: " << r.buggy.failure << " in session "
            << r.buggy.fail_session << " after "
            << r.buggy.messages_to_symptom << " observed messages\n";
  std::cout << "Observed message statuses (traced set):\n";
  for (const auto& [m, status] : r.observation.status) {
    if (status != debug::MsgStatus::kPresentCorrect)
      std::cout << "  " << design.catalog().get(m).name << ": "
                << debug::to_string(status) << '\n';
  }
  std::cout << "Causes pruned: " << util::pct(r.report.pruned_fraction())
            << " (paper: 88.89% for this case study)\n";
  bench::note("the narrative matches Sec. 5.7: absence of "
              "dmusiidata.cputhreadid (packed subgroup) proves DMU never "
              "generated the Mondo interrupt, isolating cause 3");
  return 0;
}
