#pragma once
// Shared helpers for the reproduction benches. Every bench binary prints
// (a) a banner naming the paper table/figure it regenerates, (b) the
// measured table, and (c) the paper's reported numbers for side-by-side
// comparison where applicable (see EXPERIMENTS.md for the discussion).

#include <iostream>
#include <string>

#include "util/table.hpp"

namespace tracesel::bench {

inline void banner(const std::string& experiment,
                   const std::string& description) {
  std::cout << "==============================================================="
               "=\n"
            << experiment << " - " << description << "\n"
            << "Pal et al., 'Application Level Hardware Tracing for Scaling "
               "Post-Silicon Debug', DAC 2018\n"
            << "==============================================================="
               "=\n";
}

inline void note(const std::string& text) {
  std::cout << "note: " << text << "\n";
}

}  // namespace tracesel::bench
