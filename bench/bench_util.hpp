#pragma once
// Shared helpers for the reproduction benches. Every bench binary prints
// (a) a banner naming the paper table/figure it regenerates, (b) the
// measured table, and (c) the paper's reported numbers for side-by-side
// comparison where applicable (see EXPERIMENTS.md for the discussion).

#include <iostream>
#include <string>
#include <utility>

#include "util/atomic_file.hpp"
#include "util/json.hpp"
#include "util/obs.hpp"
#include "util/table.hpp"

namespace tracesel::bench {

inline void banner(const std::string& experiment,
                   const std::string& description) {
  std::cout << "==============================================================="
               "=\n"
            << experiment << " - " << description << "\n"
            << "Pal et al., 'Application Level Hardware Tracing for Scaling "
               "Post-Silicon Debug', DAC 2018\n"
            << "==============================================================="
               "=\n";
}

inline void note(const std::string& text) {
  std::cout << "note: " << text << "\n";
}

/// Stamps `out` with a "process" block — peak RSS and total wall time read
/// from the tracesel::obs metrics registry — giving every BENCH_*.json a
/// memory axis alongside its timing columns. Works with the obs layer
/// disabled (process gauges are maintained unconditionally).
inline void stamp_process(util::Json& out) {
  obs::update_process_gauges();
  util::Json process = util::Json::object();
  process.set("peak_rss_kb",
              util::Json::number(
                  obs::registry().gauge_value("process.peak_rss_kb")));
  process.set("wall_ms", util::Json::number(obs::process_wall_ms()));
  out.set("process", std::move(process));
}

/// Stamps the process block into `out` and writes one BENCH_*.json result
/// file atomically (temp + rename, so an interrupted bench never leaves a
/// truncated JSON behind); false (with a diagnostic) on failure.
///
///// Invariant (audited PR 8): every BENCH_*.json under bench/ is written
/// through this helper — no bench opens an ofstream on its result path
/// directly. New benches must do the same; CI consumers treat the presence
/// of a BENCH file as "complete and parseable".
inline bool write_json(const std::string& path, util::Json out) {
  stamp_process(out);
  const util::Status st =
      util::atomic_write_file(path, out.dump(2) + '\n');
  if (!st.ok()) {
    std::cerr << "cannot write " << path << ": " << st.error().to_string()
              << '\n';
    return false;
  }
  std::cout << "Wrote " << path << '\n';
  return true;
}

}  // namespace tracesel::bench
