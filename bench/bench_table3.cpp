// Regenerates Table 3: trace buffer utilization, flow specification
// coverage, and path localization per case study, with packing (WP) and
// without packing (WoP). 32-bit trace buffer, as the paper assumes.

#include <iostream>

#include "bench_util.hpp"
#include "debug/case_study.hpp"

int main() {
  using namespace tracesel;
  bench::banner("Table 3",
                "trace buffer utilization, flow spec coverage, path "
                "localization (WP = with packing, WoP = without)");

  soc::T2Design design;
  util::Table table({"Case study", "Scenario", "Util WP", "Util WoP",
                     "FSP Cov WP", "FSP Cov WoP", "Path Local WP",
                     "Path Local WoP"});

  double sum_util_wp = 0.0, sum_cov_wp = 0.0;
  double max_loc_wp = 0.0, max_loc_wop = 0.0;
  const auto cases = soc::standard_case_studies();
  for (const auto& cs : cases) {
    debug::CaseStudyOptions wp, wop;
    wop.packing = false;
    const auto with = debug::run_case_study(design, cs, wp);
    const auto without = debug::run_case_study(design, cs, wop);

    table.add_row({std::to_string(cs.id),
                   "Scenario " + std::to_string(cs.scenario_id),
                   util::pct(with.selection.utilization()),
                   util::pct(without.selection.utilization()),
                   util::pct(with.selection.coverage),
                   util::pct(without.selection.coverage),
                   util::pct(with.localization.fraction, 6),
                   util::pct(without.localization.fraction, 6)});

    sum_util_wp += with.selection.utilization();
    sum_cov_wp += with.selection.coverage;
    max_loc_wp = std::max(max_loc_wp, with.localization.fraction);
    max_loc_wop = std::max(max_loc_wop, without.localization.fraction);
  }
  std::cout << table << "\n";

  const double n = static_cast<double>(cases.size());
  std::cout << "Headline (Sec. 1): average trace buffer utilization WP = "
            << util::pct(sum_util_wp / n)
            << " (paper: 98.96%), average FSP coverage WP = "
            << util::pct(sum_cov_wp / n) << " (paper: 94.3%)\n"
            << "Worst-case path localization: WP = "
            << util::pct(max_loc_wp, 6) << " (paper: <= 0.31%), WoP = "
            << util::pct(max_loc_wop, 6) << " (paper: <= 6.11%)\n";
  bench::note("paper WP utilization 96.88-100%, WoP 71.87-93.75%; absolute "
              "localization fractions differ because the modeled "
              "interleavings have far more executions than the partial "
              "products the paper explores - the WP <= WoP ordering and "
              "'tiny fraction of paths' property are the reproduced claims");
  return 0;
}
