// Scalability study (google-benchmark): the paper's Sec. 1/5.4 claim is
// that SRR-based gate-level selection cannot scale to SoC-sized designs
// while application-level message selection operates on small flow
// abstractions. This bench measures both sides:
//  - message selection cost vs scenario size and search mode;
//  - restoration (SRR evaluation) and SigSeT selection cost vs netlist
//    size, which grows steeply with flop count.

#include <benchmark/benchmark.h>

#include "baseline/prnet.hpp"
#include "baseline/sigset.hpp"
#include "netlist/usb_design.hpp"
#include "selection/selector.hpp"
#include "soc/scenario.hpp"

namespace {

using namespace tracesel;

void BM_InterleavingBuild(benchmark::State& state) {
  soc::T2Design design;
  const auto scenario = soc::scenario_by_id(static_cast<int>(state.range(0)));
  flow::InterleaveOptions opt;
  opt.symmetry_reduction = state.range(1) != 0;
  std::size_t nodes = 0, edges = 0;
  for (auto _ : state) {
    auto u = soc::build_interleaving(design, scenario, opt);
    nodes = u.num_nodes();
    edges = u.num_edges();
    benchmark::DoNotOptimize(nodes);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["edges"] = static_cast<double>(edges);
}
BENCHMARK(BM_InterleavingBuild)
    ->ArgsProduct({{1, 2, 3}, {0, 1}})
    ->ArgNames({"scenario", "reduced"});

void BM_InfoGainEngineBuild(benchmark::State& state) {
  soc::T2Design design;
  const auto scenario = soc::scenario_by_id(static_cast<int>(state.range(0)));
  const auto u = soc::build_interleaving(design, scenario);
  for (auto _ : state) {
    selection::InfoGainEngine engine(u);
    benchmark::DoNotOptimize(engine.max_gain());
  }
}
BENCHMARK(BM_InfoGainEngineBuild)->Arg(1)->Arg(2)->Arg(3);

void BM_SelectionSearch(benchmark::State& state) {
  soc::T2Design design;
  const auto scenario = soc::scenario_by_id(static_cast<int>(state.range(0)));
  const auto u = soc::build_interleaving(design, scenario);
  const selection::MessageSelector selector(design.catalog(), u);
  selection::SelectorConfig cfg;
  cfg.mode = state.range(1) == 0 ? selection::SearchMode::kMaximal
                                 : selection::SearchMode::kGreedy;
  for (auto _ : state) {
    auto r = selector.select(cfg);
    benchmark::DoNotOptimize(r.gain);
  }
}
BENCHMARK(BM_SelectionSearch)
    ->ArgsProduct({{1, 2, 3}, {0, 1}})
    ->ArgNames({"scenario", "greedy"});

void BM_PathCounting(benchmark::State& state) {
  soc::T2Design design;
  const auto scenario = soc::scenario_by_id(static_cast<int>(state.range(0)));
  const auto u = soc::build_interleaving(design, scenario);
  for (auto _ : state) {
    benchmark::DoNotOptimize(u.count_paths());
  }
}
BENCHMARK(BM_PathCounting)->Arg(1)->Arg(3);

/// Synthetic netlist: `n` shift/feedback chains of 8 flops each, lightly
/// cross-coupled — SRR evaluation cost grows superlinearly in flop count.
netlist::Netlist make_chained_netlist(int chains) {
  netlist::Netlist nl;
  const auto in = nl.add_input("in");
  netlist::NetId prev_chain_tail = in;
  for (int c = 0; c < chains; ++c) {
    netlist::NetId prev = prev_chain_tail;
    netlist::NetId tail = netlist::kInvalidNet;
    for (int i = 0; i < 8; ++i) {
      const auto f =
          nl.add_flop("c" + std::to_string(c) + "_f" + std::to_string(i));
      nl.set_flop_input(f, i % 3 == 2 ? nl.add_xor(prev, in)
                                      : nl.add_gate(netlist::GateType::kBuf,
                                                    {prev}));
      prev = f;
      tail = f;
    }
    prev_chain_tail = tail;
  }
  return nl;
}

void BM_RestorationSweep(benchmark::State& state) {
  const auto nl = make_chained_netlist(static_cast<int>(state.range(0)));
  const auto trace = baseline::golden_flop_trace(nl, 24, 7);
  const netlist::RestorationEngine engine(nl);
  const std::vector<netlist::NetId> traced{nl.flops().front()};
  for (auto _ : state) {
    auto r = engine.restore(traced, trace);
    benchmark::DoNotOptimize(r.restored_flop_cycles);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RestorationSweep)->RangeMultiplier(2)->Range(2, 32)->Complexity();

void BM_SigSeTSelection(benchmark::State& state) {
  const auto nl = make_chained_netlist(static_cast<int>(state.range(0)));
  baseline::SigSeTOptions opt;
  opt.budget_bits = 8;
  opt.sim_cycles = 16;
  for (auto _ : state) {
    auto r = baseline::select_sigset(nl, opt);
    benchmark::DoNotOptimize(r.srr);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SigSeTSelection)->RangeMultiplier(2)->Range(2, 16)->Complexity();

void BM_PrNetSelection(benchmark::State& state) {
  const auto nl = make_chained_netlist(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = baseline::select_prnet(nl);
    benchmark::DoNotOptimize(r.selected.size());
  }
}
BENCHMARK(BM_PrNetSelection)->Arg(4)->Arg(16);

void BM_UsbSigSeT(benchmark::State& state) {
  netlist::UsbDesign usb;
  baseline::SigSeTOptions opt;
  opt.budget_bits = static_cast<std::size_t>(state.range(0));
  opt.sim_cycles = 16;
  for (auto _ : state) {
    auto r = baseline::select_sigset(usb.netlist(), opt);
    benchmark::DoNotOptimize(r.srr);
  }
}
BENCHMARK(BM_UsbSigSeT)->Arg(8)->Arg(16);

void BM_UsbInfoGain(benchmark::State& state) {
  netlist::UsbDesign usb;
  const auto u = usb.interleaving(2);
  const selection::MessageSelector selector(usb.catalog(), u);
  for (auto _ : state) {
    auto r = selector.select({});
    benchmark::DoNotOptimize(r.gain);
  }
}
BENCHMARK(BM_UsbInfoGain);

}  // namespace

BENCHMARK_MAIN();
