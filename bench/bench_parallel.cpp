// Parallel selection engine: wall-clock speedup and bit-identity check.
//
// Drives the tracesel::Session facade over the largest shipped spec (the
// full data/t2.flow catalog, every flow interleaved) and reports select()
// wall clock at --jobs 1 (the serial engine) vs 2 and 4 (the sharded
// streaming engine), plus Monte-Carlo debug trials at the same job counts.
// Every parallel result is compared field-by-field against the serial
// reference — any difference is a determinism bug and the bench exits
// nonzero, so CI can run it as a check.
//
// Two effects are visible in the numbers: thread-level parallelism (one
// shard per worker; needs real cores) and the streaming enumerator itself,
// which scores combinations in place instead of materializing and sorting
// the full combination list the serial path builds. The second effect is
// why jobs=4 beats jobs=1 even on a single-core container.

#include <chrono>
#include <cstdint>
#include <iostream>
#include <thread>

#include "bench_util.hpp"
#include "tracesel/tracesel.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace tracesel;

double best_of_ms(int repeats, const auto& fn) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

bool identical(const selection::SelectionResult& a,
               const selection::SelectionResult& b) {
  return a.combination.messages == b.combination.messages &&
         a.combination.width == b.combination.width && a.packed == b.packed &&
         a.gain == b.gain && a.gain_unpacked == b.gain_unpacked &&
         a.coverage == b.coverage &&
         a.coverage_unpacked == b.coverage_unpacked &&
         a.used_width == b.used_width && a.buffer_width == b.buffer_width;
}

int bench_selection(util::Json& jrows) {
  int failures = 0;
  std::cout << "Selection on the full t2.flow spec (every flow, one indexed "
               "instance; buffer 48):\n";
  util::Table table({"Mode", "Jobs", "Wall ms", "Speedup", "Identical"});
  auto record = [&](const char* mode, std::size_t jobs, double wall_ms,
                    double speedup, bool ok) {
    util::Json jr = util::Json::object();
    jr.set("bench", util::Json::string("selection"));
    jr.set("mode", util::Json::string(mode));
    jr.set("jobs", util::Json::number(std::uint64_t{jobs}));
    jr.set("wall_ms", util::Json::number(wall_ms));
    jr.set("speedup", util::Json::number(speedup));
    jr.set("identical", util::Json::boolean(ok));
    jrows.push_back(std::move(jr));
  };
  for (const auto& [mode, mode_name] :
       {std::pair{selection::SearchMode::kMaximal, "maximal"},
        std::pair{selection::SearchMode::kExhaustive, "exhaustive"}}) {
    auto session = Session::from_spec_file(TRACESEL_DATA_DIR "/t2.flow");
    session.config().buffer_width = 48;
    session.config().mode = mode;
    session.config().max_combinations = std::size_t{1} << 26;
    session.interleave(1);

    session.jobs(1);
    auto reference = session.select();  // warm up caches, then time
    const double serial_ms =
        best_of_ms(5, [&] { reference = session.select(); });
    table.add_row({mode_name, "1", util::fixed(serial_ms, 2), "1.00", "ref"});
    record(mode_name, 1, serial_ms, 1.0, true);

    for (const std::size_t jobs : {std::size_t{2}, std::size_t{4}}) {
      session.jobs(jobs);
      auto got = session.select();
      const double par_ms = best_of_ms(5, [&] { got = session.select(); });
      const bool ok = identical(reference, got);
      if (!ok) ++failures;
      table.add_row({mode_name, std::to_string(jobs),
                     util::fixed(par_ms, 2),
                     util::fixed(serial_ms / par_ms, 2),
                     ok ? "yes" : "NO"});
      record(mode_name, jobs, par_ms, serial_ms / par_ms, ok);
    }
  }
  std::cout << table << '\n';
  return failures;
}

int bench_monte_carlo(util::Json& jrows) {
  int failures = 0;
  std::cout << "Monte-Carlo debug trials (case study 1, 8 runs):\n";
  util::Table table({"Jobs", "Wall ms", "Speedup", "Identical"});
  auto record = [&](std::size_t jobs, double wall_ms, double speedup,
                    bool ok) {
    util::Json jr = util::Json::object();
    jr.set("bench", util::Json::string("monte_carlo"));
    jr.set("jobs", util::Json::number(std::uint64_t{jobs}));
    jr.set("wall_ms", util::Json::number(wall_ms));
    jr.set("speedup", util::Json::number(speedup));
    jr.set("identical", util::Json::boolean(ok));
    jrows.push_back(std::move(jr));
  };
  soc::T2Design design;
  const auto cases = soc::standard_case_studies();
  const debug::CaseStudyOptions base;

  auto reference = debug::evaluate_case_study(design, cases[0], base, 8, 1);
  const double serial_ms = best_of_ms(3, [&] {
    reference = debug::evaluate_case_study(design, cases[0], base, 8, 1);
  });
  table.add_row({"1", util::fixed(serial_ms, 2), "1.00", "ref"});
  record(1, serial_ms, 1.0, true);

  for (const std::size_t jobs : {std::size_t{2}, std::size_t{4}}) {
    auto got = debug::evaluate_case_study(design, cases[0], base, 8, jobs);
    const double par_ms = best_of_ms(3, [&] {
      got = debug::evaluate_case_study(design, cases[0], base, 8, jobs);
    });
    const bool ok =
        reference.runs == got.runs &&
        reference.failures_detected == got.failures_detected &&
        reference.pruned_fraction.mean == got.pruned_fraction.mean &&
        reference.pruned_fraction.stddev == got.pruned_fraction.stddev &&
        reference.localization_fraction.mean ==
            got.localization_fraction.mean &&
        reference.messages_investigated.mean ==
            got.messages_investigated.mean &&
        reference.pairs_investigated.mean == got.pairs_investigated.mean;
    if (!ok) ++failures;
    table.add_row({std::to_string(jobs), util::fixed(par_ms, 2),
                   util::fixed(serial_ms / par_ms, 2), ok ? "yes" : "NO"});
    record(jobs, par_ms, serial_ms / par_ms, ok);
  }
  std::cout << table << '\n';
  return failures;
}

}  // namespace

int main() {
  std::cout << "Hardware threads: " << std::thread::hardware_concurrency()
            << " (thread-level speedup needs >1; the streaming-enumerator "
               "speedup does not)\n\n";
  int failures = 0;
  util::Json jrows = util::Json::array();
  failures += bench_selection(jrows);
  failures += bench_monte_carlo(jrows);

  util::Json out = util::Json::object();
  out.set("spec", util::Json::string("t2.flow"));
  out.set("hardware_threads",
          util::Json::number(
              std::uint64_t{std::thread::hardware_concurrency()}));
  out.set("rows", std::move(jrows));
  out.set("all_identical", util::Json::boolean(failures == 0));
  bench::write_json("BENCH_parallel.json", std::move(out));

  if (failures) {
    std::cerr << failures
              << " parallel result(s) differed from the serial reference\n";
    return 1;
  }
  std::cout << "All parallel results bit-identical to the serial "
               "reference.\n";
  return 0;
}
