// Regenerates Table 5: per-message bug coverage (fraction of injected bugs
// affecting the message), message importance (1 / bug coverage), whether
// our method selects the message, and in which usage scenarios.
//
// Bug coverage is measured exactly as Sec. 5.5 defines it: a message is
// affected by a bug if its value (or presence/routing) in an execution of
// the buggy design differs from the bug-free design.

#include <iostream>
#include <map>
#include <set>
#include <sstream>

#include "bench_util.hpp"
#include "debug/case_study.hpp"

using namespace tracesel;

namespace {

/// Messages whose golden/buggy streams differ (value, count or routing).
std::set<flow::MessageId> affected_messages(const soc::T2Design& design,
                                            const soc::Scenario& scenario,
                                            const bug::Bug& bug) {
  soc::SocSimulator golden(design, scenario);
  soc::SocSimulator buggy(design, scenario);
  bug::Bug armed = bug;
  armed.trigger_session = 0;
  buggy.inject(armed);
  soc::SimOptions opt;
  opt.sessions = 2;
  opt.seed = 4242;
  const auto g = golden.run(opt);
  const auto b = buggy.run(opt);

  // Align per (message, index, session) streams and diff.
  using Key = std::tuple<flow::MessageId, std::uint32_t, std::uint32_t>;
  std::map<Key, std::vector<const soc::TimedMessage*>> gs, bs;
  for (const auto& tm : g.messages)
    gs[{tm.msg.message, tm.msg.index, tm.session}].push_back(&tm);
  for (const auto& tm : b.messages)
    bs[{tm.msg.message, tm.msg.index, tm.session}].push_back(&tm);

  std::set<flow::MessageId> affected;
  for (const auto& [key, gseq] : gs) {
    const auto it = bs.find(key);
    const std::size_t blen = it == bs.end() ? 0 : it->second.size();
    if (blen != gseq.size()) {
      affected.insert(std::get<0>(key));
      continue;
    }
    for (std::size_t i = 0; i < gseq.size(); ++i) {
      if (gseq[i]->value != it->second[i]->value ||
          gseq[i]->dst != it->second[i]->dst)
        affected.insert(std::get<0>(key));
    }
  }
  return affected;
}

}  // namespace

int main() {
  bench::banner("Table 5", "selection of important messages (bug coverage "
                           "and message importance)");

  soc::T2Design design;
  const auto bugs = soc::standard_bugs(design);
  const auto scenarios = soc::all_scenarios();

  // affecting[m] = set of bug ids whose effect reaches message m.
  std::map<flow::MessageId, std::set<int>> affecting;
  for (const bug::Bug& b : bugs) {
    for (const soc::Scenario& s : scenarios) {
      bool relevant = false;
      for (const auto* f : soc::scenario_flows(design, s)) {
        if (f->uses_message(b.target)) relevant = true;
      }
      if (!relevant) continue;
      for (flow::MessageId m : affected_messages(design, s, b))
        affecting[m].insert(b.id);
    }
  }

  // Which messages does the method select (WP, 32-bit buffer), per scenario?
  std::map<flow::MessageId, std::vector<int>> selected_in;
  for (const soc::Scenario& s : scenarios) {
    const auto u = soc::build_interleaving(design, s);
    const selection::MessageSelector selector(design.catalog(), u);
    const auto r = selector.select({});
    for (flow::MessageId m : r.observable()) selected_in[m].push_back(s.id);
  }

  util::Table table({"Message", "Affecting Bug IDs", "Bug coverage",
                     "Message importance", "Selected Y/N", "Usage scenario"});
  const double total_bugs = static_cast<double>(bugs.size());
  for (flow::MessageId m = 0; m < design.catalog().size(); ++m) {
    const auto& name = design.catalog().get(m).name;
    std::ostringstream ids;
    const auto it = affecting.find(m);
    const std::size_t count = it == affecting.end() ? 0 : it->second.size();
    if (it != affecting.end()) {
      bool first = true;
      for (int id : it->second) {
        if (!first) ids << ", ";
        ids << id;
        first = false;
      }
    }
    const double coverage = static_cast<double>(count) / total_bugs;
    std::ostringstream scen;
    const auto sit = selected_in.find(m);
    if (sit != selected_in.end()) {
      bool first = true;
      for (int s : sit->second) {
        if (!first) scen << ", ";
        scen << s;
        first = false;
      }
    }
    table.add_row({name, count ? ids.str() : "-",
                   count ? util::fixed(coverage, 2) : "-",
                   count ? util::fixed(1.0 / coverage, 2) : "-",
                   sit != selected_in.end() ? "Y" : "N",
                   sit != selected_in.end() ? scen.str() : "-"});
  }
  std::cout << table << "\n";

  bench::note("reproduced claims: bugs are subtle (each affects few "
              "messages, so most messages have low bug coverage / high "
              "importance), and wide messages (dmusiidata 20b, ncuupreq "
              "16b) are only selectable through packing - the paper's m9 / "
              "m15 'too wide to select' rows correspond to the unselected "
              "wide messages here");
  return 0;
}
