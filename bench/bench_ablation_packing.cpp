// Ablation: the value of Step 3 packing across trace-buffer widths.
// For every scenario and width, compares utilization / coverage / gain
// with and without packing — quantifying when subgroup packing pays
// (Sec. 3.3 / Sec. 5.1 claim: packing lifts utilization to ~100% and
// raises coverage whenever leftover bits fit a subgroup).

#include <iostream>

#include "bench_util.hpp"
#include "selection/selector.hpp"
#include "soc/scenario.hpp"

int main() {
  using namespace tracesel;
  bench::banner("Ablation: packing",
                "Step 3 on/off across buffer widths and scenarios");

  soc::T2Design design;
  for (const soc::Scenario& s : soc::all_scenarios()) {
    const auto u = soc::build_interleaving(design, s);
    const selection::MessageSelector selector(design.catalog(), u);

    std::cout << s.name << ":\n";
    util::Table table({"Buffer", "Util WoP", "Util WP", "Cov WoP", "Cov WP",
                       "Gain WoP", "Gain WP", "Packed subgroups"});
    for (const std::uint32_t width : {16u, 20u, 24u, 28u, 32u, 40u, 48u,
                                      64u}) {
      selection::SelectorConfig wop, wp;
      wop.buffer_width = wp.buffer_width = width;
      wop.packing = false;
      wp.packing = true;
      const auto a = selector.select(wop);
      const auto b = selector.select(wp);
      std::string packed;
      for (const auto& pg : b.packed) {
        if (!packed.empty()) packed += ' ';
        packed += design.catalog().get(pg.parent).name + '.' +
                  pg.subgroup_name;
      }
      table.add_row({std::to_string(width), util::pct(a.utilization()),
                     util::pct(b.utilization()), util::pct(a.coverage),
                     util::pct(b.coverage), util::fixed(a.gain, 3),
                     util::fixed(b.gain, 3),
                     packed.empty() ? "-" : packed});
    }
    std::cout << table << '\n';
  }
  bench::note("packing never hurts (gain/coverage weakly increase) and "
              "fills the buffer whenever a subgroup fits the leftover; at "
              "very wide buffers everything already fits and packing "
              "becomes a no-op");
  return 0;
}
