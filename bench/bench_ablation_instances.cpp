// Ablation: concurrency depth. The paper fixes two concurrently executing
// instances per flow (tagging makes them distinguishable); this bench
// sweeps 1..3 instances per flow and reports how the interleaved product,
// the selected combination, and its quality metrics respond — checking
// that the selection is stable under deeper concurrency (it should be:
// the per-message structure, not the instance count, drives the choice).

#include <iostream>

#include "bench_util.hpp"
#include "selection/selector.hpp"
#include "soc/scenario.hpp"

int main() {
  using namespace tracesel;
  bench::banner("Ablation: instances per flow",
                "interleaving depth 1..3 for every scenario");

  soc::T2Design design;
  util::Table table({"Scenario", "Instances", "States", "Occurrences",
                     "Selected messages", "Gain", "Coverage", "Util"});
  for (const soc::Scenario& base : soc::all_scenarios()) {
    std::string last_selection;
    for (std::uint32_t instances = 1; instances <= 3; ++instances) {
      soc::Scenario s = base;
      s.instances_per_flow = instances;
      // Skip configurations whose full product would exceed the
      // interleaver's node budget (scenario 3 at depth 3 is ~10M states).
      double estimate = 1.0;
      for (const auto* f : soc::scenario_flows(design, s)) {
        for (std::uint32_t i = 0; i < instances; ++i)
          estimate *= static_cast<double>(f->num_states());
      }
      if (estimate > 2e6) {
        table.add_row({s.name, std::to_string(instances), "(skipped)",
                       "-", "product too large", "-", "-", "-"});
        continue;
      }
      const auto u = soc::build_interleaving(design, s);
      const selection::MessageSelector selector(design.catalog(), u);
      const auto r = selector.select({});
      std::string names;
      for (const auto m : r.combination.messages) {
        if (!names.empty()) names += ' ';
        names += design.catalog().get(m).name;
      }
      table.add_row({s.name, std::to_string(instances),
                     std::to_string(u.num_nodes()),
                     std::to_string(u.num_edges()), names,
                     util::fixed(r.gain, 3), util::pct(r.coverage),
                     util::pct(r.utilization())});
      if (!last_selection.empty() && last_selection != names)
        std::cout << "  [selection changed between depths for " << s.name
                  << "]\n";
      last_selection = names;
    }
  }
  std::cout << table << '\n';
  bench::note("product size grows multiplicatively with instance count "
              "while the selected set stays (nearly) unchanged - the "
              "application-level abstraction is what keeps the method "
              "scalable");
  return 0;
}
