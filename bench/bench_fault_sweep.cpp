// Degradation study: debugging accuracy as the capture channel gets
// noisier. Sweeps the fault-injection rate over the five T2 case studies
// (several seeds each) and emits a JSON accuracy/degradation curve.
//
// "Accuracy" is measured against the clean-channel verdict: a faulty run
// scores a hit when its top confidence-weighted cause is one of the causes
// the exact (fault-free) pipeline ends with. The curve should fall
// monotonically-ish with the fault rate — and the pipeline must complete
// every run, no matter how hostile the channel.

#include <exception>
#include <iostream>
#include <set>
#include <vector>

#include "bench_util.hpp"
#include "debug/case_study.hpp"
#include "util/json.hpp"

int main() {
  using namespace tracesel;
  bench::banner("Fault sweep",
                "debugging accuracy vs capture fault rate (JSON curve)");

  soc::T2Design design;
  const auto cases = soc::standard_case_studies();
  const std::vector<double> rates = {0.0,  0.05, 0.10, 0.15,
                                     0.20, 0.30, 0.40, 0.50};
  constexpr std::uint64_t kSeeds = 5;

  // Clean-channel reference verdicts, one per case study.
  std::vector<std::set<int>> reference;
  for (const auto& cs : cases) {
    const auto r = debug::run_case_study(design, cs);
    std::set<int> ids;
    for (const auto& c : r.report.final_causes) ids.insert(c.id);
    reference.push_back(std::move(ids));
  }

  util::Json curve = util::Json::array();
  std::size_t crashes = 0;
  for (const double rate : rates) {
    std::size_t runs = 0, hits = 0, degraded_runs = 0;
    double score_sum = 0.0, quality_sum = 0.0, confidence_sum = 0.0;
    double attempts_sum = 0.0;
    for (std::size_t ci = 0; ci < cases.size(); ++ci) {
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        debug::CaseStudyOptions opt;
        opt.faults.rate = rate;
        opt.faults.seed = seed;
        try {
          const auto r = debug::run_case_study(design, cases[ci], opt);
          ++runs;
          if (!r.ranked_causes.empty()) {
            const auto& top = r.ranked_causes.front();
            if (reference[ci].count(top.cause.id) > 0) ++hits;
            score_sum += top.score;
          }
          quality_sum += r.observation.quality();
          confidence_sum += r.robust_localization.confidence;
          attempts_sum += static_cast<double>(r.capture_attempts);
          if (r.capture_degraded) ++degraded_runs;
        } catch (const std::exception& e) {
          // The whole point of the robustness layer is that this branch
          // never executes; count it so the curve exposes any regression.
          ++crashes;
          std::cerr << "crash at rate " << rate << " case "
                    << cases[ci].id << " seed " << seed << ": " << e.what()
                    << '\n';
        }
      }
    }
    const double n = static_cast<double>(runs > 0 ? runs : 1);
    util::Json point = util::Json::object();
    point.set("fault_rate", util::Json::number(rate));
    point.set("runs", util::Json::number(runs));
    point.set("accuracy",
              util::Json::number(static_cast<double>(hits) / n));
    point.set("mean_top_score", util::Json::number(score_sum / n));
    point.set("mean_capture_quality", util::Json::number(quality_sum / n));
    point.set("mean_localization_confidence",
              util::Json::number(confidence_sum / n));
    point.set("mean_capture_attempts",
              util::Json::number(attempts_sum / n));
    point.set("degraded_runs", util::Json::number(degraded_runs));
    curve.push_back(std::move(point));
  }

  util::Json out = util::Json::object();
  out.set("bench", util::Json::string("fault_sweep"));
  out.set("case_studies", util::Json::number(cases.size()));
  out.set("seeds_per_point", util::Json::number(kSeeds));
  out.set("crashes", util::Json::number(crashes));
  out.set("curve", std::move(curve));
  std::cout << out.dump(2) << '\n';
  if (!bench::write_json("BENCH_fault_sweep.json", std::move(out))) return 2;

  bench::note("accuracy is measured against the fault-free verdict; it "
              "should decay gracefully with the fault rate while 'crashes' "
              "stays 0 - hard failures, not wrong answers, are what the "
              "robustness layer eliminates");
  return crashes == 0 ? 0 : 1;
}
