// Regenerates Table 1: usage scenarios, participating flows (with state and
// message counts), participating IPs, and potential root causes.

#include <iostream>
#include <sstream>

#include "bench_util.hpp"
#include "debug/root_cause.hpp"
#include "soc/scenario.hpp"

int main() {
  using namespace tracesel;
  bench::banner("Table 1", "usage scenarios and participating flows in T2");

  soc::T2Design design;
  util::Table table({"Usage Scenario", "PIOR", "PIOW", "NCUU", "NCUD", "Mon",
                     "Participating IPs", "Potential root causes"});

  // Flow annotation row: (number of flow states, number of messages).
  {
    std::vector<std::string> row{"(flow states, messages)"};
    for (const char* name : {"PIOR", "PIOW", "NCUU", "NCUD", "Mon"}) {
      const flow::Flow& f = design.flow_by_name(name);
      std::ostringstream os;
      os << '(' << f.num_states() << ", " << f.messages().size() << ')';
      row.push_back(os.str());
    }
    table.add_row(std::move(row));
  }

  for (const soc::Scenario& s : soc::all_scenarios()) {
    std::vector<std::string> row{s.name};
    for (const char* name : {"PIOR", "PIOW", "NCUU", "NCUD", "Mon"}) {
      const bool used = std::find(s.flow_names.begin(), s.flow_names.end(),
                                  name) != s.flow_names.end();
      row.push_back(used ? "yes" : "-");
    }
    std::string ips;
    for (const soc::Ip ip : s.ips) {
      if (!ips.empty()) ips += ", ";
      ips += soc::ip_name(ip);
    }
    row.push_back(ips);
    // Cross-check the scenario's declared count against the catalog.
    const auto catalog =
        debug::RootCauseCatalog::for_scenario(design, s.id);
    row.push_back(std::to_string(catalog.size()));
    table.add_row(std::move(row));
  }

  std::cout << table << "\n";
  bench::note("paper reports 9 / 8 / 9 potential root causes; the modeled "
              "catalogs match by construction");
  return 0;
}
