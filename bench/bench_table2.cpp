// Regenerates Table 2: representative injected bugs (id, depth, category,
// functional implication, buggy IP), plus the full 14-bug inventory with
// transaction-level effects.

#include <iostream>

#include "bench_util.hpp"
#include "soc/t2_bugs.hpp"

int main() {
  using namespace tracesel;
  bench::banner("Table 2", "representative bugs injected in IP blocks");

  soc::T2Design design;
  const auto bugs = soc::standard_bugs(design);

  util::Table rep({"Bug ID", "Bug depth", "Bug category", "Bug type",
                   "Buggy IP"});
  // The paper's four representative rows map to ids 1, 17, 3, 27 here
  // (wrong command generation, data corruption, malformed UCB request,
  // wrong decode of CPU-buffer packet).
  for (int id : {1, 17, 3, 27}) {
    const bug::Bug b = soc::bug_by_id(design, id);
    rep.add_row({std::to_string(b.id), std::to_string(b.depth),
                 bug::to_string(b.category), b.type, b.ip});
  }
  std::cout << rep << "\n";

  util::Table full({"Bug ID", "Name", "Category", "Effect", "IP", "Target",
                    "Symptom"});
  for (const bug::Bug& b : bugs) {
    full.add_row({std::to_string(b.id), b.name, bug::to_string(b.category),
                  bug::to_string(b.effect),
                  b.ip, design.catalog().get(b.target).name, b.symptom});
  }
  std::cout << "Full injected-bug library (14 bugs across 5 IPs, Sec. 4):\n"
            << full << "\n";
  return 0;
}
