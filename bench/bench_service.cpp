// traceseld cache economics: cold-vs-warm latency through the daemon
// (DESIGN.md §13, docs/service.md). Starts an in-process Server on a real
// Unix socket, submits each design's job cold (computes), warm (result
// cache hit) and concurrently from four tenants at once, and reports the
// amortization the shared ArtifactStore buys. Gates on the daemon's
// acceptance property: the warm report must be byte-identical to the cold
// one, and every concurrent tenant must get those same bytes.

#include <unistd.h>

#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

int main() {
  using namespace tracesel;
  using Clock = std::chrono::steady_clock;
  bench::banner("traceseld cache amortization",
                "cold vs warm vs 4-tenant-concurrent job latency through "
                "the daemon");

  service::ServerOptions opt;
  opt.socket_path =
      "/tmp/tsvc_bench_" + std::to_string(::getpid()) + ".sock";
  opt.runners = 4;
  const util::CancelToken shutdown = opt.shutdown;
  service::Server server(std::move(opt));
  const auto started = server.start();
  if (!started.ok()) {
    std::cerr << started.error().to_string() << '\n';
    return 1;
  }
  std::thread daemon([&] { server.serve(); });

  struct Case {
    const char* name;
    JobRequest request;
  };
  std::vector<Case> cases;
  {
    JobRequest fig2;
    fig2.spec = std::string(TRACESEL_DATA_DIR) + "/fig2.flow";
    fig2.buffer_width = 2;
    cases.push_back({"fig2 (2 inst)", fig2});
    JobRequest t2;
    t2.spec = "t2";
    t2.instances = 1;
    cases.push_back({"t2 scenario 1", t2});
    JobRequest usb;
    usb.spec = "usb";
    cases.push_back({"usb (2 inst)", usb});
  }

  const auto submit_ms = [&](const JobRequest& req, std::string* report) {
    auto client = service::Client::connect(server.socket_path());
    if (!client.ok()) throw std::runtime_error(client.error().to_string());
    const auto t0 = Clock::now();
    auto out = client.value().submit(req);
    if (!out.ok()) throw std::runtime_error(out.error().to_string());
    if (!out.value().ok())
      throw std::runtime_error("job status: " + out.value().status);
    if (report) *report = out.value().report_json;
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
  };

  util::Table table({"Workload", "Cold (ms)", "Warm (ms)", "Speedup",
                     "4 tenants warm (ms, max)", "Identical"});
  util::Json results = util::Json::array();
  bool all_identical = true;
  for (const Case& c : cases) {
    std::string cold_report, warm_report;
    const double cold_ms = submit_ms(c.request, &cold_report);
    const double warm_ms = submit_ms(c.request, &warm_report);

    // Four tenants ask for the already-cached answer at once.
    std::vector<std::thread> tenants;
    std::vector<std::string> tenant_reports(4);
    std::vector<double> tenant_ms(4);
    for (int i = 0; i < 4; ++i)
      tenants.emplace_back([&, i] {
        tenant_ms[i] = submit_ms(c.request, &tenant_reports[i]);
      });
    for (auto& t : tenants) t.join();
    double concurrent_max = 0;
    bool identical = warm_report == cold_report && !cold_report.empty();
    for (int i = 0; i < 4; ++i) {
      concurrent_max = std::max(concurrent_max, tenant_ms[i]);
      identical = identical && tenant_reports[i] == cold_report;
    }
    all_identical = all_identical && identical;

    table.add_row({c.name, util::fixed(cold_ms, 2), util::fixed(warm_ms, 2),
                   util::fixed(warm_ms > 0 ? cold_ms / warm_ms : 0.0, 1) +
                       "x",
                   util::fixed(concurrent_max, 2),
                   identical ? "yes" : "NO"});
    util::Json row = util::Json::object();
    row.set("workload", util::Json::string(c.name));
    row.set("cold_ms", util::Json::number(cold_ms));
    row.set("warm_ms", util::Json::number(warm_ms));
    row.set("concurrent_warm_max_ms", util::Json::number(concurrent_max));
    row.set("identical", util::Json::boolean(identical));
    results.push_back(std::move(row));
  }
  std::cout << table << '\n';

  const auto stats = server.store().stats();
  std::cout << "store: " << stats.result_hits << " result hits, "
            << stats.result_misses << " misses, " << stats.collisions
            << " collisions\n";
  bench::note("warm latency is protocol overhead only - the answer is one "
              "cache lookup; concurrent tenants share the entry without "
              "recomputing");

  shutdown.cancel();
  daemon.join();

  util::Json out = util::Json::object();
  out.set("results", std::move(results));
  out.set("result_hits",
          util::Json::number(stats.result_hits));
  if (!bench::write_json("BENCH_service.json", std::move(out))) return 1;
  if (!all_identical) {
    std::cerr << "FAIL: daemon reports diverged from the cold compute\n";
    return 1;
  }
  return 0;
}
