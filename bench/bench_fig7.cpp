// Regenerates Fig. 7: plausible vs pruned root causes per case study
// (the paper prunes an average of 78.89% and a maximum of 88.89%).

#include <iostream>

#include "bench_util.hpp"
#include "debug/case_study.hpp"

int main() {
  using namespace tracesel;
  bench::banner("Fig. 7", "selected-messages root-cause pruning "
                          "distribution per case study");

  soc::T2Design design;
  util::Table table({"Case study", "Potential causes", "Plausible",
                     "Pruned", "Pruned %", "Pruned % (WoP)"});
  double sum = 0.0, best = 0.0;
  const auto cases = soc::standard_case_studies();
  for (const auto& cs : cases) {
    const auto r = debug::run_case_study(design, cs);
    debug::CaseStudyOptions wop;
    wop.packing = false;
    const auto r2 = debug::run_case_study(design, cs, wop);
    const std::size_t total = r.report.catalog_size;
    const std::size_t plausible = r.report.final_causes.size();
    table.add_row({std::to_string(cs.id), std::to_string(total),
                   std::to_string(plausible),
                   std::to_string(total - plausible),
                   util::pct(r.report.pruned_fraction()),
                   util::pct(r2.report.pruned_fraction())});
    sum += r.report.pruned_fraction();
    best = std::max(best, r.report.pruned_fraction());
  }
  std::cout << table << "\n";
  std::cout << "Average pruned: "
            << util::pct(sum / static_cast<double>(cases.size()))
            << " (paper: 78.89%), max pruned: " << util::pct(best)
            << " (paper: 88.89%)\n";
  bench::note("packing visibly helps: case study 1 needs the packed "
              "dmusiidata.cputhreadid subgroup to split 'bypass queue' "
              "from 'interrupt never generated'");
  return 0;
}
