// Symptom latency study (Sec. 4's subtlety claim: "it took up to 457
// observed messages and up to 21,290,999 clock cycles for each bug
// symptom to manifest"). Sweeps how late each case study's active bug
// arms and measures the messages and cycles a validator sits through
// before the symptom shows — the quantity that makes post-silicon bugs
// expensive and trace-buffer depth precious.

#include <iostream>

#include "bench_util.hpp"
#include "debug/case_study.hpp"

int main() {
  using namespace tracesel;
  bench::banner("Symptom latency",
                "observed messages / cycles until each bug manifests, vs "
                "arming session");

  soc::T2Design design;
  util::Table table({"Case study", "Arming session", "Sessions run",
                     "Messages to symptom", "Cycles to symptom",
                     "Symptom"});
  std::size_t max_messages = 0;
  std::uint64_t max_cycles = 0;
  for (const auto& cs : soc::standard_case_studies()) {
    for (const std::uint32_t arm : {1u, 4u, 16u, 64u}) {
      debug::CaseStudyOptions opt;
      opt.active_trigger_session = arm;
      opt.sessions = arm + 4;
      const auto r = debug::run_case_study(design, cs, opt);
      table.add_row({std::to_string(cs.id), std::to_string(arm),
                     std::to_string(opt.sessions),
                     std::to_string(r.buggy.messages_to_symptom),
                     std::to_string(r.buggy.fail_cycle),
                     r.buggy.failed ? r.buggy.failure : "none"});
      max_messages = std::max(max_messages, r.buggy.messages_to_symptom);
      max_cycles = std::max(max_cycles, r.buggy.fail_cycle);
    }
  }
  std::cout << table << '\n';
  std::cout << "Maximum observed: " << max_messages
            << " messages (paper: up to 457), " << max_cycles
            << " cycles (paper: up to 21,290,999 RTL cycles; ours are "
               "transaction-level beats)\n";
  bench::note("latency scales linearly with the arming session: a bug "
              "that arms late forces the validator through thousands of "
              "healthy messages first - exactly why trace qualification "
              "(TraceTrigger) and message-level selection matter");
  return 0;
}
