// Ablation: hybrid trace configuration (messages first, SRR flops in the
// leftover bits). Quantifies what the leftover buys: message coverage is
// untouched by construction, and the extra flops add gate-level state
// restoration the pure message configuration leaves at zero.

#include <iostream>

#include "bench_util.hpp"
#include "baseline/hybrid.hpp"
#include "baseline/sigset.hpp"
#include "netlist/restoration.hpp"
#include "netlist/usb_design.hpp"

int main() {
  using namespace tracesel;
  bench::banner("Ablation: hybrid message+SRR configuration",
                "USB design; leftover buffer bits handed to greedy SRR");

  netlist::UsbDesign usb;
  const auto u = usb.interleaving(2);
  const auto trace = baseline::golden_flop_trace(usb.netlist(), 16, 7);
  const netlist::RestorationEngine engine(usb.netlist());

  util::Table table({"Buffer", "Message bits", "Flop bits", "Msg coverage",
                     "SRR of extra flops", "Flop-state known"});
  for (const std::uint32_t width : {26u, 28u, 32u, 40u, 48u}) {
    baseline::HybridOptions opt;
    opt.buffer_width = width;
    opt.sim_cycles = 16;
    const auto r = baseline::select_hybrid(usb.catalog(), u, usb.netlist(),
                                           opt);
    double known = 0.0;
    if (!r.extra_flops.empty()) {
      const auto res = engine.restore(r.extra_flops, trace);
      known = res.state_coverage();
    }
    table.add_row({std::to_string(width),
                   std::to_string(r.messages.used_width),
                   std::to_string(r.extra_flops.size()),
                   util::pct(r.messages.coverage),
                   r.extra_flops.empty() ? "-" : util::fixed(r.srr, 2),
                   util::pct(known)});
  }
  std::cout << table << '\n';
  bench::note("message coverage is identical to the message-only selection "
              "at every width (messages keep priority); every leftover bit "
              "converts into gate-level observability the paper's "
              "comparison shows messages alone do not provide");
  return 0;
}
