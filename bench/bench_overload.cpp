// traceseld under overload (DESIGN.md §16, docs/service.md "Durability &
// recovery"): a burst of distinct jobs far beyond the queue's capacity hits
// an in-process daemon whose runners are paced to a fixed service time. The
// bench reports the shed rate, the server's retry-after hints, and the
// accepted-job latency distribution (p50/p99) — then proves the hints are
// actionable by replaying every shed job through the resilient client path
// until all land. A final phase measures write-ahead journal replay time at
// restart scale. Gates: every accepted or retried job must finish "ok", and
// every shed must carry a hint at or above the configured floor.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "service/client.hpp"
#include "service/journal.hpp"
#include "service/server.hpp"

namespace {

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * (v.size() - 1) / 100.0);
  return v[idx];
}

}  // namespace

int main() {
  using namespace tracesel;
  using Clock = std::chrono::steady_clock;
  bench::banner("traceseld overload & recovery",
                "shed rate, retry-after hints and accepted-job latency "
                "under a burst, plus journal replay time");

  // 16 concurrent submitters against 2 runners + an 8-deep queue: the
  // burst's instantaneous concurrency exceeds capacity, so a fraction of
  // the offered jobs must shed.
  constexpr std::uint64_t kFloorMs = 25;
  constexpr std::size_t kThreads = 16;
  constexpr std::size_t kPerThread = 4;
  const std::string journal_dir =
      "/tmp/tsel_bench_overload_" + std::to_string(::getpid());
  std::filesystem::remove_all(journal_dir);

  service::ServerOptions opt;
  opt.socket_path =
      "/tmp/tsvc_overload_" + std::to_string(::getpid()) + ".sock";
  opt.runners = 2;
  opt.max_queue = 8;
  opt.retry_after_floor_ms = kFloorMs;
  opt.journal_dir = journal_dir;
  // Pace every job to a fixed service time so the burst actually outruns
  // the runner pool (fig2 jobs alone finish in a millisecond or two).
  opt.on_job_start = [](const JobRequest&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  };
  const util::CancelToken shutdown = opt.shutdown;
  service::Server server(std::move(opt));
  const auto started = server.start();
  if (!started.ok()) {
    std::cerr << started.error().to_string() << '\n';
    return 1;
  }
  std::thread daemon([&] { server.serve(); });

  // kThreads * kPerThread structurally distinct jobs (distinct buffer
  // widths), so duplicate-attach cannot absorb the burst.
  const auto request_for = [](std::size_t i) {
    JobRequest req;
    req.spec = std::string(TRACESEL_DATA_DIR) + "/fig2.flow";
    req.instances = 2;
    req.buffer_width = static_cast<std::uint32_t>(2 + i);
    return req;
  };

  // --- phase 1: one-shot burst, no retries -------------------------------
  std::mutex mu;
  std::vector<double> accepted_ms;
  std::vector<double> hint_ms;
  std::vector<JobRequest> shed_jobs;
  std::atomic<std::uint64_t> failures{0};
  bool hints_ok = true;
  {
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t)
      threads.emplace_back([&, t] {
        auto client = service::Client::connect(server.socket_path());
        if (!client.ok()) {
          failures.fetch_add(kPerThread);
          return;
        }
        for (std::size_t i = 0; i < kPerThread; ++i) {
          const JobRequest req = request_for(t * kPerThread + i);
          service::Client::RetryAfter ra;
          const auto t0 = Clock::now();
          auto out = client.value().submit(req, {}, {}, &ra);
          const double ms =
              std::chrono::duration<double, std::milli>(Clock::now() - t0)
                  .count();
          std::lock_guard<std::mutex> lk(mu);
          if (out.ok() && out.value().status == "ok") {
            accepted_ms.push_back(ms);
          } else if (ra.hinted) {
            hint_ms.push_back(static_cast<double>(ra.ms));
            hints_ok = hints_ok && ra.ms >= kFloorMs;
            shed_jobs.push_back(req);
          } else {
            failures.fetch_add(1);
          }
        }
      });
    for (auto& t : threads) t.join();
  }

  const std::size_t offered = kThreads * kPerThread;
  const double shed_rate =
      static_cast<double>(shed_jobs.size()) / static_cast<double>(offered);
  double hint_mean = 0;
  for (const double h : hint_ms) hint_mean += h;
  if (!hint_ms.empty()) hint_mean /= static_cast<double>(hint_ms.size());

  // --- phase 2: the shed jobs retry with the server's hints --------------
  std::atomic<std::uint64_t> retried_ok{0};
  double retry_makespan_ms = 0;
  {
    const auto t0 = Clock::now();
    std::vector<std::thread> threads;
    for (const JobRequest& req : shed_jobs)
      threads.emplace_back([&, req] {
        auto client = service::Client::connect(server.socket_path());
        if (!client.ok()) return;
        service::Client::SubmitOptions sopt;
        sopt.max_attempts = 50;
        auto out = client.value().submit_resilient(req, sopt);
        if (out.ok() && out.value().status == "ok")
          retried_ok.fetch_add(1);
      });
    for (auto& t : threads) t.join();
    retry_makespan_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  }

  const auto stats = server.stats();
  shutdown.cancel();
  daemon.join();

  // --- phase 3: journal replay time at restart scale ---------------------
  // 2000 accepted+completed pairs plus a tail of pending jobs: the shape of
  // a busy daemon's log right before a crash.
  constexpr std::uint64_t kChurn = 2000;
  constexpr std::uint64_t kPendingTail = 32;
  double recovery_ms = 0;
  std::uint64_t replayed = 0;
  {
    const std::string dir = journal_dir + "/replay";
    service::JobJournal wal;
    service::JournalOptions jo;
    jo.dir = dir;
    jo.rotate_bytes = 0;  // no compaction: measure a worst-case long log
    jo.fsync = false;
    if (!wal.open(jo).ok()) return 1;
    for (std::uint64_t id = 1; id <= kChurn; ++id) {
      wal.accepted(id, request_for(id % 64));
      wal.completed(id, id);
    }
    for (std::uint64_t id = kChurn + 1; id <= kChurn + kPendingTail; ++id)
      wal.accepted(id, request_for(id % 64));
    wal.close();

    service::JobJournal reborn;
    const auto t0 = Clock::now();
    auto rec = reborn.open(jo);
    recovery_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    if (!rec.ok() || rec.value().pending.size() != kPendingTail) {
      std::cerr << "FAIL: journal replay lost jobs\n";
      return 1;
    }
    replayed = rec.value().replayed_records;
  }

  util::Table table({"Metric", "Value"});
  table.add_row({"offered jobs", std::to_string(offered)});
  table.add_row({"accepted", std::to_string(accepted_ms.size())});
  table.add_row({"shed (typed retry-after)", std::to_string(shed_jobs.size())});
  table.add_row({"shed rate", util::fixed(shed_rate * 100.0, 1) + "%"});
  table.add_row({"retry-after hint mean (ms)", util::fixed(hint_mean, 1)});
  table.add_row(
      {"accepted latency p50 (ms)", util::fixed(percentile(accepted_ms, 50), 2)});
  table.add_row(
      {"accepted latency p99 (ms)", util::fixed(percentile(accepted_ms, 99), 2)});
  table.add_row({"hinted retries landed",
                 std::to_string(retried_ok.load()) + "/" +
                     std::to_string(shed_jobs.size())});
  table.add_row({"retry makespan (ms)", util::fixed(retry_makespan_ms, 1)});
  table.add_row({"journal records replayed", std::to_string(replayed)});
  table.add_row({"journal replay time (ms)", util::fixed(recovery_ms, 2)});
  std::cout << table << '\n';
  bench::note("shed submissions cost the client one round trip and carry a "
              "depth-scaled hint; honoring it clears the whole backlog "
              "without hammering the daemon");

  util::Json out = util::Json::object();
  out.set("offered", util::Json::number(std::uint64_t{offered}));
  out.set("accepted", util::Json::number(std::uint64_t{accepted_ms.size()}));
  out.set("shed", util::Json::number(std::uint64_t{shed_jobs.size()}));
  out.set("shed_rate", util::Json::number(shed_rate));
  out.set("retry_after_hint_mean_ms", util::Json::number(hint_mean));
  out.set("queue_p50_ms", util::Json::number(percentile(accepted_ms, 50)));
  out.set("queue_p99_ms", util::Json::number(percentile(accepted_ms, 99)));
  out.set("hinted_retries_ok", util::Json::number(retried_ok.load()));
  out.set("retry_makespan_ms", util::Json::number(retry_makespan_ms));
  out.set("server_retry_after", util::Json::number(stats.retry_after));
  out.set("journal_replayed_records", util::Json::number(replayed));
  out.set("journal_replay_ms", util::Json::number(recovery_ms));
  std::filesystem::remove_all(journal_dir);
  if (!bench::write_json("BENCH_overload.json", std::move(out))) return 2;

  if (failures.load() > 0) {
    std::cerr << "FAIL: " << failures.load()
              << " submission(s) failed without a typed retry-after\n";
    return 1;
  }
  if (!hints_ok) {
    std::cerr << "FAIL: a retry-after hint fell below the configured floor\n";
    return 1;
  }
  if (retried_ok.load() != shed_jobs.size()) {
    std::cerr << "FAIL: a hinted retry never landed\n";
    return 1;
  }
  return 0;
}
