// Extension experiments: debugging case studies on the *branching* flow
// variants (MonNack, PiorRetry) that go beyond the paper's linear Table 1
// flows. Branch evidence ("the NACK was seen but the retry never
// followed") is only expressible with alternative outcomes — these runs
// show the selection/pruning machinery handles it.

#include <iostream>

#include "bench_util.hpp"
#include "debug/extended_causes.hpp"
#include "debug/workbench.hpp"
#include "debug/case_study.hpp"
#include "soc/t2_extended.hpp"

int main() {
  using namespace tracesel;
  bench::banner("Extension: branching-flow case studies",
                "MonNack ||| PiorRetry with NACK/retry bugs (beyond the "
                "paper's linear flows)");

  soc::T2ExtendedDesign design;
  const auto causes = debug::extended_root_causes(design);
  const debug::Workbench bench(
      design.catalog(), {&design.mondo_nack(), &design.pior_retry()},
      causes);

  struct ExtendedCase {
    const char* name;
    bug::Bug bug;
  };
  std::vector<ExtendedCase> cases;
  {
    bug::Bug lost_retry;
    lost_retry.id = 100;
    lost_retry.effect = bug::BugEffect::kDropMessage;
    lost_retry.target = design.reqretry;
    lost_retry.symptom = "HANG: retry lost";
    lost_retry.trigger_session = 1;
    cases.push_back({"X1: retry lost after NACK", lost_retry});

    bug::Bug wrong_nack;
    wrong_nack.id = 101;
    wrong_nack.effect = bug::BugEffect::kCorruptValue;
    wrong_nack.target = design.mondonack;
    wrong_nack.symptom = "FAIL: Bad Trap";
    wrong_nack.trigger_session = 1;
    cases.push_back({"X2: wrong NACK decision", wrong_nack});

    bug::Bug dropped_pioretry;
    dropped_pioretry.id = 102;
    dropped_pioretry.effect = bug::BugEffect::kDropMessage;
    dropped_pioretry.target = design.pioretry;
    dropped_pioretry.symptom = "HANG: PIO retry abandoned";
    dropped_pioretry.trigger_session = 1;
    cases.push_back({"X3: PIO retry abandoned", dropped_pioretry});
  }

  util::Table table({"Case", "Symptom", "Anomalies observed",
                     "Plausible causes", "Pruned", "Diagnosis"});
  for (const auto& c : cases) {
    debug::WorkbenchConfig cfg;
    cfg.sessions = 12;
    const auto r = bench.run({c.bug}, cfg);
    std::string anomalies;
    for (const auto& [m, status] : r.observation.status) {
      if (status == debug::MsgStatus::kPresentCorrect) continue;
      if (!anomalies.empty()) anomalies += ' ';
      anomalies += design.catalog().get(m).name + '=' +
                   debug::to_string(status);
    }
    std::string diagnosis;
    for (const auto& cause : r.report.final_causes) {
      if (!diagnosis.empty()) diagnosis += " / ";
      diagnosis += cause.description;
    }
    table.add_row({c.name,
                   r.buggy.failed ? r.buggy.failure : "none",
                   anomalies.empty() ? "-" : anomalies,
                   std::to_string(r.report.final_causes.size()),
                   util::pct(r.report.pruned_fraction()), diagnosis});
  }
  std::cout << table << '\n';

  // --- DMA extension case studies (scenario 4, Sec. 5.7's DMA interplay) ---
  soc::T2Design t2;
  util::Table dma({"Case", "Symptom", "Plausible causes", "Pruned",
                   "Diagnosis"});
  for (const auto& cs : soc::extension_case_studies()) {
    const auto r = debug::run_case_study(t2, cs);
    std::string diagnosis;
    for (const auto& cause : r.report.final_causes) {
      if (!diagnosis.empty()) diagnosis += " / ";
      diagnosis += cause.description;
    }
    dma.add_row({"X" + std::to_string(cs.id) + ": " + cs.root_cause,
                 r.buggy.failed ? r.buggy.failure : "none",
                 std::to_string(r.report.final_causes.size()),
                 util::pct(r.report.pruned_fraction()), diagnosis});
  }
  std::cout << "DMA extension scenario (DMAR ||| DMAW ||| Mon):\n" << dma
            << '\n';

  bench::note("branch messages carry localization power: reqretry absent "
              "while mondonack present pins the loss to the DMU retry "
              "path, which a linear Mondo flow could not express");
  return 0;
}
