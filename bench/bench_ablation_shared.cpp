// Ablation: dedicated per-scenario selection (the paper's setup) vs one
// shared trace-buffer configuration serving all three usage scenarios
// (library extension). Quantifies the coverage cost of not reconfiguring
// the buffer between scenarios.

#include <iostream>

#include "bench_util.hpp"
#include "selection/multi_scenario.hpp"
#include "selection/selector.hpp"
#include "soc/scenario.hpp"

int main() {
  using namespace tracesel;
  bench::banner("Ablation: shared vs dedicated selection",
                "one 32-bit configuration for all scenarios vs one per "
                "scenario");

  soc::T2Design design;
  const auto u1 = soc::build_interleaving(design, soc::scenario1());
  const auto u2 = soc::build_interleaving(design, soc::scenario2());
  const auto u3 = soc::build_interleaving(design, soc::scenario3());
  const std::vector<const flow::InterleavedFlow*> us{&u1, &u2, &u3};

  const selection::MultiScenarioSelector multi(
      design.catalog(), {{&u1, 1.0}, {&u2, 1.0}, {&u3, 1.0}});
  const auto shared = multi.select(32);

  std::cout << "Shared configuration (" << shared.used_width
            << "/32 bits): ";
  for (const auto m : shared.combination.messages)
    std::cout << design.catalog().get(m).name << ' ';
  for (const auto& pg : shared.packed)
    std::cout << design.catalog().get(pg.parent).name << '.'
              << pg.subgroup_name << ' ';
  std::cout << "\n\n";

  util::Table table({"Scenario", "Dedicated coverage", "Shared coverage",
                     "Coverage cost", "Dedicated gain", "Shared gain on "
                     "this scenario"});
  for (std::size_t i = 0; i < us.size(); ++i) {
    const selection::MessageSelector dedicated(design.catalog(), *us[i]);
    const auto r = dedicated.select({});
    const selection::InfoGainEngine engine(*us[i]);
    const double shared_gain = engine.info_gain(shared.observable());
    table.add_row({"Scenario " + std::to_string(i + 1),
                   util::pct(r.coverage),
                   util::pct(shared.per_scenario_coverage[i]),
                   util::pct(r.coverage - shared.per_scenario_coverage[i]),
                   util::fixed(r.gain, 3), util::fixed(shared_gain, 3)});
  }
  std::cout << table << '\n';
  bench::note("the shared configuration trades a few points of coverage "
              "per scenario for zero reconfiguration between lab runs; "
              "weights let a validation plan bias the trade toward its "
              "dominant scenario");
  return 0;
}
