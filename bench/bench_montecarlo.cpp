// Robustness study: the Fig. 7 / Table 6 metrics repeated across 20 seeds
// per case study (different schedulings, message latencies and
// investigation orders). The paper reports single runs; this bench shows
// the reproduction's numbers are not seed-lottery artifacts.

#include <iostream>

#include "bench_util.hpp"
#include "debug/monte_carlo.hpp"

int main() {
  using namespace tracesel;
  bench::banner("Robustness: Monte-Carlo over seeds",
                "pruning / localization / effort distributions (20 seeds "
                "per case study)");

  soc::T2Design design;
  util::Table table({"Case study", "Symptom detected", "Pruned mean±sd",
                     "Pruned min-max", "Msgs investigated mean",
                     "Pairs investigated mean", "Localization max"});
  for (const auto& cs : soc::standard_case_studies()) {
    const auto mc = debug::evaluate_case_study(design, cs, {}, 20);
    table.add_row(
        {std::to_string(cs.id),
         std::to_string(mc.failures_detected) + "/" +
             std::to_string(mc.runs),
         util::pct(mc.pruned_fraction.mean) + " ± " +
             util::pct(mc.pruned_fraction.stddev),
         util::pct(mc.pruned_fraction.min) + " - " +
             util::pct(mc.pruned_fraction.max),
         util::fixed(mc.messages_investigated.mean, 1),
         util::fixed(mc.pairs_investigated.mean, 1),
         util::pct(mc.localization_fraction.max, 6)});
  }
  std::cout << table << '\n';
  bench::note("the symptom must manifest in every run (deterministic "
              "triggers) and the pruning fraction should be tight across "
              "seeds - wide spreads would indicate the debug flow depends "
              "on lucky schedules");
  return 0;
}
