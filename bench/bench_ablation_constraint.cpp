// Ablation: pure-gain selection vs flow-representation-constrained
// selection under tight buffers. The paper's Step 2 objective is blind to
// *which* flow a bit watches; at small widths it concentrates the buffer
// on the information-dense flow and leaves others completely dark. The
// constrained selector gives up a little gain to keep every flow visible.

#include <iostream>

#include "bench_util.hpp"
#include "selection/selector.hpp"
#include "soc/scenario.hpp"

int main() {
  using namespace tracesel;
  bench::banner("Ablation: flow-representation constraint",
                "pure gain vs every-flow-visible under tight buffers");

  soc::T2Design design;
  for (const soc::Scenario& s : soc::all_scenarios()) {
    const auto u = soc::build_interleaving(design, s);
    const selection::MessageSelector selector(design.catalog(), u);
    const auto flows = soc::scenario_flows(design, s);

    auto dark_flows = [&](const selection::SelectionResult& r) {
      std::string dark;
      for (const auto* f : flows) {
        bool seen = false;
        for (const flow::MessageId m : r.observable()) {
          if (f->uses_message(m)) seen = true;
        }
        if (!seen) {
          if (!dark.empty()) dark += ' ';
          dark += f->name();
        }
      }
      return dark.empty() ? std::string("-") : dark;
    };

    std::cout << s.name << ":\n";
    util::Table table({"Buffer", "Gain (pure)", "Dark flows (pure)",
                       "Gain (constrained)", "Dark flows (constrained)",
                       "Coverage (constrained)"});
    for (const std::uint32_t width : {12u, 16u, 20u, 24u, 32u}) {
      selection::SelectorConfig cfg;
      cfg.buffer_width = width;
      const auto pure = selector.select(cfg);
      std::string gain_c = "-", dark_c = "-", cov_c = "-";
      try {
        const auto constrained = selector.select_with_flow_constraint(cfg);
        gain_c = util::fixed(constrained.gain, 3);
        dark_c = dark_flows(constrained);
        cov_c = util::pct(constrained.coverage);
      } catch (const std::runtime_error&) {
        gain_c = "infeasible";
      }
      table.add_row({std::to_string(width), util::fixed(pure.gain, 3),
                     dark_flows(pure), gain_c, dark_c, cov_c});
    }
    std::cout << table << '\n';
  }
  bench::note("the constraint costs gain only when the pure optimum left "
              "a flow dark; the constrained column must never list a dark "
              "flow unless the buffer cannot physically hold one of its "
              "messages");
  return 0;
}
