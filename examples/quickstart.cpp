// Quickstart: the paper's running example end to end (Figs. 1-2, Sec. 3).
//
// Builds the toy cache-coherence flow, interleaves two indexed instances,
// enumerates message combinations for a 2-bit trace buffer, scores them by
// mutual information gain, and reports the selected combination, its flow
// specification coverage, and a localization query — reproducing every
// number the paper works out by hand (I = 1.073, coverage = 0.7333).
//
// Uses the query API (PR 7): QueryCore turns a Workload + JobRequest into
// a selection with no hidden state. Long-lived embedders that run many
// queries share an ArtifactStore so repeated requests are memoized; the
// stateful tracesel::Session facade remains for incremental exploration.

#include <iostream>
#include <utility>

#include "flow/dot.hpp"
#include "tracesel/tracesel.hpp"

int main() {
  using namespace tracesel;

  // --- 1. Messages and the flow DAG (Fig. 1a) ---
  flow::ParsedSpec spec;
  const auto reqE = spec.catalog.add("ReqE", 1, "IP1", "Dir");
  const auto gntE = spec.catalog.add("GntE", 1, "Dir", "IP1");
  const auto ack = spec.catalog.add("Ack", 1, "IP1", "Dir");

  flow::FlowBuilder builder("CacheCoherence");
  builder.state("Init", flow::FlowBuilder::kInitial)
      .state("Wait")
      .state("GntW", flow::FlowBuilder::kAtomic)
      .state("Done", flow::FlowBuilder::kStop)
      .transition("Init", reqE, "Wait")
      .transition("Wait", gntE, "GntW")
      .transition("GntW", ack, "Done");
  spec.flows.push_back(builder.build(spec.catalog));

  // The Workload owns the spec from here on; QueryCore's stateless
  // functions do the rest.
  auto workload = QueryCore::workload_from_spec(std::move(spec));
  const flow::MessageCatalog& catalog = *workload->catalog;
  const flow::Flow& coherence = workload->spec->flow("CacheCoherence");
  std::cout << "Flow '" << coherence.name() << "': "
            << coherence.num_states() << " states, "
            << coherence.messages().size() << " messages\n";

  // --- 2. Interleave two legally indexed instances (Fig. 2) ---
  QueryCore::interleave(*workload, 2, flow::InterleaveOptions{});
  const flow::InterleavedFlow& u = *workload->u;
  std::cout << "Interleaved flow: " << u.num_product_states() << " states, "
            << u.num_product_edges() << " indexed-message occurrences (paper: "
            << "15 states, 18 occurrences; materialized as " << u.num_nodes()
            << " symmetry-reduced orbit nodes)\n";

  // --- 3. Select messages for a 2-bit trace buffer (Sec. 3.1-3.2) ---
  // One versioned JobRequest carries every selection knob; the same
  // request submitted to a traceseld daemon returns the same answer.
  JobRequest request;
  request.buffer_width = 2;
  QueryCore::ensure_selectors(*workload);
  const auto result = QueryCore::select(*workload, request, {});

  std::cout << "Selected combination:";
  for (const auto m : result.combination.messages)
    std::cout << ' ' << catalog.get(m).name;
  std::cout << "\n  information gain I(X;Y) = " << result.gain
            << " (paper: 1.073)\n"
            << "  flow spec coverage      = " << result.coverage
            << " (paper: 0.7333)\n"
            << "  trace buffer utilization = "
            << result.utilization() * 100 << "%\n";

  // --- 4. Localize an observed trace (Sec. 3.2's example) ---
  const std::vector<flow::IndexedMessage> observed{
      {reqE, 1}, {gntE, 1}, {reqE, 2}};
  const auto loc = selection::localize(u, result.observable(), observed);
  std::cout << "Observing {1:ReqE, 1:GntE, 2:ReqE} leaves "
            << loc.consistent_paths << " of " << loc.total_paths
            << " executions consistent ("
            << loc.fraction * 100 << "%)\n";

  // --- 5. Export DOT for inspection ---
  std::cout << "\nGraphviz of the flow (render with `dot -Tpng`):\n"
            << flow::to_dot(coherence, catalog);
  return 0;
}
