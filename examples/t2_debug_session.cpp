// A full post-silicon debugging session on the OpenSPARC T2 model,
// replaying the paper's Sec. 5.7 case study:
//
//   Symptom:  "FAIL: Bad Trap" during a scenario-1 use case.
//   Evidence: the 32-bit trace buffer contents (messages selected by the
//             information-gain method, with packing).
//   Debug:    backtracking over traced messages prunes the root-cause
//             catalog; the absence of dmusiidata.cputhreadid proves DMU
//             never generated the Mondo interrupt.

#include <iostream>

#include "bug/bug.hpp"
#include "debug/case_study.hpp"

int main() {
  using namespace tracesel;
  soc::T2Design design;

  const auto cs = soc::standard_case_studies()[0];
  debug::CaseStudyOptions options;
  options.sessions = 4;
  const auto r = debug::run_case_study(design, cs, options);

  std::cout << "=== Use-case validation run (" << r.scenario.name
            << ": PIOR ||| PIOW ||| Mon, 2 instances each) ===\n";
  std::cout << "Injected bug: #" << cs.active_bug_id << " ("
            << soc::bug_by_id(design, cs.active_bug_id).type << ")\n\n";

  std::cout << "Trace buffer configuration (" << r.selection.buffer_width
            << " bits, " << r.selection.used_width << " used):\n";
  for (const auto m : r.selection.combination.messages)
    std::cout << "  " << design.catalog().get(m).name << " ["
              << design.catalog().get(m).width << "b]\n";
  for (const auto& pg : r.selection.packed)
    std::cout << "  " << design.catalog().get(pg.parent).name << '.'
              << pg.subgroup_name << " [" << pg.width
              << "b, packed subgroup]\n";

  std::cout << "\nGolden run: " << r.golden.messages.size()
            << " messages, no failure.\n";
  std::cout << "Buggy run:  " << r.buggy.messages.size() << " messages, "
            << (r.buggy.failed ? r.buggy.failure : std::string("no failure"))
            << " in session " << r.buggy.fail_session << " after "
            << r.buggy.messages_to_symptom << " observed messages and "
            << r.buggy.fail_cycle << " cycles.\n";

  std::cout << "\nTrace diff (traced messages only):\n";
  for (const auto& [m, status] : r.observation.status) {
    std::cout << "  " << design.catalog().get(m).name << ": "
              << debug::to_string(status) << '\n';
  }

  std::cout << "\nBacktracking debug (start at the symptom, walk the flows):"
            << '\n';
  int step = 1;
  for (const auto& st : r.report.steps) {
    std::cout << "  step " << step++ << ": investigate "
              << design.catalog().get(st.investigated).name << " ("
              << st.pair.src << "->" << st.pair.dst << "), found "
              << debug::to_string(st.found) << " -> "
              << st.plausible_causes << " plausible cause(s), "
              << st.candidate_pairs << " candidate IP pair(s)\n";
  }

  std::cout << "\nRoot cause(s) after pruning "
            << r.report.catalog_size - r.report.final_causes.size()
            << " of " << r.report.catalog_size << " candidates ("
            << r.report.pruned_fraction() * 100 << "%):\n";
  for (const auto& c : r.report.final_causes) {
    std::cout << "  [" << c.ip << "] " << c.description << "\n    -> "
              << c.implication << '\n';
  }

  std::cout << "\nPath localization: the failing session's trace is "
               "consistent with "
            << r.localization.consistent_paths << " of "
            << r.localization.total_paths << " interleaved executions ("
            << r.localization.fraction * 100 << "%).\n";
  return 0;
}
