// Signal selection on the USB 2.0 controller, three ways (Sec. 5.4):
// gate-level SRR greedy (SigSeT), gate-level PageRank (PRNet), and
// application-level information gain. Shows why restoration-optimal
// flip-flops are not the messages a use-case debugger needs.

#include <iostream>

#include "baseline/prnet.hpp"
#include "baseline/sigset.hpp"
#include "netlist/usb_design.hpp"
#include "tracesel/tracesel.hpp"

int main() {
  using namespace tracesel;
  netlist::UsbDesign usb;
  std::cout << "USB design: " << usb.netlist().num_nets() << " nets, "
            << usb.netlist().flops().size() << " flip-flops, "
            << usb.interface_signals().size() << " interface signals\n\n";

  // --- Gate-level baselines, 32 traced bits each ---
  const auto sigset = baseline::select_sigset(usb.netlist());
  std::cout << "SigSeT (greedy SRR, final SRR = " << sigset.srr << "):\n  ";
  for (const auto f : sigset.selected)
    std::cout << usb.netlist().gate(f).name << ' ';
  std::cout << "\n\n";

  const auto prnet = baseline::select_prnet(usb.netlist());
  std::cout << "PRNet (PageRank on the flop dependency graph):\n  ";
  for (const auto f : prnet.selected)
    std::cout << usb.netlist().gate(f).name << ' ';
  std::cout << "\n\n";

  // --- Application-level selection on the rx/tx flows ---
  // The workload borrows usb's catalog, which outlives it here; a default
  // JobRequest is the paper's 32-bit maximal-mode selection.
  auto workload = tracesel::QueryCore::workload_from_interleaving(
      usb.catalog(), usb.interleaving(2));
  const flow::InterleavedFlow& u = *workload->u;
  tracesel::QueryCore::ensure_selectors(*workload);
  const auto infogain =
      tracesel::QueryCore::select(*workload, tracesel::JobRequest{}, {});
  std::cout << "InfoGain (message selection on UsbRx ||| UsbTx):\n  ";
  for (const auto m : infogain.combination.messages)
    std::cout << usb.catalog().get(m).name << ' ';
  std::cout << "\n\n";

  // --- What does each buy a use-case debugger? ---
  auto coverage_of_selection =
      [&](const std::vector<netlist::NetId>& flops) {
        std::vector<flow::MessageId> observable;
        for (const auto& sg : usb.interface_signals()) {
          if (netlist::coverage_of(sg, flops) ==
              netlist::SignalCoverage::kFull)
            observable.push_back(usb.message_of(sg.name));
        }
        return selection::flow_spec_coverage(u, observable);
      };
  std::cout << "Flow specification coverage (Def. 7) of each selection:\n"
            << "  SigSeT   : " << coverage_of_selection(sigset.selected) * 100
            << "%\n"
            << "  PRNet    : " << coverage_of_selection(prnet.selected) * 100
            << "%\n"
            << "  InfoGain : " << infogain.coverage * 100 << "%\n";
  return 0;
}
