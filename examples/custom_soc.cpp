// Bring-your-own-SoC: the full workflow on a design that is NOT the
// built-in T2 model — a little camera pipeline described inline in the
// .flow text format. Shows what a downstream team does with the library:
//   1. write flow collateral for their own IPs,
//   2. pick trace messages for their buffer width,
//   3. simulate a buggy silicon run at transaction level,
//   4. capture the trace and dump a waveform.

#include <fstream>
#include <iostream>

#include "flow/parser.hpp"
#include "selection/selector.hpp"
#include "soc/simulator.hpp"
#include "soc/trace_buffer.hpp"
#include "soc/vcd.hpp"

namespace {

constexpr const char* kCameraSoc = R"(
# Camera pipeline: ISP fetches frames over a sensor link; the encoder
# compresses them; the DMA engine writes to DRAM; all under a power manager
# that can veto activity.

message sensreq   6  ISP -> SENS          # frame request
message sensdata 18  SENS -> ISP beats 2  # pixel burst (2-beat)
subgroup sensdata frameid 5
message isprdy    2  ISP -> ENC
message encblk   14  ENC -> DMA
subgroup encblk blktag 4
message dmawr     8  DMA -> DRAM
message dmadone   2  DRAM -> DMA
message pwrgnt    3  PMU -> ISP

flow FrameCapture {
  state Idle initial
  state Asked
  state Bursting atomic
  state Ready
  state Done stop
  Idle -> Asked on sensreq
  Asked -> Bursting on sensdata
  Bursting -> Ready on isprdy
  Ready -> Done on encblk
}

flow DmaWrite {
  state Idle initial
  state Writing
  state Done stop
  Idle -> Writing on dmawr
  Writing -> Done on dmadone
}

flow PowerGrant {
  state Idle initial
  state Done stop
  Idle -> Done on pwrgnt
}
)";

}  // namespace

int main() {
  using namespace tracesel;

  // 1. Parse the collateral.
  const auto spec = flow::parse_flow_spec(kCameraSoc);
  std::cout << "Camera SoC: " << spec.flows.size() << " flows, "
            << spec.catalog.size() << " messages\n";

  // 2. Select messages for a 16-bit trace buffer.
  std::vector<const flow::Flow*> flows;
  for (const flow::Flow& f : spec.flows) flows.push_back(&f);
  const auto u =
      flow::InterleavedFlow::build(flow::make_instances(flows, 2));
  const selection::MessageSelector selector(spec.catalog, u);
  selection::SelectorConfig cfg;
  cfg.buffer_width = 16;
  const auto sel = selector.select(cfg);
  std::cout << "Selected for 16 bits:";
  for (const auto m : sel.combination.messages)
    std::cout << ' ' << spec.catalog.get(m).name;
  for (const auto& pg : sel.packed)
    std::cout << ' ' << spec.catalog.get(pg.parent).name << '.'
              << pg.subgroup_name;
  std::cout << "  (gain " << sel.gain << ", coverage "
            << sel.coverage * 100 << "%, utilization "
            << sel.utilization() * 100 << "%)\n";

  // 3. Simulate a buggy run: the encoder drops blocks intermittently.
  soc::SocSimulator sim(spec.catalog, flows, 2);
  bug::Bug enc_drop;
  enc_drop.id = 1;
  enc_drop.effect = bug::BugEffect::kDropMessage;
  enc_drop.target = spec.catalog.require("encblk");
  enc_drop.trigger_session = 2;
  enc_drop.symptom = "HANG: encoder starved DMA";
  sim.inject(enc_drop);
  soc::SimOptions opt;
  opt.sessions = 4;
  const auto run = sim.run(opt);
  std::cout << "Simulation: " << run.messages.size() << " messages, "
            << (run.failed ? run.failure : std::string("clean")) << '\n';

  // 4. Capture through the configured buffer and dump a VCD.
  soc::TraceBuffer buffer(soc::TraceBufferConfig{16, 256});
  buffer.configure(spec.catalog, sel);
  for (const auto& tm : run.messages) buffer.record(tm);
  std::cout << "Trace buffer captured " << buffer.size() << " records ("
            << buffer.overwritten() << " overwritten)\n";

  const std::string vcd =
      soc::trace_to_vcd(spec.catalog, buffer.records(), "camera");
  std::ofstream("camera_trace.vcd") << vcd;
  std::cout << "Waveform written to camera_trace.vcd ("
            << vcd.size() << " bytes)\n";
  return 0;
}
