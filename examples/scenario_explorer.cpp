// Scenario explorer: sweeps trace-buffer widths and search modes over the
// three T2 usage scenarios and prints how the selection, its gain,
// coverage, and utilization evolve — a what-if tool for a DfD architect
// sizing the trace buffer before tape-out.

#include <iostream>

#include "selection/selector.hpp"
#include "soc/scenario.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tracesel;
  soc::T2Design design;

  // Optional argument: scenario id (1..3); default sweeps all.
  int only = 0;
  if (argc > 1) only = std::atoi(argv[1]);

  for (const soc::Scenario& s : soc::all_scenarios()) {
    if (only != 0 && s.id != only) continue;
    const auto u = soc::build_interleaving(design, s);
    const selection::MessageSelector selector(design.catalog(), u);

    std::cout << s.name << " (" << u.num_nodes() << " interleaved states, "
              << u.num_edges() << " message occurrences)\n";
    util::Table table({"Buffer", "Mode", "Selected messages", "Packed",
                       "Gain", "Coverage", "Utilization"});
    for (const std::uint32_t width : {8u, 16u, 24u, 32u, 48u, 64u}) {
      for (const auto mode :
           {selection::SearchMode::kMaximal, selection::SearchMode::kGreedy}) {
        selection::SelectorConfig cfg;
        cfg.buffer_width = width;
        cfg.mode = mode;
        const auto r = selector.select(cfg);
        std::string names;
        for (const auto m : r.combination.messages) {
          if (!names.empty()) names += ' ';
          names += design.catalog().get(m).name;
        }
        std::string packed;
        for (const auto& pg : r.packed) {
          if (!packed.empty()) packed += ' ';
          packed += design.catalog().get(pg.parent).name + '.' +
                    pg.subgroup_name;
        }
        table.add_row(
            {std::to_string(width),
             mode == selection::SearchMode::kMaximal ? "maximal" : "greedy",
             names, packed.empty() ? "-" : packed, util::fixed(r.gain, 3),
             util::pct(r.coverage), util::pct(r.utilization())});
      }
    }
    std::cout << table << '\n';
  }

  std::cout << "Reading the table: gain and coverage grow with buffer "
               "width; packing tops up the leftover bits with subgroups "
               "of wide messages (dmusiidata.cputhreadid being the "
               "paper's example).\n";
  return 0;
}
