// Validation-plan budgeting: a lab runs scenario 1 60% of the time,
// scenario 2 30%, scenario 3 10%. Should the one trace buffer be
// reconfigured per scenario, or carry a single shared configuration?
// This example weighs the options with the multi-scenario selector and
// emits a machine-readable plan.

#include <iostream>

#include "debug/serialize.hpp"
#include "selection/multi_scenario.hpp"
#include "selection/selector.hpp"
#include "soc/scenario.hpp"

int main() {
  using namespace tracesel;
  soc::T2Design design;

  const auto u1 = soc::build_interleaving(design, soc::scenario1());
  const auto u2 = soc::build_interleaving(design, soc::scenario2());
  const auto u3 = soc::build_interleaving(design, soc::scenario3());

  // Lab-time weights from the validation plan.
  const double w1 = 0.6, w2 = 0.3, w3 = 0.1;
  const selection::MultiScenarioSelector planner(
      design.catalog(), {{&u1, w1}, {&u2, w2}, {&u3, w3}});
  const auto shared = planner.select(32);

  std::cout << "Shared 32-bit configuration (weights 60/30/10):\n  ";
  for (const auto m : shared.combination.messages)
    std::cout << design.catalog().get(m).name << ' ';
  for (const auto& pg : shared.packed)
    std::cout << design.catalog().get(pg.parent).name << '.'
              << pg.subgroup_name << ' ';
  std::cout << "\n\n";

  std::cout << "Per-scenario flow-spec coverage of the shared config vs a "
               "dedicated reconfiguration:\n";
  const flow::InterleavedFlow* us[3] = {&u1, &u2, &u3};
  const double weights[3] = {w1, w2, w3};
  double shared_expected = 0.0, dedicated_expected = 0.0;
  for (int i = 0; i < 3; ++i) {
    const selection::MessageSelector dedicated(design.catalog(), *us[i]);
    const auto r = dedicated.select({});
    std::cout << "  scenario " << i + 1 << ": shared "
              << shared.per_scenario_coverage[i] * 100 << "%  dedicated "
              << r.coverage * 100 << "%\n";
    shared_expected += weights[i] * shared.per_scenario_coverage[i];
    dedicated_expected += weights[i] * r.coverage;
  }
  std::cout << "\nLab-time-weighted expected coverage: shared "
            << shared_expected * 100 << "% vs dedicated "
            << dedicated_expected * 100
            << "% (the gap is the price of never reconfiguring)\n\n";

  std::cout << "Machine-readable plan:\n"
            << selection::to_json(design.catalog(), shared).dump(2) << '\n';
  return 0;
}
