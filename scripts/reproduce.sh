#!/usr/bin/env bash
# One-command reproduction: build, run the full test suite, regenerate
# every paper table/figure plus the ablation and extension benches.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/bench_*; do
  echo
  "$b"
done
