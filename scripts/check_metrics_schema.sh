#!/usr/bin/env bash
# Keeps the metric-name documentation honest against the source tree.
#
# Two-way check between the instrumentation sites (every OBS_COUNT /
# OBS_GAUGE_* / OBS_HIST literal under src/ and tools/) and the names
# referenced in docs/observability.md, docs/service.md and DESIGN.md:
#
#   1. every metric name the docs mention must exist in the source, and
#   2. every emitted metric must be mentioned in at least one doc
#      (by full name, or by a documented `prefix.` family row).
#
# Run from anywhere; exits nonzero with a list of offenders.
set -euo pipefail
cd "$(dirname "$0")/.."

DOCS=(docs/observability.md docs/service.md DESIGN.md)

emitted=$(grep -rhoE 'OBS_(COUNT|GAUGE_MAX|GAUGE_SET|HIST)\("[a-z0-9._]+"' \
              src tools |
          sed -E 's/.*\("([a-z0-9._]+)".*/\1/' | sort -u)
[ -n "$emitted" ] || { echo "FAIL: found no OBS_* sites under src/"; exit 1; }

# Doc-referenced metric names: dot-separated lower-case tokens inside
# backticks, filtered to the prefixes the naming-scheme table declares.
# Slash-grouped shorthand like `a.b.hits/.misses` expands on the stem.
doc_names=$(grep -hoE '`[a-z0-9._/]+`' "${DOCS[@]}" | tr -d '`' |
  awk -F/ '/\./ { if (NF == 1) { print; next }
                  stem = $1; print stem
                  base = stem; sub(/\.[a-z0-9_]+$/, "", base)
                  for (i = 2; i <= NF; i++) {
                    if ($i ~ /^\./) print base $i; else print $i
                  } }' | sort -u)

fail=0

# 1. Docs must not name metrics the source no longer emits.
prefixes='^(flow|parse|interleave|selection|kernel|store|session|debug|pool|process|dist|svc|resilience)\.'
for name in $doc_names; do
  echo "$name" | grep -qE "$prefixes" || continue
  # Family rows (`dist.`), file paths, derived/service-computed keys and
  # span mirrors are not OBS_* sites.
  case "$name" in
    *.) continue ;;
    *.md|*.hpp|*.cpp|*.sh|*.json|*.yml|*.flow) continue ;;
    span.*|process.*|jobs.*|queue.*|store.*.entries) continue ;;
    selection.step*|session.*|flow.parse|interleave.build|\
    interleave.graph|interleave.weights|interleave.cross_check|\
    kernel.compile|kernel.exec|debug.workbench|debug.simulate|\
    debug.capture|debug.root_cause|debug.localize|selection.dist.run|\
    dist.unit|svc.job)
      continue ;;  # span names
  esac
  if ! echo "$emitted" | grep -qxF "$name"; then
    echo "FAIL: docs reference metric '$name' that no OBS_* site emits"
    fail=1
  fi
done

# 2. Every emitted metric must be documented (full name or family row).
for name in $emitted; do
  if echo "$doc_names" | grep -qxF "$name"; then continue; fi
  prefix="${name%%.*}."
  if grep -qF "\`$prefix\`" "${DOCS[@]}"; then continue; fi
  echo "FAIL: emitted metric '$name' is not documented (no exact match," \
       "no \`$prefix\` family row)"
  fail=1
done

[ "$fail" -eq 0 ] && echo "metrics schema OK ($(echo "$emitted" | wc -l) emitted names checked)"
exit "$fail"
