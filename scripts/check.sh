#!/usr/bin/env bash
# Hardened tier-1 check: build the library, tests and tools with
# AddressSanitizer + UndefinedBehaviorSanitizer and run the full ctest
# suite under them. Memory bugs in the fault-injection / degradation
# paths (which deliberately feed the pipeline garbled data) show up here
# long before they would corrupt a real debugging session.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-asan}

cmake -B "$BUILD_DIR" -S . -DTRACESEL_SANITIZE=ON
cmake --build "$BUILD_DIR" -j
ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
