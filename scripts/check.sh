#!/usr/bin/env bash
# Hardened tier-1 check, two sanitizer passes:
#
#  1. AddressSanitizer + UndefinedBehaviorSanitizer over the full ctest
#     suite. Memory bugs in the fault-injection / degradation paths (which
#     deliberately feed the pipeline garbled data) show up here long before
#     they would corrupt a real debugging session.
#  2. ThreadSanitizer over the concurrency surface: the thread-pool unit
#     tests, the sharded obs metrics registry, the parallel selection
#     engine, the Monte-Carlo trial fan-out and the Session facade, the
#     cancellation / checkpoint-resume races (Resilience, KillResume,
#     CancelToken), the query layer's shared ArtifactStore and the
#     traceseld daemon's multi-tenant job handling (Query, ArtifactStore,
#     Service), plus the --jobs CLI smoke tests.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-asan}
TSAN_BUILD_DIR=${TSAN_BUILD_DIR:-build-tsan}

cmake -B "$BUILD_DIR" -S . -DTRACESEL_SANITIZE=ON
cmake --build "$BUILD_DIR" -j
ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

cmake -B "$TSAN_BUILD_DIR" -S . -DTRACESEL_SANITIZE=thread
cmake --build "$TSAN_BUILD_DIR" -j
TSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure -j "$(nproc)" \
    -R 'ThreadPool|Kernel|Parallel|MonteCarlo|Session|Obs|Resilience|KillResume|CancelToken|ArtifactStore|QueryCore|Service|Framing|cli_select_jobs|cli_debug_jobs'
