// tracesel — command-line front end.
//
//   tracesel inspect <spec.flow>                     flows/messages summary
//   tracesel select  <spec.flow> [options]           run message selection
//       --buffer N       trace buffer width in bits   (default 32)
//       --instances K    indexed instances per flow   (default 2)
//       --mode M         maximal|exhaustive|greedy|knapsack
//       --no-packing     disable Step 3
//       --json           machine-readable output
//   tracesel dot <spec.flow> <flow-name>             Graphviz of one flow
//   tracesel lint <spec.flow> [--buffer N]           check the collateral
//   tracesel debug <case 1..5> [--no-packing] [--vcd FILE]
//                  [--report FILE] [--json]          run a T2 case study
//
// Exit codes: 0 ok, 1 usage error, 2 runtime failure.

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>

#include "debug/case_study.hpp"
#include "flow/dot.hpp"
#include "flow/lint.hpp"
#include "flow/parser.hpp"
#include "flow/stats.hpp"
#include "selection/selector.hpp"
#include "debug/report.hpp"
#include "debug/serialize.hpp"
#include "soc/vcd.hpp"
#include "util/table.hpp"

namespace {

using namespace tracesel;

int usage() {
  std::cerr << "usage:\n"
               "  tracesel inspect <spec.flow>\n"
               "  tracesel select <spec.flow> [--buffer N] [--instances K]"
               " [--mode maximal|exhaustive|greedy|knapsack] [--no-packing]"
               " [--json]\n"
               "  tracesel dot <spec.flow> <flow-name>\n"
               "  tracesel lint <spec.flow> [--buffer N]\n"
               "  tracesel debug <case 1..5> [--no-packing] [--vcd FILE]"
               " [--report FILE]\n";
  return 1;
}

flow::InterleavedFlow interleave_all(const flow::ParsedSpec& spec,
                                     std::uint32_t instances) {
  std::vector<const flow::Flow*> flows;
  for (const flow::Flow& f : spec.flows) flows.push_back(&f);
  return flow::InterleavedFlow::build(
      flow::make_instances(flows, instances));
}

int cmd_inspect(const std::string& path) {
  const auto spec = flow::parse_flow_spec_file(path);
  std::cout << "Spec '" << path << "': " << spec.flows.size() << " flows, "
            << spec.catalog.size() << " messages\n\n";
  util::Table messages({"Message", "Width", "Trace width", "Route",
                        "Subgroups"});
  for (const flow::Message& m : spec.catalog) {
    std::string subgroups;
    for (const auto& sg : m.subgroups) {
      if (!subgroups.empty()) subgroups += ' ';
      subgroups += sg.name + '[' + std::to_string(sg.width) + ']';
    }
    messages.add_row({m.name, std::to_string(m.width),
                      std::to_string(m.trace_width()),
                      m.source_ip + "->" + m.dest_ip,
                      subgroups.empty() ? "-" : subgroups});
  }
  std::cout << messages << '\n';

  util::Table flows({"Flow", "States", "Messages", "Atomic", "Depth",
                     "Branching", "Executions"});
  for (const flow::Flow& f : spec.flows) {
    const auto st = flow::flow_stats(f);
    flows.add_row({st.name, std::to_string(st.states),
                   std::to_string(st.messages),
                   std::to_string(st.atomic_states),
                   std::to_string(st.depth),
                   std::to_string(st.max_branching),
                   util::fixed(st.executions, 0)});
  }
  std::cout << flows;
  return 0;
}

int cmd_select(const std::string& path, int argc, char** argv) {
  selection::SelectorConfig cfg;
  std::uint32_t instances = 2;
  bool json = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--buffer") cfg.buffer_width = std::stoul(next());
    else if (arg == "--instances") instances = std::stoul(next());
    else if (arg == "--no-packing") cfg.packing = false;
    else if (arg == "--json") json = true;
    else if (arg == "--mode") {
      const std::string m = next();
      if (m == "maximal") cfg.mode = selection::SearchMode::kMaximal;
      else if (m == "exhaustive") cfg.mode = selection::SearchMode::kExhaustive;
      else if (m == "greedy") cfg.mode = selection::SearchMode::kGreedy;
      else if (m == "knapsack") cfg.mode = selection::SearchMode::kKnapsack;
      else throw std::runtime_error("unknown mode '" + m + "'");
    } else {
      throw std::runtime_error("unknown option '" + arg + "'");
    }
  }

  const auto spec = flow::parse_flow_spec_file(path);
  const auto u = interleave_all(spec, instances);
  const selection::MessageSelector selector(spec.catalog, u);
  const auto r = selector.select(cfg);
  if (json) {
    std::cout << selection::to_json(spec.catalog, r).dump(2) << '\n';
    return 0;
  }
  std::cout << "Interleaving: " << u.num_nodes() << " states, "
            << u.num_edges() << " message occurrences\n";

  util::Table table({"Field", "Width", "Kind"});
  for (const auto m : r.combination.messages)
    table.add_row({spec.catalog.get(m).name,
                   std::to_string(spec.catalog.get(m).trace_width()),
                   "message"});
  for (const auto& pg : r.packed)
    table.add_row({spec.catalog.get(pg.parent).name + '.' + pg.subgroup_name,
                   std::to_string(pg.width), "packed subgroup"});
  std::cout << table;
  std::cout << "gain=" << util::fixed(r.gain, 4)
            << " coverage=" << util::pct(r.coverage)
            << " utilization=" << util::pct(r.utilization()) << " ("
            << r.used_width << '/' << r.buffer_width << " bits)\n";
  return 0;
}

int cmd_lint(const std::string& path, std::uint32_t buffer) {
  const auto spec = flow::parse_flow_spec_file(path);
  std::vector<const flow::Flow*> flows;
  for (const flow::Flow& f : spec.flows) flows.push_back(&f);
  flow::LintOptions opt;
  opt.buffer_width = buffer;
  const auto diagnostics = flow::lint(spec.catalog, flows, opt);
  for (const auto& d : diagnostics) {
    std::cout << flow::to_string(d.severity) << ": [" << d.rule << "] "
              << d.subject << ": " << d.text << '\n';
  }
  std::cout << diagnostics.size() << " diagnostic(s)\n";
  const bool warnings = std::any_of(
      diagnostics.begin(), diagnostics.end(), [](const auto& d) {
        return d.severity == flow::LintSeverity::kWarning;
      });
  return warnings ? 2 : 0;
}

int cmd_dot(const std::string& path, const std::string& flow_name) {
  const auto spec = flow::parse_flow_spec_file(path);
  std::cout << flow::to_dot(spec.flow(flow_name), spec.catalog);
  return 0;
}

int cmd_debug(int case_id, bool packing, const std::string& vcd_path,
              const std::string& report_path, bool json) {
  const auto cases = soc::standard_case_studies();
  if (case_id < 1 || case_id > static_cast<int>(cases.size())) {
    std::cerr << "case id must be 1.." << cases.size() << '\n';
    return 1;
  }
  soc::T2Design design;
  debug::CaseStudyOptions opt;
  opt.packing = packing;
  const auto r = debug::run_case_study(design, cases[case_id - 1], opt);
  if (json) {
    debug::WorkbenchResult wr;
    wr.selection = r.selection;
    wr.golden = r.golden;
    wr.buggy = r.buggy;
    wr.observation = r.observation;
    wr.report = r.report;
    wr.localization = r.localization;
    std::cout << debug::to_json(design.catalog(), wr).dump(2) << '\n';
    return 0;
  }
  std::cout << "Case study " << case_id << " (" << r.scenario.name
            << "): " << (r.buggy.failed ? r.buggy.failure : "no failure")
            << '\n';
  for (const auto& [m, status] : r.observation.status)
    std::cout << "  " << design.catalog().get(m).name << ": "
              << debug::to_string(status) << '\n';
  std::cout << "Pruned " << util::pct(r.report.pruned_fraction()) << " ("
            << r.report.final_causes.size() << " plausible cause(s))\n";
  for (const auto& c : r.report.final_causes)
    std::cout << "  [" << c.ip << "] " << c.description << '\n';
  if (!report_path.empty()) {
    debug::write_report(design, r, report_path);
    std::cout << "Debug report written to " << report_path << '\n';
  }
  if (!vcd_path.empty()) {
    std::ofstream out(vcd_path);
    if (!out) {
      std::cerr << "cannot write " << vcd_path << '\n';
      return 2;
    }
    out << soc::trace_to_vcd(design.catalog(), r.buggy_records);
    std::cout << "Trace buffer dump written to " << vcd_path << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "inspect" && argc == 3) return cmd_inspect(argv[2]);
    if (cmd == "select" && argc >= 3)
      return cmd_select(argv[2], argc - 3, argv + 3);
    if (cmd == "dot" && argc == 4) return cmd_dot(argv[2], argv[3]);
    if (cmd == "lint" && (argc == 3 || argc == 5)) {
      std::uint32_t buffer = 32;
      if (argc == 5) {
        if (std::strcmp(argv[3], "--buffer") != 0) return usage();
        buffer = static_cast<std::uint32_t>(std::stoul(argv[4]));
      }
      return cmd_lint(argv[2], buffer);
    }
    if (cmd == "debug" && argc >= 3) {
      bool packing = true;
      bool json = false;
      std::string vcd, report;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--no-packing") == 0) packing = false;
        else if (std::strcmp(argv[i], "--json") == 0) json = true;
        else if (std::strcmp(argv[i], "--vcd") == 0 && i + 1 < argc)
          vcd = argv[++i];
        else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc)
          report = argv[++i];
        else
          return usage();
      }
      return cmd_debug(std::atoi(argv[2]), packing, vcd, report, json);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
  return usage();
}
