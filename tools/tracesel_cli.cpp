// tracesel — command-line front end.
//
//   tracesel inspect <spec.flow>                     flows/messages summary
//   tracesel select  <spec.flow> [options]           run message selection
//       --buffer N       trace buffer width in bits   (default 32)
//       --instances K    indexed instances per flow   (default 2)
//       --mode M         maximal|exhaustive|greedy|knapsack
//       --no-packing     disable Step 3
//       --jobs N         worker threads (1 serial, 0 = all cores)
//       --kernel M       compiled|generic scoring/DP engine (default
//                        compiled; bit-identical results, runtime knob
//                        like --jobs so it composes with --resume)
//       --json           machine-readable output
//       --no-symmetry-reduction   materialize every product state instead
//                        of one weighted representative per orbit
//       --max-nodes N    materialized node budget (default 2e6)
//     resilience (docs/resilience.md):
//       --checkpoint FILE          periodically snapshot the search; an
//                        interrupted run resumes from FILE bit-identically
//       --checkpoint-interval N    shards per snapshot       (default 64)
//       --resume FILE    continue the search recorded in FILE (spec, mode
//                        and interleave settings come from the checkpoint;
//                        no positional spec, no structural flags)
//       --deadline-ms N  cancel the run after N milliseconds
//       --mem-budget-mb N   degrade (never abort) when the interleaving or
//                        the Step 2 search would exceed N MiB
//       --shard-budget N    explore at most N shards, then stop partial
//     distributed (docs/distributed.md):
//       --workers N      farm the search to N worker processes (this
//                        binary re-invoked as `tracesel --worker`);
//                        bit-identical to the in-process result
//       --unit-size N    seeds per work unit (0 = auto)
//       --unit-deadline-ms N  inactivity deadline before a unit is
//                        reassigned                     (default 30000)
//       --max-retries N  retries per unit before in-process salvage
//       --dist-kill-rate R / --dist-hang-rate R / --dist-corrupt-rate R
//                        seeded fault injection into worker dispatches
//                        (testing; see DistFaultInjector)
//       --dist-fault-seed N   fault schedule seed       (default 1)
//   tracesel --worker                                   worker-process mode
//       (internal: spawned by --workers; speaks the work-unit frame
//       protocol on stdin/stdout)
//   tracesel serve --socket PATH [--runners N] [--max-queue N]
//                  [--slow-job-ms N] [--journal-capacity N]
//                  [--journal-dir DIR] [--journal-rotate-bytes N]
//                  [--checkpoint-interval N] [--tenant-inflight N]
//                  [--retry-after-floor-ms N]
//       run traceseld: the long-lived selection/debug job daemon
//       (docs/service.md). SIGTERM/SIGINT or a stop frame drains the
//       queue, answers every waiting client, then exits 0. Jobs at or
//       over --slow-job-ms land in the slow-job log with a span summary.
//       --journal-dir enables crash durability: accepted jobs are
//       write-ahead journalled (and long searches checkpointed) there,
//       and a restart with the same directory replays unfinished jobs
//       and serves completed ones byte-identically from the durable
//       result cache. --tenant-inflight caps each tenant's queued+running
//       jobs; breaches (and full-queue/unmeetable-deadline submissions)
//       are shed with a typed retry-after hint.
//   tracesel submit <t2|usb|spec.flow> --socket PATH [select flags]
//       submit one job to a running daemon and wait for the result; with
//       --json prints the daemon's report block, which is byte-identical
//       to `tracesel select --json` for the same request
//       --tenant NAME    tenant label for the daemon's telemetry surface
//       --connect-timeout-ms N  retry the initial connect with seeded
//                        backoff for up to N ms (default 0: fail fast)
//       --retries N      survive daemon restarts/sheds: up to N extra
//                        attempts — reconnect, honor retry-after hints,
//                        resubmit idempotently (attach or durable-cache)
//       with --trace-out, the submit span's trace context rides in the
//       request and the daemon ships the job's spans back: the written
//       trace has a lane for this process and one for traceseld
//   tracesel stats --socket PATH                     daemon counters (JSON)
//       --watch          refresh until interrupted; survives daemon
//                        restarts (reconnects with seeded backoff)
//       --interval-ms N  refresh period               (default 1000)
//       --count N        stop after N samples (0 = until interrupted)
//       --connect-timeout-ms N  initial-connect retry budget (also on
//                        top/ping/stop)
//   tracesel top --socket PATH [--json]              live telemetry view
//       utilization/queue gauges, per-tenant accounting, the event
//       journal tail and the slow-job log; --json prints the raw
//       telemetry JSON (docs/service.md)
//   tracesel ping --socket PATH                      daemon liveness probe
//   tracesel stop --socket PATH                      drain-and-exit request
//   tracesel dot <spec.flow> <flow-name>             Graphviz of one flow
//   tracesel lint <spec.flow> [--buffer N] [--lenient]
//       --lenient        accumulate parse errors instead of stopping at
//                        the first, then lint whatever parsed cleanly
//   tracesel debug <case 1..5> [--no-packing] [--vcd FILE]
//                  [--report FILE] [--json] [--jobs N]  run a T2 case study
//       --fault-rate R   inject capture faults with probability R (0..1)
//       --fault-kinds K  csv of drop,corrupt,duplicate,reorder,truncate,
//                        overflow                      (default: all)
//       --fault-seed N   fault injection seed          (default 1)
//       --retries N      recapture attempts when the capture is unusable
//                                                      (default 2)
//
// Global options (any subcommand, docs/observability.md):
//       --trace-out FILE    write a Chrome trace-event JSON of the run
//                           (load in chrome://tracing or ui.perfetto.dev);
//                           on a --workers or submit run this is the
//                           *merged* multi-process trace — one lane per
//                           process, spans parented across the wire
//       --metrics-out FILE  write the flat metrics JSON (aggregated
//                           across processes on distributed runs)
//       --prom-out FILE     write Prometheus text exposition of the same
//                           aggregated metrics
//       --log-level L       debug|info|warn|error      (default warn);
//                           forwarded to --workers subprocesses
//
// Exit codes: 0 ok, 1 usage error, 2 runtime failure (any uncaught
// exception is reported as a one-line diagnostic, never a crash), 3
// interrupted (SIGINT/SIGTERM or --deadline-ms fired: the run stopped
// cooperatively with a partial result and/or a final checkpoint; a second
// signal exits immediately with 130).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <thread>

#include "tracesel/tracesel.hpp"

#include "debug/report.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "debug/serialize.hpp"
#include "flow/dot.hpp"
#include "soc/fault_injector.hpp"
#include "soc/vcd.hpp"
#include "util/backoff.hpp"
#include "util/log.hpp"
#include "util/obs.hpp"
#include "util/subprocess.hpp"
#include "util/table.hpp"

namespace {

using namespace tracesel;

/// Observability sinks from the global pre-pass; written once after the
/// subcommand finishes (success or failure — the trace of a failed run is
/// the interesting one).
std::string g_trace_out;
std::string g_metrics_out;
std::string g_prom_out;

/// argv[0] as invoked, so --workers can re-exec this binary in --worker
/// mode (the worker inherits our cwd, so a relative path still resolves).
std::string g_argv0 = "tracesel";

/// Process-wide cancellation token, created before the signal handlers are
/// installed so cancel() (one lock-free store) is safe from them.
const util::CancelToken g_cancel = util::CancelToken::make();
/// True while a subcommand that polls g_cancel is running; outside such a
/// window a signal keeps its conventional kill-the-process meaning.
std::atomic<bool> g_cooperative{false};
std::atomic<int> g_signals{0};

extern "C" void handle_signal(int) {
  if (!g_cooperative.load(std::memory_order_relaxed) ||
      g_signals.fetch_add(1, std::memory_order_relaxed) > 0) {
    // Second signal (or no cooperative stage to unwind): stop insisting.
    std::_Exit(130);
  }
  g_cancel.cancel();
}

double parse_number(const std::string& text, const char* flag) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(text, &consumed);
    if (consumed != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("invalid numeric value '") + text +
                             "' for " + flag);
  }
}

flow::KernelMode parse_kernel_mode(const std::string& name) {
  if (name == "compiled") return flow::KernelMode::kCompiled;
  if (name == "generic") return flow::KernelMode::kGeneric;
  throw std::runtime_error("unknown kernel '" + name +
                           "' (expected compiled|generic)");
}

int usage() {
  std::cerr << "usage:\n"
               "  tracesel inspect <spec.flow>\n"
               "  tracesel select <spec.flow> [--buffer N] [--instances K]"
               " [--mode maximal|exhaustive|greedy|knapsack] [--no-packing]"
               " [--jobs N] [--kernel compiled|generic] [--json]\n"
               "                 [--no-symmetry-reduction] [--max-nodes N]\n"
               "                 [--checkpoint FILE] [--checkpoint-interval N]"
               " [--resume FILE]\n"
               "                 [--deadline-ms N] [--mem-budget-mb N]"
               " [--shard-budget N]\n"
               "                 [--workers N] [--unit-size N]"
               " [--unit-deadline-ms N] [--max-retries N]\n"
               "                 [--dist-kill-rate R] [--dist-hang-rate R]"
               " [--dist-corrupt-rate R] [--dist-fault-seed N]\n"
               "  tracesel serve --socket PATH [--runners N]"
               " [--max-queue N] [--slow-job-ms N] [--journal-capacity N]\n"
               "                 [--journal-dir DIR] [--journal-rotate-bytes N]"
               " [--checkpoint-interval N] [--tenant-inflight N]"
               " [--retry-after-floor-ms N]\n"
               "  tracesel submit <t2|usb|spec.flow> --socket PATH"
               " [--buffer N] [--instances K] [--mode M] [--no-packing]\n"
               "                 [--no-symmetry-reduction] [--max-nodes N]"
               " [--mem-budget-mb N] [--deadline-ms N] [--jobs N]"
               " [--kernel M] [--json]\n"
               "  tracesel submit ... [--tenant NAME]"
               " [--connect-timeout-ms N] [--retries N]\n"
               "  tracesel stats --socket PATH [--watch] [--interval-ms N]"
               " [--count N] [--connect-timeout-ms N]\n"
               "  tracesel top --socket PATH [--json]\n"
               "  tracesel ping|stop --socket PATH [--connect-timeout-ms N]\n"
               "  tracesel dot <spec.flow> <flow-name>\n"
               "  tracesel lint <spec.flow> [--buffer N] [--lenient]\n"
               "  tracesel debug <case 1..5> [--no-packing] [--vcd FILE]"
               " [--report FILE] [--json] [--jobs N]\n"
               "                 [--fault-rate R] [--fault-kinds K,...]"
               " [--fault-seed N] [--retries N]\n"
               "global options (any subcommand):\n"
               "  --trace-out FILE    Chrome trace-event JSON of this run"
               " (merged across processes on --workers/submit runs)\n"
               "  --metrics-out FILE  flat metrics JSON of this run\n"
               "  --prom-out FILE     Prometheus text exposition\n"
               "  --log-level L       debug|info|warn|error (default warn)\n";
  return 1;
}

int cmd_inspect(const std::string& path) {
  const auto spec = flow::parse_flow_spec_file(path);
  std::cout << "Spec '" << path << "': " << spec.flows.size() << " flows, "
            << spec.catalog.size() << " messages\n\n";
  util::Table messages({"Message", "Width", "Trace width", "Route",
                        "Subgroups"});
  for (const flow::Message& m : spec.catalog) {
    std::string subgroups;
    for (const auto& sg : m.subgroups) {
      if (!subgroups.empty()) subgroups += ' ';
      subgroups += sg.name + '[' + std::to_string(sg.width) + ']';
    }
    messages.add_row({m.name, std::to_string(m.width),
                      std::to_string(m.trace_width()),
                      m.source_ip + "->" + m.dest_ip,
                      subgroups.empty() ? "-" : subgroups});
  }
  std::cout << messages << '\n';

  util::Table flows({"Flow", "States", "Messages", "Atomic", "Depth",
                     "Branching", "Executions"});
  for (const flow::Flow& f : spec.flows) {
    const auto st = flow::flow_stats(f);
    flows.add_row({st.name, std::to_string(st.states),
                   std::to_string(st.messages),
                   std::to_string(st.atomic_states),
                   std::to_string(st.depth),
                   std::to_string(st.max_branching),
                   util::fixed(st.executions, 0)});
  }
  std::cout << flows;
  return 0;
}

/// Handles every token after "select": one optional positional spec path
/// plus flags. With --resume the spec, search mode and interleave settings
/// come from the checkpoint, so the positional spec and the structural
/// flags are rejected rather than silently ignored.
int cmd_select(int argc, char** argv) {
  selection::SelectorConfig cfg;
  flow::InterleaveOptions iopt;
  std::uint32_t instances = 2;
  bool json = false;
  std::string spec_path, resume_path;
  std::string structural_flag;  // first structural flag seen, for diagnostics
  bool checkpoint_given = false;
  std::uint64_t deadline_ms = 0;
  selection::DistConfig dist;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    auto structural = [&]() {
      if (structural_flag.empty()) structural_flag = arg;
    };
    if (arg == "--buffer") { structural(); cfg.buffer_width = std::stoul(next()); }
    else if (arg == "--instances") { structural(); instances = std::stoul(next()); }
    else if (arg == "--no-packing") { structural(); cfg.packing = false; }
    else if (arg == "--jobs") cfg.jobs = std::stoul(next());
    else if (arg == "--kernel") cfg.kernel = parse_kernel_mode(next());
    else if (arg == "--json") json = true;
    else if (arg == "--no-symmetry-reduction") {
      structural();
      iopt.symmetry_reduction = false;
    } else if (arg == "--max-nodes") {
      structural();
      iopt.max_nodes = std::stoul(next());
    } else if (arg == "--checkpoint") {
      cfg.checkpoint_path = next();
      checkpoint_given = true;
    } else if (arg == "--checkpoint-interval") {
      cfg.checkpoint_interval = std::stoul(next());
      if (cfg.checkpoint_interval == 0)
        throw std::runtime_error("--checkpoint-interval must be >= 1");
    } else if (arg == "--resume") resume_path = next();
    else if (arg == "--workers") dist.workers = std::stoul(next());
    else if (arg == "--unit-size") dist.unit_size = std::stoul(next());
    else if (arg == "--unit-deadline-ms")
      dist.unit_deadline_ms = std::stoull(next());
    else if (arg == "--max-retries") dist.max_retries = std::stoul(next());
    else if (arg == "--dist-kill-rate")
      dist.faults.kill_rate = parse_number(next(), "--dist-kill-rate");
    else if (arg == "--dist-hang-rate")
      dist.faults.hang_rate = parse_number(next(), "--dist-hang-rate");
    else if (arg == "--dist-corrupt-rate")
      dist.faults.corrupt_rate = parse_number(next(), "--dist-corrupt-rate");
    else if (arg == "--dist-fault-seed")
      dist.faults.seed = std::stoull(next());
    else if (arg == "--deadline-ms") deadline_ms = std::stoull(next());
    else if (arg == "--mem-budget-mb") cfg.mem_budget_mb = std::stoul(next());
    else if (arg == "--shard-budget") cfg.shard_budget = std::stoul(next());
    else if (arg == "--mode") {
      structural();
      const std::string m = next();
      if (m == "maximal") cfg.mode = selection::SearchMode::kMaximal;
      else if (m == "exhaustive") cfg.mode = selection::SearchMode::kExhaustive;
      else if (m == "greedy") cfg.mode = selection::SearchMode::kGreedy;
      else if (m == "knapsack") cfg.mode = selection::SearchMode::kKnapsack;
      else throw std::runtime_error("unknown mode '" + m + "'");
    } else if (!arg.starts_with("--")) {
      if (!spec_path.empty())
        throw std::runtime_error("unexpected operand '" + arg + "'");
      spec_path = arg;
    } else {
      throw std::runtime_error("unknown option '" + arg + "'");
    }
  }

  // Thread the global sinks through the config so the Session plumbing is
  // the same one embedding applications use; main() performs the writes.
  cfg.trace_out = g_trace_out;
  cfg.metrics_out = g_metrics_out;
  // Signals and the optional deadline share one token, so either stops the
  // run the same cooperative way.
  cfg.cancel = g_cancel;
  if (deadline_ms > 0)
    cfg.cancel.set_timeout(std::chrono::milliseconds(deadline_ms));

  auto session = [&]() -> Session {
    if (resume_path.empty()) {
      if (spec_path.empty())
        throw std::runtime_error("select: missing <spec.flow> operand");
      Session s = Session::from_spec_file(spec_path);
      s.configure(cfg).interleave_options(iopt);
      g_cooperative.store(true, std::memory_order_relaxed);
      s.interleave(instances);
      return s;
    }
    if (!spec_path.empty() || !structural_flag.empty())
      throw std::runtime_error(
          "--resume takes the spec and " +
          (structural_flag.empty() ? std::string("'" + spec_path + "'")
                                   : structural_flag) +
          " from the checkpoint; drop it");
    g_cooperative.store(true, std::memory_order_relaxed);
    auto resumed = Session::resume(resume_path);
    if (!resumed.ok())
      throw std::runtime_error(resumed.error().to_string());
    Session s = std::move(resumed).value();
    // Runtime knobs stay overridable on resume; the structural ones above
    // were restored from the checkpoint by Session::resume.
    selection::SelectorConfig rc = s.config();
    rc.jobs = cfg.jobs;
    rc.kernel = cfg.kernel;
    if (checkpoint_given) rc.checkpoint_path = cfg.checkpoint_path;
    rc.checkpoint_interval = cfg.checkpoint_interval;
    rc.shard_budget = cfg.shard_budget;
    rc.mem_budget_mb = cfg.mem_budget_mb;
    rc.trace_out = cfg.trace_out;
    rc.metrics_out = cfg.metrics_out;
    rc.cancel = cfg.cancel;
    s.configure(rc);
    return s;
  }();

  if (dist.workers > 0 && !resume_path.empty())
    throw std::runtime_error("--resume is in-process only; drop --workers");
  const auto r = [&]() {
    if (dist.workers == 0) return session.select();
    // Workers inherit our log threshold so --log-level debug shows their
    // per-unit logs too (each line carries its work-unit id context).
    dist.worker_argv = {g_argv0, "--worker", "--log-level",
                       util::log_level_name(util::log_threshold())};
    return session.run_distributed(dist);
  }();
  int rc = 0;
  if (r.partial) {
    std::cerr << "interrupted: partial result, "
              << util::pct(r.explored_fraction) << " of the search explored";
    if (!session.config().checkpoint_path.empty())
      std::cerr << " (resume with --resume "
                << session.config().checkpoint_path << ")";
    std::cerr << '\n';
    rc = resilience::kExitInterrupted;
  }
  if (r.degraded())
    std::cerr << "degraded: " << r.degradation << '\n';
  const flow::MessageCatalog& catalog = session.catalog();
  if (json) {
    std::cout << selection::to_json(catalog, r).dump(2) << '\n';
    return rc;
  }
  const flow::InterleavedFlow& u = session.interleaving();
  std::cout << "Interleaving: " << u.num_product_states() << " states, "
            << u.num_product_edges() << " message occurrences";
  if (u.reduced())
    std::cout << " (materialized: " << u.num_nodes() << " orbit nodes, "
              << u.num_edges() << " edges)";
  std::cout << '\n';

  util::Table table({"Field", "Width", "Kind"});
  for (const auto m : r.combination.messages)
    table.add_row({catalog.get(m).name,
                   std::to_string(catalog.get(m).trace_width()),
                   "message"});
  for (const auto& pg : r.packed)
    table.add_row({catalog.get(pg.parent).name + '.' + pg.subgroup_name,
                   std::to_string(pg.width), "packed subgroup"});
  std::cout << table;
  std::cout << "gain=" << util::fixed(r.gain, 4)
            << " coverage=" << util::pct(r.coverage)
            << " utilization=" << util::pct(r.utilization()) << " ("
            << r.used_width << '/' << r.buffer_width << " bits)\n";
  return rc;
}

/// traceseld (docs/service.md): bind the socket, run jobs until SIGTERM/
/// SIGINT or a stop frame, then drain and exit 0.
int cmd_serve(int argc, char** argv) {
  service::ServerOptions opt;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--socket") opt.socket_path = next();
    else if (arg == "--runners") opt.runners = std::stoul(next());
    else if (arg == "--max-queue") opt.max_queue = std::stoul(next());
    else if (arg == "--slow-job-ms") opt.slow_job_ms = std::stoull(next());
    else if (arg == "--journal-capacity")
      opt.journal_capacity = std::stoul(next());
    else if (arg == "--journal-dir") opt.journal_dir = next();
    else if (arg == "--journal-rotate-bytes")
      opt.journal_rotate_bytes = std::stoull(next());
    else if (arg == "--checkpoint-interval")
      opt.checkpoint_interval = std::stoul(next());
    else if (arg == "--tenant-inflight")
      opt.per_tenant_inflight = std::stoul(next());
    else if (arg == "--retry-after-floor-ms")
      opt.retry_after_floor_ms = std::stoull(next());
    else throw std::runtime_error("unknown option '" + arg + "'");
  }
  if (opt.socket_path.empty())
    throw std::runtime_error("serve: --socket PATH is required");
  // First SIGTERM/SIGINT drains the daemon (cooperative); a second kills.
  opt.shutdown = g_cancel;
  g_cooperative.store(true, std::memory_order_relaxed);
  service::Server server(std::move(opt));
  const auto st = server.start();
  if (!st.ok()) throw std::runtime_error(st.error().to_string());
  return server.serve();
}

/// Client-side resilience knobs of the submit/ctl verbs (never part of
/// the JobRequest — they do not change the computation).
struct ClientCliOptions {
  std::uint64_t connect_timeout_ms = 0;  ///< 0 = single connect attempt
  std::size_t retries = 0;               ///< extra submit attempts
};

/// Builds the JobRequest a submit-style argv describes. Shared by
/// `tracesel submit` and the tests that need an identical request.
JobRequest parse_submit_request(int argc, char** argv, std::string& socket,
                                bool& json,
                                ClientCliOptions* client_opt = nullptr) {
  JobRequest req;
  req.spec.clear();
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--socket") socket = next();
    else if (arg == "--buffer") req.buffer_width = std::stoul(next());
    else if (arg == "--instances") req.instances = std::stoul(next());
    else if (arg == "--no-packing") req.packing = false;
    else if (arg == "--no-symmetry-reduction") req.symmetry_reduction = false;
    else if (arg == "--max-nodes") req.max_nodes = std::stoull(next());
    else if (arg == "--max-combinations")
      req.max_combinations = std::stoull(next());
    else if (arg == "--mem-budget-mb") req.mem_budget_mb = std::stoull(next());
    else if (arg == "--deadline-ms") req.deadline_ms = std::stoull(next());
    else if (arg == "--jobs") req.jobs = std::stoul(next());
    else if (arg == "--kernel") req.kernel = parse_kernel_mode(next());
    else if (arg == "--tenant") req.tenant = next();
    else if (arg == "--json") json = true;
    else if (arg == "--connect-timeout-ms" && client_opt)
      client_opt->connect_timeout_ms = std::stoull(next());
    else if (arg == "--retries" && client_opt)
      client_opt->retries = std::stoul(next());
    else if (arg == "--mode") {
      auto mode = parse_search_mode(next());
      if (!mode.ok()) throw std::runtime_error(mode.error().to_string());
      req.mode = mode.value();
    } else if (!arg.starts_with("--")) {
      if (!req.spec.empty())
        throw std::runtime_error("unexpected operand '" + arg + "'");
      req.spec = arg;
    } else {
      throw std::runtime_error("unknown option '" + arg + "'");
    }
  }
  if (req.spec.empty())
    throw std::runtime_error("submit: missing <t2|usb|spec.flow> operand");
  return req;
}

int cmd_submit(int argc, char** argv) {
  std::string socket;
  bool json = false;
  ClientCliOptions copt;
  JobRequest req = parse_submit_request(argc, argv, socket, json, &copt);
  if (socket.empty())
    throw std::runtime_error("submit: --socket PATH is required");

  g_cooperative.store(true, std::memory_order_relaxed);
  service::Client::ConnectOptions conn;
  conn.timeout_ms = copt.connect_timeout_ms;
  conn.cancel = g_cancel;
  auto client = service::Client::connect(socket, conn);
  if (!client.ok()) throw std::runtime_error(client.error().to_string());

  // With an observability sink active, stamp this process's trace context
  // into the request: the daemon opens its job span under our submit span
  // and ships the job's spans/counters back in the result frame, so the
  // written trace is one flame chart across both processes.
  std::optional<obs::Span> submit_span;
  if (obs::enabled()) {
    submit_span.emplace("cli.submit");
    req.trace_id = obs::ensure_trace_context().trace_id;
    req.parent_span_id = submit_span->id();
  }
  const auto on_event = [](std::string_view status, std::uint64_t position) {
    std::cerr << "job " << status;
    if ((status == "queued" || status == "attached") && position > 0)
      std::cerr << " (position " << position << ")";
    std::cerr << '\n';
  };
  // --retries upgrades to the restart-tolerant path: reconnect with
  // seeded backoff, honor retry-after hints, resubmit idempotently.
  service::Client::SubmitOptions sopt;
  sopt.max_attempts = copt.retries + 1;
  sopt.connect_timeout_ms =
      copt.connect_timeout_ms > 0 ? copt.connect_timeout_ms : 2000;
  const auto outcome =
      copt.retries > 0
          ? client.value().submit_resilient(req, sopt, g_cancel, on_event)
          : client.value().submit(req, g_cancel, on_event);
  submit_span.reset();  // close before the sinks are written
  if (!outcome.ok()) throw std::runtime_error(outcome.error().to_string());
  const service::JobOutcome& o = outcome.value();

  if (!o.telemetry.empty()) {
    auto remote = obs::parse_telemetry(o.telemetry);
    if (remote.ok()) {
      obs::adopt_remote_telemetry(std::move(remote).value());
    } else {
      util::Log(util::LogLevel::kWarn)
          << "submit: dropping malformed daemon telemetry: "
          << remote.error().to_string();
    }
  }

  std::cerr << "job " << o.job_id << ": " << o.status << " in "
            << o.elapsed_ms << " ms"
            << (o.cache_hit ? " (result cache hit)"
                            : (o.workload_cache_hit ? " (workload cache hit)"
                                                    : ""))
            << '\n';
  if (!o.error.empty()) std::cerr << "error: " << o.error << '\n';
  if (json && !o.report_json.empty())
    std::cout << o.report_json << '\n';  // the `select --json` bytes
  else if (!o.metrics_json.empty())
    std::cerr << "metrics: " << o.metrics_json << '\n';
  if (o.status == "error") return 2;
  if (o.status == "partial" || o.status == "cancelled")
    return resilience::kExitInterrupted;
  return 0;
}

/// One scalar out of the daemon's pretty-printed JSON (our own dump(2)
/// output, so the `"key": value` line shape is stable; no parser needed).
std::string json_scalar(const std::string& json, const std::string& key) {
  const std::string needle = '"' + key + "\": ";
  const std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return "?";
  std::size_t end = pos + needle.size();
  while (end < json.size() && json[end] != ',' && json[end] != '\n') ++end;
  return json.substr(pos + needle.size(), end - pos - needle.size());
}

/// The raw `[...]` (or `{...}`) block of a top-level key, by bracket
/// matching.
std::string json_block(const std::string& json, const std::string& key,
                       char open = '[', char close = ']') {
  const std::string needle = '"' + key + "\": " + open;
  const std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return {};
  const std::size_t start = pos + needle.size() - 1;  // at the opener
  int depth = 0;
  bool in_str = false;
  for (std::size_t i = start; i < json.size(); ++i) {
    const char c = json[i];
    if (in_str) {
      if (c == '\\') ++i;
      else if (c == '"') in_str = false;
      continue;
    }
    if (c == '"') in_str = true;
    else if (c == open) ++depth;
    else if (c == close && --depth == 0)
      return json.substr(start, i - start + 1);
  }
  return {};
}

/// Human rendering of the telemetry JSON for `tracesel top`.
void render_top(const std::string& socket, const std::string& t) {
  std::cout << "traceseld @ " << socket << '\n'
            << "  uptime: " << json_scalar(t, "uptime_ms") << " ms   runners: "
            << json_scalar(t, "runners")
            << "   utilization: " << json_scalar(t, "utilization") << '\n'
            << "  queue depth: " << json_scalar(t, "queue.depth")
            << "   running: " << json_scalar(t, "jobs.running")
            << "   busy: " << json_scalar(t, "busy_ms") << " ms\n"
            << "  jobs: submitted " << json_scalar(t, "jobs.submitted")
            << ", completed " << json_scalar(t, "jobs.completed")
            << ", errors " << json_scalar(t, "jobs.errors")
            << "   slow-job threshold: "
            << json_scalar(t, "slow_job_threshold_ms") << " ms\n";
  const std::string tenants = json_block(t, "tenants", '{', '}');
  if (!tenants.empty() && tenants != "{}")
    std::cout << "tenants: " << tenants << '\n';
  const std::string slow = json_block(t, "slow_jobs");
  if (!slow.empty() && slow != "[]")
    std::cout << "slow jobs: " << slow << '\n';
  const std::string journal = json_block(t, "journal");
  if (!journal.empty() && journal != "[]")
    std::cout << "journal (oldest first): " << journal << '\n';
}

/// stats / top / ping / stop — the bodyless daemon control verbs. stats
/// and top take --watch [--interval-ms N] [--count N] to refresh until
/// interrupted (or N samples; --count 1 is the scripting one-shot).
int cmd_daemon_ctl(const std::string& verb, int argc, char** argv) {
  std::string socket;
  bool watch = false;
  bool json = false;
  std::uint64_t interval_ms = 1000;
  std::uint64_t count = 0;  // 0 = until interrupted
  std::uint64_t connect_timeout_ms = 0;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) socket = argv[++i];
    else if (arg == "--watch") watch = true;
    else if (arg == "--json") json = true;
    else if (arg == "--interval-ms" && i + 1 < argc)
      interval_ms = std::stoull(argv[++i]);
    else if (arg == "--count" && i + 1 < argc) count = std::stoull(argv[++i]);
    else if (arg == "--connect-timeout-ms" && i + 1 < argc)
      connect_timeout_ms = std::stoull(argv[++i]);
    else throw std::runtime_error("unknown option '" + arg + "'");
  }
  if (socket.empty())
    throw std::runtime_error(verb + ": --socket PATH is required");
  service::Client::ConnectOptions conn;
  conn.timeout_ms = connect_timeout_ms;
  conn.cancel = g_cancel;
  auto client = service::Client::connect(socket, conn);
  if (!client.ok()) throw std::runtime_error(client.error().to_string());

  if (verb == "stats" || verb == "top") {
    if (count == 0 && !watch) count = 1;
    g_cooperative.store(true, std::memory_order_relaxed);

    // A watch loop survives daemon restarts: a failed fetch drops the
    // connection and reconnects with seeded backoff (one `reconnecting`
    // notice per outage) instead of dying mid-dashboard. One-shot calls
    // keep failing fast. Returns nullopt only on interrupt.
    auto fetch = [&](bool want_stats) -> std::optional<std::string> {
      bool notified = false;
      util::Backoff backoff;
      for (;;) {
        if (g_cancel.cancelled()) return std::nullopt;
        if (client.ok() && client.value().connected()) {
          auto r = want_stats ? client.value().stats()
                              : client.value().telemetry();
          if (r.ok()) return std::move(r).value();
          if (!watch) throw std::runtime_error(r.error().to_string());
          client.value().close();
        }
        if (!notified) {
          std::cerr << "reconnecting to " << socket << "...\n";
          notified = true;
        }
        std::this_thread::sleep_for(
            std::min<std::chrono::milliseconds>(backoff.next(),
                                                std::chrono::milliseconds(
                                                    interval_ms)));
        auto re = service::Client::connect(socket);
        if (re.ok()) client = std::move(re);
      }
    };

    for (std::uint64_t sample = 0; count == 0 || sample < count; ++sample) {
      if (sample != 0) {
        // One connection, one frame per tick: the watch loop is itself a
        // cheap client, not a thundering herd.
        const auto until = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(interval_ms);
        while (std::chrono::steady_clock::now() < until) {
          if (g_cancel.cancelled()) return 0;
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        std::cout << '\n';
      }
      if (verb == "stats" && !watch) {
        // One-shot stats keeps the legacy job/store counter frame;
        // --watch upgrades to the live telemetry view (journal, tenants,
        // utilization) so a refresh loop actually has motion to show.
        auto stats = fetch(/*want_stats=*/true);
        if (!stats) return 0;
        std::cout << *stats << '\n';
      } else {
        auto telemetry = fetch(/*want_stats=*/false);
        if (!telemetry) return 0;
        if (verb == "stats" || json) std::cout << *telemetry << '\n';
        else render_top(socket, *telemetry);
      }
      std::cout.flush();
    }
    return 0;
  }
  if (verb == "ping") {
    const auto st = client.value().ping();
    if (!st.ok()) throw std::runtime_error(st.error().to_string());
    std::cout << "pong\n";
    return 0;
  }
  const auto st = client.value().stop();
  if (!st.ok()) throw std::runtime_error(st.error().to_string());
  std::cout << "draining\n";
  return 0;
}

int cmd_lint(const std::string& path, std::uint32_t buffer, bool lenient) {
  flow::ParsedSpec spec;
  std::size_t parse_errors = 0;
  if (lenient) {
    // Lint mode: accumulate every parse error, then lint whatever survived.
    auto parsed = flow::parse_flow_spec_file_lenient(path);
    for (const flow::ParseDiagnostic& d : parsed.errors)
      std::cout << "error: " << d.to_string() << '\n';
    parse_errors = parsed.errors.size();
    spec = std::move(parsed.spec);
  } else {
    spec = flow::parse_flow_spec_file(path);
  }
  std::vector<const flow::Flow*> flows;
  for (const flow::Flow& f : spec.flows) flows.push_back(&f);
  flow::LintOptions opt;
  opt.buffer_width = buffer;
  const auto diagnostics = flow::lint(spec.catalog, flows, opt);
  for (const auto& d : diagnostics) {
    std::cout << flow::to_string(d.severity) << ": [" << d.rule << "] "
              << d.subject << ": " << d.text << '\n';
  }
  std::cout << parse_errors + diagnostics.size() << " diagnostic(s)\n";
  const bool warnings = std::any_of(
      diagnostics.begin(), diagnostics.end(), [](const auto& d) {
        return d.severity == flow::LintSeverity::kWarning;
      });
  return (parse_errors > 0 || warnings) ? 2 : 0;
}

int cmd_dot(const std::string& path, const std::string& flow_name) {
  const auto spec = flow::parse_flow_spec_file(path);
  std::cout << flow::to_dot(spec.flow(flow_name), spec.catalog);
  return 0;
}

struct DebugCliOptions {
  bool packing = true;
  bool json = false;
  std::string vcd_path, report_path;
  soc::FaultProfile faults;
  std::uint32_t retries = 2;
  std::size_t jobs = 1;
};

int cmd_debug(int case_id, const DebugCliOptions& cli) {
  const auto cases = soc::standard_case_studies();
  if (case_id < 1 || case_id > static_cast<int>(cases.size())) {
    std::cerr << "case id must be 1.." << cases.size() << '\n';
    return 1;
  }
  auto session = Session::t2();
  session.jobs(cli.jobs);
  const soc::T2Design& design = session.design();
  debug::CaseStudyOptions opt;
  opt.packing = cli.packing;
  opt.faults = cli.faults;
  opt.capture_retries = cli.retries;
  const auto r = session.run_case_study(case_id, opt);
  if (cli.json) {
    debug::WorkbenchResult wr;
    wr.selection = r.selection;
    wr.golden = r.golden;
    wr.buggy = r.buggy;
    wr.observation = r.observation;
    wr.report = r.report;
    wr.localization = r.localization;
    wr.fault_stats = r.fault_stats;
    wr.capture_attempts = r.capture_attempts;
    wr.capture_degraded = r.capture_degraded;
    wr.ranked_causes = r.ranked_causes;
    wr.robust_localization = r.robust_localization;
    std::cout << debug::to_json(design.catalog(), wr).dump(2) << '\n';
    return 0;
  }
  std::cout << "Case study " << case_id << " (" << r.scenario.name
            << "): " << (r.buggy.failed ? r.buggy.failure : "no failure")
            << '\n';
  for (const auto& [m, status] : r.observation.status)
    std::cout << "  " << design.catalog().get(m).name << ": "
              << debug::to_string(status) << '\n';
  std::cout << "Pruned " << util::pct(r.report.pruned_fraction()) << " ("
            << r.report.final_causes.size() << " plausible cause(s))\n";
  for (const auto& c : r.report.final_causes)
    std::cout << "  [" << c.ip << "] " << c.description << '\n';
  if (cli.faults.enabled()) {
    std::cout << "Capture: quality " << util::pct(r.observation.quality())
              << ", " << r.fault_stats.total_injected()
              << " fault(s) injected, " << r.capture_attempts
              << " attempt(s)" << (r.capture_degraded ? ", degraded" : "")
              << '\n';
    std::cout << "Ranked causes (confidence-weighted):\n";
    for (const debug::ScoredCause& sc : r.ranked_causes)
      std::cout << "  " << util::fixed(sc.score, 3) << "  [" << sc.cause.ip
                << "] " << sc.cause.description << '\n';
    std::cout << "Localization confidence: "
              << util::pct(r.robust_localization.confidence)
              << (r.robust_localization.degraded ? " (degraded)" : "")
              << '\n';
  }
  if (!cli.report_path.empty()) {
    debug::write_report(design, r, cli.report_path);
    std::cout << "Debug report written to " << cli.report_path << '\n';
  }
  if (!cli.vcd_path.empty()) {
    std::ofstream out(cli.vcd_path);
    if (!out) {
      std::cerr << "cannot write " << cli.vcd_path << '\n';
      return 2;
    }
    out << soc::trace_to_vcd(design.catalog(), r.buggy_records);
    std::cout << "Trace buffer dump written to " << cli.vcd_path << '\n';
  }
  return 0;
}

int dispatch(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "--worker") {
      // Worker-process mode (spawned by --workers): speak the work-unit
      // frame protocol on stdin/stdout. Nothing else may touch stdout —
      // logging already goes to stderr. A coordinator that dies mid-write
      // must surface as EPIPE on our next reply, not SIGPIPE.
      util::ignore_sigpipe();
      return selection::run_worker(0, 1, Session::worker_engine);
    }
    if (cmd == "inspect" && argc == 3) return cmd_inspect(argv[2]);
    if (cmd == "select" && argc >= 3)
      return cmd_select(argc - 2, argv + 2);
    if (cmd == "serve") return cmd_serve(argc - 2, argv + 2);
    if (cmd == "submit" && argc >= 3) return cmd_submit(argc - 2, argv + 2);
    if (cmd == "stats" || cmd == "top" || cmd == "ping" || cmd == "stop")
      return cmd_daemon_ctl(cmd, argc - 2, argv + 2);
    if (cmd == "dot" && argc == 4) return cmd_dot(argv[2], argv[3]);
    if (cmd == "lint" && argc >= 3) {
      std::uint32_t buffer = 32;
      bool lenient = false;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--lenient") == 0) lenient = true;
        else if (std::strcmp(argv[i], "--buffer") == 0 && i + 1 < argc)
          buffer = static_cast<std::uint32_t>(std::stoul(argv[++i]));
        else
          return usage();
      }
      return cmd_lint(argv[2], buffer, lenient);
    }
    if (cmd == "debug" && argc >= 3) {
      DebugCliOptions cli;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--no-packing") == 0) cli.packing = false;
        else if (std::strcmp(argv[i], "--json") == 0) cli.json = true;
        else if (std::strcmp(argv[i], "--vcd") == 0 && i + 1 < argc)
          cli.vcd_path = argv[++i];
        else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc)
          cli.report_path = argv[++i];
        else if (std::strcmp(argv[i], "--fault-rate") == 0 && i + 1 < argc)
          cli.faults.rate = parse_number(argv[++i], "--fault-rate");
        else if (std::strcmp(argv[i], "--fault-seed") == 0 && i + 1 < argc)
          cli.faults.seed =
              static_cast<std::uint64_t>(parse_number(argv[++i],
                                                      "--fault-seed"));
        else if (std::strcmp(argv[i], "--retries") == 0 && i + 1 < argc)
          cli.retries =
              static_cast<std::uint32_t>(parse_number(argv[++i],
                                                      "--retries"));
        else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
          cli.jobs =
              static_cast<std::size_t>(parse_number(argv[++i], "--jobs"));
        else if (std::strcmp(argv[i], "--fault-kinds") == 0 && i + 1 < argc) {
          auto kinds = soc::parse_fault_kinds(argv[++i]);
          if (!kinds.ok()) {
            std::cerr << "error: " << kinds.error().to_string() << '\n';
            return 1;
          }
          cli.faults.kinds = std::move(kinds).value();
        } else {
          return usage();
        }
      }
      if (cli.faults.rate < 0.0 || cli.faults.rate > 1.0) {
        std::cerr << "error: --fault-rate must be in [0, 1]\n";
        return 1;
      }
      return cmd_debug(std::atoi(argv[2]), cli);
    }
  } catch (const util::CancelledError& e) {
    // A stage that cannot carry a partial result (flow parse, interleave
    // build) unwound on cancellation: interrupted, not failed.
    std::cerr << "interrupted: " << e.what() << '\n';
    return resilience::kExitInterrupted;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  } catch (...) {
    // Last-resort guard: an unexpected non-std exception must still exit
    // with a diagnostic, never terminate().
    std::cerr << "error: unexpected non-standard exception\n";
    return 2;
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  // Cooperative interrupts: while a cancellable stage runs, the first
  // SIGINT/SIGTERM requests cancellation (partial result + final
  // checkpoint + flushed observability sinks, exit 3); a second — or any
  // signal outside such a stage — exits immediately.
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  if (argc > 0) g_argv0 = argv[0];

  // Strip the global observability/logging options (valid anywhere on the
  // command line) before subcommand dispatch.
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const bool takes_value = i > 0 && (std::strcmp(argv[i], "--trace-out") == 0 ||
                                       std::strcmp(argv[i], "--metrics-out") == 0 ||
                                       std::strcmp(argv[i], "--prom-out") == 0 ||
                                       std::strcmp(argv[i], "--log-level") == 0);
    if (!takes_value) {
      args.push_back(argv[i]);
      continue;
    }
    if (i + 1 >= argc) {
      std::cerr << "error: missing value for " << argv[i] << '\n';
      return 1;
    }
    const std::string flag = argv[i];
    const std::string value = argv[++i];
    if (flag == "--trace-out") {
      g_trace_out = value;
    } else if (flag == "--metrics-out") {
      g_metrics_out = value;
    } else if (flag == "--prom-out") {
      g_prom_out = value;
    } else {
      if (value == "debug") util::set_log_threshold(util::LogLevel::kDebug);
      else if (value == "info") util::set_log_threshold(util::LogLevel::kInfo);
      else if (value == "warn") util::set_log_threshold(util::LogLevel::kWarn);
      else if (value == "error") util::set_log_threshold(util::LogLevel::kError);
      else {
        std::cerr << "error: unknown log level '" << value << "'\n";
        return 1;
      }
    }
  }
  const bool sinks =
      !g_trace_out.empty() || !g_metrics_out.empty() || !g_prom_out.empty();
  if (sinks) obs::set_enabled(true);

  int rc = dispatch(static_cast<int>(args.size()), args.data());

  if (sinks) {
    obs::update_process_gauges();
    if (!g_trace_out.empty() && !obs::write_chrome_trace(g_trace_out) &&
        rc == 0)
      rc = 2;
    if (!g_metrics_out.empty() && !obs::write_metrics(g_metrics_out) &&
        rc == 0)
      rc = 2;
    if (!g_prom_out.empty() && !obs::write_prometheus(g_prom_out) && rc == 0)
      rc = 2;
  }
  return rc;
}
