file(REMOVE_RECURSE
  "CMakeFiles/custom_soc.dir/custom_soc.cpp.o"
  "CMakeFiles/custom_soc.dir/custom_soc.cpp.o.d"
  "custom_soc"
  "custom_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
