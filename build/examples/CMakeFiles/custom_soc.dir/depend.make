# Empty dependencies file for custom_soc.
# This may be replaced when dependencies are built.
