# Empty compiler generated dependencies file for t2_debug_session.
# This may be replaced when dependencies are built.
