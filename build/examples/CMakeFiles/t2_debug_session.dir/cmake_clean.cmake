file(REMOVE_RECURSE
  "CMakeFiles/t2_debug_session.dir/t2_debug_session.cpp.o"
  "CMakeFiles/t2_debug_session.dir/t2_debug_session.cpp.o.d"
  "t2_debug_session"
  "t2_debug_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t2_debug_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
