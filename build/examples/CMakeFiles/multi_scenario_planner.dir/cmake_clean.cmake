file(REMOVE_RECURSE
  "CMakeFiles/multi_scenario_planner.dir/multi_scenario_planner.cpp.o"
  "CMakeFiles/multi_scenario_planner.dir/multi_scenario_planner.cpp.o.d"
  "multi_scenario_planner"
  "multi_scenario_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_scenario_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
