# Empty dependencies file for multi_scenario_planner.
# This may be replaced when dependencies are built.
