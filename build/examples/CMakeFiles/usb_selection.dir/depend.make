# Empty dependencies file for usb_selection.
# This may be replaced when dependencies are built.
