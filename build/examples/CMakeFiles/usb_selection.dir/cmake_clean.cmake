file(REMOVE_RECURSE
  "CMakeFiles/usb_selection.dir/usb_selection.cpp.o"
  "CMakeFiles/usb_selection.dir/usb_selection.cpp.o.d"
  "usb_selection"
  "usb_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usb_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
