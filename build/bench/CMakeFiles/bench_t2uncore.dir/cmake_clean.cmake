file(REMOVE_RECURSE
  "CMakeFiles/bench_t2uncore.dir/bench_t2uncore.cpp.o"
  "CMakeFiles/bench_t2uncore.dir/bench_t2uncore.cpp.o.d"
  "bench_t2uncore"
  "bench_t2uncore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2uncore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
