# Empty compiler generated dependencies file for bench_t2uncore.
# This may be replaced when dependencies are built.
