# Empty dependencies file for bench_fault_sweep.
# This may be replaced when dependencies are built.
