file(REMOVE_RECURSE
  "CMakeFiles/bench_fault_sweep.dir/bench_fault_sweep.cpp.o"
  "CMakeFiles/bench_fault_sweep.dir/bench_fault_sweep.cpp.o.d"
  "bench_fault_sweep"
  "bench_fault_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fault_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
