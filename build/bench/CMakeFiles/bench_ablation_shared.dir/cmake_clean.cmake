file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_shared.dir/bench_ablation_shared.cpp.o"
  "CMakeFiles/bench_ablation_shared.dir/bench_ablation_shared.cpp.o.d"
  "bench_ablation_shared"
  "bench_ablation_shared.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_shared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
