# Empty compiler generated dependencies file for bench_ablation_shared.
# This may be replaced when dependencies are built.
