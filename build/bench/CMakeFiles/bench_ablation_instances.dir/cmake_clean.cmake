file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_instances.dir/bench_ablation_instances.cpp.o"
  "CMakeFiles/bench_ablation_instances.dir/bench_ablation_instances.cpp.o.d"
  "bench_ablation_instances"
  "bench_ablation_instances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_instances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
