# Empty compiler generated dependencies file for bench_ablation_instances.
# This may be replaced when dependencies are built.
