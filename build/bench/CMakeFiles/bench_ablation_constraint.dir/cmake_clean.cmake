file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_constraint.dir/bench_ablation_constraint.cpp.o"
  "CMakeFiles/bench_ablation_constraint.dir/bench_ablation_constraint.cpp.o.d"
  "bench_ablation_constraint"
  "bench_ablation_constraint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_constraint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
