# Empty dependencies file for bench_ablation_constraint.
# This may be replaced when dependencies are built.
