# Empty dependencies file for bench_extended.
# This may be replaced when dependencies are built.
