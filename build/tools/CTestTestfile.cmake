# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_inspect "tracesel" "inspect" "/root/repo/data/t2.flow")
set_tests_properties(cli_inspect PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_select "tracesel" "select" "/root/repo/data/t2.flow" "--buffer" "24" "--instances" "1" "--mode" "knapsack")
set_tests_properties(cli_select PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_dot "tracesel" "dot" "/root/repo/data/t2.flow" "Mon")
set_tests_properties(cli_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_debug "tracesel" "debug" "2" "--report" "/root/repo/build/cs2_report.md")
set_tests_properties(cli_debug PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "tracesel" "bogus")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_select_json "tracesel" "select" "/root/repo/data/t2.flow" "--instances" "1" "--json")
set_tests_properties(cli_select_json PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_lint "tracesel" "lint" "/root/repo/data/t2.flow")
set_tests_properties(cli_lint PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_lint_lenient "tracesel" "lint" "/root/repo/data/t2.flow" "--lenient")
set_tests_properties(cli_lint_lenient PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_debug_json "tracesel" "debug" "1" "--json")
set_tests_properties(cli_debug_json PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_debug_faulty "tracesel" "debug" "1" "--fault-rate" "0.1" "--fault-kinds" "drop,corrupt" "--fault-seed" "7" "--retries" "2")
set_tests_properties(cli_debug_faulty PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_debug_faulty_json "tracesel" "debug" "3" "--fault-rate" "0.2" "--json")
set_tests_properties(cli_debug_faulty_json PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_debug_bad_fault_kind "tracesel" "debug" "1" "--fault-kinds" "gremlins")
set_tests_properties(cli_debug_bad_fault_kind PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
