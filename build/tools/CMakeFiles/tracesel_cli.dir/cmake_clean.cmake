file(REMOVE_RECURSE
  "CMakeFiles/tracesel_cli.dir/tracesel_cli.cpp.o"
  "CMakeFiles/tracesel_cli.dir/tracesel_cli.cpp.o.d"
  "tracesel"
  "tracesel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracesel_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
