# Empty dependencies file for tracesel_cli.
# This may be replaced when dependencies are built.
