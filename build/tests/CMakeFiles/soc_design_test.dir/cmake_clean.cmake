file(REMOVE_RECURSE
  "CMakeFiles/soc_design_test.dir/soc_design_test.cpp.o"
  "CMakeFiles/soc_design_test.dir/soc_design_test.cpp.o.d"
  "soc_design_test"
  "soc_design_test.pdb"
  "soc_design_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_design_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
