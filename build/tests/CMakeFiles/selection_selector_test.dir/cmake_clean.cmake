file(REMOVE_RECURSE
  "CMakeFiles/selection_selector_test.dir/selection_selector_test.cpp.o"
  "CMakeFiles/selection_selector_test.dir/selection_selector_test.cpp.o.d"
  "selection_selector_test"
  "selection_selector_test.pdb"
  "selection_selector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_selector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
