# Empty dependencies file for selection_selector_test.
# This may be replaced when dependencies are built.
