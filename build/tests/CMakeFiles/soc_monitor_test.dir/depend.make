# Empty dependencies file for soc_monitor_test.
# This may be replaced when dependencies are built.
