file(REMOVE_RECURSE
  "CMakeFiles/soc_monitor_test.dir/soc_monitor_test.cpp.o"
  "CMakeFiles/soc_monitor_test.dir/soc_monitor_test.cpp.o.d"
  "soc_monitor_test"
  "soc_monitor_test.pdb"
  "soc_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
