# Empty compiler generated dependencies file for debug_ip_pairs_test.
# This may be replaced when dependencies are built.
