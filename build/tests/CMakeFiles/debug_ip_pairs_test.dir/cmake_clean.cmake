file(REMOVE_RECURSE
  "CMakeFiles/debug_ip_pairs_test.dir/debug_ip_pairs_test.cpp.o"
  "CMakeFiles/debug_ip_pairs_test.dir/debug_ip_pairs_test.cpp.o.d"
  "debug_ip_pairs_test"
  "debug_ip_pairs_test.pdb"
  "debug_ip_pairs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_ip_pairs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
