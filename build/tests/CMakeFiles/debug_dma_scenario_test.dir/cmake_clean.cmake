file(REMOVE_RECURSE
  "CMakeFiles/debug_dma_scenario_test.dir/debug_dma_scenario_test.cpp.o"
  "CMakeFiles/debug_dma_scenario_test.dir/debug_dma_scenario_test.cpp.o.d"
  "debug_dma_scenario_test"
  "debug_dma_scenario_test.pdb"
  "debug_dma_scenario_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_dma_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
