# Empty compiler generated dependencies file for debug_dma_scenario_test.
# This may be replaced when dependencies are built.
