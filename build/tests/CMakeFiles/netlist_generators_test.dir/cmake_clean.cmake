file(REMOVE_RECURSE
  "CMakeFiles/netlist_generators_test.dir/netlist_generators_test.cpp.o"
  "CMakeFiles/netlist_generators_test.dir/netlist_generators_test.cpp.o.d"
  "netlist_generators_test"
  "netlist_generators_test.pdb"
  "netlist_generators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_generators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
