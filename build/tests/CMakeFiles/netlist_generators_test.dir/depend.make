# Empty dependencies file for netlist_generators_test.
# This may be replaced when dependencies are built.
