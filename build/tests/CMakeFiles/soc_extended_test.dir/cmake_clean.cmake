file(REMOVE_RECURSE
  "CMakeFiles/soc_extended_test.dir/soc_extended_test.cpp.o"
  "CMakeFiles/soc_extended_test.dir/soc_extended_test.cpp.o.d"
  "soc_extended_test"
  "soc_extended_test.pdb"
  "soc_extended_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
