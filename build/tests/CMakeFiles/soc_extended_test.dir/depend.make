# Empty dependencies file for soc_extended_test.
# This may be replaced when dependencies are built.
