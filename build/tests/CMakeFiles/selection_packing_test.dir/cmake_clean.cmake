file(REMOVE_RECURSE
  "CMakeFiles/selection_packing_test.dir/selection_packing_test.cpp.o"
  "CMakeFiles/selection_packing_test.dir/selection_packing_test.cpp.o.d"
  "selection_packing_test"
  "selection_packing_test.pdb"
  "selection_packing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_packing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
