file(REMOVE_RECURSE
  "CMakeFiles/flow_dot_test.dir/flow_dot_test.cpp.o"
  "CMakeFiles/flow_dot_test.dir/flow_dot_test.cpp.o.d"
  "flow_dot_test"
  "flow_dot_test.pdb"
  "flow_dot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_dot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
