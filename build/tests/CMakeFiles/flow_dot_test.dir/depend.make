# Empty dependencies file for flow_dot_test.
# This may be replaced when dependencies are built.
