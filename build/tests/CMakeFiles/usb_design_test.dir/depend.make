# Empty dependencies file for usb_design_test.
# This may be replaced when dependencies are built.
