file(REMOVE_RECURSE
  "CMakeFiles/usb_design_test.dir/usb_design_test.cpp.o"
  "CMakeFiles/usb_design_test.dir/usb_design_test.cpp.o.d"
  "usb_design_test"
  "usb_design_test.pdb"
  "usb_design_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usb_design_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
