file(REMOVE_RECURSE
  "CMakeFiles/soc_vcd_test.dir/soc_vcd_test.cpp.o"
  "CMakeFiles/soc_vcd_test.dir/soc_vcd_test.cpp.o.d"
  "soc_vcd_test"
  "soc_vcd_test.pdb"
  "soc_vcd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_vcd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
