# Empty dependencies file for soc_vcd_test.
# This may be replaced when dependencies are built.
