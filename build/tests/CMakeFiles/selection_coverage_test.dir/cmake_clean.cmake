file(REMOVE_RECURSE
  "CMakeFiles/selection_coverage_test.dir/selection_coverage_test.cpp.o"
  "CMakeFiles/selection_coverage_test.dir/selection_coverage_test.cpp.o.d"
  "selection_coverage_test"
  "selection_coverage_test.pdb"
  "selection_coverage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_coverage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
