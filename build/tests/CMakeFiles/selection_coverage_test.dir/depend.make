# Empty dependencies file for selection_coverage_test.
# This may be replaced when dependencies are built.
