# Empty dependencies file for selection_flow_constraint_test.
# This may be replaced when dependencies are built.
