file(REMOVE_RECURSE
  "CMakeFiles/selection_flow_constraint_test.dir/selection_flow_constraint_test.cpp.o"
  "CMakeFiles/selection_flow_constraint_test.dir/selection_flow_constraint_test.cpp.o.d"
  "selection_flow_constraint_test"
  "selection_flow_constraint_test.pdb"
  "selection_flow_constraint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_flow_constraint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
