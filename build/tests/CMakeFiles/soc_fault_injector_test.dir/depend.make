# Empty dependencies file for soc_fault_injector_test.
# This may be replaced when dependencies are built.
