file(REMOVE_RECURSE
  "CMakeFiles/soc_fault_injector_test.dir/soc_fault_injector_test.cpp.o"
  "CMakeFiles/soc_fault_injector_test.dir/soc_fault_injector_test.cpp.o.d"
  "soc_fault_injector_test"
  "soc_fault_injector_test.pdb"
  "soc_fault_injector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_fault_injector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
