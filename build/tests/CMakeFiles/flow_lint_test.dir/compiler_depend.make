# Empty compiler generated dependencies file for flow_lint_test.
# This may be replaced when dependencies are built.
