file(REMOVE_RECURSE
  "CMakeFiles/flow_lint_test.dir/flow_lint_test.cpp.o"
  "CMakeFiles/flow_lint_test.dir/flow_lint_test.cpp.o.d"
  "flow_lint_test"
  "flow_lint_test.pdb"
  "flow_lint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_lint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
