file(REMOVE_RECURSE
  "CMakeFiles/debug_case_study_test.dir/debug_case_study_test.cpp.o"
  "CMakeFiles/debug_case_study_test.dir/debug_case_study_test.cpp.o.d"
  "debug_case_study_test"
  "debug_case_study_test.pdb"
  "debug_case_study_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_case_study_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
