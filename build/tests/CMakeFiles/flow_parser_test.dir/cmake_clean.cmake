file(REMOVE_RECURSE
  "CMakeFiles/flow_parser_test.dir/flow_parser_test.cpp.o"
  "CMakeFiles/flow_parser_test.dir/flow_parser_test.cpp.o.d"
  "flow_parser_test"
  "flow_parser_test.pdb"
  "flow_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
