# Empty compiler generated dependencies file for debug_monte_carlo_test.
# This may be replaced when dependencies are built.
