file(REMOVE_RECURSE
  "CMakeFiles/debug_monte_carlo_test.dir/debug_monte_carlo_test.cpp.o"
  "CMakeFiles/debug_monte_carlo_test.dir/debug_monte_carlo_test.cpp.o.d"
  "debug_monte_carlo_test"
  "debug_monte_carlo_test.pdb"
  "debug_monte_carlo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_monte_carlo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
