file(REMOVE_RECURSE
  "CMakeFiles/debug_workbench_test.dir/debug_workbench_test.cpp.o"
  "CMakeFiles/debug_workbench_test.dir/debug_workbench_test.cpp.o.d"
  "debug_workbench_test"
  "debug_workbench_test.pdb"
  "debug_workbench_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_workbench_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
