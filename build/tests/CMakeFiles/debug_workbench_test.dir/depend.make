# Empty dependencies file for debug_workbench_test.
# This may be replaced when dependencies are built.
