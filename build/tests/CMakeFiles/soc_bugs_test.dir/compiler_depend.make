# Empty compiler generated dependencies file for soc_bugs_test.
# This may be replaced when dependencies are built.
