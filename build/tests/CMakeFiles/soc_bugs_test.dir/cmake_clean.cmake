file(REMOVE_RECURSE
  "CMakeFiles/soc_bugs_test.dir/soc_bugs_test.cpp.o"
  "CMakeFiles/soc_bugs_test.dir/soc_bugs_test.cpp.o.d"
  "soc_bugs_test"
  "soc_bugs_test.pdb"
  "soc_bugs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_bugs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
