# Empty compiler generated dependencies file for selection_combination_test.
# This may be replaced when dependencies are built.
