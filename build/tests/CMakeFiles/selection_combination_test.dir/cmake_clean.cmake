file(REMOVE_RECURSE
  "CMakeFiles/selection_combination_test.dir/selection_combination_test.cpp.o"
  "CMakeFiles/selection_combination_test.dir/selection_combination_test.cpp.o.d"
  "selection_combination_test"
  "selection_combination_test.pdb"
  "selection_combination_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_combination_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
