# Empty dependencies file for selection_localization_test.
# This may be replaced when dependencies are built.
