file(REMOVE_RECURSE
  "CMakeFiles/selection_localization_test.dir/selection_localization_test.cpp.o"
  "CMakeFiles/selection_localization_test.dir/selection_localization_test.cpp.o.d"
  "selection_localization_test"
  "selection_localization_test.pdb"
  "selection_localization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_localization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
