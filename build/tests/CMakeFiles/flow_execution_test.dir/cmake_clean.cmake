file(REMOVE_RECURSE
  "CMakeFiles/flow_execution_test.dir/flow_execution_test.cpp.o"
  "CMakeFiles/flow_execution_test.dir/flow_execution_test.cpp.o.d"
  "flow_execution_test"
  "flow_execution_test.pdb"
  "flow_execution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_execution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
