file(REMOVE_RECURSE
  "CMakeFiles/flow_stats_test.dir/flow_stats_test.cpp.o"
  "CMakeFiles/flow_stats_test.dir/flow_stats_test.cpp.o.d"
  "flow_stats_test"
  "flow_stats_test.pdb"
  "flow_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
