# Empty dependencies file for flow_stats_test.
# This may be replaced when dependencies are built.
