file(REMOVE_RECURSE
  "CMakeFiles/selection_multi_scenario_test.dir/selection_multi_scenario_test.cpp.o"
  "CMakeFiles/selection_multi_scenario_test.dir/selection_multi_scenario_test.cpp.o.d"
  "selection_multi_scenario_test"
  "selection_multi_scenario_test.pdb"
  "selection_multi_scenario_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_multi_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
