# Empty dependencies file for selection_multi_scenario_test.
# This may be replaced when dependencies are built.
