# Empty dependencies file for netlist_verilog_test.
# This may be replaced when dependencies are built.
