file(REMOVE_RECURSE
  "CMakeFiles/flow_message_test.dir/flow_message_test.cpp.o"
  "CMakeFiles/flow_message_test.dir/flow_message_test.cpp.o.d"
  "flow_message_test"
  "flow_message_test.pdb"
  "flow_message_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_message_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
