# Empty compiler generated dependencies file for flow_interleave_test.
# This may be replaced when dependencies are built.
