file(REMOVE_RECURSE
  "CMakeFiles/flow_interleave_test.dir/flow_interleave_test.cpp.o"
  "CMakeFiles/flow_interleave_test.dir/flow_interleave_test.cpp.o.d"
  "flow_interleave_test"
  "flow_interleave_test.pdb"
  "flow_interleave_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_interleave_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
