file(REMOVE_RECURSE
  "CMakeFiles/flow_builder_test.dir/flow_builder_test.cpp.o"
  "CMakeFiles/flow_builder_test.dir/flow_builder_test.cpp.o.d"
  "flow_builder_test"
  "flow_builder_test.pdb"
  "flow_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
