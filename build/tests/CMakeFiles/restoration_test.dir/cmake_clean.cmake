file(REMOVE_RECURSE
  "CMakeFiles/restoration_test.dir/restoration_test.cpp.o"
  "CMakeFiles/restoration_test.dir/restoration_test.cpp.o.d"
  "restoration_test"
  "restoration_test.pdb"
  "restoration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restoration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
