# Empty compiler generated dependencies file for restoration_test.
# This may be replaced when dependencies are built.
