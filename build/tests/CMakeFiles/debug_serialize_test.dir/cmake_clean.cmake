file(REMOVE_RECURSE
  "CMakeFiles/debug_serialize_test.dir/debug_serialize_test.cpp.o"
  "CMakeFiles/debug_serialize_test.dir/debug_serialize_test.cpp.o.d"
  "debug_serialize_test"
  "debug_serialize_test.pdb"
  "debug_serialize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
