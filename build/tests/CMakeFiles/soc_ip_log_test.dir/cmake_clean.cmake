file(REMOVE_RECURSE
  "CMakeFiles/soc_ip_log_test.dir/soc_ip_log_test.cpp.o"
  "CMakeFiles/soc_ip_log_test.dir/soc_ip_log_test.cpp.o.d"
  "soc_ip_log_test"
  "soc_ip_log_test.pdb"
  "soc_ip_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_ip_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
