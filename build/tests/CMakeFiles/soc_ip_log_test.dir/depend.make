# Empty dependencies file for soc_ip_log_test.
# This may be replaced when dependencies are built.
