# Empty dependencies file for debug_observation_test.
# This may be replaced when dependencies are built.
