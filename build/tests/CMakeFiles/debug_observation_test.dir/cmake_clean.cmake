file(REMOVE_RECURSE
  "CMakeFiles/debug_observation_test.dir/debug_observation_test.cpp.o"
  "CMakeFiles/debug_observation_test.dir/debug_observation_test.cpp.o.d"
  "debug_observation_test"
  "debug_observation_test.pdb"
  "debug_observation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_observation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
