# Empty dependencies file for debug_fault_pipeline_test.
# This may be replaced when dependencies are built.
