file(REMOVE_RECURSE
  "CMakeFiles/debug_fault_pipeline_test.dir/debug_fault_pipeline_test.cpp.o"
  "CMakeFiles/debug_fault_pipeline_test.dir/debug_fault_pipeline_test.cpp.o.d"
  "debug_fault_pipeline_test"
  "debug_fault_pipeline_test.pdb"
  "debug_fault_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_fault_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
