# Empty dependencies file for selection_info_gain_test.
# This may be replaced when dependencies are built.
