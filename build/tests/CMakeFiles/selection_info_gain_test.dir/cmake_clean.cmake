file(REMOVE_RECURSE
  "CMakeFiles/selection_info_gain_test.dir/selection_info_gain_test.cpp.o"
  "CMakeFiles/selection_info_gain_test.dir/selection_info_gain_test.cpp.o.d"
  "selection_info_gain_test"
  "selection_info_gain_test.pdb"
  "selection_info_gain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_info_gain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
