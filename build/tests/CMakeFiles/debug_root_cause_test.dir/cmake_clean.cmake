file(REMOVE_RECURSE
  "CMakeFiles/debug_root_cause_test.dir/debug_root_cause_test.cpp.o"
  "CMakeFiles/debug_root_cause_test.dir/debug_root_cause_test.cpp.o.d"
  "debug_root_cause_test"
  "debug_root_cause_test.pdb"
  "debug_root_cause_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_root_cause_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
