# Empty compiler generated dependencies file for debug_root_cause_test.
# This may be replaced when dependencies are built.
