# Empty dependencies file for soc_simulator_test.
# This may be replaced when dependencies are built.
