file(REMOVE_RECURSE
  "CMakeFiles/soc_simulator_test.dir/soc_simulator_test.cpp.o"
  "CMakeFiles/soc_simulator_test.dir/soc_simulator_test.cpp.o.d"
  "soc_simulator_test"
  "soc_simulator_test.pdb"
  "soc_simulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
