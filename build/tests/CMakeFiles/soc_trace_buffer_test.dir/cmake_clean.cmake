file(REMOVE_RECURSE
  "CMakeFiles/soc_trace_buffer_test.dir/soc_trace_buffer_test.cpp.o"
  "CMakeFiles/soc_trace_buffer_test.dir/soc_trace_buffer_test.cpp.o.d"
  "soc_trace_buffer_test"
  "soc_trace_buffer_test.pdb"
  "soc_trace_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_trace_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
