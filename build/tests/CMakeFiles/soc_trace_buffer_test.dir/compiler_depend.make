# Empty compiler generated dependencies file for soc_trace_buffer_test.
# This may be replaced when dependencies are built.
