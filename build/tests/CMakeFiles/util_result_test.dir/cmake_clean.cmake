file(REMOVE_RECURSE
  "CMakeFiles/util_result_test.dir/util_result_test.cpp.o"
  "CMakeFiles/util_result_test.dir/util_result_test.cpp.o.d"
  "util_result_test"
  "util_result_test.pdb"
  "util_result_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_result_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
