file(REMOVE_RECURSE
  "CMakeFiles/tracesel_flow.dir/dot.cpp.o"
  "CMakeFiles/tracesel_flow.dir/dot.cpp.o.d"
  "CMakeFiles/tracesel_flow.dir/execution.cpp.o"
  "CMakeFiles/tracesel_flow.dir/execution.cpp.o.d"
  "CMakeFiles/tracesel_flow.dir/flow.cpp.o"
  "CMakeFiles/tracesel_flow.dir/flow.cpp.o.d"
  "CMakeFiles/tracesel_flow.dir/flow_builder.cpp.o"
  "CMakeFiles/tracesel_flow.dir/flow_builder.cpp.o.d"
  "CMakeFiles/tracesel_flow.dir/interleaved_flow.cpp.o"
  "CMakeFiles/tracesel_flow.dir/interleaved_flow.cpp.o.d"
  "CMakeFiles/tracesel_flow.dir/lint.cpp.o"
  "CMakeFiles/tracesel_flow.dir/lint.cpp.o.d"
  "CMakeFiles/tracesel_flow.dir/message.cpp.o"
  "CMakeFiles/tracesel_flow.dir/message.cpp.o.d"
  "CMakeFiles/tracesel_flow.dir/parser.cpp.o"
  "CMakeFiles/tracesel_flow.dir/parser.cpp.o.d"
  "CMakeFiles/tracesel_flow.dir/stats.cpp.o"
  "CMakeFiles/tracesel_flow.dir/stats.cpp.o.d"
  "libtracesel_flow.a"
  "libtracesel_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracesel_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
