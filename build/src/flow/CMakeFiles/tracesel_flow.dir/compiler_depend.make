# Empty compiler generated dependencies file for tracesel_flow.
# This may be replaced when dependencies are built.
