
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/dot.cpp" "src/flow/CMakeFiles/tracesel_flow.dir/dot.cpp.o" "gcc" "src/flow/CMakeFiles/tracesel_flow.dir/dot.cpp.o.d"
  "/root/repo/src/flow/execution.cpp" "src/flow/CMakeFiles/tracesel_flow.dir/execution.cpp.o" "gcc" "src/flow/CMakeFiles/tracesel_flow.dir/execution.cpp.o.d"
  "/root/repo/src/flow/flow.cpp" "src/flow/CMakeFiles/tracesel_flow.dir/flow.cpp.o" "gcc" "src/flow/CMakeFiles/tracesel_flow.dir/flow.cpp.o.d"
  "/root/repo/src/flow/flow_builder.cpp" "src/flow/CMakeFiles/tracesel_flow.dir/flow_builder.cpp.o" "gcc" "src/flow/CMakeFiles/tracesel_flow.dir/flow_builder.cpp.o.d"
  "/root/repo/src/flow/interleaved_flow.cpp" "src/flow/CMakeFiles/tracesel_flow.dir/interleaved_flow.cpp.o" "gcc" "src/flow/CMakeFiles/tracesel_flow.dir/interleaved_flow.cpp.o.d"
  "/root/repo/src/flow/lint.cpp" "src/flow/CMakeFiles/tracesel_flow.dir/lint.cpp.o" "gcc" "src/flow/CMakeFiles/tracesel_flow.dir/lint.cpp.o.d"
  "/root/repo/src/flow/message.cpp" "src/flow/CMakeFiles/tracesel_flow.dir/message.cpp.o" "gcc" "src/flow/CMakeFiles/tracesel_flow.dir/message.cpp.o.d"
  "/root/repo/src/flow/parser.cpp" "src/flow/CMakeFiles/tracesel_flow.dir/parser.cpp.o" "gcc" "src/flow/CMakeFiles/tracesel_flow.dir/parser.cpp.o.d"
  "/root/repo/src/flow/stats.cpp" "src/flow/CMakeFiles/tracesel_flow.dir/stats.cpp.o" "gcc" "src/flow/CMakeFiles/tracesel_flow.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tracesel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
