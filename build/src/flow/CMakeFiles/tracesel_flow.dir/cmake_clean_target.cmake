file(REMOVE_RECURSE
  "libtracesel_flow.a"
)
