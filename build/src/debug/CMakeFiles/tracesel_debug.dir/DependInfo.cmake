
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/debug/case_study.cpp" "src/debug/CMakeFiles/tracesel_debug.dir/case_study.cpp.o" "gcc" "src/debug/CMakeFiles/tracesel_debug.dir/case_study.cpp.o.d"
  "/root/repo/src/debug/debugger.cpp" "src/debug/CMakeFiles/tracesel_debug.dir/debugger.cpp.o" "gcc" "src/debug/CMakeFiles/tracesel_debug.dir/debugger.cpp.o.d"
  "/root/repo/src/debug/extended_causes.cpp" "src/debug/CMakeFiles/tracesel_debug.dir/extended_causes.cpp.o" "gcc" "src/debug/CMakeFiles/tracesel_debug.dir/extended_causes.cpp.o.d"
  "/root/repo/src/debug/ip_pairs.cpp" "src/debug/CMakeFiles/tracesel_debug.dir/ip_pairs.cpp.o" "gcc" "src/debug/CMakeFiles/tracesel_debug.dir/ip_pairs.cpp.o.d"
  "/root/repo/src/debug/monte_carlo.cpp" "src/debug/CMakeFiles/tracesel_debug.dir/monte_carlo.cpp.o" "gcc" "src/debug/CMakeFiles/tracesel_debug.dir/monte_carlo.cpp.o.d"
  "/root/repo/src/debug/observation.cpp" "src/debug/CMakeFiles/tracesel_debug.dir/observation.cpp.o" "gcc" "src/debug/CMakeFiles/tracesel_debug.dir/observation.cpp.o.d"
  "/root/repo/src/debug/report.cpp" "src/debug/CMakeFiles/tracesel_debug.dir/report.cpp.o" "gcc" "src/debug/CMakeFiles/tracesel_debug.dir/report.cpp.o.d"
  "/root/repo/src/debug/root_cause.cpp" "src/debug/CMakeFiles/tracesel_debug.dir/root_cause.cpp.o" "gcc" "src/debug/CMakeFiles/tracesel_debug.dir/root_cause.cpp.o.d"
  "/root/repo/src/debug/serialize.cpp" "src/debug/CMakeFiles/tracesel_debug.dir/serialize.cpp.o" "gcc" "src/debug/CMakeFiles/tracesel_debug.dir/serialize.cpp.o.d"
  "/root/repo/src/debug/workbench.cpp" "src/debug/CMakeFiles/tracesel_debug.dir/workbench.cpp.o" "gcc" "src/debug/CMakeFiles/tracesel_debug.dir/workbench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/soc/CMakeFiles/tracesel_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/selection/CMakeFiles/tracesel_selection.dir/DependInfo.cmake"
  "/root/repo/build/src/bug/CMakeFiles/tracesel_bug.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/tracesel_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tracesel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
