# Empty compiler generated dependencies file for tracesel_debug.
# This may be replaced when dependencies are built.
