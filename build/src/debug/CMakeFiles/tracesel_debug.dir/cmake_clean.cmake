file(REMOVE_RECURSE
  "CMakeFiles/tracesel_debug.dir/case_study.cpp.o"
  "CMakeFiles/tracesel_debug.dir/case_study.cpp.o.d"
  "CMakeFiles/tracesel_debug.dir/debugger.cpp.o"
  "CMakeFiles/tracesel_debug.dir/debugger.cpp.o.d"
  "CMakeFiles/tracesel_debug.dir/extended_causes.cpp.o"
  "CMakeFiles/tracesel_debug.dir/extended_causes.cpp.o.d"
  "CMakeFiles/tracesel_debug.dir/ip_pairs.cpp.o"
  "CMakeFiles/tracesel_debug.dir/ip_pairs.cpp.o.d"
  "CMakeFiles/tracesel_debug.dir/monte_carlo.cpp.o"
  "CMakeFiles/tracesel_debug.dir/monte_carlo.cpp.o.d"
  "CMakeFiles/tracesel_debug.dir/observation.cpp.o"
  "CMakeFiles/tracesel_debug.dir/observation.cpp.o.d"
  "CMakeFiles/tracesel_debug.dir/report.cpp.o"
  "CMakeFiles/tracesel_debug.dir/report.cpp.o.d"
  "CMakeFiles/tracesel_debug.dir/root_cause.cpp.o"
  "CMakeFiles/tracesel_debug.dir/root_cause.cpp.o.d"
  "CMakeFiles/tracesel_debug.dir/serialize.cpp.o"
  "CMakeFiles/tracesel_debug.dir/serialize.cpp.o.d"
  "CMakeFiles/tracesel_debug.dir/workbench.cpp.o"
  "CMakeFiles/tracesel_debug.dir/workbench.cpp.o.d"
  "libtracesel_debug.a"
  "libtracesel_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracesel_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
