file(REMOVE_RECURSE
  "libtracesel_debug.a"
)
