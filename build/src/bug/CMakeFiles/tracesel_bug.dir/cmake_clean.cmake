file(REMOVE_RECURSE
  "CMakeFiles/tracesel_bug.dir/bug.cpp.o"
  "CMakeFiles/tracesel_bug.dir/bug.cpp.o.d"
  "libtracesel_bug.a"
  "libtracesel_bug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracesel_bug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
