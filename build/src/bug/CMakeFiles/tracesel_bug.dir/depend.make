# Empty dependencies file for tracesel_bug.
# This may be replaced when dependencies are built.
