file(REMOVE_RECURSE
  "libtracesel_bug.a"
)
