file(REMOVE_RECURSE
  "libtracesel_netlist.a"
)
