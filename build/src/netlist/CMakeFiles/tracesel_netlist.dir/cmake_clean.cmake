file(REMOVE_RECURSE
  "CMakeFiles/tracesel_netlist.dir/generators.cpp.o"
  "CMakeFiles/tracesel_netlist.dir/generators.cpp.o.d"
  "CMakeFiles/tracesel_netlist.dir/netlist.cpp.o"
  "CMakeFiles/tracesel_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/tracesel_netlist.dir/restoration.cpp.o"
  "CMakeFiles/tracesel_netlist.dir/restoration.cpp.o.d"
  "CMakeFiles/tracesel_netlist.dir/t2_uncore.cpp.o"
  "CMakeFiles/tracesel_netlist.dir/t2_uncore.cpp.o.d"
  "CMakeFiles/tracesel_netlist.dir/usb_design.cpp.o"
  "CMakeFiles/tracesel_netlist.dir/usb_design.cpp.o.d"
  "CMakeFiles/tracesel_netlist.dir/verilog.cpp.o"
  "CMakeFiles/tracesel_netlist.dir/verilog.cpp.o.d"
  "libtracesel_netlist.a"
  "libtracesel_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracesel_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
