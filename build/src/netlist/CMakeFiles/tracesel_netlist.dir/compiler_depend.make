# Empty compiler generated dependencies file for tracesel_netlist.
# This may be replaced when dependencies are built.
