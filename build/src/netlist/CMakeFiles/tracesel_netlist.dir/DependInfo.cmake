
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/generators.cpp" "src/netlist/CMakeFiles/tracesel_netlist.dir/generators.cpp.o" "gcc" "src/netlist/CMakeFiles/tracesel_netlist.dir/generators.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/tracesel_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/tracesel_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/restoration.cpp" "src/netlist/CMakeFiles/tracesel_netlist.dir/restoration.cpp.o" "gcc" "src/netlist/CMakeFiles/tracesel_netlist.dir/restoration.cpp.o.d"
  "/root/repo/src/netlist/t2_uncore.cpp" "src/netlist/CMakeFiles/tracesel_netlist.dir/t2_uncore.cpp.o" "gcc" "src/netlist/CMakeFiles/tracesel_netlist.dir/t2_uncore.cpp.o.d"
  "/root/repo/src/netlist/usb_design.cpp" "src/netlist/CMakeFiles/tracesel_netlist.dir/usb_design.cpp.o" "gcc" "src/netlist/CMakeFiles/tracesel_netlist.dir/usb_design.cpp.o.d"
  "/root/repo/src/netlist/verilog.cpp" "src/netlist/CMakeFiles/tracesel_netlist.dir/verilog.cpp.o" "gcc" "src/netlist/CMakeFiles/tracesel_netlist.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/tracesel_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tracesel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
