file(REMOVE_RECURSE
  "CMakeFiles/tracesel_util.dir/json.cpp.o"
  "CMakeFiles/tracesel_util.dir/json.cpp.o.d"
  "CMakeFiles/tracesel_util.dir/log.cpp.o"
  "CMakeFiles/tracesel_util.dir/log.cpp.o.d"
  "CMakeFiles/tracesel_util.dir/stats.cpp.o"
  "CMakeFiles/tracesel_util.dir/stats.cpp.o.d"
  "CMakeFiles/tracesel_util.dir/table.cpp.o"
  "CMakeFiles/tracesel_util.dir/table.cpp.o.d"
  "libtracesel_util.a"
  "libtracesel_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracesel_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
