file(REMOVE_RECURSE
  "libtracesel_util.a"
)
