# Empty dependencies file for tracesel_util.
# This may be replaced when dependencies are built.
