file(REMOVE_RECURSE
  "CMakeFiles/tracesel_baseline.dir/flop_graph.cpp.o"
  "CMakeFiles/tracesel_baseline.dir/flop_graph.cpp.o.d"
  "CMakeFiles/tracesel_baseline.dir/hybrid.cpp.o"
  "CMakeFiles/tracesel_baseline.dir/hybrid.cpp.o.d"
  "CMakeFiles/tracesel_baseline.dir/prnet.cpp.o"
  "CMakeFiles/tracesel_baseline.dir/prnet.cpp.o.d"
  "CMakeFiles/tracesel_baseline.dir/sigset.cpp.o"
  "CMakeFiles/tracesel_baseline.dir/sigset.cpp.o.d"
  "libtracesel_baseline.a"
  "libtracesel_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracesel_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
