
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/flop_graph.cpp" "src/baseline/CMakeFiles/tracesel_baseline.dir/flop_graph.cpp.o" "gcc" "src/baseline/CMakeFiles/tracesel_baseline.dir/flop_graph.cpp.o.d"
  "/root/repo/src/baseline/hybrid.cpp" "src/baseline/CMakeFiles/tracesel_baseline.dir/hybrid.cpp.o" "gcc" "src/baseline/CMakeFiles/tracesel_baseline.dir/hybrid.cpp.o.d"
  "/root/repo/src/baseline/prnet.cpp" "src/baseline/CMakeFiles/tracesel_baseline.dir/prnet.cpp.o" "gcc" "src/baseline/CMakeFiles/tracesel_baseline.dir/prnet.cpp.o.d"
  "/root/repo/src/baseline/sigset.cpp" "src/baseline/CMakeFiles/tracesel_baseline.dir/sigset.cpp.o" "gcc" "src/baseline/CMakeFiles/tracesel_baseline.dir/sigset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/tracesel_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tracesel_util.dir/DependInfo.cmake"
  "/root/repo/build/src/selection/CMakeFiles/tracesel_selection.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/tracesel_flow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
