file(REMOVE_RECURSE
  "libtracesel_baseline.a"
)
