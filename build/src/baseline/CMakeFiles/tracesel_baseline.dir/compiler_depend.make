# Empty compiler generated dependencies file for tracesel_baseline.
# This may be replaced when dependencies are built.
