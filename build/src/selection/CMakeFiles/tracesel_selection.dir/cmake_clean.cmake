file(REMOVE_RECURSE
  "CMakeFiles/tracesel_selection.dir/combination.cpp.o"
  "CMakeFiles/tracesel_selection.dir/combination.cpp.o.d"
  "CMakeFiles/tracesel_selection.dir/coverage.cpp.o"
  "CMakeFiles/tracesel_selection.dir/coverage.cpp.o.d"
  "CMakeFiles/tracesel_selection.dir/info_gain.cpp.o"
  "CMakeFiles/tracesel_selection.dir/info_gain.cpp.o.d"
  "CMakeFiles/tracesel_selection.dir/localization.cpp.o"
  "CMakeFiles/tracesel_selection.dir/localization.cpp.o.d"
  "CMakeFiles/tracesel_selection.dir/multi_scenario.cpp.o"
  "CMakeFiles/tracesel_selection.dir/multi_scenario.cpp.o.d"
  "CMakeFiles/tracesel_selection.dir/packing.cpp.o"
  "CMakeFiles/tracesel_selection.dir/packing.cpp.o.d"
  "CMakeFiles/tracesel_selection.dir/selector.cpp.o"
  "CMakeFiles/tracesel_selection.dir/selector.cpp.o.d"
  "libtracesel_selection.a"
  "libtracesel_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracesel_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
