# Empty dependencies file for tracesel_selection.
# This may be replaced when dependencies are built.
