
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/selection/combination.cpp" "src/selection/CMakeFiles/tracesel_selection.dir/combination.cpp.o" "gcc" "src/selection/CMakeFiles/tracesel_selection.dir/combination.cpp.o.d"
  "/root/repo/src/selection/coverage.cpp" "src/selection/CMakeFiles/tracesel_selection.dir/coverage.cpp.o" "gcc" "src/selection/CMakeFiles/tracesel_selection.dir/coverage.cpp.o.d"
  "/root/repo/src/selection/info_gain.cpp" "src/selection/CMakeFiles/tracesel_selection.dir/info_gain.cpp.o" "gcc" "src/selection/CMakeFiles/tracesel_selection.dir/info_gain.cpp.o.d"
  "/root/repo/src/selection/localization.cpp" "src/selection/CMakeFiles/tracesel_selection.dir/localization.cpp.o" "gcc" "src/selection/CMakeFiles/tracesel_selection.dir/localization.cpp.o.d"
  "/root/repo/src/selection/multi_scenario.cpp" "src/selection/CMakeFiles/tracesel_selection.dir/multi_scenario.cpp.o" "gcc" "src/selection/CMakeFiles/tracesel_selection.dir/multi_scenario.cpp.o.d"
  "/root/repo/src/selection/packing.cpp" "src/selection/CMakeFiles/tracesel_selection.dir/packing.cpp.o" "gcc" "src/selection/CMakeFiles/tracesel_selection.dir/packing.cpp.o.d"
  "/root/repo/src/selection/selector.cpp" "src/selection/CMakeFiles/tracesel_selection.dir/selector.cpp.o" "gcc" "src/selection/CMakeFiles/tracesel_selection.dir/selector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/tracesel_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tracesel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
