file(REMOVE_RECURSE
  "libtracesel_selection.a"
)
