
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soc/fault_injector.cpp" "src/soc/CMakeFiles/tracesel_soc.dir/fault_injector.cpp.o" "gcc" "src/soc/CMakeFiles/tracesel_soc.dir/fault_injector.cpp.o.d"
  "/root/repo/src/soc/monitor.cpp" "src/soc/CMakeFiles/tracesel_soc.dir/monitor.cpp.o" "gcc" "src/soc/CMakeFiles/tracesel_soc.dir/monitor.cpp.o.d"
  "/root/repo/src/soc/scenario.cpp" "src/soc/CMakeFiles/tracesel_soc.dir/scenario.cpp.o" "gcc" "src/soc/CMakeFiles/tracesel_soc.dir/scenario.cpp.o.d"
  "/root/repo/src/soc/simulator.cpp" "src/soc/CMakeFiles/tracesel_soc.dir/simulator.cpp.o" "gcc" "src/soc/CMakeFiles/tracesel_soc.dir/simulator.cpp.o.d"
  "/root/repo/src/soc/t2_bugs.cpp" "src/soc/CMakeFiles/tracesel_soc.dir/t2_bugs.cpp.o" "gcc" "src/soc/CMakeFiles/tracesel_soc.dir/t2_bugs.cpp.o.d"
  "/root/repo/src/soc/t2_design.cpp" "src/soc/CMakeFiles/tracesel_soc.dir/t2_design.cpp.o" "gcc" "src/soc/CMakeFiles/tracesel_soc.dir/t2_design.cpp.o.d"
  "/root/repo/src/soc/t2_extended.cpp" "src/soc/CMakeFiles/tracesel_soc.dir/t2_extended.cpp.o" "gcc" "src/soc/CMakeFiles/tracesel_soc.dir/t2_extended.cpp.o.d"
  "/root/repo/src/soc/trace_buffer.cpp" "src/soc/CMakeFiles/tracesel_soc.dir/trace_buffer.cpp.o" "gcc" "src/soc/CMakeFiles/tracesel_soc.dir/trace_buffer.cpp.o.d"
  "/root/repo/src/soc/vcd.cpp" "src/soc/CMakeFiles/tracesel_soc.dir/vcd.cpp.o" "gcc" "src/soc/CMakeFiles/tracesel_soc.dir/vcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/tracesel_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/selection/CMakeFiles/tracesel_selection.dir/DependInfo.cmake"
  "/root/repo/build/src/bug/CMakeFiles/tracesel_bug.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tracesel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
