file(REMOVE_RECURSE
  "libtracesel_soc.a"
)
