# Empty dependencies file for tracesel_soc.
# This may be replaced when dependencies are built.
