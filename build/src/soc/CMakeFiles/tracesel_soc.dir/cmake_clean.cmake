file(REMOVE_RECURSE
  "CMakeFiles/tracesel_soc.dir/fault_injector.cpp.o"
  "CMakeFiles/tracesel_soc.dir/fault_injector.cpp.o.d"
  "CMakeFiles/tracesel_soc.dir/monitor.cpp.o"
  "CMakeFiles/tracesel_soc.dir/monitor.cpp.o.d"
  "CMakeFiles/tracesel_soc.dir/scenario.cpp.o"
  "CMakeFiles/tracesel_soc.dir/scenario.cpp.o.d"
  "CMakeFiles/tracesel_soc.dir/simulator.cpp.o"
  "CMakeFiles/tracesel_soc.dir/simulator.cpp.o.d"
  "CMakeFiles/tracesel_soc.dir/t2_bugs.cpp.o"
  "CMakeFiles/tracesel_soc.dir/t2_bugs.cpp.o.d"
  "CMakeFiles/tracesel_soc.dir/t2_design.cpp.o"
  "CMakeFiles/tracesel_soc.dir/t2_design.cpp.o.d"
  "CMakeFiles/tracesel_soc.dir/t2_extended.cpp.o"
  "CMakeFiles/tracesel_soc.dir/t2_extended.cpp.o.d"
  "CMakeFiles/tracesel_soc.dir/trace_buffer.cpp.o"
  "CMakeFiles/tracesel_soc.dir/trace_buffer.cpp.o.d"
  "CMakeFiles/tracesel_soc.dir/vcd.cpp.o"
  "CMakeFiles/tracesel_soc.dir/vcd.cpp.o.d"
  "libtracesel_soc.a"
  "libtracesel_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracesel_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
