#include "flow/stats.hpp"

#include <gtest/gtest.h>

#include "soc/t2_design.hpp"
#include "soc/t2_extended.hpp"
#include "testutil.hpp"

namespace tracesel::flow {
namespace {

using test::CoherenceFixture;

TEST(FlowStats, CoherenceChain) {
  const CoherenceFixture fx;
  const FlowStats s = flow_stats(fx.flow_);
  EXPECT_EQ(s.name, "CacheCoherence");
  EXPECT_EQ(s.states, 4u);
  EXPECT_EQ(s.transitions, 3u);
  EXPECT_EQ(s.messages, 3u);
  EXPECT_EQ(s.atomic_states, 1u);
  EXPECT_EQ(s.stop_states, 1u);
  EXPECT_DOUBLE_EQ(s.executions, 1.0);
  EXPECT_EQ(s.max_branching, 1u);
  EXPECT_EQ(s.depth, 3u);
}

TEST(FlowStats, BranchingFlowCountsBothExecutions) {
  const soc::T2ExtendedDesign ext;
  const FlowStats s = flow_stats(ext.mondo_nack());
  EXPECT_EQ(s.stop_states, 2u);
  EXPECT_DOUBLE_EQ(s.executions, 2.0);  // ack path and nack path
  EXPECT_EQ(s.max_branching, 2u);       // Delivered branches
  EXPECT_EQ(s.depth, 6u);               // the nack path is longer
}

TEST(FlowStats, T2FlowDepthsMatchChainLengths) {
  const soc::T2Design design;
  EXPECT_EQ(flow_stats(design.pior()).depth, 5u);
  EXPECT_EQ(flow_stats(design.piow()).depth, 2u);
  EXPECT_EQ(flow_stats(design.mondo()).depth, 5u);
}

TEST(InterleavingStats, Figure2Numbers) {
  const CoherenceFixture fx;
  const auto u = fx.two_instance_interleaving();
  const InterleavingStats s = interleaving_stats(u);
  EXPECT_EQ(s.nodes, 15u);
  EXPECT_EQ(s.edges, 18u);
  EXPECT_EQ(s.stop_nodes, 1u);
  EXPECT_EQ(s.indexed_messages, 6u);
  EXPECT_DOUBLE_EQ(s.paths, 6.0);
  EXPECT_NEAR(s.density, 15.0 / 16.0, 1e-12);  // one pruned product state
  EXPECT_GT(s.mean_branching, 1.0);
}

TEST(InterleavingStats, DensityIsOneWithoutAtomicStates) {
  MessageCatalog cat;
  const MessageId a = cat.add("a", 1, "X", "Y");
  FlowBuilder fb("lin");
  fb.state("s", FlowBuilder::kInitial)
      .state("t", FlowBuilder::kStop)
      .transition("s", a, "t");
  const Flow f = fb.build(cat);
  const auto u = InterleavedFlow::build(make_instances({&f}, 2));
  EXPECT_DOUBLE_EQ(interleaving_stats(u).density, 1.0);
}

TEST(MessageHistogram, SymmetricInstancesEqualCounts) {
  const CoherenceFixture fx;
  const auto u = fx.two_instance_interleaving();
  const auto hist = message_histogram(u);
  ASSERT_EQ(hist.size(), 3u);
  // Each message labels 6 edges (3 per instance); ties sorted by id.
  for (const auto& [m, count] : hist) EXPECT_EQ(count, 6u);
  EXPECT_EQ(hist[0].first, fx.reqE);
}

TEST(MessageHistogram, SortedDescending) {
  const soc::T2Design design;
  const auto u = flow::InterleavedFlow::build(
      make_instances({&design.pior(), &design.piow()}, 2));
  const auto hist = message_histogram(u);
  for (std::size_t i = 1; i < hist.size(); ++i)
    EXPECT_GE(hist[i - 1].second, hist[i].second);
  // Total equals the concrete product edge count.
  std::size_t total = 0;
  for (const auto& [m, c] : hist) total += c;
  EXPECT_EQ(total, u.num_product_edges());
}

}  // namespace
}  // namespace tracesel::flow
