#include "debug/monte_carlo.hpp"

#include <gtest/gtest.h>

namespace tracesel::debug {
namespace {

class MonteCarloTest : public ::testing::Test {
 protected:
  soc::T2Design design_;
};

TEST_F(MonteCarloTest, AggregatesAcrossSeeds) {
  const auto cs = soc::standard_case_studies()[0];
  const auto mc = evaluate_case_study(design_, cs, {}, 5);
  EXPECT_EQ(mc.runs, 5u);
  EXPECT_EQ(mc.failures_detected, 5u);  // deterministic active bug
  EXPECT_GT(mc.pruned_fraction.mean, 0.5);
  EXPECT_LE(mc.pruned_fraction.max, 1.0);
  EXPECT_GE(mc.pruned_fraction.min, 0.0);
  EXPECT_LE(mc.pruned_fraction.min, mc.pruned_fraction.mean + 1e-12);
  EXPECT_GE(mc.pruned_fraction.max, mc.pruned_fraction.mean - 1e-12);
  EXPECT_GT(mc.messages_investigated.mean, 0.0);
}

TEST_F(MonteCarloTest, DeterministicGivenInputs) {
  const auto cs = soc::standard_case_studies()[2];
  const auto a = evaluate_case_study(design_, cs, {}, 4);
  const auto b = evaluate_case_study(design_, cs, {}, 4);
  EXPECT_DOUBLE_EQ(a.pruned_fraction.mean, b.pruned_fraction.mean);
  EXPECT_DOUBLE_EQ(a.localization_fraction.max,
                   b.localization_fraction.max);
}

TEST_F(MonteCarloTest, SelectionIndependentOfSeed) {
  // The selection is a property of the flows, not the run: pruning varies
  // only through investigation order/scheduling, so the stddev should stay
  // modest.
  const auto cs = soc::standard_case_studies()[1];
  const auto mc = evaluate_case_study(design_, cs, {}, 8);
  EXPECT_LT(mc.pruned_fraction.stddev, 0.25);
}

TEST_F(MonteCarloTest, ZeroRunsRejected) {
  const auto cs = soc::standard_case_studies()[0];
  EXPECT_THROW(evaluate_case_study(design_, cs, {}, 0),
               std::invalid_argument);
}

TEST_F(MonteCarloTest, LocalizationAlwaysSound) {
  const auto cs = soc::standard_case_studies()[3];
  const auto mc = evaluate_case_study(design_, cs, {}, 5);
  EXPECT_GT(mc.localization_fraction.min, 0.0);
  EXPECT_LT(mc.localization_fraction.max, 0.0611);  // Table 3 bound
}

}  // namespace
}  // namespace tracesel::debug
