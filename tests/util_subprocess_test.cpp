// util::Subprocess + frame protocol: spawn/roundtrip through a real child
// process, kill/reap lifecycle (no zombies), EPIPE on dead peers, and the
// FrameReader state machine under partial feeds and corruption.

#include "util/subprocess.hpp"

#include <gtest/gtest.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <string>

namespace tracesel::util {
namespace {

/// Drains the child's stdout (non-blocking fd, poll-driven) into `reader`
/// until a frame or corruption emerges, or the timeout lapses.
FrameReader::State pump(const Subprocess& p, FrameReader& reader,
                        std::string& payload, int timeout_ms = 5000) {
  for (int waited = 0; waited < timeout_ms;) {
    const auto state = reader.next(payload);
    if (state != FrameReader::State::kNeedMore) return state;
    pollfd pfd{p.stdout_fd(), POLLIN, 0};
    if (::poll(&pfd, 1, 50) <= 0) {
      waited += 50;
      continue;
    }
    char buf[4096];
    const ssize_t n = ::read(p.stdout_fd(), buf, sizeof buf);
    if (n > 0) reader.feed(buf, static_cast<std::size_t>(n));
    else if (n == 0) return reader.next(payload);  // EOF: final drain
    else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
      return FrameReader::State::kCorrupt;
  }
  return FrameReader::State::kNeedMore;
}

TEST(SubprocessTest, FrameRoundTripThroughCat) {
  auto spawned = Subprocess::spawn({"/bin/cat"});
  ASSERT_TRUE(spawned.ok()) << spawned.error().to_string();
  Subprocess p = std::move(spawned).value();
  ASSERT_TRUE(p.valid());

  const std::string payload =
      std::string("hello frames\nwith") + '\0' + "binary\x7f stuff";
  ASSERT_TRUE(write_frame(p.stdin_fd(), payload).ok());
  FrameReader reader;
  std::string got;
  EXPECT_EQ(pump(p, reader, got), FrameReader::State::kFrame);
  EXPECT_EQ(got, payload);

  p.close_stdin();  // cat sees EOF and exits cleanly
  EXPECT_EQ(p.wait(), 0);
}

TEST(SubprocessTest, SpawnFailureIsTypedNotFatal) {
  auto spawned = Subprocess::spawn({"/nonexistent/no-such-binary-xyz"});
  // exec failure happens in the child (exit 127); spawn itself succeeds.
  // Either shape is acceptable, but the parent must never crash and the
  // child must be reapable.
  if (spawned.ok()) {
    Subprocess p = std::move(spawned).value();
    EXPECT_EQ(p.wait(), 127);
  }
}

TEST(SubprocessTest, KillHardReapsWithSignalCode) {
  auto spawned = Subprocess::spawn({"/bin/cat"});
  ASSERT_TRUE(spawned.ok());
  Subprocess p = std::move(spawned).value();
  const pid_t pid = p.pid();
  p.kill_hard();
  const int code = p.wait();
  EXPECT_EQ(code, 128 + SIGKILL);
  // Reaped: a second waitpid on the pid must say "no such child".
  EXPECT_EQ(::waitpid(pid, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

TEST(SubprocessTest, DestructorLeavesNoZombie) {
  pid_t pid = -1;
  {
    auto spawned = Subprocess::spawn({"/bin/cat"});
    ASSERT_TRUE(spawned.ok());
    pid = spawned.value().pid();
  }  // destructor: SIGKILL + reap
  EXPECT_EQ(::waitpid(pid, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

TEST(SubprocessTest, WriteToDeadChildIsEpipeNotSigpipe) {
  ignore_sigpipe();
  auto spawned = Subprocess::spawn({"/bin/true"});
  ASSERT_TRUE(spawned.ok());
  Subprocess p = std::move(spawned).value();
  p.wait();  // child exited; its stdin read end is gone
  // Large enough to defeat the pipe buffer on every platform.
  const std::string big(1u << 20, 'x');
  Status st = Status::success();
  for (int i = 0; i < 8 && st.ok(); ++i) st = p.write_all(big);
  EXPECT_FALSE(st.ok());  // EPIPE surfaced as a typed error, process alive
}

TEST(SubprocessTest, TryWaitReportsRunningThenExit) {
  auto spawned = Subprocess::spawn({"/bin/cat"});
  ASSERT_TRUE(spawned.ok());
  Subprocess p = std::move(spawned).value();
  int code = -1;
  EXPECT_FALSE(p.try_wait(&code));  // still blocked on stdin
  p.close_stdin();
  EXPECT_EQ(p.wait(), 0);
}

// --- FrameReader ---------------------------------------------------------

TEST(FrameReaderTest, ByteAtATimeFeedStillDecodes) {
  const std::string wire = encode_frame("abc") + encode_frame("");
  FrameReader reader;
  std::string payload;
  std::vector<std::string> frames;
  for (char c : wire) {
    reader.feed(&c, 1);
    while (reader.next(payload) == FrameReader::State::kFrame)
      frames.push_back(payload);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], "abc");
  EXPECT_EQ(frames[1], "");
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameReaderTest, ChecksumMismatchPoisonsForever) {
  std::string wire = encode_frame("payload bytes");
  wire.back() ^= 0x01;  // flip one payload bit
  FrameReader reader;
  reader.feed(wire);
  std::string payload;
  EXPECT_EQ(reader.next(payload), FrameReader::State::kCorrupt);
  EXPECT_FALSE(reader.corrupt_reason().empty());
  // Poisoned: even a pristine follow-up frame is rejected.
  reader.feed(encode_frame("fine"));
  EXPECT_EQ(reader.next(payload), FrameReader::State::kCorrupt);
}

TEST(FrameReaderTest, BadMagicIsCorrupt) {
  std::string wire = encode_frame("x");
  wire[0] = 'Z';
  FrameReader reader;
  reader.feed(wire);
  std::string payload;
  EXPECT_EQ(reader.next(payload), FrameReader::State::kCorrupt);
}

TEST(FrameReaderTest, GarbageShorterThanHeaderIsCorruptImmediately) {
  // A bad magic must be detected on the prefix that has arrived, not
  // deferred until a full header accumulates (it never would: this is
  // what a human typing at a worker's stdin looks like).
  FrameReader reader;
  reader.feed("not a frame at all\n");
  std::string payload;
  EXPECT_EQ(reader.next(payload), FrameReader::State::kCorrupt);
}

TEST(FrameReaderTest, OversizedLengthIsCorruptNotAllocation) {
  std::string wire = encode_frame("x");
  // Length field (little-endian u32 at offset 8): claim ~4 GiB.
  wire[8] = wire[9] = wire[10] = wire[11] = '\xff';
  FrameReader reader;
  reader.feed(wire);
  std::string payload;
  EXPECT_EQ(reader.next(payload), FrameReader::State::kCorrupt);
}

TEST(FrameReaderTest, NeedMoreUntilPayloadComplete) {
  const std::string wire = encode_frame("0123456789");
  FrameReader reader;
  std::string payload;
  reader.feed(wire.substr(0, kFrameHeaderBytes + 4));
  EXPECT_EQ(reader.next(payload), FrameReader::State::kNeedMore);
  reader.feed(wire.substr(kFrameHeaderBytes + 4));
  EXPECT_EQ(reader.next(payload), FrameReader::State::kFrame);
  EXPECT_EQ(payload, "0123456789");
}

}  // namespace
}  // namespace tracesel::util
