#include "selection/combination.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace tracesel::selection {
namespace {

using flow::MessageCatalog;
using flow::MessageId;
using test::CoherenceFixture;

TEST(Combination, PaperExampleSixOfSevenFit) {
  // Sec. 3.1: 3 one-bit messages, buffer width 2 -> of the 7 nonempty
  // subsets only the full set exceeds the budget; 6 remain.
  const CoherenceFixture fx;
  const std::vector<MessageId> cands{fx.reqE, fx.gntE, fx.ack};
  const auto combos = enumerate_combinations(fx.catalog, cands, 2);
  EXPECT_EQ(combos.size(), 6u);
  for (const auto& c : combos) EXPECT_LE(c.width, 2u);
}

TEST(Combination, WidthIsSumOfMemberWidths) {
  MessageCatalog cat;
  const MessageId a = cat.add("a", 3, "X", "Y");
  const MessageId b = cat.add("b", 5, "X", "Y");
  const auto combos = enumerate_combinations(cat, std::vector<MessageId>{a, b}, 8);
  ASSERT_EQ(combos.size(), 3u);
  for (const auto& c : combos) {
    EXPECT_EQ(c.width, combination_width(cat, c.messages));
  }
}

TEST(Combination, BudgetExcludesWideMessages) {
  MessageCatalog cat;
  const MessageId a = cat.add("a", 3, "X", "Y");
  const MessageId wide = cat.add("wide", 40, "X", "Y");
  const auto combos =
      enumerate_combinations(cat, std::vector<MessageId>{a, wide}, 32);
  ASSERT_EQ(combos.size(), 1u);
  EXPECT_EQ(combos[0].messages, std::vector<MessageId>{a});
}

TEST(Combination, EmptyWhenNothingFits) {
  MessageCatalog cat;
  const MessageId wide = cat.add("wide", 40, "X", "Y");
  EXPECT_TRUE(
      enumerate_combinations(cat, std::vector<MessageId>{wide}, 32).empty());
}

TEST(Combination, RejectsDuplicateCandidates) {
  const CoherenceFixture fx;
  const std::vector<MessageId> dup{fx.reqE, fx.reqE};
  EXPECT_THROW(enumerate_combinations(fx.catalog, dup, 4),
               std::invalid_argument);
}

TEST(Combination, ResultCapThrows) {
  const CoherenceFixture fx;
  const std::vector<MessageId> cands{fx.reqE, fx.gntE, fx.ack};
  EXPECT_THROW(enumerate_combinations(fx.catalog, cands, 2, /*max_results=*/3),
               std::length_error);
}

TEST(Combination, MessagesAreSortedAndUnique) {
  const CoherenceFixture fx;
  const std::vector<MessageId> cands{fx.ack, fx.reqE, fx.gntE};
  for (const auto& c : enumerate_combinations(fx.catalog, cands, 3)) {
    EXPECT_TRUE(std::is_sorted(c.messages.begin(), c.messages.end()));
    EXPECT_EQ(std::adjacent_find(c.messages.begin(), c.messages.end()),
              c.messages.end());
  }
}

TEST(Combination, MaximalEnumerationKeepsOnlyUnextendable) {
  // Buffer 2, three 1-bit messages: maximal fitting combinations are the
  // three pairs.
  const CoherenceFixture fx;
  const std::vector<MessageId> cands{fx.reqE, fx.gntE, fx.ack};
  const auto maximal = enumerate_maximal_combinations(fx.catalog, cands, 2);
  EXPECT_EQ(maximal.size(), 3u);
  for (const auto& c : maximal) EXPECT_EQ(c.messages.size(), 2u);
}

TEST(Combination, MaximalIsSubsetOfAll) {
  MessageCatalog cat;
  std::vector<MessageId> cands;
  for (int i = 0; i < 6; ++i)
    cands.push_back(cat.add("m" + std::to_string(i),
                            static_cast<std::uint32_t>(1 + i % 3), "X", "Y"));
  const auto all = enumerate_combinations(cat, cands, 6);
  const auto maximal = enumerate_maximal_combinations(cat, cands, 6);
  EXPECT_LT(maximal.size(), all.size());
  for (const auto& m : maximal) {
    EXPECT_NE(std::find(all.begin(), all.end(), m), all.end());
  }
}

TEST(Combination, ExhaustiveCountMatchesSubsetFormula) {
  // With a budget large enough for everything, count == 2^n - 1.
  MessageCatalog cat;
  std::vector<MessageId> cands;
  for (int i = 0; i < 8; ++i)
    cands.push_back(cat.add("m" + std::to_string(i), 1, "X", "Y"));
  EXPECT_EQ(enumerate_combinations(cat, cands, 100).size(), 255u);
  // And the only maximal one is the full set.
  EXPECT_EQ(enumerate_maximal_combinations(cat, cands, 100).size(), 1u);
}

}  // namespace
}  // namespace tracesel::selection
