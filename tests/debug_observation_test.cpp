#include "debug/observation.hpp"

#include <gtest/gtest.h>

#include "soc/t2_design.hpp"

namespace tracesel::debug {
namespace {

class ObservationTest : public ::testing::Test {
 protected:
  soc::TraceRecord rec(flow::MessageId m, std::uint32_t index,
                       std::uint32_t session, std::uint64_t value,
                       std::string dst = {}) {
    soc::TraceRecord r;
    r.msg = {m, index};
    r.session = session;
    r.value = value;
    r.dst = dst.empty() ? design_.catalog().get(m).dest_ip : dst;
    return r;
  }

  soc::T2Design design_;
};

TEST_F(ObservationTest, IdenticalTracesAreCorrect) {
  const std::vector<soc::TraceRecord> golden{rec(design_.siincu, 1, 0, 5)};
  const auto obs = observe(design_.catalog(), {design_.siincu}, golden,
                           golden);
  EXPECT_EQ(obs.status.at(design_.siincu), MsgStatus::kPresentCorrect);
}

TEST_F(ObservationTest, ValueMismatchIsCorrupt) {
  const std::vector<soc::TraceRecord> golden{rec(design_.siincu, 1, 0, 5)};
  const std::vector<soc::TraceRecord> buggy{rec(design_.siincu, 1, 0, 6)};
  const auto obs =
      observe(design_.catalog(), {design_.siincu}, golden, buggy);
  EXPECT_EQ(obs.status.at(design_.siincu), MsgStatus::kPresentCorrupt);
}

TEST_F(ObservationTest, MissingOccurrenceIsAbsent) {
  const std::vector<soc::TraceRecord> golden{rec(design_.siincu, 1, 0, 5),
                                             rec(design_.siincu, 2, 0, 7)};
  const std::vector<soc::TraceRecord> buggy{rec(design_.siincu, 1, 0, 5)};
  const auto obs =
      observe(design_.catalog(), {design_.siincu}, golden, buggy);
  EXPECT_EQ(obs.status.at(design_.siincu), MsgStatus::kAbsent);
}

TEST_F(ObservationTest, WrongDestinationIsMisrouted) {
  const std::vector<soc::TraceRecord> golden{rec(design_.piowcrd, 1, 0, 5)};
  const std::vector<soc::TraceRecord> buggy{
      rec(design_.piowcrd, 1, 0, 5, "SIU")};
  const auto obs =
      observe(design_.catalog(), {design_.piowcrd}, golden, buggy);
  EXPECT_EQ(obs.status.at(design_.piowcrd), MsgStatus::kMisrouted);
}

TEST_F(ObservationTest, AbsenceDominatesCorruption) {
  // One instance corrupted, another missing: report the graver status.
  const std::vector<soc::TraceRecord> golden{rec(design_.siincu, 1, 0, 5),
                                             rec(design_.siincu, 2, 0, 7)};
  const std::vector<soc::TraceRecord> buggy{rec(design_.siincu, 1, 0, 6)};
  const auto obs =
      observe(design_.catalog(), {design_.siincu}, golden, buggy);
  EXPECT_EQ(obs.status.at(design_.siincu), MsgStatus::kAbsent);
}

TEST_F(ObservationTest, UntracedMessagesNotReported) {
  const std::vector<soc::TraceRecord> golden{rec(design_.siincu, 1, 0, 5)};
  const auto obs = observe(design_.catalog(), {design_.grant}, golden,
                           golden);
  EXPECT_FALSE(obs.status.contains(design_.siincu));
  EXPECT_TRUE(obs.status.contains(design_.grant));
  // grant never occurred in either trace: trivially correct.
  EXPECT_EQ(obs.status.at(design_.grant), MsgStatus::kPresentCorrect);
}

TEST_F(ObservationTest, SessionsAreComparedIndependently) {
  // A corruption in session 1 must not be masked by session 0 matching.
  const std::vector<soc::TraceRecord> golden{rec(design_.siincu, 1, 0, 5),
                                             rec(design_.siincu, 1, 1, 9)};
  const std::vector<soc::TraceRecord> buggy{rec(design_.siincu, 1, 0, 5),
                                            rec(design_.siincu, 1, 1, 8)};
  const auto obs =
      observe(design_.catalog(), {design_.siincu}, golden, buggy);
  EXPECT_EQ(obs.status.at(design_.siincu), MsgStatus::kPresentCorrupt);
}

TEST_F(ObservationTest, TracedListIsSorted) {
  const auto obs = observe(design_.catalog(),
                           {design_.siincu, design_.grant, design_.reqtot},
                           {}, {});
  EXPECT_TRUE(std::is_sorted(obs.traced.begin(), obs.traced.end()));
}

TEST(MsgStatusToString, Formats) {
  EXPECT_EQ(to_string(MsgStatus::kPresentCorrect), "present-correct");
  EXPECT_EQ(to_string(MsgStatus::kPresentCorrupt), "present-corrupt");
  EXPECT_EQ(to_string(MsgStatus::kAbsent), "absent");
  EXPECT_EQ(to_string(MsgStatus::kMisrouted), "misrouted");
}

}  // namespace
}  // namespace tracesel::debug
