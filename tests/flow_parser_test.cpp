#include "flow/parser.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "flow/indexed_flow.hpp"
#include "flow/interleaved_flow.hpp"
#include "selection/selector.hpp"
#include "soc/t2_design.hpp"
#include "util/rng.hpp"

namespace tracesel::flow {
namespace {

constexpr const char* kCoherence = R"(
# toy cache coherence (Fig. 1a)
message ReqE 1 IP1 -> Dir
message GntE 1 Dir -> IP1
message Ack  1 IP1 -> Dir

flow CacheCoherence {
  state Init initial
  state Wait
  state GntW atomic
  state Done stop
  Init -> Wait on ReqE
  Wait -> GntW on GntE
  GntW -> Done on Ack
}
)";

TEST(FlowParser, ParsesCoherenceExample) {
  const ParsedSpec spec = parse_flow_spec(kCoherence);
  EXPECT_EQ(spec.catalog.size(), 3u);
  ASSERT_EQ(spec.flows.size(), 1u);
  const Flow& f = spec.flow("CacheCoherence");
  EXPECT_EQ(f.num_states(), 4u);
  EXPECT_EQ(f.transitions().size(), 3u);
  EXPECT_TRUE(f.is_atomic(f.require_state("GntW")));
  EXPECT_TRUE(f.is_stop(f.require_state("Done")));
}

TEST(FlowParser, ParsedFlowReproducesPaperNumbers) {
  const ParsedSpec spec = parse_flow_spec(kCoherence);
  const Flow& f = spec.flow("CacheCoherence");
  const auto u = InterleavedFlow::build(make_instances({&f}, 2));
  EXPECT_EQ(u.num_product_states(), 15u);
  EXPECT_EQ(u.num_product_edges(), 18u);
  const selection::MessageSelector sel(spec.catalog, u);
  selection::SelectorConfig cfg;
  cfg.buffer_width = 2;
  EXPECT_NEAR(sel.select(cfg).gain, 1.073, 5e-4);
}

TEST(FlowParser, CommentsAndBlankLinesIgnored) {
  const ParsedSpec spec = parse_flow_spec(R"(
# leading comment

message a 1 X -> Y   # trailing comment

flow f {
  state s initial    # inline
  state t stop
  s -> t on a
}
)");
  EXPECT_EQ(spec.flows.size(), 1u);
}

TEST(FlowParser, MessageWithBeatsAndSubgroups) {
  const ParsedSpec spec = parse_flow_spec(R"(
message wide 20 A -> B beats 4
subgroup wide tid 6
message narrow 1 B -> A
flow f {
  state s initial
  state t stop
  s -> t on wide
}
)");
  const Message& m = spec.catalog.get(spec.catalog.require("wide"));
  EXPECT_EQ(m.width, 20u);
  EXPECT_EQ(m.beats, 4u);
  EXPECT_EQ(m.trace_width(), 5u);
  ASSERT_EQ(m.subgroups.size(), 1u);
  EXPECT_EQ(m.subgroups[0].name, "tid");
}

TEST(FlowParser, MessagesInsideFlowBlocksAllowed) {
  const ParsedSpec spec = parse_flow_spec(R"(
flow f {
  message a 1 X -> Y
  state s initial
  state t stop
  s -> t on a
}
)");
  EXPECT_EQ(spec.catalog.size(), 1u);
}

TEST(FlowParser, SubgroupBeforeMessageDeclaration) {
  // Two-pass message collection: order independent.
  const ParsedSpec spec = parse_flow_spec(R"(
subgroup wide tid 6
message wide 20 A -> B
message go 1 B -> A
flow f {
  state s initial
  state t stop
  s -> t on go
  s -> t on wide
}
)");
  EXPECT_EQ(spec.catalog.get(spec.catalog.require("wide")).subgroups.size(),
            1u);
}

TEST(FlowParser, MultipleFlowsShareCatalog) {
  const ParsedSpec spec = parse_flow_spec(R"(
message a 1 X -> Y
message b 2 Y -> X
flow f1 {
  state s initial
  state t stop
  s -> t on a
}
flow f2 {
  state s initial
  state t stop
  s -> t on b
}
)");
  EXPECT_EQ(spec.flows.size(), 2u);
  EXPECT_EQ(spec.catalog.size(), 2u);
}

TEST(FlowParser, ErrorsCarryLineNumbers) {
  try {
    parse_flow_spec("message a 1 X -> Y\nbogus line here\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(FlowParser, RejectsMalformedMessage) {
  EXPECT_THROW(parse_flow_spec("message a X -> Y\n"), ParseError);
  EXPECT_THROW(parse_flow_spec("message a 0 X -> Y\n"), ParseError);
  EXPECT_THROW(parse_flow_spec("message a 1 X >> Y\n"), ParseError);
  EXPECT_THROW(parse_flow_spec("message a 1 X -> Y beats zero\n"),
               ParseError);
}

TEST(FlowParser, RejectsUnknownMessageInTransition) {
  EXPECT_THROW(parse_flow_spec(R"(
flow f {
  state s initial
  state t stop
  s -> t on ghost
}
)"),
               ParseError);
}

TEST(FlowParser, RejectsUnknownSubgroupParent) {
  EXPECT_THROW(parse_flow_spec("subgroup ghost tid 3\n"), ParseError);
}

TEST(FlowParser, RejectsUnterminatedFlow) {
  EXPECT_THROW(parse_flow_spec("flow f {\n  state s initial\n"), ParseError);
}

TEST(FlowParser, RejectsUnknownStateFlag) {
  EXPECT_THROW(parse_flow_spec(R"(
message a 1 X -> Y
flow f {
  state s initial sticky
  state t stop
  s -> t on a
}
)"),
               ParseError);
}

TEST(FlowParser, SemanticViolationsSurfaceAsParseErrors) {
  // A flow without a stop state fails FlowBuilder validation; the parser
  // wraps it with the flow's line number.
  EXPECT_THROW(parse_flow_spec(R"(
message a 1 X -> Y
flow f {
  state s initial
  state t
  s -> t on a
}
)"),
               ParseError);
}

TEST(FlowParser, UnknownFlowLookupThrows) {
  const ParsedSpec spec = parse_flow_spec(kCoherence);
  EXPECT_THROW(spec.flow("nope"), std::out_of_range);
}

TEST(FlowParser, FileLoaderErrorsOnMissingFile) {
  EXPECT_THROW(parse_flow_spec_file("/nonexistent/x.flow"),
               std::runtime_error);
}

TEST(FlowParser, ErrorsCarryFileNameWhenKnown) {
  try {
    parse_flow_spec("message a 1 X -> Y\nbogus line here\n", "spec.flow");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.file(), "spec.flow");
    EXPECT_EQ(e.line(), 2u);
    EXPECT_EQ(std::string(e.what()).rfind("spec.flow:2: ", 0), 0u)
        << e.what();
  }
}

TEST(FlowParser, FileLoaderPrefixesErrorsWithPath) {
  const std::string path = ::testing::TempDir() + "bad.flow";
  {
    std::ofstream out(path);
    out << "message a 1 X -> Y\nbogus\n";
  }
  try {
    parse_flow_spec_file(path);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.file(), path);
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find(path + ":2: "), std::string::npos);
  }
}

TEST(FlowParser, LenientAccumulatesAllErrors) {
  // Four independent mistakes; strict mode would stop at the first.
  const auto result = parse_flow_spec_lenient(R"(
message a 1 X -> Y
message bad zero X -> Y
subgroup ghost tid 3
flow f {
  state s initial
  state t stop
  s -> t on missing
  s -> t on a
}
bogus trailing line
)",
                                              "multi.flow");
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.errors.size(), 4u);
  EXPECT_EQ(result.errors[0].line, 3u);   // bad width
  EXPECT_EQ(result.errors[1].line, 11u);  // bogus top-level line
  EXPECT_EQ(result.errors[2].line, 4u);   // unknown subgroup parent
  EXPECT_EQ(result.errors[3].line, 8u);   // unknown message in transition
  for (const ParseDiagnostic& d : result.errors) {
    EXPECT_EQ(d.file, "multi.flow");
    EXPECT_EQ(d.to_string().rfind("multi.flow:", 0), 0u) << d.to_string();
  }
  // The salvageable parts survive: message 'a' and flow 'f' (built from
  // its two good lines and the one good transition).
  EXPECT_EQ(result.spec.catalog.size(), 1u);
  ASSERT_EQ(result.spec.flows.size(), 1u);
  EXPECT_EQ(result.spec.flows[0].name(), "f");
}

TEST(FlowParser, LenientDropsUnbuildableFlowWithoutCascade) {
  // The flow body is fine line-by-line but has no stop state: exactly one
  // diagnostic (at the flow header), and the flow is dropped.
  const auto result = parse_flow_spec_lenient(R"(
message a 1 X -> Y
flow f {
  state s initial
  state t
  s -> t on a
}
)");
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_EQ(result.errors[0].line, 3u);
  EXPECT_TRUE(result.spec.flows.empty());
  EXPECT_EQ(result.spec.catalog.size(), 1u);
}

TEST(FlowParser, LenientCleanInputIsOk) {
  const auto result = parse_flow_spec_lenient(kCoherence);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.spec.flows.size(), 1u);
}

TEST(FlowParser, LenientUnreadableFileIsOneDiagnostic) {
  const auto result = parse_flow_spec_file_lenient("/nonexistent/x.flow");
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_EQ(result.errors[0].file, "/nonexistent/x.flow");
  EXPECT_EQ(result.errors[0].line, 0u);
}

TEST(FlowParser, T2CollateralFileMatchesBuiltInDesign) {
  // data/t2.flow mirrors soc::T2Design; parsing it must yield the same
  // catalog widths and flow shapes.
  const ParsedSpec spec = parse_flow_spec_file(TRACESEL_DATA_DIR "/t2.flow");
  const soc::T2Design design;
  EXPECT_EQ(spec.catalog.size(), design.catalog().size());
  for (const Message& m : design.catalog()) {
    const auto id = spec.catalog.find(m.name);
    ASSERT_TRUE(id.has_value()) << m.name;
    const Message& parsed = spec.catalog.get(*id);
    EXPECT_EQ(parsed.width, m.width) << m.name;
    EXPECT_EQ(parsed.source_ip, m.source_ip) << m.name;
    EXPECT_EQ(parsed.dest_ip, m.dest_ip) << m.name;
    EXPECT_EQ(parsed.subgroups.size(), m.subgroups.size()) << m.name;
  }
  ASSERT_EQ(spec.flows.size(), 7u);
  for (const char* name :
       {"PIOR", "PIOW", "NCUU", "NCUD", "Mon", "DMAR", "DMAW"}) {
    const Flow& parsed = spec.flow(name);
    const Flow& built = design.flow_by_name(name);
    EXPECT_EQ(parsed.num_states(), built.num_states()) << name;
    EXPECT_EQ(parsed.transitions().size(), built.transitions().size())
        << name;
    EXPECT_EQ(parsed.atomic_states().size(), built.atomic_states().size())
        << name;
  }
}

class ParserFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzzTest, GarbageNeverCrashesOnlyThrows) {
  // Random token soup from the parser's own vocabulary plus junk: the
  // parser must either produce a spec or throw ParseError/-invalid_argument
  // — never crash, hang, or accept structurally invalid input silently.
  util::Rng rng(GetParam());
  static const char* kTokens[] = {
      "message", "subgroup", "flow",  "state",   "initial", "stop",
      "atomic",  "->",       "on",    "{",       "}",       "beats",
      "a",       "b",        "s0",    "s1",      "12",      "0",
      "#junk",   "xyzzy",    "-3",    "4096",    "A",       "B"};
  std::string text;
  const std::size_t lines = 5 + rng.index(20);
  for (std::size_t l = 0; l < lines; ++l) {
    const std::size_t toks = 1 + rng.index(7);
    for (std::size_t t = 0; t < toks; ++t) {
      text += kTokens[rng.index(std::size(kTokens))];
      text += ' ';
    }
    text += '\n';
  }
  try {
    const ParsedSpec spec = parse_flow_spec(text);
    // If it parsed, the artifacts must be internally consistent.
    for (const Flow& f : spec.flows) {
      EXPECT_FALSE(f.initial_states().empty());
      EXPECT_FALSE(f.stop_states().empty());
    }
  } catch (const ParseError&) {
  } catch (const std::invalid_argument&) {
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTokenSoup, ParserFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 33));

TEST(ParserCapsTest, OverlongLineRejectedWithLineNumber) {
  std::string text = "message Ok 1 A -> B\n";
  text += std::string(65 * 1024, 'x');  // one 65 KiB line
  text += "\nmessage Ok2 1 A -> B\n";
  try {
    parse_flow_spec(text, "caps.flow");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_EQ(e.file(), "caps.flow");
    EXPECT_NE(e.detail().find("length cap"), std::string::npos);
  }
  // Lenient mode drops the line, stays synchronized and keeps parsing.
  const auto lenient = parse_flow_spec_lenient(text);
  ASSERT_EQ(lenient.errors.size(), 1u);
  EXPECT_EQ(lenient.errors[0].line, 2u);
  EXPECT_EQ(lenient.spec.catalog.size(), 2u);
}

TEST(ParserCapsTest, MessageCountCapReportedOnce) {
  // 65536 messages are accepted; the 65537th (and beyond) trips the cap
  // with exactly one diagnostic instead of 10k repeats.
  std::string text;
  text.reserve(70u << 20 >> 5);
  for (std::size_t i = 0; i < 65536 + 10; ++i)
    text += "message m" + std::to_string(i) + " 1 A -> B\n";
  EXPECT_THROW(parse_flow_spec(text), ParseError);
  const auto lenient = parse_flow_spec_lenient(text);
  ASSERT_EQ(lenient.errors.size(), 1u);
  EXPECT_NE(lenient.errors[0].text.find("message count"), std::string::npos);
  EXPECT_EQ(lenient.spec.catalog.size(), 65536u);
}

TEST(ParserCapsTest, FlowCountCapConsumesExcessBodies) {
  // 4096 flows parse; flow 4097 is reported once and its body swallowed so
  // the parser stays synchronized for what follows.
  std::string text = "message m 1 A -> B\n";
  for (std::size_t i = 0; i < 4096 + 2; ++i) {
    text += "flow f" + std::to_string(i) +
            " {\n  state a initial\n  state b stop\n  a -> b on m\n}\n";
  }
  text += "message tail 1 A -> B\n";
  EXPECT_THROW(parse_flow_spec(text), ParseError);
  const auto lenient = parse_flow_spec_lenient(text);
  ASSERT_EQ(lenient.errors.size(), 1u);
  EXPECT_NE(lenient.errors[0].text.find("flow count"), std::string::npos);
  EXPECT_EQ(lenient.spec.flows.size(), 4096u);
  EXPECT_TRUE(lenient.spec.catalog.find("tail").has_value());
}

TEST(ParserCapsTest, CancelledTokenAbortsParseWithTypedError) {
  // The poll granule is a few thousand lines, so a large input with a
  // pre-cancelled token must unwind with CancelledError, not finish.
  std::string text;
  for (std::size_t i = 0; i < 20000; ++i)
    text += "message m" + std::to_string(i) + " 1 A -> B\n";
  const util::CancelToken token = util::CancelToken::make();
  token.cancel();
  try {
    parse_flow_spec(text, "", &token);
    FAIL() << "expected CancelledError";
  } catch (const util::CancelledError& e) {
    EXPECT_EQ(e.stage(), "flow.parse");
  }
  // An inert (default) token changes nothing.
  EXPECT_NO_THROW(parse_flow_spec(text, "", nullptr));
}

}  // namespace
}  // namespace tracesel::flow
