#include "flow/flow_builder.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace tracesel::flow {
namespace {

class FlowBuilderTest : public ::testing::Test {
 protected:
  MessageCatalog catalog_;
  MessageId a_ = catalog_.add("a", 1, "X", "Y");
  MessageId b_ = catalog_.add("b", 1, "Y", "X");
};

TEST_F(FlowBuilderTest, BuildsLinearFlow) {
  FlowBuilder fb("lin");
  fb.state("s0", FlowBuilder::kInitial)
      .state("s1")
      .state("s2", FlowBuilder::kStop)
      .transition("s0", a_, "s1")
      .transition("s1", b_, "s2");
  const Flow f = fb.build(catalog_);
  EXPECT_EQ(f.name(), "lin");
  EXPECT_EQ(f.num_states(), 3u);
  EXPECT_EQ(f.initial_states().size(), 1u);
  EXPECT_EQ(f.stop_states().size(), 1u);
  EXPECT_TRUE(f.atomic_states().empty());
  EXPECT_EQ(f.transitions().size(), 2u);
  EXPECT_EQ(f.messages().size(), 2u);
}

TEST_F(FlowBuilderTest, PaperCoherenceFlowShape) {
  const test::CoherenceFixture fx;
  const Flow& f = fx.flow_;
  // Fig. 1a: S={n,w,c,d}, S0={n}, Sp={d}, Atom={c}, |E|=3.
  EXPECT_EQ(f.num_states(), 4u);
  EXPECT_EQ(f.initial_states(), std::vector<StateId>{f.require_state("n")});
  EXPECT_EQ(f.stop_states(), std::vector<StateId>{f.require_state("d")});
  EXPECT_EQ(f.atomic_states(), std::vector<StateId>{f.require_state("c")});
  EXPECT_EQ(f.messages().size(), 3u);
}

TEST_F(FlowBuilderTest, StateFlagQueriesMatchDeclaration) {
  FlowBuilder fb("q");
  fb.state("i", FlowBuilder::kInitial)
      .state("m", FlowBuilder::kAtomic)
      .state("t", FlowBuilder::kStop)
      .transition("i", a_, "m")
      .transition("m", b_, "t");
  const Flow f = fb.build(catalog_);
  EXPECT_TRUE(f.is_initial(f.require_state("i")));
  EXPECT_FALSE(f.is_initial(f.require_state("m")));
  EXPECT_TRUE(f.is_atomic(f.require_state("m")));
  EXPECT_TRUE(f.is_stop(f.require_state("t")));
  EXPECT_FALSE(f.is_stop(f.require_state("i")));
}

TEST_F(FlowBuilderTest, LateMarkersEquivalentToFlags) {
  FlowBuilder fb("late");
  fb.state("i").state("t");
  fb.initial("i").stop("t");
  fb.transition("i", a_, "t");
  const Flow f = fb.build(catalog_);
  EXPECT_TRUE(f.is_initial(f.require_state("i")));
  EXPECT_TRUE(f.is_stop(f.require_state("t")));
}

TEST_F(FlowBuilderTest, RejectsDuplicateStateName) {
  FlowBuilder fb("dup");
  fb.state("s");
  EXPECT_THROW(fb.state("s"), std::invalid_argument);
}

TEST_F(FlowBuilderTest, RejectsUnknownStateInTransition) {
  FlowBuilder fb("unknown");
  fb.state("s", FlowBuilder::kInitial);
  EXPECT_THROW(fb.transition("s", a_, "nope"), std::invalid_argument);
}

TEST_F(FlowBuilderTest, RejectsCycle) {
  FlowBuilder fb("cyc");
  fb.state("s0", FlowBuilder::kInitial)
      .state("s1")
      .state("s2", FlowBuilder::kStop)
      .transition("s0", a_, "s1")
      .transition("s1", b_, "s0")   // back edge -> cycle
      .transition("s1", a_, "s2");
  EXPECT_THROW(fb.build(catalog_), std::invalid_argument);
}

TEST_F(FlowBuilderTest, RejectsSelfLoop) {
  FlowBuilder fb("self");
  fb.state("s0", FlowBuilder::kInitial)
      .state("s1", FlowBuilder::kStop)
      .transition("s0", a_, "s0")
      .transition("s0", b_, "s1");
  EXPECT_THROW(fb.build(catalog_), std::invalid_argument);
}

TEST_F(FlowBuilderTest, RejectsMissingInitial) {
  FlowBuilder fb("noinit");
  fb.state("s0").state("s1", FlowBuilder::kStop).transition("s0", a_, "s1");
  EXPECT_THROW(fb.build(catalog_), std::invalid_argument);
}

TEST_F(FlowBuilderTest, RejectsMissingStop) {
  FlowBuilder fb("nostop");
  fb.state("s0", FlowBuilder::kInitial).state("s1").transition("s0", a_, "s1");
  EXPECT_THROW(fb.build(catalog_), std::invalid_argument);
}

TEST_F(FlowBuilderTest, RejectsStopAtomicOverlap) {
  FlowBuilder fb("overlap");
  fb.state("s0", FlowBuilder::kInitial)
      .state("s1", FlowBuilder::kStop | FlowBuilder::kAtomic)
      .transition("s0", a_, "s1");
  EXPECT_THROW(fb.build(catalog_), std::invalid_argument);
}

TEST_F(FlowBuilderTest, RejectsUnreachableState) {
  FlowBuilder fb("unreach");
  fb.state("s0", FlowBuilder::kInitial)
      .state("island", FlowBuilder::kStop)
      .state("t", FlowBuilder::kStop);
  fb.transition("s0", a_, "t");
  EXPECT_THROW(fb.build(catalog_), std::invalid_argument);
}

TEST_F(FlowBuilderTest, RejectsStateThatCannotReachStop) {
  FlowBuilder fb("trap");
  fb.state("s0", FlowBuilder::kInitial)
      .state("trap")
      .state("t", FlowBuilder::kStop)
      .transition("s0", a_, "trap")
      .transition("s0", b_, "t");
  EXPECT_THROW(fb.build(catalog_), std::invalid_argument);
}

TEST_F(FlowBuilderTest, RejectsUnknownMessageId) {
  FlowBuilder fb("badmsg");
  fb.state("s0", FlowBuilder::kInitial)
      .state("t", FlowBuilder::kStop)
      .transition("s0", 999, "t");
  EXPECT_THROW(fb.build(catalog_), std::out_of_range);
}

TEST_F(FlowBuilderTest, OutgoingListsTransitionIndices) {
  FlowBuilder fb("branch");
  fb.state("s0", FlowBuilder::kInitial)
      .state("l", FlowBuilder::kStop)
      .state("r", FlowBuilder::kStop)
      .transition("s0", a_, "l")
      .transition("s0", b_, "r");
  const Flow f = fb.build(catalog_);
  EXPECT_EQ(f.outgoing(f.require_state("s0")).size(), 2u);
  EXPECT_TRUE(f.outgoing(f.require_state("l")).empty());
}

TEST_F(FlowBuilderTest, UsesMessageReflectsTransitionLabels) {
  const test::CoherenceFixture fx;
  EXPECT_TRUE(fx.flow_.uses_message(fx.reqE));
  EXPECT_TRUE(fx.flow_.uses_message(fx.ack));
  // A message registered in the catalog but unused by this flow.
  MessageCatalog c2;
  const MessageId other = c2.add("other", 1, "X", "Y");
  EXPECT_FALSE(fx.flow_.uses_message(other + 10));
}

TEST_F(FlowBuilderTest, FindStateReturnsNulloptForUnknown) {
  const test::CoherenceFixture fx;
  EXPECT_FALSE(fx.flow_.find_state("zzz").has_value());
  EXPECT_TRUE(fx.flow_.find_state("n").has_value());
  EXPECT_THROW(fx.flow_.require_state("zzz"), std::out_of_range);
}

}  // namespace
}  // namespace tracesel::flow
