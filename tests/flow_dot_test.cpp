#include "flow/dot.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace tracesel::flow {
namespace {

using test::CoherenceFixture;

class DotTest : public ::testing::Test {
 protected:
  CoherenceFixture fx_;
};

TEST_F(DotTest, FlowDotHasAllStatesAndEdges) {
  const std::string dot = to_dot(fx_.flow_, fx_.catalog);
  EXPECT_NE(dot.find("digraph \"CacheCoherence\""), std::string::npos);
  for (const char* state : {"\"n\"", "\"w\"", "\"c\"", "\"d\""})
    EXPECT_NE(dot.find(state), std::string::npos) << state;
  for (const char* msg : {"\"ReqE\"", "\"GntE\"", "\"Ack\""})
    EXPECT_NE(dot.find(msg), std::string::npos) << msg;
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '\n'),
            2 + 4 + 3 + 1 + 1);  // header(2) + states + edges + braces
}

TEST_F(DotTest, MarksSpecialStates) {
  const std::string dot = to_dot(fx_.flow_, fx_.catalog);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // stop state
  EXPECT_NE(dot.find("fillcolor=lightgray"), std::string::npos);  // atomic
  EXPECT_NE(dot.find("penwidth=2"), std::string::npos);  // initial
}

TEST_F(DotTest, InterleavingDotLabelsIndexedMessages) {
  // Render the concrete product — the paper's Fig. 2 picture — regardless
  // of which engine the default build uses.
  const auto u = fx_.two_instance_interleaving();
  const std::string dot = to_dot(u.concrete(), fx_.catalog);
  EXPECT_NE(dot.find("digraph interleaving"), std::string::npos);
  EXPECT_NE(dot.find("1:ReqE"), std::string::npos);
  EXPECT_NE(dot.find("2:GntE"), std::string::npos);
  // 15 nodes + 18 edges.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '\n'), 2 + 15 + 18 + 1 + 1);
}

TEST_F(DotTest, ReducedInterleavingDotIsSmaller) {
  const auto u = fx_.two_instance_interleaving();
  ASSERT_TRUE(u.reduced());
  const std::string dot = to_dot(u, fx_.catalog);
  // 9 orbit representatives instead of 15 concrete nodes.
  EXPECT_LT(std::count(dot.begin(), dot.end(), '\n'), 2 + 15 + 18 + 1 + 1);
}

TEST_F(DotTest, EscapesQuotesInNames) {
  MessageCatalog cat;
  const MessageId m = cat.add("weird\"msg", 1, "A", "B");
  FlowBuilder fb("f");
  fb.state("s", FlowBuilder::kInitial)
      .state("t", FlowBuilder::kStop)
      .transition("s", m, "t");
  const Flow f = fb.build(cat);
  const std::string dot = to_dot(f, cat);
  EXPECT_NE(dot.find("weird\\\"msg"), std::string::npos);
}

}  // namespace
}  // namespace tracesel::flow
