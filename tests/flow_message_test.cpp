#include "flow/message.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace tracesel::flow {
namespace {

TEST(MessageCatalog, AddAssignsDenseIds) {
  MessageCatalog c;
  EXPECT_EQ(c.add("a", 1, "X", "Y"), 0u);
  EXPECT_EQ(c.add("b", 2, "X", "Y"), 1u);
  EXPECT_EQ(c.add("c", 3, "X", "Y"), 2u);
  EXPECT_EQ(c.size(), 3u);
}

TEST(MessageCatalog, GetReturnsStoredMessage) {
  MessageCatalog c;
  const MessageId id = c.add("piowcrd", 4, "SIU", "NCU");
  const Message& m = c.get(id);
  EXPECT_EQ(m.name, "piowcrd");
  EXPECT_EQ(m.width, 4u);
  EXPECT_EQ(m.source_ip, "SIU");
  EXPECT_EQ(m.dest_ip, "NCU");
}

TEST(MessageCatalog, FindByName) {
  MessageCatalog c;
  c.add("a", 1, "X", "Y");
  const MessageId b = c.add("b", 2, "X", "Y");
  EXPECT_EQ(c.find("b"), std::optional<MessageId>(b));
  EXPECT_FALSE(c.find("nope").has_value());
}

TEST(MessageCatalog, RequireThrowsOnUnknownName) {
  MessageCatalog c;
  c.add("a", 1, "X", "Y");
  EXPECT_EQ(c.require("a"), 0u);
  EXPECT_THROW(c.require("missing"), std::out_of_range);
}

TEST(MessageCatalog, RejectsDuplicateName) {
  MessageCatalog c;
  c.add("a", 1, "X", "Y");
  EXPECT_THROW(c.add("a", 2, "X", "Y"), std::invalid_argument);
}

TEST(MessageCatalog, RejectsZeroWidth) {
  MessageCatalog c;
  EXPECT_THROW(c.add("z", 0, "X", "Y"), std::invalid_argument);
}

TEST(MessageCatalog, RejectsEmptyName) {
  MessageCatalog c;
  EXPECT_THROW(c.add("", 1, "X", "Y"), std::invalid_argument);
}

TEST(MessageCatalog, GetThrowsOnBadId) {
  MessageCatalog c;
  EXPECT_THROW(c.get(0), std::out_of_range);
}

TEST(MessageCatalog, SubgroupMustBeNarrowerThanParent) {
  MessageCatalog c;
  Message wide{"dmusiidata", 20, "DMU", "SIU",
               {Subgroup{"cputhreadid", 6}}};
  EXPECT_NO_THROW(c.add(wide));

  Message bad{"other", 8, "A", "B", {Subgroup{"full", 8}}};
  EXPECT_THROW(c.add(bad), std::invalid_argument);

  Message zero{"other2", 8, "A", "B", {Subgroup{"zero", 0}}};
  EXPECT_THROW(c.add(zero), std::invalid_argument);

  Message unnamed{"other3", 8, "A", "B", {Subgroup{"", 2}}};
  EXPECT_THROW(c.add(unnamed), std::invalid_argument);
}

TEST(MessageCatalog, TotalWidthSumsMembers) {
  MessageCatalog c;
  const MessageId a = c.add("a", 3, "X", "Y");
  const MessageId b = c.add("b", 5, "X", "Y");
  const MessageId d = c.add("d", 20, "X", "Y");
  EXPECT_EQ(c.total_width({a, b}), 8u);
  EXPECT_EQ(c.total_width({a, b, d}), 28u);
  EXPECT_EQ(c.total_width({}), 0u);
}

TEST(MessageCatalog, IterationVisitsAllMessagesInOrder) {
  MessageCatalog c;
  c.add("a", 1, "X", "Y");
  c.add("b", 2, "X", "Y");
  std::vector<std::string> names;
  for (const Message& m : c) names.push_back(m.name);
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace tracesel::flow
