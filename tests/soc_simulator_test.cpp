#include "soc/simulator.hpp"

#include <gtest/gtest.h>

#include <map>

#include "soc/t2_bugs.hpp"

namespace tracesel::soc {
namespace {

class SimulatorTest : public ::testing::Test {
 protected:
  T2Design design_;
  Scenario scenario_ = scenario1();
  SocSimulator sim_{design_, scenario_};
};

TEST_F(SimulatorTest, GoldenRunCompletesWithoutFailure) {
  SimOptions opt;
  opt.sessions = 3;
  const SimResult r = sim_.run(opt);
  EXPECT_FALSE(r.failed);
  EXPECT_TRUE(r.failure.empty());
  // Scenario 1 has 3 flows x 2 instances x (5+2+5 messages)/flow-pair:
  // per session 2*(5+2+5) = 24 messages.
  EXPECT_EQ(r.messages.size(), 3u * 24u);
}

TEST_F(SimulatorTest, DeterministicAcrossRuns) {
  SimOptions opt;
  opt.sessions = 2;
  opt.seed = 99;
  const SimResult a = sim_.run(opt);
  const SimResult b = sim_.run(opt);
  ASSERT_EQ(a.messages.size(), b.messages.size());
  for (std::size_t i = 0; i < a.messages.size(); ++i)
    EXPECT_EQ(a.messages[i], b.messages[i]);
}

TEST_F(SimulatorTest, DifferentSeedsChangeInterleaving) {
  SimOptions a, b;
  a.sessions = b.sessions = 2;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(sim_.run(a).messages, sim_.run(b).messages);
}

TEST_F(SimulatorTest, CyclesIncreaseMonotonically) {
  const SimResult r = sim_.run({});
  for (std::size_t i = 1; i < r.messages.size(); ++i)
    EXPECT_GT(r.messages[i].cycle, r.messages[i - 1].cycle);
}

TEST_F(SimulatorTest, GoldenValueIsDeterministicAndWidthMasked) {
  const auto v1 = SocSimulator::golden_value(3, 1, 0, 0, 6);
  const auto v2 = SocSimulator::golden_value(3, 1, 0, 0, 6);
  EXPECT_EQ(v1, v2);
  EXPECT_LE(v1, 63u);
  EXPECT_NE(SocSimulator::golden_value(3, 1, 0, 0, 20),
            SocSimulator::golden_value(3, 2, 0, 0, 20));
  EXPECT_NE(SocSimulator::golden_value(3, 1, 0, 0, 20),
            SocSimulator::golden_value(3, 1, 1, 0, 20));
}

TEST_F(SimulatorTest, MessageValuesMatchGoldenFunction) {
  SimOptions opt;
  opt.sessions = 1;
  const SimResult r = sim_.run(opt);
  std::map<std::pair<flow::MessageId, std::uint32_t>, std::uint32_t> occ;
  for (const TimedMessage& tm : r.messages) {
    const std::uint32_t occurrence = occ[{tm.msg.message, tm.msg.index}]++;
    const auto& m = design_.catalog().get(tm.msg.message);
    EXPECT_EQ(tm.value,
              SocSimulator::golden_value(tm.msg.message, tm.msg.index,
                                         tm.session, occurrence, m.width))
        << m.name;
  }
}

TEST_F(SimulatorTest, AtomicSchedulingRespected) {
  // While a flow instance sits in an atomic state no other instance may
  // emit. In scenario 1, PIOR's atomic "Return" is entered on siurtn and
  // left on dmuncud: those two must be adjacent for the same instance.
  SimOptions opt;
  opt.sessions = 4;
  const SimResult r = sim_.run(opt);
  for (std::size_t i = 0; i < r.messages.size(); ++i) {
    if (r.messages[i].msg.message == design_.siurtn) {
      ASSERT_LT(i + 1, r.messages.size());
      EXPECT_EQ(r.messages[i + 1].msg.message, design_.dmuncud);
      EXPECT_EQ(r.messages[i + 1].msg.index, r.messages[i].msg.index);
      EXPECT_EQ(r.messages[i + 1].session, r.messages[i].session);
    }
  }
}

TEST_F(SimulatorTest, CorruptBugChangesValueAndFails) {
  bug::Bug b = bug_by_id(design_, 8);  // corrupt ncupiow
  b.trigger_session = 0;
  sim_.inject(b);
  SimOptions opt;
  opt.sessions = 2;
  const SimResult buggy = sim_.run(opt);
  sim_.clear_bugs();
  const SimResult golden = sim_.run(opt);

  EXPECT_TRUE(buggy.failed);
  EXPECT_EQ(buggy.failure, "FAIL: Bad Trap");
  bool diff = false;
  ASSERT_EQ(buggy.messages.size(), golden.messages.size());
  for (std::size_t i = 0; i < buggy.messages.size(); ++i) {
    if (buggy.messages[i].msg.message == design_.ncupiow &&
        buggy.messages[i].value != golden.messages[i].value)
      diff = true;
  }
  EXPECT_TRUE(diff);
}

TEST_F(SimulatorTest, DropBugSuppressesMessageAndDownstream) {
  bug::Bug b = bug_by_id(design_, 21);  // drop dmusiidata
  b.trigger_session = 0;
  sim_.inject(b);
  SimOptions opt;
  opt.sessions = 1;
  const SimResult r = sim_.run(opt);
  EXPECT_TRUE(r.failed);
  for (const TimedMessage& tm : r.messages) {
    EXPECT_NE(tm.msg.message, design_.dmusiidata);
    EXPECT_NE(tm.msg.message, design_.siincu);        // downstream of drop
    EXPECT_NE(tm.msg.message, design_.mondoacknack);  // downstream of drop
  }
}

TEST_F(SimulatorTest, MisrouteBugChangesDestination) {
  bug::Bug b = bug_by_id(design_, 11);  // misroute piowcrd
  b.misroute_dest = "SIU";
  b.trigger_session = 0;
  sim_.inject(b);
  const SimResult r = sim_.run({});
  bool misrouted = false;
  for (const TimedMessage& tm : r.messages) {
    if (tm.msg.message == design_.piowcrd) {
      EXPECT_EQ(tm.dst, "SIU");
      misrouted = true;
    }
  }
  EXPECT_TRUE(misrouted);
}

TEST_F(SimulatorTest, WrongDecodePoisonsDownstreamMessages) {
  SocSimulator sim(design_, scenario2());
  bug::Bug b = bug_by_id(design_, 27);  // wrong decode ncuupreq
  b.trigger_session = 0;
  sim.inject(b);
  SimOptions opt;
  opt.sessions = 1;
  const SimResult buggy = sim.run(opt);
  sim.clear_bugs();
  const SimResult golden = sim.run(opt);
  ASSERT_EQ(buggy.messages.size(), golden.messages.size());
  bool upd_diff = false;
  for (std::size_t i = 0; i < buggy.messages.size(); ++i) {
    if (buggy.messages[i].msg.message == design_.ncuupd &&
        buggy.messages[i].value != golden.messages[i].value)
      upd_diff = true;
  }
  EXPECT_TRUE(upd_diff) << "wrong-decode must poison downstream ncuupd";
  EXPECT_TRUE(buggy.failed);
}

TEST_F(SimulatorTest, TriggerSessionDelaysManifestation) {
  bug::Bug b = bug_by_id(design_, 8);
  b.trigger_session = 2;
  sim_.inject(b);
  SimOptions opt;
  opt.sessions = 4;
  const SimResult r = sim_.run(opt);
  EXPECT_TRUE(r.failed);
  EXPECT_EQ(r.fail_session, 2u);
  // Sessions before the trigger behave golden.
  sim_.clear_bugs();
  const SimResult g = sim_.run(opt);
  for (std::size_t i = 0; i < r.messages.size(); ++i) {
    if (r.messages[i].session < 2)
      EXPECT_EQ(r.messages[i], g.messages[i]);
  }
}

TEST_F(SimulatorTest, MessagesToSymptomPositiveOnFailure) {
  bug::Bug b = bug_by_id(design_, 21);
  b.trigger_session = 1;
  sim_.inject(b);
  SimOptions opt;
  opt.sessions = 3;
  const SimResult r = sim_.run(opt);
  EXPECT_TRUE(r.failed);
  EXPECT_GT(r.messages_to_symptom, 0u);
  EXPECT_LE(r.messages_to_symptom, r.messages.size());
}

TEST_F(SimulatorTest, SignalStreamMatchesMonitorReconstruction) {
  const SimResult r = sim_.run({});
  Monitor monitor(design_.catalog());
  for (const SignalEvent& ev : r.signals) monitor.on_event(ev);
  EXPECT_EQ(monitor.messages(), r.messages);
}

}  // namespace
}  // namespace tracesel::soc
