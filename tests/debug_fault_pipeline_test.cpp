// The gracefully-degrading pipeline: fault injection on the capture
// channel must never crash the debug stack, and the answers it produces
// must be confidence-weighted rather than silently wrong.

#include <gtest/gtest.h>

#include <algorithm>

#include "debug/case_study.hpp"
#include "debug/observation.hpp"
#include "debug/workbench.hpp"
#include "debug/root_cause.hpp"
#include "soc/fault_injector.hpp"
#include "soc/t2_bugs.hpp"
#include "soc/t2_design.hpp"

namespace tracesel::debug {
namespace {

soc::TraceRecord record(flow::MessageId m, std::uint64_t value,
                        std::uint32_t session, const std::string& dst) {
  soc::TraceRecord r;
  r.msg = {m, 0};
  r.value = value;
  r.session = session;
  r.dst = dst;
  return r;
}

class ObserveCheckedTest : public ::testing::Test {
 protected:
  soc::T2Design design_;
};

TEST_F(ObserveCheckedTest, CleanCaptureMatchesPlainObserve) {
  const auto m = design_.mondoacknack;
  const std::string dst = design_.catalog().get(m).dest_ip;
  const std::vector<soc::TraceRecord> golden = {record(m, 1, 0, dst),
                                                record(m, 2, 1, dst)};
  const auto checked =
      observe_checked(design_.catalog(), {m}, golden, golden);
  ASSERT_TRUE(checked.ok());
  const Observation& obs = checked.value();
  EXPECT_EQ(obs.status.at(m), MsgStatus::kPresentCorrect);
  EXPECT_DOUBLE_EQ(obs.quality(), 1.0);
  EXPECT_DOUBLE_EQ(obs.confidence(m), 1.0);
  EXPECT_EQ(obs.invalid_records, 0u);
}

TEST_F(ObserveCheckedTest, GarbledRecordsAreScreenedNotTrusted) {
  const auto m = design_.mondoacknack;
  const std::string dst = design_.catalog().get(m).dest_ip;
  const std::vector<soc::TraceRecord> golden = {record(m, 1, 0, dst),
                                                record(m, 2, 1, dst)};
  // One valid record, one with a garbled destination label.
  const std::vector<soc::TraceRecord> buggy = {
      record(m, 1, 0, dst), record(m, 2, 1, "<garbled>")};
  const auto checked =
      observe_checked(design_.catalog(), {m}, golden, buggy);
  ASSERT_TRUE(checked.ok());
  const Observation& obs = checked.value();
  EXPECT_EQ(obs.invalid_records, 1u);
  EXPECT_EQ(obs.valid_records, 1u);
  EXPECT_LT(obs.confidence(m), 1.0);
  // The surviving record says "present and correct"; the lost one shows
  // as an absent stream — either way the status is backed by evidence.
  EXPECT_NE(obs.status.at(m), MsgStatus::kUnknown);
}

TEST_F(ObserveCheckedTest, SessionBeyondGoldenIsInvalid) {
  const auto m = design_.mondoacknack;
  const std::string dst = design_.catalog().get(m).dest_ip;
  const std::vector<soc::TraceRecord> golden = {record(m, 1, 0, dst)};
  const std::vector<soc::TraceRecord> buggy = {record(m, 1, 1523, dst)};
  const auto checked =
      observe_checked(design_.catalog(), {m}, golden, buggy);
  // 100% invalid > default 50% threshold: structurally unusable.
  ASSERT_FALSE(checked.ok());
  EXPECT_EQ(checked.error().code, util::ErrorCode::kUnusableCapture);

  // The lenient decode still answers, flagging the evidence as unknown.
  const Observation obs =
      observe_lenient(design_.catalog(), {m}, golden, buggy);
  EXPECT_EQ(obs.status.at(m), MsgStatus::kUnknown);
  EXPECT_DOUBLE_EQ(obs.confidence(m), 0.0);
}

TEST_F(ObserveCheckedTest, UnknownEvidenceNeverEliminatesCauses) {
  const auto m = design_.mondoacknack;
  Observation obs;
  obs.traced = {m};
  obs.status[m] = MsgStatus::kUnknown;
  const auto catalog = RootCauseCatalog::for_scenario(design_, 1);
  // Unknown evidence is no evidence: nothing can be pruned by it.
  EXPECT_EQ(prune(catalog, obs).size(), catalog.size());
  for (const ScoredCause& sc : rank(catalog, obs))
    EXPECT_DOUBLE_EQ(sc.score, 1.0);
}

class FaultPipelineTest : public ::testing::Test {
 protected:
  soc::T2Design design_;
};

TEST_F(FaultPipelineTest, CleanChannelRankedCausesMatchExactPrune) {
  const auto cases = soc::standard_case_studies();
  const auto r = run_case_study(design_, cases[0]);
  const auto catalog =
      RootCauseCatalog::for_scenario(design_, cases[0].scenario_id);
  const auto exact = prune(catalog, r.observation);
  std::vector<int> exact_ids, perfect_score_ids;
  for (const RootCause* c : exact) exact_ids.push_back(c->id);
  for (const ScoredCause& sc : r.ranked_causes) {
    if (sc.score >= 1.0) perfect_score_ids.push_back(sc.cause.id);
  }
  std::sort(exact_ids.begin(), exact_ids.end());
  std::sort(perfect_score_ids.begin(), perfect_score_ids.end());
  EXPECT_EQ(exact_ids, perfect_score_ids);
  EXPECT_EQ(r.capture_attempts, 1u);
  EXPECT_FALSE(r.capture_degraded);
  EXPECT_DOUBLE_EQ(r.robust_localization.confidence, 1.0);
}

TEST_F(FaultPipelineTest, AllCaseStudiesSurviveTenPercentDropCorrupt) {
  CaseStudyOptions opt;
  opt.faults.rate = 0.10;
  opt.faults.kinds = {soc::FaultKind::kDrop, soc::FaultKind::kCorrupt};
  opt.faults.seed = 99;
  opt.capture_retries = 2;
  for (const auto& cs : soc::standard_case_studies()) {
    SCOPED_TRACE("case study " + std::to_string(cs.id));
    const auto r = run_case_study(design_, cs, opt);  // must not throw
    // Confidence-weighted verdict is always present and sane.
    ASSERT_FALSE(r.ranked_causes.empty());
    for (const ScoredCause& sc : r.ranked_causes) {
      EXPECT_GE(sc.score, 0.0);
      EXPECT_LE(sc.score, 1.0);
    }
    EXPECT_GE(r.robust_localization.confidence, 0.0);
    EXPECT_LE(r.robust_localization.confidence, 1.0);
    EXPECT_GE(r.localization.fraction, 0.0);
    EXPECT_LE(r.localization.fraction, 1.0);
    EXPECT_GT(r.fault_stats.total_injected(), 0u);
  }
}

TEST_F(FaultPipelineTest, UnusableCapturesRetryWithFreshSeeds) {
  CaseStudyOptions opt;
  opt.faults.rate = 0.9;
  opt.faults.kinds = {soc::FaultKind::kCorrupt};
  opt.faults.seed = 5;
  opt.capture_retries = 3;
  // Make nearly any garbling unacceptable so retries must happen.
  opt.unusable_threshold = 0.01;
  const auto cases = soc::standard_case_studies();
  const auto r = run_case_study(design_, cases[0], opt);  // must not throw
  EXPECT_GT(r.capture_attempts, 1u);
  // With a 90% corrupt rate every attempt stays unusable: the pipeline
  // degrades to the lenient decode instead of crashing.
  EXPECT_TRUE(r.capture_degraded);
  EXPECT_EQ(r.capture_attempts, 4u);  // 1 + 3 retries
  ASSERT_FALSE(r.ranked_causes.empty());
  EXPECT_LT(r.observation.quality(), 1.0);
}

TEST_F(FaultPipelineTest, RecaptureBackoffIsSeededAndDeterministic) {
  // Same forced-retry setup as above: every recapture must have waited a
  // recorded delay drawn from the shared util::Backoff schedule.
  CaseStudyOptions opt;
  opt.faults.rate = 0.9;
  opt.faults.kinds = {soc::FaultKind::kCorrupt};
  opt.faults.seed = 5;
  opt.capture_retries = 3;
  opt.unusable_threshold = 0.01;
  const auto cases = soc::standard_case_studies();
  const auto r = run_case_study(design_, cases[0], opt);
  ASSERT_EQ(r.capture_attempts, 4u);
  ASSERT_EQ(r.recapture_delays_ms.size(), 3u);  // one delay per retry

  // The recorded delays are exactly the WorkbenchConfig default policy
  // replayed on the run-seed stream — deterministic, jittered, growing.
  WorkbenchConfig defaults;
  util::Backoff expected(defaults.recapture_backoff, opt.seed);
  for (const std::uint64_t got : r.recapture_delays_ms) {
    EXPECT_EQ(got, static_cast<std::uint64_t>(expected.next().count()));
    EXPECT_LE(got, defaults.recapture_backoff.cap_ms);
  }

  // Bit-for-bit replay across runs.
  const auto again = run_case_study(design_, cases[0], opt);
  EXPECT_EQ(again.recapture_delays_ms, r.recapture_delays_ms);
}

TEST_F(FaultPipelineTest, DegradationIsMonotonicInEvidenceQuality) {
  // More faults => (weakly) less pruning confidence on the same case.
  const auto cases = soc::standard_case_studies();
  CaseStudyOptions clean;
  const auto r_clean = run_case_study(design_, cases[1], clean);

  CaseStudyOptions noisy;
  noisy.faults.rate = 0.3;
  noisy.faults.kinds = {soc::FaultKind::kDrop, soc::FaultKind::kCorrupt};
  const auto r_noisy = run_case_study(design_, cases[1], noisy);

  // The noisy capture cannot yield a *stronger* (smaller or equal is fine)
  // perfect-score verdict backed by less evidence than the clean one; what
  // matters for robustness is that both complete and the noisy one keeps
  // its candidate set non-empty.
  ASSERT_FALSE(r_clean.ranked_causes.empty());
  ASSERT_FALSE(r_noisy.ranked_causes.empty());
  EXPECT_LE(r_noisy.robust_localization.confidence,
            r_clean.robust_localization.confidence + 1e-12);
}

}  // namespace
}  // namespace tracesel::debug
