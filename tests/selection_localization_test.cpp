#include "selection/localization.hpp"

#include <gtest/gtest.h>

#include "flow/execution.hpp"
#include "testutil.hpp"

namespace tracesel::selection {
namespace {

using flow::IndexedMessage;
using flow::MessageId;
using test::CoherenceFixture;

class LocalizationTest : public ::testing::Test {
 protected:
  CoherenceFixture fx_;
  flow::InterleavedFlow u_ = fx_.two_instance_interleaving();
  std::vector<MessageId> selected_{fx_.reqE, fx_.gntE};
};

TEST_F(LocalizationTest, PaperObservationLocalizesToOnePath) {
  const std::vector<IndexedMessage> obs{
      {fx_.reqE, 1}, {fx_.gntE, 1}, {fx_.reqE, 2}};
  const auto r = localize(u_, selected_, obs);
  EXPECT_DOUBLE_EQ(r.consistent_paths, 1.0);
  EXPECT_DOUBLE_EQ(r.total_paths, u_.count_paths());
  EXPECT_DOUBLE_EQ(r.fraction, 1.0 / u_.count_paths());
  EXPECT_LT(r.fraction, 1.0);
}

TEST_F(LocalizationTest, EmptyObservationDoesNotLocalize) {
  const auto r = localize(u_, selected_, {});
  EXPECT_DOUBLE_EQ(r.fraction, 1.0);
}

TEST_F(LocalizationTest, LongerObservationNeverWidens) {
  // Adding observed messages can only shrink the consistent set.
  const std::vector<IndexedMessage> o1{{fx_.reqE, 1}};
  const std::vector<IndexedMessage> o2{{fx_.reqE, 1}, {fx_.gntE, 1}};
  const std::vector<IndexedMessage> o3{
      {fx_.reqE, 1}, {fx_.gntE, 1}, {fx_.reqE, 2}};
  const double f1 = localize(u_, selected_, o1).fraction;
  const double f2 = localize(u_, selected_, o2).fraction;
  const double f3 = localize(u_, selected_, o3).fraction;
  EXPECT_GE(f1, f2);
  EXPECT_GE(f2, f3);
}

TEST_F(LocalizationTest, RicherSelectionLocalizesAtLeastAsWell) {
  // Observing a true execution through more messages cannot leave more
  // consistent paths: compare {ReqE} against {ReqE, GntE} projections of
  // the same executions.
  util::Rng rng{11};
  const std::vector<MessageId> narrow{fx_.reqE};
  for (int i = 0; i < 20; ++i) {
    const auto e = flow::random_execution(u_, rng);
    const auto obs_narrow = flow::project(e.trace(), narrow);
    const auto obs_rich = flow::project(e.trace(), selected_);
    const double f_narrow = localize(u_, narrow, obs_narrow).fraction;
    const double f_rich = localize(u_, selected_, obs_rich).fraction;
    EXPECT_LE(f_rich, f_narrow + 1e-12);
  }
}

TEST_F(LocalizationTest, TrueExecutionAlwaysConsistent) {
  util::Rng rng{13};
  for (int i = 0; i < 20; ++i) {
    const auto e = flow::random_execution(u_, rng);
    const auto obs = flow::project(e.trace(), selected_);
    const auto r = localize(u_, selected_, obs);
    EXPECT_GE(r.consistent_paths, 1.0);
  }
}

TEST_F(LocalizationTest, FractionIsBetweenZeroAndOne) {
  util::Rng rng{17};
  for (int i = 0; i < 20; ++i) {
    const auto e = flow::random_execution(u_, rng);
    const auto obs = flow::project(e.trace(), selected_);
    const auto r = localize(u_, selected_, obs);
    EXPECT_GE(r.fraction, 0.0);
    EXPECT_LE(r.fraction, 1.0);
  }
}

}  // namespace
}  // namespace tracesel::selection
