#include <gtest/gtest.h>

#include "debug/case_study.hpp"
#include "soc/t2_bugs.hpp"

namespace tracesel::debug {
namespace {

class DmaScenarioTest : public ::testing::Test {
 protected:
  soc::T2Design design_;
};

TEST_F(DmaScenarioTest, ScenarioFourInterleavingBuilds) {
  const auto s = soc::scenario4_dma();
  EXPECT_EQ(s.flow_names,
            (std::vector<std::string>{"DMAR", "DMAW", "Mon"}));
  const auto u = soc::build_interleaving(design_, s);
  EXPECT_GT(u.num_nodes(), 0u);
  EXPECT_FALSE(u.stop_nodes().empty());
}

TEST_F(DmaScenarioTest, ExtensionBugsResolve) {
  const auto bugs = soc::extension_bugs(design_);
  EXPECT_EQ(bugs.size(), 3u);
  EXPECT_NO_THROW(soc::extension_bug_by_id(design_, 41));
  EXPECT_THROW(soc::extension_bug_by_id(design_, 1), std::out_of_range);
}

TEST_F(DmaScenarioTest, ExtensionCaseStudiesRunEndToEnd) {
  for (const auto& cs : soc::extension_case_studies()) {
    const auto r = run_case_study(design_, cs);
    EXPECT_TRUE(r.buggy.failed) << "case " << cs.id;
    EXPECT_FALSE(r.report.final_causes.empty()) << "case " << cs.id;
    EXPECT_LT(r.report.final_causes.size(), r.report.catalog_size)
        << "case " << cs.id;
  }
}

TEST_F(DmaScenarioTest, LostDmaCompletionLocalizes) {
  // Case 6: dmardone dropped in the SIU ordering queue. The narrow (3-bit)
  // dmardone message is cheap to trace, so its absence is decisive.
  const auto cs = soc::extension_case_studies()[0];
  const auto r = run_case_study(design_, cs);
  EXPECT_EQ(r.buggy.failure, "HANG: DMA read never completes");
  bool true_cause = false;
  for (const auto& c : r.report.final_causes)
    if (c.id == 1) true_cause = true;
  EXPECT_TRUE(true_cause);
  EXPECT_EQ(r.observation.status.at(design_.dmardone), MsgStatus::kAbsent);
}

TEST_F(DmaScenarioTest, CorruptDmaDataLocalizes) {
  // Case 7: MCU returns corrupt DMA data. mcurdata (16b) is traced through
  // its rdtag subgroup if not at full width; either way the corruption is
  // observed when the mask touches the traced bits.
  const auto cs = soc::extension_case_studies()[1];
  const auto r = run_case_study(design_, cs);
  EXPECT_TRUE(r.buggy.failed);
  bool true_cause = false;
  for (const auto& c : r.report.final_causes)
    if (c.id == 2) true_cause = true;
  EXPECT_TRUE(true_cause) << "true cause pruned away";
}

TEST_F(DmaScenarioTest, Section57InterplayNarrative) {
  // The Sec. 5.7 nugget: interrupts are generated only when prior DMA
  // reads are done. In case 6, Mondo traffic continues (the model keeps
  // flows independent) but the DMA evidence alone isolates the SIU queue.
  const auto cs = soc::extension_case_studies()[0];
  const auto r = run_case_study(design_, cs);
  // The Mon flow stays healthy in the trace diff.
  for (const flow::MessageId m :
       {design_.reqtot, design_.grant, design_.siincu}) {
    const auto it = r.observation.status.find(m);
    if (it != r.observation.status.end())
      EXPECT_EQ(it->second, MsgStatus::kPresentCorrect);
  }
}

}  // namespace
}  // namespace tracesel::debug
