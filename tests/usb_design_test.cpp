#include "netlist/usb_design.hpp"

#include <gtest/gtest.h>

#include "selection/selector.hpp"

namespace tracesel::netlist {
namespace {

class UsbDesignTest : public ::testing::Test {
 protected:
  UsbDesign usb_;
};

TEST_F(UsbDesignTest, NetlistValidates) {
  EXPECT_NO_THROW(usb_.netlist().validate_and_topo_order());
  EXPECT_GT(usb_.netlist().flops().size(), 80u);
  EXPECT_EQ(usb_.netlist().inputs().size(), 5u);
}

TEST_F(UsbDesignTest, TenInterfaceSignalsInTable4Order) {
  const auto& signals = usb_.interface_signals();
  ASSERT_EQ(signals.size(), 10u);
  EXPECT_EQ(signals[0].name, "rx_data");
  EXPECT_EQ(signals[9].name, "data_pid_sel");
  // Widths follow the modeled interface.
  EXPECT_EQ(signals[0].flops.size(), 8u);
  EXPECT_EQ(usb_.signal("token_pid_sel").flops.size(), 2u);
  EXPECT_EQ(usb_.signal("rx_valid").flops.size(), 1u);
}

TEST_F(UsbDesignTest, SignalFlopsExistAndAreFlops) {
  for (const auto& sg : usb_.interface_signals()) {
    for (NetId f : sg.flops) {
      EXPECT_EQ(usb_.netlist().gate(f).type, GateType::kFlop) << sg.name;
    }
  }
}

TEST_F(UsbDesignTest, SignalLookupThrowsOnUnknown) {
  EXPECT_THROW(usb_.signal("nope"), std::out_of_range);
}

TEST_F(UsbDesignTest, MessageWidthsMatchSignalGroups) {
  for (const auto& sg : usb_.interface_signals()) {
    const auto id = usb_.message_of(sg.name);
    EXPECT_EQ(usb_.catalog().get(id).width, sg.flops.size()) << sg.name;
  }
}

TEST_F(UsbDesignTest, FlowsCoverAllInterfaceMessages) {
  // Every Table 4 signal appears as a message of exactly one flow.
  for (const auto& sg : usb_.interface_signals()) {
    const auto id = usb_.message_of(sg.name);
    const bool in_rx = usb_.rx_flow().uses_message(id);
    const bool in_tx = usb_.tx_flow().uses_message(id);
    EXPECT_TRUE(in_rx != in_tx) << sg.name;
  }
}

TEST_F(UsbDesignTest, InterleavingBuilds) {
  const auto u = usb_.interleaving(2);
  EXPECT_GT(u.num_nodes(), 0u);
  EXPECT_FALSE(u.stop_nodes().empty());
}

TEST_F(UsbDesignTest, InfoGainSelectsAllInterfaceMessages) {
  // Sec. 1: "our method selects 100% of the messages required for debug"
  // on the USB design — all ten interface messages fit a 32-bit buffer.
  const auto u = usb_.interleaving(2);
  const selection::MessageSelector selector(usb_.catalog(), u);
  selection::SelectorConfig cfg;
  cfg.buffer_width = 32;
  const auto r = selector.select(cfg);
  EXPECT_EQ(r.combination.messages.size(), 10u);
  EXPECT_LE(r.combination.width, 32u);
  EXPECT_GT(r.coverage, 0.9);
}

TEST_F(UsbDesignTest, SimulatorRunsOnUsbNetlist) {
  Simulator sim(usb_.netlist());
  std::vector<bool> inputs(usb_.netlist().inputs().size(), true);
  for (int c = 0; c < 32; ++c) EXPECT_NO_THROW(sim.step(inputs));
  EXPECT_EQ(sim.cycle(), 32u);
}

TEST(SignalCoverageOf, ClassifiesSelections) {
  SignalGroup sg{"sig", "mod", {3, 4, 5}};
  EXPECT_EQ(coverage_of(sg, {3, 4, 5}), SignalCoverage::kFull);
  EXPECT_EQ(coverage_of(sg, {3, 9}), SignalCoverage::kPartial);
  EXPECT_EQ(coverage_of(sg, {9, 10}), SignalCoverage::kNone);
  EXPECT_EQ(coverage_of(sg, {}), SignalCoverage::kNone);
}

}  // namespace
}  // namespace tracesel::netlist
