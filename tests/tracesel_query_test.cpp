// The query API (PR 7): JobRequest's canonical wire format and hash,
// ArtifactStore's caching protocol, and the property the daemon's whole
// value rests on — a cache hit is bit-identical to a cold compute.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "debug/serialize.hpp"
#include "tracesel/artifact_store.hpp"
#include "tracesel/job_request.hpp"
#include "tracesel/query_core.hpp"
#include "util/cancel.hpp"

namespace tracesel {
namespace {

JobRequest fig2_request() {
  JobRequest req;
  req.spec = std::string(TRACESEL_DATA_DIR) + "/fig2.flow";
  req.instances = 2;
  req.buffer_width = 2;
  return req;
}

// --- JobRequest -------------------------------------------------------

TEST(JobRequest, SerializeParseRoundTrip) {
  JobRequest req;
  req.spec = "some/path.flow";
  req.spec_text = "flow F {\n  # inline, with newlines\n}\nend\n";
  req.instances = 3;
  req.symmetry_reduction = false;
  req.max_nodes = 12345;
  req.kind = JobRequest::Kind::kSelectFlowConstraint;
  req.buffer_width = 24;
  req.mode = selection::SearchMode::kKnapsack;
  req.packing = false;
  req.max_combinations = 999;
  req.mem_budget_mb = 77;
  req.jobs = 4;
  req.deadline_ms = 1500;

  const auto parsed = parse_job_request(serialize_job_request(req));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const JobRequest& p = parsed.value();
  EXPECT_EQ(p.spec, req.spec);
  EXPECT_EQ(p.spec_text, req.spec_text);
  EXPECT_EQ(p.instances, req.instances);
  EXPECT_EQ(p.symmetry_reduction, req.symmetry_reduction);
  EXPECT_EQ(p.max_nodes, req.max_nodes);
  EXPECT_EQ(p.kind, req.kind);
  EXPECT_EQ(p.buffer_width, req.buffer_width);
  EXPECT_EQ(p.mode, req.mode);
  EXPECT_EQ(p.packing, req.packing);
  EXPECT_EQ(p.max_combinations, req.max_combinations);
  EXPECT_EQ(p.mem_budget_mb, req.mem_budget_mb);
  EXPECT_EQ(p.jobs, req.jobs);
  EXPECT_EQ(p.deadline_ms, req.deadline_ms);
  EXPECT_TRUE(p.same_computation(req));
}

TEST(JobRequest, CanonicalHashIgnoresRuntimeKnobsOnly) {
  const std::uint64_t source = 0x1234abcdu;
  JobRequest a;
  const std::uint64_t base = a.canonical_hash(source);

  // Runtime knobs: identical answers at any worker count or deadline, so
  // they must not fragment the cache.
  JobRequest b = a;
  b.jobs = 16;
  b.deadline_ms = 10;
  EXPECT_EQ(b.canonical_hash(source), base);
  EXPECT_TRUE(b.same_computation(a));

  // Every structural knob must move the key.
  JobRequest c = a;
  c.buffer_width = 16;
  EXPECT_NE(c.canonical_hash(source), base);
  EXPECT_FALSE(c.same_computation(a));
  c = a;
  c.instances = 3;
  EXPECT_NE(c.canonical_hash(source), base);
  c = a;
  c.mode = selection::SearchMode::kGreedy;
  EXPECT_NE(c.canonical_hash(source), base);
  c = a;
  c.packing = false;
  EXPECT_NE(c.canonical_hash(source), base);
  c = a;
  c.kind = JobRequest::Kind::kSelectFlowConstraint;
  EXPECT_NE(c.canonical_hash(source), base);
  EXPECT_NE(a.canonical_hash(source ^ 1), base);
}

TEST(JobRequest, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_job_request("not a job request").ok());
  JobRequest req;  // neither spec nor spec_text
  req.spec.clear();
  EXPECT_FALSE(parse_job_request(serialize_job_request(req)).ok());
}

// --- ArtifactStore ----------------------------------------------------

std::shared_ptr<const selection::SelectionResult> dummy_result(double gain) {
  auto r = std::make_shared<selection::SelectionResult>();
  r->gain = gain;
  return r;
}

TEST(ArtifactStore, CachesResultsByKeyWithCollisionGuard) {
  ArtifactStore store;
  JobRequest req;
  bool hit = true;
  auto first = store.result(42, req, [] { return dummy_result(1.0); }, &hit);
  ASSERT_TRUE(first);
  EXPECT_FALSE(hit);
  auto second = store.result(
      42, req, [] { return dummy_result(2.0); }, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(second.get(), first.get());

  // Same key, different computation: a hash collision must be served as a
  // miss (fresh private build), never as the other job's answer.
  JobRequest other;
  other.buffer_width = 8;
  auto collided = store.result(
      42, other, [] { return dummy_result(3.0); }, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(collided->gain, 3.0);
  // And the original entry is untouched.
  auto again = store.result(42, req, [] { return dummy_result(4.0); }, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(again.get(), first.get());

  const auto s = store.stats();
  EXPECT_EQ(s.result_hits, 2u);
  EXPECT_EQ(s.result_misses, 2u);
  EXPECT_EQ(s.collisions, 1u);
  EXPECT_EQ(s.result_entries, 1u);
}

TEST(ArtifactStore, NullptrAndThrowingBuildersAreNotCached) {
  ArtifactStore store;
  JobRequest req;
  bool hit = true;
  // nullptr = "do not cache" (a partial result).
  auto partial = store.result(7, req, [] { return nullptr; }, &hit);
  EXPECT_EQ(partial, nullptr);
  EXPECT_FALSE(hit);
  // A throwing builder surfaces to its caller and leaves the key vacant.
  EXPECT_THROW(store.result(7, req,
                            []() -> std::shared_ptr<
                                     const selection::SelectionResult> {
                              throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  // The key still works afterwards.
  auto good = store.result(7, req, [] { return dummy_result(5.0); }, &hit);
  ASSERT_TRUE(good);
  EXPECT_FALSE(hit);
  EXPECT_EQ(store.stats().result_entries, 1u);
}

TEST(ArtifactStore, InFlightRequestersShareOneBuild) {
  ArtifactStore store;
  JobRequest req;
  std::atomic<int> builds{0};
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const selection::SelectionResult>> got(8);
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&, i] {
      got[i] = store.result(99, req, [&] {
        ++builds;
        return dummy_result(1.0);
      });
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(builds.load(), 1);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(got[i].get(), got[0].get());
}

// --- QueryCore through the store -------------------------------------

/// The acceptance property: a warm run answers from the cache, and its
/// serialized report is byte-identical to the cold compute's.
void expect_cached_run_bit_identical(const JobRequest& req) {
  ArtifactStore store;
  const auto cold = QueryCore::run(req, &store, {});
  ASSERT_TRUE(cold.ok()) << cold.error().to_string();
  EXPECT_FALSE(cold.value().result_cache_hit);

  const auto warm = QueryCore::run(req, &store, {});
  ASSERT_TRUE(warm.ok()) << warm.error().to_string();
  EXPECT_TRUE(warm.value().result_cache_hit);
  EXPECT_TRUE(warm.value().workload_cache_hit);

  // And a storeless (uncached) compute agrees, byte for byte.
  const auto direct = QueryCore::run(req, nullptr, {});
  ASSERT_TRUE(direct.ok());

  const auto dump = [](const QueryCore::Outcome& o) {
    return selection::to_json(*o.workload->catalog, *o.result).dump(2);
  };
  EXPECT_EQ(dump(cold.value()), dump(warm.value()));
  EXPECT_EQ(dump(cold.value()), dump(direct.value()));

  const auto s = store.stats();
  EXPECT_EQ(s.result_hits, 1u);
  EXPECT_EQ(s.result_misses, 1u);
}

TEST(QueryCore, CacheHitBitIdenticalFig2) {
  expect_cached_run_bit_identical(fig2_request());
}

TEST(QueryCore, CacheHitBitIdenticalT2Builtin) {
  JobRequest req;
  req.spec = "t2";
  req.instances = 1;  // t2: scenario id
  expect_cached_run_bit_identical(req);
}

TEST(QueryCore, CacheHitBitIdenticalUsbBuiltin) {
  JobRequest req;
  req.spec = "usb";
  req.instances = 2;
  expect_cached_run_bit_identical(req);
}

TEST(QueryCore, JobsKnobSharesTheCacheEntry) {
  // jobs is a runtime knob: a 4-worker run must answer a 1-worker repeat
  // from the cache (the engine is bit-identical across worker counts).
  ArtifactStore store;
  JobRequest req = fig2_request();
  req.jobs = 4;
  const auto cold = QueryCore::run(req, &store, {});
  ASSERT_TRUE(cold.ok());
  req.jobs = 1;
  const auto warm = QueryCore::run(req, &store, {});
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.value().result_cache_hit);
}

TEST(QueryCore, MissingSpecFileIsATypedError) {
  JobRequest req;
  req.spec = "/no/such/spec.flow";
  const auto r = QueryCore::run(req, nullptr, {});
  ASSERT_FALSE(r.ok());
}

TEST(QueryCore, CancelledBuildDoesNotPoisonTheStore) {
  ArtifactStore store;
  const JobRequest req = fig2_request();
  auto cancelled = util::CancelToken::make();
  cancelled.cancel();
  EXPECT_THROW(
      { auto r = QueryCore::run(req, &store, cancelled); },
      util::CancelledError);
  EXPECT_EQ(store.stats().workload_entries, 0u);
  EXPECT_EQ(store.stats().result_entries, 0u);
  // The same request afterwards computes cleanly.
  const auto ok = QueryCore::run(req, &store, {});
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(ok.value().result_cache_hit);
}

}  // namespace
}  // namespace tracesel
