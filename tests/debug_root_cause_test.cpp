#include "debug/root_cause.hpp"

#include <gtest/gtest.h>

#include "soc/scenario.hpp"

namespace tracesel::debug {
namespace {

class RootCauseTest : public ::testing::Test {
 protected:
  soc::T2Design design_;
};

TEST_F(RootCauseTest, CatalogSizesMatchTable1) {
  EXPECT_EQ(RootCauseCatalog::for_scenario(design_, 1).size(), 9u);
  EXPECT_EQ(RootCauseCatalog::for_scenario(design_, 2).size(), 8u);
  EXPECT_EQ(RootCauseCatalog::for_scenario(design_, 3).size(), 9u);
  // Scenario 4 is the DMA extension (8 causes, not part of Table 1).
  EXPECT_EQ(RootCauseCatalog::for_scenario(design_, 4).size(), 8u);
  EXPECT_THROW(RootCauseCatalog::for_scenario(design_, 5), std::out_of_range);
}

TEST_F(RootCauseTest, CauseIdsUniqueWithinCatalog) {
  for (int sc = 1; sc <= 4; ++sc) {
    const auto catalog = RootCauseCatalog::for_scenario(design_, sc);
    std::vector<int> ids;
    for (const auto& c : catalog.causes()) ids.push_back(c.id);
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end()) << sc;
  }
}

TEST_F(RootCauseTest, ByIdFindsAndThrows) {
  const auto catalog = RootCauseCatalog::for_scenario(design_, 1);
  EXPECT_EQ(catalog.by_id(3).description,
            "Non-generation of Mondo interrupt by DMU");
  EXPECT_THROW(catalog.by_id(99), std::out_of_range);
}

TEST_F(RootCauseTest, PredictedDefaultsToCorrect) {
  const auto catalog = RootCauseCatalog::for_scenario(design_, 1);
  const RootCause& c3 = catalog.by_id(3);
  EXPECT_EQ(c3.predicted(design_.dmusiidata), MsgStatus::kAbsent);
  EXPECT_EQ(c3.predicted(design_.ncupior), MsgStatus::kPresentCorrect);
}

TEST_F(RootCauseTest, SuspectPairsDeriveFromPredictions) {
  const auto catalog = RootCauseCatalog::for_scenario(design_, 1);
  const RootCause& c3 = catalog.by_id(3);
  const auto pairs = c3.suspect_pairs(design_.catalog());
  // dmusiidata: DMU->SIU, siincu: SIU->NCU, mondoacknack: NCU->DMU.
  EXPECT_EQ(pairs.size(), 3u);
}

TEST_F(RootCauseTest, ConsistencyChecksOnlyTracedMessages) {
  const auto catalog = RootCauseCatalog::for_scenario(design_, 1);
  const RootCause& c3 = catalog.by_id(3);  // predicts dmusiidata absent

  Observation obs;
  obs.traced = {design_.siincu};
  obs.status[design_.siincu] = MsgStatus::kAbsent;
  // dmusiidata untraced: prediction unchecked; siincu matches.
  EXPECT_TRUE(consistent(c3, obs));

  obs.traced.push_back(design_.dmusiidata);
  std::sort(obs.traced.begin(), obs.traced.end());
  obs.status[design_.dmusiidata] = MsgStatus::kPresentCorrect;
  // Now dmusiidata was observed healthy but c3 predicts absent.
  EXPECT_FALSE(consistent(c3, obs));
}

TEST_F(RootCauseTest, PaperCaseStudyPruning) {
  // Sec. 5.7: the observed signature of the dropped Mondo interrupt
  // (dmusiidata, siincu, mondoacknack all absent; everything else clean)
  // leaves exactly cause 3 of 9 -> 88.89% pruned.
  const auto catalog = RootCauseCatalog::for_scenario(design_, 1);
  Observation obs;
  for (flow::MessageId m :
       {design_.reqtot, design_.grant, design_.dmusiidata, design_.siincu,
        design_.mondoacknack, design_.piowcrd, design_.piordcrd,
        design_.dmurd}) {
    obs.traced.push_back(m);
    obs.status[m] = MsgStatus::kPresentCorrect;
  }
  std::sort(obs.traced.begin(), obs.traced.end());
  obs.status[design_.dmusiidata] = MsgStatus::kAbsent;
  obs.status[design_.siincu] = MsgStatus::kAbsent;
  obs.status[design_.mondoacknack] = MsgStatus::kAbsent;

  const auto plausible = prune(catalog, obs);
  ASSERT_EQ(plausible.size(), 1u);
  EXPECT_EQ(plausible[0]->id, 3);
}

TEST_F(RootCauseTest, WithoutDmusiidataEvidenceTwoCausesRemain) {
  // The same failure seen through a selection that does NOT trace
  // dmusiidata cannot split "bypass queue" from "non-generation" —
  // the packing story of Sec. 5.7.
  const auto catalog = RootCauseCatalog::for_scenario(design_, 1);
  Observation obs;
  for (flow::MessageId m :
       {design_.reqtot, design_.grant, design_.siincu, design_.mondoacknack,
        design_.piowcrd, design_.piordcrd, design_.dmurd}) {
    obs.traced.push_back(m);
    obs.status[m] = MsgStatus::kPresentCorrect;
  }
  std::sort(obs.traced.begin(), obs.traced.end());
  obs.status[design_.siincu] = MsgStatus::kAbsent;
  obs.status[design_.mondoacknack] = MsgStatus::kAbsent;

  const auto plausible = prune(catalog, obs);
  ASSERT_EQ(plausible.size(), 2u);
  std::vector<int> ids{plausible[0]->id, plausible[1]->id};
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<int>{1, 3}));
}

TEST_F(RootCauseTest, EmptyObservationKeepsAllCauses) {
  const auto catalog = RootCauseCatalog::for_scenario(design_, 2);
  EXPECT_EQ(prune(catalog, Observation{}).size(), catalog.size());
}

TEST_F(RootCauseTest, EmptyCatalogRejected) {
  EXPECT_THROW(RootCauseCatalog({}), std::invalid_argument);
}

TEST_F(RootCauseTest, EveryCauseHasDescriptionAndIp) {
  for (int sc = 1; sc <= 3; ++sc) {
    const auto catalog = RootCauseCatalog::for_scenario(design_, sc);
    for (const auto& c : catalog.causes()) {
      EXPECT_FALSE(c.description.empty());
      EXPECT_FALSE(c.implication.empty());
      EXPECT_FALSE(c.ip.empty());
      EXPECT_FALSE(c.predictions.empty());
    }
  }
}

TEST_F(RootCauseTest, CausePredictionsReferenceScenarioMessages) {
  for (int sc = 1; sc <= 3; ++sc) {
    const auto scenario = soc::scenario_by_id(sc);
    const auto flows = soc::scenario_flows(design_, scenario);
    const auto catalog = RootCauseCatalog::for_scenario(design_, sc);
    for (const auto& c : catalog.causes()) {
      for (const auto& [m, status] : c.predictions) {
        bool in_scenario = false;
        for (const auto* f : flows) {
          if (f->uses_message(m)) in_scenario = true;
        }
        EXPECT_TRUE(in_scenario)
            << "scenario " << sc << " cause " << c.id << " predicts a "
            << "message outside its flows";
      }
    }
  }
}

}  // namespace
}  // namespace tracesel::debug
