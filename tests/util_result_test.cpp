#include "util/result.hpp"

#include <gtest/gtest.h>

#include <string>

namespace tracesel::util {
namespace {

TEST(Result, HoldsValue) {
  const Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(Result, HoldsError) {
  const Result<int> r = Error{ErrorCode::kUnusableCapture, "too noisy"};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kUnusableCapture);
  EXPECT_EQ(r.error().message, "too noisy");
  EXPECT_EQ(r.value_or(-1), -1);
  EXPECT_EQ(r.error().to_string(), "unusable-capture: too noisy");
}

TEST(Result, ValueOnErrorThrowsLogicError) {
  const Result<int> r = Error{ErrorCode::kInternal, "bug"};
  EXPECT_THROW(r.value(), std::logic_error);
  const Result<int> v = 1;
  EXPECT_THROW(v.error(), std::logic_error);
}

TEST(Result, MapTransformsValueAndForwardsError) {
  const Result<int> v = 10;
  const auto doubled = v.map([](int x) { return x * 2; });
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(doubled.value(), 20);

  const Result<int> e = Error{ErrorCode::kParse, "bad"};
  const auto still_error = e.map([](int x) { return x * 2; });
  ASSERT_FALSE(still_error.ok());
  EXPECT_EQ(still_error.error().code, ErrorCode::kParse);
}

TEST(Result, AndThenChainsFallibleSteps) {
  const auto parse_positive = [](int x) -> Result<std::string> {
    if (x <= 0) return Error{ErrorCode::kInvalidArgument, "non-positive"};
    return std::to_string(x);
  };
  const Result<int> good = 7;
  const auto chained = good.and_then(parse_positive);
  ASSERT_TRUE(chained.ok());
  EXPECT_EQ(chained.value(), "7");

  const Result<int> zero = 0;
  EXPECT_FALSE(zero.and_then(parse_positive).ok());
}

TEST(Result, FactoryHelpers) {
  const auto ok = Result<int>::ok(5);
  EXPECT_TRUE(ok.ok());
  const auto err = Result<int>::err(ErrorCode::kCorruptCapture, "x");
  EXPECT_FALSE(err.ok());
}

TEST(Status, OkAndError) {
  const Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_THROW(ok.error(), std::logic_error);

  const Status bad(ErrorCode::kExhaustedRetries, "gave up");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kExhaustedRetries);
}

TEST(ErrorCode, AllCodesHaveNames) {
  for (const ErrorCode c :
       {ErrorCode::kInvalidArgument, ErrorCode::kParse,
        ErrorCode::kCorruptCapture, ErrorCode::kUnusableCapture,
        ErrorCode::kExhaustedRetries, ErrorCode::kInternal}) {
    EXPECT_STRNE(to_string(c), "?");
  }
}

}  // namespace
}  // namespace tracesel::util
