#include "debug/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace tracesel::debug {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  static const CaseStudyResult& result() {
    static const soc::T2Design design;
    static const CaseStudyResult r =
        run_case_study(design, soc::standard_case_studies()[0]);
    return r;
  }
  static const soc::T2Design& design() {
    static const soc::T2Design d;
    return d;
  }
};

TEST_F(ReportTest, ContainsAllSections) {
  const std::string md = markdown_report(design(), result());
  EXPECT_NE(md.find("# Post-silicon debug report"), std::string::npos);
  EXPECT_NE(md.find("## Trace buffer configuration"), std::string::npos);
  EXPECT_NE(md.find("## Observation"), std::string::npos);
  EXPECT_NE(md.find("## Investigation log"), std::string::npos);
  EXPECT_NE(md.find("## Root cause analysis"), std::string::npos);
  EXPECT_NE(md.find("## Path localization"), std::string::npos);
}

TEST_F(ReportTest, NamesSymptomAndRootCause) {
  const std::string md = markdown_report(design(), result());
  EXPECT_NE(md.find("FAIL: Bad Trap"), std::string::npos);
  EXPECT_NE(md.find("Non-generation of Mondo interrupt by DMU"),
            std::string::npos);
  EXPECT_NE(md.find("88.89%"), std::string::npos);
}

TEST_F(ReportTest, ListsPackedSubgroup) {
  const std::string md = markdown_report(design(), result());
  EXPECT_NE(md.find("dmusiidata.cputhreadid"), std::string::npos);
  EXPECT_NE(md.find("packed subgroup"), std::string::npos);
}

TEST_F(ReportTest, ListsAnomalousObservations) {
  const std::string md = markdown_report(design(), result());
  EXPECT_NE(md.find("| `siincu` | absent |"), std::string::npos);
  EXPECT_NE(md.find("| `mondoacknack` | absent |"), std::string::npos);
}

TEST_F(ReportTest, IsDeterministic) {
  EXPECT_EQ(markdown_report(design(), result()),
            markdown_report(design(), result()));
}

TEST_F(ReportTest, WriteReportRoundTrips) {
  const std::string path = ::testing::TempDir() + "/tracesel_report.md";
  write_report(design(), result(), path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), markdown_report(design(), result()));
  std::remove(path.c_str());
}

TEST_F(ReportTest, WriteReportFailsOnBadPath) {
  EXPECT_THROW(write_report(design(), result(), "/nonexistent/dir/x.md"),
               std::runtime_error);
}

}  // namespace
}  // namespace tracesel::debug
