#include "flow/interleaved_flow.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "testutil.hpp"

namespace tracesel::flow {
namespace {

using test::CoherenceFixture;

TEST(Interleave, PaperFigure2HasFifteenStates) {
  // 4x4 product minus the illegal (c1,c2) double-atomic state = 15. The
  // default engine is symmetry-reduced, so it materializes one node per
  // orbit — 9 for Fig. 2 — while the weighted product count stays 15.
  const CoherenceFixture fx;
  const auto u = fx.two_instance_interleaving();
  EXPECT_EQ(u.num_product_states(), 15u);
  EXPECT_EQ(u.num_nodes(), 9u);
  std::uint64_t weight_sum = 0;
  for (NodeId n = 0; n < u.num_nodes(); ++n) weight_sum += u.node_weight(n);
  EXPECT_EQ(weight_sum, 15u);
}

TEST(Interleave, PaperFigure2HasEighteenEdges) {
  // Each instance contributes 3 transitions enabled at the 3 non-atomic
  // states of the other instance: 2 * 3 * 3 = 18 indexed-message occurrences.
  const CoherenceFixture fx;
  const auto u = fx.two_instance_interleaving();
  EXPECT_EQ(u.num_product_edges(), 18u);
}

TEST(Interleave, UnreducedEngineMaterializesFullFigure2) {
  const CoherenceFixture fx;
  InterleaveOptions opt;
  opt.symmetry_reduction = false;
  const auto u =
      InterleavedFlow::build(make_instances({&fx.flow_}, 2), opt);
  EXPECT_FALSE(u.reduced());
  EXPECT_EQ(u.num_nodes(), 15u);
  EXPECT_EQ(u.num_edges(), 18u);
  EXPECT_EQ(u.num_product_states(), 15u);
  EXPECT_EQ(u.num_product_edges(), 18u);
}

TEST(Interleave, DoubleAtomicStateIsUnreachable) {
  const CoherenceFixture fx;
  const auto u = fx.two_instance_interleaving();
  const StateId c = fx.flow_.require_state("c");
  for (NodeId n = 0; n < u.num_nodes(); ++n) {
    const auto& key = u.node_key(n);
    EXPECT_FALSE(key[0] == c && key[1] == c)
        << "illegal double-atomic product state reached: " << u.node_name(n);
  }
}

TEST(Interleave, OnlyAtomicHolderMayMove) {
  // From any product state where instance 1 sits in atomic 'c', every
  // outgoing edge must belong to instance 1.
  const CoherenceFixture fx;
  const auto u = fx.two_instance_interleaving();
  const StateId c = fx.flow_.require_state("c");
  for (NodeId n = 0; n < u.num_nodes(); ++n) {
    const auto& key = u.node_key(n);
    for (std::size_t holder = 0; holder < key.size(); ++holder) {
      if (key[holder] != c) continue;
      for (std::uint32_t e : u.outgoing(n)) {
        EXPECT_EQ(u.edges()[e].instance, holder)
            << "non-holder moved out of " << u.node_name(n);
      }
    }
  }
}

TEST(Interleave, SingleStopNode) {
  const CoherenceFixture fx;
  const auto u = fx.two_instance_interleaving();
  ASSERT_EQ(u.stop_nodes().size(), 1u);
  const auto& key = u.node_key(u.stop_nodes().front());
  const StateId d = fx.flow_.require_state("d");
  EXPECT_EQ(key[0], d);
  EXPECT_EQ(key[1], d);
}

TEST(Interleave, EachIndexedMessageOccursThreeTimes) {
  // Paper: p(y) = 3/18 for every indexed message of Fig. 2.
  const CoherenceFixture fx;
  const auto u = fx.two_instance_interleaving();
  EXPECT_EQ(u.indexed_messages().size(), 6u);
  for (const auto& im : u.indexed_messages()) {
    EXPECT_EQ(u.occurrences(im), 3u);
  }
}

TEST(Interleave, UnknownIndexedMessageHasZeroOccurrences) {
  const CoherenceFixture fx;
  const auto u = fx.two_instance_interleaving();
  EXPECT_EQ(u.occurrences(IndexedMessage{fx.reqE, 99}), 0u);
}

TEST(Interleave, SingleInstanceProductEqualsFlow) {
  const CoherenceFixture fx;
  const auto u = InterleavedFlow::build(make_instances({&fx.flow_}, 1));
  EXPECT_EQ(u.num_nodes(), 4u);
  EXPECT_EQ(u.num_edges(), 3u);
  EXPECT_EQ(u.count_paths(), 1.0);
}

TEST(Interleave, PathCountWithoutAtomicityIsBinomial) {
  // Two independent 3-step chains with no atomic states interleave in
  // C(6,3) = 20 ways.
  MessageCatalog cat;
  const MessageId a = cat.add("a", 1, "X", "Y");
  const MessageId b = cat.add("b", 1, "X", "Y");
  const MessageId c = cat.add("c", 1, "X", "Y");
  FlowBuilder fb("chain");
  fb.state("s0", FlowBuilder::kInitial)
      .state("s1")
      .state("s2")
      .state("s3", FlowBuilder::kStop)
      .transition("s0", a, "s1")
      .transition("s1", b, "s2")
      .transition("s2", c, "s3");
  const Flow f = fb.build(cat);
  const auto u = InterleavedFlow::build(make_instances({&f}, 2));
  EXPECT_EQ(u.num_product_states(), 16u);
  EXPECT_DOUBLE_EQ(u.count_paths(), 20.0);
}

TEST(Interleave, AtomicityPrunesPaths) {
  // The coherence flow's atomic 'c' forbids interleavings that hold both
  // instances in 'c' simultaneously; paths drop from 20 to fewer.
  const CoherenceFixture fx;
  const auto u = fx.two_instance_interleaving();
  const double paths = u.count_paths();
  EXPECT_LT(paths, 20.0);
  EXPECT_GT(paths, 0.0);
}

TEST(Interleave, RejectsIllegalIndexing) {
  const CoherenceFixture fx;
  std::vector<IndexedFlow> bad{{&fx.flow_, 1}, {&fx.flow_, 1}};
  EXPECT_FALSE(legally_indexed(bad));
  EXPECT_THROW(InterleavedFlow::build(bad), std::invalid_argument);
}

TEST(Interleave, RejectsEmptyInstanceList) {
  EXPECT_THROW(InterleavedFlow::build({}), std::invalid_argument);
}

TEST(Interleave, RejectsNullFlow) {
  std::vector<IndexedFlow> bad{{nullptr, 1}};
  EXPECT_THROW(InterleavedFlow::build(bad), std::invalid_argument);
}

TEST(Interleave, MaxNodesGuardThrows) {
  const CoherenceFixture fx;
  EXPECT_THROW(
      InterleavedFlow::build(make_instances({&fx.flow_}, 2), /*max_nodes=*/4),
      std::length_error);
}

TEST(Interleave, HeterogeneousFlowsCompose) {
  const CoherenceFixture fx;
  MessageCatalog cat2;  // unused widths; reuse fixture catalog ids
  FlowBuilder fb("short");
  fb.state("p", FlowBuilder::kInitial)
      .state("q", FlowBuilder::kStop)
      .transition("p", fx.ack, "q");
  const Flow g = fb.build(fx.catalog);
  const auto u = InterleavedFlow::build(
      {IndexedFlow{&fx.flow_, 1}, IndexedFlow{&g, 1}});
  // 4*2 product, no atomic conflict possible (g has no atomic states), but
  // while coherence sits in 'c', g may not move: product still has all 8
  // nodes reachable.
  EXPECT_EQ(u.num_nodes(), 8u);
  // Edges: coherence moves at q/p (2 g-states) * 3 transitions = 6;
  // g moves at coherence states n,w,d (not c) = 3.
  EXPECT_EQ(u.num_edges(), 9u);
}

TEST(Interleave, NodeNameFormatsComponents) {
  const CoherenceFixture fx;
  const auto u = fx.two_instance_interleaving();
  const std::string root = u.node_name(u.initial_nodes().front());
  EXPECT_EQ(root, "(n:1,n:2)");
}

TEST(Interleave, MakeInstancesAssignsDistinctIndices) {
  const CoherenceFixture fx;
  const auto insts = make_instances({&fx.flow_}, 3);
  ASSERT_EQ(insts.size(), 3u);
  EXPECT_TRUE(legally_indexed(insts));
  EXPECT_EQ(insts[0].index, 1u);
  EXPECT_EQ(insts[2].index, 3u);
}

TEST(Interleave, MakeInstancesRejectsZeroCount) {
  const CoherenceFixture fx;
  EXPECT_THROW(make_instances({&fx.flow_}, 0), std::invalid_argument);
}

TEST(Interleave, PaperLocalizationExampleOrderedSemantics) {
  // Paper Sec. 3.2: observing {1:ReqE, 1:GntE, 2:ReqE} with
  // Y' = {ReqE, GntE}. Under strict ordered-trace semantics exactly one
  // execution matches: R1 G1 A1 R2 G2 A2 (atomicity forces A1 between G1
  // and R2, and the tail G2 A2 is unique).
  const CoherenceFixture fx;
  const auto u = fx.two_instance_interleaving();
  const std::vector<MessageId> selected{fx.reqE, fx.gntE};
  const std::vector<IndexedMessage> observed{
      {fx.reqE, 1}, {fx.gntE, 1}, {fx.reqE, 2}};
  EXPECT_DOUBLE_EQ(u.count_consistent_paths(selected, observed), 1.0);
}

TEST(Interleave, PaperLocalizationExampleMultisetSemantics) {
  // Order-insensitive reading of the same observation: three executions
  // have {R1,G1,R2} as their first three visible messages (visible orders
  // R1G1R2, R1R2G1, R2R1G1). The paper's Fig. 2 highlights two of them in
  // its *partial* rendering of the interleaving; either way the
  // observation prunes the execution space to a handful of paths.
  const CoherenceFixture fx;
  const auto u = fx.two_instance_interleaving();
  const std::vector<MessageId> selected{fx.reqE, fx.gntE};
  const std::vector<IndexedMessage> observed{
      {fx.reqE, 1}, {fx.gntE, 1}, {fx.reqE, 2}};
  EXPECT_DOUBLE_EQ(u.count_consistent_paths_multiset(selected, observed),
                   3.0);
}

TEST(Interleave, MultisetCountNeverBelowOrderedCount) {
  const CoherenceFixture fx;
  const auto u = fx.two_instance_interleaving();
  const std::vector<MessageId> selected{fx.reqE, fx.gntE, fx.ack};
  const std::vector<IndexedMessage> observed{
      {fx.reqE, 2}, {fx.reqE, 1}, {fx.gntE, 2}};
  const double ordered = u.count_consistent_paths(selected, observed);
  const double multiset = u.count_consistent_paths_multiset(selected, observed);
  EXPECT_GE(multiset, ordered);
}

TEST(Interleave, ConsistentPathsEmptyObservationMatchesAll) {
  const CoherenceFixture fx;
  const auto u = fx.two_instance_interleaving();
  const std::vector<MessageId> selected{fx.reqE, fx.gntE};
  EXPECT_DOUBLE_EQ(u.count_consistent_paths(selected, {}), u.count_paths());
}

TEST(Interleave, ConsistentPathsImpossibleObservationIsZero) {
  const CoherenceFixture fx;
  const auto u = fx.two_instance_interleaving();
  const std::vector<MessageId> selected{fx.reqE, fx.gntE};
  // GntE of instance 1 cannot be the first visible message: ReqE:1 must
  // precede it in every path of instance 1.
  const std::vector<IndexedMessage> observed{{fx.gntE, 1}, {fx.gntE, 1}};
  EXPECT_DOUBLE_EQ(u.count_consistent_paths(selected, observed), 0.0);
}

TEST(Interleave, ConsistentPathsRejectsUnselectedObservation) {
  const CoherenceFixture fx;
  const auto u = fx.two_instance_interleaving();
  const std::vector<MessageId> selected{fx.reqE};
  const std::vector<IndexedMessage> observed{{fx.ack, 1}};
  EXPECT_THROW(u.count_consistent_paths(selected, observed),
               std::invalid_argument);
}

}  // namespace
}  // namespace tracesel::flow
