#include "soc/vcd.hpp"

#include <gtest/gtest.h>

#include "soc/simulator.hpp"

namespace tracesel::soc {
namespace {

class VcdTest : public ::testing::Test {
 protected:
  T2Design design_;
};

TEST_F(VcdTest, HeaderAndDefinitionsPresent) {
  const std::vector<SignalEvent> events{
      {"siincu_data", 5, 10}, {"siincu_valid", 1, 10}};
  const std::string vcd = to_vcd(design_.catalog(), events);
  EXPECT_NE(vcd.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(vcd.find("$scope module soc $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(vcd.find("siincu_data"), std::string::npos);
  EXPECT_NE(vcd.find("siincu_valid"), std::string::npos);
}

TEST_F(VcdTest, DataWireUsesCatalogWidth) {
  const std::vector<SignalEvent> events{{"dmusiidata_data", 7, 3}};
  const std::string vcd = to_vcd(design_.catalog(), events);
  // dmusiidata is 20 bits wide.
  EXPECT_NE(vcd.find("$var wire 20 "), std::string::npos);
  // 20-bit binary dump of value 7.
  EXPECT_NE(vcd.find("b00000000000000000111 "), std::string::npos);
}

TEST_F(VcdTest, ValidStrobePulses) {
  const std::vector<SignalEvent> events{{"siincu_valid", 1, 10}};
  const std::string vcd = to_vcd(design_.catalog(), events);
  const auto t10 = vcd.find("#10");
  const auto t11 = vcd.find("#11");
  ASSERT_NE(t10, std::string::npos);
  ASSERT_NE(t11, std::string::npos);
  EXPECT_LT(t10, t11);
  // Asserted at 10, deasserted at 11.
  EXPECT_NE(vcd.find('1', t10), std::string::npos);
}

TEST_F(VcdTest, TimesAreSortedAscending) {
  const std::vector<SignalEvent> events{
      {"grant_data", 1, 30}, {"grant_data", 2, 10}, {"grant_data", 3, 20}};
  const std::string vcd = to_vcd(design_.catalog(), events);
  const auto a = vcd.find("#10");
  const auto b = vcd.find("#20");
  const auto c = vcd.find("#30");
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST_F(VcdTest, FullSimulationDumpIsNonTrivial) {
  SocSimulator sim(design_, scenario1());
  const auto r = sim.run({});
  const std::string vcd = to_vcd(design_.catalog(), r.signals, "t2");
  EXPECT_NE(vcd.find("$scope module t2 $end"), std::string::npos);
  // Every emitted message type should appear as a _valid wire.
  EXPECT_NE(vcd.find("reqtot_valid"), std::string::npos);
  EXPECT_NE(vcd.find("dmusiidata_valid"), std::string::npos);
  EXPECT_GT(std::count(vcd.begin(), vcd.end(), '#'), 20);
}

TEST_F(VcdTest, TraceBufferDumpListsTracedMessagesOnly) {
  std::vector<TraceRecord> records;
  TraceRecord r;
  r.msg = {design_.mondoacknack, 1};
  r.cycle = 42;
  r.value = 3;
  records.push_back(r);
  const std::string vcd = trace_to_vcd(design_.catalog(), records);
  EXPECT_NE(vcd.find("mondoacknack"), std::string::npos);
  EXPECT_NE(vcd.find("mondoacknack_capture"), std::string::npos);
  EXPECT_EQ(vcd.find("siincu"), std::string::npos);
  EXPECT_NE(vcd.find("#42"), std::string::npos);
  EXPECT_NE(vcd.find("#43"), std::string::npos);  // strobe deassert
}

TEST_F(VcdTest, EmptyEventsStillValidDocument) {
  const std::string vcd = to_vcd(design_.catalog(), {});
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
}

TEST_F(VcdTest, IdentifiersAreUniquePerVar) {
  const std::vector<SignalEvent> events{
      {"grant_data", 1, 1},  {"grant_valid", 1, 1}, {"siincu_data", 1, 2},
      {"siincu_valid", 1, 2}, {"reqtot_data", 1, 3}};
  const std::string vcd = to_vcd(design_.catalog(), events);
  // Parse $var lines and collect identifiers.
  std::vector<std::string> ids;
  std::istringstream is(vcd);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("$var", 0) == 0) {
      std::istringstream ls(line);
      std::string var, wire, width, id;
      ls >> var >> wire >> width >> id;
      ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
  EXPECT_EQ(ids.size(), 5u);
}

}  // namespace
}  // namespace tracesel::soc
