// Work-unit wire types: envelope round-trips, frame classification, and
// the PR-6 corruption matrix — truncation mid-envelope, version skew,
// swapped-shard payloads — all of which must surface as typed errors the
// coordinator can retry on (never an abort).

#include "selection/work_unit.hpp"

#include <gtest/gtest.h>

#include <string>

namespace tracesel::selection {
namespace {

SearchCheckpoint sample_state() {
  SearchCheckpoint ck;
  ck.spec_path = "t2";
  ck.instances = 1;
  ck.fingerprint = 0xfeedfacedeadbeefull;
  ck.buffer_width = 32;
  ck.mode = 1;
  ck.packing = true;
  ck.max_combinations = 1u << 20;
  ck.seeds_total = 64;
  ck.next_seed = 0;
  ck.emitted = 0;
  return ck;
}

WorkUnitRequest sample_request() {
  WorkUnitRequest req;
  req.unit_id = 7;
  req.seed_begin = 8;
  req.seed_end = 16;
  req.heartbeat_ms = 50;
  req.fault = DistFaultAction::kNone;
  req.state = sample_state();
  return req;
}

TEST(WorkUnitTest, RequestRoundTrip) {
  const WorkUnitRequest req = sample_request();
  const auto parsed = parse_unit_request(serialize_unit_request(req));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().unit_id, 7u);
  EXPECT_EQ(parsed.value().seed_begin, 8u);
  EXPECT_EQ(parsed.value().seed_end, 16u);
  EXPECT_EQ(parsed.value().heartbeat_ms, 50u);
  EXPECT_EQ(parsed.value().fault, DistFaultAction::kNone);
  EXPECT_EQ(parsed.value().state.fingerprint, req.state.fingerprint);
  EXPECT_EQ(parsed.value().state.spec_path, "t2");
}

TEST(WorkUnitTest, ReplyRoundTripCarriesChampion) {
  WorkUnitReply reply;
  reply.unit_id = 7;
  reply.seed_begin = 8;
  reply.seed_end = 16;
  reply.cap_exceeded = true;
  reply.state = sample_state();
  reply.state.best_valid = true;
  reply.state.best_gain_bits = 0x3ff8000000000000ull;  // 1.5
  reply.state.best_width = 13;
  reply.state.best_messages = {flow::MessageId{2}, flow::MessageId{5}};
  reply.state.emitted = 42;

  const auto parsed = parse_unit_reply(serialize_unit_reply(reply));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_TRUE(parsed.value().cap_exceeded);
  EXPECT_TRUE(parsed.value().state.best_valid);
  EXPECT_EQ(parsed.value().state.best_gain_bits, 0x3ff8000000000000ull);
  EXPECT_EQ(parsed.value().state.emitted, 42u);
  ASSERT_EQ(parsed.value().state.best_messages.size(), 2u);
}

TEST(WorkUnitTest, FaultActionRoundTrip) {
  for (const auto action :
       {DistFaultAction::kNone, DistFaultAction::kKillWorker,
        DistFaultAction::kHangWorker, DistFaultAction::kCorruptFrame}) {
    const auto parsed = parse_fault_action(to_string(action));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), action);
  }
  EXPECT_FALSE(parse_fault_action("set-on-fire").ok());
}

TEST(WorkUnitTest, FaultDirectiveSurvivesTheWire) {
  WorkUnitRequest req = sample_request();
  req.fault = DistFaultAction::kCorruptFrame;
  const auto parsed = parse_unit_request(serialize_unit_request(req));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().fault, DistFaultAction::kCorruptFrame);
}

TEST(WorkUnitTest, ClassifyFrames) {
  EXPECT_EQ(classify_frame(serialize_unit_request(sample_request())),
            FrameKind::kUnitRequest);
  WorkUnitReply reply;
  reply.state = sample_state();
  EXPECT_EQ(classify_frame(serialize_unit_reply(reply)),
            FrameKind::kUnitReply);
  EXPECT_EQ(classify_frame(serialize_heartbeat(3)), FrameKind::kHeartbeat);
  EXPECT_EQ(classify_frame(serialize_unit_error(
                3, util::ErrorCode::kParse, "boom")),
            FrameKind::kUnitError);
  EXPECT_EQ(classify_frame(kShutdownFrame), FrameKind::kShutdown);
  EXPECT_EQ(classify_frame(serialize_unit_telemetry(
                3, obs::ProcessTelemetry{})),
            FrameKind::kTelemetry);
  EXPECT_EQ(classify_frame("who-goes-there"), FrameKind::kUnknown);
}

TEST(WorkUnitTest, TraceContextRidesTheRequestOnlyWhenSet) {
  // Untraced requests keep the version-1 line shape (no trailing tokens).
  const WorkUnitRequest plain = sample_request();
  auto parsed = parse_unit_request(serialize_unit_request(plain));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().trace_id, 0u);
  EXPECT_EQ(parsed.value().parent_span_id, 0u);

  WorkUnitRequest traced = sample_request();
  traced.trace_id = 0xDEADBEEFCAFEull;
  traced.parent_span_id = 0x1234;
  parsed = parse_unit_request(serialize_unit_request(traced));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().trace_id, 0xDEADBEEFCAFEull);
  EXPECT_EQ(parsed.value().parent_span_id, 0x1234u);
}

TEST(WorkUnitTest, TelemetryFrameRoundTrip) {
  obs::ProcessTelemetry t;
  t.label = "tracesel-worker";
  t.pid = 77;
  t.epoch_ns = 123456789;
  t.metrics.counters = {{"dist.worker.units", 1}};
  obs::WireTraceEvent ev;
  ev.name = "dist.unit";
  ev.ts_ns = 10;
  ev.dur_ns = 20;
  ev.span_id = 0xAA;
  ev.parent_id = 0xBB;
  t.events.push_back(ev);

  const std::string wire = serialize_unit_telemetry(9, t);
  EXPECT_EQ(classify_frame(wire), FrameKind::kTelemetry);
  const auto parsed = parse_unit_telemetry(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().unit_id, 9u);
  EXPECT_EQ(parsed.value().telemetry.label, "tracesel-worker");
  EXPECT_EQ(parsed.value().telemetry.pid, 77u);
  ASSERT_EQ(parsed.value().telemetry.events.size(), 1u);
  EXPECT_EQ(parsed.value().telemetry.events[0].span_id, 0xAAu);
}

TEST(WorkUnitTest, HeartbeatRoundTrip) {
  const auto id = parse_heartbeat(serialize_heartbeat(99));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), 99u);
  EXPECT_FALSE(parse_heartbeat("tracesel-heartbeat").ok());
  EXPECT_FALSE(parse_heartbeat("tracesel-heartbeat nope").ok());
}

TEST(WorkUnitTest, UnitErrorRoundTripKeepsSpacesInMessage) {
  const auto parsed = parse_unit_error(serialize_unit_error(
      5, util::ErrorCode::kCorruptCapture, "fingerprint mismatch: a b c"));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().unit_id, 5u);
  EXPECT_EQ(parsed.value().message, "fingerprint mismatch: a b c");
}

// --- corruption matrix --------------------------------------------------

/// Truncation is a typed, retryable failure: kParse when the cut hits the
/// unit envelope itself, kCorruptCapture when it lands inside the
/// checksummed checkpoint body. Either way the coordinator retries the
/// unit — never aborts.
void expect_typed_truncation_error(const util::Error& error) {
  EXPECT_TRUE(error.code == util::ErrorCode::kParse ||
              error.code == util::ErrorCode::kCorruptCapture)
      << error.to_string();
}

TEST(WorkUnitCorruptionTest, TruncationMidEnvelopeIsTypedError) {
  const std::string wire = serialize_unit_request(sample_request());
  // Cut inside the embedded checkpoint: header intact, payload truncated.
  for (const std::size_t keep :
       {wire.size() / 2, wire.size() - 1, std::size_t{30}}) {
    const auto parsed = parse_unit_request(wire.substr(0, keep));
    ASSERT_FALSE(parsed.ok()) << "keep=" << keep;
    expect_typed_truncation_error(parsed.error());
  }
}

TEST(WorkUnitCorruptionTest, TruncatedReplyIsTypedError) {
  WorkUnitReply reply;
  reply.state = sample_state();
  const std::string wire = serialize_unit_reply(reply);
  const auto parsed = parse_unit_reply(wire.substr(0, wire.size() / 2));
  ASSERT_FALSE(parsed.ok());
  expect_typed_truncation_error(parsed.error());
}

TEST(WorkUnitCorruptionTest, VersionSkewIsTypedParseError) {
  std::string wire = serialize_unit_request(sample_request());
  const auto pos = wire.find("tracesel-unit-request 1");
  ASSERT_NE(pos, std::string::npos);
  wire.replace(pos, 23, "tracesel-unit-request 2");
  const auto parsed = parse_unit_request(wire);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, util::ErrorCode::kParse);
  EXPECT_NE(parsed.error().message.find("version"), std::string::npos);
}

TEST(WorkUnitCorruptionTest, PayloadBitFlipFailsChecksum) {
  std::string wire = serialize_unit_request(sample_request());
  wire[wire.size() / 2] ^= 0x20;  // the DistFaultInjector's own corruption
  EXPECT_FALSE(parse_unit_request(wire).ok());
}

TEST(WorkUnitCorruptionTest, TelemetryFrameCorruptionIsTypedNeverFatal) {
  obs::ProcessTelemetry t;
  t.label = "tracesel-worker";
  t.pid = 1;
  t.metrics.counters = {{"dist.worker.units", 1}};
  const std::string wire = serialize_unit_telemetry(4, t);

  // Fuzz-style truncation sweep over the whole frame: every cut must be a
  // typed error (the coordinator drops the frame; the unit outcome travels
  // separately in the reply, so nothing retries and nothing dies).
  for (std::size_t keep = 0; keep < wire.size(); ++keep) {
    const auto parsed = parse_unit_telemetry(wire.substr(0, keep));
    ASSERT_FALSE(parsed.ok()) << "keep=" << keep;
    expect_typed_truncation_error(parsed.error());
  }

  // Payload bit flip: checksum failure.
  std::string corrupt = wire;
  corrupt[corrupt.size() / 2] ^= 0x20;
  EXPECT_FALSE(parse_unit_telemetry(corrupt).ok());

  // Version skew in the embedded telemetry envelope.
  std::string skew = wire;
  const auto pos = skew.find("tracesel-telemetry 1");
  ASSERT_NE(pos, std::string::npos);
  skew.replace(pos, 20, "tracesel-telemetry 9");
  const auto parsed = parse_unit_telemetry(skew);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, util::ErrorCode::kParse);
}

TEST(WorkUnitCorruptionTest, SwappedShardPayloadRejectedByValidate) {
  const WorkUnitRequest req = sample_request();

  WorkUnitReply reply;
  reply.unit_id = req.unit_id;
  reply.seed_begin = req.seed_begin;
  reply.seed_end = req.seed_end;
  reply.state = req.state;
  ASSERT_TRUE(validate_reply(reply, req).ok());

  // Reply names a different unit.
  WorkUnitReply wrong_unit = reply;
  wrong_unit.unit_id = req.unit_id + 1;
  auto st = validate_reply(wrong_unit, req);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, util::ErrorCode::kCorruptCapture);

  // Reply covers the wrong seed range (grafted from another unit).
  WorkUnitReply wrong_range = reply;
  wrong_range.seed_begin = req.seed_begin + 1;
  EXPECT_FALSE(validate_reply(wrong_range, req).ok());

  // Reply from a different search entirely (fingerprint mismatch).
  WorkUnitReply wrong_search = reply;
  wrong_search.state.fingerprint ^= 1;
  st = validate_reply(wrong_search, req);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, util::ErrorCode::kCorruptCapture);

  // Same search id but a different shard decomposition.
  WorkUnitReply wrong_seeds = reply;
  wrong_seeds.state.seeds_total += 1;
  EXPECT_FALSE(validate_reply(wrong_seeds, req).ok());
}

}  // namespace
}  // namespace tracesel::selection
