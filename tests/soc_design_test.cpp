#include "soc/t2_design.hpp"

#include <gtest/gtest.h>

#include "soc/scenario.hpp"

namespace tracesel::soc {
namespace {

class T2DesignTest : public ::testing::Test {
 protected:
  T2Design design_;
};

TEST_F(T2DesignTest, FlowShapesMatchTable1) {
  // Table 1 annotates flows with (#states, #messages).
  EXPECT_EQ(design_.pior().num_states(), 6u);
  EXPECT_EQ(design_.pior().messages().size(), 5u);
  EXPECT_EQ(design_.piow().num_states(), 3u);
  EXPECT_EQ(design_.piow().messages().size(), 2u);
  EXPECT_EQ(design_.ncuu().num_states(), 4u);
  EXPECT_EQ(design_.ncuu().messages().size(), 3u);
  EXPECT_EQ(design_.ncud().num_states(), 3u);
  EXPECT_EQ(design_.ncud().messages().size(), 2u);
  EXPECT_EQ(design_.mondo().num_states(), 6u);
  EXPECT_EQ(design_.mondo().messages().size(), 5u);
}

TEST_F(T2DesignTest, DmusiidataMatchesPaper) {
  // Sec. 3.3: dmusiidata is 20 bits; cputhreadid, a subgroup, is 6 bits.
  const flow::Message& m = design_.catalog().get(design_.dmusiidata);
  EXPECT_EQ(m.width, 20u);
  EXPECT_EQ(m.source_ip, "DMU");
  bool found = false;
  for (const auto& sg : m.subgroups) {
    if (sg.name == "cputhreadid") {
      EXPECT_EQ(sg.width, 6u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(T2DesignTest, CatalogHasTwentyFourMessages) {
  EXPECT_EQ(design_.catalog().size(), 24u);
}

TEST_F(T2DesignTest, FlowByNameRoundTrips) {
  EXPECT_EQ(design_.flow_by_name("PIOR").name(), "PIOR");
  EXPECT_EQ(design_.flow_by_name("Mon").name(), "Mon");
  EXPECT_THROW(design_.flow_by_name("XYZ"), std::out_of_range);
}

TEST_F(T2DesignTest, MessagesRouteBetweenScenarioIps) {
  // Every message's endpoints are among the six modeled IPs.
  const std::vector<std::string> ips{"NCU", "DMU", "SIU", "MCU", "CCX",
                                     "CPU"};
  for (const flow::Message& m : design_.catalog()) {
    EXPECT_NE(std::find(ips.begin(), ips.end(), m.source_ip), ips.end())
        << m.name;
    EXPECT_NE(std::find(ips.begin(), ips.end(), m.dest_ip), ips.end())
        << m.name;
    EXPECT_NE(m.source_ip, m.dest_ip) << m.name;
  }
}

TEST_F(T2DesignTest, MondoFlowFollowsPaperSequence) {
  // Sec. 5.7: reqtot -> grant -> dmusiidata -> siincu -> mondoacknack.
  const flow::Flow& mon = design_.mondo();
  const auto& ts = mon.transitions();
  ASSERT_EQ(ts.size(), 5u);
  EXPECT_EQ(ts[0].message, design_.reqtot);
  EXPECT_EQ(ts[1].message, design_.grant);
  EXPECT_EQ(ts[2].message, design_.dmusiidata);
  EXPECT_EQ(ts[3].message, design_.siincu);
  EXPECT_EQ(ts[4].message, design_.mondoacknack);
}

TEST_F(T2DesignTest, EveryFlowHasOneAtomicStateAtMost) {
  for (const char* name : {"PIOR", "PIOW", "NCUU", "NCUD", "Mon"}) {
    EXPECT_LE(design_.flow_by_name(name).atomic_states().size(), 1u) << name;
  }
}

class ScenarioTest : public ::testing::Test {
 protected:
  T2Design design_;
};

TEST_F(ScenarioTest, Table1ScenarioDefinitions) {
  const Scenario s1 = scenario1();
  EXPECT_EQ(s1.flow_names,
            (std::vector<std::string>{"PIOR", "PIOW", "Mon"}));
  EXPECT_EQ(s1.num_root_causes, 9u);
  const Scenario s2 = scenario2();
  EXPECT_EQ(s2.flow_names,
            (std::vector<std::string>{"NCUU", "NCUD", "Mon"}));
  EXPECT_EQ(s2.num_root_causes, 8u);
  const Scenario s3 = scenario3();
  EXPECT_EQ(s3.flow_names,
            (std::vector<std::string>{"PIOR", "PIOW", "NCUU", "NCUD"}));
  EXPECT_EQ(s3.num_root_causes, 9u);
}

TEST_F(ScenarioTest, ScenarioByIdMatchesFactories) {
  EXPECT_EQ(scenario_by_id(1).name, scenario1().name);
  EXPECT_EQ(scenario_by_id(3).flow_names, scenario3().flow_names);
  EXPECT_THROW(scenario_by_id(0), std::out_of_range);
  EXPECT_EQ(scenario_by_id(4).flow_names,
            (std::vector<std::string>{"DMAR", "DMAW", "Mon"}));
  EXPECT_THROW(scenario_by_id(5), std::out_of_range);
}

TEST_F(ScenarioTest, AllScenariosListsThree) {
  EXPECT_EQ(all_scenarios().size(), 3u);
}

TEST_F(ScenarioTest, ScenarioFlowsResolve) {
  const auto flows = scenario_flows(design_, scenario3());
  ASSERT_EQ(flows.size(), 4u);
  EXPECT_EQ(flows[0]->name(), "PIOR");
  EXPECT_EQ(flows[3]->name(), "NCUD");
}

TEST_F(ScenarioTest, InterleavingBuildsForEveryScenario) {
  for (const Scenario& s : all_scenarios()) {
    const auto u = build_interleaving(design_, s);
    EXPECT_GT(u.num_nodes(), 0u) << s.name;
    EXPECT_GT(u.num_edges(), 0u) << s.name;
    EXPECT_FALSE(u.stop_nodes().empty()) << s.name;
    // 2 instances of each flow participate.
    EXPECT_EQ(u.instances().size(), s.flow_names.size() * 2) << s.name;
  }
}

TEST_F(ScenarioTest, InterleavingSizesAreStable) {
  // Regression pin: concrete product sizes for the three scenarios
  // (2 instances). The default engine is symmetry-reduced, so it
  // materializes strictly fewer nodes while the weighted product counts
  // stay pinned to the seed's numbers.
  const auto u1 = build_interleaving(design_, scenario1());
  EXPECT_EQ(u1.num_product_states(), 10125u);
  EXPECT_EQ(u1.num_product_edges(), 30000u);
  EXPECT_LT(u1.num_nodes(), 10125u);
  const auto u2 = build_interleaving(design_, scenario2());
  EXPECT_EQ(u2.num_product_states(), 4185u);
  const auto u3 = build_interleaving(design_, scenario3());
  EXPECT_EQ(u3.num_product_states(), 37665u);

  // The unreduced engine still materializes the full product.
  flow::InterleaveOptions opt;
  opt.symmetry_reduction = false;
  const auto full = build_interleaving(design_, scenario1(), opt);
  EXPECT_EQ(full.num_nodes(), 10125u);
  EXPECT_EQ(full.num_edges(), 30000u);
}

}  // namespace
}  // namespace tracesel::soc
