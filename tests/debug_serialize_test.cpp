#include "debug/serialize.hpp"

#include <gtest/gtest.h>

#include "debug/case_study.hpp"
#include "selection/multi_scenario.hpp"
#include "soc/scenario.hpp"

namespace tracesel::debug {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  soc::T2Design design_;
};

TEST_F(SerializeTest, SelectionResultJson) {
  const auto u = soc::build_interleaving(design_, soc::scenario1());
  const selection::MessageSelector selector(design_.catalog(), u);
  const auto r = selector.select({});
  const std::string json = selection::to_json(design_.catalog(), r).dump();
  EXPECT_NE(json.find("\"messages\":["), std::string::npos);
  EXPECT_NE(json.find("\"mondoacknack\""), std::string::npos);
  EXPECT_NE(json.find("\"packed\":[{\"parent\":\"dmusiidata\""),
            std::string::npos);
  EXPECT_NE(json.find("\"utilization\":1"), std::string::npos);
}

TEST_F(SerializeTest, MultiScenarioJson) {
  const auto u1 = soc::build_interleaving(design_, soc::scenario1());
  const auto u2 = soc::build_interleaving(design_, soc::scenario2());
  const selection::MultiScenarioSelector multi(design_.catalog(),
                                               {{&u1, 1.0}, {&u2, 1.0}});
  const auto r = multi.select(32);
  const std::string json = selection::to_json(design_.catalog(), r).dump();
  EXPECT_NE(json.find("\"per_scenario_coverage\":["), std::string::npos);
  EXPECT_NE(json.find("\"weighted_gain\":"), std::string::npos);
}

TEST_F(SerializeTest, WorkbenchResultJson) {
  const auto cs = soc::standard_case_studies()[0];
  const auto r = run_case_study(design_, cs);
  // CaseStudyResult shares the WorkbenchResult layout; build one.
  WorkbenchResult wr;
  wr.selection = r.selection;
  wr.golden = r.golden;
  wr.buggy = r.buggy;
  wr.observation = r.observation;
  wr.report = r.report;
  wr.localization = r.localization;
  const std::string json = to_json(design_.catalog(), wr).dump();
  EXPECT_NE(json.find("\"failure\":\"FAIL: Bad Trap\""), std::string::npos);
  EXPECT_NE(json.find("\"dmusiidata\":\"absent\""), std::string::npos);
  EXPECT_NE(json.find("\"pruned_fraction\":0.888"), std::string::npos);
  EXPECT_NE(json.find("\"investigation\":["), std::string::npos);
  EXPECT_NE(json.find("\"plausible_causes\":[{\"id\":3"), std::string::npos);
  EXPECT_NE(json.find("\"localization\":{"), std::string::npos);
}

TEST_F(SerializeTest, JsonIsDeterministic) {
  const auto cs = soc::standard_case_studies()[1];
  const auto a = run_case_study(design_, cs);
  const auto b = run_case_study(design_, cs);
  EXPECT_EQ(selection::to_json(design_.catalog(), a.selection).dump(),
            selection::to_json(design_.catalog(), b.selection).dump());
}

}  // namespace
}  // namespace tracesel::debug
