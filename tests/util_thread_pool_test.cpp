#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/cancel.hpp"

namespace tracesel::util {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskOnce) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, MoreTasksThanWorkers) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> sum{0};
  for (std::uint64_t i = 1; i <= 1000; ++i)
    pool.submit([&sum, i] { sum.fetch_add(i); });
  pool.wait();
  EXPECT_EQ(sum.load(), 1000u * 1001u / 2u);
}

TEST(ThreadPoolTest, ExceptionPropagatesFromWait) {
  ThreadPool pool(3);
  for (int i = 0; i < 8; ++i)
    pool.submit([i] {
      if (i == 5) throw std::runtime_error("task 5 failed");
    });
  EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ThreadPoolTest, PoolIsReusableAfterException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::logic_error("boom"); });
  EXPECT_THROW(pool.wait(), std::logic_error);

  // A failed batch must not poison the next one.
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i)
    pool.submit([&counter] { counter.fetch_add(1); });
  EXPECT_NO_THROW(pool.wait());
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  pool.parallel_for(5, 5, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 0);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(0, hits.size(),
                    [&hits](std::size_t i) { hits[i].fetch_add(1); }, 3);
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ParallelForPropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 64,
                                 [](std::size_t i) {
                                   if (i == 17)
                                     throw std::out_of_range("bad index");
                                 }),
               std::out_of_range);
}

TEST(ThreadPoolTest, ParallelReduceIsDeterministic) {
  // Chunk results are combined in chunk order on the calling thread, so a
  // non-commutative combine (string concatenation) must come out ordered.
  ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    const std::string digits = pool.parallel_reduce(
        std::size_t{0}, std::size_t{10}, /*grain=*/2, std::string{},
        [](std::size_t b, std::size_t e) {
          std::string s;
          for (std::size_t i = b; i < e; ++i) s += static_cast<char>('0' + i);
          return s;
        },
        [](std::string a, std::string b) { return a + b; });
    EXPECT_EQ(digits, "0123456789");
  }
}

TEST(ThreadPoolTest, ParallelReduceSum) {
  ThreadPool pool(3);
  const std::uint64_t total = pool.parallel_reduce(
      std::size_t{1}, std::size_t{1001}, /*grain=*/7, std::uint64_t{0},
      [](std::size_t b, std::size_t e) {
        std::uint64_t s = 0;
        for (std::size_t i = b; i < e; ++i) s += i;
        return s;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(total, 1000u * 1001u / 2u);
}

TEST(ThreadPoolTest, ResolveJobs) {
  EXPECT_EQ(ThreadPool::resolve_jobs(1), 1u);
  EXPECT_EQ(ThreadPool::resolve_jobs(7), 7u);
  EXPECT_GE(ThreadPool::resolve_jobs(0), 1u);  // hardware concurrency, >= 1
}

TEST(ThreadPoolTest, SizeReportsWorkerCount) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

TEST(ThreadPoolTest, ParallelForPreCancelledRunsNothing) {
  ThreadPool pool(4);
  const CancelToken token = CancelToken::make();
  token.cancel();
  std::atomic<int> counter{0};
  pool.parallel_for(0, 1000,
                    [&counter](std::size_t) { counter.fetch_add(1); },
                    /*grain=*/1, &token);
  EXPECT_EQ(counter.load(), 0);
}

TEST(ThreadPoolTest, ParallelForCancelMidFlightFromSecondThread) {
  // The race the resilience layer must survive: cancel() fires from
  // another thread while chunks are executing. The loop must return (no
  // hang), run each started chunk to completion exactly once, and skip
  // chunks not yet started.
  ThreadPool pool(4);
  const CancelToken token = CancelToken::make();
  std::vector<std::atomic<int>> hits(4096);
  std::atomic<int> executed{0};
  std::thread killer([&] {
    // Wait until some chunks have demonstrably run, then cancel.
    while (executed.load(std::memory_order_relaxed) < 64)
      std::this_thread::yield();
    token.cancel();
  });
  pool.parallel_for(
      0, hits.size(),
      [&](std::size_t i) {
        hits[i].fetch_add(1);
        executed.fetch_add(1, std::memory_order_relaxed);
      },
      /*grain=*/1, &token);
  killer.join();
  int ran = 0;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_LE(hits[i].load(), 1) << "index " << i << " ran twice";
    ran += hits[i].load();
  }
  EXPECT_GE(ran, 64);
  EXPECT_TRUE(token.cancelled());
}

TEST(ThreadPoolTest, ParallelReduceCancelledChunksContributeIdentity) {
  ThreadPool pool(2);
  const CancelToken token = CancelToken::make();
  token.cancel();
  const std::uint64_t total = pool.parallel_reduce(
      std::size_t{0}, std::size_t{1000}, /*grain=*/10, std::uint64_t{0},
      [](std::size_t b, std::size_t e) {
        std::uint64_t s = 0;
        for (std::size_t i = b; i < e; ++i) s += 1;
        return s;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; }, &token);
  EXPECT_EQ(total, 0u);
}

TEST(CancelTokenTest, InertTokenNeverCancels) {
  const CancelToken inert;
  EXPECT_FALSE(inert.valid());
  inert.cancel();  // no-op, must not crash
  EXPECT_FALSE(inert.cancelled());
  EXPECT_FALSE(inert.cancel_requested());
}

TEST(CancelTokenTest, CancelIsIdempotentAndSharedAcrossCopies) {
  const CancelToken token = CancelToken::make();
  const CancelToken copy = token;
  EXPECT_FALSE(copy.cancelled());
  token.cancel();
  token.cancel();  // double-cancel is fine
  EXPECT_TRUE(copy.cancelled());
  EXPECT_TRUE(copy.cancel_requested());
}

TEST(CancelTokenTest, DeadlineExpiryLatches) {
  const CancelToken token = CancelToken::after(std::chrono::nanoseconds(1));
  // The deadline is in the past by the time we poll; expiry must latch.
  while (!token.cancelled()) std::this_thread::yield();
  EXPECT_TRUE(token.cancelled());
  // Deadline expiry is not a cancel() call, but the latch records it in
  // the same flag, so cancel_requested() reports true afterwards.
  EXPECT_TRUE(token.cancel_requested());
}

}  // namespace
}  // namespace tracesel::util
