// Property-based tests: invariants of the flow model and the selection
// pipeline checked over randomly generated flow DAGs (parameterized by
// seed). Each generated system has 2-3 flows of 4-7 states with random
// branching, random message widths, and random atomic states.

#include <gtest/gtest.h>

#include "flow/execution.hpp"
#include "flow/flow_builder.hpp"
#include "selection/coverage.hpp"
#include "selection/localization.hpp"
#include "selection/selector.hpp"
#include "util/rng.hpp"

namespace tracesel {
namespace {

using flow::Flow;
using flow::FlowBuilder;
using flow::MessageCatalog;
using flow::MessageId;

/// A randomly generated multi-flow system plus its catalog.
struct RandomSystem {
  MessageCatalog catalog;
  std::vector<Flow> flows;
  std::vector<MessageId> all_messages;
};

RandomSystem make_random_system(std::uint64_t seed) {
  util::Rng rng(seed);
  RandomSystem sys;

  const std::size_t num_flows = 2 + rng.index(2);  // 2..3
  for (std::size_t f = 0; f < num_flows; ++f) {
    const std::size_t states = 4 + rng.index(4);  // 4..7
    FlowBuilder b("flow" + std::to_string(f));
    for (std::size_t s = 0; s < states; ++s) {
      std::uint8_t flags = FlowBuilder::kNone;
      if (s == 0) flags |= FlowBuilder::kInitial;
      if (s == states - 1) flags |= FlowBuilder::kStop;
      // Occasionally mark a middle state atomic.
      if (s > 0 && s + 1 < states && rng.chance(0.25))
        flags |= FlowBuilder::kAtomic;
      b.state("s" + std::to_string(s), flags);
    }
    // Backbone chain guarantees reachability both ways; extra forward
    // edges add branching.
    std::size_t edges = 0;
    auto add_edge = [&](std::size_t from, std::size_t to) {
      const auto m = sys.catalog.add(
          "f" + std::to_string(f) + "_m" + std::to_string(edges++),
          static_cast<std::uint32_t>(1 + rng.index(8)), "A", "B");
      sys.all_messages.push_back(m);
      b.transition("s" + std::to_string(from), m, "s" + std::to_string(to));
    };
    for (std::size_t s = 0; s + 1 < states; ++s) add_edge(s, s + 1);
    const std::size_t extra = rng.index(3);
    for (std::size_t e = 0; e < extra; ++e) {
      const std::size_t from = rng.index(states - 1);
      const std::size_t to = from + 1 + rng.index(states - from - 1);
      add_edge(from, to);
    }
    sys.flows.push_back(b.build(sys.catalog));
  }
  return sys;
}

flow::InterleavedFlow interleave(const RandomSystem& sys,
                                 std::uint32_t instances) {
  std::vector<const Flow*> ptrs;
  for (const Flow& f : sys.flows) ptrs.push_back(&f);
  return flow::InterleavedFlow::build(flow::make_instances(ptrs, instances));
}

class PropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertyTest, InterleavingStructuralInvariants) {
  const auto sys = make_random_system(GetParam());
  const auto u = interleave(sys, 2);

  // Node count bounded by the full product.
  std::size_t product = 1;
  for (const Flow& f : sys.flows) product *= f.num_states() * f.num_states();
  EXPECT_LE(u.num_nodes(), product);

  // No reachable node holds two atomic components.
  for (flow::NodeId n = 0; n < u.num_nodes(); ++n) {
    const auto& key = u.node_key(n);
    int atomics = 0;
    for (std::size_t i = 0; i < key.size(); ++i) {
      if (u.instances()[i].flow->is_atomic(key[i])) ++atomics;
    }
    EXPECT_LE(atomics, 1) << u.node_name(n);
  }

  // Edge labels use only flow messages with valid instance indices.
  for (const auto& e : u.edges()) {
    EXPECT_LT(e.instance, u.instances().size());
    EXPECT_EQ(e.label.index, u.instances()[e.instance].index);
    EXPECT_TRUE(
        u.instances()[e.instance].flow->uses_message(e.label.message));
  }

  // Occurrence counts sum to the concrete product edge count, and orbit
  // weights sum to the concrete product state count.
  std::uint64_t occ = 0;
  for (const auto& im : u.indexed_messages()) occ += u.occurrences(im);
  EXPECT_EQ(occ, u.num_product_edges());
  std::uint64_t weight_sum = 0;
  for (flow::NodeId n = 0; n < u.num_nodes(); ++n)
    weight_sum += u.node_weight(n);
  EXPECT_EQ(weight_sum, u.num_product_states());

  // Paths exist and stop tuples exist.
  EXPECT_FALSE(u.stop_nodes().empty());
  EXPECT_GE(u.count_paths(), 1.0);
}

TEST_P(PropertyTest, GainMonotoneAndBoundedByMax) {
  const auto sys = make_random_system(GetParam());
  const auto u = interleave(sys, 2);
  const selection::InfoGainEngine engine(u);

  util::Rng rng(GetParam() ^ 0xABCD);
  std::vector<MessageId> shuffled = sys.all_messages;
  rng.shuffle(shuffled);

  double last = 0.0;
  std::vector<MessageId> prefix;
  for (const MessageId m : shuffled) {
    prefix.push_back(m);
    const double g = engine.info_gain(prefix);
    EXPECT_GE(g, last - 1e-12);
    last = g;
  }
  EXPECT_NEAR(last, engine.max_gain(), 1e-9);
  for (const auto& im : u.indexed_messages())
    EXPECT_GE(engine.contribution(im), 0.0);
}

TEST_P(PropertyTest, CoverageMonotoneAndBoundedByEnteredStates) {
  const auto sys = make_random_system(GetParam());
  const auto u = interleave(sys, 2);

  util::Rng rng(GetParam() ^ 0x1234);
  std::vector<MessageId> shuffled = sys.all_messages;
  rng.shuffle(shuffled);

  double last = 0.0;
  std::vector<MessageId> prefix;
  for (const MessageId m : shuffled) {
    prefix.push_back(m);
    const double c = selection::flow_spec_coverage(u, prefix);
    EXPECT_GE(c, last - 1e-12);
    last = c;
  }
  // Full alphabet coverage = weighted fraction of concrete product states
  // with an incoming edge (weights are 1 when the engine is unreduced).
  std::vector<bool> entered(u.num_nodes(), false);
  for (const auto& e : u.edges()) entered[e.to] = true;
  std::uint64_t entered_weight = 0;
  for (flow::NodeId n = 0; n < u.num_nodes(); ++n)
    if (entered[n]) entered_weight += u.node_weight(n);
  const double max_cov = static_cast<double>(entered_weight) /
                         static_cast<double>(u.num_product_states());
  EXPECT_NEAR(last, max_cov, 1e-12);
}

TEST_P(PropertyTest, KnapsackMatchesExhaustiveOptimum) {
  const auto sys = make_random_system(GetParam());
  const auto u = interleave(sys, 1);
  const selection::MessageSelector selector(sys.catalog, u);

  util::Rng rng(GetParam() ^ 0x77);
  const std::uint32_t budget =
      static_cast<std::uint32_t>(4 + rng.index(24));
  selection::SelectorConfig ex, kn;
  ex.buffer_width = kn.buffer_width = budget;
  ex.mode = selection::SearchMode::kExhaustive;
  kn.mode = selection::SearchMode::kKnapsack;
  ex.packing = kn.packing = false;
  double g_ex = -1.0;
  try {
    g_ex = selector.select(ex).gain;
  } catch (const std::runtime_error&) {
    EXPECT_THROW(selector.select(kn), std::runtime_error);
    return;
  }
  EXPECT_DOUBLE_EQ(selector.select(kn).gain, g_ex) << "budget " << budget;
}

TEST_P(PropertyTest, RandomExecutionsAreValidAndLocalizable) {
  const auto sys = make_random_system(GetParam());
  const auto u = interleave(sys, 2);

  util::Rng rng(GetParam() ^ 0xE0E0);
  // Random selected subset.
  std::vector<MessageId> selected;
  for (const MessageId m : sys.all_messages) {
    if (rng.chance(0.5)) selected.push_back(m);
  }

  for (int i = 0; i < 5; ++i) {
    const auto e = flow::random_execution(u, rng);
    EXPECT_TRUE(flow::is_valid_execution(u, e));
    if (!e.completed) continue;
    const auto obs = flow::project(e.trace(), selected);
    const auto loc = selection::localize(u, selected, obs);
    // Soundness: the true execution is never excluded.
    EXPECT_GE(loc.consistent_paths, 1.0);
    EXPECT_LE(loc.consistent_paths, loc.total_paths);
    // Multiset semantics is a relaxation of ordered semantics; check on a
    // bounded observation prefix (the multiset lattice is exponential in
    // distinct observed kinds).
    const std::vector<flow::IndexedMessage> short_obs(
        obs.begin(), obs.begin() + std::min<std::size_t>(obs.size(), 6));
    const double ordered_short =
        u.count_consistent_paths(selected, short_obs);
    EXPECT_GE(u.count_consistent_paths_multiset(selected, short_obs),
              ordered_short);
  }
}

TEST_P(PropertyTest, EmptyObservationNeverLocalizes) {
  const auto sys = make_random_system(GetParam());
  const auto u = interleave(sys, 1);
  const auto loc =
      selection::localize(u, sys.all_messages, {});
  EXPECT_DOUBLE_EQ(loc.fraction, 1.0);
}

TEST_P(PropertyTest, SelectorRespectsBudgetAndObservableSuperset) {
  const auto sys = make_random_system(GetParam());
  const auto u = interleave(sys, 2);
  const selection::MessageSelector selector(sys.catalog, u);

  util::Rng rng(GetParam() ^ 0x5150);
  const std::uint32_t budget =
      static_cast<std::uint32_t>(6 + rng.index(26));
  selection::SelectorConfig cfg;
  cfg.buffer_width = budget;
  selection::SelectionResult r;
  try {
    r = selector.select(cfg);
  } catch (const std::runtime_error&) {
    return;  // nothing fits: acceptable for tiny budgets
  }
  EXPECT_LE(r.used_width, budget);
  EXPECT_GE(r.gain, r.gain_unpacked - 1e-12);
  EXPECT_GE(r.coverage, r.coverage_unpacked - 1e-12);
  // observable() includes every Step 2 message.
  const auto obs = r.observable();
  for (const MessageId m : r.combination.messages) {
    EXPECT_NE(std::find(obs.begin(), obs.end(), m), obs.end());
  }
}

TEST_P(PropertyTest, GreedyNeverBeatsExhaustive) {
  const auto sys = make_random_system(GetParam());
  const auto u = interleave(sys, 1);
  const selection::MessageSelector selector(sys.catalog, u);
  selection::SelectorConfig ex, gr;
  ex.buffer_width = gr.buffer_width = 16;
  ex.mode = selection::SearchMode::kExhaustive;
  gr.mode = selection::SearchMode::kGreedy;
  ex.packing = gr.packing = false;
  try {
    EXPECT_GE(selector.select(ex).gain, selector.select(gr).gain - 1e-12);
  } catch (const std::runtime_error&) {
    // nothing fits: both must agree on that too.
    EXPECT_THROW(selector.select(gr), std::runtime_error);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomFlows, PropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace tracesel
