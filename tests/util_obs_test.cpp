// tracesel::obs unit tests (DESIGN.md §10): registry merge correctness
// under ThreadPool contention, span nesting/ordering, histogram bucketing,
// the disabled fast path, and a round-trip through the Session facade that
// checks --trace-out / --metrics-out output is well-formed JSON carrying
// the expected top-level span names. The contention tests are the ones
// scripts/check.sh re-runs under ThreadSanitizer.

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "tracesel/tracesel.hpp"
#include "util/obs.hpp"
#include "util/thread_pool.hpp"

namespace tracesel {
namespace {

// Every test runs with the layer freshly enabled and zeroed, and leaves it
// disabled again: obs state is process-global, and under `ctest` each TEST
// is its own process but a bare `./util_obs_test` run shares one.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::reset();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::reset();
  }
};

TEST_F(ObsTest, HistogramBucketingIsLogScale) {
  // Bucket b >= 1 holds [2^(b-1), 2^b); zero gets its own bucket 0.
  EXPECT_EQ(obs::histogram_bucket(0), 0u);
  EXPECT_EQ(obs::histogram_bucket(1), 1u);
  EXPECT_EQ(obs::histogram_bucket(2), 2u);
  EXPECT_EQ(obs::histogram_bucket(3), 2u);
  EXPECT_EQ(obs::histogram_bucket(4), 3u);
  EXPECT_EQ(obs::histogram_bucket(7), 3u);
  EXPECT_EQ(obs::histogram_bucket(8), 4u);
  EXPECT_EQ(obs::histogram_bucket(1023), 10u);
  EXPECT_EQ(obs::histogram_bucket(1024), 11u);
  EXPECT_EQ(obs::histogram_bucket(~std::uint64_t{0}), 64u);
}

TEST_F(ObsTest, HistogramSnapshotTracksCountSumMinMax) {
  const auto id = obs::registry().histogram("test.hist");
  for (const std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1},
                                std::uint64_t{3}, std::uint64_t{1000}})
    obs::registry().observe(id, v);

  const auto snap = obs::registry().histogram_snapshot("test.hist");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->count, 4u);
  EXPECT_EQ(snap->sum, 1004u);
  EXPECT_EQ(snap->min, 0u);
  EXPECT_EQ(snap->max, 1000u);
  ASSERT_EQ(snap->buckets.size(), obs::kHistogramBuckets);
  EXPECT_EQ(snap->buckets[0], 1u);   // 0
  EXPECT_EQ(snap->buckets[1], 1u);   // 1
  EXPECT_EQ(snap->buckets[2], 1u);   // 3
  EXPECT_EQ(snap->buckets[10], 1u);  // 1000 in [512, 1024)
  std::uint64_t total = 0;
  for (const auto b : snap->buckets) total += b;
  EXPECT_EQ(total, snap->count);

  EXPECT_FALSE(
      obs::registry().histogram_snapshot("test.never_registered").has_value());
}

TEST_F(ObsTest, CounterIdsSurviveReset) {
  const auto id = obs::registry().counter("test.sticky");
  obs::registry().add(id, 7);
  EXPECT_EQ(obs::registry().counter_value("test.sticky"), 7u);

  obs::reset();
  EXPECT_EQ(obs::registry().counter_value("test.sticky"), 0u);

  // The cached id must still be valid after reset (the OBS_* macros cache
  // ids in function-local statics for the process lifetime).
  obs::registry().add(id, 3);
  EXPECT_EQ(obs::registry().counter_value("test.sticky"), 3u);
}

TEST_F(ObsTest, GaugeSetAndMonotoneMax) {
  const auto id = obs::registry().gauge("test.gauge");
  obs::registry().set(id, 42);
  EXPECT_EQ(obs::registry().gauge_value("test.gauge"), 42);
  obs::registry().set(id, 5);
  EXPECT_EQ(obs::registry().gauge_value("test.gauge"), 5);

  obs::registry().set_max(id, 100);
  obs::registry().set_max(id, 50);  // lower: ignored
  EXPECT_EQ(obs::registry().gauge_value("test.gauge"), 100);
}

TEST_F(ObsTest, CounterMergeExactUnderThreadPoolContention) {
  // N threads x M submissions x K increments on one shared counter id, all
  // through per-thread shards; the merged total must be exact. This is the
  // test TSan watches for shard races.
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kPerTask = 100;
  const auto id = obs::registry().counter("test.contended");
  const auto hist = obs::registry().histogram("test.contended_hist");
  {
    util::ThreadPool pool(kWorkers);
    for (std::size_t t = 0; t < kTasks; ++t)
      pool.submit([id, hist] {
        for (std::uint64_t i = 0; i < kPerTask; ++i) {
          obs::registry().add(id, 1);
          obs::registry().observe(hist, i);
        }
      });
    pool.wait();
  }
  EXPECT_EQ(obs::registry().counter_value("test.contended"), kTasks * kPerTask);

  const auto snap = obs::registry().histogram_snapshot("test.contended_hist");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->count, kTasks * kPerTask);
  EXPECT_EQ(snap->max, kPerTask - 1);

  // The per-thread split must account for every increment: worker shards
  // plus the "retired" accumulator (the pool's threads have exited by now).
  const auto full = obs::registry().snapshot();
  std::uint64_t split_total = 0;
  for (const auto& [tid, counters] : full.per_thread_counters)
    for (const auto& [name, value] : counters)
      if (name == "test.contended") split_total += value;
  EXPECT_EQ(split_total, kTasks * kPerTask);
}

TEST_F(ObsTest, SpanNestingRecordsDepthAndContainment) {
  {
    OBS_SPAN("obs_test.outer");
    { OBS_SPAN("obs_test.inner"); }
    { OBS_SPAN("obs_test.inner"); }
  }
  const auto events = obs::trace_events();
  ASSERT_EQ(events.size(), 3u);

  const obs::TraceEvent* outer = nullptr;
  std::vector<const obs::TraceEvent*> inner;
  for (const auto& e : events) {
    if (std::string(e.name) == "obs_test.outer") outer = &e;
    if (std::string(e.name) == "obs_test.inner") inner.push_back(&e);
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_EQ(inner.size(), 2u);

  EXPECT_EQ(outer->depth, 0u);
  for (const auto* e : inner) {
    EXPECT_EQ(e->depth, 1u);
    EXPECT_EQ(e->tid, outer->tid);
    // Containment on the steady clock: inner spans start no earlier and
    // end no later than the outer span.
    EXPECT_GE(e->ts_ns, outer->ts_ns);
    EXPECT_LE(e->ts_ns + e->dur_ns, outer->ts_ns + outer->dur_ns);
  }
  // The two sibling inner spans are disjoint and ordered.
  EXPECT_LE(inner[0]->ts_ns + inner[0]->dur_ns, inner[1]->ts_ns);

  // Span durations are mirrored into "span.<name>" histograms.
  const auto mirrored = obs::registry().histogram_snapshot(
      "span.obs_test.inner");
  ASSERT_TRUE(mirrored.has_value());
  EXPECT_EQ(mirrored->count, 2u);
}

TEST_F(ObsTest, SpansFromPoolWorkersCarryDistinctThreadIds) {
  {
    util::ThreadPool pool(2);
    for (int t = 0; t < 8; ++t)
      pool.submit([] { OBS_SPAN("obs_test.worker"); });
    pool.wait();
  }
  const auto events = obs::trace_events();
  ASSERT_EQ(events.size(), 8u);
  for (const auto& e : events) EXPECT_EQ(e.depth, 0u);
}

TEST_F(ObsTest, DisabledPathRecordsNothing) {
  obs::set_enabled(false);
  OBS_COUNT("test.disabled_counter", 5);
  OBS_GAUGE_SET("test.disabled_gauge", 5);
  OBS_HIST("test.disabled_hist", 5);
  { OBS_SPAN("obs_test.disabled"); }

  EXPECT_EQ(obs::registry().counter_value("test.disabled_counter"), 0u);
  EXPECT_EQ(obs::registry().gauge_value("test.disabled_gauge"), 0);
  EXPECT_FALSE(
      obs::registry().histogram_snapshot("test.disabled_hist").has_value());
  EXPECT_TRUE(obs::trace_events().empty());
}

TEST_F(ObsTest, SpanOpenAcrossDisableStillCompletes) {
  // A span begun while enabled records even if the layer is switched off
  // before it closes — Span latches the decision at construction.
  {
    OBS_SPAN("obs_test.latched");
    obs::set_enabled(false);
  }
  EXPECT_EQ(obs::trace_events().size(), 1u);
}

TEST_F(ObsTest, ProcessGaugesAreMaintainedEvenWhenDisabled) {
  // bench_util.hpp stamps BENCH_*.json from these with the layer off.
  obs::set_enabled(false);
  obs::update_process_gauges();
  EXPECT_GT(obs::peak_rss_kb(), 0);
  EXPECT_GT(obs::registry().gauge_value("process.peak_rss_kb"), 0);
  EXPECT_GE(obs::process_wall_ms(), 0.0);
}

// --- JSON round-trip --------------------------------------------------

// Minimal recursive-descent JSON well-formedness check. util::Json is a
// writer only, so structural validation lives here; the CI smoke step
// additionally runs the real `python3 -m json.tool` over the same files.
class JsonScanner {
 public:
  explicit JsonScanner(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing '"'
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r'))
      ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

TEST_F(ObsTest, JsonScannerSelfCheck) {
  EXPECT_TRUE(JsonScanner(R"({"a": [1, 2.5, -3], "b": {"c": null}})").valid());
  EXPECT_TRUE(JsonScanner(R"(["x", true, false])").valid());
  EXPECT_FALSE(JsonScanner(R"({"a": )").valid());
  EXPECT_FALSE(JsonScanner(R"({"a": 1,})").valid());
  EXPECT_FALSE(JsonScanner("{} trailing").valid());
}

std::string slurp(const std::string& path) {
  std::ifstream file(path);
  std::ostringstream out;
  out << file.rdbuf();
  return out.str();
}

// The paper's Fig. 1a/Fig. 2 running example, inline so the test needs no
// data-dir plumbing (same spec as data/fig2.flow).
constexpr const char* kFig2Spec = R"(
message ReqE 1 IP1 -> Dir
message GntE 1 Dir -> IP1
message Ack  1 IP1 -> Dir

flow CacheCoherence {
  state n initial
  state w
  state c atomic
  state d stop
  n -> w on ReqE
  w -> c on GntE
  c -> d on Ack
}
)";

TEST_F(ObsTest, SessionRoundTripEmitsValidTraceAndMetricsJson) {
  // Session::configure must turn the layer on by itself.
  obs::set_enabled(false);

  const std::string trace_path = ::testing::TempDir() + "/obs_trace.json";
  const std::string metrics_path = ::testing::TempDir() + "/obs_metrics.json";

  auto session = Session::from_spec_text(kFig2Spec);
  selection::SelectorConfig cfg;
  cfg.buffer_width = 2;
  cfg.trace_out = trace_path;
  cfg.metrics_out = metrics_path;
  session.configure(cfg);
  EXPECT_TRUE(obs::enabled());

  session.interleave(2);
  const auto result = session.select();
  EXPECT_FALSE(result.combination.messages.empty());
  ASSERT_TRUE(session.write_observability());

  const std::string trace = slurp(trace_path);
  const std::string metrics = slurp(metrics_path);
  ASSERT_FALSE(trace.empty());
  ASSERT_FALSE(metrics.empty());
  EXPECT_TRUE(JsonScanner(trace).valid()) << trace;
  EXPECT_TRUE(JsonScanner(metrics).valid()) << metrics;

  // Chrome trace-event shape plus the pipeline's top-level span names.
  // "flow.parse" is absent here by design: the spec was parsed at session
  // construction, before configure() switched the layer on (the CLI
  // enables obs before dispatch, so its traces do include the parse).
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  for (const char* span :
       {"interleave.build", "session.interleave",
        "selection.step1.enumerate", "selection.step2.score",
        "session.select"})
    EXPECT_NE(trace.find(std::string("\"name\": \"") + span + "\""),
              std::string::npos)
        << "missing span " << span << " in " << trace;

  EXPECT_NE(metrics.find("\"counters\""), std::string::npos);
  EXPECT_NE(metrics.find("\"interleave.nodes\""), std::string::npos);
  EXPECT_NE(metrics.find("\"selection.combinations\""), std::string::npos);

  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

TEST_F(ObsTest, WriteObservabilityIsNoOpWithoutSinks) {
  auto session = Session::from_spec_text(kFig2Spec);
  EXPECT_TRUE(session.write_observability());
}

TEST_F(ObsTest, MetricsJsonContainsPerThreadSplit) {
  OBS_COUNT("test.split", 2);
  const auto json = obs::metrics_json().dump(2);
  EXPECT_TRUE(JsonScanner(json).valid()) << json;
  EXPECT_NE(json.find("\"per_thread_counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.split\""), std::string::npos);
}

// --- cross-process telemetry ------------------------------------------

obs::HistogramSnapshot make_hist(const std::string& name,
                                 std::vector<std::uint64_t> values) {
  obs::HistogramSnapshot h;
  h.name = name;
  h.buckets.assign(obs::kHistogramBuckets, 0);
  h.min = ~std::uint64_t{0};
  for (const std::uint64_t v : values) {
    ++h.count;
    h.sum += v;
    h.min = std::min(h.min, v);
    h.max = std::max(h.max, v);
    ++h.buckets[obs::histogram_bucket(v)];
  }
  if (h.count == 0) h.min = 0;  // snapshot convention: 0 when empty
  return h;
}

TEST_F(ObsTest, MergeHistogramEmptyPlusNonEmptyKeepsExactMinMax) {
  // The empty side's sentinel min (0 in the snapshot convention) must not
  // leak: empty ⊕ {5, 9} has min 5, not 0 — in both merge directions.
  obs::HistogramSnapshot empty = make_hist("h", {});
  const obs::HistogramSnapshot filled = make_hist("h", {5, 9});

  obs::HistogramSnapshot into = empty;
  obs::merge_histogram(into, filled);
  EXPECT_EQ(into.count, 2u);
  EXPECT_EQ(into.sum, 14u);
  EXPECT_EQ(into.min, 5u);
  EXPECT_EQ(into.max, 9u);

  into = filled;
  obs::merge_histogram(into, empty);
  EXPECT_EQ(into.count, 2u);
  EXPECT_EQ(into.min, 5u);
  EXPECT_EQ(into.max, 9u);

  // empty ⊕ empty stays the empty snapshot.
  into = empty;
  obs::merge_histogram(into, empty);
  EXPECT_EQ(into.count, 0u);
  EXPECT_EQ(into.min, 0u);
  EXPECT_EQ(into.max, 0u);
}

TEST_F(ObsTest, MergeHistogramSumsBucketsIncludingOverflow) {
  // Values at the top of the range land in the final (overflow) bucket 64
  // and must merge by addition like every other bucket.
  const std::uint64_t huge = ~std::uint64_t{0};
  obs::HistogramSnapshot a = make_hist("h", {0, 1, huge});
  const obs::HistogramSnapshot b = make_hist("h", {3, huge, huge - 1});
  obs::merge_histogram(a, b);
  EXPECT_EQ(a.count, 6u);
  EXPECT_EQ(a.min, 0u);
  EXPECT_EQ(a.max, huge);
  EXPECT_EQ(a.buckets[0], 1u);                            // 0
  EXPECT_EQ(a.buckets[1], 1u);                            // 1
  EXPECT_EQ(a.buckets[2], 1u);                            // 3
  EXPECT_EQ(a.buckets[obs::kHistogramBuckets - 1], 3u);   // huge x3
  std::uint64_t total = 0;
  for (const auto c : a.buckets) total += c;
  EXPECT_EQ(total, a.count);
}

TEST_F(ObsTest, MergeMetricsSumsCountersMaxesGauges) {
  obs::MetricsSnapshot into;
  into.counters = {{"c.shared", 3}, {"c.only_into", 1}};
  into.gauges = {{"g.shared", 10}};
  into.histograms = {make_hist("h.shared", {2})};

  obs::MetricsSnapshot from;
  from.counters = {{"c.shared", 4}, {"c.only_from", 9}};
  from.gauges = {{"g.shared", 7}, {"g.only_from", -2}};
  from.histograms = {make_hist("h.shared", {8}), make_hist("h.new", {1})};

  obs::merge_metrics(into, from);
  auto counter = [&](std::string_view name) -> std::uint64_t {
    for (const auto& [n, v] : into.counters)
      if (n == name) return v;
    return ~std::uint64_t{0};
  };
  EXPECT_EQ(counter("c.shared"), 7u);
  EXPECT_EQ(counter("c.only_into"), 1u);
  EXPECT_EQ(counter("c.only_from"), 9u);
  // Gauges merge by max (high-water semantics across processes).
  EXPECT_EQ(into.gauges[0].second, 10);
  EXPECT_EQ(into.gauges[1].second, -2);
  ASSERT_EQ(into.histograms.size(), 2u);
  EXPECT_EQ(into.histograms[0].count, 2u);
  EXPECT_EQ(into.histograms[0].min, 2u);
  EXPECT_EQ(into.histograms[0].max, 8u);
}

TEST_F(ObsTest, TelemetryWireRoundTripPreservesEverything) {
  OBS_COUNT("test.rt_counter", 11);
  OBS_GAUGE_SET("test.rt_gauge", -4);
  OBS_HIST("test.rt_hist", 1000);
  {
    OBS_SPAN("obs_test.rt_outer");
    OBS_SPAN("obs_test.rt_inner");
  }
  obs::set_process_label("rt-worker");
  const obs::ProcessTelemetry sent = obs::capture_telemetry();
  ASSERT_GE(sent.events.size(), 2u);

  const std::string wire = obs::serialize_telemetry(sent);
  auto parsed = obs::parse_telemetry(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const obs::ProcessTelemetry& got = parsed.value();

  EXPECT_EQ(got.label, "rt-worker");
  EXPECT_EQ(got.pid, sent.pid);
  EXPECT_EQ(got.epoch_ns, sent.epoch_ns);
  auto counter = [&](std::string_view name) -> std::uint64_t {
    for (const auto& [n, v] : got.metrics.counters)
      if (n == name) return v;
    return 0;
  };
  EXPECT_EQ(counter("test.rt_counter"), 11u);

  bool found_gauge = false;
  for (const auto& [n, v] : got.metrics.gauges)
    if (n == "test.rt_gauge") {
      found_gauge = true;
      EXPECT_EQ(v, -4);
    }
  EXPECT_TRUE(found_gauge);

  bool found_hist = false;
  for (const auto& h : got.metrics.histograms)
    if (h.name == "test.rt_hist") {
      found_hist = true;
      EXPECT_EQ(h.count, 1u);
      EXPECT_EQ(h.sum, 1000u);
      EXPECT_EQ(h.min, 1000u);
      EXPECT_EQ(h.max, 1000u);
      ASSERT_EQ(h.buckets.size(), obs::kHistogramBuckets);
      EXPECT_EQ(h.buckets[obs::histogram_bucket(1000)], 1u);
    }
  EXPECT_TRUE(found_hist);

  ASSERT_EQ(got.events.size(), sent.events.size());
  for (std::size_t i = 0; i < got.events.size(); ++i) {
    EXPECT_EQ(got.events[i].name, std::string(sent.events[i].name));
    EXPECT_EQ(got.events[i].ts_ns, sent.events[i].ts_ns);
    EXPECT_EQ(got.events[i].dur_ns, sent.events[i].dur_ns);
    EXPECT_EQ(got.events[i].span_id, sent.events[i].span_id);
    EXPECT_EQ(got.events[i].parent_id, sent.events[i].parent_id);
    EXPECT_EQ(got.events[i].depth, sent.events[i].depth);
  }
}

TEST_F(ObsTest, TelemetryParserRejectsMalformedInputWithTypedErrors) {
  OBS_COUNT("test.reject", 1);
  { OBS_SPAN("obs_test.reject"); }
  const std::string wire = obs::serialize_telemetry(obs::capture_telemetry());

  // Wrong envelope tag / empty input.
  EXPECT_FALSE(obs::parse_telemetry("").ok());
  EXPECT_FALSE(obs::parse_telemetry("not a telemetry frame").ok());

  // Version skew: a future version must be rejected, not misparsed.
  std::string skewed = wire;
  const std::size_t vpos = skewed.find(" 1 ");
  ASSERT_NE(vpos, std::string::npos);
  skewed.replace(vpos, 3, " 2 ");
  EXPECT_FALSE(obs::parse_telemetry(skewed).ok());

  // Checksum corruption (flip a payload byte).
  std::string corrupt = wire;
  corrupt[corrupt.size() - 3] ^= 0x01;
  EXPECT_FALSE(obs::parse_telemetry(corrupt).ok());

  // Fuzz-style truncation sweep: every proper prefix must be rejected
  // without crashing (kParse or kCorruptCapture, never a throw).
  for (std::size_t len = 0; len < wire.size();
       len += std::max<std::size_t>(1, wire.size() / 97))
    EXPECT_FALSE(obs::parse_telemetry(wire.substr(0, len)).ok())
        << "prefix of length " << len << " unexpectedly parsed";
}

TEST_F(ObsTest, AdoptRemoteTelemetryRebasesOntoLocalEpochAndMergesLanes) {
  OBS_COUNT("test.adopt", 5);

  obs::ProcessTelemetry remote;
  remote.label = "fake-worker";
  remote.pid = 4242;
  // Remote epoch 1 ms *after* ours (it started later on the shared steady
  // clock): its timestamps rebase forward by the difference.
  remote.epoch_ns = obs::trace_epoch_ns() + 1'000'000;
  remote.metrics.counters = {{"test.adopt", 7}, {"test.remote_only", 2}};
  obs::WireTraceEvent ev;
  ev.name = "remote.unit";
  ev.ts_ns = 500;
  ev.dur_ns = 100;
  ev.span_id = 0xABC;
  ev.parent_id = 0xDEF;
  remote.events.push_back(ev);
  obs::adopt_remote_telemetry(remote);

  auto lanes = obs::adopted_telemetry();
  ASSERT_EQ(lanes.size(), 1u);
  EXPECT_EQ(lanes[0].label, "fake-worker");
  EXPECT_EQ(lanes[0].epoch_ns, obs::trace_epoch_ns());
  ASSERT_EQ(lanes[0].events.size(), 1u);
  EXPECT_EQ(lanes[0].events[0].ts_ns, 500u + 1'000'000u);

  // Same (pid, label) adopts again: merged into the same lane, counters
  // summed, events appended.
  obs::adopt_remote_telemetry(remote);
  lanes = obs::adopted_telemetry();
  ASSERT_EQ(lanes.size(), 1u);
  EXPECT_EQ(lanes[0].events.size(), 2u);

  // Aggregated metrics JSON = local + all remote lanes, with a
  // per-process breakout.
  const std::string metrics = obs::metrics_json().dump(2);
  EXPECT_TRUE(JsonScanner(metrics).valid()) << metrics;
  EXPECT_NE(metrics.find("\"test.adopt\": 19"), std::string::npos)
      << metrics;  // 5 local + 7 + 7 remote
  EXPECT_NE(metrics.find("\"test.remote_only\": 4"), std::string::npos);
  EXPECT_NE(metrics.find("\"per_process\""), std::string::npos);
  EXPECT_NE(metrics.find("\"fake-worker #4242\""), std::string::npos);

  // The Chrome trace grows one lane per adopted process, and the remote
  // events carry their span/parent ids.
  const std::string trace = obs::chrome_trace_json().dump(2);
  EXPECT_TRUE(JsonScanner(trace).valid());
  EXPECT_NE(trace.find("\"fake-worker #4242\""), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"remote.unit\""), std::string::npos);
  EXPECT_NE(trace.find("\"0xabc\""), std::string::npos);

  // reset() clears adopted lanes.
  obs::reset();
  EXPECT_TRUE(obs::adopted_telemetry().empty());
}

TEST_F(ObsTest, TraceContextParentsThreadRootSpans) {
  // With no context installed, ensure_trace_context mints a nonzero id
  // and is idempotent.
  EXPECT_EQ(obs::trace_context().trace_id, 0u);
  const auto ctx = obs::ensure_trace_context();
  EXPECT_NE(ctx.trace_id, 0u);
  EXPECT_EQ(obs::ensure_trace_context().trace_id, ctx.trace_id);

  // A remote process installs the coordinator's context: its thread-root
  // spans parent under the coordinator's span id.
  obs::set_trace_context({ctx.trace_id, 0x1234});
  std::uint64_t outer_id = 0;
  {
    obs::Span outer("obs_test.ctx_root");
    outer_id = outer.id();
    EXPECT_EQ(obs::current_span_id(), outer_id);
    { obs::Span inner("obs_test.ctx_child"); }
  }
  const auto events = obs::trace_events();
  const obs::TraceEvent* root = nullptr;
  const obs::TraceEvent* child = nullptr;
  for (const auto& e : events) {
    if (std::string(e.name) == "obs_test.ctx_root") root = &e;
    if (std::string(e.name) == "obs_test.ctx_child") child = &e;
  }
  ASSERT_NE(root, nullptr);
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(root->parent_id, 0x1234u);
  EXPECT_EQ(child->parent_id, outer_id);
  EXPECT_NE(root->span_id, 0u);

  // The context survives reset() (values clear, identity does not).
  obs::reset();
  EXPECT_EQ(obs::trace_context().trace_id, ctx.trace_id);
  obs::set_trace_context({});  // leave no context for the next test
}

TEST_F(ObsTest, PrometheusTextExposesCountersAndCumulativeBuckets) {
  OBS_COUNT("test.prom_counter", 3);
  OBS_GAUGE_SET("test.prom_gauge", 9);
  OBS_HIST("test.prom_hist", 4);
  OBS_HIST("test.prom_hist", 90);
  const std::string text = obs::prometheus_text();
  EXPECT_NE(text.find("tracesel_test_prom_counter 3"), std::string::npos)
      << text;
  EXPECT_NE(text.find("tracesel_test_prom_gauge 9"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tracesel_test_prom_hist histogram"),
            std::string::npos);
  EXPECT_NE(text.find("tracesel_test_prom_hist_count 2"), std::string::npos);
  EXPECT_NE(text.find("tracesel_test_prom_hist_sum 94"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 2"), std::string::npos);
  // Cumulative le buckets: the bucket holding 4 ([4,8) -> le 7) already
  // counts it, and every later bucket includes it too.
  EXPECT_NE(text.find("le=\"7\"} 1"), std::string::npos) << text;
}

}  // namespace
}  // namespace tracesel
