// tracesel::obs unit tests (DESIGN.md §10): registry merge correctness
// under ThreadPool contention, span nesting/ordering, histogram bucketing,
// the disabled fast path, and a round-trip through the Session facade that
// checks --trace-out / --metrics-out output is well-formed JSON carrying
// the expected top-level span names. The contention tests are the ones
// scripts/check.sh re-runs under ThreadSanitizer.

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "tracesel/tracesel.hpp"
#include "util/obs.hpp"
#include "util/thread_pool.hpp"

namespace tracesel {
namespace {

// Every test runs with the layer freshly enabled and zeroed, and leaves it
// disabled again: obs state is process-global, and under `ctest` each TEST
// is its own process but a bare `./util_obs_test` run shares one.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::reset();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::reset();
  }
};

TEST_F(ObsTest, HistogramBucketingIsLogScale) {
  // Bucket b >= 1 holds [2^(b-1), 2^b); zero gets its own bucket 0.
  EXPECT_EQ(obs::histogram_bucket(0), 0u);
  EXPECT_EQ(obs::histogram_bucket(1), 1u);
  EXPECT_EQ(obs::histogram_bucket(2), 2u);
  EXPECT_EQ(obs::histogram_bucket(3), 2u);
  EXPECT_EQ(obs::histogram_bucket(4), 3u);
  EXPECT_EQ(obs::histogram_bucket(7), 3u);
  EXPECT_EQ(obs::histogram_bucket(8), 4u);
  EXPECT_EQ(obs::histogram_bucket(1023), 10u);
  EXPECT_EQ(obs::histogram_bucket(1024), 11u);
  EXPECT_EQ(obs::histogram_bucket(~std::uint64_t{0}), 64u);
}

TEST_F(ObsTest, HistogramSnapshotTracksCountSumMinMax) {
  const auto id = obs::registry().histogram("test.hist");
  for (const std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1},
                                std::uint64_t{3}, std::uint64_t{1000}})
    obs::registry().observe(id, v);

  const auto snap = obs::registry().histogram_snapshot("test.hist");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->count, 4u);
  EXPECT_EQ(snap->sum, 1004u);
  EXPECT_EQ(snap->min, 0u);
  EXPECT_EQ(snap->max, 1000u);
  ASSERT_EQ(snap->buckets.size(), obs::kHistogramBuckets);
  EXPECT_EQ(snap->buckets[0], 1u);   // 0
  EXPECT_EQ(snap->buckets[1], 1u);   // 1
  EXPECT_EQ(snap->buckets[2], 1u);   // 3
  EXPECT_EQ(snap->buckets[10], 1u);  // 1000 in [512, 1024)
  std::uint64_t total = 0;
  for (const auto b : snap->buckets) total += b;
  EXPECT_EQ(total, snap->count);

  EXPECT_FALSE(
      obs::registry().histogram_snapshot("test.never_registered").has_value());
}

TEST_F(ObsTest, CounterIdsSurviveReset) {
  const auto id = obs::registry().counter("test.sticky");
  obs::registry().add(id, 7);
  EXPECT_EQ(obs::registry().counter_value("test.sticky"), 7u);

  obs::reset();
  EXPECT_EQ(obs::registry().counter_value("test.sticky"), 0u);

  // The cached id must still be valid after reset (the OBS_* macros cache
  // ids in function-local statics for the process lifetime).
  obs::registry().add(id, 3);
  EXPECT_EQ(obs::registry().counter_value("test.sticky"), 3u);
}

TEST_F(ObsTest, GaugeSetAndMonotoneMax) {
  const auto id = obs::registry().gauge("test.gauge");
  obs::registry().set(id, 42);
  EXPECT_EQ(obs::registry().gauge_value("test.gauge"), 42);
  obs::registry().set(id, 5);
  EXPECT_EQ(obs::registry().gauge_value("test.gauge"), 5);

  obs::registry().set_max(id, 100);
  obs::registry().set_max(id, 50);  // lower: ignored
  EXPECT_EQ(obs::registry().gauge_value("test.gauge"), 100);
}

TEST_F(ObsTest, CounterMergeExactUnderThreadPoolContention) {
  // N threads x M submissions x K increments on one shared counter id, all
  // through per-thread shards; the merged total must be exact. This is the
  // test TSan watches for shard races.
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kPerTask = 100;
  const auto id = obs::registry().counter("test.contended");
  const auto hist = obs::registry().histogram("test.contended_hist");
  {
    util::ThreadPool pool(kWorkers);
    for (std::size_t t = 0; t < kTasks; ++t)
      pool.submit([id, hist] {
        for (std::uint64_t i = 0; i < kPerTask; ++i) {
          obs::registry().add(id, 1);
          obs::registry().observe(hist, i);
        }
      });
    pool.wait();
  }
  EXPECT_EQ(obs::registry().counter_value("test.contended"), kTasks * kPerTask);

  const auto snap = obs::registry().histogram_snapshot("test.contended_hist");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->count, kTasks * kPerTask);
  EXPECT_EQ(snap->max, kPerTask - 1);

  // The per-thread split must account for every increment: worker shards
  // plus the "retired" accumulator (the pool's threads have exited by now).
  const auto full = obs::registry().snapshot();
  std::uint64_t split_total = 0;
  for (const auto& [tid, counters] : full.per_thread_counters)
    for (const auto& [name, value] : counters)
      if (name == "test.contended") split_total += value;
  EXPECT_EQ(split_total, kTasks * kPerTask);
}

TEST_F(ObsTest, SpanNestingRecordsDepthAndContainment) {
  {
    OBS_SPAN("obs_test.outer");
    { OBS_SPAN("obs_test.inner"); }
    { OBS_SPAN("obs_test.inner"); }
  }
  const auto events = obs::trace_events();
  ASSERT_EQ(events.size(), 3u);

  const obs::TraceEvent* outer = nullptr;
  std::vector<const obs::TraceEvent*> inner;
  for (const auto& e : events) {
    if (std::string(e.name) == "obs_test.outer") outer = &e;
    if (std::string(e.name) == "obs_test.inner") inner.push_back(&e);
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_EQ(inner.size(), 2u);

  EXPECT_EQ(outer->depth, 0u);
  for (const auto* e : inner) {
    EXPECT_EQ(e->depth, 1u);
    EXPECT_EQ(e->tid, outer->tid);
    // Containment on the steady clock: inner spans start no earlier and
    // end no later than the outer span.
    EXPECT_GE(e->ts_ns, outer->ts_ns);
    EXPECT_LE(e->ts_ns + e->dur_ns, outer->ts_ns + outer->dur_ns);
  }
  // The two sibling inner spans are disjoint and ordered.
  EXPECT_LE(inner[0]->ts_ns + inner[0]->dur_ns, inner[1]->ts_ns);

  // Span durations are mirrored into "span.<name>" histograms.
  const auto mirrored = obs::registry().histogram_snapshot(
      "span.obs_test.inner");
  ASSERT_TRUE(mirrored.has_value());
  EXPECT_EQ(mirrored->count, 2u);
}

TEST_F(ObsTest, SpansFromPoolWorkersCarryDistinctThreadIds) {
  {
    util::ThreadPool pool(2);
    for (int t = 0; t < 8; ++t)
      pool.submit([] { OBS_SPAN("obs_test.worker"); });
    pool.wait();
  }
  const auto events = obs::trace_events();
  ASSERT_EQ(events.size(), 8u);
  for (const auto& e : events) EXPECT_EQ(e.depth, 0u);
}

TEST_F(ObsTest, DisabledPathRecordsNothing) {
  obs::set_enabled(false);
  OBS_COUNT("test.disabled_counter", 5);
  OBS_GAUGE_SET("test.disabled_gauge", 5);
  OBS_HIST("test.disabled_hist", 5);
  { OBS_SPAN("obs_test.disabled"); }

  EXPECT_EQ(obs::registry().counter_value("test.disabled_counter"), 0u);
  EXPECT_EQ(obs::registry().gauge_value("test.disabled_gauge"), 0);
  EXPECT_FALSE(
      obs::registry().histogram_snapshot("test.disabled_hist").has_value());
  EXPECT_TRUE(obs::trace_events().empty());
}

TEST_F(ObsTest, SpanOpenAcrossDisableStillCompletes) {
  // A span begun while enabled records even if the layer is switched off
  // before it closes — Span latches the decision at construction.
  {
    OBS_SPAN("obs_test.latched");
    obs::set_enabled(false);
  }
  EXPECT_EQ(obs::trace_events().size(), 1u);
}

TEST_F(ObsTest, ProcessGaugesAreMaintainedEvenWhenDisabled) {
  // bench_util.hpp stamps BENCH_*.json from these with the layer off.
  obs::set_enabled(false);
  obs::update_process_gauges();
  EXPECT_GT(obs::peak_rss_kb(), 0);
  EXPECT_GT(obs::registry().gauge_value("process.peak_rss_kb"), 0);
  EXPECT_GE(obs::process_wall_ms(), 0.0);
}

// --- JSON round-trip --------------------------------------------------

// Minimal recursive-descent JSON well-formedness check. util::Json is a
// writer only, so structural validation lives here; the CI smoke step
// additionally runs the real `python3 -m json.tool` over the same files.
class JsonScanner {
 public:
  explicit JsonScanner(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing '"'
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r'))
      ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

TEST_F(ObsTest, JsonScannerSelfCheck) {
  EXPECT_TRUE(JsonScanner(R"({"a": [1, 2.5, -3], "b": {"c": null}})").valid());
  EXPECT_TRUE(JsonScanner(R"(["x", true, false])").valid());
  EXPECT_FALSE(JsonScanner(R"({"a": )").valid());
  EXPECT_FALSE(JsonScanner(R"({"a": 1,})").valid());
  EXPECT_FALSE(JsonScanner("{} trailing").valid());
}

std::string slurp(const std::string& path) {
  std::ifstream file(path);
  std::ostringstream out;
  out << file.rdbuf();
  return out.str();
}

// The paper's Fig. 1a/Fig. 2 running example, inline so the test needs no
// data-dir plumbing (same spec as data/fig2.flow).
constexpr const char* kFig2Spec = R"(
message ReqE 1 IP1 -> Dir
message GntE 1 Dir -> IP1
message Ack  1 IP1 -> Dir

flow CacheCoherence {
  state n initial
  state w
  state c atomic
  state d stop
  n -> w on ReqE
  w -> c on GntE
  c -> d on Ack
}
)";

TEST_F(ObsTest, SessionRoundTripEmitsValidTraceAndMetricsJson) {
  // Session::configure must turn the layer on by itself.
  obs::set_enabled(false);

  const std::string trace_path = ::testing::TempDir() + "/obs_trace.json";
  const std::string metrics_path = ::testing::TempDir() + "/obs_metrics.json";

  auto session = Session::from_spec_text(kFig2Spec);
  selection::SelectorConfig cfg;
  cfg.buffer_width = 2;
  cfg.trace_out = trace_path;
  cfg.metrics_out = metrics_path;
  session.configure(cfg);
  EXPECT_TRUE(obs::enabled());

  session.interleave(2);
  const auto result = session.select();
  EXPECT_FALSE(result.combination.messages.empty());
  ASSERT_TRUE(session.write_observability());

  const std::string trace = slurp(trace_path);
  const std::string metrics = slurp(metrics_path);
  ASSERT_FALSE(trace.empty());
  ASSERT_FALSE(metrics.empty());
  EXPECT_TRUE(JsonScanner(trace).valid()) << trace;
  EXPECT_TRUE(JsonScanner(metrics).valid()) << metrics;

  // Chrome trace-event shape plus the pipeline's top-level span names.
  // "flow.parse" is absent here by design: the spec was parsed at session
  // construction, before configure() switched the layer on (the CLI
  // enables obs before dispatch, so its traces do include the parse).
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  for (const char* span :
       {"interleave.build", "session.interleave",
        "selection.step1.enumerate", "selection.step2.score",
        "session.select"})
    EXPECT_NE(trace.find(std::string("\"name\": \"") + span + "\""),
              std::string::npos)
        << "missing span " << span << " in " << trace;

  EXPECT_NE(metrics.find("\"counters\""), std::string::npos);
  EXPECT_NE(metrics.find("\"interleave.nodes\""), std::string::npos);
  EXPECT_NE(metrics.find("\"selection.combinations\""), std::string::npos);

  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

TEST_F(ObsTest, WriteObservabilityIsNoOpWithoutSinks) {
  auto session = Session::from_spec_text(kFig2Spec);
  EXPECT_TRUE(session.write_observability());
}

TEST_F(ObsTest, MetricsJsonContainsPerThreadSplit) {
  OBS_COUNT("test.split", 2);
  const auto json = obs::metrics_json().dump(2);
  EXPECT_TRUE(JsonScanner(json).valid()) << json;
  EXPECT_NE(json.find("\"per_thread_counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.split\""), std::string::npos);
}

}  // namespace
}  // namespace tracesel
