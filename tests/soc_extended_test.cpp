#include "soc/t2_extended.hpp"

#include "soc/simulator.hpp"

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "flow/execution.hpp"
#include "selection/coverage.hpp"
#include "selection/selector.hpp"

namespace tracesel::soc {
namespace {

class ExtendedTest : public ::testing::Test {
 protected:
  T2ExtendedDesign design_;
};

TEST_F(ExtendedTest, BranchingFlowsValidate) {
  EXPECT_EQ(design_.mondo_nack().num_states(), 8u);
  EXPECT_EQ(design_.mondo_nack().stop_states().size(), 2u);
  EXPECT_EQ(design_.pior_retry().stop_states().size(), 2u);
  // Delivered branches two ways.
  const auto& mon = design_.mondo_nack();
  EXPECT_EQ(mon.outgoing(mon.require_state("Delivered")).size(), 2u);
}

TEST_F(ExtendedTest, InterleavingOfBranchingFlowsBuilds) {
  const auto u = flow::InterleavedFlow::build(flow::make_instances(
      {&design_.mondo_nack(), &design_.pior_retry()}, 2));
  EXPECT_GT(u.num_nodes(), 0u);
  EXPECT_GT(u.stop_nodes().size(), 1u);  // multiple stop combinations
  EXPECT_GT(u.count_paths(), 0.0);
}

TEST_F(ExtendedTest, RandomExecutionsReachBothOutcomes) {
  const auto u = flow::InterleavedFlow::build(
      flow::make_instances({&design_.mondo_nack()}, 1));
  util::Rng rng{3};
  bool saw_ack = false, saw_nack = false;
  for (int i = 0; i < 100 && !(saw_ack && saw_nack); ++i) {
    const auto e = flow::random_execution(u, rng);
    ASSERT_TRUE(e.completed);
    for (const auto& im : e.trace()) {
      if (im.message == design_.mondoacknack) saw_ack = true;
      if (im.message == design_.mondonack) saw_nack = true;
    }
  }
  EXPECT_TRUE(saw_ack);
  EXPECT_TRUE(saw_nack);
}

TEST_F(ExtendedTest, BranchMessagesAppearInFewerPathsThanTrunkMessages) {
  // In branching DAGs a branch message appears only in its branch's
  // executions while trunk messages appear in all of them.
  const auto u = flow::InterleavedFlow::build(
      flow::make_instances({&design_.mondo_nack()}, 1));
  const double total = u.count_paths();
  const std::vector<flow::MessageId> sel_trunk{design_.reqtot};
  const std::vector<flow::MessageId> sel_branch{design_.mondonack};
  const double trunk_paths =
      u.count_consistent_paths(sel_trunk, {{design_.reqtot, 1}});
  const double branch_paths =
      u.count_consistent_paths(sel_branch, {{design_.mondonack, 1}});
  EXPECT_DOUBLE_EQ(trunk_paths, total);  // every execution sends reqtot
  EXPECT_LT(branch_paths, total);        // only the nack branch
  EXPECT_GT(branch_paths, 0.0);
}

TEST_F(ExtendedTest, SelectionWorksOnBranchingInterleaving) {
  const auto u = flow::InterleavedFlow::build(flow::make_instances(
      {&design_.mondo_nack(), &design_.pior_retry()}, 2));
  const selection::MessageSelector selector(design_.catalog(), u);
  selection::SelectorConfig cfg;
  cfg.buffer_width = 32;
  const auto r = selector.select(cfg);
  EXPECT_FALSE(r.combination.messages.empty());
  EXPECT_LE(r.used_width, 32u);
  EXPECT_GT(r.coverage, 0.0);
  EXPECT_GT(r.gain, 0.0);
}

TEST_F(ExtendedTest, KnapsackStillMatchesExhaustiveOnBranches) {
  const auto u = flow::InterleavedFlow::build(
      flow::make_instances({&design_.mondo_nack()}, 2));
  const selection::MessageSelector selector(design_.catalog(), u);
  for (std::uint32_t width : {8u, 16u, 24u}) {
    selection::SelectorConfig ex, kn;
    ex.buffer_width = kn.buffer_width = width;
    ex.mode = selection::SearchMode::kExhaustive;
    kn.mode = selection::SearchMode::kKnapsack;
    ex.packing = kn.packing = false;
    EXPECT_DOUBLE_EQ(selector.select(ex).gain, selector.select(kn).gain)
        << width;
  }
}

TEST_F(ExtendedTest, ObservingBranchMessageLocalizesOutcome) {
  // Seeing mondonack in the trace proves the nack path was taken; the
  // consistent-path count must equal the nack-side executions only.
  const auto u = flow::InterleavedFlow::build(
      flow::make_instances({&design_.mondo_nack()}, 1));
  const std::vector<flow::MessageId> selected{design_.mondoacknack,
                                              design_.mondonack};
  const double total = u.count_paths();
  const double nack_paths = u.count_consistent_paths(
      selected, {{design_.mondonack, 1}});
  const double ack_paths = u.count_consistent_paths(
      selected, {{design_.mondoacknack, 1}});
  EXPECT_DOUBLE_EQ(nack_paths + ack_paths, total);
  EXPECT_GT(nack_paths, 0.0);
  EXPECT_GT(ack_paths, 0.0);
}

TEST_F(ExtendedTest, CoverageOfBranchMessagesIsPartial) {
  const auto u = flow::InterleavedFlow::build(
      flow::make_instances({&design_.mondo_nack()}, 1));
  // Tracing only the nack branch covers its states but not the ack side.
  const double nack_cov = selection::flow_spec_coverage(
      u, std::vector<flow::MessageId>{design_.mondonack, design_.reqretry});
  EXPECT_GT(nack_cov, 0.0);
  EXPECT_LT(nack_cov, 0.5);
}

TEST_F(ExtendedTest, GeneralSimulatorRunsBranchingFlows) {
  SocSimulator sim(design_.catalog(),
                   {&design_.mondo_nack(), &design_.pior_retry()}, 2);
  SimOptions opt;
  opt.sessions = 4;
  const auto r = sim.run(opt);
  EXPECT_FALSE(r.failed);
  EXPECT_GT(r.messages.size(), 0u);
  // Branch choices vary: across sessions both ack and nack paths appear.
  bool ack = false, nack = false;
  for (const auto& tm : r.messages) {
    if (tm.msg.message == design_.mondoacknack) ack = true;
    if (tm.msg.message == design_.mondonack) nack = true;
  }
  EXPECT_TRUE(ack || nack);
}

TEST_F(ExtendedTest, GeneralSimulatorRejectsBadArguments) {
  EXPECT_THROW(SocSimulator(design_.catalog(), {}, 2),
               std::invalid_argument);
  EXPECT_THROW(
      SocSimulator(design_.catalog(), {&design_.mondo_nack()}, 0),
      std::invalid_argument);
}

TEST_F(ExtendedTest, DropOnBranchOnlyFailsWhenBranchTaken) {
  // A drop bug on the NACK path stalls only executions that take it;
  // sessions where every instance gets ACKed complete cleanly.
  SocSimulator sim(design_.catalog(), {&design_.mondo_nack()}, 2);
  bug::Bug b;
  b.id = 100;
  b.effect = bug::BugEffect::kDropMessage;
  b.target = design_.reqretry;
  b.symptom = "HANG: retry lost";
  sim.inject(b);
  SimOptions opt;
  opt.sessions = 16;
  opt.seed = 5;
  const auto r = sim.run(opt);
  // With 16 sessions x 2 instances some execution takes the nack branch.
  EXPECT_TRUE(r.failed);
  EXPECT_EQ(r.failure, "HANG: retry lost");
  // And the trace contains successful ack-side completions too.
  bool ack = false;
  for (const auto& tm : r.messages) {
    if (tm.msg.message == design_.mondoacknack) ack = true;
  }
  EXPECT_TRUE(ack);
}

TEST_F(ExtendedTest, IntermittentBugManifestsEventually) {
  // trigger_probability < 1 models intermittent manifestation: with enough
  // occurrences the symptom still fires, and earlier sessions look golden.
  SocSimulator sim(design_.catalog(), {&design_.mondo_nack()}, 2);
  bug::Bug b;
  b.id = 101;
  b.effect = bug::BugEffect::kCorruptValue;
  b.target = design_.dmusiidata;
  b.trigger_probability = 0.3;
  b.symptom = "FAIL: Bad Trap";
  sim.inject(b);
  SimOptions opt;
  opt.sessions = 20;
  const auto r = sim.run(opt);
  EXPECT_TRUE(r.failed);
}

TEST_F(ExtendedTest, MultipleSimultaneousBugsCompose) {
  SocSimulator sim(design_.catalog(),
                   {&design_.mondo_nack(), &design_.pior_retry()}, 2);
  bug::Bug corrupt;
  corrupt.id = 102;
  corrupt.effect = bug::BugEffect::kCorruptValue;
  corrupt.target = design_.dmusiidata;
  bug::Bug misroute;
  misroute.id = 103;
  misroute.effect = bug::BugEffect::kMisroute;
  misroute.target = design_.piordcrd;
  misroute.misroute_dest = "SIU";
  sim.inject(corrupt);
  sim.inject(misroute);
  EXPECT_EQ(sim.bugs().size(), 2u);

  SimOptions opt;
  opt.sessions = 6;
  const auto buggy = sim.run(opt);

  // Branch choices make index-aligned golden comparison meaningless here;
  // check the effects directly: every dmusiidata value deviates from the
  // golden content function, and every piordcrd is misrouted.
  std::map<std::tuple<flow::MessageId, std::uint32_t, std::uint32_t>,
           std::uint32_t>
      occ;  // occurrence counters reset per session, like the simulator's
  bool saw_dmusiidata = false, saw_piordcrd = false;
  for (const auto& tm : buggy.messages) {
    const std::uint32_t occurrence =
        occ[{tm.msg.message, tm.msg.index, tm.session}]++;
    if (tm.msg.message == design_.dmusiidata) {
      saw_dmusiidata = true;
      EXPECT_NE(tm.value,
                SocSimulator::golden_value(tm.msg.message, tm.msg.index,
                                           tm.session, occurrence, 20));
    }
    if (tm.msg.message == design_.piordcrd) {
      saw_piordcrd = true;
      EXPECT_EQ(tm.dst, "SIU");
    }
  }
  EXPECT_TRUE(saw_dmusiidata);
  EXPECT_TRUE(saw_piordcrd);
}

}  // namespace
}  // namespace tracesel::soc
