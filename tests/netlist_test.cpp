#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

namespace tracesel::netlist {
namespace {

TEST(Netlist, BuildsAndValidatesSmallCircuit) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId f = nl.add_flop("f");
  nl.set_flop_input(f, nl.add_and(a, b));
  EXPECT_EQ(nl.num_nets(), 4u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.flops().size(), 1u);
  EXPECT_NO_THROW(nl.validate_and_topo_order());
}

TEST(Netlist, FindByName) {
  Netlist nl;
  nl.add_input("a");
  const NetId f = nl.add_flop("state0");
  nl.set_flop_input(f, nl.add_const(false));
  EXPECT_EQ(nl.find("state0"), std::optional<NetId>(f));
  EXPECT_FALSE(nl.find("nope").has_value());
}

TEST(Netlist, UnwiredFlopFailsValidation) {
  Netlist nl;
  nl.add_flop("dangling");
  EXPECT_THROW(nl.validate_and_topo_order(), std::logic_error);
}

TEST(Netlist, GateArityChecked) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  EXPECT_THROW(nl.add_gate(GateType::kNot, {a, a}), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateType::kAnd, {a}), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateType::kMux, {a, a}), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateType::kFlop, {a}), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateType::kBuf, {99}), std::invalid_argument);
}

TEST(Netlist, FanoutListsReaders) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId g1 = nl.add_not(a);
  const NetId g2 = nl.add_and(a, g1);
  const auto& fo = nl.fanout(a);
  EXPECT_EQ(fo.size(), 2u);
  EXPECT_NE(std::find(fo.begin(), fo.end(), g1), fo.end());
  EXPECT_NE(std::find(fo.begin(), fo.end(), g2), fo.end());
}

class SimTest : public ::testing::Test {
 protected:
  /// 2-bit counter with enable: classic ripple.
  void build_counter() {
    en_ = nl_.add_input("en");
    b0_ = nl_.add_flop("b0");
    b1_ = nl_.add_flop("b1");
    nl_.set_flop_input(b0_, nl_.add_xor(b0_, en_));
    nl_.set_flop_input(b1_, nl_.add_xor(b1_, nl_.add_and(b0_, en_)));
  }

  Netlist nl_;
  NetId en_ = kInvalidNet, b0_ = kInvalidNet, b1_ = kInvalidNet;
};

TEST_F(SimTest, CounterCountsWhenEnabled) {
  build_counter();
  Simulator sim(nl_);
  // 5 enabled cycles: counter should read 5 mod 4 = 1 -> b0=1, b1=0.
  std::vector<bool> expected_b0{true, false, true, false, true};
  std::vector<bool> expected_b1{false, true, true, false, false};
  for (int c = 0; c < 5; ++c) {
    const auto& state = sim.step({true});
    EXPECT_EQ(state[0], expected_b0[c]) << c;
    EXPECT_EQ(state[1], expected_b1[c]) << c;
  }
}

TEST_F(SimTest, CounterHoldsWhenDisabled) {
  build_counter();
  Simulator sim(nl_);
  sim.step({true});  // -> 1
  for (int c = 0; c < 3; ++c) {
    const auto& state = sim.step({false});
    EXPECT_TRUE(state[0]);
    EXPECT_FALSE(state[1]);
  }
}

TEST_F(SimTest, ResetClearsState) {
  build_counter();
  Simulator sim(nl_);
  sim.step({true});
  sim.reset();
  EXPECT_EQ(sim.cycle(), 0u);
  const auto& state = sim.step({false});
  EXPECT_FALSE(state[0]);
  EXPECT_FALSE(state[1]);
}

TEST_F(SimTest, WrongInputCountThrows) {
  build_counter();
  Simulator sim(nl_);
  EXPECT_THROW(sim.step({}), std::invalid_argument);
  EXPECT_THROW(sim.step({true, false}), std::invalid_argument);
}

TEST_F(SimTest, GateSemantics) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId s = nl.add_input("s");
  const NetId f_and = nl.add_flop("f_and");
  const NetId f_or = nl.add_flop("f_or");
  const NetId f_xor = nl.add_flop("f_xor");
  const NetId f_not = nl.add_flop("f_not");
  const NetId f_mux = nl.add_flop("f_mux");
  nl.set_flop_input(f_and, nl.add_and(a, b));
  nl.set_flop_input(f_or, nl.add_or(a, b));
  nl.set_flop_input(f_xor, nl.add_xor(a, b));
  nl.set_flop_input(f_not, nl.add_not(a));
  nl.set_flop_input(f_mux, nl.add_mux(s, a, b));

  Simulator sim(nl);
  struct Case {
    bool a, b, s;
  };
  for (const Case c : {Case{false, false, false}, Case{false, true, true},
                       Case{true, false, true}, Case{true, true, false}}) {
    const auto& state = sim.step({c.a, c.b, c.s});
    EXPECT_EQ(state[0], c.a && c.b);
    EXPECT_EQ(state[1], c.a || c.b);
    EXPECT_EQ(state[2], c.a != c.b);
    EXPECT_EQ(state[3], !c.a);
    EXPECT_EQ(state[4], c.s ? c.b : c.a);
  }
}

TEST(NetlistToString, GateTypes) {
  EXPECT_EQ(to_string(GateType::kAnd), "and");
  EXPECT_EQ(to_string(GateType::kFlop), "flop");
  EXPECT_EQ(to_string(GateType::kMux), "mux");
}

}  // namespace
}  // namespace tracesel::netlist
