#include "debug/case_study.hpp"

#include <gtest/gtest.h>

namespace tracesel::debug {
namespace {

class CaseStudyTest : public ::testing::Test {
 protected:
  soc::T2Design design_;
};

TEST_F(CaseStudyTest, AllFiveCaseStudiesFailAndLocalize) {
  for (const auto& cs : soc::standard_case_studies()) {
    const auto r = run_case_study(design_, cs);
    EXPECT_TRUE(r.buggy.failed) << "case " << cs.id;
    EXPECT_FALSE(r.golden.failed) << "case " << cs.id;
    EXPECT_FALSE(r.report.final_causes.empty()) << "case " << cs.id;
    EXPECT_LT(r.report.final_causes.size(), r.report.catalog_size)
        << "case " << cs.id;
  }
}

TEST_F(CaseStudyTest, PruningIsSubstantial) {
  // Fig. 7: average 78.89% of candidate root causes pruned, max 88.89%.
  double total = 0.0;
  double best = 0.0;
  for (const auto& cs : soc::standard_case_studies()) {
    const auto r = run_case_study(design_, cs);
    total += r.report.pruned_fraction();
    best = std::max(best, r.report.pruned_fraction());
  }
  EXPECT_GT(total / 5.0, 0.6);
  EXPECT_NEAR(best, 8.0 / 9.0, 1e-9);  // 88.89%
}

TEST_F(CaseStudyTest, PackingNeverHurtsSelectionQuality) {
  for (const auto& cs : soc::standard_case_studies()) {
    CaseStudyOptions wp, wop;
    wop.packing = false;
    const auto with = run_case_study(design_, cs, wp);
    const auto without = run_case_study(design_, cs, wop);
    EXPECT_GE(with.selection.utilization(),
              without.selection.utilization())
        << cs.id;
    EXPECT_GE(with.selection.coverage, without.selection.coverage) << cs.id;
    EXPECT_GE(with.report.pruned_fraction(),
              without.report.pruned_fraction())
        << cs.id;
  }
}

TEST_F(CaseStudyTest, CaseStudy1ReproducesSection57Narrative) {
  // The dropped Mondo interrupt: with packing, the cputhreadid subgroup of
  // dmusiidata is traced; its absence pins the root cause to
  // "non-generation of Mondo interrupt by DMU" (1 of 9 causes, 88.89%).
  const auto cases = soc::standard_case_studies();
  const auto r = run_case_study(design_, cases[0]);
  EXPECT_EQ(r.buggy.failure, "FAIL: Bad Trap");
  ASSERT_EQ(r.report.final_causes.size(), 1u);
  EXPECT_EQ(r.report.final_causes[0].id, 3);
  EXPECT_NEAR(r.report.pruned_fraction(), 8.0 / 9.0, 1e-9);
  // Observed statuses match the narrative: dmusiidata/siincu/mondoacknack
  // never arrived.
  EXPECT_EQ(r.observation.status.at(design_.dmusiidata), MsgStatus::kAbsent);
  EXPECT_EQ(r.observation.status.at(design_.siincu), MsgStatus::kAbsent);
  EXPECT_EQ(r.observation.status.at(design_.mondoacknack),
            MsgStatus::kAbsent);

  // Without packing dmusiidata is invisible and two causes survive.
  CaseStudyOptions wop;
  wop.packing = false;
  const auto r2 = run_case_study(design_, cases[0], wop);
  EXPECT_EQ(r2.report.final_causes.size(), 2u);
}

TEST_F(CaseStudyTest, LocalizationFractionSmallAndSound) {
  for (const auto& cs : soc::standard_case_studies()) {
    const auto r = run_case_study(design_, cs);
    EXPECT_GT(r.localization.total_paths, 0.0) << cs.id;
    EXPECT_GE(r.localization.consistent_paths, 1.0)
        << "true execution must stay consistent, case " << cs.id;
    // Table 3: no more than 6.11% of paths ever needed exploring.
    EXPECT_LT(r.localization.fraction, 0.0611) << cs.id;
  }
}

TEST_F(CaseStudyTest, DebugStepsEliminateMonotonically) {
  // Fig. 6: candidate causes and IP pairs shrink (weakly) with every
  // investigated message.
  for (const auto& cs : soc::standard_case_studies()) {
    const auto r = run_case_study(design_, cs);
    for (std::size_t i = 1; i < r.report.steps.size(); ++i) {
      EXPECT_LE(r.report.steps[i].plausible_causes,
                r.report.steps[i - 1].plausible_causes)
          << cs.id;
      EXPECT_LE(r.report.steps[i].candidate_pairs,
                r.report.steps[i - 1].candidate_pairs)
          << cs.id;
    }
  }
}

TEST_F(CaseStudyTest, InvestigationCountsWithinBounds) {
  for (const auto& cs : soc::standard_case_studies()) {
    const auto r = run_case_study(design_, cs);
    EXPECT_GT(r.report.messages_investigated, 0u) << cs.id;
    EXPECT_LE(r.report.pairs_investigated, r.report.legal_pairs) << cs.id;
    EXPECT_GE(r.report.pairs_investigated, 1u) << cs.id;
  }
}

TEST_F(CaseStudyTest, DeterministicAcrossRuns) {
  const auto cs = soc::standard_case_studies()[2];
  const auto a = run_case_study(design_, cs);
  const auto b = run_case_study(design_, cs);
  EXPECT_EQ(a.report.final_causes.size(), b.report.final_causes.size());
  EXPECT_EQ(a.report.messages_investigated, b.report.messages_investigated);
  EXPECT_EQ(a.selection.combination.messages,
            b.selection.combination.messages);
  EXPECT_DOUBLE_EQ(a.localization.fraction, b.localization.fraction);
}

TEST_F(CaseStudyTest, DormantBugsDoNotPerturbTrace) {
  // A case study's dormant bugs arm beyond the run horizon; the buggy
  // trace must differ from golden only through the active bug's target
  // flow. Case 3's active bug corrupts ccxdreq (NCUD flow); the Mon flow
  // stays clean.
  const auto cs = soc::standard_case_studies()[2];
  const auto r = run_case_study(design_, cs);
  EXPECT_EQ(r.observation.status.at(design_.mondoacknack),
            MsgStatus::kPresentCorrect);
  EXPECT_EQ(r.observation.status.at(design_.ccxdreq),
            MsgStatus::kPresentCorrupt);
}

TEST_F(CaseStudyTest, BufferWidthSweepKeepsInvariants) {
  const auto cs = soc::standard_case_studies()[0];
  double last_coverage = -1.0;
  for (std::uint32_t width : {16u, 24u, 32u, 48u, 64u}) {
    CaseStudyOptions opt;
    opt.buffer_width = width;
    const auto r = run_case_study(design_, cs, opt);
    EXPECT_LE(r.selection.used_width, width);
    // Wider buffers never reduce achievable coverage.
    EXPECT_GE(r.selection.coverage, last_coverage - 1e-12) << width;
    last_coverage = r.selection.coverage;
  }
}

}  // namespace
}  // namespace tracesel::debug
