#include "netlist/restoration.hpp"

#include <gtest/gtest.h>

#include "baseline/sigset.hpp"

namespace tracesel::netlist {
namespace {

TEST(Restoration, TracingHeadOfShiftChainRestoresTail) {
  Netlist nl;
  const NetId in = nl.add_input("in");
  const NetId f0 = nl.add_flop("f0");
  const NetId f1 = nl.add_flop("f1");
  const NetId f2 = nl.add_flop("f2");
  nl.set_flop_input(f0, in);
  nl.set_flop_input(f1, nl.add_gate(GateType::kBuf, {f0}));
  nl.set_flop_input(f2, nl.add_gate(GateType::kBuf, {f1}));

  const auto trace = baseline::golden_flop_trace(nl, 16, 3);
  const RestorationEngine engine(nl);
  const auto r = engine.restore({f0}, trace);
  EXPECT_EQ(r.traced_flop_cycles, 16u);
  // f1 known from cycle 1 on (15), f2 from cycle 2 on (14).
  EXPECT_EQ(r.restored_flop_cycles, 15u + 14u);
  EXPECT_NEAR(r.srr(), (16.0 + 29.0) / 16.0, 1e-12);
}

TEST(Restoration, TracingTailRestoresHeadBackward) {
  Netlist nl;
  const NetId in = nl.add_input("in");
  const NetId f0 = nl.add_flop("f0");
  const NetId f1 = nl.add_flop("f1");
  const NetId f2 = nl.add_flop("f2");
  nl.set_flop_input(f0, in);
  nl.set_flop_input(f1, nl.add_gate(GateType::kBuf, {f0}));
  nl.set_flop_input(f2, nl.add_gate(GateType::kBuf, {f1}));

  const auto trace = baseline::golden_flop_trace(nl, 16, 3);
  const RestorationEngine engine(nl);
  const auto r = engine.restore({f2}, trace);
  // Backward justification: f1 known for cycles 0..14, f0 for 0..13.
  EXPECT_EQ(r.restored_flop_cycles, 15u + 14u);
}

TEST(Restoration, RestoredValuesNeverContradictGolden) {
  // Soundness spot check on a mixed circuit: restoration counts only;
  // internal correctness is implied by the engine using implication rules
  // only. Here we verify SRR >= 1 and coverage <= 1.
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId f0 = nl.add_flop("f0");
  const NetId f1 = nl.add_flop("f1");
  const NetId f2 = nl.add_flop("f2");
  nl.set_flop_input(f0, nl.add_xor(a, f1));
  nl.set_flop_input(f1, nl.add_and(f0, a));
  nl.set_flop_input(f2, nl.add_or(f0, f1));
  const auto trace = baseline::golden_flop_trace(nl, 24, 11);
  const RestorationEngine engine(nl);
  const auto r = engine.restore({f0}, trace);
  EXPECT_GE(r.srr(), 1.0);
  EXPECT_LE(r.state_coverage(), 1.0);
  EXPECT_EQ(r.total_flop_cycles, 3u * 24u);
}

TEST(Restoration, XorBackwardInference) {
  // f2 = f0 ^ f1 (registered). Tracing f2 and f0 should restore f1 at the
  // cycle feeding each f2 value.
  Netlist nl;
  const NetId in = nl.add_input("in");
  const NetId f0 = nl.add_flop("f0");
  const NetId f1 = nl.add_flop("f1");
  const NetId f2 = nl.add_flop("f2");
  nl.set_flop_input(f0, in);
  nl.set_flop_input(f1, nl.add_not(in));
  nl.set_flop_input(f2, nl.add_xor(f0, f1));
  const auto trace = baseline::golden_flop_trace(nl, 16, 5);
  const RestorationEngine engine(nl);
  const auto with_xor = engine.restore({f0, f2}, trace);
  // f1 restorable at cycles 0..14 via xor backward justification
  // (f1(c) = f2(c+1) ^ f0(c)), plus cycle 15 through input inference:
  // f0's D justifies in(c), and f1(c+1) = !in(c).
  EXPECT_EQ(with_xor.restored_flop_cycles, 16u);
}

TEST(Restoration, AndControllingValuePropagatesForward) {
  // g = AND(f0, f1): f0 == 0 forces g == 0 even with f1 unknown.
  Netlist nl;
  const NetId in = nl.add_input("in");
  const NetId f0 = nl.add_flop("f0");
  const NetId f1 = nl.add_flop("f1");
  const NetId g = nl.add_and(f0, f1);
  const NetId f2 = nl.add_flop("f2");
  nl.set_flop_input(f0, nl.add_const(false));  // constant 0 after cycle 0
  nl.set_flop_input(f1, in);
  nl.set_flop_input(f2, g);
  const auto trace = baseline::golden_flop_trace(nl, 8, 5);
  const RestorationEngine engine(nl);
  const auto r = engine.restore({f0}, trace);
  // f2 restored from cycle 1 on: its D is forced 0 by f0 == 0.
  EXPECT_GE(r.restored_flop_cycles, 7u);
}

TEST(Restoration, ForwardOnlyRestoresStrictlyLess) {
  // Tracing the tail of a chain restores nothing forward-only; full rules
  // recover the upstream flops by backward justification.
  Netlist nl;
  const NetId in = nl.add_input("in");
  const NetId f0 = nl.add_flop("f0");
  const NetId f1 = nl.add_flop("f1");
  const NetId f2 = nl.add_flop("f2");
  nl.set_flop_input(f0, in);
  nl.set_flop_input(f1, nl.add_gate(GateType::kBuf, {f0}));
  nl.set_flop_input(f2, nl.add_gate(GateType::kBuf, {f1}));
  const auto trace = baseline::golden_flop_trace(nl, 16, 3);
  const RestorationEngine engine(nl);

  RestorationOptions fwd_only;
  fwd_only.backward = false;
  const auto fwd = engine.restore({f2}, trace, fwd_only);
  const auto full = engine.restore({f2}, trace);
  EXPECT_EQ(fwd.restored_flop_cycles, 0u);
  EXPECT_GT(full.restored_flop_cycles, 0u);
}

TEST(Restoration, SequentialTransferRequiredAcrossCycles) {
  // Head-traced chain: forward restoration crosses cycles only via the
  // sequential rule; disabling it leaves everything else unknown.
  Netlist nl;
  const NetId in = nl.add_input("in");
  const NetId f0 = nl.add_flop("f0");
  const NetId f1 = nl.add_flop("f1");
  nl.set_flop_input(f0, in);
  nl.set_flop_input(f1, nl.add_gate(GateType::kBuf, {f0}));
  const auto trace = baseline::golden_flop_trace(nl, 8, 3);
  const RestorationEngine engine(nl);
  RestorationOptions no_seq;
  no_seq.sequential = false;
  EXPECT_EQ(engine.restore({f0}, trace, no_seq).restored_flop_cycles, 0u);
  EXPECT_GT(engine.restore({f0}, trace).restored_flop_cycles, 0u);
}

TEST(Restoration, FullRulesDominateEveryAblation) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId f0 = nl.add_flop("f0");
  const NetId f1 = nl.add_flop("f1");
  const NetId f2 = nl.add_flop("f2");
  nl.set_flop_input(f0, nl.add_xor(a, f1));
  nl.set_flop_input(f1, nl.add_and(f0, a));
  nl.set_flop_input(f2, nl.add_or(f0, f1));
  const auto trace = baseline::golden_flop_trace(nl, 16, 11);
  const RestorationEngine engine(nl);
  const auto full = engine.restore({f0}, trace);
  for (const RestorationOptions opt :
       {RestorationOptions{true, false, true},
        RestorationOptions{false, true, true},
        RestorationOptions{true, true, false},
        RestorationOptions{true, false, false}}) {
    const auto partial = engine.restore({f0}, trace, opt);
    EXPECT_LE(partial.restored_flop_cycles, full.restored_flop_cycles);
  }
}

TEST(Restoration, NoTraceNoRestoration) {
  Netlist nl;
  const NetId in = nl.add_input("in");
  const NetId f0 = nl.add_flop("f0");
  nl.set_flop_input(f0, in);
  const auto trace = baseline::golden_flop_trace(nl, 8, 5);
  const RestorationEngine engine(nl);
  const auto r = engine.restore({}, trace);
  EXPECT_EQ(r.traced_flop_cycles, 0u);
  EXPECT_EQ(r.restored_flop_cycles, 0u);
  EXPECT_DOUBLE_EQ(r.srr(), 0.0);
}

TEST(Restoration, RejectsNonFlopTrace) {
  Netlist nl;
  const NetId in = nl.add_input("in");
  const NetId f0 = nl.add_flop("f0");
  nl.set_flop_input(f0, in);
  const auto trace = baseline::golden_flop_trace(nl, 4, 5);
  const RestorationEngine engine(nl);
  EXPECT_THROW(engine.restore({in}, trace), std::invalid_argument);
}

TEST(Restoration, RejectsMalformedTraceRows) {
  Netlist nl;
  const NetId in = nl.add_input("in");
  const NetId f0 = nl.add_flop("f0");
  nl.set_flop_input(f0, in);
  const RestorationEngine engine(nl);
  std::vector<std::vector<bool>> bad{{true, false}};  // 2 cols, 1 flop
  EXPECT_THROW(engine.restore({f0}, bad), std::invalid_argument);
}

}  // namespace
}  // namespace tracesel::netlist
