#include "baseline/hybrid.hpp"

#include <gtest/gtest.h>

#include "netlist/usb_design.hpp"

namespace tracesel::baseline {
namespace {

class HybridTest : public ::testing::Test {
 protected:
  netlist::UsbDesign usb_;
  flow::InterleavedFlow u_ = usb_.interleaving(2);
};

TEST_F(HybridTest, FillsLeftoverWithFlops) {
  HybridOptions opt;
  opt.buffer_width = 32;
  const auto r = select_hybrid(usb_.catalog(), u_, usb_.netlist(), opt);
  // All 10 USB messages fit in 26 bits; the remaining 6 go to flops.
  EXPECT_EQ(r.messages.combination.messages.size(), 10u);
  EXPECT_EQ(r.extra_flops.size(),
            32u - r.messages.used_width);
  EXPECT_EQ(r.used_width, 32u);
  EXPECT_DOUBLE_EQ(r.utilization(32), 1.0);
  EXPECT_GE(r.srr, 1.0);
}

TEST_F(HybridTest, MessagesKeepPriority) {
  // The hybrid never sacrifices message coverage: its message set equals
  // the message-only selection.
  HybridOptions opt;
  opt.buffer_width = 32;
  const auto hybrid = select_hybrid(usb_.catalog(), u_, usb_.netlist(), opt);
  const selection::MessageSelector selector(usb_.catalog(), u_);
  const auto alone = selector.select({});
  EXPECT_EQ(hybrid.messages.combination.messages,
            alone.combination.messages);
  EXPECT_DOUBLE_EQ(hybrid.messages.coverage, alone.coverage);
}

TEST_F(HybridTest, NoLeftoverNoFlops) {
  HybridOptions opt;
  opt.buffer_width = 26;  // exactly the message width
  const auto r = select_hybrid(usb_.catalog(), u_, usb_.netlist(), opt);
  EXPECT_EQ(r.messages.used_width, 26u);
  EXPECT_TRUE(r.extra_flops.empty());
  EXPECT_DOUBLE_EQ(r.srr, 0.0);
}

TEST_F(HybridTest, ExtraFlopsAreRealFlops) {
  HybridOptions opt;
  opt.buffer_width = 40;
  const auto r = select_hybrid(usb_.catalog(), u_, usb_.netlist(), opt);
  EXPECT_FALSE(r.extra_flops.empty());
  for (const auto f : r.extra_flops)
    EXPECT_EQ(usb_.netlist().gate(f).type, netlist::GateType::kFlop);
  // No duplicates.
  auto sorted = r.extra_flops;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST_F(HybridTest, DeterministicForSeed) {
  HybridOptions opt;
  opt.buffer_width = 36;
  const auto a = select_hybrid(usb_.catalog(), u_, usb_.netlist(), opt);
  const auto b = select_hybrid(usb_.catalog(), u_, usb_.netlist(), opt);
  EXPECT_EQ(a.extra_flops, b.extra_flops);
  EXPECT_DOUBLE_EQ(a.srr, b.srr);
}

}  // namespace
}  // namespace tracesel::baseline
