#include "flow/lint.hpp"

#include <gtest/gtest.h>

#include "flow/flow_builder.hpp"
#include "soc/t2_design.hpp"
#include "testutil.hpp"

namespace tracesel::flow {
namespace {

std::size_t count_rule(const std::vector<LintDiagnostic>& ds,
                       std::string_view rule) {
  return static_cast<std::size_t>(
      std::count_if(ds.begin(), ds.end(), [&](const LintDiagnostic& d) {
        return d.rule == rule;
      }));
}

TEST(Lint, CleanCoherenceFlowOnlyInfoDiagnostics) {
  const test::CoherenceFixture fx;
  const auto ds = lint(fx.catalog, {&fx.flow_});
  for (const auto& d : ds)
    EXPECT_EQ(d.severity, LintSeverity::kInfo) << d.rule;
}

TEST(Lint, DetectsUnusedMessage) {
  test::CoherenceFixture fx;
  fx.catalog.add("ghost", 4, "A", "B");
  const auto ds = lint(fx.catalog, {&fx.flow_});
  EXPECT_EQ(count_rule(ds, "unused-message"), 1u);
  const auto it = std::find_if(ds.begin(), ds.end(), [](const auto& d) {
    return d.rule == "unused-message";
  });
  EXPECT_EQ(it->subject, "ghost");
  EXPECT_EQ(it->severity, LintSeverity::kWarning);
}

TEST(Lint, DetectsWideUnpackableMessage) {
  MessageCatalog cat;
  const MessageId wide = cat.add("huge", 40, "A", "B");
  const MessageId ok = cat.add(
      Message{"hugewithsub", 40, "A", "B", {Subgroup{"part", 6}}});
  FlowBuilder fb("f");
  fb.state("s", FlowBuilder::kInitial)
      .state("m")
      .state("t", FlowBuilder::kStop)
      .transition("s", wide, "m")
      .transition("m", ok, "t");
  const Flow f = fb.build(cat);
  const auto ds = lint(cat, {&f});
  EXPECT_EQ(count_rule(ds, "wide-unpackable"), 1u);
}

TEST(Lint, MultiCycleWideMessageNotFlagged) {
  // A 40-bit 4-beat message traces at 10 bits/cycle: selectable.
  MessageCatalog cat;
  const MessageId wide =
      cat.add(Message{"burst", 40, "A", "B", {}, /*beats=*/4});
  FlowBuilder fb("f");
  fb.state("s", FlowBuilder::kInitial)
      .state("t", FlowBuilder::kStop)
      .transition("s", wide, "t");
  const Flow f = fb.build(cat);
  EXPECT_EQ(count_rule(lint(cat, {&f}), "wide-unpackable"), 0u);
}

TEST(Lint, DetectsSelfRoutedMessage) {
  MessageCatalog cat;
  const MessageId internal = cat.add("loop", 4, "NCU", "NCU");
  FlowBuilder fb("f");
  fb.state("s", FlowBuilder::kInitial)
      .state("t", FlowBuilder::kStop)
      .transition("s", internal, "t");
  const Flow f = fb.build(cat);
  EXPECT_EQ(count_rule(lint(cat, {&f}), "self-routed"), 1u);
}

TEST(Lint, DetectsTrivialFlow) {
  MessageCatalog cat;
  const MessageId m = cat.add("only", 1, "A", "B");
  FlowBuilder fb("tiny");
  fb.state("s", FlowBuilder::kInitial)
      .state("t", FlowBuilder::kStop)
      .transition("s", m, "t");
  const Flow f = fb.build(cat);
  const auto ds = lint(cat, {&f});
  EXPECT_EQ(count_rule(ds, "trivial-flow"), 1u);
}

TEST(Lint, DetectsMissingAtomicOnLongChains) {
  MessageCatalog cat;
  std::vector<MessageId> ms;
  for (int i = 0; i < 4; ++i)
    ms.push_back(cat.add("m" + std::to_string(i), 1, "A", "B"));
  FlowBuilder fb("chain");
  fb.state("s0", FlowBuilder::kInitial);
  for (int i = 1; i < 4; ++i) fb.state("s" + std::to_string(i));
  fb.state("s4", FlowBuilder::kStop);
  for (int i = 0; i < 4; ++i)
    fb.transition("s" + std::to_string(i), ms[i],
                  "s" + std::to_string(i + 1));
  const Flow f = fb.build(cat);
  EXPECT_EQ(count_rule(lint(cat, {&f}), "missing-atomic"), 1u);
}

TEST(Lint, T2DesignIsClean) {
  const soc::T2Design design;
  std::vector<const Flow*> flows;
  for (const char* name :
       {"PIOR", "PIOW", "NCUU", "NCUD", "Mon", "DMAR", "DMAW"})
    flows.push_back(&design.flow_by_name(name));
  const auto ds = lint(design.catalog(), flows);
  // Only info-level findings (PIOW/NCUD are short two-message flows).
  for (const auto& d : ds)
    EXPECT_EQ(d.severity, LintSeverity::kInfo) << d.rule << " " << d.subject;
}

TEST(Lint, DiagnosticsSortedDeterministically) {
  test::CoherenceFixture fx;
  fx.catalog.add("zebra", 4, "A", "A");
  fx.catalog.add("alpha", 4, "B", "B");
  const auto a = lint(fx.catalog, {&fx.flow_});
  const auto b = lint(fx.catalog, {&fx.flow_});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].rule, b[i].rule);
    EXPECT_EQ(a[i].subject, b[i].subject);
  }
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end(), [](const auto& x,
                                                    const auto& y) {
    if (x.rule != y.rule) return x.rule < y.rule;
    return x.subject < y.subject;
  }));
}

TEST(Lint, SeverityToString) {
  EXPECT_EQ(to_string(LintSeverity::kInfo), "info");
  EXPECT_EQ(to_string(LintSeverity::kWarning), "warning");
}

}  // namespace
}  // namespace tracesel::flow
