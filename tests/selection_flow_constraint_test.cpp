#include <gtest/gtest.h>

#include "selection/selector.hpp"
#include "soc/scenario.hpp"

namespace tracesel::selection {
namespace {

class FlowConstraintTest : public ::testing::Test {
 protected:
  FlowConstraintTest()
      : u_(soc::build_interleaving(design_, soc::scenario1())),
        selector_(design_.catalog(), u_) {}

  bool flow_represented(const char* flow_name,
                        const SelectionResult& r) const {
    const flow::Flow& f = design_.flow_by_name(flow_name);
    for (const flow::MessageId m : r.observable()) {
      if (f.uses_message(m)) return true;
    }
    return false;
  }

  soc::T2Design design_;
  flow::InterleavedFlow u_;
  MessageSelector selector_;
};

TEST_F(FlowConstraintTest, TightBudgetLeavesFlowsDarkWithoutConstraint) {
  // At 8 bits the pure-gain optimum watches only the narrow Mon messages.
  SelectorConfig cfg;
  cfg.buffer_width = 8;
  const auto r = selector_.select(cfg);
  EXPECT_FALSE(flow_represented("PIOR", r) && flow_represented("PIOW", r) &&
               flow_represented("Mon", r))
      << "expected at least one dark flow at 8 bits";
}

TEST_F(FlowConstraintTest, ConstraintRepairsDarkFlows) {
  SelectorConfig cfg;
  cfg.buffer_width = 12;
  const auto r = selector_.select_with_flow_constraint(cfg);
  EXPECT_TRUE(flow_represented("PIOR", r));
  EXPECT_TRUE(flow_represented("PIOW", r));
  EXPECT_TRUE(flow_represented("Mon", r));
  EXPECT_LE(r.used_width, cfg.buffer_width);
}

TEST_F(FlowConstraintTest, NoRepairWhenAlreadyRepresented) {
  // At 32 bits the unconstrained optimum already touches every flow; the
  // constrained selection must be identical.
  SelectorConfig cfg;
  const auto plain = selector_.select(cfg);
  const auto constrained = selector_.select_with_flow_constraint(cfg);
  EXPECT_EQ(plain.combination.messages, constrained.combination.messages);
  EXPECT_DOUBLE_EQ(plain.gain, constrained.gain);
}

TEST_F(FlowConstraintTest, RepairCostsGainButBuysRepresentation) {
  SelectorConfig cfg;
  cfg.buffer_width = 12;
  cfg.packing = false;
  const auto plain = selector_.select(cfg);
  const auto constrained = selector_.select_with_flow_constraint(cfg);
  // The constraint can only lose gain relative to the optimum.
  EXPECT_LE(constrained.gain, plain.gain + 1e-12);
}

TEST_F(FlowConstraintTest, ThrowsWhenFlowCannotFit) {
  // Buffer of 3 bits: PIOW's narrowest message (piowcrd, 4b) cannot fit.
  SelectorConfig cfg;
  cfg.buffer_width = 3;
  EXPECT_THROW(selector_.select_with_flow_constraint(cfg),
               std::runtime_error);
}

TEST_F(FlowConstraintTest, WidthStaysWithinBudgetAcrossSweep) {
  for (std::uint32_t width : {12u, 16u, 20u, 24u, 32u, 48u}) {
    SelectorConfig cfg;
    cfg.buffer_width = width;
    const auto r = selector_.select_with_flow_constraint(cfg);
    EXPECT_LE(r.used_width, width) << width;
    for (const char* name : {"PIOR", "PIOW", "Mon"})
      EXPECT_TRUE(flow_represented(name, r)) << name << " @" << width;
  }
}

}  // namespace
}  // namespace tracesel::selection
