#include "soc/t2_bugs.hpp"

#include <gtest/gtest.h>

#include <set>

#include "soc/scenario.hpp"

namespace tracesel::soc {
namespace {

class BugsTest : public ::testing::Test {
 protected:
  T2Design design_;
};

TEST_F(BugsTest, FourteenBugsWithUniqueIds) {
  const auto bugs = standard_bugs(design_);
  EXPECT_EQ(bugs.size(), 14u);
  std::set<int> ids;
  for (const auto& b : bugs) ids.insert(b.id);
  EXPECT_EQ(ids.size(), 14u);
}

TEST_F(BugsTest, BugsSpanFiveIps) {
  // Sec. 4: 14 bugs across 5 IPs.
  std::set<std::string> ips;
  for (const auto& b : standard_bugs(design_)) ips.insert(b.ip);
  EXPECT_EQ(ips.size(), 5u);
  EXPECT_TRUE(ips.contains("DMU"));
  EXPECT_TRUE(ips.contains("NCU"));
  EXPECT_TRUE(ips.contains("SIU"));
  EXPECT_TRUE(ips.contains("CCX"));
  EXPECT_TRUE(ips.contains("MCU"));
}

TEST_F(BugsTest, TargetsAreValidMessages) {
  for (const auto& b : standard_bugs(design_)) {
    EXPECT_NO_THROW(design_.catalog().get(b.target)) << b.name;
  }
}

TEST_F(BugsTest, Table2RepresentativeBugsPresent) {
  // Table 2 row 1: control bug at depth 4 in DMU, wrong command generation.
  const bug::Bug b1 = bug_by_id(design_, 1);
  EXPECT_EQ(b1.ip, "DMU");
  EXPECT_EQ(b1.depth, 4);
  EXPECT_EQ(b1.category, bug::BugCategory::kControl);
  // Table 2 row 3: depth 3, malformed request from UCB construction.
  const bug::Bug b3 = bug_by_id(design_, 3);
  EXPECT_EQ(b3.ip, "DMU");
  EXPECT_EQ(b3.depth, 3);
  // Table 2 row 4: NCU wrong request from CPU buffer decode.
  const bug::Bug b27 = bug_by_id(design_, 27);
  EXPECT_EQ(b27.ip, "NCU");
  EXPECT_EQ(b27.effect, bug::BugEffect::kWrongDecode);
}

TEST_F(BugsTest, BugByIdThrowsOnUnknown) {
  EXPECT_THROW(bug_by_id(design_, 999), std::out_of_range);
}

TEST_F(BugsTest, EveryBugHasSymptomText) {
  for (const auto& b : standard_bugs(design_)) {
    EXPECT_FALSE(b.symptom.empty()) << b.name;
    EXPECT_FALSE(b.type.empty()) << b.name;
  }
}

TEST_F(BugsTest, BothCategoriesRepresented) {
  bool control = false, data = false;
  for (const auto& b : standard_bugs(design_)) {
    if (b.category == bug::BugCategory::kControl) control = true;
    if (b.category == bug::BugCategory::kData) data = true;
  }
  EXPECT_TRUE(control);
  EXPECT_TRUE(data);
}

TEST_F(BugsTest, AllEffectClassesRepresented) {
  std::set<bug::BugEffect> effects;
  for (const auto& b : standard_bugs(design_)) effects.insert(b.effect);
  EXPECT_EQ(effects.size(), 4u);
}

TEST_F(BugsTest, FiveCaseStudiesMatchTable3ScenarioMapping) {
  const auto cases = standard_case_studies();
  ASSERT_EQ(cases.size(), 5u);
  EXPECT_EQ(cases[0].scenario_id, 1);
  EXPECT_EQ(cases[1].scenario_id, 1);
  EXPECT_EQ(cases[2].scenario_id, 2);
  EXPECT_EQ(cases[3].scenario_id, 2);
  EXPECT_EQ(cases[4].scenario_id, 3);
}

TEST_F(BugsTest, CaseStudyBugsResolve) {
  for (const auto& cs : standard_case_studies()) {
    EXPECT_NO_THROW(bug_by_id(design_, cs.active_bug_id)) << cs.id;
    for (int id : cs.dormant_bug_ids)
      EXPECT_NO_THROW(bug_by_id(design_, id)) << cs.id;
    EXPECT_FALSE(cs.root_cause.empty());
  }
}

TEST_F(BugsTest, ActiveBugTargetsMessageOfItsScenario) {
  // The active bug must perturb a message belonging to a flow the case
  // study's scenario actually exercises.
  for (const auto& cs : standard_case_studies()) {
    const bug::Bug active = bug_by_id(design_, cs.active_bug_id);
    const Scenario scenario = scenario_by_id(cs.scenario_id);
    bool found = false;
    for (const auto* f : scenario_flows(design_, scenario)) {
      if (f->uses_message(active.target)) found = true;
    }
    EXPECT_TRUE(found) << "case study " << cs.id;
  }
}

TEST(BugToString, Formats) {
  EXPECT_EQ(bug::to_string(bug::BugCategory::kControl), "Control");
  EXPECT_EQ(bug::to_string(bug::BugCategory::kData), "Data");
  EXPECT_EQ(bug::to_string(bug::BugEffect::kDropMessage), "drop-message");
  EXPECT_EQ(bug::to_string(bug::BugEffect::kWrongDecode), "wrong-decode");
}

}  // namespace
}  // namespace tracesel::soc
