// Resilience contract of the selection pipeline (DESIGN.md §11,
// docs/resilience.md): cooperative cancellation yields well-formed partial
// results, checkpointed searches resume bit-identically to uninterrupted
// runs (across job counts and kill points, on Fig. 2, USB and the T2
// spec), memory budgets degrade deterministically instead of aborting,
// and checkpoint files survive corruption attempts with typed errors.

#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "flow/flow_builder.hpp"
#include "flow/parser.hpp"
#include "netlist/usb_design.hpp"
#include "selection/checkpoint.hpp"
#include "selection/parallel_selector.hpp"
#include "selection/selector.hpp"
#include "testutil.hpp"
#include "tracesel/tracesel.hpp"
#include "util/cancel.hpp"

namespace tracesel::selection {
namespace {

using flow::MessageId;
using test::CoherenceFixture;

void expect_identical(const SelectionResult& a, const SelectionResult& b) {
  EXPECT_EQ(a.combination.messages, b.combination.messages);
  EXPECT_EQ(a.combination.width, b.combination.width);
  EXPECT_EQ(a.packed, b.packed);
  // EXPECT_EQ on doubles is exact: the contract is bit-identity.
  EXPECT_EQ(a.gain, b.gain);
  EXPECT_EQ(a.gain_unpacked, b.gain_unpacked);
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.coverage_unpacked, b.coverage_unpacked);
  EXPECT_EQ(a.used_width, b.used_width);
  EXPECT_EQ(a.buffer_width, b.buffer_width);
}

std::string temp_path(const std::string& stem) {
  return ::testing::TempDir() + "tracesel_" + stem + "_" +
         std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
         ".ck";
}

/// The kill-and-resume property: for seeded kill points k, a search
/// checkpointed after k shards and resumed (possibly at a different job
/// count) finishes bit-identical to the uninterrupted reference.
void run_kill_resume_property(const flow::MessageCatalog& catalog,
                              const flow::InterleavedFlow& u,
                              std::uint32_t buffer_width, std::uint64_t seed,
                              const std::string& stem) {
  const MessageSelector selector(catalog, u);
  SelectorConfig base;
  base.buffer_width = buffer_width;
  base.mode = SearchMode::kExhaustive;
  base.jobs = 1;
  const auto reference = selector.select(base);

  // Learn the shard count from a one-shard probe checkpoint.
  const std::string probe_ck = temp_path(stem + "_probe");
  SelectorConfig probe = base;
  probe.checkpoint_path = probe_ck;
  probe.checkpoint_interval = 1;
  probe.shard_budget = 1;
  (void)selector.select(probe);
  auto loaded = load_checkpoint(probe_ck);
  ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();
  const std::uint64_t seeds_total = loaded.value().seeds_total;
  std::remove(probe_ck.c_str());
  if (seeds_total < 2) GTEST_SKIP() << "search too small to kill mid-way";

  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> kill_points = {1, seeds_total - 1};
  for (int i = 0; i < 3; ++i)
    kill_points.push_back(1 + rng() % (seeds_total - 1));

  const std::string ck = temp_path(stem);
  for (const std::uint64_t k : kill_points) {
    for (const std::size_t kill_jobs : {std::size_t{1}, std::size_t{4}}) {
      for (const std::size_t resume_jobs : {std::size_t{1}, std::size_t{4}}) {
        SCOPED_TRACE("kill=" + std::to_string(k) + " kill_jobs=" +
                     std::to_string(kill_jobs) + " resume_jobs=" +
                     std::to_string(resume_jobs));
        SelectorConfig kill = base;
        kill.jobs = kill_jobs;
        kill.checkpoint_path = ck;
        kill.checkpoint_interval = 1;
        kill.shard_budget = k;
        const auto partial = selector.select(kill);
        EXPECT_TRUE(partial.partial);
        EXPECT_LT(partial.explored_fraction, 1.0);
        auto mid = load_checkpoint(ck);
        ASSERT_TRUE(mid.ok()) << mid.error().to_string();
        EXPECT_EQ(mid.value().next_seed, k);
        EXPECT_EQ(mid.value().seeds_total, seeds_total);

        SelectorConfig res = base;
        res.jobs = resume_jobs;
        res.resume_from =
            std::make_shared<SearchCheckpoint>(std::move(mid).value());
        const auto resumed = selector.select(res);
        EXPECT_FALSE(resumed.partial);
        EXPECT_EQ(resumed.explored_fraction, 1.0);
        expect_identical(reference, resumed);
      }
    }
  }
  std::remove(ck.c_str());
}

TEST(KillResumeProperty, Fig2) {
  CoherenceFixture fx;
  const auto u = fx.two_instance_interleaving();
  run_kill_resume_property(fx.catalog, u, 2, 20260806, "fig2");
}

TEST(KillResumeProperty, Usb) {
  netlist::UsbDesign usb;
  const auto u = usb.interleaving(2);
  run_kill_resume_property(usb.catalog(), u, 32, 20260807, "usb");
}

TEST(KillResumeProperty, T2Spec) {
  const auto spec = flow::parse_flow_spec_file(TRACESEL_DATA_DIR "/t2.flow");
  std::vector<const flow::Flow*> flows;
  for (const flow::Flow& f : spec.flows) flows.push_back(&f);
  const auto u = flow::InterleavedFlow::build(flow::make_instances(flows, 1));
  run_kill_resume_property(spec.catalog, u, 32, 20260808, "t2");
}

TEST(ResilienceTest, PreCancelledTokenYieldsEmptyPartialResult) {
  CoherenceFixture fx;
  const auto u = fx.two_instance_interleaving();
  const MessageSelector selector(fx.catalog, u);
  for (const SearchMode mode :
       {SearchMode::kMaximal, SearchMode::kExhaustive, SearchMode::kGreedy,
        SearchMode::kKnapsack}) {
    SCOPED_TRACE("mode=" + std::to_string(static_cast<int>(mode)));
    SelectorConfig cfg;
    cfg.buffer_width = 2;
    cfg.mode = mode;
    cfg.jobs = 1;
    cfg.cancel = util::CancelToken::make();
    cfg.cancel.cancel();
    const auto r = selector.select(cfg);
    EXPECT_TRUE(r.partial);
    EXPECT_EQ(r.explored_fraction, 0.0);
    EXPECT_TRUE(r.combination.messages.empty());
    EXPECT_EQ(r.buffer_width, 2u);
  }
}

TEST(ResilienceTest, CancelMidSearchFromSecondThreadIsWellFormed) {
  // The TSan-visible race: cancel() fires from another thread while shard
  // tasks are running. Whatever the timing, select() must terminate and
  // return either the complete answer or a well-formed partial one.
  netlist::UsbDesign usb;
  const auto u = usb.interleaving(2);
  const MessageSelector selector(usb.catalog(), u);
  SelectorConfig ref_cfg;
  ref_cfg.buffer_width = 32;
  ref_cfg.mode = SearchMode::kExhaustive;
  ref_cfg.jobs = 1;
  const auto reference = selector.select(ref_cfg);
  for (const int delay_us : {0, 50, 200, 800}) {
    SCOPED_TRACE("delay_us=" + std::to_string(delay_us));
    SelectorConfig cfg = ref_cfg;
    cfg.jobs = 4;
    cfg.cancel = util::CancelToken::make();
    std::thread killer([token = cfg.cancel, delay_us] {
      if (delay_us > 0)
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
      token.cancel();
    });
    const auto r = selector.select(cfg);
    killer.join();
    if (r.partial) {
      EXPECT_GE(r.explored_fraction, 0.0);
      EXPECT_LT(r.explored_fraction, 1.0);
      if (!r.combination.messages.empty()) {
        EXPECT_LE(r.combination.width, 32u);
      }
    } else {
      expect_identical(reference, r);
    }
  }
}

TEST(ResilienceTest, ShardBudgetPartialIsDeterministic) {
  CoherenceFixture fx;
  const auto u = fx.two_instance_interleaving();
  const MessageSelector selector(fx.catalog, u);
  SelectorConfig cfg;
  cfg.buffer_width = 2;
  cfg.mode = SearchMode::kExhaustive;
  cfg.jobs = 4;
  cfg.shard_budget = 1;
  const auto a = selector.select(cfg);
  const auto b = selector.select(cfg);
  EXPECT_TRUE(a.partial);
  EXPECT_EQ(a.explored_fraction, b.explored_fraction);
  expect_identical(a, b);
}

TEST(ResilienceTest, CheckpointSerializationRoundTrips) {
  SearchCheckpoint ck;
  ck.spec_path = "some dir/spec.flow";  // spaces must survive
  ck.instances = 3;
  ck.fingerprint = 0xdeadbeefcafef00dull;
  ck.buffer_width = 32;
  ck.mode = 1;
  ck.packing = false;
  ck.max_combinations = 123456;
  ck.symmetry_reduction = true;
  ck.max_nodes = 2000000;
  ck.seeds_total = 9;
  ck.next_seed = 4;
  ck.emitted = 77;
  ck.best_valid = true;
  ck.best_gain_bits = std::bit_cast<std::uint64_t>(3.14159);
  ck.best_width = 7;
  ck.best_messages = {MessageId{2}, MessageId{5}};
  ck.memo = {{{MessageId{1}}, std::bit_cast<std::uint64_t>(0.5)},
             {{MessageId{1}, MessageId{2}},
              std::bit_cast<std::uint64_t>(-1.25)}};

  auto parsed = parse_checkpoint(serialize_checkpoint(ck));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const SearchCheckpoint& got = parsed.value();
  EXPECT_EQ(got.spec_path, ck.spec_path);
  EXPECT_EQ(got.instances, ck.instances);
  EXPECT_EQ(got.fingerprint, ck.fingerprint);
  EXPECT_EQ(got.buffer_width, ck.buffer_width);
  EXPECT_EQ(got.mode, ck.mode);
  EXPECT_EQ(got.packing, ck.packing);
  EXPECT_EQ(got.max_combinations, ck.max_combinations);
  EXPECT_EQ(got.symmetry_reduction, ck.symmetry_reduction);
  EXPECT_EQ(got.max_nodes, ck.max_nodes);
  EXPECT_EQ(got.seeds_total, ck.seeds_total);
  EXPECT_EQ(got.next_seed, ck.next_seed);
  EXPECT_EQ(got.emitted, ck.emitted);
  EXPECT_EQ(got.best_valid, ck.best_valid);
  EXPECT_EQ(got.best_gain_bits, ck.best_gain_bits);
  EXPECT_EQ(std::bit_cast<double>(got.best_gain_bits), 3.14159);
  EXPECT_EQ(got.best_width, ck.best_width);
  EXPECT_EQ(got.best_messages, ck.best_messages);
  EXPECT_EQ(got.memo, ck.memo);
}

TEST(ResilienceTest, CorruptCheckpointsRejectedWithTypedErrors) {
  SearchCheckpoint ck;
  ck.seeds_total = 4;
  ck.next_seed = 2;
  const std::string text = serialize_checkpoint(ck);

  // Truncation (atomicity failure simulation).
  EXPECT_FALSE(parse_checkpoint(text.substr(0, text.size() - 6)).ok());
  EXPECT_FALSE(parse_checkpoint(text.substr(0, text.size() / 2)).ok());
  EXPECT_FALSE(parse_checkpoint("").ok());

  // A flipped payload byte fails the checksum.
  std::string flipped = text;
  flipped[text.find("seeds_total")] ^= 1;
  EXPECT_FALSE(parse_checkpoint(flipped).ok());

  // Unknown version.
  std::string versioned = text;
  versioned.replace(versioned.find("checkpoint 1"), 12, "checkpoint 9");
  EXPECT_FALSE(parse_checkpoint(versioned).ok());

  // Progress that cannot be valid.
  SearchCheckpoint bad = ck;
  bad.next_seed = 5;  // > seeds_total
  EXPECT_FALSE(parse_checkpoint(serialize_checkpoint(bad)).ok());
}

TEST(ResilienceTest, SaveCheckpointIsAtomicAndLoadable) {
  const std::string path = temp_path("atomic");
  SearchCheckpoint ck;
  ck.seeds_total = 2;
  ck.next_seed = 1;
  const auto saved = save_checkpoint(path, ck);
  ASSERT_TRUE(saved.ok()) << saved.error().to_string();
  // The temp sibling must be gone after the rename.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  auto loaded = load_checkpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();
  EXPECT_EQ(loaded.value().seeds_total, 2u);
  std::remove(path.c_str());

  EXPECT_FALSE(load_checkpoint(path + ".does-not-exist").ok());
}

TEST(ResilienceTest, FingerprintMismatchRefusesToResume) {
  CoherenceFixture fx;
  const auto u = fx.two_instance_interleaving();
  const MessageSelector selector(fx.catalog, u);
  const std::string ck = temp_path("mismatch");
  SelectorConfig cfg;
  cfg.buffer_width = 2;
  cfg.mode = SearchMode::kExhaustive;
  cfg.jobs = 1;
  cfg.checkpoint_path = ck;
  cfg.checkpoint_interval = 1;
  cfg.shard_budget = 1;
  (void)selector.select(cfg);
  auto loaded = load_checkpoint(ck);
  ASSERT_TRUE(loaded.ok());
  std::remove(ck.c_str());

  // Same selector, different buffer width: a different search identity.
  SelectorConfig other;
  other.buffer_width = 3;
  other.mode = SearchMode::kExhaustive;
  other.jobs = 1;
  other.resume_from =
      std::make_shared<SearchCheckpoint>(std::move(loaded).value());
  EXPECT_THROW((void)selector.select(other), std::runtime_error);
}

TEST(ResilienceTest, MemBudgetDegradesStep2ToBeamAndRecordsIt) {
  // 15 one-bit messages with a 14-bit buffer: 32766 fitting combinations,
  // an estimated ~2 MiB exhaustive frontier — over a 1 MiB budget, under
  // any roomy one.
  flow::MessageCatalog catalog;
  flow::FlowBuilder builder("Chain");
  std::vector<std::string> states;
  for (int i = 0; i <= 15; ++i) {
    std::string name = std::to_string(i);
    name.insert(name.begin(), 's');
    states.push_back(std::move(name));
  }
  builder.state(states[0], flow::FlowBuilder::kInitial);
  std::vector<MessageId> ids;
  for (int i = 0; i < 15; ++i) {
    std::string msg = std::to_string(i);
    msg.insert(msg.begin(), 'm');
    ids.push_back(catalog.add(msg, 1, "A", "B"));
    if (i == 14) builder.state(states[15], flow::FlowBuilder::kStop);
    else builder.state(states[i + 1]);
    builder.transition(states[i], ids.back(), states[i + 1]);
  }
  const flow::Flow chain = builder.build(catalog);
  const auto u =
      flow::InterleavedFlow::build(flow::make_instances({&chain}, 1));
  const MessageSelector selector(catalog, u);
  SelectorConfig cfg;
  cfg.buffer_width = 14;
  cfg.mode = SearchMode::kExhaustive;
  cfg.jobs = 1;
  const auto reference = selector.select(cfg);

  cfg.mem_budget_mb = 1;  // below the exhaustive frontier estimate
  const auto degraded = selector.select(cfg);
  ASSERT_TRUE(degraded.degraded()) << "budget did not trigger";
  EXPECT_NE(degraded.degradation.find("beam"), std::string::npos);
  EXPECT_FALSE(degraded.partial);
  EXPECT_FALSE(degraded.combination.messages.empty());
  EXPECT_LE(degraded.combination.width, 14u);
  EXPECT_LE(degraded.gain, reference.gain);

  // The degradation decision is count-based, never RSS-based, so the
  // parallel entry point lands on the identical beam result.
  SelectorConfig par = cfg;
  par.jobs = 4;
  const auto degraded_par = selector.select(par);
  EXPECT_TRUE(degraded_par.degraded());
  expect_identical(degraded, degraded_par);

  // A generous budget changes nothing.
  SelectorConfig roomy = cfg;
  roomy.mem_budget_mb = 1u << 14;
  const auto full = selector.select(roomy);
  EXPECT_FALSE(full.degraded());
  expect_identical(reference, full);
}

TEST(ResilienceTest, InterleaveBudgetFallsBackToSymmetryReduction) {
  // Eight coherence instances: the unreduced product (24057 reachable
  // states) busts a 1 MiB node budget, the reduced one (dozens of orbit
  // nodes) fits easily — the build must degrade, not die.
  CoherenceFixture fx;
  flow::InterleaveOptions opt;
  opt.symmetry_reduction = false;
  opt.mem_budget_mb = 1;
  const auto u = flow::InterleavedFlow::build(
      flow::make_instances({&fx.flow_}, 8), opt);
  EXPECT_TRUE(u.degraded());
  EXPECT_NE(u.degradation().find("symmetry-reduced"), std::string::npos);
  EXPECT_TRUE(u.reduced());

  // Bit-identical to an explicitly reduced build.
  const auto v = flow::InterleavedFlow::build(
      flow::make_instances({&fx.flow_}, 8));
  const MessageSelector a(fx.catalog, u);
  const MessageSelector b(fx.catalog, v);
  SelectorConfig cfg;
  cfg.buffer_width = 2;
  cfg.jobs = 1;
  expect_identical(b.select(cfg), a.select(cfg));

  // Without a budget the historical contract holds: over-cap unreduced
  // builds throw instead of silently degrading.
  flow::InterleaveOptions strict;
  strict.symmetry_reduction = false;
  strict.max_nodes = 100;
  EXPECT_THROW((void)flow::InterleavedFlow::build(
                   flow::make_instances({&fx.flow_}, 8), strict),
               std::length_error);
}

TEST(ResilienceTest, SessionResumeRebuildsPipelineAndFinishes) {
  const std::string ck = temp_path("session");
  Session clean = Session::from_spec_file(TRACESEL_DATA_DIR "/fig2.flow");
  clean.config().buffer_width = 2;
  clean.config().mode = SearchMode::kExhaustive;
  clean.interleave(2);
  const auto reference = clean.select();

  Session interrupted = Session::from_spec_file(TRACESEL_DATA_DIR
                                                "/fig2.flow");
  interrupted.config().buffer_width = 2;
  interrupted.config().mode = SearchMode::kExhaustive;
  interrupted.config().checkpoint_path = ck;
  interrupted.config().checkpoint_interval = 1;
  interrupted.config().shard_budget = 1;
  interrupted.interleave(2);
  const auto partial = interrupted.select();
  EXPECT_TRUE(partial.partial);
  EXPECT_LT(partial.explored_fraction, 1.0);

  auto resumed = Session::resume(ck);
  ASSERT_TRUE(resumed.ok()) << resumed.error().to_string();
  Session continued = std::move(resumed).value();
  const auto final_result = continued.select();
  EXPECT_FALSE(final_result.partial);
  expect_identical(reference, final_result);
  std::remove(ck.c_str());

  EXPECT_FALSE(Session::resume(ck + ".missing").ok());
}

TEST(ResilienceTest, MonteCarloCancelYieldsPartialAggregate) {
  Session session = Session::t2();
  session.config().cancel = util::CancelToken::make();
  session.config().cancel.cancel();
  const auto r = session.monte_carlo(1, 4);
  EXPECT_TRUE(r.partial);
  EXPECT_EQ(r.runs, 0u);
  EXPECT_EQ(r.requested_runs, 4u);
}

}  // namespace
}  // namespace tracesel::selection
