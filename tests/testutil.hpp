#pragma once
// Shared fixtures: the paper's running example (Fig. 1a), a toy cache
// coherence flow with states {Init(n), Wait(w), GntW(c), Done(d)},
// messages ReqE/GntE/Ack (1 bit each), GntW atomic.

#include <vector>

#include "flow/flow_builder.hpp"
#include "flow/indexed_flow.hpp"
#include "flow/interleaved_flow.hpp"
#include "flow/message.hpp"

namespace tracesel::test {

struct CoherenceFixture {
  flow::MessageCatalog catalog;
  flow::MessageId reqE = catalog.add("ReqE", 1, "IP1", "Dir");
  flow::MessageId gntE = catalog.add("GntE", 1, "Dir", "IP1");
  flow::MessageId ack = catalog.add("Ack", 1, "IP1", "Dir");
  flow::Flow flow_ = make_flow(catalog, reqE, gntE, ack);

  static flow::Flow make_flow(const flow::MessageCatalog& cat,
                              flow::MessageId reqE, flow::MessageId gntE,
                              flow::MessageId ack) {
    flow::FlowBuilder b("CacheCoherence");
    b.state("n", flow::FlowBuilder::kInitial)
        .state("w")
        .state("c", flow::FlowBuilder::kAtomic)
        .state("d", flow::FlowBuilder::kStop)
        .transition("n", reqE, "w")
        .transition("w", gntE, "c")
        .transition("c", ack, "d");
    return b.build(cat);
  }

  /// The two-instance interleaving of Fig. 2 (15 states, 18 edges).
  flow::InterleavedFlow two_instance_interleaving() const {
    return flow::InterleavedFlow::build(flow::make_instances({&flow_}, 2));
  }
};

}  // namespace tracesel::test
