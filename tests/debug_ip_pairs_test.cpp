#include "debug/ip_pairs.hpp"

#include <gtest/gtest.h>

#include "soc/scenario.hpp"
#include "soc/t2_design.hpp"

namespace tracesel::debug {
namespace {

class IpPairsTest : public ::testing::Test {
 protected:
  soc::T2Design design_;
};

TEST_F(IpPairsTest, PairOfReadsCatalogRouting) {
  const IpPair p = pair_of(design_.catalog(), design_.siincu);
  EXPECT_EQ(p.src, "SIU");
  EXPECT_EQ(p.dst, "NCU");
}

TEST_F(IpPairsTest, LegalPairsAreDistinctAndSorted) {
  const auto flows =
      soc::scenario_flows(design_, soc::scenario1());
  const auto pairs = legal_ip_pairs(design_.catalog(), flows);
  EXPECT_TRUE(std::is_sorted(pairs.begin(), pairs.end()));
  EXPECT_EQ(std::adjacent_find(pairs.begin(), pairs.end()), pairs.end());
  EXPECT_FALSE(pairs.empty());
}

TEST_F(IpPairsTest, Scenario1PairsMatchParticipatingIps) {
  // Scenario 1 exercises NCU, DMU, SIU (Table 1); every legal pair's
  // endpoints must be among them.
  const auto flows = soc::scenario_flows(design_, soc::scenario1());
  for (const IpPair& p : legal_ip_pairs(design_.catalog(), flows)) {
    for (const std::string& ip : {p.src, p.dst}) {
      EXPECT_TRUE(ip == "NCU" || ip == "DMU" || ip == "SIU") << ip;
    }
  }
}

TEST_F(IpPairsTest, PairCountsPerScenario) {
  // Regression pins for the modeled design (the paper's Table 6 reports
  // 12/6/10/6/12 legal pairs for its case studies; our transaction model
  // has a smaller but analogous pair structure).
  const auto p1 = legal_ip_pairs(
      design_.catalog(), soc::scenario_flows(design_, soc::scenario1()));
  const auto p2 = legal_ip_pairs(
      design_.catalog(), soc::scenario_flows(design_, soc::scenario2()));
  const auto p3 = legal_ip_pairs(
      design_.catalog(), soc::scenario_flows(design_, soc::scenario3()));
  EXPECT_EQ(p1.size(), 5u);
  EXPECT_EQ(p2.size(), 6u);
  EXPECT_EQ(p3.size(), 6u);
}

TEST_F(IpPairsTest, MessagesOverPairListsAllRoutedMessages) {
  const auto flows = soc::scenario_flows(design_, soc::scenario1());
  const auto over = messages_over_pair(design_.catalog(), flows,
                                       IpPair{"DMU", "NCU"});
  // DMU->NCU messages in scenario 1: dmuncud, piordcrd, piowcrd.
  EXPECT_EQ(over.size(), 3u);
  EXPECT_NE(std::find(over.begin(), over.end(), design_.piordcrd),
            over.end());
  EXPECT_NE(std::find(over.begin(), over.end(), design_.piowcrd), over.end());
  EXPECT_NE(std::find(over.begin(), over.end(), design_.dmuncud), over.end());
}

TEST_F(IpPairsTest, MessagesOverUnknownPairEmpty) {
  const auto flows = soc::scenario_flows(design_, soc::scenario1());
  EXPECT_TRUE(messages_over_pair(design_.catalog(), flows,
                                 IpPair{"MCU", "CCX"})
                  .empty());
}

TEST_F(IpPairsTest, PairOrderingIsLexicographic) {
  EXPECT_LT((IpPair{"A", "B"}), (IpPair{"A", "C"}));
  EXPECT_LT((IpPair{"A", "Z"}), (IpPair{"B", "A"}));
  EXPECT_EQ((IpPair{"X", "Y"}), (IpPair{"X", "Y"}));
}

}  // namespace
}  // namespace tracesel::debug
