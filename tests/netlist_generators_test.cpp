#include "netlist/generators.hpp"

#include <gtest/gtest.h>

#include "netlist/t2_uncore.hpp"
#include "util/rng.hpp"

namespace tracesel::netlist {
namespace {

/// Decodes a flop bank (LSB first) from the simulator's post-clock state.
std::uint64_t decode(const Netlist& nl, const Simulator& sim,
                     const std::vector<NetId>& flops,
                     const std::vector<bool>& state) {
  std::uint64_t v = 0;
  const auto& all = nl.flops();
  for (std::size_t i = 0; i < flops.size(); ++i) {
    const auto it = std::find(all.begin(), all.end(), flops[i]);
    const std::size_t idx = static_cast<std::size_t>(it - all.begin());
    if (state[idx]) v |= 1ull << i;
  }
  (void)sim;
  return v;
}

TEST(Generators, CounterCountsModulo2PowW) {
  Netlist nl;
  const NetId en = nl.add_input("en");
  const Block cnt = make_counter(nl, "c", 4, en);
  Simulator sim(nl);
  for (std::uint64_t i = 1; i <= 20; ++i) {
    const auto& state = sim.step({true});
    EXPECT_EQ(decode(nl, sim, cnt.flops, state), i % 16) << i;
  }
}

TEST(Generators, CounterHoldsWhenDisabled) {
  Netlist nl;
  const NetId en = nl.add_input("en");
  const Block cnt = make_counter(nl, "c", 4, en);
  Simulator sim(nl);
  sim.step({true});
  sim.step({true});
  for (int i = 0; i < 5; ++i) {
    const auto& state = sim.step({false});
    EXPECT_EQ(decode(nl, sim, cnt.flops, state), 2u);
  }
}

TEST(Generators, ShiftRegisterDelaysInput) {
  Netlist nl;
  const NetId in = nl.add_input("in");
  const NetId en = nl.add_input("en");
  const Block sh = make_shift_register(nl, "s", 3, in, en);
  Simulator sim(nl);
  const std::vector<bool> pattern{true, false, true, true, false, false,
                                  true};
  std::vector<bool> tail_seen;
  for (const bool bit : pattern) {
    const auto& state = sim.step({bit, true});
    const auto& all = nl.flops();
    const auto it = std::find(all.begin(), all.end(), sh.flops.back());
    tail_seen.push_back(state[static_cast<std::size_t>(it - all.begin())]);
  }
  // Post-clock, the tail of a width-3 shifter reproduces the input
  // delayed by width-1 = 2 cycles (zero-filled).
  for (std::size_t i = 2; i < pattern.size(); ++i)
    EXPECT_EQ(tail_seen[i], pattern[i - 2]) << i;
}

TEST(Generators, CrcIsDeterministicAndInputSensitive) {
  auto run = [](const std::vector<bool>& stream) {
    Netlist nl;
    const NetId in = nl.add_input("in");
    const Block crc = make_crc(nl, "crc", 5, in, nl.add_const(true),
                               {2, 3});
    Simulator sim(nl);
    std::uint64_t final_value = 0;
    for (const bool bit : stream) {
      const auto& state = sim.step({bit});
      final_value = 0;
      const auto& all = nl.flops();
      for (std::size_t i = 0; i < crc.flops.size(); ++i) {
        const auto it = std::find(all.begin(), all.end(), crc.flops[i]);
        if (state[static_cast<std::size_t>(it - all.begin())])
          final_value |= 1ull << i;
      }
    }
    return final_value;
  };
  const std::vector<bool> a{1, 0, 1, 1, 0, 1, 0, 0};
  std::vector<bool> b = a;
  b[3] = !b[3];
  EXPECT_EQ(run(a), run(a));
  EXPECT_NE(run(a), run(b));  // single-bit sensitivity
}

TEST(Generators, CrcRejectsBadTaps) {
  Netlist nl;
  const NetId in = nl.add_input("in");
  EXPECT_THROW(make_crc(nl, "c", 4, in, in, {0}), std::invalid_argument);
  EXPECT_THROW(make_crc(nl, "c2", 4, in, in, {4}), std::invalid_argument);
}

TEST(Generators, OnehotFsmSelfInitializesAndRotates) {
  Netlist nl;
  const NetId adv = nl.add_input("adv");
  const Block fsm = make_onehot_fsm(nl, "f", 4, adv);
  Simulator sim(nl);
  // First cycle: self-init to stage 0 (value 0b0001).
  auto state = sim.step({false});
  EXPECT_EQ(decode(nl, sim, fsm.flops, state), 1u);
  // Hold without advance.
  state = sim.step({false});
  EXPECT_EQ(decode(nl, sim, fsm.flops, state), 1u);
  // Rotate through all stages and wrap.
  for (const std::uint64_t expect : {2u, 4u, 8u, 1u, 2u}) {
    state = sim.step({true});
    EXPECT_EQ(decode(nl, sim, fsm.flops, state), expect);
  }
}

TEST(Generators, OnehotFsmAlwaysExactlyOneHot) {
  Netlist nl;
  const NetId adv = nl.add_input("adv");
  const Block fsm = make_onehot_fsm(nl, "f", 5, adv);
  Simulator sim(nl);
  util::Rng rng{5};
  for (int i = 0; i < 50; ++i) {
    const auto& state = sim.step({rng.chance(0.5)});
    const std::uint64_t v = decode(nl, sim, fsm.flops, state);
    EXPECT_NE(v, 0u);
    EXPECT_EQ(v & (v - 1), 0u) << "not one-hot: " << v;
  }
}

TEST(Generators, ArbiterGrantsHighestPriorityRequester) {
  Netlist nl;
  std::vector<NetId> reqs{nl.add_input("r0"), nl.add_input("r1"),
                          nl.add_input("r2")};
  const Block arb = make_arbiter(nl, "a", reqs);
  Simulator sim(nl);
  auto grant_bits = [&](bool r0, bool r1, bool r2) {
    sim.step({r0, r1, r2});
    std::uint64_t g = 0;
    for (std::size_t i = 0; i < arb.outputs.size(); ++i)
      if (sim.value(arb.outputs[i])) g |= 1ull << i;
    return g;
  };
  EXPECT_EQ(grant_bits(false, false, false), 0u);
  EXPECT_EQ(grant_bits(true, false, false), 1u);
  EXPECT_EQ(grant_bits(false, true, true), 2u);   // r1 beats r2
  EXPECT_EQ(grant_bits(true, true, true), 1u);    // r0 beats all
  EXPECT_EQ(grant_bits(false, false, true), 4u);
}

TEST(Generators, ArbiterGrantsAreMutuallyExclusive) {
  Netlist nl;
  std::vector<NetId> reqs;
  for (int i = 0; i < 5; ++i)
    reqs.push_back(nl.add_input("r" + std::to_string(i)));
  const Block arb = make_arbiter(nl, "a", reqs);
  Simulator sim(nl);
  util::Rng rng{9};
  for (int t = 0; t < 40; ++t) {
    std::vector<bool> in;
    for (int i = 0; i < 5; ++i) in.push_back(rng.chance(0.5));
    sim.step(in);
    int grants = 0;
    for (const NetId g : arb.outputs)
      if (sim.value(g)) ++grants;
    EXPECT_LE(grants, 1);
  }
}

TEST(Generators, FifoCtrlTracksOccupancy) {
  Netlist nl;
  const NetId push = nl.add_input("push");
  const NetId pop = nl.add_input("pop");
  const Block fifo = make_fifo_ctrl(nl, "q", 3, push, pop);
  Simulator sim(nl);
  // 3 pushes -> occupancy 3.
  for (int i = 0; i < 3; ++i) sim.step({true, false});
  EXPECT_EQ(decode(nl, sim, fifo.flops, sim.step({false, false})), 3u);
  // 2 pops -> occupancy 1.
  sim.step({false, true});
  const auto state = sim.step({false, true});
  EXPECT_EQ(decode(nl, sim, fifo.flops, state), 1u);
}

TEST(Generators, FifoCtrlSaturatesAtEmptyAndFull) {
  Netlist nl;
  const NetId push = nl.add_input("push");
  const NetId pop = nl.add_input("pop");
  const Block fifo = make_fifo_ctrl(nl, "q", 2, push, pop);
  Simulator sim(nl);
  // Pop while empty: stays 0.
  auto state = sim.step({false, true});
  EXPECT_EQ(decode(nl, sim, fifo.flops, state), 0u);
  // Push past full (capacity 3 with 2 bits): saturates at 3.
  for (int i = 0; i < 6; ++i) state = sim.step({true, false});
  EXPECT_EQ(decode(nl, sim, fifo.flops, state), 3u);
  EXPECT_TRUE(sim.value(fifo.outputs[1]));  // full flag
}

TEST(Generators, CreditStageConsumesAndReleasesCredits) {
  Netlist nl;
  const NetId v_in = nl.add_input("v");
  const NetId data = nl.add_input("d");
  const NetId crd = nl.add_input("crd");
  const Block stage = make_credit_stage(nl, "st", 4,
                                        {data, data, data, data}, v_in, crd,
                                        /*credit_bits=*/2);
  Simulator sim(nl);
  // The valid flop is read post-clock from the returned state vector.
  auto valid_after = [&](bool v, bool d, bool crd) {
    const auto& state = sim.step({v, d, crd});
    return decode(nl, sim, {stage.flops.back()}, state) != 0;
  };
  // Three loads fit (2-bit used counter saturating at 3).
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(valid_after(true, true, false)) << i;
  }
  // Fourth load blocked: no credit left.
  EXPECT_FALSE(valid_after(true, true, false));
  // Return one credit, then a load succeeds again.
  EXPECT_FALSE(valid_after(false, false, true));
  EXPECT_TRUE(valid_after(true, true, false));
}

TEST(Generators, InvalidParametersRejected) {
  Netlist nl;
  const NetId x = nl.add_input("x");
  EXPECT_THROW(make_counter(nl, "c", 0, x), std::invalid_argument);
  EXPECT_THROW(make_shift_register(nl, "s", 0, x, x),
               std::invalid_argument);
  EXPECT_THROW(make_onehot_fsm(nl, "f", 1, x), std::invalid_argument);
  EXPECT_THROW(make_arbiter(nl, "a", {}), std::invalid_argument);
  EXPECT_THROW(make_fifo_ctrl(nl, "q", 0, x, x), std::invalid_argument);
  EXPECT_THROW(make_credit_stage(nl, "st", 2, {x}, x, x, 1),
               std::invalid_argument);
}

TEST(T2Uncore, BuildsAndValidates) {
  const T2Uncore uncore;
  EXPECT_GT(uncore.netlist().flops().size(), 150u);
  EXPECT_EQ(uncore.interface_signals().size(), 9u);
  // dmusiidata interface register is 16 wide at the default data width.
  for (const auto& sg : uncore.interface_signals()) {
    EXPECT_FALSE(sg.flops.empty()) << sg.name;
    for (const NetId f : sg.flops)
      EXPECT_EQ(uncore.netlist().gate(f).type, GateType::kFlop) << sg.name;
  }
}

TEST(T2Uncore, SizeScalesWithConfig) {
  T2UncoreConfig small;
  small.cores = 4;
  small.data_width = 8;
  T2UncoreConfig big;
  big.cores = 16;
  big.data_width = 32;
  const T2Uncore a(small), b(big);
  EXPECT_GT(b.netlist().flops().size(), a.netlist().flops().size());
  EXPECT_GT(b.netlist().num_nets(), a.netlist().num_nets());
}

TEST(T2Uncore, SimulatesWithoutX) {
  const T2Uncore uncore;
  Simulator sim(uncore.netlist());
  util::Rng rng{2};
  std::vector<bool> in(uncore.netlist().inputs().size());
  for (int c = 0; c < 64; ++c) {
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.chance(0.5);
    EXPECT_NO_THROW(sim.step(in));
  }
}

TEST(T2Uncore, RejectsDegenerateConfig) {
  T2UncoreConfig bad;
  bad.cores = 1;
  EXPECT_THROW(T2Uncore{bad}, std::invalid_argument);
  T2UncoreConfig narrow;
  narrow.data_width = 2;
  EXPECT_THROW(T2Uncore{narrow}, std::invalid_argument);
}

}  // namespace
}  // namespace tracesel::netlist
