#include <gtest/gtest.h>

#include <sstream>

#include "soc/ip.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace tracesel {
namespace {

TEST(Ip, NamesAllBlocks) {
  EXPECT_EQ(soc::to_string(soc::Ip::kNcu), "NCU");
  EXPECT_EQ(soc::to_string(soc::Ip::kDmu), "DMU");
  EXPECT_EQ(soc::to_string(soc::Ip::kSiu), "SIU");
  EXPECT_EQ(soc::to_string(soc::Ip::kMcu), "MCU");
  EXPECT_EQ(soc::to_string(soc::Ip::kCcx), "CCX");
  EXPECT_EQ(soc::to_string(soc::Ip::kCpu), "CPU");
  EXPECT_EQ(soc::ip_name(soc::Ip::kNcu), "NCU");
}

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { old_ = util::log_threshold(); }
  void TearDown() override { util::set_log_threshold(old_); }

  /// Captures std::clog for the duration of a callback.
  template <typename F>
  std::string capture(F&& fn) {
    std::ostringstream sink;
    auto* old_buf = std::clog.rdbuf(sink.rdbuf());
    fn();
    std::clog.rdbuf(old_buf);
    return sink.str();
  }

  util::LogLevel old_ = util::LogLevel::kWarn;
};

TEST_F(LogTest, EmitsAtOrAboveThreshold) {
  util::set_log_threshold(util::LogLevel::kInfo);
  const std::string out = capture([] {
    util::Log(util::LogLevel::kInfo) << "visible " << 42;
    util::Log(util::LogLevel::kDebug) << "hidden";
  });
  EXPECT_NE(out.find("[info ] "), std::string::npos);
  EXPECT_NE(out.find("visible 42"), std::string::npos);
  EXPECT_EQ(out.find("hidden"), std::string::npos);
}

TEST_F(LogTest, ErrorAlwaysAboveWarnThreshold) {
  util::set_log_threshold(util::LogLevel::kWarn);
  const std::string out = capture([] {
    util::Log(util::LogLevel::kError) << "boom";
  });
  EXPECT_NE(out.find("[error] "), std::string::npos);
  EXPECT_NE(out.find("boom"), std::string::npos);
}

TEST_F(LogTest, PrefixCarriesTimestampAndThreadId) {
  util::set_log_threshold(util::LogLevel::kInfo);
  const std::string out = capture([] {
    util::Log(util::LogLevel::kInfo) << "stamped";
  });
  // "[info ] <elapsed seconds> t<NN> stamped" — elapsed has 6 decimals and
  // the thread id is zero-padded decimal.
  EXPECT_NE(out.find(" t"), std::string::npos);
  EXPECT_NE(out.find('.'), std::string::npos);
  const std::size_t dot = out.find('.');
  ASSERT_GE(out.size(), dot + 7);
  for (std::size_t i = dot + 1; i < dot + 7; ++i)
    EXPECT_TRUE(out[i] >= '0' && out[i] <= '9') << out;
  EXPECT_NE(out.find("stamped"), std::string::npos);
}

TEST_F(LogTest, ConcurrentLinesNeverInterleave) {
  util::set_log_threshold(util::LogLevel::kInfo);
  const std::string payload(64, 'x');
  const std::string out = capture([&] {
    util::ThreadPool pool(4);
    for (int i = 0; i < 64; ++i)
      pool.submit([&] { util::Log(util::LogLevel::kInfo) << payload; });
    pool.wait();
  });
  // Every emitted line must carry the full payload unbroken.
  std::istringstream lines(out);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find(payload), std::string::npos) << line;
    ++count;
  }
  EXPECT_EQ(count, 64u);
}

TEST_F(LogTest, ThresholdRoundTrips) {
  util::set_log_threshold(util::LogLevel::kDebug);
  EXPECT_EQ(util::log_threshold(), util::LogLevel::kDebug);
  util::set_log_threshold(util::LogLevel::kError);
  EXPECT_EQ(util::log_threshold(), util::LogLevel::kError);
}

}  // namespace
}  // namespace tracesel
