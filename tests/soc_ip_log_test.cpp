#include <gtest/gtest.h>

#include <sstream>

#include "soc/ip.hpp"
#include "util/log.hpp"

namespace tracesel {
namespace {

TEST(Ip, NamesAllBlocks) {
  EXPECT_EQ(soc::to_string(soc::Ip::kNcu), "NCU");
  EXPECT_EQ(soc::to_string(soc::Ip::kDmu), "DMU");
  EXPECT_EQ(soc::to_string(soc::Ip::kSiu), "SIU");
  EXPECT_EQ(soc::to_string(soc::Ip::kMcu), "MCU");
  EXPECT_EQ(soc::to_string(soc::Ip::kCcx), "CCX");
  EXPECT_EQ(soc::to_string(soc::Ip::kCpu), "CPU");
  EXPECT_EQ(soc::ip_name(soc::Ip::kNcu), "NCU");
}

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { old_ = util::log_threshold(); }
  void TearDown() override { util::set_log_threshold(old_); }

  /// Captures std::clog for the duration of a callback.
  template <typename F>
  std::string capture(F&& fn) {
    std::ostringstream sink;
    auto* old_buf = std::clog.rdbuf(sink.rdbuf());
    fn();
    std::clog.rdbuf(old_buf);
    return sink.str();
  }

  util::LogLevel old_ = util::LogLevel::kWarn;
};

TEST_F(LogTest, EmitsAtOrAboveThreshold) {
  util::set_log_threshold(util::LogLevel::kInfo);
  const std::string out = capture([] {
    util::Log(util::LogLevel::kInfo) << "visible " << 42;
    util::Log(util::LogLevel::kDebug) << "hidden";
  });
  EXPECT_NE(out.find("[info ] visible 42"), std::string::npos);
  EXPECT_EQ(out.find("hidden"), std::string::npos);
}

TEST_F(LogTest, ErrorAlwaysAboveWarnThreshold) {
  util::set_log_threshold(util::LogLevel::kWarn);
  const std::string out = capture([] {
    util::Log(util::LogLevel::kError) << "boom";
  });
  EXPECT_NE(out.find("[error] boom"), std::string::npos);
}

TEST_F(LogTest, ThresholdRoundTrips) {
  util::set_log_threshold(util::LogLevel::kDebug);
  EXPECT_EQ(util::log_threshold(), util::LogLevel::kDebug);
  util::set_log_threshold(util::LogLevel::kError);
  EXPECT_EQ(util::log_threshold(), util::LogLevel::kError);
}

}  // namespace
}  // namespace tracesel
