#include "netlist/verilog.hpp"

#include <gtest/gtest.h>

#include "netlist/t2_uncore.hpp"
#include "netlist/usb_design.hpp"

namespace tracesel::netlist {
namespace {

TEST(Verilog, SmallCircuitStructure) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId f = nl.add_flop("state");
  nl.set_flop_input(f, nl.add_and(a, b));
  const std::string v = to_verilog(nl, "tiny");

  EXPECT_NE(v.find("module tiny ("), std::string::npos);
  EXPECT_NE(v.find("input wire clk"), std::string::npos);
  EXPECT_NE(v.find("input wire rst"), std::string::npos);
  EXPECT_NE(v.find("input wire a"), std::string::npos);
  EXPECT_NE(v.find("output wire state"), std::string::npos);
  EXPECT_NE(v.find("reg state_q;"), std::string::npos);
  EXPECT_NE(v.find("assign state = state_q;"), std::string::npos);
  EXPECT_NE(v.find(" = a & b;"), std::string::npos);
  EXPECT_NE(v.find("state_q <= 1'b0;"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Verilog, GateOperators) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId s = nl.add_input("s");
  const NetId f = nl.add_flop("q");
  const NetId mux = nl.add_mux(s, nl.add_or(a, b),
                               nl.add_xor(nl.add_not(a), b));
  nl.set_flop_input(f, mux);
  const std::string v = to_verilog(nl, "ops");
  EXPECT_NE(v.find(" = a | b;"), std::string::npos);
  EXPECT_NE(v.find(" = ~a;"), std::string::npos);
  EXPECT_NE(v.find(" ^ b;"), std::string::npos);
  EXPECT_NE(v.find(" ? "), std::string::npos);
}

TEST(Verilog, ConstantsRendered) {
  Netlist nl;
  const NetId f = nl.add_flop("q");
  nl.set_flop_input(f, nl.add_const(true));
  const std::string v = to_verilog(nl, "c");
  EXPECT_NE(v.find(" = 1'b1;"), std::string::npos);
}

TEST(Verilog, SanitizesHostileNames) {
  Netlist nl;
  const NetId in = nl.add_input("weird.name[0]");
  const NetId f = nl.add_flop("3starts_with_digit");
  nl.set_flop_input(f, in);
  const std::string v = to_verilog(nl, "bad-chars");
  EXPECT_EQ(v.find("weird.name"), std::string::npos);
  EXPECT_NE(v.find("weird_name_0_"), std::string::npos);
  EXPECT_NE(v.find("s_3starts_with_digit"), std::string::npos);
  EXPECT_NE(v.find("module bad_chars"), std::string::npos);
}

TEST(Verilog, UsbDesignExportsCompletely) {
  const UsbDesign usb;
  const std::string v = to_verilog(usb.netlist(), "usb_funnel");
  // Every interface signal flop appears as an output.
  for (const auto& sg : usb.interface_signals()) {
    for (const NetId f : sg.flops) {
      const std::string& name = usb.netlist().gate(f).name;
      EXPECT_NE(v.find("output wire " + name), std::string::npos) << name;
    }
  }
  // One register declaration per flop.
  const std::size_t regs =
      static_cast<std::size_t>(std::count(v.begin(), v.end(), '\n'));
  EXPECT_GT(regs, usb.netlist().flops().size());
  // Balanced module.
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Verilog, T2UncoreExportIsLarge) {
  const T2Uncore uncore;
  const std::string v = to_verilog(uncore.netlist(), "t2_uncore");
  EXPECT_GT(v.size(), 10000u);
  // Every flop reset and clocked exactly once.
  std::size_t resets = 0;
  std::size_t clocked = 0;
  std::istringstream is(v);
  std::string line;
  while (std::getline(is, line)) {
    if (line.find("<= 1'b0;") != std::string::npos) ++resets;
    else if (line.find("<= ") != std::string::npos) ++clocked;
  }
  EXPECT_EQ(resets, uncore.netlist().flops().size());
  EXPECT_EQ(clocked, uncore.netlist().flops().size());
}

TEST(Verilog, DeterministicOutput) {
  const UsbDesign a, b;
  EXPECT_EQ(to_verilog(a.netlist(), "m"), to_verilog(b.netlist(), "m"));
}

}  // namespace
}  // namespace tracesel::netlist
