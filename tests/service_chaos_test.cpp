// traceseld under fire: the write-ahead job journal's corruption-recovery
// contract (torn tails, flipped bytes, version skew, duplicate terminals,
// compaction), in-process restart replay and the durable result cache,
// admission-control backpressure (typed retry-after, per-tenant caps,
// hinted retries), client reconnect resilience, and the headline property:
// kill -9 the daemon at a seeded random moment, restart it on the same
// journal directory, and the resubmitted job's report is byte-identical
// to a single-process compute.

#include <fcntl.h>
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "debug/serialize.hpp"
#include "service/client.hpp"
#include "service/journal.hpp"
#include "service/server.hpp"
#include "tracesel/query_core.hpp"
#include "util/framing.hpp"
#include "util/rng.hpp"

namespace tracesel::service {
namespace {

JobRequest fig2_request(std::uint32_t buffer_width = 2) {
  JobRequest req;
  req.spec = std::string(TRACESEL_DATA_DIR) + "/fig2.flow";
  req.instances = 2;
  req.buffer_width = buffer_width;
  return req;
}

/// The single-process reference bytes every recovery path must reproduce.
std::string reference_report(const JobRequest& req) {
  auto direct = QueryCore::run(req, nullptr, {});
  EXPECT_TRUE(direct.ok()) << (direct.ok() ? "" : direct.error().to_string());
  if (!direct.ok()) return {};
  return selection::to_json(*direct.value().workload->catalog,
                            *direct.value().result)
      .dump(2);
}

/// A fresh scratch directory per test, removed on destruction.
struct TempDir {
  TempDir() {
    static std::atomic<int> counter{0};
    path = "/tmp/tsel_chaos_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string sub(const std::string& name) const { return path + "/" + name; }
  std::string path;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Journal options with fsync off: the corruption sweeps open the journal
/// hundreds of times and need no durability, only the record format.
JournalOptions fast_options(const std::string& dir,
                            std::uint64_t rotate_bytes = 0) {
  JournalOptions o;
  o.dir = dir;
  o.rotate_bytes = rotate_bytes;
  o.fsync = false;
  return o;
}

/// Byte offsets of the frame boundaries in a journal image (offset 0 plus
/// the end of each complete frame), via the same FrameReader the journal
/// replays with.
std::vector<std::size_t> frame_boundaries(const std::string& bytes) {
  std::vector<std::size_t> at{0};
  util::FrameReader reader;
  reader.feed(bytes);
  std::string payload;
  while (reader.next(payload) == util::FrameReader::State::kFrame)
    at.push_back(bytes.size() - reader.buffered());
  return at;
}

/// An in-process daemon with caller-controlled options; picks a fresh
/// /tmp socket unless the options name one.
struct Daemon {
  explicit Daemon(ServerOptions opt) {
    static std::atomic<int> counter{0};
    if (opt.socket_path.empty())
      opt.socket_path = "/tmp/tsvc_chaos_" + std::to_string(::getpid()) +
                        "_" + std::to_string(counter.fetch_add(1)) + ".sock";
    shutdown = opt.shutdown;
    path = opt.socket_path;
    server = std::make_unique<Server>(std::move(opt));
    const auto st = server->start();
    if (!st.ok()) throw std::runtime_error(st.error().to_string());
    thread = std::thread([this] { exit_code = server->serve(); });
  }
  ~Daemon() { stop(); }
  void stop() {
    if (!thread.joinable()) return;
    shutdown.cancel();
    thread.join();
    EXPECT_EQ(exit_code, 0);
  }
  Client connect() {
    auto c = Client::connect(path);
    EXPECT_TRUE(c.ok()) << (c.ok() ? "" : c.error().to_string());
    return std::move(c).value();
  }

  std::string path;
  util::CancelToken shutdown;
  std::unique_ptr<Server> server;
  std::thread thread;
  int exit_code = -1;
};

// --- journal corruption contract ----------------------------------------

TEST(ServiceChaos, JournalRoundTripReplay) {
  TempDir tmp;
  const JobRequest a = fig2_request(2);
  const JobRequest b = fig2_request(4);
  {
    JobJournal j;
    auto rec = j.open(fast_options(tmp.sub("wal")));
    ASSERT_TRUE(rec.ok()) << rec.error().to_string();
    EXPECT_TRUE(rec.value().pending.empty());
    j.accepted(1, a);
    j.started(1);
    j.accepted(2, b);
    j.accepted(3, a);
    j.completed(3, 0xabcdef);
    j.close();
  }
  JobJournal j;
  auto rec = j.open(fast_options(tmp.sub("wal")));
  ASSERT_TRUE(rec.ok()) << rec.error().to_string();
  const JournalRecovery& r = rec.value();
  ASSERT_EQ(r.pending.size(), 2u);
  EXPECT_EQ(r.pending[0].id, 1u);
  EXPECT_TRUE(r.pending[0].started);
  EXPECT_TRUE(r.pending[0].request.same_computation(a));
  EXPECT_EQ(r.pending[1].id, 2u);
  EXPECT_FALSE(r.pending[1].started);
  EXPECT_TRUE(r.pending[1].request.same_computation(b));
  EXPECT_EQ(r.completed, 1u);
  EXPECT_EQ(r.dropped_records, 0u);
  EXPECT_EQ(r.dropped_bytes, 0u);
  EXPECT_EQ(r.next_job_id, 4u);
}

TEST(ServiceChaos, TornTailTruncationSweep) {
  // Cut the journal at every byte offset; recovery must replay exactly the
  // frames fully inside the prefix, truncate the torn remainder in place,
  // and leave an appendable log. This is the kill -9 torn-write model.
  TempDir tmp;
  const std::string dir = tmp.sub("wal");
  {
    JobJournal j;
    ASSERT_TRUE(j.open(fast_options(dir)).ok());
    j.accepted(1, fig2_request(2));
    j.accepted(2, fig2_request(4));
    j.completed(1, 0x1111);
    j.close();
  }
  const std::string pristine = slurp(dir + "/jobs.journal");
  ASSERT_GT(pristine.size(), 3 * util::kFrameHeaderBytes);
  const std::vector<std::size_t> bounds = frame_boundaries(pristine);
  ASSERT_EQ(bounds.size(), 4u);  // 0 + three frame ends

  for (std::size_t cut = 0; cut <= pristine.size(); cut += 3) {
    TempDir sweep;
    const std::string d = sweep.sub("wal");
    std::filesystem::create_directories(d);
    spill(d + "/jobs.journal", pristine.substr(0, cut));

    std::size_t good = 0;  // largest frame boundary <= cut
    std::size_t whole_frames = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i)
      if (bounds[i] <= cut) {
        good = bounds[i];
        whole_frames = i;
      }

    JobJournal j;
    auto rec = j.open(fast_options(d));
    ASSERT_TRUE(rec.ok()) << "cut=" << cut << ": " << rec.error().to_string();
    const JournalRecovery& r = rec.value();
    EXPECT_EQ(r.replayed_records, whole_frames) << "cut=" << cut;
    EXPECT_EQ(r.dropped_bytes, cut - good) << "cut=" << cut;
    // Job 1 is pending once its accepted record survives and its completed
    // record does not; job 2 pends once its accepted record survives.
    std::size_t want_pending = 0;
    if (whole_frames >= 1 && whole_frames < 3) ++want_pending;  // job 1
    if (whole_frames >= 2) ++want_pending;                      // job 2
    EXPECT_EQ(r.pending.size(), want_pending) << "cut=" << cut;
    j.close();
    // The torn tail is gone from disk: reopening is clean.
    EXPECT_EQ(slurp(d + "/jobs.journal").size(), good) << "cut=" << cut;
  }
}

TEST(ServiceChaos, TornJournalStaysAppendable) {
  // After a torn-tail recovery the log keeps accepting records.
  TempDir tmp;
  const std::string dir = tmp.sub("wal");
  {
    JobJournal j;
    ASSERT_TRUE(j.open(fast_options(dir)).ok());
    j.accepted(1, fig2_request(2));
    j.accepted(2, fig2_request(4));
    j.close();
  }
  const std::string pristine = slurp(dir + "/jobs.journal");
  spill(dir + "/jobs.journal",
        pristine.substr(0, pristine.size() - 5));  // tear the last record

  JobJournal j;
  auto rec = j.open(fast_options(dir));
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec.value().pending.size(), 1u);
  EXPECT_GT(rec.value().dropped_bytes, 0u);
  j.accepted(7, fig2_request(8));
  j.close();

  JobJournal again;
  auto rec2 = again.open(fast_options(dir));
  ASSERT_TRUE(rec2.ok());
  ASSERT_EQ(rec2.value().pending.size(), 2u);
  EXPECT_EQ(rec2.value().pending[0].id, 1u);
  EXPECT_EQ(rec2.value().pending[1].id, 7u);
  EXPECT_EQ(rec2.value().dropped_bytes, 0u);
}

TEST(ServiceChaos, FlippedChecksumByteDropsTailFromThatRecord) {
  // A bit flip inside a record's payload poisons the stream at that frame
  // (framing cannot resynchronize); everything before it still replays and
  // the file is truncated back to the last good record.
  TempDir tmp;
  const std::string dir = tmp.sub("wal");
  {
    JobJournal j;
    ASSERT_TRUE(j.open(fast_options(dir)).ok());
    j.accepted(1, fig2_request(2));
    j.accepted(2, fig2_request(4));
    j.accepted(3, fig2_request(8));
    j.close();
  }
  std::string bytes = slurp(dir + "/jobs.journal");
  const std::vector<std::size_t> bounds = frame_boundaries(bytes);
  ASSERT_EQ(bounds.size(), 4u);
  // Flip one payload byte in the middle record (past its frame header).
  bytes[bounds[1] + util::kFrameHeaderBytes + 4] ^= 0x40;
  spill(dir + "/jobs.journal", bytes);

  JobJournal j;
  auto rec = j.open(fast_options(dir));
  ASSERT_TRUE(rec.ok());
  const JournalRecovery& r = rec.value();
  EXPECT_EQ(r.replayed_records, 1u);
  ASSERT_EQ(r.pending.size(), 1u);
  EXPECT_EQ(r.pending[0].id, 1u);
  EXPECT_EQ(r.dropped_bytes, bytes.size() - bounds[1]);
  j.close();
  EXPECT_EQ(slurp(dir + "/jobs.journal").size(), bounds[1]);
}

TEST(ServiceChaos, VersionSkewedRecordIsDroppedIndividually) {
  // An intact frame carrying an unknown record version (a future daemon's
  // log) is dropped alone: the frame layer still delimits it, so records
  // after it replay normally — unlike a checksum failure.
  TempDir tmp;
  const std::string dir = tmp.sub("wal");
  std::filesystem::create_directories(dir);
  const JobRequest a = fig2_request(2);
  const JobRequest b = fig2_request(4);
  std::string image;
  image += util::encode_frame("tracesel-jrec 1 accepted 1\n" +
                              serialize_job_request(a));
  image += util::encode_frame("tracesel-jrec 99 accepted 7\nfrom the future");
  image += util::encode_frame("tracesel-jrec 1 unknown-event 8");
  image += util::encode_frame("tracesel-jrec 1 accepted 2\n" +
                              serialize_job_request(b));
  spill(dir + "/jobs.journal", image);

  JobJournal j;
  auto rec = j.open(fast_options(dir));
  ASSERT_TRUE(rec.ok());
  const JournalRecovery& r = rec.value();
  ASSERT_EQ(r.pending.size(), 2u);
  EXPECT_EQ(r.pending[0].id, 1u);
  EXPECT_EQ(r.pending[1].id, 2u);
  EXPECT_TRUE(r.pending[1].request.same_computation(b));
  EXPECT_EQ(r.dropped_records, 2u);  // the skewed frame + the unknown event
  EXPECT_EQ(r.dropped_bytes, 0u);    // nothing torn, nothing truncated
}

TEST(ServiceChaos, DuplicateCompletedRecordsAreIdempotent) {
  // A crash between the completed append and the in-memory erase can
  // double-log the terminal record on the next life; replay must not care.
  TempDir tmp;
  const std::string dir = tmp.sub("wal");
  {
    JobJournal j;
    ASSERT_TRUE(j.open(fast_options(dir)).ok());
    j.accepted(1, fig2_request(2));
    j.completed(1, 0x42);
    j.completed(1, 0x42);
    j.cancelled(1);  // a stale terminal for an already-finished job
    j.close();
  }
  JobJournal j;
  auto rec = j.open(fast_options(dir));
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec.value().pending.empty());
  EXPECT_EQ(rec.value().completed, 2u);
  EXPECT_EQ(rec.value().cancelled, 1u);
  EXPECT_EQ(rec.value().dropped_records, 0u);
}

TEST(ServiceChaos, RotationCompactsToLiveJobs) {
  // With a tiny rotate threshold and a churn of accept/complete pairs, the
  // journal must stay bounded by its live set — and compaction must
  // preserve the one still-unfinished job across a reopen.
  TempDir tmp;
  const std::string dir = tmp.sub("wal");
  const JobRequest live_req = fig2_request(16);
  std::uint64_t rotations = 0;
  {
    JobJournal j;
    ASSERT_TRUE(j.open(fast_options(dir, /*rotate_bytes=*/2048)).ok());
    j.accepted(1000, live_req);
    j.started(1000);
    for (std::uint64_t id = 1; id <= 50; ++id) {
      j.accepted(id, fig2_request(2));
      j.completed(id, id);
    }
    rotations = j.rotations();
    EXPECT_GT(rotations, 0u);
    // Bounded: at most one live job plus the appends since the last
    // compaction — nowhere near 50 jobs' worth of records.
    EXPECT_LT(j.bytes(), 4096u);
    j.close();
  }
  JobJournal j;
  auto rec = j.open(fast_options(dir));
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec.value().pending.size(), 1u);
  EXPECT_EQ(rec.value().pending[0].id, 1000u);
  EXPECT_TRUE(rec.value().pending[0].started);
  EXPECT_TRUE(rec.value().pending[0].request.same_computation(live_req));
}

// --- daemon recovery ----------------------------------------------------

TEST(ServiceChaos, ServerReplaysPendingJobsOnRestart) {
  // A journal holding an accepted-but-unfinished job (the "previous life"
  // died mid-run) must be replayed on start(): the job runs to completion
  // with no client attached, and a later identical submit is served the
  // reference bytes from cache.
  TempDir tmp;
  const std::string dir = tmp.sub("wal");
  const JobRequest req = fig2_request(2);
  {
    JobJournal j;
    JournalOptions o;
    o.dir = dir;
    ASSERT_TRUE(j.open(o).ok());
    j.accepted(1, req);
    j.started(1);
    j.close();
  }

  ServerOptions opt;
  opt.journal_dir = dir;
  Daemon daemon{std::move(opt)};
  EXPECT_EQ(daemon.server->stats().recovered, 1u);

  // The replayed job runs without any connection driving it.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (daemon.server->stats().completed < 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "recovered job never completed";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  Client client = daemon.connect();
  const auto out = client.submit(req);
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_TRUE(out.value().cache_hit);
  EXPECT_EQ(out.value().report_json, reference_report(req));
}

TEST(ServiceChaos, DurableResultCacheSurvivesRestart) {
  // A completed job's report persists under <journal-dir>/results/; a
  // fresh daemon (empty in-memory store) on the same directory serves the
  // resubmission byte-identically without recomputing.
  TempDir tmp;
  const std::string dir = tmp.sub("wal");
  const JobRequest req = fig2_request(2);
  const std::string expected = reference_report(req);

  {
    ServerOptions opt;
    opt.journal_dir = dir;
    Daemon first{std::move(opt)};
    Client client = first.connect();
    const auto out = client.submit(req);
    ASSERT_TRUE(out.ok()) << out.error().to_string();
    EXPECT_EQ(out.value().report_json, expected);
  }

  ServerOptions opt;
  opt.journal_dir = dir;
  Daemon second{std::move(opt)};
  EXPECT_EQ(second.server->stats().recovered, 0u);  // job 1 completed
  Client client = second.connect();
  const auto out = client.submit(req);
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_TRUE(out.value().cache_hit);
  EXPECT_EQ(out.value().report_json, expected);
}

// --- admission control under load ---------------------------------------

/// Blocks every runner inside on_job_start until release() — the
/// deterministic way to keep the queue occupied (fig2 jobs otherwise
/// finish in milliseconds, making overload tests racy).
struct RunnerGate {
  void wait_in_job() {
    std::unique_lock<std::mutex> lk(mu);
    ++entered;
    cv.notify_all();
    cv.wait(lk, [&] { return open; });
  }
  void release() {
    std::lock_guard<std::mutex> lk(mu);
    open = true;
    cv.notify_all();
  }
  void await_entered(int n) {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return entered >= n; });
  }
  std::mutex mu;
  std::condition_variable cv;
  int entered = 0;
  bool open = false;
};

TEST(ServiceChaos, QueueFullShedsWithTypedRetryAfterAndHintedRetrySucceeds) {
  RunnerGate gate;
  ServerOptions opt;
  opt.runners = 1;
  opt.max_queue = 1;
  opt.retry_after_floor_ms = 37;
  opt.on_job_start = [&](const JobRequest&) { gate.wait_in_job(); };
  Daemon daemon{std::move(opt)};

  // Job A occupies the runner (held at the gate), job B fills the queue.
  std::thread a([&] {
    Client c = daemon.connect();
    const auto out = c.submit(fig2_request(2));
    EXPECT_TRUE(out.ok());
  });
  gate.await_entered(1);
  std::atomic<bool> b_queued{false};
  std::thread b([&] {
    Client c = daemon.connect();
    const auto out = c.submit(fig2_request(4), {},
                              [&](std::string_view, std::uint64_t) {
                                b_queued.store(true);
                              });
    EXPECT_TRUE(out.ok());
  });
  while (!b_queued.load()) std::this_thread::sleep_for(
      std::chrono::milliseconds(1));

  // Job C is shed with a typed, hinted retry-after — not a hard error.
  Client c = daemon.connect();
  Client::RetryAfter ra;
  const auto shed = c.submit(fig2_request(8), {}, {}, &ra);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.error().code, util::ErrorCode::kResourceExhausted);
  EXPECT_TRUE(ra.hinted);
  EXPECT_GE(ra.ms, 37u);
  EXPECT_NE(ra.reason.find("queue is full"), std::string::npos);
  {
    const auto s = daemon.server->stats();
    EXPECT_GE(s.rejected, 1u);
    EXPECT_GE(s.retry_after, 1u);
  }

  // Honouring the hint pays off: release the backlog and resubmit with the
  // resilient path — it sleeps the server's hint and then lands.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    gate.release();
  });
  Client::SubmitOptions sopt;
  sopt.max_attempts = 20;
  const auto out = c.submit_resilient(fig2_request(8), sopt);
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_EQ(out.value().status, "ok");

  releaser.join();
  a.join();
  b.join();
}

TEST(ServiceChaos, PerTenantCapShedsOnlyTheNoisyTenant) {
  RunnerGate gate;
  ServerOptions opt;
  opt.runners = 1;
  opt.per_tenant_inflight = 1;
  opt.on_job_start = [&](const JobRequest&) { gate.wait_in_job(); };
  Daemon daemon{std::move(opt)};

  JobRequest first = fig2_request(2);
  first.tenant = "acme";
  std::thread a([&] {
    Client c = daemon.connect();
    const auto out = c.submit(first);
    EXPECT_TRUE(out.ok());
  });
  gate.await_entered(1);

  // Same tenant, different computation: shed at the cap.
  Client c = daemon.connect();
  JobRequest second = fig2_request(4);
  second.tenant = "acme";
  Client::RetryAfter ra;
  const auto shed = c.submit(second, {}, {}, &ra);
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(ra.hinted);
  EXPECT_NE(ra.reason.find("acme"), std::string::npos);
  EXPECT_EQ(daemon.server->stats().shed_tenant_cap, 1u);

  // A different tenant is unaffected by acme's backlog.
  JobRequest other = fig2_request(8);
  other.tenant = "zen";
  std::atomic<bool> other_accepted{false};
  std::thread z([&] {
    Client zc = daemon.connect();
    const auto out = zc.submit(other, {},
                               [&](std::string_view, std::uint64_t) {
                                 other_accepted.store(true);
                               });
    EXPECT_TRUE(out.ok());
  });
  while (!other_accepted.load()) std::this_thread::sleep_for(
      std::chrono::milliseconds(1));

  gate.release();
  a.join();
  z.join();

  // With the cap freed, the shed tenant's retry is admitted.
  const auto retry = c.submit(second);
  ASSERT_TRUE(retry.ok()) << retry.error().to_string();
  EXPECT_EQ(retry.value().status, "ok");

  const auto tel = daemon.server->telemetry_json().dump(2);
  EXPECT_NE(tel.find("\"shed\""), std::string::npos);
}

// --- client resilience --------------------------------------------------

TEST(ServiceChaos, ClientConnectRetriesUntilTheDaemonArrives) {
  // The daemon binds its socket 200 ms after the client starts dialing; a
  // connect timeout with backoff must bridge the gap (this is the
  // --connect-timeout-ms path the CLI exposes).
  static std::atomic<int> counter{0};
  const std::string path = "/tmp/tsvc_late_" + std::to_string(::getpid()) +
                           "_" + std::to_string(counter.fetch_add(1)) +
                           ".sock";
  std::unique_ptr<Daemon> late;
  std::thread starter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    ServerOptions opt;
    opt.socket_path = path;
    late = std::make_unique<Daemon>(std::move(opt));
  });
  Client::ConnectOptions co;
  co.timeout_ms = 10000;
  auto c = Client::connect(path, co);
  starter.join();
  ASSERT_TRUE(c.ok()) << c.error().to_string();
  EXPECT_TRUE(c.value().ping().ok());
}

TEST(ServiceChaos, SubmitResilientSurvivesAnInProcessRestart) {
  // The daemon dies between two submits; submit_resilient reconnects to
  // the reborn daemon on the same socket path and the resubmission is
  // served byte-identically from the durable result cache.
  TempDir tmp;
  const std::string dir = tmp.sub("wal");
  const JobRequest req = fig2_request(2);
  const std::string expected = reference_report(req);

  static std::atomic<int> counter{0};
  const std::string socket = "/tmp/tsvc_reborn_" +
                             std::to_string(::getpid()) + "_" +
                             std::to_string(counter.fetch_add(1)) + ".sock";
  const auto make_daemon = [&] {
    ServerOptions opt;
    opt.socket_path = socket;
    opt.journal_dir = dir;
    return std::make_unique<Daemon>(std::move(opt));
  };

  auto first = make_daemon();
  auto c = Client::connect(socket);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.value().submit(req).ok());
  first->stop();
  first.reset();

  // The daemon is gone; the stale connection's plain submit would fail,
  // but the resilient path reconnects once the daemon is reborn on the
  // same socket and is served from the durable result cache.
  auto second = make_daemon();
  Client::SubmitOptions sopt;
  sopt.max_attempts = 10;
  const auto out = c.value().submit_resilient(req, sopt);
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_TRUE(out.value().cache_hit);
  EXPECT_EQ(out.value().report_json, expected);
}

// --- the kill -9 property -----------------------------------------------

/// Spawns `tracesel serve` as a real process (stdout/stderr silenced).
pid_t spawn_served(const std::string& socket, const std::string& journal) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    const int null_fd = ::open("/dev/null", O_WRONLY);
    if (null_fd >= 0) {
      ::dup2(null_fd, 1);
      ::dup2(null_fd, 2);
      ::close(null_fd);
    }
    ::execl(TRACESEL_CLI_BIN, "tracesel", "serve", "--socket",
            socket.c_str(), "--journal-dir", journal.c_str(), "--runners",
            "1", static_cast<char*>(nullptr));
    _exit(127);
  }
  return pid;
}

TEST(ServiceChaos, KillNineAtRandomMomentsRecoversByteIdentically) {
  // The headline robustness property: SIGKILL the real daemon process at a
  // seeded random moment around a submit — before admission, mid-journal,
  // mid-compute or after completion — restart it on the same journal
  // directory, and a resilient resubmission always lands the exact
  // single-process reference bytes. No case may wedge, crash the reborn
  // daemon, or produce different output.
  const JobRequest req = fig2_request(2);
  const std::string expected = reference_report(req);
  util::Rng rng(0xC4A05);

  for (int round = 0; round < 4; ++round) {
    TempDir tmp;
    const std::string dir = tmp.sub("wal");
    const std::string socket = tmp.sub("d.sock");

    const pid_t first = spawn_served(socket, dir);
    ASSERT_GT(first, 0);
    Client::ConnectOptions co;
    co.timeout_ms = 15000;
    auto c = Client::connect(socket, co);
    ASSERT_TRUE(c.ok()) << c.error().to_string();

    // Fire the submit concurrently; it may or may not complete before the
    // kill lands, and its outcome is deliberately ignored.
    std::thread submitter([&] {
      Client sc = std::move(c).value();
      (void)sc.submit(req);
    });
    std::this_thread::sleep_for(
        std::chrono::milliseconds(rng.between(0, 30)));
    ASSERT_EQ(::kill(first, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(first, &status, 0), first);
    submitter.join();

    const pid_t second = spawn_served(socket, dir);
    ASSERT_GT(second, 0);
    auto rc = Client::connect(socket, co);
    ASSERT_TRUE(rc.ok()) << "round " << round << ": "
                         << rc.error().to_string();
    Client::SubmitOptions sopt;
    sopt.max_attempts = 10;
    const auto out = rc.value().submit_resilient(req, sopt);
    ASSERT_TRUE(out.ok()) << "round " << round << ": "
                          << out.error().to_string();
    EXPECT_EQ(out.value().status, "ok") << "round " << round;
    EXPECT_EQ(out.value().report_json, expected) << "round " << round;

    ASSERT_EQ(::kill(second, SIGTERM), 0);
    ASSERT_EQ(::waitpid(second, &status, 0), second);
    EXPECT_TRUE(WIFEXITED(status)) << "round " << round;
    EXPECT_EQ(WEXITSTATUS(status), 0) << "round " << round;
  }
}

}  // namespace
}  // namespace tracesel::service
