#include "selection/multi_scenario.hpp"

#include <gtest/gtest.h>

#include "selection/selector.hpp"
#include "soc/scenario.hpp"

namespace tracesel::selection {
namespace {

class MultiScenarioTest : public ::testing::Test {
 protected:
  MultiScenarioTest()
      : u1_(soc::build_interleaving(design_, soc::scenario1())),
        u2_(soc::build_interleaving(design_, soc::scenario2())),
        u3_(soc::build_interleaving(design_, soc::scenario3())) {}

  soc::T2Design design_;
  flow::InterleavedFlow u1_, u2_, u3_;
};

TEST_F(MultiScenarioTest, SingleScenarioMatchesKnapsackSelector) {
  // With one scenario of weight 1 the multi-scenario optimum equals the
  // single-scenario knapsack optimum.
  const MultiScenarioSelector multi(design_.catalog(), {{&u1_, 1.0}});
  const auto shared = multi.select(32, /*packing=*/false);

  const MessageSelector single(design_.catalog(), u1_);
  SelectorConfig cfg;
  cfg.mode = SearchMode::kKnapsack;
  cfg.packing = false;
  const auto alone = single.select(cfg);
  EXPECT_EQ(shared.combination.messages, alone.combination.messages);
}

TEST_F(MultiScenarioTest, CandidatesAreUnionOfAlphabets) {
  const MultiScenarioSelector multi(design_.catalog(),
                                    {{&u1_, 1.0}, {&u2_, 1.0}, {&u3_, 1.0}});
  // The 17 messages of the paper's five Table 1 flows appear across the
  // three scenarios (the DMA extension flows stay out).
  EXPECT_EQ(multi.candidates().size(), 17u);
}

TEST_F(MultiScenarioTest, SharedSelectionCoversAllScenarios) {
  const MultiScenarioSelector multi(design_.catalog(),
                                    {{&u1_, 1.0}, {&u2_, 1.0}, {&u3_, 1.0}});
  const auto r = multi.select(32);
  ASSERT_EQ(r.per_scenario_coverage.size(), 3u);
  for (double c : r.per_scenario_coverage) {
    EXPECT_GT(c, 0.2);
    EXPECT_LE(c, 1.0);
  }
  EXPECT_LE(r.used_width, 32u);
}

TEST_F(MultiScenarioTest, SharedNeverBeatsDedicatedPerScenario) {
  // A single shared configuration cannot cover any one scenario better
  // than that scenario's own dedicated selection.
  const MultiScenarioSelector multi(design_.catalog(),
                                    {{&u1_, 1.0}, {&u2_, 1.0}, {&u3_, 1.0}});
  const auto shared = multi.select(32);

  const flow::InterleavedFlow* us[3] = {&u1_, &u2_, &u3_};
  for (int i = 0; i < 3; ++i) {
    const MessageSelector dedicated(design_.catalog(), *us[i]);
    const auto r = dedicated.select({});
    EXPECT_GE(r.coverage, shared.per_scenario_coverage[i] - 1e-9) << i;
  }
}

TEST_F(MultiScenarioTest, WeightsShiftTheSelection) {
  // Heavily weighting scenario 2 pulls its messages into the shared set.
  const MultiScenarioSelector balanced(design_.catalog(),
                                       {{&u1_, 1.0}, {&u2_, 1.0}});
  const MultiScenarioSelector skewed(design_.catalog(),
                                     {{&u1_, 1.0}, {&u2_, 50.0}});
  const auto b = balanced.select(32, false);
  const auto s = skewed.select(32, false);
  // The skewed selection's coverage on scenario 2 is at least the
  // balanced one's.
  EXPECT_GE(s.per_scenario_coverage[1], b.per_scenario_coverage[1] - 1e-9);
}

TEST_F(MultiScenarioTest, ContributionIsWeightedSum) {
  const MultiScenarioSelector even(design_.catalog(),
                                   {{&u1_, 1.0}, {&u2_, 1.0}});
  const MultiScenarioSelector doubled(design_.catalog(),
                                      {{&u1_, 2.0}, {&u2_, 2.0}});
  for (const flow::MessageId m : even.candidates()) {
    EXPECT_NEAR(doubled.contribution(m), 2.0 * even.contribution(m), 1e-12);
  }
}

TEST_F(MultiScenarioTest, PackingUsesSharedLeftover) {
  const MultiScenarioSelector multi(design_.catalog(),
                                    {{&u1_, 1.0}, {&u2_, 1.0}});
  const auto with = multi.select(32, true);
  const auto without = multi.select(32, false);
  EXPECT_GE(with.used_width, without.used_width);
  EXPECT_GE(with.weighted_gain, without.weighted_gain - 1e-12);
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_GE(with.per_scenario_coverage[i],
              without.per_scenario_coverage[i] - 1e-12);
}

TEST_F(MultiScenarioTest, RejectsBadArguments) {
  EXPECT_THROW(MultiScenarioSelector(design_.catalog(), {}),
               std::invalid_argument);
  EXPECT_THROW(MultiScenarioSelector(design_.catalog(), {{nullptr, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(MultiScenarioSelector(design_.catalog(), {{&u1_, 0.0}}),
               std::invalid_argument);
  const MultiScenarioSelector multi(design_.catalog(), {{&u1_, 1.0}});
  EXPECT_THROW(multi.select(0), std::runtime_error);
}

TEST_F(MultiScenarioTest, ObservableIncludesPackedParents) {
  const MultiScenarioSelector multi(design_.catalog(),
                                    {{&u1_, 1.0}, {&u2_, 1.0}});
  const auto r = multi.select(32, true);
  const auto obs = r.observable();
  for (const auto& pg : r.packed) {
    EXPECT_NE(std::find(obs.begin(), obs.end(), pg.parent), obs.end());
  }
}

}  // namespace
}  // namespace tracesel::selection
