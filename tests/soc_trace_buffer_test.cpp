#include "soc/trace_buffer.hpp"

#include <gtest/gtest.h>

#include "selection/selector.hpp"
#include "soc/scenario.hpp"
#include "soc/t2_design.hpp"
#include "soc/vcd.hpp"

namespace tracesel::soc {
namespace {

class TraceBufferTest : public ::testing::Test {
 protected:
  TraceBufferTest() {
    // A selection with one full message and one packed subgroup.
    selection_.combination.messages = {design_.mondoacknack};
    selection_.combination.width = 2;
    selection_.packed = {
        selection::PackedGroup{design_.dmusiidata, "cputhreadid", 6}};
    selection_.buffer_width = 32;
    selection_.used_width = 8;
  }

  TimedMessage make(flow::MessageId m, std::uint64_t value,
                    std::uint32_t session = 0) {
    TimedMessage tm;
    tm.msg = {m, 1};
    tm.value = value;
    tm.session = session;
    tm.src = design_.catalog().get(m).source_ip;
    tm.dst = design_.catalog().get(m).dest_ip;
    return tm;
  }

  T2Design design_;
  selection::SelectionResult selection_;
};

TEST_F(TraceBufferTest, ConfigureComputesUtilization) {
  TraceBuffer tb(TraceBufferConfig{32, 16});
  tb.configure(design_.catalog(), selection_);
  EXPECT_DOUBLE_EQ(tb.utilization(), 8.0 / 32.0);
  EXPECT_TRUE(tb.observes(design_.mondoacknack));
  EXPECT_TRUE(tb.observes(design_.dmusiidata));
  EXPECT_FALSE(tb.observes(design_.reqtot));
}

TEST_F(TraceBufferTest, RecordsOnlyObservableMessages) {
  TraceBuffer tb(TraceBufferConfig{32, 16});
  tb.configure(design_.catalog(), selection_);
  tb.record(make(design_.mondoacknack, 0x3));
  tb.record(make(design_.reqtot, 0x7));  // unobservable
  EXPECT_EQ(tb.size(), 1u);
  EXPECT_EQ(tb.records()[0].msg.message, design_.mondoacknack);
}

TEST_F(TraceBufferTest, PackedSubgroupTruncatesValue) {
  TraceBuffer tb(TraceBufferConfig{32, 16});
  tb.configure(design_.catalog(), selection_);
  // dmusiidata is 20 bits but captured through the 6-bit subgroup.
  tb.record(make(design_.dmusiidata, 0xFFFFF));
  ASSERT_EQ(tb.size(), 1u);
  EXPECT_EQ(tb.records()[0].value, 0x3Fu);
  EXPECT_TRUE(tb.records()[0].partial);
}

TEST_F(TraceBufferTest, FullWidthFieldKeepsValue) {
  TraceBuffer tb(TraceBufferConfig{32, 16});
  tb.configure(design_.catalog(), selection_);
  tb.record(make(design_.mondoacknack, 0x3));
  EXPECT_EQ(tb.records()[0].value, 0x3u);
  EXPECT_FALSE(tb.records()[0].partial);
}

TEST_F(TraceBufferTest, WrapsAfterDepth) {
  TraceBuffer tb(TraceBufferConfig{32, 4});
  tb.configure(design_.catalog(), selection_);
  for (std::uint64_t i = 0; i < 6; ++i) {
    auto tm = make(design_.mondoacknack, i & 3);
    tm.cycle = i;
    tb.record(tm);
  }
  EXPECT_EQ(tb.size(), 4u);
  EXPECT_EQ(tb.overwritten(), 2u);
  const auto records = tb.records();
  // Oldest-first view after wrap: cycles 2,3,4,5.
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().cycle, 2u);
  EXPECT_EQ(records.back().cycle, 5u);
}

TEST_F(TraceBufferTest, ConfigureRejectsOverwideSelection) {
  TraceBuffer tb(TraceBufferConfig{4, 16});
  EXPECT_THROW(tb.configure(design_.catalog(), selection_),
               std::invalid_argument);
}

TEST_F(TraceBufferTest, ConfigureRejectsDoubleTracedParent) {
  selection::SelectionResult bad = selection_;
  bad.combination.messages.push_back(design_.dmusiidata);
  bad.combination.width += 20;
  TraceBuffer tb(TraceBufferConfig{32, 16});
  EXPECT_THROW(tb.configure(design_.catalog(), bad), std::invalid_argument);
}

TEST_F(TraceBufferTest, InvalidConfigThrows) {
  EXPECT_THROW(TraceBuffer(TraceBufferConfig{0, 4}), std::invalid_argument);
  EXPECT_THROW(TraceBuffer(TraceBufferConfig{32, 0}), std::invalid_argument);
}

TEST_F(TraceBufferTest, ReconfigureClearsContents) {
  TraceBuffer tb(TraceBufferConfig{32, 8});
  tb.configure(design_.catalog(), selection_);
  tb.record(make(design_.mondoacknack, 1));
  tb.configure(design_.catalog(), selection_);
  EXPECT_EQ(tb.size(), 0u);
  EXPECT_EQ(tb.overwritten(), 0u);
}

TEST_F(TraceBufferTest, DstPreservedForMisrouteEvidence) {
  TraceBuffer tb(TraceBufferConfig{32, 8});
  tb.configure(design_.catalog(), selection_);
  auto tm = make(design_.mondoacknack, 1);
  tm.dst = "SIU";  // misrouted
  tb.record(tm);
  EXPECT_EQ(tb.records()[0].dst, "SIU");
}

TEST_F(TraceBufferTest, ZeroWidthSelectionObservesNothing) {
  // A buffer configured with an empty selection is legal (the tools may
  // probe a design before choosing messages): it observes and records
  // nothing instead of crashing.
  selection::SelectionResult empty;
  empty.buffer_width = 32;
  empty.used_width = 0;
  TraceBuffer tb(TraceBufferConfig{32, 16});
  tb.configure(design_.catalog(), empty);
  EXPECT_DOUBLE_EQ(tb.utilization(), 0.0);
  EXPECT_FALSE(tb.observes(design_.mondoacknack));
  tb.record(make(design_.mondoacknack, 1));
  EXPECT_EQ(tb.size(), 0u);
}

TEST_F(TraceBufferTest, FillingToExactCapacityDoesNotOverwrite) {
  // Off-by-one guard: depth records fill the ring exactly; the wrap
  // bookkeeping must only start at depth + 1.
  constexpr std::uint32_t kDepth = 4;
  TraceBuffer tb(TraceBufferConfig{32, kDepth});
  tb.configure(design_.catalog(), selection_);
  for (std::uint64_t i = 0; i < kDepth; ++i) {
    auto tm = make(design_.mondoacknack, i & 3);
    tm.cycle = i;
    tb.record(tm);
  }
  EXPECT_EQ(tb.size(), kDepth);
  EXPECT_EQ(tb.overwritten(), 0u);
  EXPECT_EQ(tb.records().front().cycle, 0u);
  EXPECT_EQ(tb.records().back().cycle, kDepth - 1);

  auto tm = make(design_.mondoacknack, 1);
  tm.cycle = kDepth;
  tb.record(tm);
  EXPECT_EQ(tb.size(), kDepth);
  EXPECT_EQ(tb.overwritten(), 1u);
  EXPECT_EQ(tb.records().front().cycle, 1u);  // oldest beat evicted
}

TEST_F(TraceBufferTest, EmptyCaptureRendersValidVcd) {
  // An empty session (trigger never fired, or the run produced no traced
  // messages) must still render a well-formed VCD document.
  const std::string vcd = trace_to_vcd(design_.catalog(), {});
  EXPECT_NE(vcd.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(vcd.find("$timescale"), std::string::npos);
}

TEST_F(TraceBufferTest, DuplicateMessageIdsAreAllRecorded) {
  // A capture may legitimately contain the same message id many times
  // (repeats across sessions, or duplication faults on the channel); the
  // buffer must keep every beat, not dedupe.
  TraceBuffer tb(TraceBufferConfig{32, 16});
  tb.configure(design_.catalog(), selection_);
  for (int i = 0; i < 3; ++i) {
    auto tm = make(design_.mondoacknack, 2);
    tm.cycle = static_cast<std::uint64_t>(i);
    tb.record(tm);
  }
  ASSERT_EQ(tb.size(), 3u);
  for (const TraceRecord& r : tb.records()) {
    EXPECT_EQ(r.msg.message, design_.mondoacknack);
    EXPECT_EQ(r.value, 2u);
  }
}

class TriggerTest : public TraceBufferTest {
 protected:
  TriggerTest() : tb_(TraceBufferConfig{32, 16}) {
    // Also trace reqtot so the window contents are visible.
    selection_.combination.messages.push_back(design_.reqtot);
    selection_.combination.width += 3;
    selection_.used_width += 3;
    tb_.configure(design_.catalog(), selection_);
  }
  TraceBuffer tb_;
};

TEST_F(TriggerTest, StartTriggerDelaysCapture) {
  TraceTrigger trig;
  trig.start = design_.grant;  // untraced message arms the window
  tb_.set_trigger(trig);
  EXPECT_FALSE(tb_.capturing());

  tb_.record(make(design_.reqtot, 1));  // before window: dropped
  EXPECT_EQ(tb_.size(), 0u);
  tb_.record(make(design_.grant, 1));  // trigger fires
  EXPECT_TRUE(tb_.capturing());
  tb_.record(make(design_.reqtot, 2));
  ASSERT_EQ(tb_.size(), 1u);
  EXPECT_EQ(tb_.records()[0].value, 2u);
}

TEST_F(TriggerTest, StopTriggerClosesWindow) {
  TraceTrigger trig;
  trig.stop = design_.mondoacknack;
  tb_.set_trigger(trig);
  EXPECT_TRUE(tb_.capturing());
  tb_.record(make(design_.reqtot, 1));
  tb_.record(make(design_.mondoacknack, 3));  // stop (traced: recorded)
  EXPECT_FALSE(tb_.capturing());
  tb_.record(make(design_.reqtot, 2));  // after window: dropped
  EXPECT_EQ(tb_.size(), 2u);
}

TEST_F(TriggerTest, ExcludeTriggerMessages) {
  TraceTrigger trig;
  trig.start = design_.reqtot;
  trig.include_trigger = false;
  tb_.set_trigger(trig);
  tb_.record(make(design_.reqtot, 1));  // fires the trigger, not recorded
  EXPECT_TRUE(tb_.capturing());
  EXPECT_EQ(tb_.size(), 0u);
  tb_.record(make(design_.reqtot, 2));
  EXPECT_EQ(tb_.size(), 1u);
}

TEST_F(TriggerTest, StartStopWindowCapturesMiddle) {
  TraceTrigger trig;
  trig.start = design_.grant;
  trig.stop = design_.grant;  // same message: one-shot window? start wins
  tb_.set_trigger(trig);
  tb_.record(make(design_.grant, 1));  // opens
  EXPECT_TRUE(tb_.capturing());
  tb_.record(make(design_.grant, 2));  // closes
  EXPECT_FALSE(tb_.capturing());
}

TEST_F(TriggerTest, ConfigureClearsTrigger) {
  TraceTrigger trig;
  trig.start = design_.grant;
  tb_.set_trigger(trig);
  EXPECT_FALSE(tb_.capturing());
  tb_.configure(design_.catalog(), selection_);
  EXPECT_TRUE(tb_.capturing());
  tb_.record(make(design_.reqtot, 1));
  EXPECT_EQ(tb_.size(), 1u);
}

}  // namespace
}  // namespace tracesel::soc
