#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/bits.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace tracesel::util {
namespace {

TEST(Rng, Deterministic) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, BelowStaysInRange) {
  Rng r{7};
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(13), 13u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng r{7};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BelowZeroThrows) {
  Rng r{1};
  EXPECT_THROW(r.below(0), std::invalid_argument);
}

TEST(Rng, BetweenInclusive) {
  Rng r{9};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = r.between(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_THROW(r.between(6, 3), std::invalid_argument);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng r{11};
  for (int i = 0; i < 1000; ++i) {
    const double u = r.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r{5};
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ShufflePermutes) {
  Rng r{21};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  r.shuffle(w);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), w.begin()));
}

TEST(Rng, ForkIsIndependentStream) {
  Rng a{3};
  Rng child = a.fork();
  Rng b{3};
  (void)b.fork();
  // The parent stream after fork() matches a reference that also forked.
  EXPECT_EQ(a(), b());
  // And the child differs from the parent.
  EXPECT_NE(child(), a());
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(stddev(xs), 2.13809, 1e-5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{1.0}), 0.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonZeroVarianceIsZero) {
  const std::vector<double> xs{1, 1, 1};
  const std::vector<double> ys{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, PearsonLengthMismatchThrows) {
  const std::vector<double> xs{1, 2};
  const std::vector<double> ys{1, 2, 3};
  EXPECT_THROW(pearson(xs, ys), std::invalid_argument);
}

TEST(Stats, RanksHandleTies) {
  const std::vector<double> xs{10, 20, 20, 30};
  EXPECT_EQ(ranks(xs), (std::vector<double>{1.0, 2.5, 2.5, 4.0}));
}

TEST(Stats, SpearmanMonotoneNonlinear) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{1, 4, 9, 16, 25};  // nonlinear but monotone
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

TEST(Stats, MonotoneFraction) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> inc{1, 2, 3, 4};
  const std::vector<double> dec{4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(monotone_fraction(xs, inc), 1.0);
  EXPECT_DOUBLE_EQ(monotone_fraction(xs, dec), 0.0);
  const std::vector<double> mixed{1, 3, 2, 4};
  EXPECT_NEAR(monotone_fraction(xs, mixed), 2.0 / 3.0, 1e-12);
}

TEST(Table, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "200"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("200"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_cols(), 2u);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(Table, WideRowThrows) {
  Table t({"a"});
  EXPECT_THROW(t.add_row({"x", "y"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, AlignmentOverride) {
  Table t({"name", "value"});
  t.set_align(0, Align::kRight);
  t.set_align(1, Align::kLeft);
  t.add_row({"ab", "1"});
  const std::string s = t.to_string();
  // Column 0 right-aligned under a 4-char header; column 1 left-aligned.
  EXPECT_NE(s.find("|   ab | 1     |"), std::string::npos) << s;
  EXPECT_THROW(t.set_align(5, Align::kLeft), std::out_of_range);
}

TEST(Table, PctAndFixedFormat) {
  EXPECT_EQ(pct(0.9896), "98.96%");
  EXPECT_EQ(pct(1.0), "100.00%");
  EXPECT_EQ(pct(0.943, 1), "94.3%");
  EXPECT_EQ(fixed(1.0734, 3), "1.073");
}

TEST(Bits, BitsForValues) {
  EXPECT_EQ(bits_for_values(0), 1u);
  EXPECT_EQ(bits_for_values(2), 1u);
  EXPECT_EQ(bits_for_values(3), 2u);
  EXPECT_EQ(bits_for_values(4), 2u);
  EXPECT_EQ(bits_for_values(5), 3u);
  EXPECT_EQ(bits_for_values(256), 8u);
  EXPECT_EQ(bits_for_values(257), 9u);
}

TEST(Bits, MaxValueForWidth) {
  EXPECT_EQ(max_value_for_width(1), 1ull);
  EXPECT_EQ(max_value_for_width(6), 63ull);
  EXPECT_EQ(max_value_for_width(64), ~0ull);
}

}  // namespace
}  // namespace tracesel::util
