// Compiled per-spec DP kernels (flow/kernel.hpp, DESIGN.md §14): the
// differential property the whole subsystem rests on — for every workload
// and every entry point, the compiled kernel produces bit-identical
// results to the generic engine. Covers path counts, consistent-path
// counts, label-target histograms, Step 2 gains, full selection results at
// --jobs 1 and > 1, the QueryCore/ArtifactStore program cache, the daemon
// (serve) path, and the JobRequest wire encoding of the kernel knob.

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "flow/execution.hpp"
#include "flow/kernel.hpp"
#include "netlist/usb_design.hpp"
#include "selection/gain_memo.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "soc/scenario.hpp"
#include "soc/t2_design.hpp"
#include "testutil.hpp"
#include "tracesel/query_core.hpp"
#include "tracesel/session.hpp"
#include "util/rng.hpp"

namespace tracesel {
namespace {

using test::CoherenceFixture;

flow::InterleaveOptions options_for(flow::KernelMode mode, bool symmetry) {
  flow::InterleaveOptions opt;
  opt.kernel = mode;
  opt.symmetry_reduction = symmetry;
  return opt;
}

/// One workload of the differential matrix: a factory producing the same
/// interleaving under a caller-chosen options struct.
struct Workload {
  std::string name;
  std::function<flow::InterleavedFlow(const flow::InterleaveOptions&)> build;
  const flow::MessageCatalog* catalog;
};

/// Full-result equality, field by field and bitwise on the doubles.
void expect_identical(const selection::SelectionResult& a,
                      const selection::SelectionResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.combination.messages, b.combination.messages) << what;
  EXPECT_EQ(a.combination.width, b.combination.width) << what;
  EXPECT_EQ(a.packed, b.packed) << what;
  EXPECT_EQ(a.gain, b.gain) << what;
  EXPECT_EQ(a.gain_unpacked, b.gain_unpacked) << what;
  EXPECT_EQ(a.coverage, b.coverage) << what;
  EXPECT_EQ(a.coverage_unpacked, b.coverage_unpacked) << what;
  EXPECT_EQ(a.used_width, b.used_width) << what;
  EXPECT_EQ(a.buffer_width, b.buffer_width) << what;
}

class KernelDifferentialTest : public ::testing::Test {
 protected:
  CoherenceFixture fx_;
  soc::T2Design t2_;
  netlist::UsbDesign usb_;

  std::vector<Workload> matrix() {
    std::vector<Workload> w;
    for (std::uint32_t n = 1; n <= 4; ++n) {
      w.push_back({"fig2@" + std::to_string(n),
                   [this, n](const flow::InterleaveOptions& opt) {
                     return flow::InterleavedFlow::build(
                         flow::make_instances({&fx_.flow_}, n), opt);
                   },
                   &fx_.catalog});
    }
    for (std::uint32_t n = 1; n <= 2; ++n) {
      w.push_back({"usb@" + std::to_string(n),
                   [this, n](const flow::InterleaveOptions& opt) {
                     return usb_.interleaving(n, opt);
                   },
                   &usb_.catalog()});
    }
    for (int id = 1; id <= 4; ++id) {
      w.push_back({"t2-scenario" + std::to_string(id),
                   [this, id](const flow::InterleaveOptions& opt) {
                     return soc::build_interleaving(
                         t2_, soc::scenario_by_id(id), opt);
                   },
                   &t2_.catalog()});
    }
    return w;
  }
};

TEST_F(KernelDifferentialTest, CountsHistogramsAndGainsBitIdentical) {
  for (const Workload& w : matrix()) {
    for (const bool symmetry : {true, false}) {
      SCOPED_TRACE(w.name + (symmetry ? "+sym" : "-sym"));
      const flow::InterleavedFlow ug =
          w.build(options_for(flow::KernelMode::kGeneric, symmetry));
      const flow::InterleavedFlow uc =
          w.build(options_for(flow::KernelMode::kCompiled, symmetry));

      // Path counts: exact, not approximate, equality.
      EXPECT_EQ(ug.count_paths(), uc.count_paths());

      // Label-target histograms (the InfoGainEngine's input).
      const auto& hg = ug.label_target_histograms();
      const auto& hc = uc.label_target_histograms();
      ASSERT_EQ(hg.size(), hc.size());
      for (std::size_t i = 0; i < hg.size(); ++i) {
        EXPECT_EQ(hg[i].label, hc[i].label);
        EXPECT_EQ(hg[i].classes, hc[i].classes);
      }

      // Consistent-path counts over projected real executions.
      const selection::MessageSelector sel_g(*w.catalog, ug);
      const std::vector<flow::MessageId>& cand = sel_g.candidates();
      util::Rng rng(42);
      for (int t = 0; t < 8; ++t) {
        const flow::Execution e = flow::random_execution(ug, rng);
        const auto obs = flow::project(e.trace(), cand);
        EXPECT_EQ(ug.count_consistent_paths(cand, obs),
                  uc.count_consistent_paths(cand, obs))
            << "trace " << t;
      }
      EXPECT_EQ(ug.count_consistent_paths(cand, {}),
                uc.count_consistent_paths(cand, {}));

      // Step 2 gains: every candidate prefix, both dispatch modes on the
      // same engine, plus cross-engine.
      const selection::MessageSelector sel_c(*w.catalog, uc);
      std::vector<flow::MessageId> prefix;
      for (flow::MessageId m : cand) {
        prefix.push_back(m);
        const double g =
            sel_g.engine().info_gain(prefix, flow::KernelMode::kGeneric);
        EXPECT_EQ(g,
                  sel_g.engine().info_gain(prefix,
                                           flow::KernelMode::kCompiled));
        EXPECT_EQ(g, sel_c.engine().info_gain(prefix,
                                              flow::KernelMode::kCompiled));
        EXPECT_EQ(sel_g.engine().message_contribution(
                      m, flow::KernelMode::kGeneric),
                  sel_c.engine().message_contribution(
                      m, flow::KernelMode::kCompiled));
      }
    }
  }
}

TEST_F(KernelDifferentialTest, FullSelectionBitIdenticalAcrossModesAndJobs) {
  struct Case {
    std::string name;
    bool symmetry;
  };
  for (const Case& c : {Case{"sym", true}, Case{"nosym", false}}) {
    // Reference: generic engine, serial.
    auto make_session = [&](flow::KernelMode mode, std::size_t jobs) {
      Session s = Session::t2();
      selection::SelectorConfig cfg;
      cfg.buffer_width = 32;
      cfg.kernel = mode;
      cfg.jobs = jobs;
      s.configure(cfg);
      flow::InterleaveOptions iopt;
      iopt.symmetry_reduction = c.symmetry;
      s.interleave_options(iopt);
      s.scenario(3);
      return s;
    };
    const selection::SelectionResult ref =
        make_session(flow::KernelMode::kGeneric, 1).select();
    expect_identical(ref,
                     make_session(flow::KernelMode::kCompiled, 1).select(),
                     c.name + " compiled serial");
    expect_identical(ref,
                     make_session(flow::KernelMode::kGeneric, 4).select(),
                     c.name + " generic jobs=4");
    expect_identical(ref,
                     make_session(flow::KernelMode::kCompiled, 4).select(),
                     c.name + " compiled jobs=4");
  }
}

TEST_F(KernelDifferentialTest, FlowConstraintSelectionBitIdentical) {
  auto run = [&](flow::KernelMode mode) {
    Session s = Session::usb();
    selection::SelectorConfig cfg;
    cfg.buffer_width = 16;
    cfg.kernel = mode;
    s.configure(cfg);
    s.interleave(1);
    return s.select_with_flow_constraint();
  };
  expect_identical(run(flow::KernelMode::kGeneric),
                   run(flow::KernelMode::kCompiled), "usb flow-constraint");
}

// --- the compiled program itself ---

class KernelProgramTest : public ::testing::Test {
 protected:
  CoherenceFixture fx_;
};

TEST_F(KernelProgramTest, CompileStatsAreSane) {
  // Fig. 2 unreduced: 15 product states, 18 edges.
  const flow::InterleavedFlow u = flow::InterleavedFlow::build(
      flow::make_instances({&fx_.flow_}, 2),
      options_for(flow::KernelMode::kCompiled, /*symmetry=*/false));
  const flow::kernel::Program& p = u.program();
  EXPECT_EQ(p.stats().nodes, 15u);
  EXPECT_EQ(p.stats().edges, 18u);
  EXPECT_EQ(p.stats().labels, 6u);  // 3 messages x 2 instances
  EXPECT_GT(p.stats().table_bytes, 0u);
  EXPECT_GE(p.stats().compile_ms, 0.0);
  EXPECT_FALSE(p.reduced());
  EXPECT_EQ(p.count_paths(), u.count_paths());
}

TEST_F(KernelProgramTest, SharedProgramIsCompiledOnceAndAdoptable) {
  const flow::InterleavedFlow u = fx_.two_instance_interleaving();
  auto p1 = u.shared_program();
  auto p2 = u.shared_program();
  EXPECT_EQ(p1.get(), p2.get());

  const flow::InterleavedFlow v = fx_.two_instance_interleaving();
  v.adopt_program(p1);
  EXPECT_EQ(v.shared_program().get(), p1.get());
  // Adopting over an existing program is a no-op.
  v.adopt_program(std::make_shared<const flow::kernel::Program>(
      flow::kernel::Program::compile(v)));
  EXPECT_EQ(v.shared_program().get(), p1.get());
}

TEST_F(KernelProgramTest, ReducedProgramCountsPathsButRefusesTraceQueries) {
  flow::InterleaveOptions reduced;
  reduced.symmetry_reduction = true;
  const flow::InterleavedFlow u = flow::InterleavedFlow::build(
      flow::make_instances({&fx_.flow_}, 3), reduced);
  ASSERT_TRUE(u.reduced());
  const flow::kernel::Program p = flow::kernel::Program::compile(u);
  EXPECT_TRUE(p.reduced());
  flow::InterleaveOptions full = reduced;
  full.symmetry_reduction = false;
  const flow::InterleavedFlow uf = flow::InterleavedFlow::build(
      flow::make_instances({&fx_.flow_}, 3), full);
  EXPECT_EQ(p.count_paths(), uf.count_paths());
  EXPECT_THROW(p.count_consistent_paths({}, {}), std::logic_error);
  EXPECT_THROW(p.label_target_histograms(), std::logic_error);
}

TEST_F(KernelProgramTest, GainCursorMatchesRecomputedInfoGain) {
  const flow::InterleavedFlow u = fx_.two_instance_interleaving();
  const selection::MessageSelector sel(fx_.catalog, u);
  const selection::InfoGainEngine& engine = sel.engine();
  selection::GainCursor cursor(engine);
  std::vector<flow::MessageId> current;
  util::Rng rng(7);
  for (int step = 0; step < 200; ++step) {
    const bool push = current.empty() || (rng() % 3) != 0;
    if (push) {
      const flow::MessageId m =
          sel.candidates()[rng() % sel.candidates().size()];
      current.push_back(m);
      cursor.push(m);
    } else {
      current.pop_back();
      cursor.pop();
    }
    ASSERT_EQ(cursor.depth(), current.size());
    // Bitwise: the cursor top IS the same left-to-right summation.
    ASSERT_EQ(cursor.gain(),
              engine.info_gain(current, flow::KernelMode::kCompiled));
    ASSERT_EQ(cursor.gain(),
              engine.info_gain(current, flow::KernelMode::kGeneric));
  }
}

// --- the store/daemon integration ---

class KernelStoreTest : public ::testing::Test {};

TEST_F(KernelStoreTest, ProgramCacheCompilesOnceAcrossConcurrentTenants) {
  CoherenceFixture fx;
  const flow::InterleavedFlow u = fx.two_instance_interleaving();
  ArtifactStore store;
  constexpr int kThreads = 8;
  std::vector<std::future<std::shared_ptr<const flow::kernel::Program>>>
      futures;
  futures.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    futures.push_back(std::async(std::launch::async, [&] {
      return store.kernel_program(
          1234, [&] { return u.shared_program(); });
    }));
  }
  std::shared_ptr<const flow::kernel::Program> first;
  for (auto& f : futures) {
    auto p = f.get();
    ASSERT_NE(p, nullptr);
    if (!first) first = p;
    EXPECT_EQ(p.get(), first.get());
  }
  const ArtifactStore::Stats s = store.stats();
  EXPECT_EQ(s.kernel_misses, 1u);
  EXPECT_EQ(s.kernel_hits, kThreads - 1u);
  EXPECT_EQ(s.kernel_entries, 1u);
  store.clear();
  EXPECT_EQ(store.stats().kernel_entries, 0u);
}

TEST_F(KernelStoreTest, QueryCoreSharesProgramAndResultsAcrossModes) {
  JobRequest compiled;
  compiled.spec = "t2";
  compiled.instances = 3;
  compiled.kernel = flow::KernelMode::kCompiled;
  JobRequest generic = compiled;
  generic.kernel = flow::KernelMode::kGeneric;

  ArtifactStore store;
  auto r1 = QueryCore::run(compiled, &store, util::CancelToken{});
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1.value().kernel_cache_hit);
  EXPECT_EQ(store.stats().kernel_entries, 1u);

  // The kernel knob is runtime-only: the generic request must be served
  // from the result cache, bit-for-bit the same object.
  auto r2 = QueryCore::run(generic, &store, util::CancelToken{});
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2.value().result_cache_hit);
  EXPECT_EQ(r2.value().result.get(), r1.value().result.get());

  // A fresh store under generic mode computes independently; results must
  // still be bit-identical.
  ArtifactStore fresh;
  auto r3 = QueryCore::run(generic, &fresh, util::CancelToken{});
  ASSERT_TRUE(r3.ok());
  EXPECT_FALSE(r3.value().kernel_cache_hit);  // generic: no compile at all
  EXPECT_EQ(fresh.stats().kernel_entries, 0u);
  expect_identical(*r1.value().result, *r3.value().result,
                   "t2@3 compiled-store vs generic-store");

  // Re-running compiled hits both the workload and the program cache.
  auto r4 = QueryCore::run(compiled, &store, util::CancelToken{});
  ASSERT_TRUE(r4.ok());
  EXPECT_TRUE(r4.value().workload_cache_hit);
  EXPECT_TRUE(r4.value().kernel_cache_hit);
}

TEST_F(KernelStoreTest, WireEncodingRoundTripsKernelMode) {
  JobRequest req;
  req.spec = "usb";
  req.kernel = flow::KernelMode::kGeneric;
  auto parsed = parse_job_request(serialize_job_request(req));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().kernel, flow::KernelMode::kGeneric);
  req.kernel = flow::KernelMode::kCompiled;
  parsed = parse_job_request(serialize_job_request(req));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().kernel, flow::KernelMode::kCompiled);
  // The knob never enters the canonical (result-cache) hash.
  JobRequest generic = req;
  generic.kernel = flow::KernelMode::kGeneric;
  EXPECT_EQ(req.canonical_hash(1), generic.canonical_hash(1));
  EXPECT_TRUE(req.same_computation(generic));
}

TEST_F(KernelStoreTest, ServeProducesIdenticalReportsAcrossModes) {
  service::ServerOptions opt;
  opt.socket_path =
      "/tmp/tskern_" + std::to_string(::getpid()) + ".sock";
  opt.runners = 2;
  util::CancelToken shutdown = opt.shutdown;
  service::Server server(std::move(opt));
  ASSERT_TRUE(server.start().ok());
  std::thread serve([&] { server.serve(); });

  auto submit = [&](flow::KernelMode mode) {
    JobRequest req;
    req.spec = "t2";
    req.instances = 3;
    req.kernel = mode;
    auto client =
        service::Client::connect("/tmp/tskern_" +
                                 std::to_string(::getpid()) + ".sock");
    EXPECT_TRUE(client.ok());
    auto outcome = client.value().submit(req, util::CancelToken{}, nullptr);
    EXPECT_TRUE(outcome.ok());
    return std::move(outcome).value();
  };
  const service::JobOutcome compiled = submit(flow::KernelMode::kCompiled);
  const service::JobOutcome generic = submit(flow::KernelMode::kGeneric);
  EXPECT_EQ(compiled.status, "ok");
  EXPECT_EQ(generic.status, "ok");
  // Byte-identical report JSON: the daemon's differential guarantee. (The
  // second submit is additionally a result-cache hit, because the kernel
  // knob is not part of the canonical hash.)
  EXPECT_EQ(compiled.report_json, generic.report_json);
  EXPECT_TRUE(generic.cache_hit);

  shutdown.cancel();
  serve.join();
}

}  // namespace
}  // namespace tracesel
