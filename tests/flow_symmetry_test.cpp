// Symmetry-reduced engine vs the unreduced product: the reduction must be
// an *exact* quotient. Every weighted quantity (product sizes, occurrence
// counts, path counts, Step 2 info gain, Def. 7 coverage, selection) has to
// be bit-identical to the full product, and the built-in cross-check mode
// (which rebuilds the unreduced product and compares) must pass on every
// spec we ship: Fig. 2, the USB netlist flows, and T2 sub-specs at three
// instances per flow.

#include <stdexcept>

#include <gtest/gtest.h>

#include "flow/execution.hpp"
#include "flow/interleaved_flow.hpp"
#include "netlist/usb_design.hpp"
#include "selection/coverage.hpp"
#include "selection/info_gain.hpp"
#include "selection/localization.hpp"
#include "selection/selector.hpp"
#include "soc/t2_design.hpp"
#include "testutil.hpp"
#include "util/rng.hpp"

namespace tracesel {
namespace {

using flow::InterleavedFlow;
using flow::InterleaveOptions;
using test::CoherenceFixture;

InterleaveOptions reduced_checked() {
  InterleaveOptions opt;
  opt.cross_check = true;  // throws std::logic_error on any mismatch
  return opt;
}

InterleaveOptions unreduced() {
  InterleaveOptions opt;
  opt.symmetry_reduction = false;
  return opt;
}

/// Exhaustive agreement check between a reduced and an unreduced build of
/// the same instances, over every public weighted quantity.
void expect_engines_agree(const InterleavedFlow& red,
                          const InterleavedFlow& full) {
  ASSERT_TRUE(red.reduced());
  ASSERT_FALSE(full.reduced());
  EXPECT_EQ(red.num_product_states(), full.num_product_states());
  EXPECT_EQ(red.num_product_edges(), full.num_product_edges());
  EXPECT_EQ(full.num_product_states(), full.num_nodes());
  EXPECT_EQ(full.num_product_edges(), full.num_edges());
  EXPECT_LE(red.num_nodes(), full.num_nodes());

  // Same indexed-message alphabet with identical occurrence counts.
  auto red_ims = red.indexed_messages();
  auto full_ims = full.indexed_messages();
  ASSERT_EQ(red_ims.size(), full_ims.size());
  for (const auto& im : full_ims) {
    EXPECT_EQ(red.occurrences(im), full.occurrences(im))
        << im.index << ":" << im.message;
  }

  // Orbit weights partition the concrete state set.
  std::uint64_t weight_sum = 0;
  for (flow::NodeId n = 0; n < red.num_nodes(); ++n)
    weight_sum += red.node_weight(n);
  EXPECT_EQ(weight_sum, full.num_product_states());

  // Execution counts are exact (both well below 2^53 here).
  EXPECT_DOUBLE_EQ(red.count_paths(), full.count_paths());

  // Step 2 info gain: identical per-label contributions and totals.
  const selection::InfoGainEngine er(red);
  const selection::InfoGainEngine ef(full);
  EXPECT_EQ(er.max_gain(), ef.max_gain());
  for (const auto& im : full_ims) {
    EXPECT_EQ(er.contribution(im), ef.contribution(im))
        << im.index << ":" << im.message;
  }
}

TEST(SymmetryReduction, CrossCheckPassesOnFigure2) {
  const CoherenceFixture fx;
  const auto u = InterleavedFlow::build(
      flow::make_instances({&fx.flow_}, 2), reduced_checked());
  EXPECT_TRUE(u.reduced());
  EXPECT_EQ(u.num_nodes(), 9u);            // orbit representatives
  EXPECT_EQ(u.num_product_states(), 15u);  // Fig. 2 concrete product
  EXPECT_EQ(u.num_product_edges(), 18u);
}

TEST(SymmetryReduction, CrossCheckPassesOnUsbDesign) {
  const netlist::UsbDesign usb;
  const auto u = usb.interleaving(2, reduced_checked());
  EXPECT_TRUE(u.reduced());
  EXPECT_LT(u.num_nodes(), u.num_product_states());
}

TEST(SymmetryReduction, CrossCheckPassesOnThreeInstanceT2SubSpec) {
  const soc::T2Design design;
  const auto u = InterleavedFlow::build(
      flow::make_instances({&design.pior(), &design.piow()}, 3),
      reduced_checked());
  EXPECT_TRUE(u.reduced());
  // 3! * 3! concrete tuples collapse per fully-mixed orbit: the quotient
  // is substantially smaller than the product it represents exactly.
  EXPECT_LT(u.num_nodes() * 4, u.num_product_states());
}

TEST(SymmetryReduction, EnginesAgreeOnFigure2) {
  const CoherenceFixture fx;
  const auto instances = flow::make_instances({&fx.flow_}, 2);
  expect_engines_agree(InterleavedFlow::build(instances),
                       InterleavedFlow::build(instances, unreduced()));
}

TEST(SymmetryReduction, EnginesAgreeOnThreeInstanceT2SubSpec) {
  const soc::T2Design design;
  const auto instances =
      flow::make_instances({&design.pior(), &design.piow()}, 3);
  expect_engines_agree(InterleavedFlow::build(instances),
                       InterleavedFlow::build(instances, unreduced()));
}

TEST(SymmetryReduction, CoverageIdenticalAcrossEngines) {
  const soc::T2Design design;
  const auto instances =
      flow::make_instances({&design.pior(), &design.piow()}, 3);
  const auto red = InterleavedFlow::build(instances);
  const auto full = InterleavedFlow::build(instances, unreduced());
  // Growing alphabet prefix: coverage must match bit-for-bit at every step.
  std::vector<flow::MessageId> prefix;
  for (const flow::MessageId m : design.pior().messages()) {
    prefix.push_back(m);
    EXPECT_EQ(selection::flow_spec_coverage(red, prefix),
              selection::flow_spec_coverage(full, prefix));
  }
}

TEST(SymmetryReduction, SelectionIdenticalAcrossEngines) {
  const soc::T2Design design;
  const auto instances =
      flow::make_instances({&design.pior(), &design.piow()}, 3);
  const auto red = InterleavedFlow::build(instances);
  const auto full = InterleavedFlow::build(instances, unreduced());
  const selection::MessageSelector sr(design.catalog(), red);
  const selection::MessageSelector sf(design.catalog(), full);
  for (const std::uint32_t budget : {8u, 16u, 32u}) {
    selection::SelectorConfig cfg;
    cfg.buffer_width = budget;
    const auto a = sr.select(cfg);
    const auto b = sf.select(cfg);
    EXPECT_EQ(a.combination.messages, b.combination.messages) << budget;
    EXPECT_EQ(a.combination.width, b.combination.width) << budget;
    EXPECT_EQ(a.gain, b.gain) << budget;
    EXPECT_EQ(a.gain_unpacked, b.gain_unpacked) << budget;
    EXPECT_EQ(a.coverage, b.coverage) << budget;
    EXPECT_EQ(a.coverage_unpacked, b.coverage_unpacked) << budget;
    EXPECT_EQ(a.used_width, b.used_width) << budget;
    EXPECT_EQ(a.packed, b.packed) << budget;
  }
}

TEST(SymmetryReduction, LocalizationAgreesThroughConcreteFallback) {
  const CoherenceFixture fx;
  const auto instances = flow::make_instances({&fx.flow_}, 2);
  const auto red = InterleavedFlow::build(instances);
  const auto full = InterleavedFlow::build(instances, unreduced());
  util::Rng rng(7);
  const std::vector<flow::MessageId> selected{fx.reqE, fx.ack};
  for (int i = 0; i < 5; ++i) {
    const auto e = flow::random_execution(full, rng);
    if (!e.completed) continue;
    const auto obs = flow::project(e.trace(), selected);
    const auto lr = selection::localize(red, selected, obs);
    const auto lf = selection::localize(full, selected, obs);
    EXPECT_EQ(lr.consistent_paths, lf.consistent_paths);
    EXPECT_EQ(lr.total_paths, lf.total_paths);
    EXPECT_EQ(lr.fraction, lf.fraction);
    EXPECT_EQ(red.count_consistent_paths_multiset(selected, obs),
              full.count_consistent_paths_multiset(selected, obs));
  }
}

TEST(SymmetryReduction, RandomExecutionsOnReducedEngineAreConcrete) {
  const CoherenceFixture fx;
  const auto red = fx.two_instance_interleaving();
  ASSERT_TRUE(red.reduced());
  util::Rng rng(11);
  for (int i = 0; i < 5; ++i) {
    const auto e = flow::random_execution(red, rng);
    EXPECT_TRUE(flow::is_valid_execution(red, e));
  }
}

TEST(SymmetryReduction, HeterogeneousInstanceCountsStayExact) {
  // 3 x PIOR, 2 x PIOW, 1 x Mon: groups of different sizes, with the
  // singleton group contributing no symmetry at all.
  const soc::T2Design design;
  std::vector<flow::IndexedFlow> instances;
  for (std::uint32_t i = 1; i <= 3; ++i)
    instances.push_back({&design.pior(), i});
  for (std::uint32_t i = 1; i <= 2; ++i)
    instances.push_back({&design.piow(), i});
  instances.push_back({&design.mondo(), 1});
  const auto u = InterleavedFlow::build(instances, reduced_checked());
  EXPECT_TRUE(u.reduced());
  EXPECT_LT(u.num_nodes(), u.num_product_states());
}

TEST(SymmetryReduction, MaxNodesGuardThrowsWithReduction) {
  const soc::T2Design design;
  InterleaveOptions opt;  // reduction on
  opt.max_nodes = 10;
  EXPECT_THROW(
      InterleavedFlow::build(
          flow::make_instances({&design.pior(), &design.piow()}, 3), opt),
      std::length_error);
}

TEST(SymmetryReduction, MaxNodesGuardThrowsWithoutReduction) {
  const CoherenceFixture fx;
  InterleaveOptions opt = unreduced();
  opt.max_nodes = 10;  // Fig. 2 needs 15 concrete nodes
  EXPECT_THROW(
      InterleavedFlow::build(flow::make_instances({&fx.flow_}, 2), opt),
      std::length_error);
}

TEST(SymmetryReduction, MaxNodesAdmitsReducedBuildThatFitsOnlyReduced) {
  // Fig. 2 reduced needs 9 nodes, unreduced 15: a cap of 12 separates the
  // engines — the whole point of the reduction.
  const CoherenceFixture fx;
  InterleaveOptions opt;
  opt.max_nodes = 12;
  const auto u = InterleavedFlow::build(
      flow::make_instances({&fx.flow_}, 2), opt);
  EXPECT_EQ(u.num_product_states(), 15u);
  opt.symmetry_reduction = false;
  EXPECT_THROW(
      InterleavedFlow::build(flow::make_instances({&fx.flow_}, 2), opt),
      std::length_error);
}

TEST(SymmetryReduction, SingleInstancesProduceNoReductionButStillWork) {
  const soc::T2Design design;
  const auto u = InterleavedFlow::build(
      flow::make_instances({&design.pior(), &design.piow()}, 1),
      reduced_checked());
  // All groups are singletons: the quotient *is* the product.
  EXPECT_EQ(u.num_nodes(), u.num_product_states());
  EXPECT_EQ(u.num_edges(), u.num_product_edges());
}

}  // namespace
}  // namespace tracesel
