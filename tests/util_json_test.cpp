#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace tracesel::util {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json::null().dump(), "null");
  EXPECT_EQ(Json::boolean(true).dump(), "true");
  EXPECT_EQ(Json::boolean(false).dump(), "false");
  EXPECT_EQ(Json::number(std::int64_t{42}).dump(), "42");
  EXPECT_EQ(Json::number(std::int64_t{-7}).dump(), "-7");
  EXPECT_EQ(Json::number(1.5).dump(), "1.5");
  EXPECT_EQ(Json::string("hi").dump(), "\"hi\"");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(Json::number(std::numeric_limits<double>::infinity()).dump(),
            "null");
  EXPECT_EQ(Json::number(std::nan("")).dump(), "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json::string("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(Json::string("a\\b").dump(), "\"a\\\\b\"");
  EXPECT_EQ(Json::string("a\nb\tc").dump(), "\"a\\nb\\tc\"");
  EXPECT_EQ(Json::string(std::string_view("\x01", 1)).dump(),
            "\"\\u0001\"");
}

TEST(Json, ArraysAndObjectsCompact) {
  Json arr = Json::array();
  arr.push_back(Json::number(std::int64_t{1}));
  arr.push_back(Json::string("two"));
  EXPECT_EQ(arr.dump(), "[1,\"two\"]");

  Json obj = Json::object();
  obj.set("a", Json::number(std::int64_t{1}));
  obj.set("b", Json::boolean(false));
  EXPECT_EQ(obj.dump(), "{\"a\":1,\"b\":false}");
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::array().dump(), "[]");
  EXPECT_EQ(Json::object().dump(), "{}");
}

TEST(Json, SetOverwritesExistingKey) {
  Json obj = Json::object();
  obj.set("k", Json::number(std::int64_t{1}));
  obj.set("k", Json::number(std::int64_t{2}));
  EXPECT_EQ(obj.dump(), "{\"k\":2}");
}

TEST(Json, KeysKeepInsertionOrder) {
  Json obj = Json::object();
  obj.set("z", Json::null());
  obj.set("a", Json::null());
  EXPECT_EQ(obj.dump(), "{\"z\":null,\"a\":null}");
}

TEST(Json, PrettyPrinting) {
  Json obj = Json::object();
  obj.set("xs", Json::array({Json::number(std::int64_t{1})}));
  const std::string pretty = obj.dump(2);
  EXPECT_EQ(pretty, "{\n  \"xs\": [\n    1\n  ]\n}");
}

TEST(Json, BuilderTypeErrors) {
  Json arr = Json::array();
  EXPECT_THROW(arr.set("k", Json::null()), std::logic_error);
  Json obj = Json::object();
  EXPECT_THROW(obj.push_back(Json::null()), std::logic_error);
}

TEST(Json, LargeUnsignedFallsBackToDouble) {
  const std::uint64_t big = ~0ull;
  // Renders without throwing; exact text is double-formatted.
  EXPECT_FALSE(Json::number(big).dump().empty());
}

TEST(Json, NestedStructures) {
  Json inner = Json::object();
  inner.set("name", Json::string("dmusiidata"));
  inner.set("width", Json::number(std::int64_t{20}));
  Json outer = Json::object();
  outer.set("messages", Json::array({std::move(inner)}));
  EXPECT_EQ(outer.dump(),
            "{\"messages\":[{\"name\":\"dmusiidata\",\"width\":20}]}");
}

}  // namespace
}  // namespace tracesel::util
