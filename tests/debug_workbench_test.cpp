#include "debug/workbench.hpp"

#include <gtest/gtest.h>

#include "debug/case_study.hpp"
#include "debug/extended_causes.hpp"
#include "flow/parser.hpp"
#include "soc/t2_extended.hpp"

namespace tracesel::debug {
namespace {

class WorkbenchExtendedTest : public ::testing::Test {
 protected:
  WorkbenchExtendedTest()
      : causes_(extended_root_causes(design_)),
        bench_(design_.catalog(),
               {&design_.mondo_nack(), &design_.pior_retry()}, causes_) {}

  bug::Bug make_bug(int id, bug::BugEffect effect, flow::MessageId target,
                    std::string symptom) {
    bug::Bug b;
    b.id = id;
    b.effect = effect;
    b.target = target;
    b.symptom = std::move(symptom);
    b.trigger_session = 1;
    return b;
  }

  soc::T2ExtendedDesign design_;
  RootCauseCatalog causes_;
  Workbench bench_;
};

TEST_F(WorkbenchExtendedTest, CatalogHasSevenCauses) {
  EXPECT_EQ(causes_.size(), 7u);
}

TEST_F(WorkbenchExtendedTest, LostRetryLocalizesToCause1) {
  // Extended case study 1: the DMU drops the post-NACK retry request.
  const auto bug = make_bug(100, bug::BugEffect::kDropMessage,
                            design_.reqretry, "HANG: retry lost");
  WorkbenchConfig cfg;
  cfg.sessions = 12;  // enough sessions to take the NACK branch
  const auto r = bench_.run({bug}, cfg);
  ASSERT_TRUE(r.buggy.failed);
  EXPECT_EQ(r.buggy.failure, "HANG: retry lost");
  ASSERT_FALSE(r.report.final_causes.empty());
  bool cause1 = false;
  for (const auto& c : r.report.final_causes)
    if (c.id == 1) cause1 = true;
  EXPECT_TRUE(cause1) << "true cause pruned away";
  EXPECT_LT(r.report.final_causes.size(), causes_.size());
}

TEST_F(WorkbenchExtendedTest, WrongNackLocalizesToCause2) {
  // Extended case study 2: NCU's interrupt table yields garbage NACKs.
  const auto bug = make_bug(101, bug::BugEffect::kCorruptValue,
                            design_.mondonack, "FAIL: Bad Trap");
  WorkbenchConfig cfg;
  cfg.sessions = 12;
  const auto r = bench_.run({bug}, cfg);
  ASSERT_TRUE(r.buggy.failed);
  bool cause2 = false;
  for (const auto& c : r.report.final_causes)
    if (c.id == 2) cause2 = true;
  EXPECT_TRUE(cause2);
  EXPECT_EQ(r.observation.status.at(design_.mondonack),
            MsgStatus::kPresentCorrupt);
}

TEST_F(WorkbenchExtendedTest, GoldenAndBuggyTakeSameBranches) {
  // Deterministic branch choice: with a non-stalling bug the golden and
  // buggy runs emit the same message multiset.
  const auto bug = make_bug(102, bug::BugEffect::kCorruptValue,
                            design_.dmusiidata, "FAIL: Bad Trap");
  WorkbenchConfig cfg;
  cfg.sessions = 8;
  const auto r = bench_.run({bug}, cfg);
  ASSERT_EQ(r.golden.messages.size(), r.buggy.messages.size());
  std::map<flow::MessageId, int> g_count, b_count;
  for (const auto& tm : r.golden.messages) ++g_count[tm.msg.message];
  for (const auto& tm : r.buggy.messages) ++b_count[tm.msg.message];
  EXPECT_EQ(g_count, b_count);
}

TEST_F(WorkbenchExtendedTest, CleanRunObservesHealthyTrace) {
  const auto r = bench_.run({});
  EXPECT_FALSE(r.buggy.failed);
  for (const auto& [m, status] : r.observation.status)
    EXPECT_EQ(status, MsgStatus::kPresentCorrect);
  // A healthy trace legitimately excludes every cause that predicts an
  // anomaly on a traced message; only causes whose suspect messages are
  // all untraced remain "unfalsifiable".
  for (const auto& c : r.report.final_causes) {
    for (const auto& [m, predicted] : c.predictions) {
      if (predicted == MsgStatus::kPresentCorrect) continue;
      EXPECT_EQ(std::find(r.observation.traced.begin(),
                          r.observation.traced.end(), m),
                r.observation.traced.end())
          << "cause " << c.id << " should have been falsified";
    }
  }
}

TEST_F(WorkbenchExtendedTest, RejectsEmptyFlows) {
  EXPECT_THROW(Workbench(design_.catalog(), {}, causes_),
               std::invalid_argument);
}

TEST(WorkbenchParsedSpec, RunsOnFlowsFromText) {
  // The workbench works end to end on a user-authored spec.
  static const auto spec = flow::parse_flow_spec(R"(
message go   4 A -> B
message work 8 B -> C
message done 2 C -> A
flow Job {
  state Idle initial
  state Run
  state Fin
  state Done stop
  Idle -> Run on go
  Run -> Fin on work
  Fin -> Done on done
}
)");
  RootCause stuck;
  stuck.id = 1;
  stuck.description = "B never produces work";
  stuck.implication = "job hangs";
  stuck.ip = "B";
  stuck.predictions[spec.catalog.require("work")] = MsgStatus::kAbsent;
  stuck.predictions[spec.catalog.require("done")] = MsgStatus::kAbsent;
  RootCause corrupt;
  corrupt.id = 2;
  corrupt.description = "B corrupts work payload";
  corrupt.implication = "wrong result";
  corrupt.ip = "B";
  corrupt.predictions[spec.catalog.require("work")] =
      MsgStatus::kPresentCorrupt;
  const RootCauseCatalog causes({stuck, corrupt});

  const Workbench bench(spec.catalog, {&spec.flows[0]}, causes);
  bug::Bug b;
  b.id = 7;
  b.effect = bug::BugEffect::kDropMessage;
  b.target = spec.catalog.require("work");
  b.symptom = "HANG";
  b.trigger_session = 0;
  WorkbenchConfig cfg;
  cfg.buffer_width = 16;
  const auto r = bench.run({b}, cfg);
  EXPECT_TRUE(r.buggy.failed);
  ASSERT_EQ(r.report.final_causes.size(), 1u);
  EXPECT_EQ(r.report.final_causes[0].id, 1);
}

TEST_F(WorkbenchExtendedTest, ShallowBufferDegradesGracefully) {
  // A 12-entry trace buffer wraps long before the symptom; the pipeline
  // must stay sound (no crash, localization still counts >= 0 paths), and
  // the overwritten evidence may cost pruning power — never gain it.
  const auto bug = make_bug(104, bug::BugEffect::kDropMessage,
                            design_.reqretry, "HANG: retry lost");
  WorkbenchConfig deep, shallow;
  deep.sessions = shallow.sessions = 12;
  shallow.buffer_depth = 12;
  const auto full = bench_.run({bug}, deep);
  const auto wrapped = bench_.run({bug}, shallow);
  EXPECT_TRUE(wrapped.buggy.failed);
  EXPECT_LE(wrapped.buggy_records.size(), 12u);
  EXPECT_GE(wrapped.localization.consistent_paths, 0.0);
  // Wrapping discards evidence: the wrapped run keeps at least as many
  // plausible causes... unless lost golden records fabricate anomalies;
  // either way the report must stay within the catalog.
  EXPECT_LE(wrapped.report.final_causes.size(), causes_.size());
  EXPECT_GE(full.report.pruned_fraction(), 0.0);
}

TEST(WorkbenchT2Parity, CaseStudyWrapperMatchesDirectWorkbench) {
  // run_case_study is a thin wrapper: running the same configuration
  // through Workbench directly must give identical results.
  const soc::T2Design design;
  const auto cs = soc::standard_case_studies()[1];
  const auto via_wrapper = run_case_study(design, cs);

  std::vector<bug::Bug> bugs;
  bug::Bug active = soc::bug_by_id(design, cs.active_bug_id);
  active.trigger_session = 1;
  bugs.push_back(active);
  for (int id : cs.dormant_bug_ids) {
    bug::Bug dormant = soc::bug_by_id(design, id);
    dormant.trigger_session = 4 + 1000;
    bugs.push_back(dormant);
  }
  const auto catalog =
      RootCauseCatalog::for_scenario(design, cs.scenario_id);
  const auto scenario = soc::scenario_by_id(cs.scenario_id);
  const Workbench bench(design.catalog(),
                        soc::scenario_flows(design, scenario), catalog);
  const auto direct = bench.run(bugs, {});

  EXPECT_EQ(direct.selection.combination.messages,
            via_wrapper.selection.combination.messages);
  EXPECT_EQ(direct.report.final_causes.size(),
            via_wrapper.report.final_causes.size());
  EXPECT_EQ(direct.buggy.failure, via_wrapper.buggy.failure);
  EXPECT_DOUBLE_EQ(direct.localization.fraction,
                   via_wrapper.localization.fraction);
}

}  // namespace
}  // namespace tracesel::debug
