// The PR-6 acceptance property: distributed selection is bit-identical to
// the serial search on Fig.2, USB and T2 under every seeded fault schedule
// in {worker-kill, worker-hang, corrupt-frame} x {1, 2, 4 workers}, with
// retries/reassignments observable in the metrics registry. Worker
// processes are the real tracesel_cli binary in --worker mode
// (TRACESEL_WORKER_BIN, injected by tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "tracesel/tracesel.hpp"
#include "util/obs.hpp"

namespace tracesel {
namespace {

using selection::DistConfig;
using selection::DistFaultProfile;
using selection::SelectionResult;

void expect_identical(const SelectionResult& a, const SelectionResult& b) {
  EXPECT_EQ(a.combination.messages, b.combination.messages);
  EXPECT_EQ(a.combination.width, b.combination.width);
  EXPECT_EQ(a.packed, b.packed);
  // EXPECT_EQ on doubles is exact: the contract is bit-identity.
  EXPECT_EQ(a.gain, b.gain);
  EXPECT_EQ(a.gain_unpacked, b.gain_unpacked);
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.coverage_unpacked, b.coverage_unpacked);
  EXPECT_EQ(a.used_width, b.used_width);
  EXPECT_EQ(a.buffer_width, b.buffer_width);
  EXPECT_FALSE(b.partial);
}

DistConfig dist_config(std::size_t workers, const DistFaultProfile& faults) {
  DistConfig dist;
  dist.workers = workers;
  dist.worker_argv = {TRACESEL_WORKER_BIN, "--worker"};
  dist.faults = faults;
  // Fast straggler detection so the hang schedule resolves well inside the
  // ctest timeout; healthy workers heartbeat every 50 ms.
  dist.unit_deadline_ms = 500;
  dist.heartbeat_ms = 50;
  // Keep retry spacing tight for tests.
  dist.backoff.initial_ms = 5;
  dist.backoff.cap_ms = 50;
  return dist;
}

/// Runs the full {fault kind} x {1,2,4 workers} matrix for one session
/// factory against its serial reference.
void run_property_matrix(const std::function<Session()>& make,
                         const char* label) {
  Session reference = make();
  const SelectionResult serial = reference.select();

  const struct {
    const char* name;
    DistFaultProfile faults;
  } kSchedules[] = {
      {"none", {}},
      {"kill", {/*kill_rate=*/0.35, 0.0, 0.0, /*seed=*/7}},
      {"hang", {0.0, /*hang_rate=*/0.35, 0.0, /*seed=*/11}},
      {"corrupt", {0.0, 0.0, /*corrupt_rate=*/0.35, /*seed=*/13}},
  };
  for (const auto& schedule : kSchedules) {
    for (const std::size_t workers : {1u, 2u, 4u}) {
      SCOPED_TRACE(std::string(label) + " faults=" + schedule.name +
                   " workers=" + std::to_string(workers));
      Session session = make();
      const auto r =
          session.run_distributed(dist_config(workers, schedule.faults));
      expect_identical(serial, r);
      const auto& stats = session.last_dist_stats();
      EXPECT_EQ(stats.units_completed + stats.units_salvaged,
                stats.units_total);
      EXPECT_GE(stats.workers_spawned, 1u);
      if (schedule.faults.enabled() && stats.faults_injected > 0) {
        // Every injected fault must have left a visible recovery trace.
        EXPECT_GT(stats.units_retried + stats.units_reassigned +
                      stats.units_salvaged,
                  0u);
      }
    }
  }
}

TEST(DistPropertyTest, Fig2BitIdenticalUnderFaultMatrix) {
  run_property_matrix(
      [] { return Session::from_spec_file(TRACESEL_DATA_DIR "/fig2.flow"); },
      "fig2");
}

TEST(DistPropertyTest, UsbBitIdenticalUnderFaultMatrix) {
  run_property_matrix([] { return Session::usb(); }, "usb");
}

TEST(DistPropertyTest, T2BitIdenticalUnderFaultMatrix) {
  run_property_matrix(
      [] {
        Session s = Session::t2();
        s.scenario(1);
        return s;
      },
      "t2");
}

TEST(DistTest, RetriesObservableInMetricsRegistry) {
  obs::set_enabled(true);
  obs::reset();
  Session session = Session::from_spec_file(TRACESEL_DATA_DIR "/fig2.flow");
  DistFaultProfile faults;
  faults.kill_rate = 0.6;  // high enough that some dispatch draws a kill
  faults.seed = 7;
  const auto r = session.run_distributed(dist_config(2, faults));
  obs::set_enabled(false);
  EXPECT_FALSE(r.combination.messages.empty());
  const auto& stats = session.last_dist_stats();
  ASSERT_GT(stats.faults_injected, 0u) << "seed 7 must draw at least one kill";
  EXPECT_GT(obs::registry().counter_value("dist.units.dispatched"), 0u);
  EXPECT_EQ(obs::registry().counter_value("dist.units.retried"),
            stats.units_retried);
  EXPECT_EQ(obs::registry().counter_value("dist.units.total"),
            stats.units_total);
  EXPECT_GT(stats.units_retried + stats.units_salvaged, 0u);
}

TEST(DistTest, MergedTraceHasOneLanePerProcessParentedUnderCoordinator) {
  obs::set_enabled(true);
  obs::reset();
  Session session = Session::from_spec_file(TRACESEL_DATA_DIR "/fig2.flow");
  const auto r = session.run_distributed(dist_config(2, {}));
  EXPECT_FALSE(r.combination.messages.empty());

  // The coordinator's root span and trace context exist.
  const auto ctx = obs::trace_context();
  EXPECT_NE(ctx.trace_id, 0u);
  std::uint64_t coord_root = 0;
  for (const auto& e : obs::trace_events())
    if (std::string(e.name) == "selection.dist.run") coord_root = e.span_id;
  ASSERT_NE(coord_root, 0u);

  // Worker telemetry was adopted: at least one remote lane labeled
  // tracesel-worker, whose dist.unit root spans parent under the
  // coordinator's run span.
  const auto lanes = obs::adopted_telemetry();
  ASSERT_GE(lanes.size(), 1u);
  std::uint64_t adopted_units = 0;
  for (const auto& lane : lanes) {
    EXPECT_EQ(lane.label, "tracesel-worker");
    EXPECT_EQ(lane.epoch_ns, obs::trace_epoch_ns());  // rebased
    for (const auto& e : lane.events)
      if (e.name == "dist.unit") {
        ++adopted_units;
        EXPECT_EQ(e.parent_id, coord_root);
      }
  }
  EXPECT_GT(adopted_units, 0u);

  // Aggregated metrics = local + sum of every adopted lane: the workers'
  // dist.worker.units counter only exists remotely, so the aggregate must
  // equal the lane sum exactly — and equal the telemetry frame count.
  std::uint64_t lane_units = 0;
  for (const auto& lane : lanes)
    for (const auto& [name, value] : lane.metrics.counters)
      if (name == "dist.worker.units") lane_units += value;
  EXPECT_GT(lane_units, 0u);
  const std::string metrics = obs::metrics_json().dump(2);
  EXPECT_NE(
      metrics.find("\"dist.worker.units\": " + std::to_string(lane_units)),
      std::string::npos)
      << metrics;
  EXPECT_EQ(obs::registry().counter_value("dist.telemetry.frames"),
            adopted_units);

  // One Chrome lane per process: the local process plus each worker.
  const std::string trace = obs::chrome_trace_json().dump(2);
  EXPECT_NE(trace.find("\"tracesel-worker #"), std::string::npos);
  std::size_t lane_metas = 0;
  for (std::size_t pos = trace.find("\"process_name\"");
       pos != std::string::npos;
       pos = trace.find("\"process_name\"", pos + 1))
    ++lane_metas;
  EXPECT_EQ(lane_metas, 1u + lanes.size());

  obs::set_enabled(false);
  obs::reset();
  obs::set_trace_context({});
}

TEST(DistTest, KilledWorkersStillYieldWellFormedMergedTrace) {
  // A kill schedule terminates workers mid-unit: their telemetry frames
  // for completed units still merge, frames lost with the process are
  // simply absent, and the run's trace/metrics stay well-formed.
  obs::set_enabled(true);
  obs::reset();
  Session reference = Session::from_spec_file(TRACESEL_DATA_DIR "/fig2.flow");
  const auto serial = reference.select();
  obs::reset();

  Session session = Session::from_spec_file(TRACESEL_DATA_DIR "/fig2.flow");
  DistFaultProfile faults;
  faults.kill_rate = 0.6;
  faults.seed = 7;
  const auto r = session.run_distributed(dist_config(2, faults));
  expect_identical(serial, r);
  ASSERT_GT(session.last_dist_stats().faults_injected, 0u);

  // No rejected frames (kills drop whole connections, not partial bytes
  // through the frame reader), and whatever telemetry arrived merged.
  EXPECT_EQ(obs::registry().counter_value("dist.telemetry.rejected"), 0u);
  for (const auto& lane : obs::adopted_telemetry())
    EXPECT_EQ(lane.label, "tracesel-worker");

  // The merged trace must still be coherent: every adopted dist.unit span
  // parents under the coordinator root.
  std::uint64_t coord_root = 0;
  for (const auto& e : obs::trace_events())
    if (std::string(e.name) == "selection.dist.run") coord_root = e.span_id;
  ASSERT_NE(coord_root, 0u);
  for (const auto& lane : obs::adopted_telemetry())
    for (const auto& e : lane.events)
      if (e.name == "dist.unit") EXPECT_EQ(e.parent_id, coord_root);

  obs::set_enabled(false);
  obs::reset();
  obs::set_trace_context({});
}

TEST(DistTest, BrokenWorkerBinaryDegradesToSalvageIdentically) {
  // Workers that can never speak the protocol (exec fails, immediate
  // death): every unit exhausts its retries and is salvaged in-process.
  // The result must still be bit-identical — graceful degradation, not an
  // abort.
  Session reference =
      Session::from_spec_file(TRACESEL_DATA_DIR "/fig2.flow");
  const auto serial = reference.select();

  Session session = Session::from_spec_file(TRACESEL_DATA_DIR "/fig2.flow");
  DistConfig dist = dist_config(2, {});
  dist.worker_argv = {"/nonexistent/tracesel-worker-xyz", "--worker"};
  dist.max_retries = 1;
  const auto r = session.run_distributed(dist);
  expect_identical(serial, r);
  EXPECT_EQ(session.last_dist_stats().units_salvaged,
            session.last_dist_stats().units_total);
}

TEST(DistTest, ZeroWorkersFallsBackInProcessWithNote) {
  Session session = Session::from_spec_file(TRACESEL_DATA_DIR "/fig2.flow");
  DistConfig dist;  // workers == 0, no argv
  const auto r = session.run_distributed(dist);
  EXPECT_FALSE(r.combination.messages.empty());
  EXPECT_TRUE(r.degraded());
  EXPECT_NE(r.degradation.find("fell back in-process"), std::string::npos);
}

TEST(DistTest, SequentialModesFallBackInProcess) {
  Session session = Session::from_spec_file(TRACESEL_DATA_DIR "/fig2.flow");
  session.config().mode = selection::SearchMode::kGreedy;
  const auto r = session.run_distributed(dist_config(2, {}));
  EXPECT_TRUE(r.degraded());
  EXPECT_EQ(session.last_dist_stats().workers_spawned, 0u);
}

TEST(DistTest, FaultInjectorIsPureAndSeeded) {
  DistFaultProfile profile;
  profile.kill_rate = 0.3;
  profile.hang_rate = 0.2;
  profile.corrupt_rate = 0.1;
  profile.seed = 42;
  const selection::DistFaultInjector a(profile);
  const selection::DistFaultInjector b(profile);
  bool any_fault = false;
  for (std::uint64_t unit = 0; unit < 64; ++unit) {
    for (std::uint32_t attempt = 0; attempt < 4; ++attempt) {
      EXPECT_EQ(a.action(unit, attempt), b.action(unit, attempt));
      if (a.action(unit, attempt) != selection::DistFaultAction::kNone)
        any_fault = true;
    }
  }
  EXPECT_TRUE(any_fault);
  profile.seed = 43;
  const selection::DistFaultInjector c(profile);
  bool differs = false;
  for (std::uint64_t unit = 0; unit < 64 && !differs; ++unit)
    differs = a.action(unit, 0) != c.action(unit, 0);
  EXPECT_TRUE(differs) << "different seeds must give different schedules";
}

TEST(DistTest, UnitSizeOneStillMerges) {
  // Maximum fragmentation: every unit is a single seed.
  Session reference =
      Session::from_spec_file(TRACESEL_DATA_DIR "/fig2.flow");
  const auto serial = reference.select();
  Session session = Session::from_spec_file(TRACESEL_DATA_DIR "/fig2.flow");
  DistConfig dist = dist_config(2, {});
  dist.unit_size = 1;
  expect_identical(serial, session.run_distributed(dist));
}

}  // namespace
}  // namespace tracesel
