#include "selection/selector.hpp"

#include <gtest/gtest.h>

#include "flow/flow_builder.hpp"
#include "testutil.hpp"
#include "util/rng.hpp"

namespace tracesel::selection {
namespace {

using flow::FlowBuilder;
using flow::MessageCatalog;
using flow::MessageId;
using test::CoherenceFixture;

class SelectorTest : public ::testing::Test {
 protected:
  CoherenceFixture fx_;
  flow::InterleavedFlow u_ = fx_.two_instance_interleaving();
  MessageSelector selector_{fx_.catalog, u_};
};

TEST_F(SelectorTest, PaperExampleSelectsReqEGntE) {
  SelectorConfig cfg;
  cfg.buffer_width = 2;
  cfg.packing = false;
  const auto r = selector_.select(cfg);
  EXPECT_EQ(r.combination.messages,
            (std::vector<MessageId>{fx_.reqE, fx_.gntE}));
  EXPECT_NEAR(r.gain, 1.073, 5e-4);
  EXPECT_NEAR(r.coverage, 0.7333, 5e-5);
  EXPECT_EQ(r.used_width, 2u);
  EXPECT_DOUBLE_EQ(r.utilization(), 1.0);
}

TEST_F(SelectorTest, CandidatesAreTheFlowAlphabet) {
  EXPECT_EQ(selector_.candidates(),
            (std::vector<MessageId>{fx_.reqE, fx_.gntE, fx_.ack}));
}

TEST_F(SelectorTest, AllSearchModesAgreeOnSmallExample) {
  for (SearchMode mode :
       {SearchMode::kExhaustive, SearchMode::kMaximal, SearchMode::kGreedy,
        SearchMode::kKnapsack}) {
    SelectorConfig cfg;
    cfg.buffer_width = 2;
    cfg.packing = false;
    cfg.mode = mode;
    const auto r = selector_.select(cfg);
    EXPECT_EQ(r.combination.messages,
              (std::vector<MessageId>{fx_.reqE, fx_.gntE}))
        << static_cast<int>(mode);
  }
}

TEST_F(SelectorTest, WideBufferTakesWholeAlphabet) {
  SelectorConfig cfg;
  cfg.buffer_width = 32;
  const auto r = selector_.select(cfg);
  EXPECT_EQ(r.combination.messages.size(), 3u);
  EXPECT_DOUBLE_EQ(r.gain, selector_.engine().max_gain());
}

TEST_F(SelectorTest, ThrowsWhenNothingFits) {
  SelectorConfig cfg;
  cfg.buffer_width = 0;
  EXPECT_THROW(selector_.select(cfg), std::runtime_error);
}

TEST_F(SelectorTest, UnpackedFieldsMatchPackingDisabled) {
  SelectorConfig with, without;
  with.buffer_width = without.buffer_width = 2;
  with.packing = true;
  without.packing = false;
  const auto a = selector_.select(with);
  const auto b = selector_.select(without);
  EXPECT_EQ(a.combination.messages, b.combination.messages);
  EXPECT_DOUBLE_EQ(a.gain_unpacked, b.gain);
  EXPECT_DOUBLE_EQ(a.coverage_unpacked, b.coverage);
  EXPECT_DOUBLE_EQ(a.utilization_unpacked(), b.utilization());
}

TEST(SelectorPacking, PackingImprovesUtilizationWhenSubgroupFits) {
  // Flow alphabet: two 2-bit messages plus a 20-bit message with a 6-bit
  // subgroup; buffer 12 -> Step 2 takes the narrow pair (width 4),
  // Step 3 packs the subgroup (width 6) -> utilization 10/12.
  MessageCatalog cat;
  const MessageId a = cat.add("a", 2, "X", "Y");
  const MessageId b = cat.add("b", 2, "Y", "X");
  const MessageId wide = cat.add(flow::Message{
      "dmusiidata", 20, "DMU", "SIU", {flow::Subgroup{"cputhreadid", 6}}});
  FlowBuilder fb("lin");
  fb.state("s0", FlowBuilder::kInitial)
      .state("s1")
      .state("s2")
      .state("s3", FlowBuilder::kStop)
      .transition("s0", a, "s1")
      .transition("s1", wide, "s2")
      .transition("s2", b, "s3");
  const flow::Flow f = fb.build(cat);
  const auto u = flow::InterleavedFlow::build(flow::make_instances({&f}, 2));
  const MessageSelector sel(cat, u);

  SelectorConfig cfg;
  cfg.buffer_width = 12;
  cfg.packing = false;
  const auto wop = sel.select(cfg);
  cfg.packing = true;
  const auto wp = sel.select(cfg);

  EXPECT_GT(wp.utilization(), wop.utilization());
  EXPECT_GE(wp.coverage, wop.coverage);
  EXPECT_GE(wp.gain, wop.gain);
  ASSERT_EQ(wp.packed.size(), 1u);
  EXPECT_EQ(wp.packed[0].subgroup_name, "cputhreadid");
  EXPECT_EQ(wp.used_width, 10u);
}

TEST(SelectorGreedy, GreedyMatchesExhaustiveOnModularFlow) {
  // Independent parallel flows make the gain function modular, where greedy
  // is provably optimal; check agreement.
  MessageCatalog cat;
  std::vector<MessageId> ms;
  std::vector<flow::Flow> flows;
  for (int i = 0; i < 3; ++i) {
    const MessageId m =
        cat.add("m" + std::to_string(i), static_cast<std::uint32_t>(i + 1),
                "X", "Y");
    ms.push_back(m);
    FlowBuilder fb("f" + std::to_string(i));
    fb.state("s", FlowBuilder::kInitial)
        .state("t", FlowBuilder::kStop)
        .transition("s", m, "t");
    flows.push_back(fb.build(cat));
  }
  std::vector<const flow::Flow*> ptrs{&flows[0], &flows[1], &flows[2]};
  const auto u = flow::InterleavedFlow::build(flow::make_instances(ptrs, 1));
  const MessageSelector sel(cat, u);
  for (std::uint32_t width : {1u, 2u, 3u, 4u, 6u}) {
    SelectorConfig ex, gr;
    ex.buffer_width = gr.buffer_width = width;
    ex.mode = SearchMode::kExhaustive;
    gr.mode = SearchMode::kGreedy;
    ex.packing = gr.packing = false;
    EXPECT_DOUBLE_EQ(sel.select(ex).gain, sel.select(gr).gain) << width;
  }
}

TEST(SelectorKnapsack, MatchesExhaustiveGainOnRandomWidths) {
  // The knapsack DP must find the same optimal gain as exhaustive search
  // for arbitrary width assignments (gains are additive per message).
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Rng rng{seed};
    MessageCatalog cat;
    std::vector<MessageId> ms;
    std::vector<flow::Flow> flows;
    for (int i = 0; i < 6; ++i) {
      const auto m = cat.add("m" + std::to_string(i),
                             static_cast<std::uint32_t>(rng.between(1, 9)),
                             "X", "Y");
      ms.push_back(m);
    }
    // Two 3-message chain flows over the six messages.
    for (int f = 0; f < 2; ++f) {
      FlowBuilder fb("f" + std::to_string(f));
      fb.state("s0", FlowBuilder::kInitial)
          .state("s1")
          .state("s2")
          .state("s3", FlowBuilder::kStop)
          .transition("s0", ms[3 * f], "s1")
          .transition("s1", ms[3 * f + 1], "s2")
          .transition("s2", ms[3 * f + 2], "s3");
      flows.push_back(fb.build(cat));
    }
    const auto u = flow::InterleavedFlow::build(
        flow::make_instances({&flows[0], &flows[1]}, 2));
    const MessageSelector sel(cat, u);
    for (std::uint32_t width : {4u, 8u, 12u, 20u}) {
      SelectorConfig ex, kn;
      ex.buffer_width = kn.buffer_width = width;
      ex.mode = SearchMode::kExhaustive;
      kn.mode = SearchMode::kKnapsack;
      ex.packing = kn.packing = false;
      double g_ex = 0.0, g_kn = 0.0;
      try {
        g_ex = sel.select(ex).gain;
      } catch (const std::runtime_error&) {
        EXPECT_THROW(sel.select(kn), std::runtime_error);
        continue;
      }
      g_kn = sel.select(kn).gain;
      EXPECT_DOUBLE_EQ(g_ex, g_kn) << "seed " << seed << " width " << width;
    }
  }
}

TEST(SelectorMultiCycle, BeatsReduceEffectiveWidth) {
  // Footnote 2: a multi-cycle message only consumes ceil(width/beats)
  // buffer bits per cycle. A 20-bit 4-beat message fits a 5-bit budget.
  MessageCatalog cat;
  flow::Message wide{"wide", 20, "A", "B", {}, /*beats=*/4};
  const MessageId w = cat.add(wide);
  const MessageId narrow = cat.add("narrow", 3, "B", "A");
  EXPECT_EQ(cat.get(w).trace_width(), 5u);

  FlowBuilder fb("f");
  fb.state("s0", FlowBuilder::kInitial)
      .state("s1")
      .state("s2", FlowBuilder::kStop)
      .transition("s0", w, "s1")
      .transition("s1", narrow, "s2");
  const flow::Flow f = fb.build(cat);
  const auto u = flow::InterleavedFlow::build(flow::make_instances({&f}, 2));
  const MessageSelector sel(cat, u);
  SelectorConfig cfg;
  cfg.buffer_width = 8;
  cfg.packing = false;
  const auto r = sel.select(cfg);
  EXPECT_EQ(r.combination.messages, (std::vector<MessageId>{w, narrow}));
  EXPECT_EQ(r.combination.width, 8u);  // 5 + 3
}

TEST(SelectorMultiCycle, SingleBeatKeepsFullWidth) {
  MessageCatalog cat;
  const MessageId m = cat.add("m", 20, "A", "B");
  EXPECT_EQ(cat.get(m).trace_width(), 20u);
}

TEST(SelectorMultiCycle, ZeroBeatsRejected) {
  MessageCatalog cat;
  flow::Message bad{"bad", 8, "A", "B", {}, /*beats=*/0};
  EXPECT_THROW(cat.add(bad), std::invalid_argument);
}

}  // namespace
}  // namespace tracesel::selection
