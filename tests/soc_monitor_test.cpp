#include "soc/monitor.hpp"

#include <gtest/gtest.h>

#include "soc/t2_design.hpp"

namespace tracesel::soc {
namespace {

class MonitorTest : public ::testing::Test {
 protected:
  T2Design design_;
  Monitor monitor_{design_.catalog()};
};

TEST_F(MonitorTest, ReassemblesOneBeat) {
  TimedMessage tm;
  tm.msg = {design_.siincu, 2};
  tm.cycle = 100;
  tm.value = 0xA;
  tm.src = "SIU";
  tm.dst = "NCU";
  tm.session = 3;
  const auto burst =
      signal_burst(design_.catalog().get(design_.siincu), tm);
  ASSERT_EQ(burst.size(), 5u);

  std::optional<TimedMessage> out;
  for (const auto& ev : burst) out = monitor_.on_event(ev);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, tm);
  EXPECT_EQ(monitor_.messages().size(), 1u);
}

TEST_F(MonitorTest, ValidStrobeCompletesBeat) {
  // Only the valid strobe publishes; partial beats stay pending.
  EXPECT_FALSE(
      monitor_.on_event(SignalEvent{"siincu_data", 5, 10}).has_value());
  EXPECT_FALSE(
      monitor_.on_event(SignalEvent{"siincu_tag", 1, 10}).has_value());
  EXPECT_TRUE(monitor_.messages().empty());
  EXPECT_TRUE(
      monitor_.on_event(SignalEvent{"siincu_valid", 1, 10}).has_value());
}

TEST_F(MonitorTest, InterleavedBeatsOfDifferentMessagesDoNotMix) {
  monitor_.on_event(SignalEvent{"siincu_data", 1, 10});
  monitor_.on_event(SignalEvent{"grant_data", 2, 10});
  monitor_.on_event(SignalEvent{"siincu_tag", 1, 10});
  monitor_.on_event(SignalEvent{"grant_tag", 2, 10});
  const auto g = monitor_.on_event(SignalEvent{"grant_valid", 1, 11});
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->value, 2u);
  EXPECT_EQ(g->msg.index, 2u);
  const auto s = monitor_.on_event(SignalEvent{"siincu_valid", 1, 12});
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->value, 1u);
  EXPECT_EQ(s->msg.index, 1u);
}

TEST_F(MonitorTest, UnknownSignalsAreIgnored) {
  EXPECT_FALSE(monitor_.on_event(SignalEvent{"mystery_valid", 1, 1}));
  EXPECT_FALSE(monitor_.on_event(SignalEvent{"nounderscore", 1, 1}));
  EXPECT_EQ(monitor_.ignored_events(), 2u);
  EXPECT_TRUE(monitor_.messages().empty());
}

TEST_F(MonitorTest, UnknownSuffixCountsIgnored) {
  EXPECT_FALSE(monitor_.on_event(SignalEvent{"siincu_bogus", 1, 1}));
  EXPECT_EQ(monitor_.ignored_events(), 1u);
}

TEST_F(MonitorTest, DefaultDstIsCatalogDestination) {
  // Without a dst beat the monitor assumes nominal routing.
  monitor_.on_event(SignalEvent{"grant_data", 7, 5});
  const auto out = monitor_.on_event(SignalEvent{"grant_valid", 1, 5});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->dst, "DMU");
}

TEST_F(MonitorTest, MisroutedDstSurvivesRoundTrip) {
  TimedMessage tm;
  tm.msg = {design_.piowcrd, 1};
  tm.dst = "SIU";  // misrouted: nominal destination is NCU
  tm.src = "DMU";
  for (const auto& ev :
       signal_burst(design_.catalog().get(design_.piowcrd), tm))
    monitor_.on_event(ev);
  ASSERT_EQ(monitor_.messages().size(), 1u);
  EXPECT_EQ(monitor_.messages()[0].dst, "SIU");
}

TEST_F(MonitorTest, ClearResetsState) {
  monitor_.on_event(SignalEvent{"grant_data", 7, 5});
  monitor_.on_event(SignalEvent{"grant_valid", 1, 5});
  monitor_.on_event(SignalEvent{"bogus", 1, 5});
  monitor_.clear();
  EXPECT_TRUE(monitor_.messages().empty());
  EXPECT_EQ(monitor_.ignored_events(), 0u);
}

TEST_F(MonitorTest, CycleTakenFromValidStrobe) {
  monitor_.on_event(SignalEvent{"grant_data", 7, 5});
  const auto out = monitor_.on_event(SignalEvent{"grant_valid", 1, 9});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->cycle, 9u);
}

}  // namespace
}  // namespace tracesel::soc
