// util::Backoff: deterministic exponential growth, jitter bounds, cap
// saturation, stream decorrelation, reset semantics.

#include "util/backoff.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tracesel::util {
namespace {

std::vector<std::int64_t> schedule(Backoff& b, int n) {
  std::vector<std::int64_t> out;
  for (int i = 0; i < n; ++i) out.push_back(b.next().count());
  return out;
}

TEST(BackoffTest, DeterministicForSameSeedAndStream) {
  BackoffPolicy policy;
  policy.seed = 42;
  Backoff a(policy, 7);
  Backoff b(policy, 7);
  EXPECT_EQ(schedule(a, 8), schedule(b, 8));
}

TEST(BackoffTest, StreamsDecorrelate) {
  BackoffPolicy policy;
  policy.seed = 42;
  Backoff a(policy, 1);
  Backoff b(policy, 2);
  EXPECT_NE(schedule(a, 8), schedule(b, 8));
}

TEST(BackoffTest, JitterFreeScheduleIsExactExponential) {
  BackoffPolicy policy;
  policy.initial_ms = 10;
  policy.multiplier = 2.0;
  policy.cap_ms = 100;
  policy.jitter = 0.0;
  Backoff b(policy);
  EXPECT_EQ(schedule(b, 6),
            (std::vector<std::int64_t>{10, 20, 40, 80, 100, 100}));
}

TEST(BackoffTest, JitterStaysWithinBoundsAndCap) {
  BackoffPolicy policy;
  policy.initial_ms = 100;
  policy.multiplier = 2.0;
  policy.cap_ms = 1000;
  policy.jitter = 0.25;
  policy.seed = 3;
  for (std::uint64_t stream = 0; stream < 16; ++stream) {
    Backoff b(policy, stream);
    double base = 100.0;
    for (int i = 0; i < 10; ++i) {
      const auto d = static_cast<double>(b.next().count());
      const double expect = std::min(base, 1000.0);
      EXPECT_GE(d, expect * 0.75 - 1.0);
      EXPECT_LE(d, 1000.0);  // jitter never pushes past the cap
      base *= 2.0;
    }
  }
}

TEST(BackoffTest, ResetReplaysTheSchedule) {
  BackoffPolicy policy;
  policy.seed = 9;
  Backoff b(policy, 4);
  const auto first = schedule(b, 5);
  EXPECT_EQ(b.attempts(), 5u);
  b.reset();
  EXPECT_EQ(b.attempts(), 0u);
  EXPECT_EQ(schedule(b, 5), first);
}

TEST(BackoffTest, SubUnityMultiplierIsClampedToFlat) {
  BackoffPolicy policy;
  policy.initial_ms = 10;
  policy.multiplier = 0.5;  // nonsense input: must not decay toward zero
  policy.jitter = 0.0;
  Backoff b(policy);
  EXPECT_EQ(schedule(b, 3), (std::vector<std::int64_t>{10, 10, 10}));
}

}  // namespace
}  // namespace tracesel::util
