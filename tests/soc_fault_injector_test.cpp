#include "soc/fault_injector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "soc/t2_design.hpp"

namespace tracesel::soc {
namespace {

class FaultInjectorTest : public ::testing::Test {
 protected:
  /// A synthetic stream: `n` beats of mondoacknack split over 2 sessions.
  std::vector<TimedMessage> stream(std::size_t n) {
    std::vector<TimedMessage> out;
    for (std::size_t i = 0; i < n; ++i) {
      TimedMessage tm;
      tm.msg = {design_.mondoacknack, static_cast<std::uint32_t>(i % 2)};
      tm.cycle = i;
      tm.value = i & 0x3;
      tm.session = static_cast<std::uint32_t>(i < n / 2 ? 0 : 1);
      tm.src = design_.catalog().get(design_.mondoacknack).source_ip;
      tm.dst = design_.catalog().get(design_.mondoacknack).dest_ip;
      out.push_back(tm);
    }
    return out;
  }

  T2Design design_;
};

TEST_F(FaultInjectorTest, ZeroRateIsIdentity) {
  FaultProfile profile;  // rate == 0
  const FaultInjector inj(design_.catalog(), profile);
  const auto in = stream(64);
  FaultStats stats;
  const auto out = inj.apply(in, 0, &stats);
  EXPECT_EQ(out, in);
  EXPECT_EQ(stats.total_injected(), 0u);
  EXPECT_EQ(stats.delivered_messages, 64u);
}

TEST_F(FaultInjectorTest, DeterministicForFixedSeedAndSalt) {
  FaultProfile profile;
  profile.rate = 0.2;
  profile.seed = 7;
  const FaultInjector inj(design_.catalog(), profile);
  const auto in = stream(200);
  const auto a = inj.apply(in, 3);
  const auto b = inj.apply(in, 3);
  EXPECT_EQ(a, b);
  // A different salt decorrelates the capture (overwhelmingly likely to
  // differ at 200 beats and 20% rate).
  const auto c = inj.apply(in, 4);
  EXPECT_NE(a, c);
}

TEST_F(FaultInjectorTest, DropReducesDeliveredCount) {
  FaultProfile profile;
  profile.rate = 0.5;
  profile.kinds = {FaultKind::kDrop};
  const FaultInjector inj(design_.catalog(), profile);
  FaultStats stats;
  const auto out = inj.apply(stream(400), 0, &stats);
  EXPECT_LT(out.size(), 400u);
  EXPECT_EQ(out.size() + stats.injected[static_cast<std::size_t>(
                             FaultKind::kDrop)],
            400u);
}

TEST_F(FaultInjectorTest, CorruptPreservesCountButChangesContent) {
  FaultProfile profile;
  profile.rate = 0.8;
  profile.kinds = {FaultKind::kCorrupt};
  const FaultInjector inj(design_.catalog(), profile);
  const auto in = stream(300);
  FaultStats stats;
  const auto out = inj.apply(in, 0, &stats);
  ASSERT_EQ(out.size(), in.size());
  EXPECT_GT(stats.injected[static_cast<std::size_t>(FaultKind::kCorrupt)],
            0u);
  EXPECT_NE(out, in);
  // Message identity is never corrupted — only payload and sideband.
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i].msg.message, in[i].msg.message);
}

TEST_F(FaultInjectorTest, DuplicateIncreasesDeliveredCount) {
  FaultProfile profile;
  profile.rate = 0.5;
  profile.kinds = {FaultKind::kDuplicate};
  const FaultInjector inj(design_.catalog(), profile);
  FaultStats stats;
  const auto out = inj.apply(stream(200), 0, &stats);
  EXPECT_GT(out.size(), 200u);
  EXPECT_EQ(out.size(), 200u + stats.injected[static_cast<std::size_t>(
                                   FaultKind::kDuplicate)]);
}

TEST_F(FaultInjectorTest, ReorderPreservesMultiset) {
  FaultProfile profile;
  profile.rate = 0.4;
  profile.kinds = {FaultKind::kReorder};
  profile.reorder_window = 3;
  const FaultInjector inj(design_.catalog(), profile);
  const auto in = stream(150);
  FaultStats stats;
  auto out = inj.apply(in, 0, &stats);
  ASSERT_EQ(out.size(), in.size());
  EXPECT_GT(stats.injected[static_cast<std::size_t>(FaultKind::kReorder)],
            0u);
  auto key = [](const TimedMessage& tm) {
    return std::tuple(tm.msg.message, tm.msg.index, tm.cycle, tm.value);
  };
  std::multiset<std::tuple<flow::MessageId, std::uint32_t, std::uint64_t,
                           std::uint64_t>>
      a, b;
  for (const auto& tm : in) a.insert(key(tm));
  for (const auto& tm : out) b.insert(key(tm));
  EXPECT_EQ(a, b);
}

TEST_F(FaultInjectorTest, TruncateCutsASessionTail) {
  FaultProfile profile;
  profile.rate = 1.0;  // with scale 0.05 -> 5% per beat: fires early
  profile.kinds = {FaultKind::kTruncate};
  const FaultInjector inj(design_.catalog(), profile);
  const auto in = stream(400);
  FaultStats stats;
  const auto out = inj.apply(in, 0, &stats);
  EXPECT_LT(out.size(), in.size());
  // Once a session is truncated nothing later from it is delivered: the
  // delivered beats of each session are a prefix of that session's input.
  std::map<std::uint32_t, std::vector<std::uint64_t>> in_cycles, out_cycles;
  for (const auto& tm : in) in_cycles[tm.session].push_back(tm.cycle);
  for (const auto& tm : out) out_cycles[tm.session].push_back(tm.cycle);
  for (const auto& [session, cycles] : out_cycles) {
    ASSERT_LE(cycles.size(), in_cycles[session].size());
    for (std::size_t i = 0; i < cycles.size(); ++i)
      EXPECT_EQ(cycles[i], in_cycles[session][i]);
  }
}

TEST_F(FaultInjectorTest, OverflowBackPressureCapsPerSession) {
  FaultProfile profile;
  profile.rate = 0.3;
  profile.kinds = {FaultKind::kOverflow};
  profile.channel_capacity = 10;
  const FaultInjector inj(design_.catalog(), profile);
  FaultStats stats;
  const auto out = inj.apply(stream(100), 0, &stats);
  std::map<std::uint32_t, std::size_t> per_session;
  for (const auto& tm : out) ++per_session[tm.session];
  for (const auto& [session, n] : per_session) EXPECT_LE(n, 10u);
  EXPECT_GT(stats.injected[static_cast<std::size_t>(FaultKind::kOverflow)],
            0u);
}

TEST(FaultKinds, ParseRoundTrip) {
  const auto kinds = parse_fault_kinds("drop,corrupt,reorder");
  ASSERT_TRUE(kinds.ok());
  EXPECT_EQ(kinds.value(),
            (std::vector<FaultKind>{FaultKind::kDrop, FaultKind::kCorrupt,
                                    FaultKind::kReorder}));
  for (const FaultKind k : all_fault_kinds()) {
    const auto back = fault_kind_from_string(to_string(k));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), k);
  }
}

TEST(FaultKinds, ParseRejectsUnknownAndEmpty) {
  EXPECT_FALSE(parse_fault_kinds("drop,frobnicate").ok());
  EXPECT_FALSE(parse_fault_kinds("").ok());
  EXPECT_EQ(parse_fault_kinds("nope").error().code,
            util::ErrorCode::kParse);
}

TEST(FaultProfile, EffectiveKindsDefaultsToAll) {
  FaultProfile profile;
  EXPECT_EQ(profile.effective_kinds().size(), kNumFaultKinds);
  profile.kinds = {FaultKind::kDrop};
  EXPECT_EQ(profile.effective_kinds().size(), 1u);
}

}  // namespace
}  // namespace tracesel::soc
