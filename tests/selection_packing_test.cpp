#include "selection/packing.hpp"

#include <gtest/gtest.h>

#include "flow/flow_builder.hpp"
#include "selection/coverage.hpp"
#include "selection/selector.hpp"

namespace tracesel::selection {
namespace {

using flow::FlowBuilder;
using flow::MessageCatalog;
using flow::MessageId;

/// A linear flow a -> wide -> b where `wide` is 20 bits with a 3-bit and a
/// 6-bit subgroup (modeled on dmusiidata/cputhreadid of OpenSPARC T2).
struct PackingFixture {
  MessageCatalog catalog;
  MessageId a = catalog.add("a", 2, "X", "Y");
  MessageId b = catalog.add("b", 2, "Y", "X");
  MessageId wide = catalog.add(flow::Message{
      "dmusiidata", 20, "DMU", "SIU",
      {flow::Subgroup{"tag", 3}, flow::Subgroup{"cputhreadid", 6}}});
  flow::Flow flow_ = make_flow(catalog, a, wide, b);
  flow::InterleavedFlow u =
      flow::InterleavedFlow::build(flow::make_instances({&flow_}, 2));

  static flow::Flow make_flow(const MessageCatalog& cat, MessageId a,
                              MessageId wide, MessageId b) {
    FlowBuilder fb("lin");
    fb.state("s0", FlowBuilder::kInitial)
        .state("s1")
        .state("s2")
        .state("s3", FlowBuilder::kStop)
        .transition("s0", a, "s1")
        .transition("s1", wide, "s2")
        .transition("s2", b, "s3");
    return fb.build(cat);
  }
};

TEST(Packing, AddsFittingSubgroupOfUnselectedWideMessage) {
  PackingFixture fx;
  const InfoGainEngine engine(fx.u);
  const Combination base{{fx.a, fx.b}, 4};
  const auto r = pack_leftover(fx.catalog, engine, base, /*buffer=*/7,
                                 {fx.a, fx.b, fx.wide});
  ASSERT_EQ(r.packed.size(), 1u);
  EXPECT_EQ(r.packed[0].parent, fx.wide);
  EXPECT_EQ(r.packed[0].subgroup_name, "tag");  // 3 fits, 6 does not
  EXPECT_EQ(r.width_added, 3u);
}

TEST(Packing, PrefersWiderLeftoverForBiggerSubgroupTieBreak) {
  // With leftover 6, both subgroups fit; equal gain (same parent) so the
  // narrower one is chosen, leaving room for more packing.
  PackingFixture fx;
  const InfoGainEngine engine(fx.u);
  const Combination base{{fx.a, fx.b}, 4};
  const auto r = pack_leftover(fx.catalog, engine, base, /*buffer=*/10,
                                 {fx.a, fx.b, fx.wide});
  ASSERT_EQ(r.packed.size(), 1u);
  EXPECT_EQ(r.packed[0].width, 3u);
}

TEST(Packing, NothingFitsLeavesBaseUntouched) {
  PackingFixture fx;
  const InfoGainEngine engine(fx.u);
  const Combination base{{fx.a, fx.b}, 4};
  const auto r = pack_leftover(fx.catalog, engine, base, /*buffer=*/5,
                                 {fx.a, fx.b, fx.wide});
  EXPECT_TRUE(r.packed.empty());
  EXPECT_EQ(r.width_added, 0u);
  EXPECT_DOUBLE_EQ(r.gain_after, engine.info_gain(base.messages));
}

TEST(Packing, PackingNeverDecreasesGain) {
  PackingFixture fx;
  const InfoGainEngine engine(fx.u);
  const Combination base{{fx.a, fx.b}, 4};
  for (std::uint32_t buffer : {4u, 5u, 7u, 10u, 32u}) {
    const auto r = pack_leftover(fx.catalog, engine, base, buffer,
                                 {fx.a, fx.b, fx.wide});
    EXPECT_GE(r.gain_after, engine.info_gain(base.messages)) << buffer;
  }
}

TEST(Packing, ParentAlreadyObservableIsSkipped) {
  PackingFixture fx;
  const InfoGainEngine engine(fx.u);
  // Base already contains `wide`; its subgroups must not be re-packed.
  const Combination base{{fx.a, fx.b, fx.wide}, 24};
  const auto r = pack_leftover(fx.catalog, engine, base, /*buffer=*/32,
                                 {fx.a, fx.b, fx.wide});
  EXPECT_TRUE(r.packed.empty());
}

TEST(Packing, ThrowsWhenBaseExceedsBuffer) {
  PackingFixture fx;
  const InfoGainEngine engine(fx.u);
  const Combination base{{fx.a, fx.b}, 4};
  EXPECT_THROW(pack_leftover(fx.catalog, engine, base, 3,
                                 {fx.a, fx.b, fx.wide}),
               std::invalid_argument);
}

TEST(Packing, ObservableMessagesUnionsBaseAndParents) {
  PackingFixture fx;
  const Combination base{{fx.a, fx.b}, 4};
  const std::vector<PackedGroup> packed{{fx.wide, "tag", 3}};
  const auto obs = observable_messages(base, packed);
  EXPECT_EQ(obs, (std::vector<MessageId>{fx.a, fx.b, fx.wide}));
}

TEST(Packing, PackedSubgroupRaisesCoverage) {
  PackingFixture fx;
  const InfoGainEngine engine(fx.u);
  const Combination base{{fx.a, fx.b}, 4};
  const auto r = pack_leftover(fx.catalog, engine, base, 7,
                                 {fx.a, fx.b, fx.wide});
  const auto obs = observable_messages(base, r.packed);
  EXPECT_GT(flow_spec_coverage(fx.u, obs),
            flow_spec_coverage(fx.u, base.messages));
}

}  // namespace
}  // namespace tracesel::selection
