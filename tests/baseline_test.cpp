#include <gtest/gtest.h>

#include <numeric>

#include "baseline/flop_graph.hpp"
#include "baseline/prnet.hpp"
#include "baseline/sigset.hpp"
#include "netlist/usb_design.hpp"

namespace tracesel::baseline {
namespace {

TEST(FlopGraph, EdgesFollowCombinationalCones) {
  netlist::Netlist nl;
  const auto in = nl.add_input("in");
  const auto f0 = nl.add_flop("f0");
  const auto f1 = nl.add_flop("f1");
  const auto f2 = nl.add_flop("f2");
  nl.set_flop_input(f0, in);
  nl.set_flop_input(f1, nl.add_not(f0));
  nl.set_flop_input(f2, nl.add_and(f0, f1));
  const auto g = flop_dependency_graph(nl);
  ASSERT_EQ(g.size(), 3u);
  // f0 feeds f1 and f2; f1 feeds f2; f2 feeds nothing.
  EXPECT_EQ(g[0], (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(g[1], (std::vector<std::size_t>{2}));
  EXPECT_TRUE(g[2].empty());
}

TEST(FlopGraph, StopsAtSequentialBoundary) {
  // f2's cone reaches f1 but must not look *through* f1 to f0.
  netlist::Netlist nl;
  const auto in = nl.add_input("in");
  const auto f0 = nl.add_flop("f0");
  const auto f1 = nl.add_flop("f1");
  const auto f2 = nl.add_flop("f2");
  nl.set_flop_input(f0, in);
  nl.set_flop_input(f1, nl.add_not(f0));
  nl.set_flop_input(f2, nl.add_gate(netlist::GateType::kBuf, {f1}));
  const auto g = flop_dependency_graph(nl);
  EXPECT_EQ(g[0], (std::vector<std::size_t>{1}));  // f0 -> f1 only
}

TEST(PageRank, UniformOnSymmetricCycle) {
  // 3-cycle: all ranks equal 1/3.
  const std::vector<std::vector<std::size_t>> g{{1}, {2}, {0}};
  const auto r = pagerank(g, 0.85, 100);
  ASSERT_EQ(r.size(), 3u);
  for (double x : r) EXPECT_NEAR(x, 1.0 / 3.0, 1e-9);
}

TEST(PageRank, SinkReceivesMoreThanSources) {
  // Two sources pointing at one sink.
  const std::vector<std::vector<std::size_t>> g{{2}, {2}, {}};
  const auto r = pagerank(g, 0.85, 100);
  EXPECT_GT(r[2], r[0]);
  EXPECT_NEAR(r[0], r[1], 1e-12);
}

TEST(PageRank, MassIsConserved) {
  const std::vector<std::vector<std::size_t>> g{{1, 2}, {2}, {}, {0}};
  const auto r = pagerank(g, 0.85, 200);
  EXPECT_NEAR(std::accumulate(r.begin(), r.end(), 0.0), 1.0, 1e-9);
}

TEST(PageRank, RejectsBadDamping) {
  EXPECT_THROW(pagerank({{0}}, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(pagerank({{0}}, -0.1, 10), std::invalid_argument);
}

TEST(PageRank, EmptyGraphYieldsEmpty) {
  EXPECT_TRUE(pagerank({}, 0.85, 10).empty());
}

class UsbBaselineTest : public ::testing::Test {
 protected:
  netlist::UsbDesign usb_;
};

TEST_F(UsbBaselineTest, SigsetRespectsBudget) {
  SigSeTOptions opt;
  opt.budget_bits = 16;
  opt.sim_cycles = 12;
  const auto r = select_sigset(usb_.netlist(), opt);
  EXPECT_EQ(r.selected.size(), 16u);
  EXPECT_GT(r.srr, 1.0);
  // Selected nets are flops and unique.
  for (auto f : r.selected)
    EXPECT_EQ(usb_.netlist().gate(f).type, netlist::GateType::kFlop);
  auto sorted = r.selected;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST_F(UsbBaselineTest, SigsetGreedyGainIsMonotone) {
  // Each added flop can only grow the known state; SRR of a longer prefix
  // evaluated on the same trace never loses known bits.
  SigSeTOptions opt;
  opt.budget_bits = 8;
  opt.sim_cycles = 12;
  const auto r = select_sigset(usb_.netlist(), opt);
  const auto trace = golden_flop_trace(usb_.netlist(), 12, opt.seed);
  const netlist::RestorationEngine engine(usb_.netlist());
  std::size_t last_known = 0;
  for (std::size_t k = 1; k <= r.selected.size(); ++k) {
    std::vector<netlist::NetId> prefix(r.selected.begin(),
                                       r.selected.begin() + k);
    const auto res = engine.restore(prefix, trace);
    const std::size_t known =
        res.traced_flop_cycles + res.restored_flop_cycles;
    EXPECT_GE(known, last_known);
    last_known = known;
  }
}

TEST_F(UsbBaselineTest, PrnetRespectsBudgetAndRanksAllFlops) {
  PrNetOptions opt;
  opt.budget_bits = 32;
  const auto r = select_prnet(usb_.netlist(), opt);
  EXPECT_EQ(r.selected.size(), 32u);
  EXPECT_EQ(r.ranks.size(), usb_.netlist().flops().size());
}

TEST_F(UsbBaselineTest, PrnetSelectionIsRankOrdered) {
  const auto r = select_prnet(usb_.netlist());
  // map net -> flop index
  const auto& flops = usb_.netlist().flops();
  auto rank_of = [&](netlist::NetId f) {
    const auto it = std::find(flops.begin(), flops.end(), f);
    return r.ranks[static_cast<std::size_t>(it - flops.begin())];
  };
  for (std::size_t i = 1; i < r.selected.size(); ++i)
    EXPECT_GE(rank_of(r.selected[i - 1]), rank_of(r.selected[i]));
}

TEST_F(UsbBaselineTest, BaselinesMissMostInterfaceSignals) {
  // The Sec. 5.4 claim: gate-level selection overlooks the application
  // interface. Under a 32-bit budget both baselines must fail to fully
  // capture at least half of the ten Table 4 signals.
  const auto ss = select_sigset(usb_.netlist());
  const auto pr = select_prnet(usb_.netlist());
  for (const auto* sel : {&ss.selected, &pr.selected}) {
    std::size_t full = 0;
    for (const auto& sg : usb_.interface_signals()) {
      if (coverage_of(sg, *sel) == netlist::SignalCoverage::kFull) ++full;
    }
    EXPECT_LT(full, 5u);
  }
}

TEST_F(UsbBaselineTest, SigsetDeterministicForSeed) {
  SigSeTOptions opt;
  opt.budget_bits = 8;
  opt.sim_cycles = 12;
  const auto a = select_sigset(usb_.netlist(), opt);
  const auto b = select_sigset(usb_.netlist(), opt);
  EXPECT_EQ(a.selected, b.selected);
}

}  // namespace
}  // namespace tracesel::baseline
