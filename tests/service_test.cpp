// traceseld end to end: the framed Unix-socket protocol, concurrent
// multi-tenant jobs over one shared ArtifactStore, cancellation and
// deadlines, malformed-input rejection, and drain-and-exit.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "debug/serialize.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "tracesel/query_core.hpp"
#include "util/framing.hpp"
#include "util/obs.hpp"

namespace tracesel::service {
namespace {

JobRequest fig2_request(std::uint32_t buffer_width = 2) {
  JobRequest req;
  req.spec = std::string(TRACESEL_DATA_DIR) + "/fig2.flow";
  req.instances = 2;
  req.buffer_width = buffer_width;
  return req;
}

/// A live daemon on a fresh /tmp socket; the destructor drains it and
/// asserts the drain exited cleanly.
struct Daemon {
  explicit Daemon(std::size_t runners = 2, std::size_t max_frame = 16u << 20) {
    static std::atomic<int> counter{0};
    ServerOptions opt;
    opt.socket_path = "/tmp/tsvc_" + std::to_string(::getpid()) + "_" +
                      std::to_string(counter.fetch_add(1)) + ".sock";
    opt.runners = runners;
    opt.max_frame_bytes = max_frame;
    shutdown = opt.shutdown;
    path = opt.socket_path;
    server = std::make_unique<Server>(std::move(opt));
    const auto st = server->start();
    if (!st.ok()) throw std::runtime_error(st.error().to_string());
    thread = std::thread([this] { exit_code = server->serve(); });
  }
  ~Daemon() { stop(); }
  void stop() {
    if (!thread.joinable()) return;
    shutdown.cancel();
    thread.join();
    EXPECT_EQ(exit_code, 0);
  }
  Client connect() {
    auto c = Client::connect(path);
    EXPECT_TRUE(c.ok()) << (c.ok() ? "" : c.error().to_string());
    return std::move(c).value();
  }

  std::string path;
  util::CancelToken shutdown;
  std::unique_ptr<Server> server;
  std::thread thread;
  int exit_code = -1;
};

/// Raw byte-level connection for protocol-abuse tests.
int raw_connect(const std::string& path) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

/// Reads until EOF (the server hangs up after a corrupt frame).
std::string read_until_eof(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

TEST(Service, PingAndStats) {
  Daemon daemon;
  Client client = daemon.connect();
  EXPECT_TRUE(client.ping().ok());
  const auto stats = client.stats();
  ASSERT_TRUE(stats.ok()) << stats.error().to_string();
  EXPECT_NE(stats.value().find("\"jobs.submitted\": 0"), std::string::npos);
  EXPECT_NE(stats.value().find("\"store.result.hits\": 0"),
            std::string::npos);
}

TEST(Service, SubmitMatchesDirectComputeAndSecondIsCacheHit) {
  Daemon daemon;
  Client client = daemon.connect();

  const JobRequest req = fig2_request();
  std::vector<std::string> events;
  const auto first = client.submit(
      req, {}, [&](std::string_view status, std::uint64_t) {
        events.emplace_back(status);
      });
  ASSERT_TRUE(first.ok()) << first.error().to_string();
  EXPECT_EQ(first.value().status, "ok");
  EXPECT_FALSE(first.value().cache_hit);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front(), "queued");

  // The daemon's report bytes are exactly the single-process compute's.
  const auto direct = QueryCore::run(req, nullptr, {});
  ASSERT_TRUE(direct.ok());
  const std::string expected =
      selection::to_json(*direct.value().workload->catalog,
                         *direct.value().result)
          .dump(2);
  EXPECT_EQ(first.value().report_json, expected);

  // An identical job — even from a new connection — is a result cache hit
  // with the same bytes.
  Client other = daemon.connect();
  const auto second = other.submit(req);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().cache_hit);
  EXPECT_EQ(second.value().report_json, expected);

  const auto s = daemon.server->stats();
  EXPECT_EQ(s.submitted, 2u);
  EXPECT_EQ(s.completed, 2u);
}

TEST(Service, ConcurrentClientsMixedDeadlinesAndCancels) {
  Daemon daemon(/*runners=*/4);
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::vector<std::string> status(kClients);
  std::vector<std::string> report(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client client = daemon.connect();
      // Three tenant profiles: plain (shares one cache entry with every
      // other plain client), tight deadline, and client-side cancel.
      JobRequest req = fig2_request(i % 4 == 1 ? 3 : 2);
      util::CancelToken cancel;
      if (i % 4 == 2) req.deadline_ms = 1;
      if (i % 4 == 3)
        cancel = util::CancelToken::after(std::chrono::milliseconds(1));
      const auto out = client.submit(req, cancel);
      ASSERT_TRUE(out.ok()) << out.error().to_string();
      status[i] = out.value().status;
      report[i] = out.value().report_json;
    });
  }
  for (auto& t : threads) t.join();

  std::string ok_report;
  for (int i = 0; i < kClients; ++i) {
    EXPECT_TRUE(status[i] == "ok" || status[i] == "partial" ||
                status[i] == "cancelled")
        << "client " << i << ": " << status[i];
    if (i % 4 == 0 || i % 4 == 1) EXPECT_EQ(status[i], "ok");
    if (status[i] == "ok" && (i % 4) == 0) {
      if (ok_report.empty()) ok_report = report[i];
      // Identical requests agree byte for byte regardless of which runner
      // (or cache entry) served them.
      EXPECT_EQ(report[i], ok_report);
    }
  }
  const auto s = daemon.server->stats();
  // Concurrent identical submissions may attach to an in-flight twin
  // instead of queueing a duplicate; every client is one or the other.
  EXPECT_EQ(s.submitted + s.attached, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(s.queued, 0u);
  EXPECT_EQ(s.running, 0u);
}

TEST(Service, MalformedFrameIsRejectedAndConnectionDropped) {
  Daemon daemon;
  const int fd = raw_connect(daemon.path);
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_EQ(::write(fd, garbage, sizeof(garbage) - 1),
            static_cast<ssize_t>(sizeof(garbage) - 1));
  // The server answers with one well-formed error frame, then hangs up.
  const std::string bytes = read_until_eof(fd);
  ::close(fd);
  util::FrameReader reader;
  reader.feed(bytes);
  std::string payload;
  ASSERT_EQ(reader.next(payload), util::FrameReader::State::kFrame);
  const auto msg = parse_message(payload);
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg.value().type, MessageType::kError);
  EXPECT_NE(msg.value().text.find("protocol error"), std::string::npos);
  EXPECT_EQ(daemon.server->stats().protocol_errors, 1u);
}

TEST(Service, OversizedFrameIsRejected) {
  Daemon daemon(/*runners=*/1, /*max_frame=*/1024);
  const int fd = raw_connect(daemon.path);
  const std::string wire = util::encode_frame(std::string(4096, 'x'));
  ASSERT_EQ(::write(fd, wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));
  const std::string bytes = read_until_eof(fd);
  ::close(fd);
  util::FrameReader reader;
  reader.feed(bytes);
  std::string payload;
  ASSERT_EQ(reader.next(payload), util::FrameReader::State::kFrame);
  const auto msg = parse_message(payload);
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg.value().type, MessageType::kError);
}

TEST(Service, BadJobRequestKeepsTheConnectionUsable) {
  Daemon daemon;
  const int fd = raw_connect(daemon.path);
  // A well-framed submit whose body is not a JobRequest: a typed error
  // frame, but no disconnect (the stream itself is intact).
  const std::string bad =
      util::encode_frame("tracesel-svc submit 1\nnot a job request\n");
  ASSERT_EQ(::write(fd, bad.data(), bad.size()),
            static_cast<ssize_t>(bad.size()));
  const std::string ping = util::encode_frame("tracesel-svc ping 1\n");
  ASSERT_EQ(::write(fd, ping.data(), ping.size()),
            static_cast<ssize_t>(ping.size()));

  util::FrameReader reader;
  char buf[4096];
  std::vector<MessageType> got;
  while (got.size() < 2) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    ASSERT_GT(n, 0);
    reader.feed(buf, static_cast<std::size_t>(n));
    std::string payload;
    while (reader.next(payload) == util::FrameReader::State::kFrame) {
      const auto msg = parse_message(payload);
      ASSERT_TRUE(msg.ok());
      got.push_back(msg.value().type);
    }
  }
  ::close(fd);
  EXPECT_EQ(got[0], MessageType::kError);
  EXPECT_EQ(got[1], MessageType::kPong);
}

TEST(Service, TelemetryVerbReportsJournalTenantsAndGauges) {
  Daemon daemon;
  Client client = daemon.connect();
  JobRequest req = fig2_request();
  req.tenant = "team-a";
  const auto out = client.submit(req);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().status, "ok");

  const auto telemetry = client.telemetry();
  ASSERT_TRUE(telemetry.ok()) << telemetry.error().to_string();
  const std::string& t = telemetry.value();
  // Gauges and accounting the live view is built from.
  for (const char* key :
       {"\"uptime_ms\"", "\"runners\"", "\"utilization\"", "\"queue.depth\"",
        "\"busy_ms\"", "\"slow_job_threshold_ms\"", "\"tenants\"",
        "\"journal\"", "\"slow_jobs\""})
    EXPECT_NE(t.find(key), std::string::npos) << "missing " << key << " in "
                                              << t;
  // The job's full lifecycle is in the journal, attributed to its tenant.
  EXPECT_NE(t.find("\"team-a\""), std::string::npos);
  for (const char* event :
       {"\"event\": \"queued\"", "\"event\": \"started\"",
        "\"event\": \"ok\""})
    EXPECT_NE(t.find(event), std::string::npos) << t;
}

TEST(Service, TracedJobShipsTelemetryParentedUnderClientSpan) {
  Daemon daemon;
  Client client = daemon.connect();
  JobRequest req = fig2_request();
  req.trace_id = 0xFACE;
  req.parent_span_id = 0xB00F;
  const auto out = client.submit(req);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().status, "ok");
  ASSERT_FALSE(out.value().telemetry.empty());

  auto parsed = obs::parse_telemetry(out.value().telemetry);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const obs::ProcessTelemetry& t = parsed.value();
  EXPECT_EQ(t.label, "traceseld");
  EXPECT_EQ(t.pid, static_cast<std::uint64_t>(::getpid()));

  // The job's root span parents under the span id the client stamped into
  // the request, and the per-job counter delta travels alongside.
  const obs::WireTraceEvent* job_span = nullptr;
  for (const auto& e : t.events)
    if (e.name == "svc.job") job_span = &e;
  ASSERT_NE(job_span, nullptr);
  EXPECT_EQ(job_span->parent_id, 0xB00Fu);
  EXPECT_NE(job_span->span_id, 0u);
  bool counted = false;
  for (const auto& [name, value] : t.metrics.counters)
    if (name == "svc.jobs") counted = value >= 1;
  EXPECT_TRUE(counted);

  // An untraced job ships no telemetry block.
  JobRequest plain = fig2_request(3);
  const auto second = client.submit(plain);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().telemetry.empty());

  obs::set_enabled(false);  // run_job enabled the layer one-way
  obs::reset();
}

TEST(Service, MalformedTelemetryFramesRejectedWithoutKillingConnection) {
  Daemon daemon;
  const int fd = raw_connect(daemon.path);
  // Version skew, a truncated verb and a junk body: each gets a typed
  // error frame, and the connection stays usable throughout.
  const std::string skew = util::encode_frame("tracesel-svc telemetry 2\n");
  const std::string truncated = util::encode_frame("tracesel-svc telemetr");
  const std::string junk =
      util::encode_frame("not-tracesel-svc telemetry 1\n");
  for (const std::string* frame : {&skew, &truncated, &junk})
    ASSERT_EQ(::write(fd, frame->data(), frame->size()),
              static_cast<ssize_t>(frame->size()));
  const std::string good = util::encode_frame("tracesel-svc telemetry 1\n");
  ASSERT_EQ(::write(fd, good.data(), good.size()),
            static_cast<ssize_t>(good.size()));

  util::FrameReader reader;
  char buf[65536];
  std::vector<Message> got;
  while (got.size() < 4) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    ASSERT_GT(n, 0);
    reader.feed(buf, static_cast<std::size_t>(n));
    std::string payload;
    while (reader.next(payload) == util::FrameReader::State::kFrame) {
      auto msg = parse_message(payload);
      ASSERT_TRUE(msg.ok());
      got.push_back(std::move(msg).value());
    }
  }
  ::close(fd);
  EXPECT_EQ(got[0].type, MessageType::kError);
  EXPECT_EQ(got[1].type, MessageType::kError);
  EXPECT_EQ(got[2].type, MessageType::kError);
  EXPECT_EQ(got[3].type, MessageType::kTelemetryResult);
  EXPECT_NE(got[3].text.find("\"journal\""), std::string::npos);
  // Protocol errors were counted, and the daemon is still healthy.
  EXPECT_GE(daemon.server->stats().protocol_errors, 3u);
  Client client = daemon.connect();
  EXPECT_TRUE(client.ping().ok());
}

TEST(Service, ResultFrameTelemetryBlockRoundTripsThroughProtocol) {
  // encode_result/parse_message round-trip of the telemetry block, plus
  // version-1 compatibility: a result without the block parses with an
  // empty telemetry string.
  JobOutcome out;
  out.job_id = 9;
  out.status = "ok";
  out.report_json = "{}";
  out.metrics_json = "{}";
  out.telemetry = "tracesel-telemetry 1 0badc0de\nopaque payload\n";
  auto msg = parse_message(encode_result(out));
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg.value().outcome.telemetry, out.telemetry);

  out.telemetry.clear();
  msg = parse_message(encode_result(out));
  ASSERT_TRUE(msg.ok());
  EXPECT_TRUE(msg.value().outcome.telemetry.empty());
}

TEST(Service, StopFrameDrainsTheDaemon) {
  Daemon daemon;
  {
    Client client = daemon.connect();
    EXPECT_TRUE(client.stop().ok());
  }
  daemon.thread.join();
  EXPECT_EQ(daemon.exit_code, 0);
  // A second stop() on the fixture is a no-op (thread already joined).
}

TEST(Service, DisconnectCancelsTheInflightJob) {
  Daemon daemon;
  {
    // Submit a job and vanish without reading the result.
    const int fd = raw_connect(daemon.path);
    JobRequest req = fig2_request();
    const std::string wire = util::encode_frame(encode_submit(req));
    ASSERT_EQ(::write(fd, wire.data(), wire.size()),
              static_cast<ssize_t>(wire.size()));
    ::close(fd);
  }
  // The daemon must stay healthy: the job finishes or is cancelled, and a
  // new client gets served. (Drain on teardown would hang otherwise.)
  for (int i = 0; i < 100; ++i) {
    const auto s = daemon.server->stats();
    if (s.completed + s.cancelled + s.partial + s.errors >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  Client client = daemon.connect();
  EXPECT_TRUE(client.ping().ok());
}

}  // namespace
}  // namespace tracesel::service
