#include "selection/coverage.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace tracesel::selection {
namespace {

using flow::MessageId;
using test::CoherenceFixture;

class CoverageTest : public ::testing::Test {
 protected:
  CoherenceFixture fx_;
  flow::InterleavedFlow u_ = fx_.two_instance_interleaving();
};

TEST_F(CoverageTest, ReproducesPaperRunningExample) {
  // Sec. 3.3: the flow specification coverage achieved with
  // Y'1 = {ReqE, GntE} is 0.7333 (11 of 15 product states visible).
  const std::vector<MessageId> y1{fx_.reqE, fx_.gntE};
  EXPECT_NEAR(flow_spec_coverage(u_, y1), 11.0 / 15.0, 1e-12);
  EXPECT_NEAR(flow_spec_coverage(u_, y1), 0.7333, 5e-5);
}

TEST_F(CoverageTest, EmptySelectionCoversNothing) {
  EXPECT_DOUBLE_EQ(flow_spec_coverage(u_, std::vector<MessageId>{}), 0.0);
}

TEST_F(CoverageTest, FullAlphabetCoversAllButUnenteredStates) {
  // Every non-initial product state is entered by some edge; the initial
  // tuple has no incoming edge, so full coverage is 14/15.
  const std::vector<MessageId> all{fx_.reqE, fx_.gntE, fx_.ack};
  EXPECT_NEAR(flow_spec_coverage(u_, all), 14.0 / 15.0, 1e-12);
}

TEST_F(CoverageTest, CoverageIsMonotoneUnderAddingMessages) {
  const std::vector<MessageId> s1{fx_.reqE};
  const std::vector<MessageId> s2{fx_.reqE, fx_.gntE};
  const std::vector<MessageId> s3{fx_.reqE, fx_.gntE, fx_.ack};
  EXPECT_LE(flow_spec_coverage(u_, s1), flow_spec_coverage(u_, s2));
  EXPECT_LE(flow_spec_coverage(u_, s2), flow_spec_coverage(u_, s3));
}

TEST_F(CoverageTest, VisibleStatesAreTargetsOfSelectedEdges) {
  const std::vector<MessageId> sel{fx_.ack};
  const auto vis = visible_states(u_, sel);
  // Every visible state must be the target of at least one Ack edge.
  for (flow::NodeId n : vis) {
    bool entered_by_ack = false;
    for (const auto& e : u_.edges()) {
      if (e.to == n && e.label.message == fx_.ack) entered_by_ack = true;
    }
    EXPECT_TRUE(entered_by_ack) << u_.node_name(n);
  }
  EXPECT_FALSE(vis.empty());
}

TEST_F(CoverageTest, VisibleStatesSortedUnique) {
  const std::vector<MessageId> sel{fx_.reqE, fx_.gntE};
  const auto vis = visible_states(u_, sel);
  EXPECT_TRUE(std::is_sorted(vis.begin(), vis.end()));
  EXPECT_EQ(std::adjacent_find(vis.begin(), vis.end()), vis.end());
}

}  // namespace
}  // namespace tracesel::selection
