// Determinism contract of the parallel selection engine: for every job
// count the SelectionResult — winner, packing, and every floating-point
// metric — is bit-identical to the serial path, on the paper's Fig. 2
// example, the USB 2.0 controller flows, and the full T2 spec.

#include "selection/parallel_selector.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "debug/monte_carlo.hpp"
#include "flow/parser.hpp"
#include "netlist/usb_design.hpp"
#include "selection/multi_scenario.hpp"
#include "selection/selector.hpp"
#include "soc/scenario.hpp"
#include "testutil.hpp"
#include "tracesel/session.hpp"

namespace tracesel::selection {
namespace {

using flow::MessageId;
using test::CoherenceFixture;

void expect_identical(const SelectionResult& a, const SelectionResult& b) {
  EXPECT_EQ(a.combination.messages, b.combination.messages);
  EXPECT_EQ(a.combination.width, b.combination.width);
  EXPECT_EQ(a.packed, b.packed);
  // EXPECT_EQ on doubles is exact: the contract is bit-identity, not
  // tolerance.
  EXPECT_EQ(a.gain, b.gain);
  EXPECT_EQ(a.gain_unpacked, b.gain_unpacked);
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.coverage_unpacked, b.coverage_unpacked);
  EXPECT_EQ(a.used_width, b.used_width);
  EXPECT_EQ(a.buffer_width, b.buffer_width);
}

/// Serial reference vs ParallelSelector at jobs 1..8, both search modes,
/// packing on and off.
void check_all_job_counts(const flow::MessageCatalog& catalog,
                          const flow::InterleavedFlow& u,
                          std::uint32_t buffer_width) {
  const MessageSelector serial(catalog, u);
  const ParallelSelector parallel(serial);
  for (const SearchMode mode :
       {SearchMode::kMaximal, SearchMode::kExhaustive}) {
    for (const bool packing : {true, false}) {
      SelectorConfig cfg;
      cfg.buffer_width = buffer_width;
      cfg.mode = mode;
      cfg.packing = packing;
      cfg.jobs = 1;
      const auto reference = serial.select(cfg);
      for (std::size_t jobs = 1; jobs <= 8; ++jobs) {
        cfg.jobs = jobs;
        const auto got = parallel.select(cfg);
        SCOPED_TRACE("mode=" + std::to_string(static_cast<int>(mode)) +
                     " packing=" + std::to_string(packing) +
                     " jobs=" + std::to_string(jobs));
        expect_identical(reference, got);
      }
    }
  }
}

TEST(ParallelSelectorTest, Fig2BitIdenticalAcrossJobCounts) {
  CoherenceFixture fx;
  const auto u = fx.two_instance_interleaving();
  check_all_job_counts(fx.catalog, u, 2);
  check_all_job_counts(fx.catalog, u, 3);
}

TEST(ParallelSelectorTest, UsbBitIdenticalAcrossJobCounts) {
  netlist::UsbDesign usb;
  const auto u = usb.interleaving(2);
  check_all_job_counts(usb.catalog(), u, 32);
}

TEST(ParallelSelectorTest, T2SpecBitIdenticalAcrossJobCounts) {
  const auto spec =
      flow::parse_flow_spec_file(TRACESEL_DATA_DIR "/t2.flow");
  std::vector<const flow::Flow*> flows;
  for (const flow::Flow& f : spec.flows) flows.push_back(&f);
  const auto u =
      flow::InterleavedFlow::build(flow::make_instances(flows, 1));
  check_all_job_counts(spec.catalog, u, 32);
}

TEST(ParallelSelectorTest, SelectorDispatchesOnJobs) {
  // MessageSelector::select itself routes jobs != 1 through the parallel
  // engine; the result must match its own serial output.
  CoherenceFixture fx;
  const auto u = fx.two_instance_interleaving();
  const MessageSelector selector(fx.catalog, u);
  SelectorConfig cfg;
  cfg.buffer_width = 2;
  cfg.jobs = 1;
  const auto reference = selector.select(cfg);
  for (const std::size_t jobs : {std::size_t{0}, std::size_t{4}}) {
    cfg.jobs = jobs;
    expect_identical(reference, selector.select(cfg));
  }
}

TEST(ParallelSelectorTest, CombinationCapThrowsInBothPaths) {
  netlist::UsbDesign usb;
  const auto u = usb.interleaving(2);
  const MessageSelector serial(usb.catalog(), u);
  const ParallelSelector parallel(serial);
  SelectorConfig cfg;
  cfg.buffer_width = 32;
  cfg.mode = SearchMode::kExhaustive;
  cfg.max_combinations = 8;  // far below the real count
  cfg.jobs = 1;
  EXPECT_THROW(serial.select(cfg), std::length_error);
  cfg.jobs = 4;
  EXPECT_THROW(parallel.select(cfg), std::length_error);
  EXPECT_THROW(serial.select(cfg), std::length_error);  // dispatch path
}

TEST(ParallelSelectorTest, FlowConstraintHonoursJobs) {
  CoherenceFixture fx;
  const auto u = fx.two_instance_interleaving();
  const MessageSelector selector(fx.catalog, u);
  SelectorConfig cfg;
  cfg.buffer_width = 3;
  cfg.jobs = 1;
  const auto reference = selector.select_with_flow_constraint(cfg);
  cfg.jobs = 4;
  expect_identical(reference, selector.select_with_flow_constraint(cfg));
}

TEST(ParallelSelectorTest, GreedyAndKnapsackDelegateToSerial) {
  CoherenceFixture fx;
  const auto u = fx.two_instance_interleaving();
  const MessageSelector serial(fx.catalog, u);
  const ParallelSelector parallel(serial);
  for (const SearchMode mode : {SearchMode::kGreedy, SearchMode::kKnapsack}) {
    SelectorConfig cfg;
    cfg.buffer_width = 2;
    cfg.mode = mode;
    cfg.jobs = 1;
    const auto reference = serial.select(cfg);
    cfg.jobs = 4;
    expect_identical(reference, parallel.select(cfg));
  }
}

TEST(ParallelSelectorTest, ExternalPoolIsReused) {
  CoherenceFixture fx;
  const auto u = fx.two_instance_interleaving();
  const MessageSelector serial(fx.catalog, u);
  const ParallelSelector parallel(serial);
  util::ThreadPool pool(3);
  SelectorConfig cfg;
  cfg.buffer_width = 2;
  cfg.jobs = 1;
  const auto reference = serial.select(cfg);
  cfg.jobs = 4;  // ignored for sizing when a pool is passed
  expect_identical(reference, parallel.select(cfg, &pool));
  EXPECT_GT(parallel.memo().size(), 0u);
}

TEST(GainMemoTest, MemoReturnsEngineValues) {
  CoherenceFixture fx;
  const auto u = fx.two_instance_interleaving();
  const InfoGainEngine engine(u);
  GainMemo memo;
  const std::vector<MessageId> set{fx.reqE, fx.gntE};
  const double fresh = engine.info_gain(set);
  EXPECT_EQ(memo.gain(engine, set), fresh);  // miss: computed
  EXPECT_EQ(memo.gain(engine, set), fresh);  // hit: cached double
  EXPECT_EQ(memo.size(), 1u);
}

TEST(MultiScenarioParallelTest, ConfigOverloadMatchesDeprecated) {
  soc::T2Design design;
  std::vector<flow::InterleavedFlow> interleavings;
  for (const int id : {1, 2})
    interleavings.push_back(
        soc::build_interleaving(design, soc::scenario_by_id(id)));
  std::vector<WeightedScenario> scenarios;
  for (const auto& u : interleavings) scenarios.push_back({&u, 1.0});

  const MultiScenarioSelector serial(design.catalog(), scenarios);
  const auto reference = serial.select(32, true);

  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    const MultiScenarioSelector parallel(design.catalog(), scenarios, jobs);
    SelectorConfig cfg;
    cfg.buffer_width = 32;
    cfg.jobs = jobs;
    const auto got = parallel.select(cfg);
    EXPECT_EQ(reference.combination.messages, got.combination.messages);
    EXPECT_EQ(reference.packed, got.packed);
    EXPECT_EQ(reference.weighted_gain, got.weighted_gain);
    EXPECT_EQ(reference.per_scenario_coverage, got.per_scenario_coverage);
    EXPECT_EQ(reference.used_width, got.used_width);
  }
}

TEST(MonteCarloParallelTest, TrialsIdenticalAcrossJobCounts) {
  soc::T2Design design;
  const auto cases = soc::standard_case_studies();
  debug::CaseStudyOptions base;
  const auto reference =
      debug::evaluate_case_study(design, cases[0], base, 4, /*jobs=*/1);
  for (const std::size_t jobs : {std::size_t{2}, std::size_t{4}}) {
    const auto got =
        debug::evaluate_case_study(design, cases[0], base, 4, jobs);
    EXPECT_EQ(reference.runs, got.runs);
    EXPECT_EQ(reference.failures_detected, got.failures_detected);
    EXPECT_EQ(reference.pruned_fraction.mean, got.pruned_fraction.mean);
    EXPECT_EQ(reference.pruned_fraction.stddev, got.pruned_fraction.stddev);
    EXPECT_EQ(reference.localization_fraction.mean,
              got.localization_fraction.mean);
    EXPECT_EQ(reference.messages_investigated.mean,
              got.messages_investigated.mean);
    EXPECT_EQ(reference.pairs_investigated.mean,
              got.pairs_investigated.mean);
  }
}

TEST(SessionTest, SpecSessionSelectsLikeSerialPath) {
  CoherenceFixture fx;
  const auto u = fx.two_instance_interleaving();
  const MessageSelector selector(fx.catalog, u);
  SelectorConfig cfg;
  cfg.buffer_width = 2;
  const auto reference = selector.select(cfg);

  // Build the same Fig. 2 pipeline through the facade.
  flow::ParsedSpec spec;
  const auto reqE = spec.catalog.add("ReqE", 1, "IP1", "Dir");
  const auto gntE = spec.catalog.add("GntE", 1, "Dir", "IP1");
  const auto ack = spec.catalog.add("Ack", 1, "IP1", "Dir");
  spec.flows.push_back(CoherenceFixture::make_flow(spec.catalog, reqE, gntE,
                                                   ack));
  auto fig2 = tracesel::Session::from_spec(std::move(spec));
  fig2.config().buffer_width = 2;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    fig2.jobs(jobs);
    expect_identical(reference, fig2.interleave(2).select());
  }
  EXPECT_TRUE(fig2.last_selection().has_value());

  const std::vector<flow::IndexedMessage> observed{
      {reqE, 1}, {gntE, 1}, {reqE, 2}};
  const auto loc = fig2.localize(observed);
  EXPECT_EQ(loc.consistent_paths, 1.0);
}

TEST(SessionTest, T2SessionScenarioAndErrors) {
  auto session = tracesel::Session::t2();
  EXPECT_FALSE(session.has_interleaving());
  EXPECT_THROW(session.select(), std::logic_error);
  EXPECT_THROW(session.interleave(2), std::logic_error);  // not a spec session
  session.scenario(1);
  EXPECT_TRUE(session.has_interleaving());
  const auto serial = session.jobs(1).select();
  const auto parallel = session.jobs(4).select();
  expect_identical(serial, parallel);
  EXPECT_THROW(session.run_case_study(99), std::out_of_range);
}

}  // namespace
}  // namespace tracesel::selection
