// util/framing: the one codec every tracesel byte stream speaks — binary
// length-prefixed frames (subprocess pipes, the traceseld socket) and
// versioned checksummed text envelopes (checkpoints, job requests).

#include "util/framing.hpp"

#include <gtest/gtest.h>

#include <string>

namespace tracesel::util {
namespace {

TEST(Framing, RoundTripsOneFrame) {
  const std::string payload = "hello, frames";
  FrameReader reader;
  reader.feed(encode_frame(payload));
  std::string out;
  EXPECT_EQ(reader.next(out), FrameReader::State::kFrame);
  EXPECT_EQ(out, payload);
  EXPECT_EQ(reader.next(out), FrameReader::State::kNeedMore);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(Framing, RoundTripsEmptyAndBinaryPayloads) {
  FrameReader reader;
  const std::string binary("\x00\x01\xffpayload\n\r\x7f", 12);
  reader.feed(encode_frame(""));
  reader.feed(encode_frame(binary));
  std::string out;
  ASSERT_EQ(reader.next(out), FrameReader::State::kFrame);
  EXPECT_TRUE(out.empty());
  ASSERT_EQ(reader.next(out), FrameReader::State::kFrame);
  EXPECT_EQ(out, binary);
}

TEST(Framing, ReassemblesByteByByte) {
  const std::string payload(1000, 'x');
  const std::string wire = encode_frame(payload);
  FrameReader reader;
  std::string out;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    reader.feed(&wire[i], 1);
    ASSERT_EQ(reader.next(out), FrameReader::State::kNeedMore);
  }
  reader.feed(&wire[wire.size() - 1], 1);
  ASSERT_EQ(reader.next(out), FrameReader::State::kFrame);
  EXPECT_EQ(out, payload);
}

TEST(Framing, DrainsMultipleFramesFromOneFeed) {
  FrameReader reader;
  reader.feed(encode_frame("a") + encode_frame("bb") + encode_frame("ccc"));
  std::string out;
  ASSERT_EQ(reader.next(out), FrameReader::State::kFrame);
  EXPECT_EQ(out, "a");
  ASSERT_EQ(reader.next(out), FrameReader::State::kFrame);
  EXPECT_EQ(out, "bb");
  ASSERT_EQ(reader.next(out), FrameReader::State::kFrame);
  EXPECT_EQ(out, "ccc");
  EXPECT_EQ(reader.next(out), FrameReader::State::kNeedMore);
}

TEST(Framing, BadMagicPoisonsTheStream) {
  FrameReader reader;
  std::string wire = encode_frame("payload");
  wire[0] = 'X';
  reader.feed(wire);
  std::string out;
  EXPECT_EQ(reader.next(out), FrameReader::State::kCorrupt);
  EXPECT_FALSE(reader.corrupt_reason().empty());
  // Poisoned forever: even a pristine frame afterwards stays corrupt.
  reader.feed(encode_frame("fine"));
  EXPECT_EQ(reader.next(out), FrameReader::State::kCorrupt);
}

TEST(Framing, ChecksumMismatchIsCorrupt) {
  std::string wire = encode_frame("payload");
  wire[wire.size() - 1] ^= 0x01;  // flip a payload bit, keep the length
  FrameReader reader;
  reader.feed(wire);
  std::string out;
  EXPECT_EQ(reader.next(out), FrameReader::State::kCorrupt);
}

TEST(Framing, OversizedLengthIsCorruptNotAllocated) {
  // A reader with a small cap must reject a frame whose header claims more
  // than the cap — that is a corrupted length field, not a real message.
  FrameReader reader(/*max_frame_bytes=*/16);
  reader.feed(encode_frame(std::string(64, 'x')));
  std::string out;
  EXPECT_EQ(reader.next(out), FrameReader::State::kCorrupt);
}

TEST(Envelope, RoundTrips) {
  const std::string payload = "line one\nline two\n";
  const std::string text = encode_envelope("tracesel-job", 3, payload);
  const auto decoded = decode_envelope(text, "tracesel-job", 3, "job");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), payload);
}

TEST(Envelope, RejectsWrongTagVersionAndChecksum) {
  const std::string text = encode_envelope("tracesel-job", 3, "payload");

  const auto wrong_tag = decode_envelope(text, "tracesel-ck", 3, "job");
  ASSERT_FALSE(wrong_tag.ok());
  EXPECT_EQ(wrong_tag.error().code, ErrorCode::kParse);

  const auto wrong_version = decode_envelope(text, "tracesel-job", 4, "job");
  ASSERT_FALSE(wrong_version.ok());
  EXPECT_EQ(wrong_version.error().code, ErrorCode::kParse);

  std::string flipped = text;
  flipped[flipped.size() - 2] ^= 0x01;
  const auto bad_sum = decode_envelope(flipped, "tracesel-job", 3, "job");
  ASSERT_FALSE(bad_sum.ok());
  EXPECT_EQ(bad_sum.error().code, ErrorCode::kCorruptCapture);
}

TEST(Envelope, RejectsGarbageHeader) {
  const auto r = decode_envelope("not an envelope", "tracesel-job", 1, "job");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kParse);
}

}  // namespace
}  // namespace tracesel::util
