#include "flow/execution.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace tracesel::flow {
namespace {

using test::CoherenceFixture;

class ExecutionTest : public ::testing::Test {
 protected:
  CoherenceFixture fx_;
  InterleavedFlow u_ = fx_.two_instance_interleaving();
  util::Rng rng_{42};
};

TEST_F(ExecutionTest, RandomExecutionCompletesOnCoherenceProduct) {
  // Every maximal path of this product reaches the (d,d) stop tuple.
  for (int i = 0; i < 50; ++i) {
    const Execution e = random_execution(u_, rng_);
    EXPECT_TRUE(e.completed);
    EXPECT_EQ(e.steps.size(), 6u);  // 3 messages per instance
  }
}

TEST_F(ExecutionTest, RandomExecutionIsValid) {
  for (int i = 0; i < 50; ++i) {
    const Execution e = random_execution(u_, rng_);
    EXPECT_TRUE(is_valid_execution(u_, e));
  }
}

TEST_F(ExecutionTest, CyclesAreStrictlyIncreasing) {
  const Execution e = random_execution(u_, rng_);
  for (std::size_t i = 1; i < e.steps.size(); ++i)
    EXPECT_GT(e.steps[i].cycle, e.steps[i - 1].cycle);
}

TEST_F(ExecutionTest, TraceListsAllLabels) {
  const Execution e = random_execution(u_, rng_);
  const auto t = e.trace();
  ASSERT_EQ(t.size(), e.steps.size());
  for (std::size_t i = 0; i < t.size(); ++i)
    EXPECT_EQ(t[i], e.steps[i].label);
}

TEST_F(ExecutionTest, TraceContainsEachIndexedMessageOnce) {
  // In the coherence product each indexed message fires exactly once per
  // complete execution.
  const Execution e = random_execution(u_, rng_);
  const auto t = e.trace();
  for (const auto& im : u_.indexed_messages()) {
    EXPECT_EQ(std::count(t.begin(), t.end(), im), 1);
  }
}

TEST_F(ExecutionTest, ProjectKeepsOnlySelectedMessages) {
  const Execution e = random_execution(u_, rng_);
  const std::vector<MessageId> selected{fx_.reqE, fx_.gntE};
  const auto p = project(e.trace(), selected);
  EXPECT_EQ(p.size(), 4u);  // 2 instances x {ReqE, GntE}
  for (const auto& im : p) {
    EXPECT_TRUE(im.message == fx_.reqE || im.message == fx_.gntE);
  }
}

TEST_F(ExecutionTest, ProjectPreservesOrder) {
  const Execution e = random_execution(u_, rng_);
  const std::vector<MessageId> selected{fx_.reqE};
  const auto full = e.trace();
  const auto p = project(full, selected);
  // The projection must be a subsequence of the full trace.
  std::size_t j = 0;
  for (const auto& im : full) {
    if (j < p.size() && im == p[j]) ++j;
  }
  EXPECT_EQ(j, p.size());
}

TEST_F(ExecutionTest, ProjectOntoEmptySelectionIsEmpty) {
  const Execution e = random_execution(u_, rng_);
  EXPECT_TRUE(project(e.trace(), {}).empty());
}

TEST_F(ExecutionTest, ProjectedObservationIsAlwaysConsistentOrdered) {
  // Soundness of localization: the true execution's projection must be
  // counted as consistent under ordered semantics.
  const std::vector<MessageId> selected{fx_.reqE, fx_.gntE};
  for (int i = 0; i < 30; ++i) {
    const Execution e = random_execution(u_, rng_);
    const auto obs = project(e.trace(), selected);
    EXPECT_GE(u_.count_consistent_paths(selected, obs), 1.0);
  }
}

TEST_F(ExecutionTest, ValidatorRejectsCorruptedExecution) {
  Execution e = random_execution(u_, rng_);
  ASSERT_FALSE(e.steps.empty());
  Execution broken = e;
  broken.steps[0].label.index = 77;  // no such edge
  EXPECT_FALSE(is_valid_execution(u_, broken));

  Execution disconnected = e;
  if (disconnected.steps.size() >= 2) {
    disconnected.steps[1].from = disconnected.steps[1].to;
    EXPECT_FALSE(is_valid_execution(u_, disconnected));
  }
}

TEST_F(ExecutionTest, ValidatorAcceptsEmptyExecution) {
  EXPECT_TRUE(is_valid_execution(u_, Execution{}));
}

TEST_F(ExecutionTest, DifferentSeedsGiveDifferentInterleavings) {
  util::Rng a{1}, b{2};
  bool differ = false;
  for (int i = 0; i < 10 && !differ; ++i) {
    if (random_execution(u_, a).trace() != random_execution(u_, b).trace())
      differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST_F(ExecutionTest, SameSeedIsDeterministic) {
  util::Rng a{7}, b{7};
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(random_execution(u_, a).trace(),
              random_execution(u_, b).trace());
  }
}

}  // namespace
}  // namespace tracesel::flow
