#include "selection/info_gain.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "testutil.hpp"

namespace tracesel::selection {
namespace {

using flow::IndexedMessage;
using flow::MessageId;
using test::CoherenceFixture;

class InfoGainTest : public ::testing::Test {
 protected:
  CoherenceFixture fx_;
  flow::InterleavedFlow u_ = fx_.two_instance_interleaving();
  InfoGainEngine engine_{u_};
};

TEST_F(InfoGainTest, ReproducesPaperWorkedExample) {
  // Sec. 3.2: I(X;Y1) for Y'1 = {ReqE, GntE} on the Fig. 2 interleaving is
  // 1.073 (natural log): 12 terms of (1/18) ln(5).
  const std::vector<MessageId> y1{fx_.reqE, fx_.gntE};
  EXPECT_NEAR(engine_.info_gain(y1), (12.0 / 18.0) * std::log(5.0), 1e-12);
  EXPECT_NEAR(engine_.info_gain(y1), 1.073, 5e-4);
}

TEST_F(InfoGainTest, PaperWinnerBeatsOtherFittingCombinations) {
  // With a 2-bit buffer the fitting combinations are all singletons and
  // pairs; the paper selects {ReqE, GntE}.
  const double win = engine_.info_gain(std::vector<MessageId>{fx_.reqE, fx_.gntE});
  const double ra = engine_.info_gain(std::vector<MessageId>{fx_.reqE, fx_.ack});
  const double ga = engine_.info_gain(std::vector<MessageId>{fx_.gntE, fx_.ack});
  EXPECT_GE(win, ra);
  EXPECT_GE(win, ga);
}

TEST_F(InfoGainTest, EmptyCombinationHasZeroGain) {
  EXPECT_DOUBLE_EQ(engine_.info_gain(std::vector<MessageId>{}), 0.0);
}

TEST_F(InfoGainTest, GainIsMonotoneUnderAddingMessages) {
  const double g1 = engine_.info_gain(std::vector<MessageId>{fx_.reqE});
  const double g2 = engine_.info_gain(std::vector<MessageId>{fx_.reqE, fx_.gntE});
  const double g3 = engine_.info_gain(
      std::vector<MessageId>{fx_.reqE, fx_.gntE, fx_.ack});
  EXPECT_LE(g1, g2);
  EXPECT_LE(g2, g3);
}

TEST_F(InfoGainTest, FullAlphabetReachesMaxGain) {
  const double g = engine_.info_gain(
      std::vector<MessageId>{fx_.reqE, fx_.gntE, fx_.ack});
  EXPECT_DOUBLE_EQ(g, engine_.max_gain());
}

TEST_F(InfoGainTest, ContributionsAreNonNegativeAndSumToGain) {
  double sum = 0.0;
  for (const auto& im : u_.indexed_messages()) {
    const double c = engine_.contribution(im);
    EXPECT_GE(c, 0.0);
    sum += c;
  }
  EXPECT_NEAR(sum, engine_.max_gain(), 1e-12);
}

TEST_F(InfoGainTest, UnknownIndexedMessageContributesZero) {
  EXPECT_DOUBLE_EQ(engine_.contribution(IndexedMessage{fx_.reqE, 42}), 0.0);
}

TEST_F(InfoGainTest, UnusedMessageContributesZeroGain) {
  // A catalog message labeling no edge of the interleaving adds nothing.
  CoherenceFixture fx2;
  const MessageId ghost = fx2.catalog.add("ghost", 1, "A", "B");
  const auto u2 = fx2.two_instance_interleaving();
  const InfoGainEngine e2(u2);
  EXPECT_DOUBLE_EQ(
      e2.info_gain(std::vector<MessageId>{ghost}), 0.0);
  EXPECT_DOUBLE_EQ(e2.info_gain(std::vector<MessageId>{fx2.reqE, ghost}),
                   e2.info_gain(std::vector<MessageId>{fx2.reqE}));
}

TEST_F(InfoGainTest, SymmetricInstancesHaveEqualContributions) {
  // Instance tags 1 and 2 are interchangeable on a symmetric product.
  for (MessageId m : {fx_.reqE, fx_.gntE, fx_.ack}) {
    EXPECT_NEAR(engine_.contribution(IndexedMessage{m, 1}),
                engine_.contribution(IndexedMessage{m, 2}), 1e-12);
  }
}

TEST_F(InfoGainTest, SingleInstanceChainGainIsExact) {
  // On a single instance: 3 edges, 4 states; each edge is the unique
  // occurrence of its message leading to a unique state:
  // I per message = (1/3) ln(1 * 4 / 1) = (1/3) ln 4.
  const auto u1 = flow::InterleavedFlow::build(
      flow::make_instances({&fx_.flow_}, 1));
  const InfoGainEngine e1(u1);
  EXPECT_NEAR(e1.info_gain(std::vector<MessageId>{fx_.reqE}),
              std::log(4.0) / 3.0, 1e-12);
  EXPECT_NEAR(e1.max_gain(), std::log(4.0), 1e-12);
}

}  // namespace
}  // namespace tracesel::selection
