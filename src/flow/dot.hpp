#pragma once
// Graphviz DOT export for flows and interleaved flows — handy when debugging
// scenario definitions and for documentation figures.

#include <string>

#include "flow/flow.hpp"
#include "flow/interleaved_flow.hpp"

namespace tracesel::flow {

/// DOT rendering of a single flow; stop states are double circles, atomic
/// states are shaded, edges are labeled with message names.
std::string to_dot(const Flow& flow, const MessageCatalog& catalog);

/// DOT rendering of an interleaved flow; edges labeled "index:message".
std::string to_dot(const InterleavedFlow& u, const MessageCatalog& catalog);

}  // namespace tracesel::flow
