#include "flow/parser.hpp"

#include <fstream>
#include <optional>
#include <sstream>

#include "flow/flow_builder.hpp"

namespace tracesel::flow {

const Flow& ParsedSpec::flow(std::string_view name) const {
  for (const Flow& f : flows) {
    if (f.name() == name) return f;
  }
  throw std::out_of_range("ParsedSpec: unknown flow '" + std::string(name) +
                          "'");
}

namespace {

/// Whitespace tokenizer that strips '#' comments.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line.substr(0, line.find('#')));
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return tokens;
}

std::uint32_t parse_u32(const std::string& tok, std::size_t line,
                        const char* what) {
  try {
    std::size_t consumed = 0;
    const unsigned long v = std::stoul(tok, &consumed);
    if (consumed != tok.size() || v == 0 || v > 0xFFFFFFFFull)
      throw std::invalid_argument(tok);
    return static_cast<std::uint32_t>(v);
  } catch (const std::exception&) {
    throw ParseError(line, std::string("expected positive integer for ") +
                               what + ", got '" + tok + "'");
  }
}

struct PendingSubgroup {
  std::string parent, name;
  std::uint32_t width;
  std::size_t line;
};

}  // namespace

ParsedSpec parse_flow_spec(std::string_view text) {
  ParsedSpec spec;
  std::vector<PendingSubgroup> pending_subgroups;
  // Message definitions are collected first (subgroups may reference
  // messages declared later), then flows are built in a second pass over
  // recorded flow bodies.
  struct FlowBody {
    std::string name;
    std::size_t line;
    std::vector<std::pair<std::size_t, std::vector<std::string>>> lines;
  };
  std::vector<FlowBody> bodies;
  std::vector<Message> messages;

  std::istringstream stream{std::string(text)};
  std::string raw;
  std::size_t lineno = 0;
  FlowBody* open = nullptr;

  auto handle_message = [&](const std::vector<std::string>& t,
                            std::size_t line) {
    // message NAME WIDTH SRC -> DST [beats N]
    if (t.size() != 6 && t.size() != 8)
      throw ParseError(line,
                       "message syntax: message NAME WIDTH SRC -> DST "
                       "[beats N]");
    if (t[4] != "->")
      throw ParseError(line, "expected '->' between source and destination");
    Message m;
    m.name = t[1];
    m.width = parse_u32(t[2], line, "width");
    m.source_ip = t[3];
    m.dest_ip = t[5];
    if (t.size() == 8) {
      if (t[6] != "beats")
        throw ParseError(line, "expected 'beats', got '" + t[6] + "'");
      m.beats = parse_u32(t[7], line, "beats");
    }
    messages.push_back(std::move(m));
  };

  auto handle_subgroup = [&](const std::vector<std::string>& t,
                             std::size_t line) {
    // subgroup PARENT NAME WIDTH
    if (t.size() != 4)
      throw ParseError(line, "subgroup syntax: subgroup PARENT NAME WIDTH");
    pending_subgroups.push_back(
        PendingSubgroup{t[1], t[2], parse_u32(t[3], line, "width"), line});
  };

  while (std::getline(stream, raw)) {
    ++lineno;
    const auto tokens = tokenize(raw);
    if (tokens.empty()) continue;

    if (open == nullptr) {
      if (tokens[0] == "message") {
        handle_message(tokens, lineno);
      } else if (tokens[0] == "subgroup") {
        handle_subgroup(tokens, lineno);
      } else if (tokens[0] == "flow") {
        if (tokens.size() != 3 || tokens[2] != "{")
          throw ParseError(lineno, "flow syntax: flow NAME {");
        bodies.push_back(FlowBody{tokens[1], lineno, {}});
        open = &bodies.back();
      } else {
        throw ParseError(lineno, "expected 'message', 'subgroup' or "
                                 "'flow', got '" + tokens[0] + "'");
      }
    } else {
      if (tokens[0] == "}") {
        if (tokens.size() != 1)
          throw ParseError(lineno, "unexpected tokens after '}'");
        open = nullptr;
      } else if (tokens[0] == "message") {
        handle_message(tokens, lineno);
      } else if (tokens[0] == "subgroup") {
        handle_subgroup(tokens, lineno);
      } else {
        open->lines.emplace_back(lineno, tokens);
      }
    }
  }
  if (open != nullptr)
    throw ParseError(lineno, "unterminated flow block '" + open->name + "'");

  // Attach subgroups, then register messages.
  for (const PendingSubgroup& sg : pending_subgroups) {
    bool found = false;
    for (Message& m : messages) {
      if (m.name == sg.parent) {
        m.subgroups.push_back(Subgroup{sg.name, sg.width});
        found = true;
        break;
      }
    }
    if (!found)
      throw ParseError(sg.line,
                       "subgroup references unknown message '" + sg.parent +
                           "'");
  }
  for (Message& m : messages) spec.catalog.add(std::move(m));

  // Build the flows.
  for (const FlowBody& body : bodies) {
    FlowBuilder builder(body.name);
    for (const auto& [line, t] : body.lines) {
      if (t[0] == "state") {
        // state NAME [initial] [stop] [atomic]...
        if (t.size() < 2)
          throw ParseError(line, "state syntax: state NAME [initial] "
                                 "[stop] [atomic]");
        std::uint8_t flags = FlowBuilder::kNone;
        for (std::size_t i = 2; i < t.size(); ++i) {
          if (t[i] == "initial") flags |= FlowBuilder::kInitial;
          else if (t[i] == "stop") flags |= FlowBuilder::kStop;
          else if (t[i] == "atomic") flags |= FlowBuilder::kAtomic;
          else
            throw ParseError(line, "unknown state flag '" + t[i] + "'");
        }
        builder.state(t[1], flags);
      } else if (t.size() == 5 && t[1] == "->" && t[3] == "on") {
        // FROM -> TO on MESSAGE
        const auto id = spec.catalog.find(t[4]);
        if (!id)
          throw ParseError(line, "transition references unknown message '" +
                                     t[4] + "'");
        try {
          builder.transition(t[0], *id, t[2]);
        } catch (const std::invalid_argument& e) {
          throw ParseError(line, e.what());
        }
      } else {
        throw ParseError(line, "expected 'state NAME ...' or "
                               "'FROM -> TO on MESSAGE'");
      }
    }
    try {
      spec.flows.push_back(builder.build(spec.catalog));
    } catch (const std::invalid_argument& e) {
      throw ParseError(body.line, e.what());
    }
  }
  return spec;
}

ParsedSpec parse_flow_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("parse_flow_spec_file: cannot open '" + path +
                             "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_flow_spec(buffer.str());
}

}  // namespace tracesel::flow
