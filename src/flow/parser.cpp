#include "flow/parser.hpp"

#include <sstream>

#include "flow/flow_builder.hpp"
#include "util/atomic_file.hpp"
#include "util/cancel.hpp"
#include "util/obs.hpp"

namespace tracesel::flow {

const Flow& ParsedSpec::flow(std::string_view name) const {
  for (const Flow& f : flows) {
    if (f.name() == name) return f;
  }
  throw std::out_of_range("ParsedSpec: unknown flow '" + std::string(name) +
                          "'");
}

namespace {

// Input caps (DESIGN.md §11): a fuzzed or hostile .flow file must produce
// a typed file:line diagnostic, never unbounded allocation. The limits are
// far above any real collateral (the full T2 uncore spec is ~120 lines).
constexpr std::size_t kMaxSpecBytes = 64u << 20;   ///< whole-file cap
constexpr std::size_t kMaxLineLength = 64u << 10;  ///< bytes per line
constexpr std::size_t kMaxMessages = 65536;
constexpr std::size_t kMaxFlows = 4096;
constexpr std::size_t kMaxLinesPerFlow = 1u << 17; ///< states + transitions

/// Whitespace tokenizer that strips '#' comments.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line.substr(0, line.find('#')));
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return tokens;
}

std::uint32_t parse_u32(const std::string& tok, std::size_t line,
                        const char* what) {
  try {
    std::size_t consumed = 0;
    const unsigned long v = std::stoul(tok, &consumed);
    if (consumed != tok.size() || v == 0 || v > 0xFFFFFFFFull)
      throw std::invalid_argument(tok);
    return static_cast<std::uint32_t>(v);
  } catch (const std::exception&) {
    throw ParseError(line, std::string("expected positive integer for ") +
                               what + ", got '" + tok + "'");
  }
}

struct PendingSubgroup {
  std::string parent, name;
  std::uint32_t width;
  std::size_t line;
};

/// One implementation serves both modes. Strict (sink == nullptr): the
/// first error throws a ParseError carrying `file`. Lenient: every error
/// is appended to `sink` and parsing recovers at the construct boundary —
/// a malformed line is skipped, a flow that cannot be built is dropped.
ParsedSpec parse_impl(std::string_view text, const std::string& file,
                      std::vector<ParseDiagnostic>* sink,
                      const util::CancelToken* cancel) {
  OBS_SPAN("flow.parse");
  const bool lenient = sink != nullptr;
  ParsedSpec spec;
  std::vector<PendingSubgroup> pending_subgroups;
  // Message definitions are collected first (subgroups may reference
  // messages declared later), then flows are built in a second pass over
  // recorded flow bodies.
  struct FlowBody {
    std::string name;
    std::size_t line;
    /// Header was malformed (lenient mode): parse the body for further
    /// diagnostics but never attempt to build the flow.
    bool poisoned = false;
    /// Body hit kMaxLinesPerFlow: further lines are dropped unrecorded.
    bool truncated = false;
    /// Over-kMaxFlows body (lenient mode): consume lines, keep nothing.
    bool discard = false;
    std::vector<std::pair<std::size_t, std::vector<std::string>>> lines;
  };
  std::vector<FlowBody> bodies;
  // Over-cap flows in lenient mode still need their '{...}' consumed so the
  // parser stays synchronized; their lines land in this throwaway body.
  FlowBody discard_body{"<discarded>", 0, true, false, true, {}};
  std::vector<Message> messages;
  std::vector<std::size_t> message_lines;  // parallel to `messages`

  // Runs one construct-level action; on ParseError either rethrows with
  // the file attached (strict) or records the diagnostic and reports
  // failure so the caller can recover (lenient).
  const auto guard = [&](auto&& fn) -> bool {
    try {
      fn();
      return true;
    } catch (const ParseError& e) {
      if (!lenient) throw ParseError(file, e.line(), e.detail());
      sink->push_back(ParseDiagnostic{file, e.line(), e.detail()});
      return false;
    }
  };

  std::istringstream stream{std::string(text)};
  std::string raw;
  std::size_t lineno = 0;
  FlowBody* open = nullptr;
  // Each count cap is reported once; repeating it per excess line would
  // turn a pathological input into a pathological diagnostic list.
  bool message_cap_reported = false;
  bool flow_cap_reported = false;

  auto handle_message = [&](const std::vector<std::string>& t,
                            std::size_t line) {
    // message NAME WIDTH SRC -> DST [beats N]
    if (t.size() != 6 && t.size() != 8)
      throw ParseError(line,
                       "message syntax: message NAME WIDTH SRC -> DST "
                       "[beats N]");
    if (t[4] != "->")
      throw ParseError(line, "expected '->' between source and destination");
    Message m;
    m.name = t[1];
    m.width = parse_u32(t[2], line, "width");
    m.source_ip = t[3];
    m.dest_ip = t[5];
    if (t.size() == 8) {
      if (t[6] != "beats")
        throw ParseError(line, "expected 'beats', got '" + t[6] + "'");
      m.beats = parse_u32(t[7], line, "beats");
    }
    messages.push_back(std::move(m));
    message_lines.push_back(line);
  };

  auto handle_subgroup = [&](const std::vector<std::string>& t,
                             std::size_t line) {
    // subgroup PARENT NAME WIDTH
    if (t.size() != 4)
      throw ParseError(line, "subgroup syntax: subgroup PARENT NAME WIDTH");
    pending_subgroups.push_back(
        PendingSubgroup{t[1], t[2], parse_u32(t[3], line, "width"), line});
  };

  auto accept_message = [&](const std::vector<std::string>& t,
                            std::size_t line) {
    if (messages.size() >= kMaxMessages) {
      if (!message_cap_reported) {
        message_cap_reported = true;
        guard([&] {
          throw ParseError(line, "message count exceeds the cap of " +
                                     std::to_string(kMaxMessages));
        });
      }
      return;
    }
    guard([&] { handle_message(t, line); });
  };

  while (std::getline(stream, raw)) {
    ++lineno;
    if (cancel != nullptr && (lineno & 0xFFF) == 0 && cancel->cancelled())
      throw util::CancelledError("flow.parse");
    if (raw.size() > kMaxLineLength) {
      guard([&] {
        throw ParseError(lineno, "line exceeds the length cap of " +
                                     std::to_string(kMaxLineLength) +
                                     " bytes");
      });
      continue;  // lenient: drop the line, stay synchronized
    }
    const auto tokens = tokenize(raw);
    if (tokens.empty()) continue;

    if (open == nullptr) {
      if (tokens[0] == "message") {
        accept_message(tokens, lineno);
      } else if (tokens[0] == "subgroup") {
        guard([&] { handle_subgroup(tokens, lineno); });
      } else if (tokens[0] == "flow") {
        const bool well_formed = tokens.size() == 3 && tokens[2] == "{";
        guard([&] {
          if (!well_formed)
            throw ParseError(lineno, "flow syntax: flow NAME {");
        });
        if (bodies.size() >= kMaxFlows) {
          if (!flow_cap_reported) {
            flow_cap_reported = true;
            guard([&] {
              throw ParseError(lineno, "flow count exceeds the cap of " +
                                           std::to_string(kMaxFlows));
            });
          }
          if (lenient) open = &discard_body;  // consume the block body
        } else if (well_formed || lenient) {
          // Lenient recovery: still open a (poisoned) body so its lines
          // are linted instead of cascading "expected 'message'..." noise.
          bodies.push_back(FlowBody{
              tokens.size() > 1 ? tokens[1] : "<anonymous>", lineno,
              !well_formed, false, false, {}});
          open = &bodies.back();
        }
      } else {
        guard([&] {
          throw ParseError(lineno, "expected 'message', 'subgroup' or "
                                   "'flow', got '" + tokens[0] + "'");
        });
      }
    } else {
      if (tokens[0] == "}") {
        guard([&] {
          if (tokens.size() != 1)
            throw ParseError(lineno, "unexpected tokens after '}'");
        });
        open = nullptr;
      } else if (tokens[0] == "message") {
        accept_message(tokens, lineno);
      } else if (tokens[0] == "subgroup") {
        guard([&] { handle_subgroup(tokens, lineno); });
      } else if (open->discard) {
        // Over-cap flow: swallow the body without recording anything.
      } else if (open->lines.size() >= kMaxLinesPerFlow) {
        if (!open->truncated) {
          open->truncated = true;
          open->poisoned = true;  // a truncated body must never build
          guard([&] {
            throw ParseError(lineno, "flow body '" + open->name +
                                         "' exceeds the cap of " +
                                         std::to_string(kMaxLinesPerFlow) +
                                         " lines");
          });
        }
      } else {
        open->lines.emplace_back(lineno, tokens);
      }
    }
  }
  if (open != nullptr) {
    FlowBody* unterminated = open;
    guard([&] {
      throw ParseError(lineno, "unterminated flow block '" +
                                   unterminated->name + "'");
    });
  }

  // Attach subgroups, then register messages.
  for (const PendingSubgroup& sg : pending_subgroups) {
    guard([&] {
      for (Message& m : messages) {
        if (m.name == sg.parent) {
          m.subgroups.push_back(Subgroup{sg.name, sg.width});
          return;
        }
      }
      throw ParseError(sg.line, "subgroup references unknown message '" +
                                    sg.parent + "'");
    });
  }
  for (std::size_t i = 0; i < messages.size(); ++i) {
    guard([&] {
      try {
        spec.catalog.add(std::move(messages[i]));
      } catch (const std::invalid_argument& e) {
        throw ParseError(message_lines[i], e.what());
      }
    });
  }

  // Build the flows.
  for (const FlowBody& body : bodies) {
    if (body.poisoned) continue;
    FlowBuilder builder(body.name);
    bool body_ok = true;
    for (const auto& [line, t] : body.lines) {
      const std::size_t l = line;
      const auto& tt = t;
      const bool line_ok = guard([&] {
        if (tt[0] == "state") {
          // state NAME [initial] [stop] [atomic]...
          if (tt.size() < 2)
            throw ParseError(l, "state syntax: state NAME [initial] "
                                "[stop] [atomic]");
          std::uint8_t flags = FlowBuilder::kNone;
          for (std::size_t i = 2; i < tt.size(); ++i) {
            if (tt[i] == "initial") flags |= FlowBuilder::kInitial;
            else if (tt[i] == "stop") flags |= FlowBuilder::kStop;
            else if (tt[i] == "atomic") flags |= FlowBuilder::kAtomic;
            else
              throw ParseError(l, "unknown state flag '" + tt[i] + "'");
          }
          builder.state(tt[1], flags);
        } else if (tt.size() == 5 && tt[1] == "->" && tt[3] == "on") {
          // FROM -> TO on MESSAGE
          const auto id = spec.catalog.find(tt[4]);
          if (!id)
            throw ParseError(l, "transition references unknown message '" +
                                    tt[4] + "'");
          try {
            builder.transition(tt[0], *id, tt[2]);
          } catch (const std::invalid_argument& e) {
            throw ParseError(l, e.what());
          }
        } else {
          throw ParseError(l, "expected 'state NAME ...' or "
                              "'FROM -> TO on MESSAGE'");
        }
      });
      body_ok = body_ok && line_ok;
    }
    guard([&] {
      try {
        spec.flows.push_back(builder.build(spec.catalog));
      } catch (const std::invalid_argument& e) {
        // A flow whose body already had errors will often fail to build;
        // reporting that again would be cascade noise.
        if (body_ok) throw ParseError(body.line, e.what());
      }
    });
  }
  OBS_COUNT("parse.flows", spec.flows.size());
  OBS_COUNT("parse.messages", spec.catalog.size());
  if (sink != nullptr) OBS_COUNT("parse.diagnostics", sink->size());
  return spec;
}

}  // namespace

ParsedSpec parse_flow_spec(std::string_view text, std::string_view file,
                           const util::CancelToken* cancel) {
  return parse_impl(text, std::string(file), nullptr, cancel);
}

LenientParseResult parse_flow_spec_lenient(std::string_view text,
                                           std::string_view file,
                                           const util::CancelToken* cancel) {
  LenientParseResult result;
  result.spec = parse_impl(text, std::string(file), &result.errors, cancel);
  return result;
}

ParsedSpec parse_flow_spec_file(const std::string& path,
                                const util::CancelToken* cancel) {
  auto text = util::read_file_capped(path, kMaxSpecBytes);
  if (!text.ok())
    throw std::runtime_error("parse_flow_spec_file: " +
                             text.error().to_string());
  return parse_flow_spec(text.value(), path, cancel);
}

LenientParseResult parse_flow_spec_file_lenient(
    const std::string& path, const util::CancelToken* cancel) {
  auto text = util::read_file_capped(path, kMaxSpecBytes);
  if (!text.ok()) {
    LenientParseResult result;
    result.errors.push_back(
        ParseDiagnostic{path, 0, text.error().to_string()});
    return result;
  }
  return parse_flow_spec_lenient(text.value(), path, cancel);
}

}  // namespace tracesel::flow
