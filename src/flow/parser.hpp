#pragma once
// Text format for flow specifications.
//
// The paper assumes flows arrive as architectural collateral ("there is an
// increasing trend to generate transaction-level models ... to enable
// early validation"; Sec. 1). This parser gives that collateral a concrete
// form: a line-oriented spec listing messages (with widths, endpoints,
// optional subgroups and multi-cycle beats) and flow DAGs.
//
//   # toy cache coherence (Fig. 1a)
//   message ReqE 1 IP1 -> Dir
//   message GntE 1 Dir -> IP1
//   message Ack  1 IP1 -> Dir
//   message dmusiidata 20 DMU -> SIU beats 2
//   subgroup dmusiidata cputhreadid 6
//
//   flow CacheCoherence {
//     state Init initial
//     state Wait
//     state GntW atomic
//     state Done stop
//     Init -> Wait on ReqE
//     Wait -> GntW on GntE
//     GntW -> Done on Ack
//   }
//
// Messages and subgroups may be declared at top level or inside a flow
// block; either way they land in one shared catalog. '#' starts a comment.

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "flow/flow.hpp"
#include "flow/message.hpp"

namespace tracesel::flow {

/// Parse failure with 1-based line number.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// A parsed specification: one catalog shared by all flows.
struct ParsedSpec {
  MessageCatalog catalog;
  std::vector<Flow> flows;

  const Flow& flow(std::string_view name) const;
};

/// Parses a complete spec; throws ParseError on malformed input and the
/// usual std::invalid_argument on semantic violations (via FlowBuilder).
ParsedSpec parse_flow_spec(std::string_view text);

/// Reads and parses a spec file; throws std::runtime_error if unreadable.
ParsedSpec parse_flow_spec_file(const std::string& path);

}  // namespace tracesel::flow
