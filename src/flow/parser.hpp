#pragma once
// Text format for flow specifications.
//
// The paper assumes flows arrive as architectural collateral ("there is an
// increasing trend to generate transaction-level models ... to enable
// early validation"; Sec. 1). This parser gives that collateral a concrete
// form: a line-oriented spec listing messages (with widths, endpoints,
// optional subgroups and multi-cycle beats) and flow DAGs.
//
//   # toy cache coherence (Fig. 1a)
//   message ReqE 1 IP1 -> Dir
//   message GntE 1 Dir -> IP1
//   message Ack  1 IP1 -> Dir
//   message dmusiidata 20 DMU -> SIU beats 2
//   subgroup dmusiidata cputhreadid 6
//
//   flow CacheCoherence {
//     state Init initial
//     state Wait
//     state GntW atomic
//     state Done stop
//     Init -> Wait on ReqE
//     Wait -> GntW on GntE
//     GntW -> Done on Ack
//   }
//
// Messages and subgroups may be declared at top level or inside a flow
// block; either way they land in one shared catalog. '#' starts a comment.

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "flow/flow.hpp"
#include "flow/message.hpp"
#include "util/cancel.hpp"

namespace tracesel::flow {

/// Parse failure with 1-based line number and (when known) the file name:
/// what() reads "spec.flow:12: ..." or "line 12: ..." for in-memory text.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& what)
      : ParseError("", line, what) {}
  ParseError(const std::string& file, std::size_t line,
             const std::string& what)
      : std::runtime_error(file.empty()
                               ? "line " + std::to_string(line) + ": " + what
                               : file + ":" + std::to_string(line) + ": " +
                                     what),
        file_(file),
        line_(line),
        detail_(what) {}
  const std::string& file() const { return file_; }
  std::size_t line() const { return line_; }
  /// The message without the file:line prefix.
  const std::string& detail() const { return detail_; }

 private:
  std::string file_;
  std::size_t line_;
  std::string detail_;
};

/// One accumulated error from the lenient (lint) parse mode.
struct ParseDiagnostic {
  std::string file;  ///< empty for in-memory text
  std::size_t line = 0;
  std::string text;

  std::string to_string() const {
    return (file.empty() ? "line " + std::to_string(line)
                         : file + ":" + std::to_string(line)) +
           ": " + text;
  }
};

/// A parsed specification: one catalog shared by all flows.
struct ParsedSpec {
  MessageCatalog catalog;
  std::vector<Flow> flows;

  const Flow& flow(std::string_view name) const;
};

/// Parses a complete spec; throws ParseError on malformed input and the
/// usual std::invalid_argument on semantic violations (via FlowBuilder).
/// A non-empty `file` is prefixed to every error message. Pathological
/// inputs are rejected with typed file:line diagnostics: lines over 64 KiB,
/// more than 65536 messages or 4096 flows, flow bodies past 2^17 lines.
/// A non-null `cancel` makes parsing cooperative — a cancelled token makes
/// it throw util::CancelledError within a few thousand lines.
ParsedSpec parse_flow_spec(std::string_view text, std::string_view file = "",
                           const util::CancelToken* cancel = nullptr);

/// Reads and parses a spec file; throws std::runtime_error if unreadable
/// or larger than 64 MiB. Parse errors carry the file name
/// ("spec.flow:12: ...").
ParsedSpec parse_flow_spec_file(const std::string& path,
                                const util::CancelToken* cancel = nullptr);

/// Outcome of a lenient parse: the salvageable spec plus every error.
struct LenientParseResult {
  ParsedSpec spec;  ///< whatever parsed cleanly (lint it anyway)
  std::vector<ParseDiagnostic> errors;
  bool ok() const { return errors.empty(); }
};

/// Lint mode: instead of stopping at the first error, accumulates all of
/// them and recovers per construct (a bad message/state/transition line is
/// skipped; a flow that cannot be built is dropped). Never throws on
/// malformed input.
LenientParseResult parse_flow_spec_lenient(
    std::string_view text, std::string_view file = "",
    const util::CancelToken* cancel = nullptr);

/// Lenient parse of a file; an unreadable (or over-64-MiB) file is itself
/// one diagnostic.
LenientParseResult parse_flow_spec_file_lenient(
    const std::string& path, const util::CancelToken* cancel = nullptr);

}  // namespace tracesel::flow
