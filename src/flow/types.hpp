#pragma once
// Fundamental identifier types of the flow model.
//
// The formal model follows Sec. 2 of Pal et al., DAC'18:
//  - a *message* is an assignment to interface signals, abstracted as
//    <content, width> (Def. "Conventions");
//  - a *flow* is a DAG over flow states with message-labeled transitions
//    (Def. 1);
//  - concurrent instances of flows are distinguished by *indices* (Def. 3).

#include <compare>
#include <cstdint>
#include <functional>

namespace tracesel::flow {

/// Dense id of a message inside a MessageCatalog.
using MessageId = std::uint32_t;

/// Dense id of a flow state inside one Flow.
using StateId = std::uint32_t;

/// Dense id of a product state inside one InterleavedFlow.
using NodeId = std::uint32_t;

inline constexpr MessageId kInvalidMessage = ~MessageId{0};
inline constexpr StateId kInvalidState = ~StateId{0};
inline constexpr NodeId kInvalidNode = ~NodeId{0};

/// An indexed message <m, i> (Def. 3): message m sent by the i-th concurrent
/// instance of its flow. Two instances of the same flow never share an index
/// (legal indexing, Def. 4); the catalog/interleaver enforce that by
/// construction.
struct IndexedMessage {
  MessageId message = kInvalidMessage;
  std::uint32_t index = 0;

  friend auto operator<=>(const IndexedMessage&,
                          const IndexedMessage&) = default;
};

}  // namespace tracesel::flow

template <>
struct std::hash<tracesel::flow::IndexedMessage> {
  std::size_t operator()(
      const tracesel::flow::IndexedMessage& im) const noexcept {
    const std::uint64_t k =
        (static_cast<std::uint64_t>(im.message) << 32) | im.index;
    // splitmix64 finalizer.
    std::uint64_t z = k + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};
