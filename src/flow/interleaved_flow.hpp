#pragma once
// The interleaved flow U = F1 ||| F2 ||| ... ||| Fk (Def. 5).
//
// States of U are tuples of component flow states. The transition rules
// generalize the paper's two-flow rules: component i may take a step labeled
// with (its) indexed message iff every *other* component currently sits in a
// non-atomic state. Consequently a product state never has two components in
// atomic states simultaneously (the Atom mutex of Def. 5), and only the flow
// occupying an atomic state can move until it leaves it.
//
// The product is materialized as an explicit DAG restricted to states
// reachable from the initial tuple, with edge labels carrying the indexed
// message (Def. 3). Two engine-level optimizations keep it scalable
// (DESIGN.md §9):
//
//   * Symmetry reduction (on by default). Identical indexed copies of a
//     flow are interchangeable: permuting the positions of same-flow
//     instances is an automorphism of the product. The engine stores one
//     canonical representative per orbit — the tuple with each same-flow
//     group's states sorted — plus an exact orbit weight (the number of
//     concrete product states the representative stands for) and per-edge
//     multiplicities. occurrences(), count_paths(), num_product_states(),
//     num_product_edges(), the Step 2 probabilities and Def. 7 coverage
//     are all computed over the *full* product via these weights and are
//     bit-identical to the unreduced engine. Queries that break symmetry
//     (observation-conditioned path counts, random executions) transparently
//     fall back to a lazily built unreduced product via concrete().
//
//   * Bit-packed keys + CSR adjacency. Product states are packed into
//     64-bit words (ceil(log2 |S_i|) bits per component) interned in a flat
//     open-addressing table, and outgoing edges are a CSR offset array over
//     the edge list — no per-node heap allocations.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "flow/indexed_flow.hpp"
#include "flow/packed_key.hpp"
#include "flow/types.hpp"
#include "util/cancel.hpp"

namespace tracesel::flow {

namespace kernel {
class Program;
}

/// Which DP engine answers path-count / consistent-path / histogram
/// queries. kCompiled (the default) lazily compiles the graph into a flat
/// kernel::Program — per-label dispatch tables + dense topological sweeps —
/// and is bit-identical to kGeneric, the original memoized DPs kept as the
/// reference fallback (DESIGN.md §14).
enum class KernelMode : std::uint8_t {
  kCompiled = 0,
  kGeneric = 1,
};

/// Knobs for InterleavedFlow::build.
struct InterleaveOptions {
  /// Store one canonical node per orbit of same-flow instance permutations
  /// (with exact weights) instead of every concrete product state.
  bool symmetry_reduction = true;
  /// Upper bound on *materialized* nodes; std::length_error beyond it.
  std::size_t max_nodes = 2'000'000;
  /// Debug mode: additionally build the unreduced product and verify that
  /// every weighted quantity matches it exactly (std::logic_error if not).
  /// Only meaningful with symmetry_reduction on; expensive — small specs.
  bool cross_check = false;
  /// Cooperative cancellation: build() throws util::CancelledError within
  /// ~1024 expanded nodes of the token reporting cancelled. The default
  /// (inert) token never cancels.
  util::CancelToken cancel;
  /// Soft memory budget in MiB; 0 = unlimited. The budget is converted to a
  /// *deterministic* node cap from the per-node storage estimate (packed key
  /// words + interner slot + amortized edges) — never from runtime RSS, so
  /// the same spec degrades identically on every run. When the budget (or
  /// max_nodes) is exceeded and symmetry_reduction is off, build() retries
  /// with the symmetry-reduced engine — bit-identical results, typically
  /// orders of magnitude fewer materialized nodes — and records the
  /// fallback in degradation().
  std::size_t mem_budget_mb = 0;
  /// Query engine; a runtime knob (results are bit-identical either way),
  /// so it never participates in workload/result cache keys.
  KernelMode kernel = KernelMode::kCompiled;
};

class InterleavedFlow {
 public:
  /// One product transition; `instance` is the component that moved (under
  /// reduction: the first position of the moving state in its group).
  struct Edge {
    NodeId from = kInvalidNode;
    IndexedMessage label;
    NodeId to = kInvalidNode;
    std::uint32_t instance = 0;  ///< index into instances()
  };

  /// Contiguous range of outgoing edge indices (CSR row) of one node.
  class OutgoingRange {
   public:
    class iterator {
     public:
      using value_type = std::uint32_t;
      using difference_type = std::ptrdiff_t;
      explicit iterator(std::uint32_t v) : v_(v) {}
      std::uint32_t operator*() const { return v_; }
      iterator& operator++() {
        ++v_;
        return *this;
      }
      iterator operator++(int) { return iterator(v_++); }
      bool operator==(const iterator& o) const { return v_ == o.v_; }
      bool operator!=(const iterator& o) const { return v_ != o.v_; }

     private:
      std::uint32_t v_;
    };

    OutgoingRange(std::uint32_t first, std::uint32_t last)
        : first_(first), last_(last) {}
    iterator begin() const { return iterator(first_); }
    iterator end() const { return iterator(last_); }
    std::size_t size() const { return last_ - first_; }
    bool empty() const { return first_ == last_; }
    std::uint32_t operator[](std::size_t i) const {
      return first_ + static_cast<std::uint32_t>(i);
    }

   private:
    std::uint32_t first_;
    std::uint32_t last_;
  };

  /// Per-label class histogram of in-edge counts over the *concrete*
  /// product: classes[j] = (c, k) means k concrete product states have
  /// exactly c in-edges labeled `label`. The Step 2 info-gain engine is
  /// computed from this shape; both engines produce it identically.
  struct LabelClassHistogram {
    IndexedMessage label;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> classes;
  };

  /// Builds the reachable product of a legally indexed set of instances.
  /// Throws std::invalid_argument on empty or illegally indexed input,
  /// util::CancelledError when options.cancel fires mid-build, and
  /// std::length_error if the materialized product exceeds the effective
  /// node cap (options.max_nodes, possibly lowered by mem_budget_mb) even
  /// after the symmetry-reduction fallback described in InterleaveOptions.
  static InterleavedFlow build(std::vector<IndexedFlow> instances,
                               const InterleaveOptions& options = {});
  /// Back-compat convenience: default options with an explicit node cap.
  static InterleavedFlow build(std::vector<IndexedFlow> instances,
                               std::size_t max_nodes);

  InterleavedFlow(InterleavedFlow&&) = default;
  InterleavedFlow& operator=(InterleavedFlow&&) = default;

  const std::vector<IndexedFlow>& instances() const { return instances_; }
  /// The options the engine was actually built with: max_nodes reflects the
  /// effective (budget-lowered) cap and symmetry_reduction the engine that
  /// succeeded, which may differ from what the caller requested — see
  /// degradation().
  const InterleaveOptions& options() const { return options_; }
  /// True when this engine stores orbit representatives, not all states.
  bool reduced() const { return reduced_; }

  /// Non-empty when the build deviated from the requested options to fit
  /// the memory budget (node cap lowered and/or fell back to the
  /// symmetry-reduced engine). The results are still exact.
  const std::string& degradation() const { return degradation_; }
  bool degraded() const { return !degradation_.empty(); }

  /// Materialized node/edge counts (orbit representatives when reduced()).
  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_edges() const { return edges_.size(); }

  /// Exact size of the concrete product this engine represents: the sum of
  /// orbit weights (== num_nodes()/num_edges() when not reduced).
  std::uint64_t num_product_states() const { return product_states_; }
  std::uint64_t num_product_edges() const { return product_edges_; }

  /// Number of concrete product states the materialized node stands for
  /// (1 when not reduced).
  std::uint64_t node_weight(NodeId n) const {
    return node_weight_.empty() ? 1 : node_weight_[n];
  }
  /// Number of concrete transitions per concrete source state this edge
  /// stands for (1 when not reduced).
  std::uint32_t edge_multiplicity(std::size_t e) const {
    return edge_mult_.empty() ? 1 : edge_mult_[e];
  }

  const std::vector<NodeId>& initial_nodes() const { return initial_; }
  const std::vector<NodeId>& stop_nodes() const { return stop_; }
  bool is_stop(NodeId n) const { return stop_mask_[n]; }

  const std::vector<Edge>& edges() const { return edges_; }
  /// Outgoing edge indices of a node (CSR row).
  OutgoingRange outgoing(NodeId n) const;

  /// The component flow states making up product state n (decoded from the
  /// packed key; returned by value).
  std::vector<StateId> node_key(NodeId n) const;

  /// Human-readable product state, e.g. "(c:1,n:2)".
  std::string node_name(NodeId n) const;

  /// All distinct indexed messages labeling at least one edge of the
  /// concrete product.
  const std::vector<IndexedMessage>& indexed_messages() const {
    return indexed_messages_;
  }

  /// Number of concrete product edges labeled with a given indexed message.
  std::size_t occurrences(const IndexedMessage& im) const;

  /// Total number of executions: root-to-stop paths of the concrete product
  /// DAG (orbit-weighted when reduced — same value either way).
  /// double-precision because counts grow combinatorially; exact for counts
  /// below 2^53.
  double count_paths() const;

  /// Number of executions whose projection onto `selected` (set of message
  /// ids; all indices of those messages are visible) starts with `observed`
  /// *in order*. This is the denominator-free core of path localization
  /// (Sec. 5.2): localization = consistent / count_paths(). Observation
  /// breaks instance symmetry, so a reduced engine answers via concrete().
  double count_consistent_paths(
      const std::vector<MessageId>& selected,
      const std::vector<IndexedMessage>& observed) const;

  /// Order-insensitive variant: counts executions whose first
  /// |observed| projected messages form exactly the observed *multiset*.
  /// The paper presents the observed trace as a set ("{1:ReqE, 1:GntE,
  /// 2:ReqE}"), so both readings are provided; benches report the ordered
  /// one (trace buffers preserve order) and tests pin both.
  double count_consistent_paths_multiset(
      const std::vector<MessageId>& selected,
      const std::vector<IndexedMessage>& observed) const;

  /// The in-edge class histograms of every indexed message over the
  /// concrete product, labels ascending, classes ascending by c. Computed
  /// directly from the edge list when unreduced and by exact orbit
  /// combinatorics when reduced — identical output either way.
  std::vector<LabelClassHistogram> label_target_histograms() const;

  /// The unreduced product over the same instances (this engine itself when
  /// not reduced). Built lazily on first use and cached; thread-safe.
  const InterleavedFlow& concrete() const;

  /// The compiled kernel program for this graph, built lazily on first use
  /// and cached; thread-safe. Independent of options().kernel — callers can
  /// always reach the compiled tables explicitly.
  const kernel::Program& program() const;
  /// program() as a shareable handle (e.g. for the ArtifactStore's
  /// per-spec program cache).
  std::shared_ptr<const kernel::Program> shared_program() const;
  /// Seeds the program cache with an already compiled Program for the same
  /// graph (store hit); no-op when one is already cached.
  void adopt_program(std::shared_ptr<const kernel::Program> program) const;

 private:
  InterleavedFlow() = default;

  // Program::compile reads the private CSR/edge tables directly and the
  // private histogram routines must stay reachable without recursing into
  // the dispatching public methods.
  friend class kernel::Program;

  // The concrete() cache: never copied with the graph, fresh mutex per
  // object so moved-from/copied engines stay independently lockable.
  struct ConcreteCache {
    ConcreteCache() : mutex(std::make_unique<std::mutex>()) {}
    ConcreteCache(ConcreteCache&&) = default;
    ConcreteCache& operator=(ConcreteCache&&) = default;
    std::unique_ptr<std::mutex> mutex;
    std::unique_ptr<InterleavedFlow> flow;
  };

  // The program() cache; shared_ptr (not unique_ptr) so an incomplete
  // kernel::Program works here and handles can be shared with the
  // ArtifactStore across the flows of one workload.
  struct KernelCache {
    KernelCache() : mutex(std::make_unique<std::mutex>()) {}
    KernelCache(KernelCache&&) = default;
    KernelCache& operator=(KernelCache&&) = default;
    std::unique_ptr<std::mutex> mutex;
    std::shared_ptr<const kernel::Program> program;
  };

  /// One build attempt with the options exactly as given (no budget
  /// lowering, no reduction fallback) — used by build(), concrete() and the
  /// cross-checker, which must not re-enter the degradation logic.
  static InterleavedFlow build_impl(std::vector<IndexedFlow> instances,
                                    const InterleaveOptions& options);

  void build_graph();
  void finalize_weights_and_occurrences();
  void verify_against_unreduced() const;
  std::vector<LabelClassHistogram> histograms_unreduced() const;
  std::vector<LabelClassHistogram> histograms_reduced() const;

  std::vector<IndexedFlow> instances_;
  InterleaveOptions options_;
  std::string degradation_;  ///< see degradation()
  bool reduced_ = false;
  std::vector<InstanceGroup> groups_;
  std::vector<std::uint32_t> group_of_;  ///< instance position -> group id

  KeyCodec codec_;
  KeyInterner interner_;  ///< owns packed key storage; NodeId-indexed
  std::size_t num_nodes_ = 0;

  std::vector<NodeId> initial_;
  std::vector<NodeId> stop_;
  std::vector<bool> stop_mask_;
  std::vector<Edge> edges_;
  std::vector<std::uint32_t> out_offset_;  ///< CSR: size num_nodes_ + 1
  std::vector<std::uint32_t> edge_mult_;   ///< per-edge mu; empty = all 1
  std::vector<std::uint64_t> node_weight_; ///< orbit weights; empty = all 1
  std::uint64_t product_states_ = 0;
  std::uint64_t product_edges_ = 0;

  std::vector<IndexedMessage> indexed_messages_;
  std::unordered_map<IndexedMessage, std::size_t> occurrence_counts_;

  mutable ConcreteCache concrete_;
  mutable KernelCache kernel_;
};

}  // namespace tracesel::flow
