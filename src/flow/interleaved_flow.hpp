#pragma once
// The interleaved flow U = F1 ||| F2 ||| ... ||| Fk (Def. 5).
//
// States of U are tuples of component flow states. The transition rules
// generalize the paper's two-flow rules: component i may take a step labeled
// with (its) indexed message iff every *other* component currently sits in a
// non-atomic state. Consequently a product state never has two components in
// atomic states simultaneously (the Atom mutex of Def. 5), and only the flow
// occupying an atomic state can move until it leaves it.
//
// The product is materialized as an explicit DAG restricted to states
// reachable from the initial tuple — for the SoC scenarios in this repo that
// is 10^2..10^5 nodes, comfortably in memory — with edge labels carrying the
// indexed message (Def. 3).

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "flow/indexed_flow.hpp"
#include "flow/types.hpp"

namespace tracesel::flow {

class InterleavedFlow {
 public:
  /// One product transition; `instance` is the component that moved.
  struct Edge {
    NodeId from = kInvalidNode;
    IndexedMessage label;
    NodeId to = kInvalidNode;
    std::uint32_t instance = 0;  ///< index into instances()
  };

  /// Builds the reachable product of a legally indexed set of instances.
  /// Throws std::invalid_argument on empty or illegally indexed input, and
  /// std::length_error if the reachable product exceeds `max_nodes`.
  static InterleavedFlow build(std::vector<IndexedFlow> instances,
                               std::size_t max_nodes = 2'000'000);

  const std::vector<IndexedFlow>& instances() const { return instances_; }

  std::size_t num_nodes() const { return node_keys_.size(); }
  std::size_t num_edges() const { return edges_.size(); }

  const std::vector<NodeId>& initial_nodes() const { return initial_; }
  const std::vector<NodeId>& stop_nodes() const { return stop_; }
  bool is_stop(NodeId n) const { return stop_mask_[n]; }

  const std::vector<Edge>& edges() const { return edges_; }
  /// Outgoing edge indices of a node.
  const std::vector<std::uint32_t>& outgoing(NodeId n) const;

  /// The component flow states making up product state n.
  const std::vector<StateId>& node_key(NodeId n) const;

  /// Human-readable product state, e.g. "(c:1,n:2)".
  std::string node_name(NodeId n) const;

  /// All distinct indexed messages labeling at least one edge.
  const std::vector<IndexedMessage>& indexed_messages() const {
    return indexed_messages_;
  }

  /// Number of edges labeled with a given indexed message.
  std::size_t occurrences(const IndexedMessage& im) const;

  /// Total number of executions: root-to-stop paths of the product DAG.
  /// double-precision because counts grow combinatorially; exact for counts
  /// below 2^53.
  double count_paths() const;

  /// Number of executions whose projection onto `selected` (set of message
  /// ids; all indices of those messages are visible) starts with `observed`
  /// *in order*. This is the denominator-free core of path localization
  /// (Sec. 5.2): localization = consistent / count_paths().
  double count_consistent_paths(
      const std::vector<MessageId>& selected,
      const std::vector<IndexedMessage>& observed) const;

  /// Order-insensitive variant: counts executions whose first
  /// |observed| projected messages form exactly the observed *multiset*.
  /// The paper presents the observed trace as a set ("{1:ReqE, 1:GntE,
  /// 2:ReqE}"), so both readings are provided; benches report the ordered
  /// one (trace buffers preserve order) and tests pin both.
  double count_consistent_paths_multiset(
      const std::vector<MessageId>& selected,
      const std::vector<IndexedMessage>& observed) const;

 private:
  InterleavedFlow() = default;

  std::vector<IndexedFlow> instances_;
  std::vector<std::vector<StateId>> node_keys_;
  std::vector<NodeId> initial_;
  std::vector<NodeId> stop_;
  std::vector<bool> stop_mask_;
  std::vector<Edge> edges_;
  std::vector<std::vector<std::uint32_t>> outgoing_;
  std::vector<IndexedMessage> indexed_messages_;
  std::unordered_map<IndexedMessage, std::size_t> occurrence_counts_;
};

}  // namespace tracesel::flow
