#pragma once
// Compiled per-spec DP kernels for the interleave hot loops (DESIGN.md §14).
//
// A kernel::Program is a flat, spec-specialized form of one InterleavedFlow:
// the CSR adjacency re-laid out as structure-of-arrays tables (targets,
// multiplicities, label ids), a Kahn topological schedule, a packed stop
// bitset and a sorted distinct-label table. Compiling once turns the
// engine's recursive memoized DPs into dense linear sweeps:
//
//   * count_paths() is evaluated at compile time by one reverse-topological
//     pass and cached — repeated queries are O(1).
//   * count_consistent_paths() classifies *labels* (not edges) against the
//     observation — a lookup table of |labels| entries instead of a
//     std::find per edge — and fills the (node x prefix-position) memo with
//     one dense sweep, no recursion stack, no visited sentinels.
//   * label_target_histograms() (unreduced engines) runs a counting-sort
//     grouping of the edge table instead of nested std::map/unordered_map
//     passes; computed lazily on first use from the Program's own tables.
//
// Every executor reproduces the generic path's floating-point summation
// order exactly (per (node, j): stop bonus first, then outgoing edges in
// ascending CSR order), so results are bit-identical to the fallback — the
// property the differential tests pin. Programs are immutable after
// compile() and safe to share across threads; the ArtifactStore caches them
// by canonical spec hash so daemon tenants compile once per workload.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "flow/interleaved_flow.hpp"
#include "flow/types.hpp"

namespace tracesel::flow::kernel {

/// Sizes and timings of one compile, exported via obs gauges as well.
struct CompileStats {
  double compile_ms = 0.0;      ///< wall time of Program::compile
  std::size_t table_bytes = 0;  ///< bytes held by the flat tables
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::size_t labels = 0;  ///< distinct edge labels
};

class Program {
 public:
  /// Compiles the flow's graph into flat tables. O(V + E + E log L).
  /// The returned Program is self-contained: it keeps no reference to `u`
  /// and may outlive it (the ArtifactStore shares Programs across the
  /// per-request flows of one workload).
  static Program compile(const InterleavedFlow& u);

  /// Total executions (root-to-stop paths), precomputed at compile.
  /// Bit-identical to InterleavedFlow::count_paths().
  double count_paths() const { return total_paths_; }

  /// Ordered consistent-path count; semantics, validation and result bits
  /// exactly match InterleavedFlow::count_consistent_paths on an unreduced
  /// engine. Throws std::logic_error if the Program was compiled from a
  /// reduced engine (the flow-level dispatch answers those via concrete()).
  double count_consistent_paths(
      const std::vector<MessageId>& selected,
      const std::vector<IndexedMessage>& observed) const;

  /// In-edge class histograms, labels ascending — bit-identical to the
  /// generic unreduced computation. Lazily built on first call (thread-safe
  /// via std::call_once); only valid for unreduced programs.
  const std::vector<InterleavedFlow::LabelClassHistogram>&
  label_target_histograms() const;

  bool reduced() const { return reduced_; }
  const CompileStats& stats() const { return stats_; }

 private:
  Program() = default;

  bool is_stop(NodeId n) const {
    return (stop_bits_[n >> 6] >> (n & 63)) & 1u;
  }
  void build_histograms() const;

  std::size_t num_nodes_ = 0;
  bool reduced_ = false;

  // CSR adjacency as structure-of-arrays: edge i of node n lives at
  // [out_offset_[n], out_offset_[n+1]) in the three parallel edge tables.
  std::vector<std::uint32_t> out_offset_;
  std::vector<std::uint32_t> edge_to_;
  std::vector<std::uint32_t> edge_mult_;   ///< empty when all 1 (unreduced)
  std::vector<std::uint32_t> edge_label_;  ///< index into labels_

  std::vector<IndexedMessage> labels_;  ///< sorted distinct edge labels
  std::vector<std::uint32_t> topo_;     ///< forward topological order
  std::vector<std::uint64_t> stop_bits_;
  std::vector<NodeId> initial_;

  double total_paths_ = 0.0;
  CompileStats stats_;

  // Lazy unreduced histogram cache; call_once keeps the Program shareable
  // across threads without external locking. Boxed because std::once_flag
  // is immovable and compile() returns Programs by value.
  struct HistCache {
    std::once_flag once;
    std::vector<InterleavedFlow::LabelClassHistogram> value;
  };
  mutable std::unique_ptr<HistCache> hist_;
};

}  // namespace tracesel::flow::kernel
