#include "flow/lint.hpp"

#include <algorithm>

namespace tracesel::flow {

std::string to_string(LintSeverity severity) {
  return severity == LintSeverity::kInfo ? "info" : "warning";
}

std::vector<LintDiagnostic> lint(const MessageCatalog& catalog,
                                 const std::vector<const Flow*>& flows,
                                 const LintOptions& options) {
  std::vector<LintDiagnostic> out;
  auto add = [&](LintSeverity sev, std::string rule, std::string subject,
                 std::string text) {
    out.push_back(LintDiagnostic{sev, std::move(rule), std::move(subject),
                                 std::move(text)});
  };

  // --- unused-message ---
  for (MessageId m = 0; m < catalog.size(); ++m) {
    const bool used = std::any_of(
        flows.begin(), flows.end(),
        [&](const Flow* f) { return f->uses_message(m); });
    if (!used) {
      add(LintSeverity::kWarning, "unused-message", catalog.get(m).name,
          "declared but labels no transition of any flow");
    }
  }

  // --- wide-unpackable / self-routed ---
  for (MessageId m = 0; m < catalog.size(); ++m) {
    const Message& msg = catalog.get(m);
    if (msg.trace_width() > options.buffer_width && msg.subgroups.empty()) {
      add(LintSeverity::kWarning, "wide-unpackable", msg.name,
          "wider than the " + std::to_string(options.buffer_width) +
              "-bit buffer and has no subgroups; no part of it can ever "
              "be traced");
    }
    if (msg.source_ip == msg.dest_ip) {
      add(LintSeverity::kWarning, "self-routed", msg.name,
          "source and destination IP are both '" + msg.source_ip +
              "'; interface monitors cannot observe IP-internal traffic");
    }
  }

  // --- trivial-flow / missing-atomic ---
  for (const Flow* f : flows) {
    if (f->transitions().size() <= 1) {
      add(LintSeverity::kInfo, "trivial-flow", f->name(),
          "a single-transition flow carries no ordering information");
    }
    // Heuristic: >= 4 states in a chain without any atomic state usually
    // means a grant/transfer critical section went unannotated.
    if (f->num_states() >= 4 && f->atomic_states().empty()) {
      add(LintSeverity::kInfo, "missing-atomic", f->name(),
          "no atomic state; if the protocol has an indivisible "
          "grant/transfer step, interleavings will overcount executions");
    }
  }

  std::sort(out.begin(), out.end(),
            [](const LintDiagnostic& a, const LintDiagnostic& b) {
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.subject < b.subject;
            });
  return out;
}

}  // namespace tracesel::flow
