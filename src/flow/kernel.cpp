#include "flow/kernel.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "util/obs.hpp"

namespace tracesel::flow::kernel {

Program Program::compile(const InterleavedFlow& u) {
  OBS_SPAN("kernel.compile");
  const auto t0 = std::chrono::steady_clock::now();

  Program p;
  p.hist_ = std::make_unique<HistCache>();
  p.num_nodes_ = u.num_nodes();
  p.reduced_ = u.reduced();
  p.out_offset_ = u.out_offset_;
  if (p.reduced_) p.edge_mult_ = u.edge_mult_;

  // Sorted distinct label table + per-edge label ids: the per-edge-kind
  // dispatch tables. Queries classify |labels| entries once instead of
  // std::find-ing over every edge.
  const std::vector<InterleavedFlow::Edge>& edges = u.edges_;
  const std::size_t num_edges = edges.size();
  p.labels_.reserve(num_edges);
  for (const InterleavedFlow::Edge& e : edges) p.labels_.push_back(e.label);
  std::sort(p.labels_.begin(), p.labels_.end());
  p.labels_.erase(std::unique(p.labels_.begin(), p.labels_.end()),
                  p.labels_.end());
  p.edge_to_.resize(num_edges);
  p.edge_label_.resize(num_edges);
  for (std::size_t e = 0; e < num_edges; ++e) {
    p.edge_to_[e] = edges[e].to;
    p.edge_label_[e] = static_cast<std::uint32_t>(
        std::lower_bound(p.labels_.begin(), p.labels_.end(), edges[e].label) -
        p.labels_.begin());
  }

  p.stop_bits_.assign((p.num_nodes_ + 63) / 64, 0);
  for (NodeId n : u.stop_nodes())
    p.stop_bits_[n >> 6] |= std::uint64_t{1} << (n & 63);
  p.initial_ = u.initial_nodes();

  // Kahn topological schedule. Nodes are interned in discovery order, which
  // is *not* topological in general, so the dense sweeps need an explicit
  // order with every successor scheduled after (= processed before, in the
  // reverse sweep) its predecessors.
  {
    std::vector<std::uint32_t> indeg(p.num_nodes_, 0);
    for (std::uint32_t t : p.edge_to_) ++indeg[t];
    p.topo_.reserve(p.num_nodes_);
    for (std::size_t n = 0; n < p.num_nodes_; ++n)
      if (indeg[n] == 0) p.topo_.push_back(static_cast<std::uint32_t>(n));
    for (std::size_t head = 0; head < p.topo_.size(); ++head) {
      const std::uint32_t n = p.topo_[head];
      for (std::uint32_t e = p.out_offset_[n]; e < p.out_offset_[n + 1]; ++e)
        if (--indeg[p.edge_to_[e]] == 0) p.topo_.push_back(p.edge_to_[e]);
    }
    if (p.topo_.size() != p.num_nodes_)
      throw std::logic_error(
          "kernel::Program: interleaved product is not acyclic");
  }

  // count_paths via one dense reverse-topological pass. Per node the
  // summation order matches the generic DP exactly (stop bonus, then edges
  // in ascending CSR order); memo values are order-independent functions of
  // the successors, so the total is bit-identical.
  {
    std::vector<double> memo(p.num_nodes_, 0.0);
    const bool weighted = !p.edge_mult_.empty();
    for (std::size_t i = p.topo_.size(); i-- > 0;) {
      const std::uint32_t n = p.topo_[i];
      double paths = p.is_stop(n) ? 1.0 : 0.0;
      for (std::uint32_t e = p.out_offset_[n]; e < p.out_offset_[n + 1]; ++e)
        paths += weighted ? static_cast<double>(p.edge_mult_[e]) *
                                memo[p.edge_to_[e]]
                          : memo[p.edge_to_[e]];
      memo[n] = paths;
    }
    p.total_paths_ = 0.0;
    for (NodeId r : p.initial_) p.total_paths_ += memo[r];
  }

  p.stats_.nodes = p.num_nodes_;
  p.stats_.edges = num_edges;
  p.stats_.labels = p.labels_.size();
  p.stats_.table_bytes = p.out_offset_.capacity() * sizeof(std::uint32_t) +
                         p.edge_to_.capacity() * sizeof(std::uint32_t) +
                         p.edge_mult_.capacity() * sizeof(std::uint32_t) +
                         p.edge_label_.capacity() * sizeof(std::uint32_t) +
                         p.labels_.capacity() * sizeof(IndexedMessage) +
                         p.topo_.capacity() * sizeof(std::uint32_t) +
                         p.stop_bits_.capacity() * sizeof(std::uint64_t) +
                         p.initial_.capacity() * sizeof(NodeId);
  p.stats_.compile_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  OBS_COUNT("kernel.compiles", 1);
  OBS_GAUGE_MAX("kernel.compile_ms", p.stats_.compile_ms + 0.5);
  OBS_GAUGE_MAX("kernel.table_bytes", p.stats_.table_bytes);
  return p;
}

double Program::count_consistent_paths(
    const std::vector<MessageId>& selected,
    const std::vector<IndexedMessage>& observed) const {
  if (reduced_)
    throw std::logic_error(
        "kernel::Program: consistent-path counting requires an unreduced "
        "program (reduced engines answer via concrete())");
  OBS_SPAN("kernel.exec");
  OBS_COUNT("kernel.execs", 1);

  // Validation replicates the generic path exactly, including the
  // is_selected sizing (max over selected ids and edge label ids; labels_
  // is precisely the distinct edge label set).
  std::vector<bool> is_selected;
  {
    MessageId max_id = 0;
    for (MessageId m : selected) max_id = std::max(max_id, m);
    for (const IndexedMessage& im : labels_)
      max_id = std::max(max_id, im.message);
    is_selected.assign(static_cast<std::size_t>(max_id) + 1, false);
    for (MessageId m : selected) is_selected[m] = true;
  }
  const std::size_t olen = observed.size();
  for (const IndexedMessage& im : observed) {
    if (im.message >= is_selected.size() || !is_selected[im.message])
      throw std::invalid_argument(
          "count_consistent_paths: observed trace contains a message outside "
          "the selected combination");
  }

  // Distinct observed labels get small kind ids (first-occurrence order,
  // matching the generic path).
  std::vector<IndexedMessage> kinds;
  std::vector<std::int32_t> obs_kind(olen);
  for (std::size_t j = 0; j < olen; ++j) {
    const auto it = std::find(kinds.begin(), kinds.end(), observed[j]);
    if (it == kinds.end()) {
      obs_kind[j] = static_cast<std::int32_t>(kinds.size());
      kinds.push_back(observed[j]);
    } else {
      obs_kind[j] = static_cast<std::int32_t>(it - kinds.begin());
    }
  }
  // Per-*label* classification — the compiled lookup table. The generic
  // path classifies per edge (O(E * K)); here it is O(L * K) with the DP
  // indexing the table through edge_label_.
  // -2: invisible edge; -1: visible but never observed; >=0: kind id.
  std::vector<std::int32_t> label_code(labels_.size());
  for (std::size_t l = 0; l < labels_.size(); ++l) {
    if (!is_selected[labels_[l].message]) {
      label_code[l] = -2;
      continue;
    }
    const auto it = std::find(kinds.begin(), kinds.end(), labels_[l]);
    label_code[l] =
        it == kinds.end() ? -1 : static_cast<std::int32_t>(it - kinds.begin());
  }

  // Dense (node x prefix-position) sweep in reverse topological order.
  // Layout matches the generic memo (node-major rows of width olen+1), so
  // one node's row and each successor row are contiguous. Unreachable
  // (node, j) slots are computed too — harmless extra work that buys the
  // branch-free sweep. Per slot the additions happen in exactly the generic
  // order: stop bonus first, then edges ascending.
  const std::size_t width = olen + 1;
  std::vector<double> memo(num_nodes_ * width, 0.0);
  for (std::size_t i = topo_.size(); i-- > 0;) {
    const std::uint32_t n = topo_[i];
    double* row = &memo[static_cast<std::size_t>(n) * width];
    if (is_stop(n)) row[olen] = 1.0;
    for (std::uint32_t e = out_offset_[n]; e < out_offset_[n + 1]; ++e) {
      const std::int32_t code = label_code[edge_label_[e]];
      const double* succ =
          &memo[static_cast<std::size_t>(edge_to_[e]) * width];
      if (code == -2) {
        // Invisible step: j -> j for every prefix position.
        std::size_t j = 0;
#if defined(TRACESEL_KERNEL_SIMD)
        // 4-wide unroll of independent lanes; same per-lane additions, so
        // still bit-identical. (Plain unroll — autovectorizes well; swap in
        // explicit intrinsics here if a target needs them.)
        for (; j + 4 <= width; j += 4) {
          row[j] += succ[j];
          row[j + 1] += succ[j + 1];
          row[j + 2] += succ[j + 2];
          row[j + 3] += succ[j + 3];
        }
#endif
        for (; j < width; ++j) row[j] += succ[j];
      } else {
        // Visible step: j advances only where the next observed kind
        // matches; a full prefix (j == olen) tolerates any visible suffix.
        for (std::size_t j = 0; j < olen; ++j)
          if (obs_kind[j] == code) row[j] += succ[j + 1];
        row[olen] += succ[olen];
      }
    }
  }
  double total = 0.0;
  for (NodeId r : initial_)
    total += memo[static_cast<std::size_t>(r) * width];
  return total;
}

const std::vector<InterleavedFlow::LabelClassHistogram>&
Program::label_target_histograms() const {
  if (reduced_)
    throw std::logic_error(
        "kernel::Program: compiled histograms require an unreduced program "
        "(reduced engines use the orbit-combinatorics path)");
  std::call_once(hist_->once, [this] { build_histograms(); });
  return hist_->value;
}

void Program::build_histograms() const {
  OBS_SPAN("kernel.exec");
  // Counting-sort the edge targets by label id, then per label count
  // in-edges per target with a scratch array + touched list. Produces the
  // exact integers (labels ascending, classes ascending by c) of the
  // generic nested-map computation.
  const std::size_t num_labels = labels_.size();
  const std::size_t num_edges = edge_label_.size();
  std::vector<std::uint32_t> off(num_labels + 1, 0);
  for (std::uint32_t l : edge_label_) ++off[l + 1];
  for (std::size_t l = 0; l < num_labels; ++l) off[l + 1] += off[l];
  std::vector<std::uint32_t> targets(num_edges);
  {
    std::vector<std::uint32_t> cursor(off.begin(), off.end() - 1);
    for (std::size_t e = 0; e < num_edges; ++e)
      targets[cursor[edge_label_[e]]++] = edge_to_[e];
  }

  std::vector<std::uint64_t> cnt(num_nodes_, 0);
  std::vector<std::uint32_t> touched;
  std::vector<std::uint64_t> counts;
  hist_->value.reserve(num_labels);
  for (std::size_t l = 0; l < num_labels; ++l) {
    touched.clear();
    counts.clear();
    for (std::uint32_t i = off[l]; i < off[l + 1]; ++i) {
      const std::uint32_t t = targets[i];
      if (cnt[t]++ == 0) touched.push_back(t);
    }
    for (std::uint32_t t : touched) {
      counts.push_back(cnt[t]);
      cnt[t] = 0;
    }
    std::sort(counts.begin(), counts.end());
    InterleavedFlow::LabelClassHistogram h;
    h.label = labels_[l];
    for (std::size_t i = 0; i < counts.size();) {
      std::size_t j = i;
      while (j < counts.size() && counts[j] == counts[i]) ++j;
      h.classes.emplace_back(counts[i], static_cast<std::uint64_t>(j - i));
      i = j;
    }
    hist_->value.push_back(std::move(h));
  }
}

}  // namespace tracesel::flow::kernel
