#include "flow/stats.hpp"

#include <algorithm>
#include <map>

namespace tracesel::flow {

FlowStats flow_stats(const Flow& flow) {
  FlowStats s;
  s.name = flow.name();
  s.states = flow.num_states();
  s.transitions = flow.transitions().size();
  s.messages = flow.messages().size();
  s.atomic_states = flow.atomic_states().size();
  s.stop_states = flow.stop_states().size();

  for (StateId st = 0; st < flow.num_states(); ++st)
    s.max_branching = std::max(s.max_branching, flow.outgoing(st).size());

  // Executions and depth via DAG DP (states are few; recursion-free).
  // Topological order by repeated relaxation is overkill; use memoized
  // post-order over the validated DAG.
  std::vector<double> paths(flow.num_states(), -1.0);
  std::vector<std::size_t> depth(flow.num_states(), 0);
  std::vector<std::pair<StateId, bool>> stack;
  for (StateId root : flow.initial_states()) {
    stack.emplace_back(root, false);
    while (!stack.empty()) {
      auto [st, processed] = stack.back();
      stack.pop_back();
      if (paths[st] >= 0.0) continue;
      if (!processed) {
        stack.emplace_back(st, true);
        for (std::uint32_t t : flow.outgoing(st)) {
          const StateId next = flow.transitions()[t].to;
          if (paths[next] < 0.0) stack.emplace_back(next, false);
        }
      } else {
        double p = flow.is_stop(st) ? 1.0 : 0.0;
        std::size_t d = 0;
        for (std::uint32_t t : flow.outgoing(st)) {
          const StateId next = flow.transitions()[t].to;
          p += paths[next];
          d = std::max(d, depth[next] + 1);
        }
        paths[st] = p;
        depth[st] = d;
      }
    }
    s.executions += paths[root];
    s.depth = std::max(s.depth, depth[root]);
  }
  return s;
}

InterleavingStats interleaving_stats(const InterleavedFlow& u) {
  InterleavingStats s;
  // Report the concrete product (what the paper's numbers refer to) plus
  // the engine's materialized footprint; they differ exactly when the
  // engine is symmetry-reduced.
  s.nodes = u.num_product_states();
  s.edges = u.num_product_edges();
  s.materialized_nodes = u.num_nodes();
  s.materialized_edges = u.num_edges();
  s.indexed_messages = u.indexed_messages().size();
  s.paths = u.count_paths();

  for (NodeId n : u.stop_nodes()) s.stop_nodes += u.node_weight(n);

  double product = 1.0;
  for (const IndexedFlow& inst : u.instances())
    product *= static_cast<double>(inst.flow->num_states());
  s.density = product > 0.0 ? static_cast<double>(s.nodes) / product : 0.0;

  // Weighted per-node tallies reproduce the concrete averages exactly: a
  // representative stands for node_weight identical states, each with
  // edge_multiplicity concrete successors per outgoing quotient edge.
  std::uint64_t non_stop = 0;
  std::uint64_t out_edges = 0;
  for (NodeId n = 0; n < u.num_nodes(); ++n) {
    if (u.is_stop(n)) continue;
    non_stop += u.node_weight(n);
    for (std::uint32_t e : u.outgoing(n))
      out_edges += u.node_weight(n) * u.edge_multiplicity(e);
  }
  s.mean_branching = non_stop ? static_cast<double>(out_edges) /
                                    static_cast<double>(non_stop)
                              : 0.0;
  return s;
}

std::vector<std::pair<MessageId, std::size_t>> message_histogram(
    const InterleavedFlow& u) {
  // Sum the exact concrete occurrence counts over the indexed instances of
  // each message (identical to counting edges when the engine is
  // unreduced, and still exact when it is symmetry-reduced).
  std::map<MessageId, std::size_t> counts;
  for (const IndexedMessage& im : u.indexed_messages())
    counts[im.message] += u.occurrences(im);
  std::vector<std::pair<MessageId, std::size_t>> out(counts.begin(),
                                                     counts.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace tracesel::flow
