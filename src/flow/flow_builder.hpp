#pragma once
// Fluent construction and validation of Flow DAGs.
//
// Usage:
//   FlowBuilder b("CacheCoherence");
//   b.state("Init").state("Wait").state("GntW", FlowBuilder::kAtomic)
//    .state("Done", FlowBuilder::kStop)
//    .initial("Init")
//    .transition("Init", reqE, "Wait")
//    .transition("Wait", gntE, "GntW")
//    .transition("GntW", ack, "Done");
//   Flow f = b.build(catalog);
//
// build() validates Def. 1: the graph is a DAG, S0 nonempty, Sp nonempty and
// disjoint from Atom, every state reachable from an initial state, and every
// state can reach a stop state (so every maximal path is an execution,
// Def. 2).

#include <cstdint>
#include <string>
#include <string_view>

#include "flow/flow.hpp"

namespace tracesel::flow {

class FlowBuilder {
 public:
  /// Per-state attribute flags, combinable with |.
  enum StateFlags : std::uint8_t {
    kNone = 0,
    kInitial = 1,
    kStop = 2,
    kAtomic = 4,
  };

  explicit FlowBuilder(std::string name);

  /// Declares a state; names must be unique within the flow.
  FlowBuilder& state(std::string name, std::uint8_t flags = kNone);

  /// Marks an already-declared state initial.
  FlowBuilder& initial(std::string_view state_name);
  /// Marks an already-declared state a stop state.
  FlowBuilder& stop(std::string_view state_name);
  /// Marks an already-declared state atomic.
  FlowBuilder& atomic(std::string_view state_name);

  /// Adds a transition `from --message--> to` between declared states.
  FlowBuilder& transition(std::string_view from, MessageId message,
                          std::string_view to);

  /// Validates and produces the immutable Flow. The catalog is consulted to
  /// verify every transition's message id exists.
  /// Throws std::invalid_argument describing the first violation found.
  Flow build(const MessageCatalog& catalog) const;

 private:
  StateId require(std::string_view state_name) const;

  std::string name_;
  std::vector<std::string> state_names_;
  std::vector<std::uint8_t> flags_;
  std::vector<Transition> transitions_;
};

}  // namespace tracesel::flow
