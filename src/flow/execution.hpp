#pragma once
// Executions and traces (Def. 2).
//
// An execution rho = s0 a1 s1 a2 ... an sn of an interleaved flow is an
// alternating sequence of product states and indexed messages ending at a
// stop tuple; trace(rho) is the message sequence a1..an. The SoC simulator
// (src/soc) produces timed executions; this header holds the plain
// combinatorial form plus helpers shared by selection and debug.

#include <cstdint>
#include <vector>

#include "flow/interleaved_flow.hpp"
#include "util/rng.hpp"

namespace tracesel::flow {

/// One step of an execution: the edge taken and the cycle it occurred on.
struct Step {
  NodeId from = kInvalidNode;
  IndexedMessage label;
  NodeId to = kInvalidNode;
  std::uint64_t cycle = 0;
};

/// A (possibly incomplete) execution of an interleaved flow.
struct Execution {
  std::vector<Step> steps;
  bool completed = false;  ///< true iff the walk ended at a stop tuple

  /// trace(rho): the indexed-message sequence of the execution.
  std::vector<IndexedMessage> trace() const {
    std::vector<IndexedMessage> t;
    t.reserve(steps.size());
    for (const Step& s : steps) t.push_back(s.label);
    return t;
  }
};

/// Projects a trace onto a selected message combination: keeps exactly the
/// indexed messages whose (unindexed) message id is selected. This models
/// what the trace buffer records when `selected` is traced.
std::vector<IndexedMessage> project(
    const std::vector<IndexedMessage>& trace,
    const std::vector<MessageId>& selected);

/// Uniform random walk from the initial tuple, choosing uniformly among
/// enabled edges, until a stop tuple (completed) or a node with no outgoing
/// edges is reached. Useful for tests and workload generation.
Execution random_execution(const InterleavedFlow& u, util::Rng& rng);

/// Checks that an execution is well-formed over u: consecutive, starts at an
/// initial tuple, each step is an edge of u.
bool is_valid_execution(const InterleavedFlow& u, const Execution& e);

}  // namespace tracesel::flow
