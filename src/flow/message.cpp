#include "flow/message.hpp"

#include <stdexcept>

namespace tracesel::flow {

MessageId MessageCatalog::add(Message message) {
  if (message.name.empty())
    throw std::invalid_argument("MessageCatalog: empty message name");
  if (message.width == 0)
    throw std::invalid_argument("MessageCatalog: zero-width message '" +
                                message.name + "'");
  if (message.beats == 0)
    throw std::invalid_argument("MessageCatalog: zero-beat message '" +
                                message.name + "'");
  if (find(message.name))
    throw std::invalid_argument("MessageCatalog: duplicate message '" +
                                message.name + "'");
  for (const Subgroup& sg : message.subgroups) {
    if (sg.name.empty())
      throw std::invalid_argument("MessageCatalog: unnamed subgroup of '" +
                                  message.name + "'");
    if (sg.width == 0 || sg.width >= message.width)
      throw std::invalid_argument(
          "MessageCatalog: subgroup '" + sg.name + "' of '" + message.name +
          "' must be narrower than its parent and nonzero");
  }
  messages_.push_back(std::move(message));
  return static_cast<MessageId>(messages_.size() - 1);
}

MessageId MessageCatalog::add(std::string name, std::uint32_t width,
                              std::string source_ip, std::string dest_ip) {
  return add(Message{std::move(name), width, std::move(source_ip),
                     std::move(dest_ip), {}});
}

const Message& MessageCatalog::get(MessageId id) const {
  if (id >= messages_.size())
    throw std::out_of_range("MessageCatalog: bad message id");
  return messages_[id];
}

std::optional<MessageId> MessageCatalog::find(std::string_view name) const {
  for (std::size_t i = 0; i < messages_.size(); ++i) {
    if (messages_[i].name == name) return static_cast<MessageId>(i);
  }
  return std::nullopt;
}

MessageId MessageCatalog::require(std::string_view name) const {
  if (auto id = find(name)) return *id;
  throw std::out_of_range("MessageCatalog: unknown message '" +
                          std::string(name) + "'");
}

std::uint32_t MessageCatalog::total_width(
    const std::vector<MessageId>& ids) const {
  std::uint32_t total = 0;
  for (MessageId id : ids) total += get(id).trace_width();
  return total;
}

}  // namespace tracesel::flow
