#pragma once
// Indexed flows (Def. 3-4): a flow paired with an instance tag. Concurrent
// executions of the same flow are distinguished by their index, mirroring the
// architectural "tagging" support of real SoCs the paper references.

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "flow/flow.hpp"

namespace tracesel::flow {

/// A non-owning reference to one concurrently-executing flow instance.
struct IndexedFlow {
  const Flow* flow = nullptr;
  std::uint32_t index = 0;
};

/// Def. 4: a set of indexed flows is legally indexed iff no two instances of
/// the same flow share an index.
inline bool legally_indexed(const std::vector<IndexedFlow>& instances) {
  for (std::size_t i = 0; i < instances.size(); ++i) {
    for (std::size_t j = i + 1; j < instances.size(); ++j) {
      if (instances[i].flow == instances[j].flow &&
          instances[i].index == instances[j].index)
        return false;
    }
  }
  return true;
}

/// Convenience: n instances of each listed flow, indexed 1..n per flow.
std::vector<IndexedFlow> make_instances(
    const std::vector<const Flow*>& flows, std::uint32_t instances_per_flow);

/// All instances of one flow within an instance list: the positions that
/// are mutually symmetric under index permutation (the orbit structure the
/// symmetry-reduced interleaving exploits). `positions` are indices into
/// the originating instance vector, in order of appearance.
struct InstanceGroup {
  const Flow* flow = nullptr;
  std::vector<std::uint32_t> positions;
};

/// Groups an instance list by flow identity, in order of first appearance.
inline std::vector<InstanceGroup> group_instances(
    const std::vector<IndexedFlow>& instances) {
  std::vector<InstanceGroup> groups;
  for (std::uint32_t i = 0; i < instances.size(); ++i) {
    InstanceGroup* g = nullptr;
    for (InstanceGroup& cand : groups) {
      if (cand.flow == instances[i].flow) {
        g = &cand;
        break;
      }
    }
    if (g == nullptr) {
      groups.push_back(InstanceGroup{instances[i].flow, {}});
      g = &groups.back();
    }
    g->positions.push_back(i);
  }
  return groups;
}

}  // namespace tracesel::flow
