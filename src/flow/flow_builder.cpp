#include "flow/flow_builder.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace tracesel::flow {

namespace {

/// Kahn's algorithm; returns false if the graph has a cycle.
bool is_dag(std::size_t num_states, const std::vector<Transition>& ts) {
  std::vector<std::uint32_t> indegree(num_states, 0);
  for (const Transition& t : ts) ++indegree[t.to];
  std::queue<StateId> ready;
  for (StateId s = 0; s < num_states; ++s)
    if (indegree[s] == 0) ready.push(s);
  std::size_t visited = 0;
  std::vector<std::vector<StateId>> succ(num_states);
  for (const Transition& t : ts) succ[t.from].push_back(t.to);
  while (!ready.empty()) {
    const StateId s = ready.front();
    ready.pop();
    ++visited;
    for (StateId n : succ[s])
      if (--indegree[n] == 0) ready.push(n);
  }
  return visited == num_states;
}

/// Forward reachability over the transition relation (or backward if the
/// caller passes reversed transitions).
std::vector<bool> reachable_from(std::size_t num_states,
                                 const std::vector<StateId>& sources,
                                 const std::vector<std::vector<StateId>>& succ) {
  std::vector<bool> seen(num_states, false);
  std::queue<StateId> work;
  for (StateId s : sources) {
    if (!seen[s]) {
      seen[s] = true;
      work.push(s);
    }
  }
  while (!work.empty()) {
    const StateId s = work.front();
    work.pop();
    for (StateId n : succ[s]) {
      if (!seen[n]) {
        seen[n] = true;
        work.push(n);
      }
    }
  }
  return seen;
}

}  // namespace

FlowBuilder::FlowBuilder(std::string name) : name_(std::move(name)) {
  if (name_.empty()) throw std::invalid_argument("FlowBuilder: empty name");
}

FlowBuilder& FlowBuilder::state(std::string name, std::uint8_t flags) {
  if (name.empty())
    throw std::invalid_argument("FlowBuilder: empty state name");
  if (std::find(state_names_.begin(), state_names_.end(), name) !=
      state_names_.end())
    throw std::invalid_argument("FlowBuilder: duplicate state '" + name +
                                "' in flow '" + name_ + "'");
  state_names_.push_back(std::move(name));
  flags_.push_back(flags);
  return *this;
}

StateId FlowBuilder::require(std::string_view state_name) const {
  const auto it =
      std::find(state_names_.begin(), state_names_.end(), state_name);
  if (it == state_names_.end())
    throw std::invalid_argument("FlowBuilder: unknown state '" +
                                std::string(state_name) + "' in flow '" +
                                name_ + "'");
  return static_cast<StateId>(it - state_names_.begin());
}

FlowBuilder& FlowBuilder::initial(std::string_view state_name) {
  flags_[require(state_name)] |= kInitial;
  return *this;
}

FlowBuilder& FlowBuilder::stop(std::string_view state_name) {
  flags_[require(state_name)] |= kStop;
  return *this;
}

FlowBuilder& FlowBuilder::atomic(std::string_view state_name) {
  flags_[require(state_name)] |= kAtomic;
  return *this;
}

FlowBuilder& FlowBuilder::transition(std::string_view from, MessageId message,
                                     std::string_view to) {
  transitions_.push_back(Transition{require(from), message, require(to)});
  return *this;
}

Flow FlowBuilder::build(const MessageCatalog& catalog) const {
  const std::size_t n = state_names_.size();
  if (n == 0)
    throw std::invalid_argument("Flow '" + name_ + "': no states");

  Flow f;
  f.name_ = name_;
  f.state_names_ = state_names_;
  f.initial_mask_.assign(n, false);
  f.stop_mask_.assign(n, false);
  f.atomic_mask_.assign(n, false);

  for (StateId s = 0; s < n; ++s) {
    if (flags_[s] & kInitial) {
      f.initial_.push_back(s);
      f.initial_mask_[s] = true;
    }
    if (flags_[s] & kStop) {
      f.stop_.push_back(s);
      f.stop_mask_[s] = true;
    }
    if (flags_[s] & kAtomic) {
      f.atomic_.push_back(s);
      f.atomic_mask_[s] = true;
    }
    // Def. 1 requires Sp and Atom disjoint.
    if ((flags_[s] & kStop) && (flags_[s] & kAtomic))
      throw std::invalid_argument("Flow '" + name_ + "': state '" +
                                  state_names_[s] +
                                  "' cannot be both stop and atomic");
  }
  if (f.initial_.empty())
    throw std::invalid_argument("Flow '" + name_ + "': no initial state");
  if (f.stop_.empty())
    throw std::invalid_argument("Flow '" + name_ + "': no stop state");

  // Messages must exist in the catalog (get() throws otherwise) and every
  // transition must reference declared states (guaranteed by require()).
  for (const Transition& t : transitions_) {
    (void)catalog.get(t.message);
    if (t.from == t.to)
      throw std::invalid_argument("Flow '" + name_ +
                                  "': self-loop on state '" +
                                  state_names_[t.from] + "' (flows are DAGs)");
  }

  if (!is_dag(n, transitions_))
    throw std::invalid_argument("Flow '" + name_ + "': transition graph has "
                                "a cycle; flows must be DAGs (Def. 1)");

  // Reachability sanity: every state reachable from S0, and every state can
  // reach Sp, so all maximal paths are executions (Def. 2).
  std::vector<std::vector<StateId>> succ(n), pred(n);
  for (const Transition& t : transitions_) {
    succ[t.from].push_back(t.to);
    pred[t.to].push_back(t.from);
  }
  const auto fwd = reachable_from(n, f.initial_, succ);
  const auto bwd = reachable_from(n, f.stop_, pred);
  for (StateId s = 0; s < n; ++s) {
    if (!fwd[s])
      throw std::invalid_argument("Flow '" + name_ + "': state '" +
                                  state_names_[s] +
                                  "' unreachable from initial states");
    if (!bwd[s])
      throw std::invalid_argument("Flow '" + name_ + "': state '" +
                                  state_names_[s] +
                                  "' cannot reach a stop state");
  }

  f.transitions_ = transitions_;
  f.outgoing_.assign(n, {});
  for (std::uint32_t i = 0; i < f.transitions_.size(); ++i)
    f.outgoing_[f.transitions_[i].from].push_back(i);

  for (const Transition& t : transitions_) {
    if (!f.uses_message(t.message)) f.messages_.push_back(t.message);
  }
  std::sort(f.messages_.begin(), f.messages_.end());
  return f;
}

}  // namespace tracesel::flow
