#pragma once
// Flow collateral linting. Architectural flow specs are hand-written (or
// generated from informal docs); these checks catch the mistakes that
// silently degrade trace quality before anyone runs a selection:
//
//   unused-message       declared but labels no transition — dead collateral
//   wide-unpackable      wider than the buffer with no subgroups: the
//                        selector can never trace any part of it
//   self-routed          source IP == destination IP: not an interface
//                        message, invisible to interface monitors
//   trivial-flow         a single-transition flow adds states but no
//                        ordering information
//   missing-atomic       a flow with a grant/transfer-style middle state
//                        chain but no atomic annotation interleaves in ways
//                        real hardware would serialize (heuristic, info
//                        level)

#include <string>
#include <vector>

#include "flow/flow.hpp"
#include "flow/message.hpp"

namespace tracesel::flow {

enum class LintSeverity { kInfo, kWarning };

struct LintDiagnostic {
  LintSeverity severity = LintSeverity::kWarning;
  std::string rule;     ///< kebab-case rule name
  std::string subject;  ///< message or flow name
  std::string text;
};

struct LintOptions {
  std::uint32_t buffer_width = 32;  ///< for the wide-unpackable rule
};

/// Lints a catalog + flow set; diagnostics are ordered by rule then
/// subject, deterministically.
std::vector<LintDiagnostic> lint(const MessageCatalog& catalog,
                                 const std::vector<const Flow*>& flows,
                                 const LintOptions& options = {});

std::string to_string(LintSeverity severity);

}  // namespace tracesel::flow
