#include "flow/flow.hpp"

#include <algorithm>
#include <stdexcept>

namespace tracesel::flow {

const std::string& Flow::state_name(StateId s) const {
  if (s >= state_names_.size())
    throw std::out_of_range("Flow '" + name_ + "': bad state id");
  return state_names_[s];
}

std::optional<StateId> Flow::find_state(std::string_view name) const {
  for (std::size_t i = 0; i < state_names_.size(); ++i) {
    if (state_names_[i] == name) return static_cast<StateId>(i);
  }
  return std::nullopt;
}

StateId Flow::require_state(std::string_view name) const {
  if (auto s = find_state(name)) return *s;
  throw std::out_of_range("Flow '" + name_ + "': unknown state '" +
                          std::string(name) + "'");
}

bool Flow::is_initial(StateId s) const {
  return s < initial_mask_.size() && initial_mask_[s];
}

bool Flow::is_stop(StateId s) const {
  return s < stop_mask_.size() && stop_mask_[s];
}

bool Flow::is_atomic(StateId s) const {
  return s < atomic_mask_.size() && atomic_mask_[s];
}

const std::vector<std::uint32_t>& Flow::outgoing(StateId s) const {
  if (s >= outgoing_.size())
    throw std::out_of_range("Flow '" + name_ + "': bad state id");
  return outgoing_[s];
}

bool Flow::uses_message(MessageId m) const {
  return std::find(messages_.begin(), messages_.end(), m) != messages_.end();
}

}  // namespace tracesel::flow
