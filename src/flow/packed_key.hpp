#pragma once
// Bit-packed product-state keys and their flat open-addressing interner.
//
// A product state of U = F1 ||| ... ||| Fk is a tuple of k component flow
// states. Materializing one heap std::vector<StateId> per node (plus an
// unordered_map node table full of pointer-chasing buckets) dominates both
// the memory footprint and the build time of InterleavedFlow once instance
// counts grow. Instead each component i is given ceil(log2 |S_i|) bits
// (at least one) and the tuple is packed into consecutive 64-bit words —
// one word covers 16+ components for typical flows; wider tuples spill
// into additional words, components never straddling a word boundary.
// Keys live contiguously in one flat array indexed by NodeId, and the
// node table is a power-of-two open-addressing slot vector of NodeIds
// that compares against that array — no per-node allocation anywhere.

#include <cstddef>
#include <cstdint>
#include <bit>
#include <vector>

#include "flow/indexed_flow.hpp"
#include "flow/types.hpp"

namespace tracesel::flow {

/// Packs/unpacks component-state tuples into fixed-width word arrays.
class KeyCodec {
 public:
  KeyCodec() = default;

  explicit KeyCodec(const std::vector<IndexedFlow>& instances) {
    comps_.reserve(instances.size());
    std::uint32_t word = 0;
    std::uint32_t bit = 0;
    for (const IndexedFlow& inst : instances) {
      const std::uint32_t ns = inst.flow->num_states();
      const std::uint32_t bits =
          ns <= 1 ? 1u : static_cast<std::uint32_t>(std::bit_width(ns - 1));
      if (bit + bits > 64) {  // wide-key fallback: spill to the next word
        ++word;
        bit = 0;
      }
      const std::uint64_t mask =
          bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
      comps_.push_back(Component{word, bit, mask});
      bit += bits;
    }
    words_ = word + 1;
  }

  std::size_t components() const { return comps_.size(); }
  /// 64-bit words per packed key (1 unless the tuple needs > 64 bits).
  std::size_t words() const { return words_; }

  void encode(const StateId* tuple, std::uint64_t* out) const {
    for (std::size_t w = 0; w < words_; ++w) out[w] = 0;
    for (std::size_t i = 0; i < comps_.size(); ++i)
      out[comps_[i].word] |= static_cast<std::uint64_t>(tuple[i])
                             << comps_[i].bit;
  }

  void decode(const std::uint64_t* in, StateId* tuple) const {
    for (std::size_t i = 0; i < comps_.size(); ++i)
      tuple[i] = static_cast<StateId>((in[comps_[i].word] >> comps_[i].bit) &
                                      comps_[i].mask);
  }

  StateId component(const std::uint64_t* in, std::size_t i) const {
    return static_cast<StateId>((in[comps_[i].word] >> comps_[i].bit) &
                                comps_[i].mask);
  }

 private:
  struct Component {
    std::uint32_t word = 0;
    std::uint32_t bit = 0;
    std::uint64_t mask = 0;
  };
  std::vector<Component> comps_;
  std::size_t words_ = 1;
};

/// Flat open-addressing table interning packed keys into dense NodeIds.
/// Key storage is one contiguous array (NodeId * words per key); the hash
/// table stores NodeIds only, so growth rehashes 4 bytes per node.
class KeyInterner {
 public:
  KeyInterner() = default;

  explicit KeyInterner(std::size_t words) : words_(words) { rehash(1024); }

  std::size_t size() const { return count_; }

  /// Total slot inspections across intern()/find() — the obs layer
  /// reports this as "interleave.interner.probes" (probes/lookup ≈ 1 means
  /// the table is healthy).
  std::uint64_t probes() const { return probes_; }

  const std::uint64_t* key(std::uint32_t id) const {
    return keys_.data() + static_cast<std::size_t>(id) * words_;
  }

  /// Returns the id of `k`, inserting it if new (`inserted` reports which).
  std::uint32_t intern(const std::uint64_t* k, bool& inserted) {
    if ((count_ + 1) * 10 >= slots_.size() * 7) rehash(slots_.size() * 2);
    std::size_t s = probe_start(k);
    for (;; s = (s + 1) & mask_) {
      ++probes_;
      const std::uint32_t id = slots_[s];
      if (id == kInvalidNode) break;
      if (equal(key(id), k)) {
        inserted = false;
        return id;
      }
    }
    const std::uint32_t id = static_cast<std::uint32_t>(count_++);
    slots_[s] = id;
    keys_.insert(keys_.end(), k, k + words_);
    inserted = true;
    return id;
  }

  /// Lookup without insertion; kInvalidNode if absent.
  std::uint32_t find(const std::uint64_t* k) const {
    std::size_t s = probe_start(k);
    for (;; s = (s + 1) & mask_) {
      ++probes_;
      const std::uint32_t id = slots_[s];
      if (id == kInvalidNode) return kInvalidNode;
      if (equal(key(id), k)) return id;
    }
  }

 private:
  static std::uint64_t mix(std::uint64_t x) {  // splitmix64 finalizer
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  std::size_t probe_start(const std::uint64_t* k) const {
    std::uint64_t h = 0x2545f4914f6cdd1dull;
    for (std::size_t w = 0; w < words_; ++w) h = mix(h ^ k[w]);
    return static_cast<std::size_t>(h) & mask_;
  }

  bool equal(const std::uint64_t* a, const std::uint64_t* b) const {
    for (std::size_t w = 0; w < words_; ++w)
      if (a[w] != b[w]) return false;
    return true;
  }

  void rehash(std::size_t cap) {
    slots_.assign(cap, kInvalidNode);
    mask_ = cap - 1;
    for (std::uint32_t id = 0; id < count_; ++id) {
      std::size_t s = probe_start(key(id));
      while (slots_[s] != kInvalidNode) s = (s + 1) & mask_;
      slots_[s] = id;
    }
  }

  std::size_t words_ = 1;
  std::vector<std::uint64_t> keys_;
  std::size_t count_ = 0;
  std::vector<std::uint32_t> slots_;
  std::size_t mask_ = 0;
  mutable std::uint64_t probes_ = 0;
};

}  // namespace tracesel::flow
