#include "flow/dot.hpp"

#include <sstream>

namespace tracesel::flow {

namespace {
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
}  // namespace

std::string to_dot(const Flow& flow, const MessageCatalog& catalog) {
  std::ostringstream os;
  os << "digraph \"" << escape(flow.name()) << "\" {\n"
     << "  rankdir=LR;\n  node [shape=circle];\n";
  for (StateId s = 0; s < flow.num_states(); ++s) {
    os << "  s" << s << " [label=\"" << escape(flow.state_name(s)) << '"';
    if (flow.is_stop(s)) os << ", shape=doublecircle";
    if (flow.is_atomic(s)) os << ", style=filled, fillcolor=lightgray";
    if (flow.is_initial(s)) os << ", penwidth=2";
    os << "];\n";
  }
  for (const Transition& t : flow.transitions()) {
    os << "  s" << t.from << " -> s" << t.to << " [label=\""
       << escape(catalog.get(t.message).name) << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const InterleavedFlow& u, const MessageCatalog& catalog) {
  std::ostringstream os;
  os << "digraph interleaving {\n  rankdir=LR;\n  node [shape=circle];\n";
  for (NodeId n = 0; n < u.num_nodes(); ++n) {
    os << "  n" << n << " [label=\"" << escape(u.node_name(n)) << '"';
    if (u.is_stop(n)) os << ", shape=doublecircle";
    os << "];\n";
  }
  for (const auto& e : u.edges()) {
    os << "  n" << e.from << " -> n" << e.to << " [label=\"" << e.label.index
       << ':' << escape(catalog.get(e.label.message).name) << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace tracesel::flow
