#pragma once
// Structural statistics of flows and interleavings — the numbers a DfD
// architect inspects before committing to a trace plan (and what
// `tracesel inspect` prints).

#include <cstdint>
#include <string>
#include <vector>

#include "flow/interleaved_flow.hpp"

namespace tracesel::flow {

struct FlowStats {
  std::string name;
  std::size_t states = 0;
  std::size_t transitions = 0;
  std::size_t messages = 0;
  std::size_t atomic_states = 0;
  std::size_t stop_states = 0;
  /// Number of distinct executions of the flow alone.
  double executions = 0.0;
  /// Max outgoing transitions of any state (1 = pure chain).
  std::size_t max_branching = 0;
  /// Longest initial->stop path length in transitions.
  std::size_t depth = 0;
};

FlowStats flow_stats(const Flow& flow);

struct InterleavingStats {
  /// Concrete product state/edge counts — the semantic size of U,
  /// independent of whether the engine stores orbit representatives.
  std::uint64_t nodes = 0;
  std::uint64_t edges = 0;
  /// What the engine actually holds in memory (== nodes/edges when the
  /// engine is unreduced; the symmetry win is nodes / materialized_nodes).
  std::size_t materialized_nodes = 0;
  std::size_t materialized_edges = 0;
  std::uint64_t stop_nodes = 0;
  std::size_t indexed_messages = 0;
  double paths = 0.0;
  /// nodes / product of component state counts: how much the Atom mutex
  /// and reachability prune the full product (1.0 = nothing pruned).
  double density = 0.0;
  /// Average outgoing edges per non-stop node.
  double mean_branching = 0.0;
};

InterleavingStats interleaving_stats(const InterleavedFlow& u);

/// Occurrence counts per (unindexed) message over the interleaving's
/// edges, sorted descending — the raw marginals behind the paper's p(y).
std::vector<std::pair<MessageId, std::size_t>> message_histogram(
    const InterleavedFlow& u);

}  // namespace tracesel::flow
