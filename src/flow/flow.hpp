#pragma once
// The flow DAG (Def. 1 of the paper):
//   F = <S, S0, Sp, E, delta, Atom>
// S     : flow states
// S0    : initial states
// Sp    : stop states (final states of a successful completion), disjoint
//         from Atom
// E     : messages labeling transitions
// delta : S x E x S transition relation
// Atom  : atomic (indivisible) states; while any concurrent flow instance is
//         in an atomic state, no other instance may take a step (Def. 5).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "flow/message.hpp"
#include "flow/types.hpp"

namespace tracesel::flow {

/// One labeled transition s --m--> t.
struct Transition {
  StateId from = kInvalidState;
  MessageId message = kInvalidMessage;
  StateId to = kInvalidState;

  friend bool operator==(const Transition&, const Transition&) = default;
};

/// An immutable, validated flow DAG. Construct through FlowBuilder.
class Flow {
 public:
  const std::string& name() const { return name_; }

  std::size_t num_states() const { return state_names_.size(); }
  const std::string& state_name(StateId s) const;
  std::optional<StateId> find_state(std::string_view name) const;
  StateId require_state(std::string_view name) const;

  const std::vector<StateId>& initial_states() const { return initial_; }
  const std::vector<StateId>& stop_states() const { return stop_; }
  const std::vector<StateId>& atomic_states() const { return atomic_; }

  bool is_initial(StateId s) const;
  bool is_stop(StateId s) const;
  bool is_atomic(StateId s) const;

  const std::vector<Transition>& transitions() const { return transitions_; }

  /// Outgoing transitions of a state (indices into transitions()).
  const std::vector<std::uint32_t>& outgoing(StateId s) const;

  /// The distinct messages used on this flow's transitions (the set E).
  const std::vector<MessageId>& messages() const { return messages_; }

  /// True if `m` labels at least one transition.
  bool uses_message(MessageId m) const;

 private:
  friend class FlowBuilder;
  Flow() = default;

  std::string name_;
  std::vector<std::string> state_names_;
  std::vector<StateId> initial_;
  std::vector<StateId> stop_;
  std::vector<StateId> atomic_;
  std::vector<Transition> transitions_;
  std::vector<std::vector<std::uint32_t>> outgoing_;
  std::vector<MessageId> messages_;
  std::vector<bool> initial_mask_, stop_mask_, atomic_mask_;
};

}  // namespace tracesel::flow
