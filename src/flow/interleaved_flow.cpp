#include "flow/interleaved_flow.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>

#include "flow/kernel.hpp"
#include "util/obs.hpp"

namespace tracesel::flow {

namespace {

// Orbit weights need n_g! for every same-flow group; 20! is the largest
// factorial representable in 64 bits.
constexpr std::uint32_t kMaxGroupSize = 20;

std::uint64_t factorial(std::uint32_t n) {
  std::uint64_t f = 1;
  for (std::uint32_t i = 2; i <= n; ++i) f *= i;
  return f;
}

std::uint64_t checked_u64(unsigned __int128 v, const char* what) {
  if (v > static_cast<unsigned __int128>(~std::uint64_t{0}))
    throw std::overflow_error(std::string("InterleavedFlow: ") + what +
                              " exceeds 64 bits");
  return static_cast<std::uint64_t>(v);
}

}  // namespace

std::vector<IndexedFlow> make_instances(const std::vector<const Flow*>& flows,
                                        std::uint32_t instances_per_flow) {
  if (instances_per_flow == 0)
    throw std::invalid_argument("make_instances: zero instances per flow");
  std::vector<IndexedFlow> out;
  out.reserve(flows.size() * instances_per_flow);
  for (const Flow* f : flows) {
    if (f == nullptr)
      throw std::invalid_argument("make_instances: null flow");
    for (std::uint32_t i = 1; i <= instances_per_flow; ++i)
      out.push_back(IndexedFlow{f, i});
  }
  return out;
}

InterleavedFlow InterleavedFlow::build(std::vector<IndexedFlow> instances,
                                       std::size_t max_nodes) {
  InterleaveOptions options;
  options.max_nodes = max_nodes;
  return build(std::move(instances), options);
}

InterleavedFlow InterleavedFlow::build(std::vector<IndexedFlow> instances,
                                       const InterleaveOptions& options) {
  // Degrading instead of throwing is opt-in via the memory budget: without
  // one, an over-cap unreduced build keeps its historical contract and
  // throws std::length_error.
  const bool may_fall_back =
      !options.symmetry_reduction && options.mem_budget_mb > 0;
  try {
    InterleavedFlow u = may_fall_back ? build_impl(instances, options)
                                      : build_impl(std::move(instances),
                                                   options);
    if (u.degraded()) OBS_COUNT("resilience.degradations", 1);
    return u;
  } catch (const std::length_error&) {
    if (!may_fall_back) throw;
    // The unreduced product blew the (possibly budget-lowered) node cap:
    // retry with the symmetry-reduced engine, which answers every weighted
    // query identically from far fewer materialized nodes. Reduction has
    // its own preconditions (group size <= 20, symmetric atomic rule) — if
    // they fail, the original capacity error is the honest diagnosis.
    InterleaveOptions reduced = options;
    reduced.symmetry_reduction = true;
    try {
      InterleavedFlow u = build_impl(std::move(instances), reduced);
      if (!u.degradation_.empty()) u.degradation_ += "; ";
      u.degradation_ +=
          "fell back to the symmetry-reduced engine (unreduced product "
          "exceeds the node cap)";
      OBS_COUNT("resilience.degradations", 1);
      return u;
    } catch (const std::invalid_argument&) {
      throw std::length_error(
          "InterleavedFlow: reachable product exceeds max_nodes and the "
          "symmetry-reduced fallback is not applicable");
    }
  }
}

InterleavedFlow InterleavedFlow::build_impl(std::vector<IndexedFlow> instances,
                                            const InterleaveOptions& options) {
  OBS_SPAN("interleave.build");
  if (instances.empty())
    throw std::invalid_argument("InterleavedFlow: no instances");
  for (const IndexedFlow& inst : instances) {
    if (inst.flow == nullptr)
      throw std::invalid_argument("InterleavedFlow: null flow instance");
    // The product construction assumes a unique initial state per component;
    // multi-initial flows can be modeled with a shared pre-initial state.
    if (inst.flow->initial_states().size() != 1)
      throw std::invalid_argument("InterleavedFlow: flow '" +
                                  inst.flow->name() +
                                  "' must have exactly one initial state");
  }
  if (!legally_indexed(instances))
    throw std::invalid_argument(
        "InterleavedFlow: instances are not legally indexed (duplicate "
        "<flow, index> pair, Def. 4)");

  InterleavedFlow u;
  u.instances_ = std::move(instances);
  u.options_ = options;
  u.reduced_ = options.symmetry_reduction;
  u.groups_ = group_instances(u.instances_);
  u.group_of_.resize(u.instances_.size());
  for (std::uint32_t g = 0; g < u.groups_.size(); ++g) {
    if (u.reduced_ && u.groups_[g].positions.size() > kMaxGroupSize)
      throw std::invalid_argument(
          "InterleavedFlow: more than 20 instances of flow '" +
          u.groups_[g].flow->name() +
          "' — orbit weights would overflow; disable symmetry_reduction");
    for (std::uint32_t p : u.groups_[g].positions) u.group_of_[p] = g;
  }

  u.codec_ = KeyCodec(u.instances_);
  u.interner_ = KeyInterner(u.codec_.words());

  if (options.mem_budget_mb > 0) {
    // Deterministic per-node storage estimate: packed key words + one
    // open-addressing slot + ~4 outgoing edges with CSR overhead. Derived
    // from counts only (never runtime RSS) so the same spec hits the same
    // cap on every run and bit-identity of results is preserved.
    const std::size_t per_node = u.codec_.words() * 8 + 16 +
                                 4 * (sizeof(Edge) + 8);
    const std::size_t budget_nodes =
        std::max<std::size_t>(1024, options.mem_budget_mb * (std::size_t{1}
                                                             << 20) /
                                        per_node);
    if (budget_nodes < u.options_.max_nodes) {
      u.options_.max_nodes = budget_nodes;
      u.degradation_ = "node cap lowered to " + std::to_string(budget_nodes) +
                       " by the " + std::to_string(options.mem_budget_mb) +
                       " MiB memory budget";
    }
  }

  u.build_graph();
  u.finalize_weights_and_occurrences();
  OBS_COUNT("interleave.builds", 1);
  OBS_COUNT("interleave.nodes", u.num_nodes_);
  OBS_COUNT("interleave.edges", u.edges_.size());
  OBS_COUNT("interleave.interner.probes", u.interner_.probes());
  OBS_GAUGE_MAX("interleave.product_states", u.product_states_);
  OBS_GAUGE_MAX("interleave.product_edges", u.product_edges_);
  if (u.reduced_ && options.cross_check) u.verify_against_unreduced();
  return u;
}

void InterleavedFlow::build_graph() {
  OBS_SPAN("interleave.graph");
  const std::size_t k = instances_.size();
  const std::size_t words = codec_.words();

  std::vector<StateId> cur(k);
  std::vector<StateId> nxt(k);
  std::vector<std::uint64_t> kw(words);
  std::vector<StateId> scratch;  // group-sort buffer

  auto sort_group = [&](std::vector<StateId>& tuple, std::uint32_t g) {
    const auto& pos = groups_[g].positions;
    if (pos.size() < 2) return;
    scratch.clear();
    for (std::uint32_t p : pos) scratch.push_back(tuple[p]);
    std::sort(scratch.begin(), scratch.end());
    for (std::size_t j = 0; j < pos.size(); ++j) tuple[pos[j]] = scratch[j];
  };

  auto intern = [&](const std::vector<StateId>& tuple) -> NodeId {
    codec_.encode(tuple.data(), kw.data());
    bool inserted = false;
    const NodeId id = interner_.intern(kw.data(), inserted);
    if (inserted && interner_.size() > options_.max_nodes)
      throw std::length_error(
          "InterleavedFlow: reachable product exceeds max_nodes");
    return id;
  };

  for (std::size_t i = 0; i < k; ++i)
    cur[i] = instances_[i].flow->initial_states().front();
  if (reduced_)
    for (std::uint32_t g = 0; g < groups_.size(); ++g) sort_group(cur, g);
  initial_.push_back(intern(cur));

  // Expansion multiplicity per position: under reduction, each run of equal
  // states within a group is expanded once from its first position, standing
  // for `run length` concrete movers per concrete source state.
  std::vector<std::uint32_t> mult(k, 1);
  out_offset_.assign(1, 0);

  // Nodes are interned in discovery order, which is exactly the expansion
  // order, so a plain id sweep doubles as the worklist and the edge list
  // comes out sorted by source — the CSR offsets need no second pass.
  for (NodeId n = 0; static_cast<std::size_t>(n) < interner_.size(); ++n) {
    if ((n & 1023) == 0 && options_.cancel.cancelled())
      throw util::CancelledError("interleave.build");
    codec_.decode(interner_.key(n), cur.data());

    // Which components sit in atomic states? If any does, only it may move
    // (generalized Def. 5 rules i/ii).
    std::size_t atomic_holder = k;  // k == none
    if (reduced_) {
      std::size_t atomics = 0;
      for (std::size_t i = 0; i < k; ++i) {
        if (instances_[i].flow->is_atomic(cur[i])) {
          if (atomic_holder == k) atomic_holder = i;
          ++atomics;
        }
      }
      if (atomics > 1)
        throw std::invalid_argument(
            "InterleavedFlow: reached a product state with two atomic "
            "components — the atomic-holder rule is not symmetric here; "
            "disable symmetry_reduction");
      for (std::uint32_t g = 0; g < groups_.size(); ++g) {
        const auto& pos = groups_[g].positions;
        for (std::size_t j = 0; j < pos.size(); ++j) {
          if (j > 0 && cur[pos[j]] == cur[pos[j - 1]]) {
            mult[pos[j]] = 0;
            std::size_t f = j;  // first position of this run
            while (f > 0 && cur[pos[f]] == cur[pos[f - 1]]) --f;
            ++mult[pos[f]];
          } else {
            mult[pos[j]] = 1;
          }
        }
      }
    } else {
      for (std::size_t i = 0; i < k; ++i) {
        if (instances_[i].flow->is_atomic(cur[i])) {
          atomic_holder = i;
          break;  // by construction at most one component is atomic
        }
      }
    }

    for (std::size_t i = 0; i < k; ++i) {
      if (atomic_holder != k && atomic_holder != i) continue;
      const std::uint32_t m = reduced_ ? mult[i] : 1;
      if (m == 0) continue;
      const Flow& f = *instances_[i].flow;
      for (std::uint32_t ti : f.outgoing(cur[i])) {
        const Transition& t = f.transitions()[ti];
        nxt = cur;
        nxt[i] = t.to;
        if (reduced_) sort_group(nxt, group_of_[i]);
        const NodeId tgt = intern(nxt);
        edges_.push_back(Edge{n,
                              IndexedMessage{t.message, instances_[i].index},
                              tgt, static_cast<std::uint32_t>(i)});
        if (reduced_) edge_mult_.push_back(m);
      }
    }
    out_offset_.push_back(static_cast<std::uint32_t>(edges_.size()));
  }
  num_nodes_ = interner_.size();
}

void InterleavedFlow::finalize_weights_and_occurrences() {
  OBS_SPAN("interleave.weights");
  const std::size_t k = instances_.size();
  std::vector<StateId> cur(k);

  stop_mask_.assign(num_nodes_, false);
  if (reduced_) node_weight_.resize(num_nodes_);

  for (NodeId n = 0; static_cast<std::size_t>(n) < num_nodes_; ++n) {
    codec_.decode(interner_.key(n), cur.data());
    bool all_stop = true;
    for (std::size_t i = 0; i < k; ++i) {
      if (!instances_[i].flow->is_stop(cur[i])) {
        all_stop = false;
        break;
      }
    }
    if (all_stop) {
      stop_mask_[n] = true;
      stop_.push_back(n);
    }
    if (reduced_) {
      // Orbit weight: number of concrete tuples the sorted representative
      // stands for = prod_g n_g! / prod_runs len!.
      std::uint64_t w = 1;
      for (const InstanceGroup& grp : groups_) {
        const auto& pos = grp.positions;
        w *= factorial(static_cast<std::uint32_t>(pos.size()));
        std::uint32_t run = 1;
        for (std::size_t j = 1; j <= pos.size(); ++j) {
          if (j < pos.size() && cur[pos[j]] == cur[pos[j - 1]]) {
            ++run;
          } else {
            w /= factorial(run);
            run = 1;
          }
        }
      }
      node_weight_[n] = w;
    }
  }

  if (!reduced_) {
    product_states_ = num_nodes_;
    product_edges_ = edges_.size();
    for (const Edge& e : edges_) {
      auto [it, fresh] = occurrence_counts_.try_emplace(e.label, 0u);
      if (fresh) indexed_messages_.push_back(e.label);
      ++it->second;
    }
    std::sort(indexed_messages_.begin(), indexed_messages_.end());
    return;
  }

  unsigned __int128 states = 0;
  for (std::uint64_t w : node_weight_) states += w;
  product_states_ = checked_u64(states, "product state count");

  // Concrete edges represented by quotient edge e: W(from) * mu(e). Each
  // group's total per message splits evenly over its n_g indices (every
  // class count is divisible by n_g — DESIGN.md §9).
  unsigned __int128 total_edges = 0;
  std::map<std::pair<std::uint32_t, MessageId>, unsigned __int128> per_gm;
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    const unsigned __int128 c =
        static_cast<unsigned __int128>(node_weight_[edges_[e].from]) *
        edge_mult_[e];
    total_edges += c;
    per_gm[{group_of_[edges_[e].instance], edges_[e].label.message}] += c;
  }
  product_edges_ = checked_u64(total_edges, "product edge count");

  for (const auto& [gm, total] : per_gm) {
    const InstanceGroup& grp = groups_[gm.first];
    const unsigned __int128 n_g = grp.positions.size();
    if (total % n_g != 0)
      throw std::logic_error(
          "InterleavedFlow: orbit occurrence total not divisible by group "
          "size (internal invariant violated)");
    const std::uint64_t per_index =
        checked_u64(total / n_g, "occurrence count");
    for (std::uint32_t p : grp.positions)
      occurrence_counts_[IndexedMessage{gm.second, instances_[p].index}] +=
          per_index;
  }
  for (const auto& [im, cnt] : occurrence_counts_)
    indexed_messages_.push_back(im);
  std::sort(indexed_messages_.begin(), indexed_messages_.end());
}

InterleavedFlow::OutgoingRange InterleavedFlow::outgoing(NodeId n) const {
  if (static_cast<std::size_t>(n) >= num_nodes_)
    throw std::out_of_range("InterleavedFlow: bad node id");
  return OutgoingRange(out_offset_[n], out_offset_[n + 1]);
}

std::vector<StateId> InterleavedFlow::node_key(NodeId n) const {
  if (static_cast<std::size_t>(n) >= num_nodes_)
    throw std::out_of_range("InterleavedFlow: bad node id");
  std::vector<StateId> key(instances_.size());
  codec_.decode(interner_.key(n), key.data());
  return key;
}

std::string InterleavedFlow::node_name(NodeId n) const {
  const auto key = node_key(n);
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < key.size(); ++i) {
    if (i) os << ',';
    os << instances_[i].flow->state_name(key[i]) << ':'
       << instances_[i].index;
  }
  os << ')';
  return os.str();
}

std::size_t InterleavedFlow::occurrences(const IndexedMessage& im) const {
  const auto it = occurrence_counts_.find(im);
  return it == occurrence_counts_.end() ? 0 : it->second;
}

const InterleavedFlow& InterleavedFlow::concrete() const {
  if (!reduced_) return *this;
  std::lock_guard<std::mutex> lock(*concrete_.mutex);
  if (!concrete_.flow) {
    InterleaveOptions opt = options_;
    opt.symmetry_reduction = false;
    opt.cross_check = false;
    // build_impl, not build: the fallback logic would hand back another
    // *reduced* engine when the unreduced product is over budget, and a
    // reduced flow cached as its own concrete() would answer
    // symmetry-breaking queries wrong.
    concrete_.flow =
        std::make_unique<InterleavedFlow>(build_impl(instances_, opt));
  }
  return *concrete_.flow;
}

const kernel::Program& InterleavedFlow::program() const {
  return *shared_program();
}

std::shared_ptr<const kernel::Program> InterleavedFlow::shared_program()
    const {
  std::lock_guard<std::mutex> lock(*kernel_.mutex);
  if (!kernel_.program)
    kernel_.program = std::make_shared<const kernel::Program>(
        kernel::Program::compile(*this));
  return kernel_.program;
}

void InterleavedFlow::adopt_program(
    std::shared_ptr<const kernel::Program> program) const {
  if (!program) return;
  std::lock_guard<std::mutex> lock(*kernel_.mutex);
  if (!kernel_.program) kernel_.program = std::move(program);
}

double InterleavedFlow::count_paths() const {
  if (options_.kernel == KernelMode::kCompiled)
    return program().count_paths();
  // Executions end at a stop tuple (Def. 2). In all flows in this repo stop
  // states are sinks, so "reaches a stop node" and "ends at a stop node"
  // coincide; we count the latter by backward DP over the DAG. Under
  // reduction every edge counts mu concrete successors per concrete source,
  // and every concrete member of an orbit has the same path count, so the
  // weighted DP equals the concrete total exactly (DESIGN.md §9).
  std::vector<double> memo(num_nodes(), -1.0);
  // Iterative post-order to avoid recursion depth issues on deep products.
  std::vector<std::pair<NodeId, bool>> stack;
  double total = 0.0;
  for (NodeId r : initial_) {
    stack.emplace_back(r, false);
    while (!stack.empty()) {
      auto [n, processed] = stack.back();
      stack.pop_back();
      if (memo[n] >= 0.0) continue;
      if (!processed) {
        stack.emplace_back(n, true);
        for (std::uint32_t e : outgoing(n)) {
          const NodeId m = edges_[e].to;
          if (memo[m] < 0.0) stack.emplace_back(m, false);
        }
      } else {
        double paths = stop_mask_[n] ? 1.0 : 0.0;
        for (std::uint32_t e : outgoing(n))
          paths += static_cast<double>(edge_multiplicity(e)) *
                   memo[edges_[e].to];
        memo[n] = paths;
      }
    }
    total += memo[r];
  }
  return total;
}

double InterleavedFlow::count_consistent_paths(
    const std::vector<MessageId>& selected,
    const std::vector<IndexedMessage>& observed) const {
  // Observation names concrete instance indices, which breaks the
  // permutation symmetry — answer on the unreduced product.
  if (reduced_) return concrete().count_consistent_paths(selected, observed);
  if (options_.kernel == KernelMode::kCompiled)
    return program().count_consistent_paths(selected, observed);

  // f(n, j) = number of stop-terminated paths from n whose projection onto
  // `selected` extends observed[j..] as a prefix. Memoized on (node, j).
  std::vector<bool> is_selected;
  {
    MessageId max_id = 0;
    for (MessageId m : selected) max_id = std::max(max_id, m);
    for (const Edge& e : edges_) max_id = std::max(max_id, e.label.message);
    is_selected.assign(static_cast<std::size_t>(max_id) + 1, false);
    for (MessageId m : selected) is_selected[m] = true;
  }
  const std::size_t olen = observed.size();
  for (const IndexedMessage& im : observed) {
    if (im.message >= is_selected.size() || !is_selected[im.message])
      throw std::invalid_argument(
          "count_consistent_paths: observed trace contains a message outside "
          "the selected combination");
  }

  // Distinct observed labels get small ids; every edge is classified once
  // up front so the DP inner loop does integer compares, not label
  // comparisons or searches.
  std::vector<IndexedMessage> kinds;
  std::vector<std::int32_t> obs_kind(olen);
  for (std::size_t j = 0; j < olen; ++j) {
    const auto it = std::find(kinds.begin(), kinds.end(), observed[j]);
    if (it == kinds.end()) {
      obs_kind[j] = static_cast<std::int32_t>(kinds.size());
      kinds.push_back(observed[j]);
    } else {
      obs_kind[j] = static_cast<std::int32_t>(it - kinds.begin());
    }
  }
  // -2: invisible edge; -1: visible but never observed; >=0: kind id.
  std::vector<std::int32_t> edge_code(edges_.size());
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    if (!is_selected[edges_[e].label.message]) {
      edge_code[e] = -2;
      continue;
    }
    const auto it = std::find(kinds.begin(), kinds.end(), edges_[e].label);
    edge_code[e] =
        it == kinds.end() ? -1 : static_cast<std::int32_t>(it - kinds.begin());
  }

  const std::size_t width = olen + 1;
  std::vector<double> memo(num_nodes() * width, -1.0);
  auto slot = [&](NodeId n, std::size_t j) -> double& {
    return memo[static_cast<std::size_t>(n) * width + j];
  };

  struct Item {
    NodeId n;
    std::uint32_t j;
    bool processed;
  };
  std::vector<Item> stack;
  double total = 0.0;
  for (NodeId r : initial_) {
    stack.push_back(Item{r, 0, false});
    while (!stack.empty()) {
      const Item it = stack.back();
      stack.pop_back();
      if (slot(it.n, it.j) >= 0.0) continue;
      // Successor (node, j') for an edge given matching rules.
      auto next_j = [&](std::uint32_t e) -> std::optional<std::uint32_t> {
        const std::int32_t code = edge_code[e];
        if (code == -2) return it.j;  // invisible step
        if (it.j < olen) {
          if (code == obs_kind[it.j]) return it.j + 1;
          return std::nullopt;  // visible mismatch kills the path
        }
        return it.j;  // prefix fully matched; extra visible messages fine
      };
      if (!it.processed) {
        stack.push_back(Item{it.n, it.j, true});
        for (std::uint32_t e : outgoing(it.n)) {
          if (auto j2 = next_j(e)) {
            if (slot(edges_[e].to, *j2) < 0.0)
              stack.push_back(Item{edges_[e].to, *j2, false});
          }
        }
      } else {
        double paths = 0.0;
        if (stop_mask_[it.n] && it.j == olen) paths += 1.0;
        for (std::uint32_t e : outgoing(it.n)) {
          if (auto j2 = next_j(e)) paths += slot(edges_[e].to, *j2);
        }
        slot(it.n, it.j) = paths;
      }
    }
    total += slot(r, 0);
  }
  return total;
}

double InterleavedFlow::count_consistent_paths_multiset(
    const std::vector<MessageId>& selected,
    const std::vector<IndexedMessage>& observed) const {
  if (reduced_)
    return concrete().count_consistent_paths_multiset(selected, observed);

  std::vector<bool> is_selected;
  {
    MessageId max_id = 0;
    for (MessageId m : selected) max_id = std::max(max_id, m);
    for (const Edge& e : edges_) max_id = std::max(max_id, e.label.message);
    is_selected.assign(static_cast<std::size_t>(max_id) + 1, false);
    for (MessageId m : selected) is_selected[m] = true;
  }

  // Distinct observed indexed messages with multiplicities; a consumption
  // state is a vector of per-kind counts, encoded in mixed radix.
  std::vector<IndexedMessage> kinds;
  std::vector<std::uint32_t> need;
  for (const IndexedMessage& im : observed) {
    if (im.message >= is_selected.size() || !is_selected[im.message])
      throw std::invalid_argument(
          "count_consistent_paths_multiset: observed trace contains a "
          "message outside the selected combination");
    const auto it = std::find(kinds.begin(), kinds.end(), im);
    if (it == kinds.end()) {
      kinds.push_back(im);
      need.push_back(1);
    } else {
      ++need[static_cast<std::size_t>(it - kinds.begin())];
    }
  }
  std::size_t num_cstates = 1;
  for (std::uint32_t c : need) {
    num_cstates *= c + 1;
    // The consumption lattice is exponential in distinct observed kinds;
    // refuse queries whose memo would not fit in memory rather than
    // crash allocating it. Ordered-semantics counting stays linear.
    if (num_cstates > (std::size_t{1} << 22) ||
        num_cstates * num_nodes() > (std::size_t{1} << 26))
      throw std::length_error(
          "count_consistent_paths_multiset: observation has too many "
          "distinct indexed messages for multiset counting; use the "
          "ordered variant");
  }
  const std::size_t full = num_cstates - 1;  // all radixes at max

  // radix stride per kind.
  std::vector<std::size_t> stride(kinds.size());
  {
    std::size_t s = 1;
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      stride[i] = s;
      s *= need[i] + 1;
    }
  }
  auto digit = [&](std::size_t cstate, std::size_t i) {
    return (cstate / stride[i]) % (need[i] + 1);
  };

  // Classify every edge once: -2 invisible, -1 visible non-observed kind,
  // >= 0 the observed kind consumed — the DP inner loop stops doing a
  // std::find over kinds per edge visit.
  std::vector<std::int32_t> edge_code(edges_.size());
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    if (!is_selected[edges_[e].label.message]) {
      edge_code[e] = -2;
      continue;
    }
    const auto it = std::find(kinds.begin(), kinds.end(), edges_[e].label);
    edge_code[e] =
        it == kinds.end() ? -1 : static_cast<std::int32_t>(it - kinds.begin());
  }

  std::vector<double> memo(num_nodes() * num_cstates, -1.0);
  auto slot = [&](NodeId n, std::size_t c) -> double& {
    return memo[static_cast<std::size_t>(n) * num_cstates + c];
  };

  // Successor consumption state for taking edge e in state c, or nullopt if
  // the edge is inconsistent with the observation.
  auto next_c = [&](std::uint32_t e,
                    std::size_t c) -> std::optional<std::size_t> {
    const std::int32_t code = edge_code[e];
    if (code == -2) return c;
    if (c == full) return c;  // prefix complete; visible suffix unrestricted
    if (code == -1) return std::nullopt;  // visible non-observed kind
    const std::size_t i = static_cast<std::size_t>(code);
    if (digit(c, i) >= need[i]) return std::nullopt;  // kind already consumed
    return c + stride[i];
  };

  struct Item {
    NodeId n;
    std::size_t c;
    bool processed;
  };
  std::vector<Item> stack;
  double total = 0.0;
  for (NodeId r : initial_) {
    stack.push_back(Item{r, 0, false});
    while (!stack.empty()) {
      const Item it = stack.back();
      stack.pop_back();
      if (slot(it.n, it.c) >= 0.0) continue;
      if (!it.processed) {
        stack.push_back(Item{it.n, it.c, true});
        for (std::uint32_t e : outgoing(it.n)) {
          if (auto c2 = next_c(e, it.c)) {
            if (slot(edges_[e].to, *c2) < 0.0)
              stack.push_back(Item{edges_[e].to, *c2, false});
          }
        }
      } else {
        double paths = 0.0;
        if (stop_mask_[it.n] && it.c == full) paths += 1.0;
        for (std::uint32_t e : outgoing(it.n)) {
          if (auto c2 = next_c(e, it.c)) paths += slot(edges_[e].to, *c2);
        }
        slot(it.n, it.c) = paths;
      }
    }
    total += slot(r, 0);
  }
  return total;
}

std::vector<InterleavedFlow::LabelClassHistogram>
InterleavedFlow::label_target_histograms() const {
  // The compiled fast path exists where the generic one is table-shaped
  // (unreduced edge counting); the reduced engine's orbit combinatorics
  // stay generic — both are bit-identical either way.
  if (!reduced_ && options_.kernel == KernelMode::kCompiled)
    return program().label_target_histograms();
  return reduced_ ? histograms_reduced() : histograms_unreduced();
}

std::vector<InterleavedFlow::LabelClassHistogram>
InterleavedFlow::histograms_unreduced() const {
  // cnt[y][x] = number of edges labeled y that lead to product state x.
  std::map<IndexedMessage, std::unordered_map<NodeId, std::uint64_t>> cnt;
  for (const Edge& e : edges_) ++cnt[e.label][e.to];
  std::vector<LabelClassHistogram> out;
  out.reserve(cnt.size());
  for (const auto& [label, targets] : cnt) {
    std::map<std::uint64_t, std::uint64_t> classes;
    for (const auto& [node, c] : targets) ++classes[c];
    out.push_back(LabelClassHistogram{
        label, {classes.begin(), classes.end()}});
  }
  return out;
}

std::vector<InterleavedFlow::LabelClassHistogram>
InterleavedFlow::histograms_reduced() const {
  // For a concrete state x in orbit B whose group-g index-i component sits
  // in state v, the number of concrete in-edges labeled <m,i> contributed
  // by group g depends only on (B, g, v): every legal flow-g transition
  // q -> m -> v whose predecessor orbit (one v swapped back to q) is
  // reachable adds one. Legality of the move is orbit-level too: the
  // predecessor's other components hold no atomic state iff
  // atomics(B) == [v atomic]. The concrete states of B with the index-i
  // slot of group g at v number W(B) * mu_g(v) / n_g — exactly divisible —
  // and slots of distinct groups are independent, so per-(m,i) class counts
  // come from a product over the groups that can emit <m,i>.
  const std::size_t k = instances_.size();
  const std::size_t words = codec_.words();

  // Per group: in-transitions by target state.
  std::vector<std::vector<std::vector<std::pair<MessageId, StateId>>>> in_by(
      groups_.size());
  std::map<MessageId, std::vector<std::uint32_t>> msg_groups;
  for (std::uint32_t g = 0; g < groups_.size(); ++g) {
    const Flow& f = *groups_[g].flow;
    in_by[g].resize(f.num_states());
    std::set<MessageId> used;
    for (const Transition& t : f.transitions()) {
      in_by[g][t.to].push_back({t.message, t.from});
      used.insert(t.message);
    }
    for (MessageId m : used) msg_groups[m].push_back(g);
  }
  // Per group: the instance indices present, aligned with positions.
  std::vector<std::vector<std::uint32_t>> group_indices(groups_.size());
  for (std::uint32_t g = 0; g < groups_.size(); ++g)
    for (std::uint32_t p : groups_[g].positions)
      group_indices[g].push_back(instances_[p].index);

  std::map<IndexedMessage, std::map<std::uint64_t, std::uint64_t>> hist;

  std::vector<StateId> cur(k);
  std::vector<StateId> pred(k);
  std::vector<std::uint64_t> kw(words);
  std::vector<StateId> scratch;

  // runs[g]: distinct states of group g in this node with multiplicities;
  // cmap[g][v][m]: per-slot in-edge count for <m, any index of g>.
  std::vector<std::vector<std::pair<StateId, std::uint32_t>>> runs(
      groups_.size());
  std::vector<std::map<StateId, std::map<MessageId, std::uint64_t>>> cmap(
      groups_.size());

  for (NodeId n = 0; static_cast<std::size_t>(n) < num_nodes_; ++n) {
    codec_.decode(interner_.key(n), cur.data());
    std::size_t atomics = 0;
    for (std::size_t i = 0; i < k; ++i)
      if (instances_[i].flow->is_atomic(cur[i])) ++atomics;
    const std::uint64_t w = node_weight_[n];

    std::set<MessageId> active;
    for (std::uint32_t g = 0; g < groups_.size(); ++g) {
      runs[g].clear();
      cmap[g].clear();
      const auto& pos = groups_[g].positions;
      for (std::size_t j = 0; j < pos.size(); ++j) {
        if (!runs[g].empty() && runs[g].back().first == cur[pos[j]]) {
          ++runs[g].back().second;
          continue;
        }
        runs[g].push_back({cur[pos[j]], 1});
        const StateId v = cur[pos[j]];
        // All in-moves into v are illegal unless v's holder is the only
        // atomic component of the predecessor.
        if (atomics != (groups_[g].flow->is_atomic(v) ? 1u : 0u)) continue;
        std::map<StateId, bool> pred_reachable;
        for (const auto& [m, q] : in_by[g][v]) {
          auto it = pred_reachable.find(q);
          if (it == pred_reachable.end()) {
            pred = cur;
            pred[pos[j]] = q;
            scratch.clear();
            for (std::uint32_t p : pos) scratch.push_back(pred[p]);
            std::sort(scratch.begin(), scratch.end());
            for (std::size_t s = 0; s < pos.size(); ++s)
              pred[pos[s]] = scratch[s];
            codec_.encode(pred.data(), kw.data());
            it = pred_reachable
                     .emplace(q, interner_.find(kw.data()) != kInvalidNode)
                     .first;
          }
          if (it->second) {
            ++cmap[g][v][m];
            active.insert(m);
          }
        }
      }
    }

    for (MessageId m : active) {
      const auto& candidates = msg_groups[m];
      std::set<std::uint32_t> indices;
      for (std::uint32_t g : candidates)
        indices.insert(group_indices[g].begin(), group_indices[g].end());
      for (std::uint32_t idx : indices) {
        std::vector<std::uint32_t> relevant;
        for (std::uint32_t g : candidates) {
          if (std::find(group_indices[g].begin(), group_indices[g].end(),
                        idx) != group_indices[g].end())
            relevant.push_back(g);
        }
        // Enumerate joint state profiles of the index-idx slots across the
        // relevant groups; each profile is a class of identical concrete
        // states.
        auto emit = [&](auto&& self, std::size_t gi, unsigned __int128 kacc,
                        std::uint64_t c) -> void {
          if (gi == relevant.size()) {
            if (c > 0)
              hist[IndexedMessage{m, idx}][c] +=
                  checked_u64(kacc, "class count");
            return;
          }
          const std::uint32_t g = relevant[gi];
          const unsigned __int128 n_g = groups_[g].positions.size();
          for (const auto& [v, mu] : runs[g]) {
            const unsigned __int128 k2 = kacc * mu;
            if (k2 % n_g != 0)
              throw std::logic_error(
                  "InterleavedFlow: orbit class count not divisible by "
                  "group size (internal invariant violated)");
            std::uint64_t dc = 0;
            const auto vit = cmap[g].find(v);
            if (vit != cmap[g].end()) {
              const auto mit = vit->second.find(m);
              if (mit != vit->second.end()) dc = mit->second;
            }
            self(self, gi + 1, k2 / n_g, c + dc);
          }
        };
        emit(emit, 0, w, 0);
      }
    }
  }

  std::vector<LabelClassHistogram> out;
  out.reserve(hist.size());
  for (const auto& [label, classes] : hist)
    out.push_back(LabelClassHistogram{
        label, {classes.begin(), classes.end()}});
  return out;
}

void InterleavedFlow::verify_against_unreduced() const {
  OBS_SPAN("interleave.cross_check");
  InterleaveOptions opt = options_;
  opt.symmetry_reduction = false;
  opt.cross_check = false;
  const InterleavedFlow full = build_impl(instances_, opt);
  auto fail = [](const std::string& what) {
    throw std::logic_error(
        "InterleavedFlow cross-check: reduced engine disagrees with the "
        "unreduced product on " +
        what);
  };

  if (num_product_states() != full.num_product_states())
    fail("the product state count");
  if (num_product_edges() != full.num_product_edges())
    fail("the product edge count");
  unsigned __int128 stop_weight = 0;
  for (NodeId n : stop_) stop_weight += node_weight(n);
  if (stop_weight != static_cast<unsigned __int128>(full.stop_nodes().size()))
    fail("the stop state count");
  if (indexed_messages_ != full.indexed_messages())
    fail("the indexed message set");
  for (const IndexedMessage& im : indexed_messages_) {
    if (occurrences(im) != full.occurrences(im))
      fail("occurrences of an indexed message");
  }
  if (count_paths() != full.count_paths()) fail("the execution count");
  const auto a = label_target_histograms();
  const auto b = full.label_target_histograms();
  if (a.size() != b.size()) fail("the in-edge histogram label set");
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].label != b[i].label || a[i].classes != b[i].classes)
      fail("an in-edge class histogram");
  }
}

}  // namespace tracesel::flow
