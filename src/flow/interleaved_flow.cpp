#include "flow/interleaved_flow.hpp"

#include <algorithm>
#include <optional>
#include <queue>
#include <sstream>
#include <stdexcept>

namespace tracesel::flow {

namespace {

/// FNV-1a over the component-state tuple.
struct KeyHash {
  std::size_t operator()(const std::vector<StateId>& key) const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (StateId s : key) {
      h ^= s;
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace

std::vector<IndexedFlow> make_instances(const std::vector<const Flow*>& flows,
                                        std::uint32_t instances_per_flow) {
  if (instances_per_flow == 0)
    throw std::invalid_argument("make_instances: zero instances per flow");
  std::vector<IndexedFlow> out;
  out.reserve(flows.size() * instances_per_flow);
  for (const Flow* f : flows) {
    if (f == nullptr)
      throw std::invalid_argument("make_instances: null flow");
    for (std::uint32_t i = 1; i <= instances_per_flow; ++i)
      out.push_back(IndexedFlow{f, i});
  }
  return out;
}

InterleavedFlow InterleavedFlow::build(std::vector<IndexedFlow> instances,
                                       std::size_t max_nodes) {
  if (instances.empty())
    throw std::invalid_argument("InterleavedFlow: no instances");
  for (const IndexedFlow& inst : instances) {
    if (inst.flow == nullptr)
      throw std::invalid_argument("InterleavedFlow: null flow instance");
    // The product construction assumes a unique initial state per component;
    // multi-initial flows can be modeled with a shared pre-initial state.
    if (inst.flow->initial_states().size() != 1)
      throw std::invalid_argument("InterleavedFlow: flow '" +
                                  inst.flow->name() +
                                  "' must have exactly one initial state");
  }
  if (!legally_indexed(instances))
    throw std::invalid_argument(
        "InterleavedFlow: instances are not legally indexed (duplicate "
        "<flow, index> pair, Def. 4)");

  InterleavedFlow u;
  u.instances_ = std::move(instances);
  const std::size_t k = u.instances_.size();

  std::unordered_map<std::vector<StateId>, NodeId, KeyHash> ids;
  auto intern = [&](const std::vector<StateId>& key) -> NodeId {
    const auto it = ids.find(key);
    if (it != ids.end()) return it->second;
    if (u.node_keys_.size() >= max_nodes)
      throw std::length_error(
          "InterleavedFlow: reachable product exceeds max_nodes");
    const NodeId id = static_cast<NodeId>(u.node_keys_.size());
    u.node_keys_.push_back(key);
    ids.emplace(key, id);
    return id;
  };

  std::vector<StateId> root(k);
  for (std::size_t i = 0; i < k; ++i)
    root[i] = u.instances_[i].flow->initial_states().front();
  const NodeId root_id = intern(root);
  u.initial_.push_back(root_id);

  std::queue<NodeId> work;
  work.push(root_id);
  std::vector<bool> expanded;
  expanded.resize(1, false);

  while (!work.empty()) {
    const NodeId n = work.front();
    work.pop();
    if (expanded[n]) continue;
    expanded[n] = true;
    const std::vector<StateId> key = u.node_keys_[n];  // copy: vector grows

    // Which components sit in atomic states? If any does, only it may move
    // (generalized Def. 5 rules i/ii).
    std::size_t atomic_holder = k;  // k == none
    for (std::size_t i = 0; i < k; ++i) {
      if (u.instances_[i].flow->is_atomic(key[i])) {
        atomic_holder = i;
        break;  // by construction at most one component is atomic
      }
    }

    for (std::size_t i = 0; i < k; ++i) {
      if (atomic_holder != k && atomic_holder != i) continue;
      const Flow& f = *u.instances_[i].flow;
      for (std::uint32_t ti : f.outgoing(key[i])) {
        const Transition& t = f.transitions()[ti];
        std::vector<StateId> next = key;
        next[i] = t.to;
        const NodeId m = intern(next);
        if (m >= expanded.size()) expanded.resize(m + 1, false);
        u.edges_.push_back(
            Edge{n,
                 IndexedMessage{t.message, u.instances_[i].index},
                 m, static_cast<std::uint32_t>(i)});
        if (!expanded[m]) work.push(m);
      }
    }
  }

  const std::size_t num_nodes = u.node_keys_.size();
  u.outgoing_.assign(num_nodes, {});
  for (std::uint32_t e = 0; e < u.edges_.size(); ++e)
    u.outgoing_[u.edges_[e].from].push_back(e);

  u.stop_mask_.assign(num_nodes, false);
  for (NodeId n = 0; n < num_nodes; ++n) {
    bool all_stop = true;
    for (std::size_t i = 0; i < k; ++i) {
      if (!u.instances_[i].flow->is_stop(u.node_keys_[n][i])) {
        all_stop = false;
        break;
      }
    }
    if (all_stop) {
      u.stop_mask_[n] = true;
      u.stop_.push_back(n);
    }
  }

  for (const Edge& e : u.edges_) {
    auto [it, fresh] = u.occurrence_counts_.try_emplace(e.label, 0u);
    if (fresh) u.indexed_messages_.push_back(e.label);
    ++it->second;
  }
  std::sort(u.indexed_messages_.begin(), u.indexed_messages_.end());
  return u;
}

const std::vector<std::uint32_t>& InterleavedFlow::outgoing(NodeId n) const {
  if (n >= outgoing_.size())
    throw std::out_of_range("InterleavedFlow: bad node id");
  return outgoing_[n];
}

const std::vector<StateId>& InterleavedFlow::node_key(NodeId n) const {
  if (n >= node_keys_.size())
    throw std::out_of_range("InterleavedFlow: bad node id");
  return node_keys_[n];
}

std::string InterleavedFlow::node_name(NodeId n) const {
  const auto& key = node_key(n);
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < key.size(); ++i) {
    if (i) os << ',';
    os << instances_[i].flow->state_name(key[i]) << ':'
       << instances_[i].index;
  }
  os << ')';
  return os.str();
}

std::size_t InterleavedFlow::occurrences(const IndexedMessage& im) const {
  const auto it = occurrence_counts_.find(im);
  return it == occurrence_counts_.end() ? 0 : it->second;
}

double InterleavedFlow::count_paths() const {
  // Executions end at a stop tuple (Def. 2). In all flows in this repo stop
  // states are sinks, so "reaches a stop node" and "ends at a stop node"
  // coincide; we count the latter by backward DP over the DAG.
  std::vector<double> memo(num_nodes(), -1.0);
  // Iterative post-order to avoid recursion depth issues on deep products.
  std::vector<std::pair<NodeId, bool>> stack;
  double total = 0.0;
  for (NodeId r : initial_) {
    stack.emplace_back(r, false);
    while (!stack.empty()) {
      auto [n, processed] = stack.back();
      stack.pop_back();
      if (memo[n] >= 0.0) continue;
      if (!processed) {
        stack.emplace_back(n, true);
        for (std::uint32_t e : outgoing_[n]) {
          const NodeId m = edges_[e].to;
          if (memo[m] < 0.0) stack.emplace_back(m, false);
        }
      } else {
        double paths = stop_mask_[n] ? 1.0 : 0.0;
        for (std::uint32_t e : outgoing_[n]) paths += memo[edges_[e].to];
        memo[n] = paths;
      }
    }
    total += memo[r];
  }
  return total;
}

double InterleavedFlow::count_consistent_paths(
    const std::vector<MessageId>& selected,
    const std::vector<IndexedMessage>& observed) const {
  // f(n, j) = number of stop-terminated paths from n whose projection onto
  // `selected` extends observed[j..] as a prefix. Memoized on (node, j).
  std::vector<bool> is_selected;
  {
    MessageId max_id = 0;
    for (MessageId m : selected) max_id = std::max(max_id, m);
    for (const Edge& e : edges_) max_id = std::max(max_id, e.label.message);
    is_selected.assign(static_cast<std::size_t>(max_id) + 1, false);
    for (MessageId m : selected) is_selected[m] = true;
  }
  const std::size_t olen = observed.size();
  for (const IndexedMessage& im : observed) {
    if (im.message >= is_selected.size() || !is_selected[im.message])
      throw std::invalid_argument(
          "count_consistent_paths: observed trace contains a message outside "
          "the selected combination");
  }

  const std::size_t width = olen + 1;
  std::vector<double> memo(num_nodes() * width, -1.0);
  auto slot = [&](NodeId n, std::size_t j) -> double& {
    return memo[static_cast<std::size_t>(n) * width + j];
  };

  struct Item {
    NodeId n;
    std::uint32_t j;
    bool processed;
  };
  std::vector<Item> stack;
  double total = 0.0;
  for (NodeId r : initial_) {
    stack.push_back(Item{r, 0, false});
    while (!stack.empty()) {
      const Item it = stack.back();
      stack.pop_back();
      if (slot(it.n, it.j) >= 0.0) continue;
      // Successor (node, j') for an edge given matching rules.
      auto next_j = [&](const Edge& e) -> std::optional<std::uint32_t> {
        if (!is_selected[e.label.message]) return it.j;  // invisible step
        if (it.j < olen) {
          if (e.label == observed[it.j]) return it.j + 1;
          return std::nullopt;  // visible mismatch kills the path
        }
        return it.j;  // prefix fully matched; extra visible messages fine
      };
      if (!it.processed) {
        stack.push_back(Item{it.n, it.j, true});
        for (std::uint32_t e : outgoing_[it.n]) {
          if (auto j2 = next_j(edges_[e])) {
            if (slot(edges_[e].to, *j2) < 0.0)
              stack.push_back(Item{edges_[e].to, *j2, false});
          }
        }
      } else {
        double paths = 0.0;
        if (stop_mask_[it.n] && it.j == olen) paths += 1.0;
        for (std::uint32_t e : outgoing_[it.n]) {
          if (auto j2 = next_j(edges_[e])) paths += slot(edges_[e].to, *j2);
        }
        slot(it.n, it.j) = paths;
      }
    }
    total += slot(r, 0);
  }
  return total;
}

double InterleavedFlow::count_consistent_paths_multiset(
    const std::vector<MessageId>& selected,
    const std::vector<IndexedMessage>& observed) const {
  std::vector<bool> is_selected;
  {
    MessageId max_id = 0;
    for (MessageId m : selected) max_id = std::max(max_id, m);
    for (const Edge& e : edges_) max_id = std::max(max_id, e.label.message);
    is_selected.assign(static_cast<std::size_t>(max_id) + 1, false);
    for (MessageId m : selected) is_selected[m] = true;
  }

  // Distinct observed indexed messages with multiplicities; a consumption
  // state is a vector of per-kind counts, encoded in mixed radix.
  std::vector<IndexedMessage> kinds;
  std::vector<std::uint32_t> need;
  for (const IndexedMessage& im : observed) {
    if (im.message >= is_selected.size() || !is_selected[im.message])
      throw std::invalid_argument(
          "count_consistent_paths_multiset: observed trace contains a "
          "message outside the selected combination");
    const auto it = std::find(kinds.begin(), kinds.end(), im);
    if (it == kinds.end()) {
      kinds.push_back(im);
      need.push_back(1);
    } else {
      ++need[static_cast<std::size_t>(it - kinds.begin())];
    }
  }
  std::size_t num_cstates = 1;
  for (std::uint32_t c : need) {
    num_cstates *= c + 1;
    // The consumption lattice is exponential in distinct observed kinds;
    // refuse queries whose memo would not fit in memory rather than
    // crash allocating it. Ordered-semantics counting stays linear.
    if (num_cstates > (std::size_t{1} << 22) ||
        num_cstates * num_nodes() > (std::size_t{1} << 26))
      throw std::length_error(
          "count_consistent_paths_multiset: observation has too many "
          "distinct indexed messages for multiset counting; use the "
          "ordered variant");
  }
  const std::size_t full = num_cstates - 1;  // all radixes at max

  // radix stride per kind.
  std::vector<std::size_t> stride(kinds.size());
  {
    std::size_t s = 1;
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      stride[i] = s;
      s *= need[i] + 1;
    }
  }
  auto digit = [&](std::size_t cstate, std::size_t i) {
    return (cstate / stride[i]) % (need[i] + 1);
  };

  std::vector<double> memo(num_nodes() * num_cstates, -1.0);
  auto slot = [&](NodeId n, std::size_t c) -> double& {
    return memo[static_cast<std::size_t>(n) * num_cstates + c];
  };

  // Successor consumption state for taking edge e in state c, or nullopt if
  // the edge is inconsistent with the observation.
  auto next_c = [&](const Edge& e, std::size_t c) -> std::optional<std::size_t> {
    if (!is_selected[e.label.message]) return c;
    if (c == full) return c;  // prefix complete; visible suffix unrestricted
    const auto it = std::find(kinds.begin(), kinds.end(), e.label);
    if (it == kinds.end()) return std::nullopt;  // visible non-observed kind
    const std::size_t i = static_cast<std::size_t>(it - kinds.begin());
    if (digit(c, i) >= need[i]) return std::nullopt;  // kind already consumed
    return c + stride[i];
  };

  struct Item {
    NodeId n;
    std::size_t c;
    bool processed;
  };
  std::vector<Item> stack;
  double total = 0.0;
  for (NodeId r : initial_) {
    stack.push_back(Item{r, 0, false});
    while (!stack.empty()) {
      const Item it = stack.back();
      stack.pop_back();
      if (slot(it.n, it.c) >= 0.0) continue;
      if (!it.processed) {
        stack.push_back(Item{it.n, it.c, true});
        for (std::uint32_t e : outgoing_[it.n]) {
          if (auto c2 = next_c(edges_[e], it.c)) {
            if (slot(edges_[e].to, *c2) < 0.0)
              stack.push_back(Item{edges_[e].to, *c2, false});
          }
        }
      } else {
        double paths = 0.0;
        if (stop_mask_[it.n] && it.c == full) paths += 1.0;
        for (std::uint32_t e : outgoing_[it.n]) {
          if (auto c2 = next_c(edges_[e], it.c))
            paths += slot(edges_[e].to, *c2);
        }
        slot(it.n, it.c) = paths;
      }
    }
    total += slot(r, 0);
  }
  return total;
}

}  // namespace tracesel::flow
