#pragma once
// Messages and the message catalog.
//
// A message m = <C, w> (paper Sec. 2, "Conventions"): C is the content and
// w = width(m) the number of bits needed to trace it. Messages travel between
// a source IP and a destination IP; that pairing drives the "legal IP pair"
// debugging metric of Sec. 5.6.
//
// Wide messages can declare *subgroups* — named sub-fields that can be traced
// on their own (e.g. in OpenSPARC T2, cputhreadid[6] is a subgroup of
// dmusiidata[20]). Step 3 of the selection method packs subgroups into
// leftover trace-buffer width (Sec. 3.3).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "flow/types.hpp"

namespace tracesel::flow {

/// A packable sub-field of a wider message.
struct Subgroup {
  std::string name;
  std::uint32_t width = 0;
};

/// An application-level message exchanged between two IPs.
struct Message {
  std::string name;
  std::uint32_t width = 0;  ///< bit-width w of the message content
  std::string source_ip;
  std::string dest_ip;
  std::vector<Subgroup> subgroups;
  /// Beats of a multi-cycle message. Footnote 2 of the paper: for
  /// multi-cycle messages, the number of bits traceable in a single cycle
  /// counts as the message bit width; trace_width() applies that rule.
  std::uint32_t beats = 1;

  /// Buffer bits this message consumes per cycle: ceil(width / beats).
  std::uint32_t trace_width() const {
    return beats <= 1 ? width : (width + beats - 1) / beats;
  }
};

/// Registry of all messages known to a design/testbed. Ids are dense and
/// stable, which lets selection code use bitsets and vectors keyed by id.
class MessageCatalog {
 public:
  /// Registers a message; names must be unique and width nonzero.
  /// Subgroup widths must be strictly smaller than the message width.
  MessageId add(Message message);

  /// Convenience registration without subgroups.
  MessageId add(std::string name, std::uint32_t width, std::string source_ip,
                std::string dest_ip);

  const Message& get(MessageId id) const;
  std::optional<MessageId> find(std::string_view name) const;

  /// Like find(), but throws std::out_of_range with the name in the text.
  MessageId require(std::string_view name) const;

  std::size_t size() const { return messages_.size(); }
  bool empty() const { return messages_.empty(); }

  /// Total bit-width of a set of message ids (Def. 6 of the paper).
  std::uint32_t total_width(const std::vector<MessageId>& ids) const;

  auto begin() const { return messages_.begin(); }
  auto end() const { return messages_.end(); }

 private:
  std::vector<Message> messages_;
};

}  // namespace tracesel::flow
