#include "flow/execution.hpp"

#include <algorithm>

namespace tracesel::flow {

std::vector<IndexedMessage> project(const std::vector<IndexedMessage>& trace,
                                    const std::vector<MessageId>& selected) {
  std::vector<IndexedMessage> out;
  out.reserve(trace.size());
  for (const IndexedMessage& im : trace) {
    if (std::find(selected.begin(), selected.end(), im.message) !=
        selected.end())
      out.push_back(im);
  }
  return out;
}

Execution random_execution(const InterleavedFlow& u0, util::Rng& rng) {
  // Random walks need the unreduced product: a walk over orbit
  // representatives re-sorts instance positions after every move, so its
  // label sequence need not be a legal concrete execution.
  const InterleavedFlow& u = u0.concrete();
  Execution e;
  NodeId n = u.initial_nodes().front();
  std::uint64_t cycle = 0;
  for (;;) {
    if (u.is_stop(n)) {
      e.completed = true;
      return e;
    }
    const auto& out = u.outgoing(n);
    if (out.empty()) return e;  // dead end that is not a stop tuple
    const auto& edge = u.edges()[out[rng.index(out.size())]];
    // Message latencies vary; model 1-8 cycles between successive messages.
    cycle += rng.between(1, 8);
    e.steps.push_back(Step{edge.from, edge.label, edge.to, cycle});
    n = edge.to;
  }
}

bool is_valid_execution(const InterleavedFlow& u0, const Execution& e) {
  const InterleavedFlow& u = u0.concrete();  // node ids are concrete ids
  if (e.steps.empty()) return true;
  const auto& init = u.initial_nodes();
  if (std::find(init.begin(), init.end(), e.steps.front().from) == init.end())
    return false;
  for (std::size_t i = 0; i < e.steps.size(); ++i) {
    const Step& s = e.steps[i];
    if (i > 0 && s.from != e.steps[i - 1].to) return false;
    bool found = false;
    for (std::uint32_t ei : u.outgoing(s.from)) {
      const auto& edge = u.edges()[ei];
      if (edge.to == s.to && edge.label == s.label) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  if (e.completed && !u.is_stop(e.steps.back().to)) return false;
  return true;
}

}  // namespace tracesel::flow
