#include "service/journal.hpp"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <cstring>

#include "util/atomic_file.hpp"
#include "util/framing.hpp"
#include "util/log.hpp"
#include "util/obs.hpp"

namespace tracesel::service {

namespace {

constexpr char kRecordTag[] = "tracesel-jrec";
constexpr std::uint32_t kRecordVersion = 1;
constexpr char kJournalName[] = "jobs.journal";
constexpr char kResultTag[] = "tracesel-result";
constexpr std::uint32_t kResultVersion = 1;
/// A journal bigger than this is itself suspect; replay reads it whole.
constexpr std::size_t kMaxJournalBytes = 256u << 20;
constexpr std::size_t kMaxResultBytes = 64u << 20;

std::string hex64(std::uint64_t v) {
  char buf[17];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v, 16);
  return std::string(buf, static_cast<std::size_t>(end - buf));
}

bool to_u64(std::string_view tok, std::uint64_t& out, int base = 10) {
  const char* first = tok.data();
  const char* last = tok.data() + tok.size();
  const auto [ptr, ec] = std::from_chars(first, last, out, base);
  return ec == std::errc{} && ptr == last;
}

util::Status make_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST)
    return util::Status::success();
  return util::Error{util::ErrorCode::kInternal,
                     "journal: cannot create " + path + ": " +
                         std::strerror(errno)};
}

/// "tracesel-jrec <version> <event> <job_id>[ <aux>]\n[<body>]".
std::string record_payload(std::string_view event, std::uint64_t job_id,
                           std::string_view aux = {},
                           std::string_view body = {}) {
  std::string out = kRecordTag;
  out += ' ';
  out += std::to_string(kRecordVersion);
  out += ' ';
  out += event;
  out += ' ';
  out += std::to_string(job_id);
  if (!aux.empty()) {
    out += ' ';
    out += aux;
  }
  out += '\n';
  out += body;
  return out;
}

struct ParsedRecord {
  std::string event;
  std::uint64_t job_id = 0;
  std::uint64_t aux = 0;
  std::string_view body;
};

/// Record-level parse; nullopt-style via bool return. A failure here drops
/// only this record — the frame layer already validated its boundaries.
bool parse_record(std::string_view payload, ParsedRecord& out) {
  const std::size_t eol = payload.find('\n');
  if (eol == std::string_view::npos) return false;
  std::string_view head = payload.substr(0, eol);
  out.body = payload.substr(eol + 1);

  // Tokenize "<tag> <version> <event> <id>[ <aux>]".
  std::vector<std::string_view> tok;
  while (!head.empty()) {
    const std::size_t sp = head.find(' ');
    tok.push_back(head.substr(0, sp));
    if (sp == std::string_view::npos) break;
    head.remove_prefix(sp + 1);
  }
  if (tok.size() < 4 || tok[0] != kRecordTag) return false;
  std::uint64_t version = 0;
  if (!to_u64(tok[1], version) || version != kRecordVersion) return false;
  out.event = std::string(tok[2]);
  if (!to_u64(tok[3], out.job_id)) return false;
  if (tok.size() >= 5 && !to_u64(tok[4], out.aux, 16)) return false;
  return true;
}

}  // namespace

JobJournal::~JobJournal() { close(); }

void JobJournal::close() {
  std::lock_guard<std::mutex> lk(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string JobJournal::path() const {
  return options_.dir + "/" + kJournalName;
}

std::string JobJournal::checkpoint_path(std::uint64_t result_key) const {
  return options_.dir + "/ckpt/" + hex64(result_key) + ".ck";
}

std::string JobJournal::result_path(std::uint64_t result_key) const {
  return options_.dir + "/results/" + hex64(result_key) + ".result";
}

std::uint64_t JobJournal::bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return size_;
}

std::uint64_t JobJournal::rotations() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rotations_;
}

std::uint64_t JobJournal::records_appended() const {
  std::lock_guard<std::mutex> lk(mu_);
  return records_;
}

util::Result<JournalRecovery> JobJournal::open(JournalOptions options) {
  using R = util::Result<JournalRecovery>;
  close();
  if (options.dir.empty())
    return R::err(util::ErrorCode::kInvalidArgument,
                  "journal: no directory given");
  options_ = std::move(options);
  if (auto st = make_dir(options_.dir); !st.ok()) return st.error();
  if (auto st = make_dir(options_.dir + "/ckpt"); !st.ok()) return st.error();
  if (auto st = make_dir(options_.dir + "/results"); !st.ok())
    return st.error();

  JournalRecovery rec;
  std::lock_guard<std::mutex> lk(mu_);
  live_.clear();
  size_ = 0;

  // --- replay ---
  std::string bytes;
  {
    auto read = util::read_file_capped(path(), kMaxJournalBytes);
    if (read.ok()) bytes = std::move(read).value();
    // Absent journal = fresh start; an unreadable one is recovered below
    // as an empty log (the append path will recreate it).
  }

  // Every frame the reader yields before poisoning is a good record; the
  // good prefix length is (bytes fed) - (bytes still buffered) at that
  // point, which is exactly where a torn tail must be truncated.
  util::FrameReader reader(util::kMaxFrameBytes);
  reader.feed(bytes);
  std::size_t good_offset = 0;
  std::string payload;
  std::vector<RecoveredJob> pending;  // admission order
  for (;;) {
    const auto st = reader.next(payload);
    if (st != util::FrameReader::State::kFrame) break;
    good_offset = bytes.size() - reader.buffered();
    ParsedRecord r;
    if (!parse_record(payload, r)) {
      // Intact frame, malformed record (e.g. version skew): drop just it.
      ++rec.dropped_records;
      continue;
    }
    ++rec.replayed_records;
    rec.next_job_id = std::max(rec.next_job_id, r.job_id + 1);
    const auto it = std::find_if(
        pending.begin(), pending.end(),
        [&](const RecoveredJob& j) { return j.id == r.job_id; });
    if (r.event == "accepted") {
      auto req = parse_job_request(r.body);
      if (!req.ok()) {
        ++rec.dropped_records;  // a job we cannot rebuild cannot replay
        continue;
      }
      if (it == pending.end()) {
        RecoveredJob j;
        j.id = r.job_id;
        j.request = std::move(req).value();
        pending.push_back(std::move(j));
      }
    } else if (r.event == "started") {
      if (it != pending.end()) it->started = true;
    } else if (r.event == "completed") {
      ++rec.completed;  // duplicates are idempotent by construction
      if (it != pending.end()) pending.erase(it);
    } else if (r.event == "cancelled") {
      ++rec.cancelled;
      if (it != pending.end()) pending.erase(it);
    } else {
      ++rec.dropped_records;
    }
  }
  if (good_offset < bytes.size()) {
    // Torn or corrupt tail: truncate-and-continue. At least one record's
    // worth of bytes is gone; framing cannot say how many.
    rec.dropped_bytes = bytes.size() - good_offset;
    ++rec.dropped_records;
    if (::truncate(path().c_str(), static_cast<off_t>(good_offset)) != 0 &&
        errno != ENOENT)
      util::Log(util::LogLevel::kWarn)
          << "journal: cannot truncate torn tail of " << path() << ": "
          << std::strerror(errno);
  }
  rec.pending = pending;

  // Seed the live set so the next compaction preserves the replayed jobs.
  for (const RecoveredJob& j : pending) {
    LiveJob lj;
    lj.id = j.id;
    lj.accepted_payload =
        record_payload("accepted", j.id, {}, serialize_job_request(j.request));
    lj.started = j.started;
    live_.push_back(std::move(lj));
  }

  fd_ = ::open(path().c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
               0666);
  if (fd_ < 0)
    return R::err(util::ErrorCode::kInternal,
                  "journal: cannot open " + path() + " for append: " +
                      std::strerror(errno));
  struct stat st;
  if (::fstat(fd_, &st) == 0) size_ = static_cast<std::uint64_t>(st.st_size);

  OBS_COUNT("svc.journal.dropped_records", rec.dropped_records);
  OBS_COUNT("svc.journal.dropped_bytes", rec.dropped_bytes);
  OBS_COUNT("svc.journal.recovered_jobs", rec.pending.size());
  rec.note = "journal: replayed " + std::to_string(rec.replayed_records) +
             " record(s), " + std::to_string(rec.pending.size()) +
             " pending job(s), " + std::to_string(rec.completed) +
             " completed, dropped " + std::to_string(rec.dropped_records) +
             " record(s) / " + std::to_string(rec.dropped_bytes) + " byte(s)";
  return rec;
}

void JobJournal::append(std::uint64_t job_id, const std::string& payload,
                        bool live, bool terminal) {
  std::lock_guard<std::mutex> lk(mu_);
  if (fd_ < 0) return;
  // The shared framing write loop (EINTR-retried, full write); the journal
  // appender must never reimplement it.
  const auto st = util::write_frame(fd_, payload);
  if (!st.ok()) {
    util::Log(util::LogLevel::kError)
        << "journal: append failed: " << st.error().to_string();
    return;
  }
  if (options_.fsync) ::fsync(fd_);
  size_ += util::kFrameHeaderBytes + payload.size();
  ++records_;
  OBS_COUNT("svc.journal.records", 1);

  if (live) {
    LiveJob lj;
    lj.id = job_id;
    lj.accepted_payload = payload;
    live_.push_back(std::move(lj));
  } else if (terminal) {
    live_.erase(std::remove_if(live_.begin(), live_.end(),
                               [&](const LiveJob& j) { return j.id == job_id; }),
                live_.end());
  } else {
    const auto it = std::find_if(live_.begin(), live_.end(),
                                 [&](const LiveJob& j) { return j.id == job_id; });
    if (it != live_.end()) it->started = true;
  }

  if (options_.rotate_bytes > 0 && size_ > options_.rotate_bytes)
    rotate_locked();
}

void JobJournal::rotate_locked() {
  // Compaction: the journal's truth is the live set, so rewrite only the
  // records of still-unfinished jobs. atomic_write_file gives the full
  // temp + fsync + rename + parent-fsync discipline; a crash mid-rotation
  // leaves either the old log or the new one, never a hybrid.
  std::string compacted;
  for (const LiveJob& j : live_) {
    compacted += util::encode_frame(j.accepted_payload);
    if (j.started)
      compacted += util::encode_frame(record_payload("started", j.id));
  }
  const auto st = util::atomic_write_file(path(), compacted);
  if (!st.ok()) {
    util::Log(util::LogLevel::kWarn)
        << "journal: rotation failed (keeping the long log): "
        << st.error().to_string();
    return;
  }
  ::close(fd_);
  fd_ = ::open(path().c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
               0666);
  if (fd_ < 0) {
    util::Log(util::LogLevel::kError)
        << "journal: cannot reopen " << path() << " after rotation: "
        << std::strerror(errno);
    return;
  }
  size_ = compacted.size();
  ++rotations_;
  OBS_COUNT("svc.journal.rotations", 1);
}

void JobJournal::accepted(std::uint64_t job_id, const JobRequest& request) {
  append(job_id,
         record_payload("accepted", job_id, {}, serialize_job_request(request)),
         /*live=*/true, /*terminal=*/false);
}

void JobJournal::started(std::uint64_t job_id) {
  append(job_id, record_payload("started", job_id), /*live=*/false,
         /*terminal=*/false);
}

void JobJournal::completed(std::uint64_t job_id, std::uint64_t result_hash) {
  append(job_id, record_payload("completed", job_id, hex64(result_hash)),
         /*live=*/false, /*terminal=*/true);
}

void JobJournal::cancelled(std::uint64_t job_id) {
  append(job_id, record_payload("cancelled", job_id), /*live=*/false,
         /*terminal=*/true);
}

util::Status JobJournal::store_result(std::uint64_t result_key,
                                      const JobRequest& request,
                                      std::string_view report_json) {
  // "request <len>\n<req>\nreport <len>\n<report>\n" inside the shared
  // envelope codec: checksum + version validation for free on load.
  const std::string req = serialize_job_request(request);
  std::string body;
  body.reserve(req.size() + report_json.size() + 64);
  body += "request " + std::to_string(req.size()) + '\n';
  body += req;
  body += '\n';
  body += "report " + std::to_string(report_json.size()) + '\n';
  body += report_json;
  body += '\n';
  return util::atomic_write_file(
      result_path(result_key),
      util::encode_envelope(kResultTag, kResultVersion, body));
}

util::Result<std::string> JobJournal::load_result(
    std::uint64_t result_key, const JobRequest& request) const {
  using R = util::Result<std::string>;
  auto bytes = util::read_file_capped(result_path(result_key), kMaxResultBytes);
  if (!bytes.ok()) return bytes.error();
  auto payload = util::decode_envelope(bytes.value(), kResultTag,
                                       kResultVersion, "stored result");
  if (!payload.ok()) return payload.error();
  std::string_view body = payload.value();

  const auto take = [&](std::string_view name,
                        std::string_view& out) -> bool {
    const std::size_t eol = body.find('\n');
    if (eol == std::string_view::npos) return false;
    std::string_view line = body.substr(0, eol);
    if (!line.starts_with(name) || line.size() <= name.size() ||
        line[name.size()] != ' ')
      return false;
    std::uint64_t n = 0;
    if (!to_u64(line.substr(name.size() + 1), n)) return false;
    body.remove_prefix(eol + 1);
    if (n > body.size()) return false;
    out = body.substr(0, static_cast<std::size_t>(n));
    body.remove_prefix(static_cast<std::size_t>(n));
    if (!body.empty() && body.front() == '\n') body.remove_prefix(1);
    return true;
  };

  std::string_view req_text, report;
  if (!take("request", req_text) || !take("report", report))
    return R::err(util::ErrorCode::kParse, "stored result: bad blocks");
  auto stored_req = parse_job_request(req_text);
  if (!stored_req.ok()) return stored_req.error();
  if (!stored_req.value().same_computation(request))
    return R::err(util::ErrorCode::kInternal,
                  "stored result: result-key collision (different "
                  "computation); recomputing");
  return std::string(report);
}

}  // namespace tracesel::service
