#pragma once
// tracesel::service::Client — blocking client for the traceseld daemon.
//
// Connects to the daemon's Unix socket and speaks the framed protocol
// (protocol.hpp). submit() blocks until the result frame arrives, invoking
// an optional callback for each lifecycle event (queued/started) and
// forwarding a local CancelToken to the server as a cancel frame so Ctrl-C
// on the client cancels the remote job cooperatively.
//
// Resilience (DESIGN.md §16): connect() takes a seeded-backoff retry
// budget for daemons that are still starting (or restarting after a
// crash), and submit_resilient() survives daemon restarts mid-job —
// reconnecting with backoff and resubmitting idempotently. Idempotency is
// the server's duplicate-attach + durable-result machinery: a resubmitted
// job either attaches to its still-running twin or is served the stored
// byte-identical report, so retrying is always safe. A typed retry-after
// frame (admission-control shed) is honored by sleeping the server's hint
// before resubmitting.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "service/protocol.hpp"
#include "tracesel/job_request.hpp"
#include "util/backoff.hpp"
#include "util/cancel.hpp"
#include "util/framing.hpp"
#include "util/result.hpp"

namespace tracesel::service {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect-retry knobs. timeout_ms == 0 keeps the historical behaviour:
  /// one attempt, fail fast.
  struct ConnectOptions {
    /// Total wall-clock budget for connect attempts (seeded backoff
    /// between them); 0 = a single attempt.
    std::uint64_t timeout_ms = 0;
    util::BackoffPolicy backoff{};
    /// Interrupts the retry loop (Ctrl-C while waiting for a daemon).
    util::CancelToken cancel{};
  };

  /// Connects to a daemon's Unix socket. Typed error when the path is too
  /// long, the socket is absent, or nobody is listening.
  static util::Result<Client> connect(const std::string& socket_path);
  /// As above, retrying within options.timeout_ms for a daemon that is
  /// not (yet) accepting — the restart-tolerant entry point.
  static util::Result<Client> connect(const std::string& socket_path,
                                      const ConnectOptions& options);

  bool connected() const { return fd_ >= 0; }
  void close();
  const std::string& socket_path() const { return socket_path_; }

  /// Lifecycle callback: status ("queued"/"started"/"attached") and queue
  /// position.
  using EventFn =
      std::function<void(std::string_view status, std::uint64_t position)>;

  /// A decoded retry-after shed, reported through submit()'s out-param.
  struct RetryAfter {
    bool hinted = false;     ///< a retry-after frame was received
    std::uint64_t ms = 0;    ///< the server's backoff hint
    std::string reason;      ///< why the submission was shed
  };

  /// Submits a job and blocks until its result frame. When `cancel` fires
  /// a cancel frame is sent and the call keeps waiting for the server's
  /// (now cancelled/partial) result, so the outcome status is authoritative.
  /// A retry-after shed surfaces as a kResourceExhausted error; when
  /// `retry_after` is non-null it additionally receives the decoded hint.
  util::Result<JobOutcome> submit(const JobRequest& request,
                                  util::CancelToken cancel = {},
                                  const EventFn& on_event = {},
                                  RetryAfter* retry_after = nullptr);

  /// Retry policy for submit_resilient().
  struct SubmitOptions {
    std::size_t max_attempts = 5;
    util::BackoffPolicy backoff{};
    /// Sleep the server's retry-after hint (capped below) instead of the
    /// local backoff schedule when a shed carries one.
    bool honor_retry_after = true;
    std::uint64_t retry_after_cap_ms = 10000;
    /// Per-reconnect budget after a connection drop (0 = single attempt).
    std::uint64_t connect_timeout_ms = 2000;
  };

  /// submit() hardened against daemon restarts and admission-control
  /// sheds: reconnects with seeded backoff when the connection drops,
  /// honors retry-after hints, and resubmits idempotently (see the file
  /// comment). Job rejections (kError) and cancellation stay fatal.
  util::Result<JobOutcome> submit_resilient(const JobRequest& request,
                                            const SubmitOptions& options,
                                            util::CancelToken cancel = {},
                                            const EventFn& on_event = {});

  /// The daemon's flat stats JSON (jobs.* and store.* counters).
  util::Result<std::string> stats();
  /// The daemon's live telemetry JSON (queue/utilization gauges,
  /// per-tenant accounting, event journal, slow-job log).
  util::Result<std::string> telemetry();
  util::Status ping();
  /// Asks the daemon to drain and exit; resolves once the daemon acks.
  util::Status stop();

 private:
  util::Result<Message> next_message(const util::CancelToken* cancel,
                                     bool* sent_cancel);
  util::Status send_payload(const std::string& payload);

  int fd_ = -1;
  util::FrameReader reader_;
  /// Remembered from connect() so submit_resilient can reconnect.
  std::string socket_path_;
};

}  // namespace tracesel::service
