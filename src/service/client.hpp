#pragma once
// tracesel::service::Client — blocking client for the traceseld daemon.
//
// Connects to the daemon's Unix socket and speaks the framed protocol
// (protocol.hpp). submit() blocks until the result frame arrives, invoking
// an optional callback for each lifecycle event (queued/started) and
// forwarding a local CancelToken to the server as a cancel frame so Ctrl-C
// on the client cancels the remote job cooperatively.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "service/protocol.hpp"
#include "tracesel/job_request.hpp"
#include "util/cancel.hpp"
#include "util/framing.hpp"
#include "util/result.hpp"

namespace tracesel::service {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to a daemon's Unix socket. Typed error when the path is too
  /// long, the socket is absent, or nobody is listening.
  static util::Result<Client> connect(const std::string& socket_path);

  bool connected() const { return fd_ >= 0; }
  void close();

  /// Lifecycle callback: status ("queued"/"started") and queue position.
  using EventFn =
      std::function<void(std::string_view status, std::uint64_t position)>;

  /// Submits a job and blocks until its result frame. When `cancel` fires
  /// a cancel frame is sent and the call keeps waiting for the server's
  /// (now cancelled/partial) result, so the outcome status is authoritative.
  util::Result<JobOutcome> submit(const JobRequest& request,
                                  util::CancelToken cancel = {},
                                  const EventFn& on_event = {});

  /// The daemon's flat stats JSON (jobs.* and store.* counters).
  util::Result<std::string> stats();
  /// The daemon's live telemetry JSON (queue/utilization gauges,
  /// per-tenant accounting, event journal, slow-job log).
  util::Result<std::string> telemetry();
  util::Status ping();
  /// Asks the daemon to drain and exit; resolves once the daemon acks.
  util::Status stop();

 private:
  util::Result<Message> next_message(const util::CancelToken* cancel,
                                     bool* sent_cancel);
  util::Status send_payload(const std::string& payload);

  int fd_ = -1;
  util::FrameReader reader_;
};

}  // namespace tracesel::service
