#include "service/server.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "debug/serialize.hpp"
#include "tracesel/query_core.hpp"
#include "util/framing.hpp"
#include "util/log.hpp"
#include "util/obs.hpp"
#include "util/subprocess.hpp"

namespace tracesel::service {

namespace {

/// The accept/connection poll slice: long enough to stay cheap, short
/// enough that shutdown and job completion are noticed promptly.
constexpr int kPollMs = 100;

/// Per-job obs metrics: the delta of this thread's counter shard across
/// the job (obs.hpp thread_counter_values). Empty string when the obs
/// layer is off.
std::string metrics_delta_json(
    const std::vector<std::pair<std::string, std::uint64_t>>& before,
    const std::vector<std::pair<std::string, std::uint64_t>>& after) {
  if (!obs::enabled()) return {};
  util::Json j = util::Json::object();
  std::size_t bi = 0;
  for (const auto& [name, value] : after) {
    std::uint64_t prev = 0;
    // Both vectors are in registration (id) order; advance in lockstep.
    while (bi < before.size() && before[bi].first != name) ++bi;
    if (bi < before.size()) prev = before[bi].second;
    if (value > prev) j.set(name, util::Json::number(value - prev));
  }
  return j.dump();
}

/// The same before/after delta as named counter pairs, for the telemetry
/// shipped back to a tracing client.
std::vector<std::pair<std::string, std::uint64_t>> metrics_delta_pairs(
    const std::vector<std::pair<std::string, std::uint64_t>>& before,
    const std::vector<std::pair<std::string, std::uint64_t>>& after) {
  std::vector<std::pair<std::string, std::uint64_t>> delta;
  std::size_t bi = 0;
  for (const auto& [name, value] : after) {
    std::uint64_t prev = 0;
    while (bi < before.size() && before[bi].first != name) ++bi;
    if (bi < before.size()) prev = before[bi].second;
    if (value > prev) delta.emplace_back(name, value - prev);
  }
  return delta;
}

/// "svc.job 812ms, selection.step2.score 790ms, ..." — the job's longest
/// spans, for the slow-job log.
std::string span_summary(const std::vector<obs::TraceEvent>& events) {
  std::vector<const obs::TraceEvent*> by_dur;
  by_dur.reserve(events.size());
  for (const obs::TraceEvent& e : events) by_dur.push_back(&e);
  std::sort(by_dur.begin(), by_dur.end(),
            [](const obs::TraceEvent* a, const obs::TraceEvent* b) {
              return a->dur_ns > b->dur_ns;
            });
  std::string out;
  const std::size_t top = std::min<std::size_t>(3, by_dur.size());
  for (std::size_t i = 0; i < top; ++i) {
    if (i != 0) out += ", ";
    out += by_dur[i]->name;
    out += ' ';
    out += std::to_string(by_dur[i]->dur_ns / 1000000);
    out += "ms";
  }
  return out;
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  if (options_.runners == 0) options_.runners = 1;
}

Server::~Server() {
  begin_drain();
  for (auto& t : runners_)
    if (t.joinable()) t.join();
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (auto& t : conns_)
      if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(options_.socket_path.c_str());
  }
}

util::Status Server::start() {
  if (options_.socket_path.empty())
    return util::Error{util::ErrorCode::kInvalidArgument,
                       "traceseld: no socket path"};
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path))
    return util::Error{util::ErrorCode::kInvalidArgument,
                       "traceseld: socket path '" + options_.socket_path +
                           "' exceeds the sun_path limit (" +
                           std::to_string(sizeof(addr.sun_path) - 1) +
                           " chars); use a shorter path"};
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size());

  util::ignore_sigpipe();  // a vanished client surfaces as EPIPE, not SIGPIPE
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0)
    return util::Error{util::ErrorCode::kInternal,
                       std::string("traceseld: socket failed: ") +
                           std::strerror(errno)};
  ::unlink(options_.socket_path.c_str());  // stale socket from a dead daemon
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Error{util::ErrorCode::kInternal,
                       "traceseld: bind(" + options_.socket_path +
                           ") failed: " + std::strerror(err)};
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Error{util::ErrorCode::kInternal,
                       std::string("traceseld: listen failed: ") +
                           std::strerror(err)};
  }

  // Crash durability: replay the write-ahead journal before the first
  // runner starts and before the socket is advertised, so recovered jobs
  // re-enter the queue in their original admission order ahead of any new
  // submissions.
  if (!options_.journal_dir.empty()) {
    JournalOptions jo;
    jo.dir = options_.journal_dir;
    jo.rotate_bytes = options_.journal_rotate_bytes;
    auto rec = wal_.open(std::move(jo));
    if (!rec.ok()) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      ::unlink(options_.socket_path.c_str());
      return rec.error();
    }
    JournalRecovery r = std::move(rec).value();
    if (r.next_job_id > next_job_id_.load(std::memory_order_relaxed))
      next_job_id_.store(r.next_job_id, std::memory_order_relaxed);
    for (RecoveredJob& j : r.pending) enqueue_recovered(std::move(j));
    if (!r.note.empty())
      util::Log(util::LogLevel::kInfo) << "traceseld: " << r.note;
  }

  started_at_ = std::chrono::steady_clock::now();
  runners_.reserve(options_.runners);
  for (std::size_t i = 0; i < options_.runners; ++i)
    runners_.emplace_back([this] { runner_main(); });
  util::Log(util::LogLevel::kInfo)
      << "traceseld: listening on " << options_.socket_path << " ("
      << options_.runners << " runner(s))";
  return util::Status::success();
}

int Server::serve() {
  while (!draining()) {
    if (options_.shutdown.cancelled()) break;
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, kPollMs);
    if (r < 0) {
      if (errno == EINTR) continue;
      util::Log(util::LogLevel::kError)
          << "traceseld: poll failed: " << std::strerror(errno);
      break;
    }
    if (r == 0 || (pfd.revents & POLLIN) == 0) continue;
    const int cfd = ::accept(listen_fd_, nullptr, nullptr);
    if (cfd < 0) continue;
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns_.emplace_back([this, cfd] { connection_main(cfd); });
  }

  // Drain-and-exit: no new connections or submissions; queued jobs finish
  // and every waiting client gets its result frame before we return.
  begin_drain();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());
  for (auto& t : runners_) t.join();
  runners_.clear();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& t : conns) t.join();
  util::Log(util::LogLevel::kInfo) << "traceseld: drained, exiting";
  return 0;
}

void Server::begin_drain() {
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    draining_.store(true, std::memory_order_relaxed);
  }
  queue_cv_.notify_all();
}

std::uint64_t Server::mean_job_ms() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return finished_jobs_ > 0 ? finished_ms_ / finished_jobs_ : 0;
}

std::uint64_t Server::retry_hint_ms(std::size_t queue_depth) const {
  // Floor + the estimated time for the backlog to clear: depth+1 jobs at
  // the observed mean wall time, spread over the runner pool. With no
  // history yet, assume a small per-job cost so the hint still scales
  // with depth. Capped so a pathological backlog cannot tell clients to
  // sleep forever.
  const std::uint64_t mean = mean_job_ms();
  const std::uint64_t per_job = mean > 0 ? mean : 25;
  const std::uint64_t hint =
      options_.retry_after_floor_ms +
      per_job * (static_cast<std::uint64_t>(queue_depth) + 1) /
          std::max<std::uint64_t>(1, options_.runners);
  return std::min<std::uint64_t>(hint, 10000);
}

Server::Admission Server::admit(JobRequest request) {
  Admission a;
  // Resolve the content hash before taking queue_mu_ — it may read the
  // spec file. rkey == 0 means unresolvable here; run_job will surface
  // the real error, and the job simply skips attach/durable-cache paths.
  std::uint64_t rkey = 0;
  if (auto sh = QueryCore::source_hash(request); sh.ok())
    rkey = request.canonical_hash(sh.value());

  // Per-tenant shed accounting happens outside queue_mu_ (telemetry_mu_
  // stays innermost); stats_mu_ nests under queue_mu_ as elsewhere.
  const auto note_shed = [this](const std::string& tenant) {
    std::lock_guard<std::mutex> lk(telemetry_mu_);
    auto it = std::find_if(tenants_.begin(), tenants_.end(),
                           [&](const auto& t) { return t.first == tenant; });
    if (it == tenants_.end()) {
      tenants_.emplace_back(tenant, TenantStats{});
      it = std::prev(tenants_.end());
    }
    ++it->second.shed;
  };

  std::unique_lock<std::mutex> lk(queue_mu_);
  if (draining()) {
    a.why = "server is shutting down";
    std::lock_guard<std::mutex> slk(stats_mu_);
    ++stats_.rejected;
    return a;
  }

  // Idempotent resubmission: an in-flight job for the same canonical hash
  // means this submission can just watch that job instead of queueing a
  // duplicate computation (same_computation guards hash collisions).
  // Attach only when the outcomes would agree: never to a job already
  // cancelled, and never across differing deadlines — a twin's tighter
  // deadline would hand this client a partial result it did not ask for.
  // (Cancel/attach/release decisions all serialize under queue_mu_.)
  if (rkey != 0) {
    for (const auto& j : inflight_) {
      if (j->rkey == rkey && !j->cancel.cancelled() &&
          j->request.deadline_ms == request.deadline_ms &&
          j->request.same_computation(request)) {
        j->watchers.fetch_add(1, std::memory_order_relaxed);
        a.job = j;
        a.attached = true;
        for (std::size_t i = 0; i < queue_.size(); ++i)
          if (queue_[i] == j) a.position = i + 1;
        OBS_COUNT("svc.jobs.attached", 1);
        std::lock_guard<std::mutex> slk(stats_mu_);
        ++stats_.attached;
        return a;
      }
    }
  }

  // Per-tenant in-flight cap: one noisy tenant cannot occupy the whole
  // queue. Shed with a typed retry-after rather than a hard error.
  if (options_.per_tenant_inflight > 0) {
    auto it = std::find_if(
        tenant_inflight_.begin(), tenant_inflight_.end(),
        [&](const auto& t) { return t.first == request.tenant; });
    if (it != tenant_inflight_.end() &&
        it->second >= options_.per_tenant_inflight) {
      a.retry_after_ms = retry_hint_ms(queue_.size());
      a.why = "tenant '" + (request.tenant.empty() ? "-" : request.tenant) +
              "' is at its in-flight cap (" +
              std::to_string(options_.per_tenant_inflight) + ")";
      OBS_COUNT("svc.shed.tenant_cap", 1);
      {
        std::lock_guard<std::mutex> slk(stats_mu_);
        ++stats_.rejected;
        ++stats_.retry_after;
        ++stats_.shed_tenant_cap;
      }
      lk.unlock();
      note_shed(request.tenant);
      return a;
    }
  }

  if (queue_.size() >= options_.max_queue) {
    a.retry_after_ms = retry_hint_ms(queue_.size());
    a.why = "job queue is full (" + std::to_string(options_.max_queue) + ")";
    OBS_COUNT("svc.shed.queue_full", 1);
    {
      std::lock_guard<std::mutex> slk(stats_mu_);
      ++stats_.rejected;
      ++stats_.retry_after;
    }
    lk.unlock();
    note_shed(request.tenant);
    return a;
  }

  // Deadline-aware shedding: if the backlog alone is predicted to outlast
  // the job's deadline, queueing it only wastes a runner on a job that
  // will start already doomed — shed it now with an honest hint.
  if (request.deadline_ms > 0) {
    const std::uint64_t wait =
        mean_job_ms() * static_cast<std::uint64_t>(queue_.size()) /
        std::max<std::uint64_t>(1, options_.runners);
    if (wait > 0 && wait >= request.deadline_ms) {
      a.retry_after_ms = retry_hint_ms(queue_.size());
      a.why = "predicted queue wait " + std::to_string(wait) +
              "ms exceeds the job deadline " +
              std::to_string(request.deadline_ms) + "ms";
      OBS_COUNT("svc.shed.deadline", 1);
      {
        std::lock_guard<std::mutex> slk(stats_mu_);
        ++stats_.rejected;
        ++stats_.retry_after;
        ++stats_.shed_deadline;
      }
      lk.unlock();
      note_shed(request.tenant);
      return a;
    }
  }

  auto job = std::make_shared<Job>();
  job->id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
  job->request = std::move(request);
  job->rkey = rkey;
  job->watchers.store(1, std::memory_order_relaxed);
  // WAL discipline: the accepted record is on disk (fsync'd) before the
  // job becomes visible to any runner.
  wal_.accepted(job->id, job->request);
  queue_.push_back(job);
  inflight_.push_back(job);
  a.position = queue_.size();
  {
    auto it = std::find_if(
        tenant_inflight_.begin(), tenant_inflight_.end(),
        [&](const auto& t) { return t.first == job->request.tenant; });
    if (it == tenant_inflight_.end())
      tenant_inflight_.emplace_back(job->request.tenant, 1);
    else
      ++it->second;
  }
  OBS_GAUGE_MAX("svc.queue.peak_depth", queue_.size());
  {
    std::lock_guard<std::mutex> slk(stats_mu_);
    ++stats_.submitted;
  }
  journal_append(job->id, job->request.tenant, "queued");
  queue_cv_.notify_one();
  a.job = std::move(job);
  return a;
}

void Server::enqueue_recovered(RecoveredJob r) {
  // start()-only (single-threaded, pre-listen): admission control is
  // bypassed — these jobs were admitted and journalled in a previous life.
  std::uint64_t rkey = 0;
  if (auto sh = QueryCore::source_hash(r.request); sh.ok())
    rkey = r.request.canonical_hash(sh.value());
  std::lock_guard<std::mutex> lk(queue_mu_);
  auto job = std::make_shared<Job>();
  job->id = r.id;
  job->request = std::move(r.request);
  job->rkey = rkey;
  job->replayed = true;
  queue_.push_back(job);
  inflight_.push_back(job);
  {
    auto it = std::find_if(
        tenant_inflight_.begin(), tenant_inflight_.end(),
        [&](const auto& t) { return t.first == job->request.tenant; });
    if (it == tenant_inflight_.end())
      tenant_inflight_.emplace_back(job->request.tenant, 1);
    else
      ++it->second;
  }
  {
    std::lock_guard<std::mutex> slk(stats_mu_);
    ++stats_.submitted;
    ++stats_.recovered;
  }
  journal_append(job->id, job->request.tenant, "recovered");
  queue_cv_.notify_one();
}

std::shared_ptr<Server::Job> Server::pop_job() {
  std::unique_lock<std::mutex> lk(queue_mu_);
  queue_cv_.wait(lk, [this] { return !queue_.empty() || draining(); });
  if (queue_.empty()) return nullptr;  // draining
  auto job = queue_.front();
  queue_.pop_front();
  return job;
}

void Server::runner_main() {
  while (auto job = pop_job()) run_job(*job);
}

void Server::run_job(Job& job) {
  {
    std::lock_guard<std::mutex> lk(job.mu);
    job.state = Job::State::kRunning;
  }
  job.cv.notify_all();
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.running;
  }
  journal_append(job.id, job.request.tenant, "started");
  wal_.started(job.id);
  if (options_.on_job_start) options_.on_job_start(job.request);
  // The deadline starts when the job starts — queue time must not eat a
  // client's compute budget.
  if (job.request.deadline_ms > 0)
    job.cancel.set_timeout(std::chrono::milliseconds(job.request.deadline_ms));

  // A tracing client stamped its TraceContext into the request: enable
  // the obs layer (one-way — stats-only daemons stay zero-cost) so the
  // job's spans and counter deltas can ride back in the result frame.
  const bool tracing = job.request.trace_id != 0;
  if (tracing) obs::set_enabled(true);

  const auto t0 = std::chrono::steady_clock::now();
  const auto before = obs::registry().thread_counter_values();
  const std::size_t events_mark = obs::thread_events_mark();

  JobOutcome out;
  out.job_id = job.id;
  {
    // The job span parents under the *client's* submit span (explicit
    // parent: runners serve concurrent jobs with distinct parents, so the
    // process-global context cannot carry it).
    obs::Span job_span("svc.job", job.request.parent_span_id);
    OBS_COUNT("svc.jobs", 1);
    // Durable result cache: a completed twin from a previous daemon life
    // is served byte-identically from disk, no recompute. The collision
    // guard inside load_result re-checks same_computation.
    bool disk_hit = false;
    if (wal_.enabled() && job.rkey != 0) {
      if (auto cached = wal_.load_result(job.rkey, job.request); cached.ok()) {
        out.report_json = std::move(cached).value();
        out.cache_hit = true;
        out.status = "ok";
        disk_hit = true;
        OBS_COUNT("svc.result.disk_hits", 1);
      }
    }
    if (!disk_hit) try {
      QueryCore::RunOptions ro;
      if (wal_.enabled() && job.rkey != 0) {
        // Long jobs snapshot at wave boundaries under <journal>/ckpt/ and
        // resume from there when replayed after a crash.
        ro.checkpoint_path = wal_.checkpoint_path(job.rkey);
        ro.checkpoint_interval = options_.checkpoint_interval;
        ro.try_resume = true;
      }
      auto run = QueryCore::run(job.request, &store_, job.cancel, ro);
      if (!run.ok()) {
        out.status = "error";
        out.error = run.error().to_string();
      } else {
        const QueryCore::Outcome& o = run.value();
        out.cache_hit = o.result_cache_hit;
        out.workload_cache_hit = o.workload_cache_hit;
        // The exact bytes `tracesel select --json` prints, so clients can
        // diff daemon answers against the single-process CLI.
        out.report_json =
            selection::to_json(*o.workload->catalog, *o.result).dump(2);
        out.status = !o.result->partial
                         ? "ok"
                         : (job.client_cancelled.load(std::memory_order_relaxed)
                                ? "cancelled"
                                : "partial");
        if (out.status == "ok" && wal_.enabled() && job.rkey != 0) {
          // Persist the exact report bytes, then drop the now-redundant
          // checkpoint — the result supersedes it.
          (void)wal_.store_result(job.rkey, job.request, out.report_json);
          ::unlink(wal_.checkpoint_path(job.rkey).c_str());
        }
      }
    } catch (const util::CancelledError& e) {
      // A stage with no partial form (parse, interleave build) unwound.
      out.status = job.client_cancelled.load(std::memory_order_relaxed)
                       ? "cancelled"
                       : "partial";
      out.error = e.what();
    } catch (const std::exception& e) {
      out.status = "error";
      out.error = e.what();
    }
  }

  const auto after = obs::registry().thread_counter_values();
  out.metrics_json = metrics_delta_json(before, after);
  out.elapsed_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());

  // The per-job window of this runner thread's event buffer: the job's
  // own spans (svc.job and everything under it), not the whole process.
  std::vector<obs::TraceEvent> job_events =
      obs::enabled() ? obs::thread_events_since(events_mark)
                     : std::vector<obs::TraceEvent>{};
  if (tracing) {
    obs::ProcessTelemetry t;
    t.label = "traceseld";
    t.pid = static_cast<std::uint64_t>(::getpid());
    t.epoch_ns = obs::trace_epoch_ns();
    t.metrics.counters = metrics_delta_pairs(before, after);
    for (const obs::TraceEvent& e : job_events) {
      obs::WireTraceEvent w;
      w.name = e.name;
      w.ts_ns = e.ts_ns;
      w.dur_ns = e.dur_ns;
      w.tid = e.tid;
      w.depth = e.depth;
      w.span_id = e.span_id;
      w.parent_id = e.parent_id;
      t.events.push_back(std::move(w));
    }
    out.telemetry = obs::serialize_telemetry(t);
  }

  // WAL terminal record before the outcome becomes visible: cancelled
  // jobs replay as cancelled, everything else (ok, partial, error) is
  // finished business a restart must not re-run.
  if (out.status == "cancelled")
    wal_.cancelled(job.id);
  else
    wal_.completed(job.id, job.rkey);

  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    --stats_.running;
    if (out.status == "ok") ++stats_.completed;
    else if (out.status == "partial") ++stats_.partial;
    else if (out.status == "cancelled") ++stats_.cancelled;
    else ++stats_.errors;
    ++finished_jobs_;
    finished_ms_ += out.elapsed_ms;
  }
  {
    // Release the admission-control slots (attach lookup + tenant cap).
    std::lock_guard<std::mutex> lk(queue_mu_);
    inflight_.erase(
        std::remove_if(inflight_.begin(), inflight_.end(),
                       [&](const auto& j) { return j.get() == &job; }),
        inflight_.end());
    auto it = std::find_if(
        tenant_inflight_.begin(), tenant_inflight_.end(),
        [&](const auto& t) { return t.first == job.request.tenant; });
    if (it != tenant_inflight_.end() && it->second > 0) --it->second;
  }
  journal_append(job.id, job.request.tenant, out.status, out.elapsed_ms,
                 out.status == "error" ? out.error : std::string());
  {
    std::lock_guard<std::mutex> lk(telemetry_mu_);
    busy_ms_ += out.elapsed_ms;
    auto tenant = std::find_if(
        tenants_.begin(), tenants_.end(),
        [&](const auto& t) { return t.first == job.request.tenant; });
    if (tenant == tenants_.end()) {
      tenants_.emplace_back(job.request.tenant, TenantStats{});
      tenant = std::prev(tenants_.end());
    }
    ++tenant->second.jobs;
    if (out.status == "error") ++tenant->second.errors;
    tenant->second.busy_ms += out.elapsed_ms;
  }
  if (out.elapsed_ms >= options_.slow_job_ms) {
    OBS_COUNT("svc.jobs.slow", 1);
    journal_append(job.id, job.request.tenant, "slow", out.elapsed_ms,
                   span_summary(job_events));
    std::lock_guard<std::mutex> lk(telemetry_mu_);
    // journal_append copied the entry into the ring; mirror the newest
    // one into the bounded slow-job log.
    if (!journal_.empty()) {
      slow_jobs_.push_back(journal_.back());
      if (slow_jobs_.size() > 32) slow_jobs_.pop_front();
    }
  }
  {
    std::lock_guard<std::mutex> lk(job.mu);
    job.outcome = std::move(out);
    job.state = Job::State::kDone;
  }
  job.cv.notify_all();
}

std::uint64_t Server::uptime_ms() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - started_at_)
          .count());
}

void Server::journal_append(std::uint64_t job_id, const std::string& tenant,
                            std::string event, std::uint64_t elapsed_ms,
                            std::string detail) {
  std::lock_guard<std::mutex> lk(telemetry_mu_);
  JournalEntry entry;
  entry.seq = ++journal_seq_;
  entry.at_ms = uptime_ms();
  entry.job_id = job_id;
  entry.tenant = tenant;
  entry.event = std::move(event);
  entry.elapsed_ms = elapsed_ms;
  entry.detail = std::move(detail);
  journal_.push_back(std::move(entry));
  while (journal_.size() > options_.journal_capacity) journal_.pop_front();
}

void Server::connection_main(int fd) {
  util::FrameReader reader(options_.max_frame_bytes);
  char buf[4096];
  std::shared_ptr<Job> active;
  bool started_sent = false;
  bool peer_gone = false;

  const auto send = [&](const std::string& payload) {
    if (peer_gone) return;
    if (!util::write_frame(fd, payload).ok()) peer_gone = true;
  };
  // Detach from the watched job; when this was its last watcher and
  // `cancel` is set, cancel it cooperatively. Replayed jobs are never
  // disconnect-cancelled: nobody held a connection to them to begin with,
  // and recovery must run them to completion.
  const auto release_active = [&](bool cancel) {
    if (!active) return;
    {
      // queue_mu_ serializes this against admit()'s attach check, so a
      // submission cannot attach to a job in the act of being cancelled.
      std::lock_guard<std::mutex> lk(queue_mu_);
      const int left =
          active->watchers.fetch_sub(1, std::memory_order_acq_rel) - 1;
      if (cancel && left <= 0 && !active->replayed) {
        active->client_cancelled.store(true, std::memory_order_relaxed);
        active->cancel.cancel();
      }
    }
    active.reset();
  };

  while (!peer_gone) {
    if (active) {
      // Watch the job between socket polls; stream lifecycle transitions.
      Job::State state;
      JobOutcome outcome;
      {
        std::lock_guard<std::mutex> lk(active->mu);
        state = active->state;
        if (state == Job::State::kDone) outcome = active->outcome;
      }
      if (state != Job::State::kQueued && !started_sent) {
        send(encode_event("started", 0));
        started_sent = true;
      }
      if (state == Job::State::kDone) {
        send(encode_result(outcome));
        release_active(/*cancel=*/false);
        started_sent = false;
        continue;
      }
      // Block on the job's cv (run_job notifies every transition) so the
      // result streams without polling latency; time out at kPollMs to
      // keep watching the socket for cancel frames and disconnects.
      {
        std::unique_lock<std::mutex> lk(active->mu);
        active->cv.wait_for(lk, std::chrono::milliseconds(kPollMs), [&] {
          return active->state != (started_sent ? Job::State::kRunning
                                                : Job::State::kQueued);
        });
      }
    } else if (draining()) {
      break;  // idle connection during drain
    }

    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, active ? 0 : kPollMs);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pr == 0) continue;
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) {
      // Disconnect cancels the client's in-flight job — when this was its
      // last watcher: nobody is waiting for the answer, so stop burning
      // the machine on it. Attached twins keep it alive.
      release_active(/*cancel=*/true);
      break;
    }
    reader.feed(buf, static_cast<std::size_t>(n));

    std::string payload;
    while (!peer_gone) {
      const auto st = reader.next(payload);
      if (st == util::FrameReader::State::kNeedMore) break;
      if (st == util::FrameReader::State::kCorrupt) {
        // Malformed/oversized frame: typed rejection, then drop the
        // connection — the stream cannot be resynchronized.
        {
          std::lock_guard<std::mutex> lk(stats_mu_);
          ++stats_.protocol_errors;
        }
        send(encode_error("protocol error: " + reader.corrupt_reason()));
        peer_gone = true;
        break;
      }
      auto msg = parse_message(payload);
      if (!msg.ok()) {
        std::lock_guard<std::mutex> lk(stats_mu_);
        ++stats_.protocol_errors;
        send(encode_error(msg.error().to_string()));
        continue;
      }
      Message& m = msg.value();
      switch (m.type) {
        case MessageType::kPing:
          send(encode_simple(MessageType::kPong));
          break;
        case MessageType::kStats:
          send(encode_stats_result(stats_json().dump(2)));
          break;
        case MessageType::kTelemetry:
          send(encode_telemetry_result(telemetry_json().dump(2)));
          break;
        case MessageType::kStop:
          begin_drain();
          send(encode_simple(MessageType::kOk));
          break;
        case MessageType::kCancel:
          // A cancel frame kills the job only when this connection is its
          // sole watcher — attached twins still want the answer. Either
          // way the canceller keeps streaming and takes the shared result
          // as authoritative.
          if (active) {
            std::lock_guard<std::mutex> lk(queue_mu_);
            if (active->watchers.load(std::memory_order_relaxed) <= 1) {
              active->client_cancelled.store(true, std::memory_order_relaxed);
              active->cancel.cancel();
            }
          }
          send(encode_simple(MessageType::kOk));
          break;
        case MessageType::kSubmit: {
          if (active) {
            send(encode_error(
                "a job is already in flight on this connection"));
            break;
          }
          Admission adm = admit(std::move(m.request));
          if (!adm.job) {
            // admit() already counted the rejection; sheds carry a typed
            // retry-after hint, hard refusals (draining) a plain error.
            send(adm.retry_after_ms > 0
                     ? encode_retry_after(adm.retry_after_ms, adm.why)
                     : encode_error(adm.why));
            break;
          }
          active = std::move(adm.job);
          started_sent = false;
          send(encode_event(adm.attached ? "attached" : "queued",
                            adm.position));
          break;
        }
        default:
          send(encode_error("unexpected verb on a client connection"));
          break;
      }
    }
  }
  release_active(/*cancel=*/true);  // send failure path: the client is gone
  ::close(fd);
}

Server::Stats Server::stats() const {
  Stats s;
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    s = stats_;
  }
  std::lock_guard<std::mutex> lk(queue_mu_);
  s.queued = queue_.size();
  return s;
}

util::Json Server::stats_json() const {
  const Stats s = stats();
  const ArtifactStore::Stats ss = store_.stats();
  util::Json j = util::Json::object();
  j.set("uptime_ms",
        util::Json::number(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - started_at_)
                .count())));
  j.set("runners", util::Json::number(std::uint64_t{options_.runners}));
  j.set("jobs.submitted", util::Json::number(s.submitted));
  j.set("jobs.completed", util::Json::number(s.completed));
  j.set("jobs.partial", util::Json::number(s.partial));
  j.set("jobs.cancelled", util::Json::number(s.cancelled));
  j.set("jobs.errors", util::Json::number(s.errors));
  j.set("jobs.rejected", util::Json::number(s.rejected));
  j.set("jobs.retry_after", util::Json::number(s.retry_after));
  j.set("jobs.shed.tenant_cap", util::Json::number(s.shed_tenant_cap));
  j.set("jobs.shed.deadline", util::Json::number(s.shed_deadline));
  j.set("jobs.attached", util::Json::number(s.attached));
  j.set("jobs.recovered", util::Json::number(s.recovered));
  j.set("jobs.protocol_errors", util::Json::number(s.protocol_errors));
  j.set("jobs.queued", util::Json::number(s.queued));
  j.set("jobs.running", util::Json::number(s.running));
  if (wal_.enabled()) {
    j.set("journal.bytes", util::Json::number(wal_.bytes()));
    j.set("journal.records", util::Json::number(wal_.records_appended()));
    j.set("journal.rotations", util::Json::number(wal_.rotations()));
  }
  j.set("store.workload.hits", util::Json::number(ss.workload_hits));
  j.set("store.workload.misses", util::Json::number(ss.workload_misses));
  j.set("store.result.hits", util::Json::number(ss.result_hits));
  j.set("store.result.misses", util::Json::number(ss.result_misses));
  j.set("store.result.collisions", util::Json::number(ss.collisions));
  j.set("store.workload.entries", util::Json::number(ss.workload_entries));
  j.set("store.result.entries", util::Json::number(ss.result_entries));
  return j;
}

util::Json Server::telemetry_json() const {
  // Lock discipline: stats() takes stats_mu_ then queue_mu_ and releases
  // both before telemetry_mu_ below (journal_append runs under queue_mu_ ->
  // telemetry_mu_, so telemetry_mu_ must always be innermost).
  const Stats s = stats();
  const std::uint64_t up = uptime_ms();

  const auto entry_json = [](const JournalEntry& e) {
    util::Json j = util::Json::object();
    j.set("seq", util::Json::number(e.seq));
    j.set("at_ms", util::Json::number(e.at_ms));
    j.set("job", util::Json::number(e.job_id));
    if (!e.tenant.empty()) j.set("tenant", util::Json::string(e.tenant));
    j.set("event", util::Json::string(e.event));
    if (e.elapsed_ms != 0) j.set("elapsed_ms", util::Json::number(e.elapsed_ms));
    if (!e.detail.empty()) j.set("detail", util::Json::string(e.detail));
    return j;
  };

  util::Json j = util::Json::object();
  j.set("uptime_ms", util::Json::number(up));
  j.set("runners", util::Json::number(std::uint64_t{options_.runners}));
  j.set("slow_job_threshold_ms", util::Json::number(options_.slow_job_ms));
  j.set("queue.depth", util::Json::number(s.queued));
  j.set("queue.max", util::Json::number(std::uint64_t{options_.max_queue}));
  j.set("jobs.running", util::Json::number(s.running));
  j.set("jobs.submitted", util::Json::number(s.submitted));
  j.set("jobs.completed", util::Json::number(s.completed));
  j.set("jobs.errors", util::Json::number(s.errors));
  j.set("jobs.retry_after", util::Json::number(s.retry_after));
  j.set("jobs.attached", util::Json::number(s.attached));
  j.set("jobs.recovered", util::Json::number(s.recovered));
  if (options_.per_tenant_inflight > 0)
    j.set("tenant_inflight_cap",
          util::Json::number(std::uint64_t{options_.per_tenant_inflight}));
  if (wal_.enabled()) {
    util::Json wj = util::Json::object();
    wj.set("dir", util::Json::string(wal_.dir()));
    wj.set("bytes", util::Json::number(wal_.bytes()));
    wj.set("records", util::Json::number(wal_.records_appended()));
    wj.set("rotations", util::Json::number(wal_.rotations()));
    j.set("wal", std::move(wj));
  }

  std::lock_guard<std::mutex> lk(telemetry_mu_);
  j.set("busy_ms", util::Json::number(busy_ms_));
  // Runner utilization over the daemon's lifetime: busy runner-ms over
  // elapsed runner-ms, clamped (in-flight jobs are not yet in busy_ms_).
  const double capacity_ms =
      static_cast<double>(up) * static_cast<double>(options_.runners);
  const double util_ratio =
      capacity_ms > 0.0
          ? std::min(1.0, static_cast<double>(busy_ms_) / capacity_ms)
          : 0.0;
  j.set("utilization", util::Json::number(util_ratio));

  util::Json tenants = util::Json::object();
  for (const auto& [name, t] : tenants_) {
    util::Json tj = util::Json::object();
    tj.set("jobs", util::Json::number(t.jobs));
    tj.set("errors", util::Json::number(t.errors));
    tj.set("busy_ms", util::Json::number(t.busy_ms));
    if (t.shed != 0) tj.set("shed", util::Json::number(t.shed));
    tenants.set(name.empty() ? "-" : name, std::move(tj));
  }
  j.set("tenants", std::move(tenants));

  util::Json journal = util::Json::array();
  for (const JournalEntry& e : journal_) journal.push_back(entry_json(e));
  j.set("journal", std::move(journal));

  util::Json slow = util::Json::array();
  for (const JournalEntry& e : slow_jobs_) slow.push_back(entry_json(e));
  j.set("slow_jobs", std::move(slow));
  return j;
}

}  // namespace tracesel::service
