#include "service/server.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "debug/serialize.hpp"
#include "tracesel/query_core.hpp"
#include "util/framing.hpp"
#include "util/log.hpp"
#include "util/obs.hpp"
#include "util/subprocess.hpp"

namespace tracesel::service {

namespace {

/// The accept/connection poll slice: long enough to stay cheap, short
/// enough that shutdown and job completion are noticed promptly.
constexpr int kPollMs = 100;

/// Per-job obs metrics: the delta of this thread's counter shard across
/// the job (obs.hpp thread_counter_values). Empty string when the obs
/// layer is off.
std::string metrics_delta_json(
    const std::vector<std::pair<std::string, std::uint64_t>>& before,
    const std::vector<std::pair<std::string, std::uint64_t>>& after) {
  if (!obs::enabled()) return {};
  util::Json j = util::Json::object();
  std::size_t bi = 0;
  for (const auto& [name, value] : after) {
    std::uint64_t prev = 0;
    // Both vectors are in registration (id) order; advance in lockstep.
    while (bi < before.size() && before[bi].first != name) ++bi;
    if (bi < before.size()) prev = before[bi].second;
    if (value > prev) j.set(name, util::Json::number(value - prev));
  }
  return j.dump();
}

/// The same before/after delta as named counter pairs, for the telemetry
/// shipped back to a tracing client.
std::vector<std::pair<std::string, std::uint64_t>> metrics_delta_pairs(
    const std::vector<std::pair<std::string, std::uint64_t>>& before,
    const std::vector<std::pair<std::string, std::uint64_t>>& after) {
  std::vector<std::pair<std::string, std::uint64_t>> delta;
  std::size_t bi = 0;
  for (const auto& [name, value] : after) {
    std::uint64_t prev = 0;
    while (bi < before.size() && before[bi].first != name) ++bi;
    if (bi < before.size()) prev = before[bi].second;
    if (value > prev) delta.emplace_back(name, value - prev);
  }
  return delta;
}

/// "svc.job 812ms, selection.step2.score 790ms, ..." — the job's longest
/// spans, for the slow-job log.
std::string span_summary(const std::vector<obs::TraceEvent>& events) {
  std::vector<const obs::TraceEvent*> by_dur;
  by_dur.reserve(events.size());
  for (const obs::TraceEvent& e : events) by_dur.push_back(&e);
  std::sort(by_dur.begin(), by_dur.end(),
            [](const obs::TraceEvent* a, const obs::TraceEvent* b) {
              return a->dur_ns > b->dur_ns;
            });
  std::string out;
  const std::size_t top = std::min<std::size_t>(3, by_dur.size());
  for (std::size_t i = 0; i < top; ++i) {
    if (i != 0) out += ", ";
    out += by_dur[i]->name;
    out += ' ';
    out += std::to_string(by_dur[i]->dur_ns / 1000000);
    out += "ms";
  }
  return out;
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  if (options_.runners == 0) options_.runners = 1;
}

Server::~Server() {
  begin_drain();
  for (auto& t : runners_)
    if (t.joinable()) t.join();
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (auto& t : conns_)
      if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(options_.socket_path.c_str());
  }
}

util::Status Server::start() {
  if (options_.socket_path.empty())
    return util::Error{util::ErrorCode::kInvalidArgument,
                       "traceseld: no socket path"};
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path))
    return util::Error{util::ErrorCode::kInvalidArgument,
                       "traceseld: socket path '" + options_.socket_path +
                           "' exceeds the sun_path limit (" +
                           std::to_string(sizeof(addr.sun_path) - 1) +
                           " chars); use a shorter path"};
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size());

  util::ignore_sigpipe();  // a vanished client surfaces as EPIPE, not SIGPIPE
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0)
    return util::Error{util::ErrorCode::kInternal,
                       std::string("traceseld: socket failed: ") +
                           std::strerror(errno)};
  ::unlink(options_.socket_path.c_str());  // stale socket from a dead daemon
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Error{util::ErrorCode::kInternal,
                       "traceseld: bind(" + options_.socket_path +
                           ") failed: " + std::strerror(err)};
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Error{util::ErrorCode::kInternal,
                       std::string("traceseld: listen failed: ") +
                           std::strerror(err)};
  }

  started_at_ = std::chrono::steady_clock::now();
  runners_.reserve(options_.runners);
  for (std::size_t i = 0; i < options_.runners; ++i)
    runners_.emplace_back([this] { runner_main(); });
  util::Log(util::LogLevel::kInfo)
      << "traceseld: listening on " << options_.socket_path << " ("
      << options_.runners << " runner(s))";
  return util::Status::success();
}

int Server::serve() {
  while (!draining()) {
    if (options_.shutdown.cancelled()) break;
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, kPollMs);
    if (r < 0) {
      if (errno == EINTR) continue;
      util::Log(util::LogLevel::kError)
          << "traceseld: poll failed: " << std::strerror(errno);
      break;
    }
    if (r == 0 || (pfd.revents & POLLIN) == 0) continue;
    const int cfd = ::accept(listen_fd_, nullptr, nullptr);
    if (cfd < 0) continue;
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns_.emplace_back([this, cfd] { connection_main(cfd); });
  }

  // Drain-and-exit: no new connections or submissions; queued jobs finish
  // and every waiting client gets its result frame before we return.
  begin_drain();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());
  for (auto& t : runners_) t.join();
  runners_.clear();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& t : conns) t.join();
  util::Log(util::LogLevel::kInfo) << "traceseld: drained, exiting";
  return 0;
}

void Server::begin_drain() {
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    draining_.store(true, std::memory_order_relaxed);
  }
  queue_cv_.notify_all();
}

std::shared_ptr<Server::Job> Server::enqueue(JobRequest request,
                                             std::string& why) {
  std::lock_guard<std::mutex> lk(queue_mu_);
  if (draining()) {
    why = "server is shutting down";
    return nullptr;
  }
  if (queue_.size() >= options_.max_queue) {
    why = "job queue is full (" + std::to_string(options_.max_queue) + ")";
    return nullptr;
  }
  auto job = std::make_shared<Job>();
  job->id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
  job->request = std::move(request);
  queue_.push_back(job);
  OBS_GAUGE_MAX("svc.queue.peak_depth", queue_.size());
  {
    std::lock_guard<std::mutex> slk(stats_mu_);
    ++stats_.submitted;
  }
  journal_append(job->id, job->request.tenant, "queued");
  queue_cv_.notify_one();
  return job;
}

std::shared_ptr<Server::Job> Server::pop_job() {
  std::unique_lock<std::mutex> lk(queue_mu_);
  queue_cv_.wait(lk, [this] { return !queue_.empty() || draining(); });
  if (queue_.empty()) return nullptr;  // draining
  auto job = queue_.front();
  queue_.pop_front();
  return job;
}

void Server::runner_main() {
  while (auto job = pop_job()) run_job(*job);
}

void Server::run_job(Job& job) {
  {
    std::lock_guard<std::mutex> lk(job.mu);
    job.state = Job::State::kRunning;
  }
  job.cv.notify_all();
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.running;
  }
  journal_append(job.id, job.request.tenant, "started");
  // The deadline starts when the job starts — queue time must not eat a
  // client's compute budget.
  if (job.request.deadline_ms > 0)
    job.cancel.set_timeout(std::chrono::milliseconds(job.request.deadline_ms));

  // A tracing client stamped its TraceContext into the request: enable
  // the obs layer (one-way — stats-only daemons stay zero-cost) so the
  // job's spans and counter deltas can ride back in the result frame.
  const bool tracing = job.request.trace_id != 0;
  if (tracing) obs::set_enabled(true);

  const auto t0 = std::chrono::steady_clock::now();
  const auto before = obs::registry().thread_counter_values();
  const std::size_t events_mark = obs::thread_events_mark();

  JobOutcome out;
  out.job_id = job.id;
  {
    // The job span parents under the *client's* submit span (explicit
    // parent: runners serve concurrent jobs with distinct parents, so the
    // process-global context cannot carry it).
    obs::Span job_span("svc.job", job.request.parent_span_id);
    OBS_COUNT("svc.jobs", 1);
    try {
      auto run = QueryCore::run(job.request, &store_, job.cancel);
      if (!run.ok()) {
        out.status = "error";
        out.error = run.error().to_string();
      } else {
        const QueryCore::Outcome& o = run.value();
        out.cache_hit = o.result_cache_hit;
        out.workload_cache_hit = o.workload_cache_hit;
        // The exact bytes `tracesel select --json` prints, so clients can
        // diff daemon answers against the single-process CLI.
        out.report_json =
            selection::to_json(*o.workload->catalog, *o.result).dump(2);
        out.status = !o.result->partial
                         ? "ok"
                         : (job.client_cancelled.load(std::memory_order_relaxed)
                                ? "cancelled"
                                : "partial");
      }
    } catch (const util::CancelledError& e) {
      // A stage with no partial form (parse, interleave build) unwound.
      out.status = job.client_cancelled.load(std::memory_order_relaxed)
                       ? "cancelled"
                       : "partial";
      out.error = e.what();
    } catch (const std::exception& e) {
      out.status = "error";
      out.error = e.what();
    }
  }

  const auto after = obs::registry().thread_counter_values();
  out.metrics_json = metrics_delta_json(before, after);
  out.elapsed_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());

  // The per-job window of this runner thread's event buffer: the job's
  // own spans (svc.job and everything under it), not the whole process.
  std::vector<obs::TraceEvent> job_events =
      obs::enabled() ? obs::thread_events_since(events_mark)
                     : std::vector<obs::TraceEvent>{};
  if (tracing) {
    obs::ProcessTelemetry t;
    t.label = "traceseld";
    t.pid = static_cast<std::uint64_t>(::getpid());
    t.epoch_ns = obs::trace_epoch_ns();
    t.metrics.counters = metrics_delta_pairs(before, after);
    for (const obs::TraceEvent& e : job_events) {
      obs::WireTraceEvent w;
      w.name = e.name;
      w.ts_ns = e.ts_ns;
      w.dur_ns = e.dur_ns;
      w.tid = e.tid;
      w.depth = e.depth;
      w.span_id = e.span_id;
      w.parent_id = e.parent_id;
      t.events.push_back(std::move(w));
    }
    out.telemetry = obs::serialize_telemetry(t);
  }

  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    --stats_.running;
    if (out.status == "ok") ++stats_.completed;
    else if (out.status == "partial") ++stats_.partial;
    else if (out.status == "cancelled") ++stats_.cancelled;
    else ++stats_.errors;
  }
  journal_append(job.id, job.request.tenant, out.status, out.elapsed_ms,
                 out.status == "error" ? out.error : std::string());
  {
    std::lock_guard<std::mutex> lk(telemetry_mu_);
    busy_ms_ += out.elapsed_ms;
    auto tenant = std::find_if(
        tenants_.begin(), tenants_.end(),
        [&](const auto& t) { return t.first == job.request.tenant; });
    if (tenant == tenants_.end()) {
      tenants_.emplace_back(job.request.tenant, TenantStats{});
      tenant = std::prev(tenants_.end());
    }
    ++tenant->second.jobs;
    if (out.status == "error") ++tenant->second.errors;
    tenant->second.busy_ms += out.elapsed_ms;
  }
  if (out.elapsed_ms >= options_.slow_job_ms) {
    OBS_COUNT("svc.jobs.slow", 1);
    journal_append(job.id, job.request.tenant, "slow", out.elapsed_ms,
                   span_summary(job_events));
    std::lock_guard<std::mutex> lk(telemetry_mu_);
    // journal_append copied the entry into the ring; mirror the newest
    // one into the bounded slow-job log.
    if (!journal_.empty()) {
      slow_jobs_.push_back(journal_.back());
      if (slow_jobs_.size() > 32) slow_jobs_.pop_front();
    }
  }
  {
    std::lock_guard<std::mutex> lk(job.mu);
    job.outcome = std::move(out);
    job.state = Job::State::kDone;
  }
  job.cv.notify_all();
}

std::uint64_t Server::uptime_ms() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - started_at_)
          .count());
}

void Server::journal_append(std::uint64_t job_id, const std::string& tenant,
                            std::string event, std::uint64_t elapsed_ms,
                            std::string detail) {
  std::lock_guard<std::mutex> lk(telemetry_mu_);
  JournalEntry entry;
  entry.seq = ++journal_seq_;
  entry.at_ms = uptime_ms();
  entry.job_id = job_id;
  entry.tenant = tenant;
  entry.event = std::move(event);
  entry.elapsed_ms = elapsed_ms;
  entry.detail = std::move(detail);
  journal_.push_back(std::move(entry));
  while (journal_.size() > options_.journal_capacity) journal_.pop_front();
}

void Server::connection_main(int fd) {
  util::FrameReader reader(options_.max_frame_bytes);
  char buf[4096];
  std::shared_ptr<Job> active;
  bool started_sent = false;
  bool peer_gone = false;

  const auto send = [&](const std::string& payload) {
    if (peer_gone) return;
    if (!util::write_frame(fd, payload).ok()) peer_gone = true;
  };
  const auto cancel_active = [&] {
    if (active) {
      active->client_cancelled.store(true, std::memory_order_relaxed);
      active->cancel.cancel();
    }
  };

  while (!peer_gone) {
    if (active) {
      // Watch the job between socket polls; stream lifecycle transitions.
      Job::State state;
      JobOutcome outcome;
      {
        std::lock_guard<std::mutex> lk(active->mu);
        state = active->state;
        if (state == Job::State::kDone) outcome = active->outcome;
      }
      if (state != Job::State::kQueued && !started_sent) {
        send(encode_event("started", 0));
        started_sent = true;
      }
      if (state == Job::State::kDone) {
        send(encode_result(outcome));
        active.reset();
        started_sent = false;
        continue;
      }
      // Block on the job's cv (run_job notifies every transition) so the
      // result streams without polling latency; time out at kPollMs to
      // keep watching the socket for cancel frames and disconnects.
      {
        std::unique_lock<std::mutex> lk(active->mu);
        active->cv.wait_for(lk, std::chrono::milliseconds(kPollMs), [&] {
          return active->state != (started_sent ? Job::State::kRunning
                                                : Job::State::kQueued);
        });
      }
    } else if (draining()) {
      break;  // idle connection during drain
    }

    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, active ? 0 : kPollMs);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pr == 0) continue;
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) {
      // Disconnect cancels the client's in-flight job: nobody is waiting
      // for the answer, so stop burning the machine on it.
      cancel_active();
      break;
    }
    reader.feed(buf, static_cast<std::size_t>(n));

    std::string payload;
    while (!peer_gone) {
      const auto st = reader.next(payload);
      if (st == util::FrameReader::State::kNeedMore) break;
      if (st == util::FrameReader::State::kCorrupt) {
        // Malformed/oversized frame: typed rejection, then drop the
        // connection — the stream cannot be resynchronized.
        {
          std::lock_guard<std::mutex> lk(stats_mu_);
          ++stats_.protocol_errors;
        }
        send(encode_error("protocol error: " + reader.corrupt_reason()));
        peer_gone = true;
        break;
      }
      auto msg = parse_message(payload);
      if (!msg.ok()) {
        std::lock_guard<std::mutex> lk(stats_mu_);
        ++stats_.protocol_errors;
        send(encode_error(msg.error().to_string()));
        continue;
      }
      Message& m = msg.value();
      switch (m.type) {
        case MessageType::kPing:
          send(encode_simple(MessageType::kPong));
          break;
        case MessageType::kStats:
          send(encode_stats_result(stats_json().dump(2)));
          break;
        case MessageType::kTelemetry:
          send(encode_telemetry_result(telemetry_json().dump(2)));
          break;
        case MessageType::kStop:
          begin_drain();
          send(encode_simple(MessageType::kOk));
          break;
        case MessageType::kCancel:
          cancel_active();
          send(encode_simple(MessageType::kOk));
          break;
        case MessageType::kSubmit: {
          if (active) {
            send(encode_error(
                "a job is already in flight on this connection"));
            break;
          }
          std::string why;
          auto job = enqueue(std::move(m.request), why);
          if (!job) {
            std::lock_guard<std::mutex> lk(stats_mu_);
            ++stats_.rejected;
            send(encode_error(why));
            break;
          }
          std::uint64_t position = 0;
          {
            std::lock_guard<std::mutex> lk(queue_mu_);
            position = queue_.size();  // 0 = already claimed by a runner
          }
          active = std::move(job);
          started_sent = false;
          send(encode_event("queued", position));
          break;
        }
        default:
          send(encode_error("unexpected verb on a client connection"));
          break;
      }
    }
  }
  cancel_active();  // send failure path: the client is gone
  ::close(fd);
}

Server::Stats Server::stats() const {
  Stats s;
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    s = stats_;
  }
  std::lock_guard<std::mutex> lk(queue_mu_);
  s.queued = queue_.size();
  return s;
}

util::Json Server::stats_json() const {
  const Stats s = stats();
  const ArtifactStore::Stats ss = store_.stats();
  util::Json j = util::Json::object();
  j.set("uptime_ms",
        util::Json::number(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - started_at_)
                .count())));
  j.set("runners", util::Json::number(std::uint64_t{options_.runners}));
  j.set("jobs.submitted", util::Json::number(s.submitted));
  j.set("jobs.completed", util::Json::number(s.completed));
  j.set("jobs.partial", util::Json::number(s.partial));
  j.set("jobs.cancelled", util::Json::number(s.cancelled));
  j.set("jobs.errors", util::Json::number(s.errors));
  j.set("jobs.rejected", util::Json::number(s.rejected));
  j.set("jobs.protocol_errors", util::Json::number(s.protocol_errors));
  j.set("jobs.queued", util::Json::number(s.queued));
  j.set("jobs.running", util::Json::number(s.running));
  j.set("store.workload.hits", util::Json::number(ss.workload_hits));
  j.set("store.workload.misses", util::Json::number(ss.workload_misses));
  j.set("store.result.hits", util::Json::number(ss.result_hits));
  j.set("store.result.misses", util::Json::number(ss.result_misses));
  j.set("store.result.collisions", util::Json::number(ss.collisions));
  j.set("store.workload.entries", util::Json::number(ss.workload_entries));
  j.set("store.result.entries", util::Json::number(ss.result_entries));
  return j;
}

util::Json Server::telemetry_json() const {
  // Lock discipline: stats() takes stats_mu_ then queue_mu_ and releases
  // both before telemetry_mu_ below (journal_append runs under queue_mu_ ->
  // telemetry_mu_, so telemetry_mu_ must always be innermost).
  const Stats s = stats();
  const std::uint64_t up = uptime_ms();

  const auto entry_json = [](const JournalEntry& e) {
    util::Json j = util::Json::object();
    j.set("seq", util::Json::number(e.seq));
    j.set("at_ms", util::Json::number(e.at_ms));
    j.set("job", util::Json::number(e.job_id));
    if (!e.tenant.empty()) j.set("tenant", util::Json::string(e.tenant));
    j.set("event", util::Json::string(e.event));
    if (e.elapsed_ms != 0) j.set("elapsed_ms", util::Json::number(e.elapsed_ms));
    if (!e.detail.empty()) j.set("detail", util::Json::string(e.detail));
    return j;
  };

  util::Json j = util::Json::object();
  j.set("uptime_ms", util::Json::number(up));
  j.set("runners", util::Json::number(std::uint64_t{options_.runners}));
  j.set("slow_job_threshold_ms", util::Json::number(options_.slow_job_ms));
  j.set("queue.depth", util::Json::number(s.queued));
  j.set("jobs.running", util::Json::number(s.running));
  j.set("jobs.submitted", util::Json::number(s.submitted));
  j.set("jobs.completed", util::Json::number(s.completed));
  j.set("jobs.errors", util::Json::number(s.errors));

  std::lock_guard<std::mutex> lk(telemetry_mu_);
  j.set("busy_ms", util::Json::number(busy_ms_));
  // Runner utilization over the daemon's lifetime: busy runner-ms over
  // elapsed runner-ms, clamped (in-flight jobs are not yet in busy_ms_).
  const double capacity_ms =
      static_cast<double>(up) * static_cast<double>(options_.runners);
  const double util_ratio =
      capacity_ms > 0.0
          ? std::min(1.0, static_cast<double>(busy_ms_) / capacity_ms)
          : 0.0;
  j.set("utilization", util::Json::number(util_ratio));

  util::Json tenants = util::Json::object();
  for (const auto& [name, t] : tenants_) {
    util::Json tj = util::Json::object();
    tj.set("jobs", util::Json::number(t.jobs));
    tj.set("errors", util::Json::number(t.errors));
    tj.set("busy_ms", util::Json::number(t.busy_ms));
    tenants.set(name.empty() ? "-" : name, std::move(tj));
  }
  j.set("tenants", std::move(tenants));

  util::Json journal = util::Json::array();
  for (const JournalEntry& e : journal_) journal.push_back(entry_json(e));
  j.set("journal", std::move(journal));

  util::Json slow = util::Json::array();
  for (const JournalEntry& e : slow_jobs_) slow.push_back(entry_json(e));
  j.set("slow_jobs", std::move(slow));
  return j;
}

}  // namespace tracesel::service
