#pragma once
// tracesel::service protocol — the wire format of the traceseld daemon
// (docs/service.md).
//
// Transport: length-prefixed binary frames (util/framing.hpp — the same
// "TSELFRM1" + u32 length + FNV-1a checksum format the subprocess worker
// protocol uses) over a Unix domain socket. Every frame payload is a
// self-describing text message whose first line is
//
//     tracesel-svc <verb> <version>
//
// mirroring the work-unit protocol's first-line headers. Client verbs:
// submit (a serialized tracesel::JobRequest follows), cancel, stats,
// telemetry (the live introspection surface: journal, slow jobs, queue
// gauges), stop, ping. Server verbs: event (job lifecycle:
// queued/started), result (the job outcome with length-prefixed
// error/metrics/report/telemetry blocks), stats, telemetry-result, pong,
// ok, error.
//
// The report block of a result is selection::to_json(...).dump(2) — the
// exact bytes `tracesel select --json` prints — so a daemon answer can be
// diffed against the single-process CLI byte for byte (the acceptance
// check of PR 7, exercised by the CI daemon smoke step).

#include <cstdint>
#include <string>
#include <string_view>

#include "tracesel/job_request.hpp"
#include "util/result.hpp"

namespace tracesel::service {

inline constexpr std::uint32_t kProtocolVersion = 1;
/// First-line prefix of every protocol payload.
inline constexpr char kProtocolTag[] = "tracesel-svc";

enum class MessageType {
  // client -> server
  kSubmit,
  kCancel,
  kStats,
  kTelemetry,
  kStop,
  kPing,
  // server -> client
  kEvent,
  kResult,
  kStatsResult,
  kTelemetryResult,
  kPong,
  kOk,
  kError,
  /// Typed backpressure: the submission was shed (queue full, tenant cap,
  /// unmeetable deadline) and the server suggests retrying after a hint
  /// derived from current queue depth and utilization. Unlike kError, the
  /// client is expected to resubmit — idempotently, by canonical job hash.
  kRetryAfter,
};

std::string_view to_string(MessageType type);

/// The outcome of one job as carried by a result frame.
struct JobOutcome {
  /// "ok" | "partial" (deadline/budget stopped the search) | "cancelled"
  /// (the client asked) | "error".
  std::string status = "ok";
  bool cache_hit = false;           ///< result served from the ArtifactStore
  bool workload_cache_hit = false;  ///< interleave product was shared
  std::uint64_t job_id = 0;
  std::uint64_t elapsed_ms = 0;
  std::string error;         ///< non-empty iff status == "error"
  std::string metrics_json;  ///< per-job obs counter deltas (may be empty)
  std::string report_json;   ///< selection::to_json(...).dump(2) bytes
  /// obs::serialize_telemetry of the daemon's per-job spans + counter
  /// deltas, when the request carried a trace context (else empty). The
  /// client adopts it to merge the daemon lane into its own trace.
  std::string telemetry;

  bool ok() const { return status == "ok"; }
};

/// A decoded protocol message; which fields are meaningful depends on
/// `type` (request: kSubmit; outcome: kResult; text: kEvent status /
/// kError message / kStatsResult JSON; position: kEvent queue position).
struct Message {
  MessageType type = MessageType::kPing;
  JobRequest request;
  JobOutcome outcome;
  std::string text;
  std::uint64_t position = 0;
  /// kRetryAfter only: the server-computed backoff hint in milliseconds.
  std::uint64_t retry_after_ms = 0;
};

// --- encoders (frame payloads; wrap with util::encode_frame to send) ---
std::string encode_submit(const JobRequest& request);
/// cancel / stats / stop / ping / pong / ok — verbs with no body.
std::string encode_simple(MessageType type);
std::string encode_event(std::string_view status, std::uint64_t position);
std::string encode_result(const JobOutcome& outcome);
std::string encode_stats_result(std::string_view stats_json);
std::string encode_telemetry_result(std::string_view telemetry_json);
std::string encode_error(std::string_view message);
/// Admission-control shed: "come back in about `retry_after_ms` ms".
std::string encode_retry_after(std::uint64_t retry_after_ms,
                               std::string_view reason);

/// Decodes one frame payload. Typed errors on unknown verbs, version
/// mismatches and malformed bodies — a daemon must reject, never crash.
util::Result<Message> parse_message(std::string_view payload);

}  // namespace tracesel::service
