#include "service/client.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "util/subprocess.hpp"

namespace tracesel::service {

namespace {

constexpr int kPollMs = 100;

/// Sleeps `delay` in kPollMs slices so a local cancel interrupts the wait.
/// Returns false when cancelled.
bool sleep_unless_cancelled(std::chrono::milliseconds delay,
                            const util::CancelToken& cancel) {
  auto remaining = delay;
  while (remaining.count() > 0) {
    if (cancel.cancelled()) return false;
    const auto slice =
        std::min(remaining, std::chrono::milliseconds(kPollMs));
    std::this_thread::sleep_for(slice);
    remaining -= slice;
  }
  return !cancel.cancelled();
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      reader_(std::move(other.reader_)),
      socket_path_(std::move(other.socket_path_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    reader_ = std::move(other.reader_);
    socket_path_ = std::move(other.socket_path_);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Result<Client> Client::connect(const std::string& socket_path) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path))
    return util::Result<Client>::err(
        util::ErrorCode::kInvalidArgument,
        "socket path '" + socket_path + "' exceeds the sun_path limit");
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size());

  util::ignore_sigpipe();
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0)
    return util::Result<Client>::err(
        util::ErrorCode::kInternal,
        std::string("socket failed: ") + std::strerror(errno));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return util::Result<Client>::err(
        util::ErrorCode::kInvalidArgument,
        "cannot reach traceseld at " + socket_path + ": " +
            std::strerror(err) + " (is the daemon running?)");
  }
  Client c;
  c.fd_ = fd;
  c.socket_path_ = socket_path;
  return c;
}

util::Result<Client> Client::connect(const std::string& socket_path,
                                     const ConnectOptions& options) {
  // A fresh FrameReader per attempt comes for free: connect() builds a
  // new Client, so no stale bytes from a dead daemon survive a retry.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options.timeout_ms);
  util::Backoff backoff(options.backoff);
  for (;;) {
    auto c = connect(socket_path);
    if (c.ok()) return c;
    // Path-too-long cannot heal by waiting; everything else (absent
    // socket, connection refused during a restart window) can.
    if (c.error().message.find("sun_path") != std::string::npos) return c;
    if (options.timeout_ms == 0) return c;
    if (options.cancel.cancelled() ||
        std::chrono::steady_clock::now() >= deadline)
      return c;
    if (!sleep_unless_cancelled(backoff.next(), options.cancel)) return c;
  }
}

util::Status Client::send_payload(const std::string& payload) {
  if (fd_ < 0)
    return util::Error{util::ErrorCode::kInvalidArgument, "not connected"};
  return util::write_frame(fd_, payload);
}

util::Result<Message> Client::next_message(const util::CancelToken* cancel,
                                           bool* sent_cancel) {
  using R = util::Result<Message>;
  char buf[4096];
  std::string payload;
  for (;;) {
    // Drain frames already buffered before touching the socket.
    const auto st = reader_.next(payload);
    if (st == util::FrameReader::State::kFrame) {
      auto msg = parse_message(payload);
      if (!msg.ok()) return msg.error();
      return std::move(msg).value();
    }
    if (st == util::FrameReader::State::kCorrupt)
      return R::err(util::ErrorCode::kCorruptCapture,
                    "traceseld stream corrupt: " + reader_.corrupt_reason());

    // Relay a local cancellation once, then keep waiting: the server's
    // result frame is the authoritative outcome of the cancelled job.
    if (cancel && sent_cancel && !*sent_cancel && cancel->cancelled()) {
      *sent_cancel = true;
      auto ws = send_payload(encode_simple(MessageType::kCancel));
      if (!ws.ok()) return ws.error();
    }

    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, kPollMs);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return R::err(util::ErrorCode::kInternal,
                    std::string("poll failed: ") + std::strerror(errno));
    }
    if (pr == 0) continue;
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return R::err(util::ErrorCode::kInternal,
                    std::string("read failed: ") + std::strerror(errno));
    }
    if (n == 0)
      return R::err(util::ErrorCode::kInternal,
                    "traceseld closed the connection");
    reader_.feed(buf, static_cast<std::size_t>(n));
  }
}

util::Result<JobOutcome> Client::submit(const JobRequest& request,
                                        util::CancelToken cancel,
                                        const EventFn& on_event,
                                        RetryAfter* retry_after) {
  auto ws = send_payload(encode_submit(request));
  if (!ws.ok()) return ws.error();
  bool sent_cancel = false;
  for (;;) {
    auto msg = next_message(&cancel, &sent_cancel);
    if (!msg.ok()) return msg.error();
    Message& m = msg.value();
    switch (m.type) {
      case MessageType::kEvent:
        if (on_event) on_event(m.text, m.position);
        break;
      case MessageType::kResult:
        return std::move(m.outcome);
      case MessageType::kError:
        return util::Result<JobOutcome>::err(util::ErrorCode::kInvalidArgument,
                                             "traceseld rejected the job: " +
                                                 m.text);
      case MessageType::kRetryAfter:
        if (retry_after) {
          retry_after->hinted = true;
          retry_after->ms = m.retry_after_ms;
          retry_after->reason = m.text;
        }
        return util::Result<JobOutcome>::err(
            util::ErrorCode::kResourceExhausted,
            "traceseld shed the job: " + m.text + " (retry after ~" +
                std::to_string(m.retry_after_ms) + "ms)");
      case MessageType::kOk:
        break;  // ack of our cancel frame
      default:
        return util::Result<JobOutcome>::err(
            util::ErrorCode::kParse, "unexpected reply while awaiting result");
    }
  }
}

util::Result<JobOutcome> Client::submit_resilient(const JobRequest& request,
                                                  const SubmitOptions& options,
                                                  util::CancelToken cancel,
                                                  const EventFn& on_event) {
  using R = util::Result<JobOutcome>;
  util::Backoff backoff(options.backoff);
  const std::size_t attempts = std::max<std::size_t>(1, options.max_attempts);
  util::Error last{util::ErrorCode::kInternal, "submit never attempted"};
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    if (cancel.cancelled())
      return R::err(util::ErrorCode::kCancelled,
                    "cancelled while retrying submit");
    if (!connected()) {
      ConnectOptions co;
      co.timeout_ms = options.connect_timeout_ms;
      co.backoff = options.backoff;
      co.cancel = cancel;
      auto c = connect(socket_path_, co);
      if (!c.ok()) {
        last = c.error();
        if (cancel.cancelled()) break;
        if (!sleep_unless_cancelled(backoff.next(), cancel)) break;
        continue;
      }
      *this = std::move(c).value();
    }
    RetryAfter ra;
    auto out = submit(request, cancel, on_event, &ra);
    if (out.ok()) return out;
    last = out.error();
    if (last.code == util::ErrorCode::kInvalidArgument ||
        last.code == util::ErrorCode::kCancelled)
      return out;  // a real rejection (or our own cancel): retrying is futile
    if (ra.hinted) {
      // Admission-control shed: sleep the server's hint (it knows the
      // backlog better than our local schedule does), then resubmit.
      const auto wait = std::chrono::milliseconds(
          options.honor_retry_after
              ? std::min(ra.ms, options.retry_after_cap_ms)
              : backoff.next().count());
      if (!sleep_unless_cancelled(wait, cancel)) break;
      continue;
    }
    // Connection-level failure (daemon died / restarting): drop the dead
    // socket and its half-read frames, back off, reconnect, resubmit. The
    // resubmission is idempotent — the restarted daemon attaches us to the
    // recovered job or serves the durable result.
    close();
    reader_ = util::FrameReader();
    if (!sleep_unless_cancelled(backoff.next(), cancel)) break;
  }
  if (cancel.cancelled() && last.code != util::ErrorCode::kCancelled)
    return R::err(util::ErrorCode::kCancelled,
                  "cancelled while retrying submit (last error: " +
                      last.to_string() + ")");
  return R::err(util::ErrorCode::kExhaustedRetries,
                "submit failed after " + std::to_string(attempts) +
                    " attempt(s): " + last.to_string());
}

util::Result<std::string> Client::stats() {
  auto ws = send_payload(encode_simple(MessageType::kStats));
  if (!ws.ok()) return ws.error();
  auto msg = next_message(nullptr, nullptr);
  if (!msg.ok()) return msg.error();
  if (msg.value().type == MessageType::kError)
    return util::Result<std::string>::err(util::ErrorCode::kInternal,
                                          msg.value().text);
  if (msg.value().type != MessageType::kStatsResult)
    return util::Result<std::string>::err(
        util::ErrorCode::kParse, "unexpected reply to stats request");
  return std::move(msg.value().text);
}

util::Result<std::string> Client::telemetry() {
  auto ws = send_payload(encode_simple(MessageType::kTelemetry));
  if (!ws.ok()) return ws.error();
  auto msg = next_message(nullptr, nullptr);
  if (!msg.ok()) return msg.error();
  if (msg.value().type == MessageType::kError)
    return util::Result<std::string>::err(util::ErrorCode::kInternal,
                                          msg.value().text);
  if (msg.value().type != MessageType::kTelemetryResult)
    return util::Result<std::string>::err(
        util::ErrorCode::kParse, "unexpected reply to telemetry request");
  return std::move(msg.value().text);
}

util::Status Client::ping() {
  auto ws = send_payload(encode_simple(MessageType::kPing));
  if (!ws.ok()) return ws;
  auto msg = next_message(nullptr, nullptr);
  if (!msg.ok()) return msg.error();
  if (msg.value().type != MessageType::kPong)
    return util::Error{util::ErrorCode::kParse, "unexpected reply to ping"};
  return util::Status::success();
}

util::Status Client::stop() {
  auto ws = send_payload(encode_simple(MessageType::kStop));
  if (!ws.ok()) return ws;
  auto msg = next_message(nullptr, nullptr);
  if (!msg.ok()) return msg.error();
  if (msg.value().type == MessageType::kError)
    return util::Error{util::ErrorCode::kInternal, msg.value().text};
  if (msg.value().type != MessageType::kOk)
    return util::Error{util::ErrorCode::kParse, "unexpected reply to stop"};
  return util::Status::success();
}

}  // namespace tracesel::service
