#include "service/client.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "util/subprocess.hpp"

namespace tracesel::service {

namespace {
constexpr int kPollMs = 100;
}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), reader_(std::move(other.reader_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    reader_ = std::move(other.reader_);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Result<Client> Client::connect(const std::string& socket_path) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path))
    return util::Result<Client>::err(
        util::ErrorCode::kInvalidArgument,
        "socket path '" + socket_path + "' exceeds the sun_path limit");
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size());

  util::ignore_sigpipe();
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0)
    return util::Result<Client>::err(
        util::ErrorCode::kInternal,
        std::string("socket failed: ") + std::strerror(errno));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return util::Result<Client>::err(
        util::ErrorCode::kInvalidArgument,
        "cannot reach traceseld at " + socket_path + ": " +
            std::strerror(err) + " (is the daemon running?)");
  }
  Client c;
  c.fd_ = fd;
  return c;
}

util::Status Client::send_payload(const std::string& payload) {
  if (fd_ < 0)
    return util::Error{util::ErrorCode::kInvalidArgument, "not connected"};
  return util::write_frame(fd_, payload);
}

util::Result<Message> Client::next_message(const util::CancelToken* cancel,
                                           bool* sent_cancel) {
  using R = util::Result<Message>;
  char buf[4096];
  std::string payload;
  for (;;) {
    // Drain frames already buffered before touching the socket.
    const auto st = reader_.next(payload);
    if (st == util::FrameReader::State::kFrame) {
      auto msg = parse_message(payload);
      if (!msg.ok()) return msg.error();
      return std::move(msg).value();
    }
    if (st == util::FrameReader::State::kCorrupt)
      return R::err(util::ErrorCode::kCorruptCapture,
                    "traceseld stream corrupt: " + reader_.corrupt_reason());

    // Relay a local cancellation once, then keep waiting: the server's
    // result frame is the authoritative outcome of the cancelled job.
    if (cancel && sent_cancel && !*sent_cancel && cancel->cancelled()) {
      *sent_cancel = true;
      auto ws = send_payload(encode_simple(MessageType::kCancel));
      if (!ws.ok()) return ws.error();
    }

    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, kPollMs);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return R::err(util::ErrorCode::kInternal,
                    std::string("poll failed: ") + std::strerror(errno));
    }
    if (pr == 0) continue;
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return R::err(util::ErrorCode::kInternal,
                    std::string("read failed: ") + std::strerror(errno));
    }
    if (n == 0)
      return R::err(util::ErrorCode::kInternal,
                    "traceseld closed the connection");
    reader_.feed(buf, static_cast<std::size_t>(n));
  }
}

util::Result<JobOutcome> Client::submit(const JobRequest& request,
                                        util::CancelToken cancel,
                                        const EventFn& on_event) {
  auto ws = send_payload(encode_submit(request));
  if (!ws.ok()) return ws.error();
  bool sent_cancel = false;
  for (;;) {
    auto msg = next_message(&cancel, &sent_cancel);
    if (!msg.ok()) return msg.error();
    Message& m = msg.value();
    switch (m.type) {
      case MessageType::kEvent:
        if (on_event) on_event(m.text, m.position);
        break;
      case MessageType::kResult:
        return std::move(m.outcome);
      case MessageType::kError:
        return util::Result<JobOutcome>::err(util::ErrorCode::kInvalidArgument,
                                             "traceseld rejected the job: " +
                                                 m.text);
      case MessageType::kOk:
        break;  // ack of our cancel frame
      default:
        return util::Result<JobOutcome>::err(
            util::ErrorCode::kParse, "unexpected reply while awaiting result");
    }
  }
}

util::Result<std::string> Client::stats() {
  auto ws = send_payload(encode_simple(MessageType::kStats));
  if (!ws.ok()) return ws.error();
  auto msg = next_message(nullptr, nullptr);
  if (!msg.ok()) return msg.error();
  if (msg.value().type == MessageType::kError)
    return util::Result<std::string>::err(util::ErrorCode::kInternal,
                                          msg.value().text);
  if (msg.value().type != MessageType::kStatsResult)
    return util::Result<std::string>::err(
        util::ErrorCode::kParse, "unexpected reply to stats request");
  return std::move(msg.value().text);
}

util::Result<std::string> Client::telemetry() {
  auto ws = send_payload(encode_simple(MessageType::kTelemetry));
  if (!ws.ok()) return ws.error();
  auto msg = next_message(nullptr, nullptr);
  if (!msg.ok()) return msg.error();
  if (msg.value().type == MessageType::kError)
    return util::Result<std::string>::err(util::ErrorCode::kInternal,
                                          msg.value().text);
  if (msg.value().type != MessageType::kTelemetryResult)
    return util::Result<std::string>::err(
        util::ErrorCode::kParse, "unexpected reply to telemetry request");
  return std::move(msg.value().text);
}

util::Status Client::ping() {
  auto ws = send_payload(encode_simple(MessageType::kPing));
  if (!ws.ok()) return ws;
  auto msg = next_message(nullptr, nullptr);
  if (!msg.ok()) return msg.error();
  if (msg.value().type != MessageType::kPong)
    return util::Error{util::ErrorCode::kParse, "unexpected reply to ping"};
  return util::Status::success();
}

util::Status Client::stop() {
  auto ws = send_payload(encode_simple(MessageType::kStop));
  if (!ws.ok()) return ws;
  auto msg = next_message(nullptr, nullptr);
  if (!msg.ok()) return msg.error();
  if (msg.value().type == MessageType::kError)
    return util::Error{util::ErrorCode::kInternal, msg.value().text};
  if (msg.value().type != MessageType::kOk)
    return util::Error{util::ErrorCode::kParse, "unexpected reply to stop"};
  return util::Status::success();
}

}  // namespace tracesel::service
