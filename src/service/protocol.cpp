#include "service/protocol.hpp"

#include <charconv>
#include <sstream>

namespace tracesel::service {

namespace {

bool to_u64(std::string_view tok, std::uint64_t& out) {
  const char* first = tok.data();
  const char* last = tok.data() + tok.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

util::Result<Message> malformed(const std::string& what) {
  return util::Result<Message>::err(util::ErrorCode::kParse,
                                    "service message: " + what);
}

std::string header(MessageType type) {
  std::string h = kProtocolTag;
  h += ' ';
  h += to_string(type);
  h += ' ';
  h += std::to_string(kProtocolVersion);
  h += '\n';
  return h;
}

/// Appends "name <size>\n<raw bytes>\n" — the length-prefixed block used
/// for payloads that may contain anything (JSON, error text).
void append_block(std::string& out, std::string_view name,
                  std::string_view bytes) {
  out += name;
  out += ' ';
  out += std::to_string(bytes.size());
  out += '\n';
  out += bytes;
  out += '\n';
}

/// Consumes "name <size>\n<raw>\n" from `body`.
bool take_block(std::string_view& body, std::string_view name,
                std::string& out) {
  const std::size_t eol = body.find('\n');
  if (eol == std::string_view::npos) return false;
  std::string_view line = body.substr(0, eol);
  if (!line.starts_with(name) || line.size() <= name.size() ||
      line[name.size()] != ' ')
    return false;
  std::uint64_t n = 0;
  if (!to_u64(line.substr(name.size() + 1), n)) return false;
  body.remove_prefix(eol + 1);
  if (n > body.size()) return false;
  out.assign(body.substr(0, static_cast<std::size_t>(n)));
  body.remove_prefix(static_cast<std::size_t>(n));
  if (!body.empty() && body.front() == '\n') body.remove_prefix(1);
  return true;
}

}  // namespace

std::string_view to_string(MessageType type) {
  switch (type) {
    case MessageType::kSubmit: return "submit";
    case MessageType::kCancel: return "cancel";
    case MessageType::kStats: return "stats";
    case MessageType::kTelemetry: return "telemetry";
    case MessageType::kStop: return "stop";
    case MessageType::kPing: return "ping";
    case MessageType::kEvent: return "event";
    case MessageType::kResult: return "result";
    case MessageType::kStatsResult: return "stats-result";
    case MessageType::kTelemetryResult: return "telemetry-result";
    case MessageType::kPong: return "pong";
    case MessageType::kOk: return "ok";
    case MessageType::kError: return "error";
    case MessageType::kRetryAfter: return "retry-after";
  }
  return "ping";
}

std::string encode_submit(const JobRequest& request) {
  return header(MessageType::kSubmit) + serialize_job_request(request);
}

std::string encode_simple(MessageType type) { return header(type); }

std::string encode_event(std::string_view status, std::uint64_t position) {
  std::string out = header(MessageType::kEvent);
  out += "status ";
  out += status;
  out += "\nposition ";
  out += std::to_string(position);
  out += '\n';
  return out;
}

std::string encode_result(const JobOutcome& outcome) {
  std::string out = header(MessageType::kResult);
  out += "status " + outcome.status + '\n';
  out += "job_id " + std::to_string(outcome.job_id) + '\n';
  out += "cache_hit " + std::string(outcome.cache_hit ? "1" : "0") + '\n';
  out += "workload_cache_hit " +
         std::string(outcome.workload_cache_hit ? "1" : "0") + '\n';
  out += "elapsed_ms " + std::to_string(outcome.elapsed_ms) + '\n';
  append_block(out, "error", outcome.error);
  append_block(out, "metrics", outcome.metrics_json);
  append_block(out, "report", outcome.report_json);
  // Appended after the original three blocks so a version-1 reader that
  // stops at its known blocks keeps parsing results from newer daemons.
  append_block(out, "telemetry", outcome.telemetry);
  out += "end\n";
  return out;
}

std::string encode_stats_result(std::string_view stats_json) {
  std::string out = header(MessageType::kStatsResult);
  append_block(out, "stats", stats_json);
  return out;
}

std::string encode_telemetry_result(std::string_view telemetry_json) {
  std::string out = header(MessageType::kTelemetryResult);
  append_block(out, "telemetry", telemetry_json);
  return out;
}

std::string encode_error(std::string_view message) {
  std::string out = header(MessageType::kError);
  append_block(out, "message", message);
  return out;
}

std::string encode_retry_after(std::uint64_t retry_after_ms,
                               std::string_view reason) {
  std::string out = header(MessageType::kRetryAfter);
  out += "retry_after_ms " + std::to_string(retry_after_ms) + '\n';
  append_block(out, "reason", reason);
  return out;
}

util::Result<Message> parse_message(std::string_view payload) {
  const std::size_t eol = payload.find('\n');
  const std::string_view head =
      eol == std::string_view::npos ? payload : payload.substr(0, eol);
  std::string_view body =
      eol == std::string_view::npos ? std::string_view{}
                                    : payload.substr(eol + 1);

  std::istringstream hs{std::string(head)};
  std::string tag, verb;
  std::uint32_t version = 0;
  if (!(hs >> tag >> verb >> version) || tag != kProtocolTag)
    return malformed("bad header line");
  if (version != kProtocolVersion)
    return util::Result<Message>::err(
        util::ErrorCode::kParse,
        "service message version " + std::to_string(version) +
            " is not supported (expected " +
            std::to_string(kProtocolVersion) + ")");

  Message m;
  if (verb == "submit") {
    m.type = MessageType::kSubmit;
    auto req = parse_job_request(body);
    if (!req.ok()) return req.error();
    m.request = std::move(req).value();
    return m;
  }
  if (verb == "cancel") { m.type = MessageType::kCancel; return m; }
  if (verb == "stats") { m.type = MessageType::kStats; return m; }
  if (verb == "telemetry") { m.type = MessageType::kTelemetry; return m; }
  if (verb == "stop") { m.type = MessageType::kStop; return m; }
  if (verb == "ping") { m.type = MessageType::kPing; return m; }
  if (verb == "pong") { m.type = MessageType::kPong; return m; }
  if (verb == "ok") { m.type = MessageType::kOk; return m; }

  if (verb == "event") {
    m.type = MessageType::kEvent;
    std::istringstream bs{std::string(body)};
    std::string line;
    while (std::getline(bs, line)) {
      if (line.starts_with("status ")) {
        m.text = line.substr(7);
      } else if (line.starts_with("position ")) {
        std::uint64_t v = 0;
        if (!to_u64(std::string_view(line).substr(9), v))
          return malformed("bad event position");
        m.position = v;
      }
    }
    if (m.text.empty()) return malformed("event without status");
    return m;
  }

  if (verb == "result") {
    m.type = MessageType::kResult;
    // Fixed-order fields, then the three length-prefixed blocks.
    while (!body.empty() && !body.starts_with("error ")) {
      const std::size_t le = body.find('\n');
      if (le == std::string_view::npos) return malformed("truncated result");
      std::string_view line = body.substr(0, le);
      body.remove_prefix(le + 1);
      const std::size_t sp = line.find(' ');
      if (sp == std::string_view::npos) return malformed("bad result field");
      const std::string_view key = line.substr(0, sp);
      const std::string_view value = line.substr(sp + 1);
      std::uint64_t v = 0;
      if (key == "status") {
        m.outcome.status = std::string(value);
      } else if (key == "job_id") {
        if (!to_u64(value, v)) return malformed("bad job_id");
        m.outcome.job_id = v;
      } else if (key == "cache_hit") {
        m.outcome.cache_hit = value == "1";
      } else if (key == "workload_cache_hit") {
        m.outcome.workload_cache_hit = value == "1";
      } else if (key == "elapsed_ms") {
        if (!to_u64(value, v)) return malformed("bad elapsed_ms");
        m.outcome.elapsed_ms = v;
      } else {
        return malformed("unknown result field '" + std::string(key) + "'");
      }
    }
    if (!take_block(body, "error", m.outcome.error) ||
        !take_block(body, "metrics", m.outcome.metrics_json) ||
        !take_block(body, "report", m.outcome.report_json))
      return malformed("bad result blocks");
    // Optional (absent from version-1 daemons): take_block leaves `body`
    // untouched on a name mismatch, so tolerating absence is safe.
    (void)take_block(body, "telemetry", m.outcome.telemetry);
    if (!body.starts_with("end")) return malformed("result has no end marker");
    return m;
  }

  if (verb == "stats-result") {
    m.type = MessageType::kStatsResult;
    if (!take_block(body, "stats", m.text))
      return malformed("bad stats block");
    return m;
  }

  if (verb == "telemetry-result") {
    m.type = MessageType::kTelemetryResult;
    if (!take_block(body, "telemetry", m.text))
      return malformed("bad telemetry block");
    return m;
  }

  if (verb == "error") {
    m.type = MessageType::kError;
    if (!take_block(body, "message", m.text))
      return malformed("bad error block");
    return m;
  }

  if (verb == "retry-after") {
    m.type = MessageType::kRetryAfter;
    if (!body.starts_with("retry_after_ms "))
      return malformed("retry-after without a hint");
    const std::size_t le = body.find('\n');
    if (le == std::string_view::npos) return malformed("truncated retry-after");
    if (!to_u64(body.substr(15, le - 15), m.retry_after_ms))
      return malformed("bad retry_after_ms");
    body.remove_prefix(le + 1);
    if (!take_block(body, "reason", m.text))
      return malformed("bad retry-after reason block");
    return m;
  }

  return malformed("unknown verb '" + verb + "'");
}

}  // namespace tracesel::service
