#pragma once
// tracesel::service::Server — traceseld, the selection/debug job daemon
// (DESIGN.md §13, docs/service.md).
//
// A long-running process accepting tracesel::JobRequest jobs over the
// framed Unix-socket protocol (protocol.hpp). Architecture:
//
//   accept loop   poll()s the listening socket in 100 ms slices, checking
//                 the shutdown token between slices; each accepted client
//                 gets a connection thread.
//   connections   read frames, answer ping/stats immediately, enqueue
//                 submits on the job queue and stream lifecycle events
//                 (queued -> started -> result) back while polling the
//                 socket for a cancel frame or a disconnect — either
//                 cancels the in-flight job cooperatively.
//   runners       N worker threads pull jobs off the queue and execute
//                 them through QueryCore::run against the shared
//                 ArtifactStore, so concurrent and repeated jobs share
//                 interleave products and memoized selection results.
//                 Each job's deadline_ms is armed on its CancelToken when
//                 the job *starts* (queue time does not count).
//   metrics       a runner snapshots its obs thread-counter shard before
//                 and after the job; the delta rides back in the result
//                 frame as the job's own metrics (docs/service.md notes
//                 the jobs>1 caveat: pool-thread work escapes the scope).
//
// Shutdown is drain-and-exit: when the shutdown token fires (SIGTERM in
// the CLI) or a stop frame arrives, the server stops accepting, lets the
// queue drain, answers every waiting client, then serve() returns 0.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/journal.hpp"
#include "service/protocol.hpp"
#include "tracesel/artifact_store.hpp"
#include "tracesel/job_request.hpp"
#include "util/cancel.hpp"
#include "util/json.hpp"
#include "util/result.hpp"

namespace tracesel::service {

struct ServerOptions {
  /// Filesystem path of the Unix domain socket. Must fit sun_path
  /// (~107 chars) — keep it short (/tmp/...); start() rejects longer.
  std::string socket_path;
  /// Concurrent job runner threads (the multi-tenancy width).
  std::size_t runners = 1;
  /// Submissions beyond this many queued-or-running jobs are rejected
  /// with a typed error frame rather than queued unboundedly.
  std::size_t max_queue = 64;
  /// Oversized-frame guard for client connections.
  std::size_t max_frame_bytes = 16u << 20;
  /// Jobs whose wall time meets this threshold are recorded in the
  /// slow-job log (telemetry surface) with a span summary.
  std::uint64_t slow_job_ms = 1000;
  /// Ring-buffer capacity of the telemetry event journal.
  std::size_t journal_capacity = 256;
  /// Crash durability (DESIGN.md §16): when non-empty, every job lifecycle
  /// transition is write-ahead journalled here, long jobs checkpoint under
  /// <dir>/ckpt/, completed reports persist under <dir>/results/, and
  /// start() replays unfinished jobs from a previous life. Empty = the
  /// pre-PR-10 purely in-memory daemon.
  std::string journal_dir;
  /// Journal compaction threshold (JournalOptions::rotate_bytes).
  std::uint64_t journal_rotate_bytes = 4u << 20;
  /// Wave shards per search checkpoint for journalled jobs.
  std::size_t checkpoint_interval = 64;
  /// Per-tenant in-flight (queued + running) cap; 0 = unlimited. Breaches
  /// are shed with a typed retry-after frame, counted per tenant.
  std::size_t per_tenant_inflight = 0;
  /// Minimum retry-after hint for shed submissions (the hint grows with
  /// queue depth and the observed mean job time).
  std::uint64_t retry_after_floor_ms = 50;
  /// Drain-and-exit trigger; the CLI points this at its signal token so
  /// SIGTERM/SIGINT drain the daemon. Defaults to a live token.
  util::CancelToken shutdown = util::CancelToken::make();
  /// Test seam: called on the runner thread right after a job enters
  /// kRunning and before its compute starts. Lets the chaos/overload
  /// tests hold a runner busy deterministically. Null in production.
  std::function<void(const JobRequest&)> on_job_start;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds + listens on options.socket_path (unlinking a stale socket
  /// file) and starts the runner threads. Typed error on failure.
  util::Status start();

  /// The accept loop; blocks until shutdown, then drains and returns 0.
  /// Call start() first.
  int serve();

  /// Counters for the stats verb and the tests.
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;   ///< status ok (incl. cache hits)
    std::uint64_t partial = 0;     ///< deadline/budget-stopped jobs
    std::uint64_t cancelled = 0;   ///< client-cancelled jobs
    std::uint64_t errors = 0;      ///< failed jobs
    std::uint64_t rejected = 0;    ///< all shed/refused submissions
    std::uint64_t retry_after = 0; ///< rejections sent as typed retry-after
    std::uint64_t shed_tenant_cap = 0;  ///< per-tenant in-flight breaches
    std::uint64_t shed_deadline = 0;    ///< unmeetable-deadline sheds
    std::uint64_t attached = 0;    ///< submits attached to an in-flight twin
    std::uint64_t recovered = 0;   ///< jobs replayed from the WAL on start
    std::uint64_t protocol_errors = 0;  ///< malformed/oversized frames
    std::uint64_t queued = 0;      ///< current depth
    std::uint64_t running = 0;     ///< currently executing
  };
  Stats stats() const;
  /// Flat stats JSON: jobs.* counters plus the ArtifactStore's store.*
  /// counters (the CI smoke step greps store.result.hits here).
  util::Json stats_json() const;

  /// One journal ring-buffer entry: a job lifecycle transition stamped
  /// with uptime, job id and tenant. "slow" entries additionally carry a
  /// span summary (the job's longest spans, when the obs layer is on).
  struct JournalEntry {
    std::uint64_t seq = 0;
    std::uint64_t at_ms = 0;  ///< server uptime at the event
    std::uint64_t job_id = 0;
    std::string tenant;
    std::string event;  ///< queued|recovered|started|ok|partial|cancelled|error|slow
    std::uint64_t elapsed_ms = 0;  ///< job wall time (terminal events)
    std::string detail;            ///< span summary / error text
  };

  /// The live introspection surface behind the telemetry verb
  /// (docs/service.md): queue/utilization gauges, per-tenant accounting,
  /// the event journal and the slow-job log.
  util::Json telemetry_json() const;

  ArtifactStore& store() { return store_; }
  const std::string& socket_path() const { return options_.socket_path; }

 private:
  struct Job {
    std::uint64_t id = 0;
    JobRequest request;
    util::CancelToken cancel = util::CancelToken::make();
    std::atomic<bool> client_cancelled{false};
    /// Canonical result key (canonical_hash over the resolved source);
    /// 0 when the source could not be resolved at admission time.
    std::uint64_t rkey = 0;
    /// Replayed from the WAL on restart: no originating connection, so a
    /// watcher disconnect must not cancel it.
    bool replayed = false;
    /// Connections currently streaming this job's lifecycle (the
    /// submitter plus attached idempotent resubmitters).
    std::atomic<int> watchers{0};

    std::mutex mu;
    std::condition_variable cv;
    enum class State { kQueued, kRunning, kDone } state = State::kQueued;
    JobOutcome outcome;  // filled by the runner before kDone
  };

  /// The admission-control verdict for one submission.
  struct Admission {
    std::shared_ptr<Job> job;  ///< non-null on accept (or attach)
    bool attached = false;     ///< an in-flight twin is serving this hash
    std::string why;           ///< rejection reason when job == nullptr
    /// >0: shed with a typed retry-after hint; 0: hard error (draining).
    std::uint64_t retry_after_ms = 0;
    /// Queue position at admission (0 = already claimed by a runner).
    std::uint64_t position = 0;
  };

  void runner_main();
  void connection_main(int fd);
  std::uint64_t uptime_ms() const;
  void journal_append(std::uint64_t job_id, const std::string& tenant,
                      std::string event, std::uint64_t elapsed_ms = 0,
                      std::string detail = {});
  /// Admission control: draining / duplicate-attach / per-tenant cap /
  /// queue depth / deadline shed, in that order (DESIGN.md §16).
  Admission admit(JobRequest request);
  /// Re-enqueues one WAL-recovered job, bypassing admission control (it
  /// was already admitted in a previous life).
  void enqueue_recovered(RecoveredJob job);
  /// The server-computed backoff hint: floor + estimated queue latency.
  std::uint64_t retry_hint_ms(std::size_t queue_depth) const;
  /// Mean wall time of completed jobs (0 when no history).
  std::uint64_t mean_job_ms() const;
  std::shared_ptr<Job> pop_job();
  void run_job(Job& job);
  bool draining() const { return draining_.load(std::memory_order_relaxed); }
  void begin_drain();

  ServerOptions options_;
  int listen_fd_ = -1;
  ArtifactStore store_;
  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> next_job_id_{1};

  /// The write-ahead job journal (disabled when journal_dir is empty).
  /// Appends happen under queue_mu_ so WAL order == admission order.
  JobJournal wal_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  /// Every queued-or-running job, for duplicate-attach lookup; entries
  /// are erased when the job reaches kDone. Guarded by queue_mu_.
  std::vector<std::shared_ptr<Job>> inflight_;
  /// Per-tenant queued-or-running counts (admission cap). queue_mu_.
  std::vector<std::pair<std::string, std::size_t>> tenant_inflight_;

  mutable std::mutex stats_mu_;
  Stats stats_;
  /// Completed-job wall-time integral for the retry-after estimator.
  std::uint64_t finished_jobs_ = 0;
  std::uint64_t finished_ms_ = 0;

  /// Telemetry surface state (journal ring, slow-job log, per-tenant
  /// accounting, busy-time integral for the utilization gauge).
  struct TenantStats {
    std::uint64_t jobs = 0;
    std::uint64_t errors = 0;
    std::uint64_t busy_ms = 0;
    std::uint64_t shed = 0;  ///< admissions refused with retry-after
  };
  mutable std::mutex telemetry_mu_;
  std::deque<JournalEntry> journal_;
  std::uint64_t journal_seq_ = 0;
  std::deque<JournalEntry> slow_jobs_;
  std::vector<std::pair<std::string, TenantStats>> tenants_;
  std::uint64_t busy_ms_ = 0;

  std::vector<std::thread> runners_;
  std::mutex conns_mu_;
  std::vector<std::thread> conns_;
  std::chrono::steady_clock::time_point started_at_;
};

}  // namespace tracesel::service
