#pragma once
// tracesel::service::JobJournal — the write-ahead job journal that makes
// traceseld crash-durable (DESIGN.md §16, docs/service.md "Durability &
// recovery").
//
// The daemon's queue and in-flight set live in memory; a crash would lose
// every accepted job. The journal fixes that with the classic WAL
// discipline: every job lifecycle transition is appended — and fsync'd —
// to an on-disk log *before* the transition becomes visible to the rest
// of the daemon. On restart, open() replays the log, hands back the
// accepted-but-unfinished jobs in their original admission order, and the
// daemon re-enqueues them.
//
// Record format: each record is one TSELFRM1 binary frame (util/framing
// .hpp — the same magic + length + FNV-1a checksum layout the socket
// protocol uses, so torn and corrupted records are detected by the same
// codec the tests already abuse). The frame payload is versioned text:
//
//     tracesel-jrec <version> <event> <job_id>[ <aux>]\n[<body>]
//
// where <event> is accepted | started | completed | cancelled, <aux> is
// the result hash (hex) on completed records, and <body> is the
// serialized JobRequest (its own checksummed envelope) on accepted
// records. Appends go through util::write_frame — the one EINTR-retried
// full-write loop in the repository — never a hand-rolled write call.
//
// Recovery semantics (torn tails are a fact of kill -9):
//   - A frame that fails validation poisons the stream from that offset
//     (framing cannot resynchronize), so recovery truncates the file at
//     the last good record and continues — counted in `obs`
//     (svc.journal.dropped_records / dropped_bytes), never a crash.
//   - A frame that parses but carries an unknown version or a malformed
//     body is dropped *individually* (the frame layer is intact, so later
//     records still replay) and counted.
//   - Duplicate terminal records are idempotent.
//
// Rotation: once the live log exceeds rotate_bytes, it is compacted —
// rewritten (atomically, temp + fsync + rename) to hold only the records
// of still-unfinished jobs — so the journal of a long-lived daemon stays
// bounded by its in-flight set, not its lifetime.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "tracesel/job_request.hpp"
#include "util/result.hpp"

namespace tracesel::service {

struct JournalOptions {
  /// Directory holding the journal and its side artifacts. open() creates
  /// it (plus the ckpt/ and results/ subdirectories) when absent.
  std::string dir;
  /// Compaction threshold: an append that pushes the file past this many
  /// bytes triggers a rewrite containing only live jobs. 0 disables.
  std::uint64_t rotate_bytes = 4u << 20;
  /// fsync after every append (the durability contract). Tests that sweep
  /// thousands of corruption cases may turn it off; the daemon never does.
  bool fsync = true;
};

/// One accepted-but-unfinished job reconstructed by replay.
struct RecoveredJob {
  std::uint64_t id = 0;
  JobRequest request;
  /// True when a started record followed (the daemon died mid-job, so a
  /// checkpoint may exist under ckpt/ for this job).
  bool started = false;
};

/// What replay found. `pending` preserves original admission order.
struct JournalRecovery {
  std::vector<RecoveredJob> pending;
  std::uint64_t completed = 0;        ///< terminal records seen (incl. dups)
  std::uint64_t cancelled = 0;
  std::uint64_t replayed_records = 0; ///< well-formed records replayed
  std::uint64_t dropped_records = 0;  ///< malformed records skipped
  std::uint64_t dropped_bytes = 0;    ///< torn/corrupt tail truncated away
  std::uint64_t next_job_id = 1;      ///< max replayed id + 1
  std::string note;                   ///< one-line human recovery summary
};

class JobJournal {
 public:
  JobJournal() = default;
  ~JobJournal();
  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  /// Creates `options.dir` (and ckpt/ + results/), replays any existing
  /// journal — truncating a torn tail in place — and opens the log for
  /// appending. Typed error when the directory cannot be created or the
  /// journal cannot be opened; replay itself never fails, it recovers.
  util::Result<JournalRecovery> open(JournalOptions options);

  /// True between a successful open() and close().
  bool enabled() const { return fd_ >= 0; }
  void close();

  // --- lifecycle appenders (each: one frame + fsync, under a mutex) ---
  void accepted(std::uint64_t job_id, const JobRequest& request);
  void started(std::uint64_t job_id);
  void completed(std::uint64_t job_id, std::uint64_t result_hash);
  void cancelled(std::uint64_t job_id);

  // --- introspection (telemetry surface) ---
  std::uint64_t bytes() const;
  std::uint64_t rotations() const;
  std::uint64_t records_appended() const;

  const std::string& dir() const { return options_.dir; }
  /// dir/jobs.journal — the log itself.
  std::string path() const;
  /// dir/ckpt/<rkey-hex>.ck — where a job's search checkpoint snapshots.
  std::string checkpoint_path(std::uint64_t result_key) const;
  /// dir/results/<rkey-hex>.result — the durable result cache entry.
  std::string result_path(std::uint64_t result_key) const;

  /// Persists a completed job's exact report bytes (atomic write) keyed by
  /// the request's canonical hash, so a resubmission after a restart is
  /// served byte-identically without recompute. The request rides along to
  /// guard against hash collisions on load.
  util::Status store_result(std::uint64_t result_key, const JobRequest& request,
                            std::string_view report_json);
  /// Loads a stored result; typed error when absent, corrupt, or written
  /// for a different computation (collision guard).
  util::Result<std::string> load_result(std::uint64_t result_key,
                                        const JobRequest& request) const;

 private:
  void append(std::uint64_t job_id, const std::string& payload, bool live,
              bool terminal);
  void rotate_locked();

  JournalOptions options_;
  int fd_ = -1;
  mutable std::mutex mu_;
  std::uint64_t size_ = 0;
  std::uint64_t rotations_ = 0;
  std::uint64_t records_ = 0;
  /// Live set for compaction: (job id, its accepted-record payload,
  /// started?) in admission order.
  struct LiveJob {
    std::uint64_t id = 0;
    std::string accepted_payload;
    bool started = false;
  };
  std::vector<LiveJob> live_;
};

}  // namespace tracesel::service
