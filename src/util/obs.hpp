#pragma once
// tracesel::obs — the runtime observability layer (DESIGN.md §10): named
// metrics plus hierarchical span timers over the selection and debug
// pipeline, exported as a flat metrics JSON and as Chrome trace-event JSON
// (loadable in chrome://tracing and Perfetto).
//
// Design constraints, in order:
//
//  1. Zero-cost-when-off. The whole layer sits behind one process-global
//     obs::enabled() flag (default off). Every instrumentation macro reads
//     it first, so a disabled site costs one relaxed atomic load and one
//     predictable branch — the bench hard gates (bench_interleave,
//     bench_parallel) run with the layer off and must stay inside their
//     thresholds.
//
//  2. Race-free under the ThreadPool. Counters and histograms are sharded
//     per thread: each thread owns a fixed-capacity block of relaxed
//     atomics it alone writes, and readers merge the shards at snapshot
//     time. Shards of exited threads are folded into a retired
//     accumulator, so totals never lose increments. Gauges (rare writes)
//     are process-global atomics.
//
//  3. Stable handles. Metric names map to small dense ids on first use;
//     ids stay valid for the process lifetime (obs::reset() clears values,
//     never the name table), so call sites may cache them in function-local
//     statics — which is exactly what the OBS_* macros do.
//
// Span names must be string literals (or otherwise have static storage
// duration): trace events store the pointer, not a copy. Metric names are
// copied at registration.
//
// Naming scheme (docs/observability.md): dot-separated
// <subsystem>.<noun>[.<detail>] — e.g. "interleave.interner.probes",
// "selection.gain.evals", "pool.idle_ns". Span latencies are automatically
// mirrored into a histogram named "span.<span name>".
//
// Distributed tracing (DESIGN.md §15): every span carries a process-unique
// span id and the id of its parent (the innermost open span on the same
// thread, or the process-global TraceContext parent for thread roots). A
// coordinating process stamps its TraceContext into the frames it sends;
// the remote process installs it, so its root spans parent under the
// coordinator's span. At completion the remote ships a ProcessTelemetry
// (metrics snapshot + trace events + its steady-clock epoch) back;
// adopt_remote_telemetry() rebases the events onto the local epoch
// (CLOCK_MONOTONIC is machine-wide, so the correction is exact) and the
// export paths then emit one Chrome trace lane per process and one
// aggregated metrics JSON.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"
#include "util/result.hpp"

namespace tracesel::obs {

// Fixed shard capacities: per-thread blocks must never reallocate (readers
// walk them concurrently), so registration past a cap throws.
inline constexpr std::size_t kMaxCounters = 256;
inline constexpr std::size_t kMaxGauges = 64;
inline constexpr std::size_t kMaxHistograms = 96;
/// Log-scale buckets: value v lands in bucket bit_width(v) (0 for v == 0),
/// i.e. bucket b >= 1 holds values in [2^(b-1), 2^b).
inline constexpr std::size_t kHistogramBuckets = 65;

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// The single switch the instrumentation macros branch on.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// Clears every metric value, trace event and adopted remote telemetry and
/// restarts the trace epoch. The name -> id table and the trace context are
/// preserved, so cached metric ids stay valid.
void reset();

/// Cross-process trace identity. `trace_id` names the whole distributed
/// trace; `parent_span_id` is the span a thread-root span parents under
/// (0 = no parent). Stamped into work-unit frames by the coordinator and
/// into JobRequests by daemon clients; installed by the remote process
/// before it opens its root span.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
};

void set_trace_context(TraceContext ctx);
TraceContext trace_context();
/// Installs a freshly generated trace_id when none is set yet; returns the
/// (now non-zero) context. The parent_span_id is left untouched.
TraceContext ensure_trace_context();

/// Span id of the calling thread's innermost open span (0 when none, or
/// when the layer is off). This is what a coordinator stamps into frames
/// as the remote side's parent_span_id.
std::uint64_t current_span_id();

/// Human-readable process lane label for the Chrome trace ("tracesel",
/// "tracesel-worker", "traceseld"). Spaces are normalized to '_'.
void set_process_label(std::string_view label);
std::string process_label();

struct CounterId { std::uint32_t index = 0; };
struct GaugeId { std::uint32_t index = 0; };
struct HistogramId { std::uint32_t index = 0; };

/// Bucket index of a histogram value (exposed for tests).
std::uint32_t histogram_bucket(std::uint64_t value);

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when count == 0
  std::uint64_t max = 0;
  std::vector<std::uint64_t> buckets;  ///< kHistogramBuckets entries
};

/// A merged, point-in-time view of every registered metric.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;
  /// Per-thread counter split (live shards plus one "retired" pseudo
  /// shard), for shard-balance analysis: {tid, {name, value}...}.
  std::vector<std::pair<std::string,
                        std::vector<std::pair<std::string, std::uint64_t>>>>
      per_thread_counters;
};

/// One completed span, timestamped on the steady clock relative to the
/// trace epoch (process start, or the last reset()).
struct TraceEvent {
  const char* name = nullptr;  ///< static storage duration required
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;    ///< dense per-thread id, assigned on first use
  std::uint32_t depth = 0;  ///< nesting depth within its thread
  std::uint64_t span_id = 0;    ///< process-unique id of this span
  std::uint64_t parent_id = 0;  ///< enclosing span / TraceContext parent / 0
};

class Span;
std::vector<TraceEvent> trace_events();

/// Window over the calling thread's own event buffer, for per-job span
/// capture in the daemon: mark before the job, collect the delta after.
/// A reset() between the two calls yields an empty (never stale) window.
std::size_t thread_events_mark();
std::vector<TraceEvent> thread_events_since(std::size_t mark);

class MetricsRegistry {
 public:
  /// Registers (or finds) a metric; throws std::length_error past the
  /// capacity caps.
  CounterId counter(std::string_view name);
  GaugeId gauge(std::string_view name);
  HistogramId histogram(std::string_view name);

  void add(CounterId id, std::uint64_t delta = 1);
  void set(GaugeId id, std::int64_t value);
  void set_max(GaugeId id, std::int64_t value);  ///< monotone high-water
  void observe(HistogramId id, std::uint64_t value);

  MetricsSnapshot snapshot() const;
  /// The calling thread's own counter shard, named (zero entries elided).
  /// This is the per-job metric scope of the traceseld daemon: a job runs
  /// on one runner thread, so before/after deltas of this view attribute
  /// counters to that job exactly — work a job fans out to pool threads
  /// (jobs > 1) lands in those threads' shards and escapes the scope,
  /// which the service layer documents (docs/service.md).
  std::vector<std::pair<std::string, std::uint64_t>> thread_counter_values()
      const;
  /// Merged value lookups by name (0 / nullopt when unregistered).
  std::uint64_t counter_value(std::string_view name) const;
  std::int64_t gauge_value(std::string_view name) const;
  std::optional<HistogramSnapshot> histogram_snapshot(
      std::string_view name) const;

 private:
  friend MetricsRegistry& registry();
  MetricsRegistry() = default;
};

/// The process-global registry. The class is a stateless facade; the
/// backing store lives in obs.cpp and is intentionally leaked, so
/// thread-exit merges stay safe during static destruction.
MetricsRegistry& registry();

/// RAII span timer. Construction snapshots steady_clock and bumps the
/// thread's nesting depth; destruction records a TraceEvent into the
/// thread's shard and mirrors the duration into histogram "span.<name>".
/// No-op (one branch) when the layer is disabled at construction.
class Span {
 public:
  explicit Span(const char* name) {
    if (enabled()) begin(name, 0);
  }
  /// Explicit-parent form for work that executes on behalf of a remote
  /// span when the process-global TraceContext cannot carry it (e.g. a
  /// daemon runner thread serving concurrent jobs with distinct parents).
  Span(const char* name, std::uint64_t parent_span_id) {
    if (enabled()) begin(name, parent_span_id);
  }
  ~Span() {
    if (name_ != nullptr) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// This span's id (0 when the layer was off at construction).
  std::uint64_t id() const { return span_id_; }

 private:
  void begin(const char* name, std::uint64_t parent_override);
  void end();

  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_id_ = 0;
};

// --- cross-process telemetry ------------------------------------------

/// A TraceEvent with the name materialized, so it survives the wire (the
/// in-process form stores a string-literal pointer).
struct WireTraceEvent {
  std::string name;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
};

/// One process's contribution to a distributed trace: its metrics snapshot
/// plus its trace events, timestamped against its own steady-clock epoch.
/// The per-thread counter split does not travel (it is a process-local
/// shard-balance diagnostic).
struct ProcessTelemetry {
  std::string label = "tracesel";
  std::uint64_t pid = 0;
  std::int64_t epoch_ns = 0;  ///< source process's trace epoch (steady clock)
  MetricsSnapshot metrics;
  std::vector<WireTraceEvent> events;
};

inline constexpr std::uint32_t kTelemetryVersion = 1;

/// This process's trace epoch (steady-clock ns at process start or the
/// last reset()) — the timestamp base of every TraceEvent.
std::int64_t trace_epoch_ns();

/// Snapshot of this process's telemetry (label, pid, epoch, metrics,
/// events) — what a worker ships back at work-unit completion.
ProcessTelemetry capture_telemetry();

/// Versioned, checksummed text encoding ("tracesel-telemetry" envelope).
/// parse rejects version skew, checksum mismatches and malformed bodies
/// with typed errors — a receiver must reject, never crash.
std::string serialize_telemetry(const ProcessTelemetry& telemetry);
util::Result<ProcessTelemetry> parse_telemetry(std::string_view wire);

/// Exact merge of two histogram snapshots: bucket counts and count/sum
/// add; min/max are recomputed exactly (an empty side contributes nothing,
/// so its sentinel 0 min never leaks into the merge).
void merge_histogram(HistogramSnapshot& into, const HistogramSnapshot& from);
/// Merges `from` into `into`: counters and histograms add, gauges keep the
/// max (high-water semantics). Names absent from `into` are appended.
void merge_metrics(MetricsSnapshot& into, const MetricsSnapshot& from);

/// Folds a remote process's telemetry into this process's export paths:
/// events are rebased onto the local epoch (steady clock is machine-wide,
/// so corrected_ts = ts + remote_epoch - local_epoch is exact), repeat
/// adoptions from the same (pid, label) merge into one lane, and
/// chrome_trace_json()/metrics_json()/prometheus_text() then report the
/// merged view. Cleared by reset().
void adopt_remote_telemetry(ProcessTelemetry remote);
/// The adopted remote lanes (rebased), for tests and aggregation checks.
std::vector<ProcessTelemetry> adopted_telemetry();

/// Chrome trace-event JSON ("X" complete events, microsecond timestamps)
/// — load the written file in chrome://tracing or ui.perfetto.dev. One
/// lane (pid) per process: pid 1 is this process, adopted remote
/// processes follow in adoption order. Event args carry span/parent ids.
util::Json chrome_trace_json();
/// Flat metrics JSON: process stats, counters, gauges, histograms and the
/// per-thread counter split. With adopted telemetry the top-level blocks
/// are the cross-process aggregate and "per_process" breaks them out.
util::Json metrics_json();

/// Prometheus text exposition of the (aggregated) registry: counters,
/// gauges, and histograms as cumulative le-buckets. Metric names have
/// '.' mapped to '_' and a "tracesel_" prefix.
std::string prometheus_text();

/// Convenience writers; false (plus a log line) when the file cannot be
/// opened.
bool write_chrome_trace(const std::string& path);
bool write_metrics(const std::string& path);
bool write_prometheus(const std::string& path);

/// Process-wide helpers (also mirrored into gauges by
/// update_process_gauges so bench JSON can read them from the registry).
long peak_rss_kb();
double process_wall_ms();
void update_process_gauges();

}  // namespace tracesel::obs

// --- instrumentation macros -------------------------------------------
// Each site caches its metric id in a function-local static, so the
// enabled path is: relaxed load, branch, (first time: registration),
// thread-shard lookup, relaxed atomic add.

#define TRACESEL_OBS_CONCAT2(a, b) a##b
#define TRACESEL_OBS_CONCAT(a, b) TRACESEL_OBS_CONCAT2(a, b)

/// Times the enclosing scope as a span named `name` (a string literal).
#define OBS_SPAN(name) \
  ::tracesel::obs::Span TRACESEL_OBS_CONCAT(obs_span_, __LINE__)(name)

#define OBS_COUNT(name, delta)                                        \
  do {                                                                \
    if (::tracesel::obs::enabled()) {                                 \
      static const ::tracesel::obs::CounterId obs_metric_id =         \
          ::tracesel::obs::registry().counter(name);                  \
      ::tracesel::obs::registry().add(                                \
          obs_metric_id, static_cast<std::uint64_t>(delta));          \
    }                                                                 \
  } while (0)

#define OBS_GAUGE_SET(name, value)                                    \
  do {                                                                \
    if (::tracesel::obs::enabled()) {                                 \
      static const ::tracesel::obs::GaugeId obs_metric_id =           \
          ::tracesel::obs::registry().gauge(name);                    \
      ::tracesel::obs::registry().set(                                \
          obs_metric_id, static_cast<std::int64_t>(value));           \
    }                                                                 \
  } while (0)

#define OBS_GAUGE_MAX(name, value)                                    \
  do {                                                                \
    if (::tracesel::obs::enabled()) {                                 \
      static const ::tracesel::obs::GaugeId obs_metric_id =           \
          ::tracesel::obs::registry().gauge(name);                    \
      ::tracesel::obs::registry().set_max(                            \
          obs_metric_id, static_cast<std::int64_t>(value));           \
    }                                                                 \
  } while (0)

#define OBS_HIST(name, value)                                         \
  do {                                                                \
    if (::tracesel::obs::enabled()) {                                 \
      static const ::tracesel::obs::HistogramId obs_metric_id =       \
          ::tracesel::obs::registry().histogram(name);                \
      ::tracesel::obs::registry().observe(                            \
          obs_metric_id, static_cast<std::uint64_t>(value));          \
    }                                                                 \
  } while (0)
