#pragma once
// Crash-safe file output and checksummed reads (DESIGN.md §11).
//
// Every artifact the pipeline writes — BENCH_*.json, --metrics-out /
// --trace-out sinks, search checkpoints — must survive the writer being
// killed mid-write: an interrupted run may leave *no* file or the *old*
// file, never a truncated one. atomic_write_file implements the standard
// write-to-temp + rename protocol (rename(2) is atomic on POSIX when
// source and target share a filesystem, which a sibling temp guarantees).

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.hpp"

namespace tracesel::util {

/// FNV-1a 64-bit over raw bytes; the checksum used by checkpoint envelopes.
std::uint64_t fnv1a64(std::string_view bytes);

/// Writes `contents` to `path` atomically and durably: the data lands in a
/// sibling temporary, is fsync'd, and only then renamed over `path`; the
/// parent directory is fsync'd after the rename so the entry survives a
/// power loss. On any failure the temporary is removed and `path` is left
/// untouched (old content or absent — never truncated).
Status atomic_write_file(const std::string& path, std::string_view contents);

/// Reads a whole file; a typed error when it cannot be opened or exceeds
/// `max_bytes` (guards checkpoint/spec loads against pathological inputs).
Result<std::string> read_file_capped(const std::string& path,
                                     std::size_t max_bytes);

}  // namespace tracesel::util
